// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each bench regenerates its artifact through the same
// internal/exp runner the cmd/experiments tool uses and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// reprints the whole evaluation.
//
// Benches run at the Quick experiment scale; pass -benchtime=1x (the
// numbers are simulation outputs, not wall-clock measurements, so one
// iteration is meaningful).
package main

import (
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func quickOpts() exp.Options { return exp.Quick() }

// BenchmarkFig01Trend regenerates the motivation trend data and reports
// the chip-vs-bus bandwidth growth gap.
func BenchmarkFig01Trend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chip, bus := exp.Fig1()
		chipGrowth := chip[len(chip)-1].MBps / chip[0].MBps
		busGrowth := bus[len(bus)-1].MBps / bus[0].MBps
		b.ReportMetric(chipGrowth, "chip-growth-x")
		b.ReportMetric(busGrowth, "bus-growth-x")
	}
}

// BenchmarkFig03Imbalance reports the read vs write channel imbalance
// indices on the exchange-1 trace (baseSSD).
func BenchmarkFig03Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig3(quickOpts())
		b.ReportMetric(res.ReadImbalance, "read-imbalance")
		b.ReportMetric(res.WriteImbalance, "write-imbalance")
	}
}

// BenchmarkFig04BandwidthSweep reports the mean speedup from doubling the
// flash channel bandwidth on the baseline SSD.
func BenchmarkFig04BandwidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig4(quickOpts())
		var sum float64
		for _, r := range rows {
			sum += r.Speedup[2.0]
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-2x-speedup")
	}
}

// BenchmarkFig06ReadTiming reports the conventional vs packetized read
// transaction totals.
func BenchmarkFig06ReadTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig6(ssd.DefaultConfig())
		b.ReportMetric(res.ConvTotal.Microseconds(), "conventional-us")
		b.ReportMetric(res.PktTotal.Microseconds(), "packetized-us")
	}
}

// BenchmarkFig08PacketOverhead reports the total wire overhead for a
// 16 KB page transfer.
func BenchmarkFig08PacketOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig8()
		for _, r := range res.Rows {
			if r.PayloadBytes == 16384 {
				b.ReportMetric(r.Overhead*100, "16KB-overhead-pct")
			}
		}
	}
}

// BenchmarkFig14Latency reports the geomean I/O latency improvement of
// pSSD, pnSSD, and pnSSD(+split) over baseSSD with GC off.
func BenchmarkFig14Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig14(quickOpts())
		mean := exp.MeanImprovement(rows)
		b.ReportMetric(mean[ssd.ArchPSSD]*100, "pssd-improvement-pct")
		b.ReportMetric(mean[ssd.ArchPnSSD]*100, "pnssd-improvement-pct")
		b.ReportMetric(mean[ssd.ArchPnSSDSplit]*100, "split-improvement-pct")
		b.ReportMetric(mean[ssd.ArchNoSSDPin]*100, "nossd-pin-improvement-pct")
	}
}

// BenchmarkFig15Throughput reports KIOPS for baseSSD and pnSSD(+split)
// across the trace suite (same runs as Fig 14).
func BenchmarkFig15Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig14(quickOpts())
		var base, split float64
		for _, r := range rows {
			base += r.KIOPS[ssd.ArchBase]
			split += r.KIOPS[ssd.ArchPnSSDSplit]
		}
		b.ReportMetric(base/float64(len(rows)), "base-kiops")
		b.ReportMetric(split/float64(len(rows)), "split-kiops")
	}
}

// BenchmarkFig16PCWD reports the 64-outstanding random-read latency under
// the channel-balancing PCWD policy for baseSSD and pSSD.
func BenchmarkFig16PCWD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig16(quickOpts())
		reportSweep(b, rows)
	}
}

// BenchmarkFig17PWCD reports the same sweep under the imbalanced PWCD
// policy, where path diversity pays off.
func BenchmarkFig17PWCD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig17(quickOpts())
		reportSweep(b, rows)
	}
}

func reportSweep(b *testing.B, rows []exp.Fig16Row) {
	b.Helper()
	for _, r := range rows {
		if r.Pattern != workload.RandRead {
			continue
		}
		last := r.Points[len(r.Points)-1].Latency.Microseconds()
		switch r.Arch {
		case ssd.ArchBase:
			b.ReportMetric(last, "base-randread64-us")
		case ssd.ArchPSSD:
			b.ReportMetric(last, "pssd-randread64-us")
		case ssd.ArchPnSSDSplit:
			b.ReportMetric(last, "split-randread64-us")
		}
	}
}

// BenchmarkFig18GCSynthetic reports the read improvement of pnSSD with
// spatial GC over the baseline with parallel GC while collection runs
// continuously.
func BenchmarkFig18GCSynthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig18(quickOpts())
		for _, r := range rows {
			if r.Config.Arch == ssd.ArchPnSSD && r.Config.Mode == ftl.GCSpatial {
				b.ReportMetric(r.ReadImprovement*100, "pnssd-spgc-read-improvement-pct")
				b.ReportMetric(r.WriteImprovement*100, "pnssd-spgc-write-improvement-pct")
			}
		}
	}
}

// BenchmarkFig19GCTraces reports the trace-driven improvement of
// pnSSD(+split) with SpGC over baseSSD with PaGC.
func BenchmarkFig19GCTraces(b *testing.B) {
	opt := quickOpts()
	opt.Traces = []string{"rocksdb-1"}
	for i := 0; i < b.N; i++ {
		rows := exp.Fig19(opt)
		r := rows[0]
		b.ReportMetric(r.Improvement["pnSSD(+split)(SpGC)"]*100, "split-spgc-improvement-pct")
		b.ReportMetric(r.Improvement["pSSD(SpGC)"]*100, "pssd-spgc-improvement-pct")
		b.ReportMetric(r.Improvement["baseSSD(Preemptive)"]*100, "base-preemptive-improvement-pct")
	}
}

// BenchmarkFig20aTail reports the p99 tail latency ratio between the
// baseline and pnSSD(+split) with spatial GC on rocksdb-0.
func BenchmarkFig20aTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Fig20a(quickOpts())
		base := rows[0]
		pn := rows[len(rows)-1]
		b.ReportMetric(base.P99.Microseconds(), "base-p99-us")
		b.ReportMetric(pn.P99.Microseconds(), "pnssd-p99-us")
		b.ReportMetric(float64(base.P99)/float64(pn.P99), "p99-reduction-x")
	}
}

// BenchmarkFig20bGCTime reports the mean GC round time for the baseline
// and pnSSD(+split).
func BenchmarkFig20bGCTime(b *testing.B) {
	opt := quickOpts()
	opt.Traces = []string{"rocksdb-1"}
	for i := 0; i < b.N; i++ {
		rows := exp.Fig20b(opt)
		b.ReportMetric(rows[0].MeanGCTime.Milliseconds(), "base-gc-ms")
		b.ReportMetric(rows[len(rows)-1].MeanGCTime.Milliseconds(), "pnssd-gc-ms")
	}
}

// BenchmarkArrayRouter measures the erasure-coded array router alone —
// shard placement, degraded-read reconstruction, retry-ladder routing,
// and the throttled rebuild schedule for a mixed trace with one
// mid-trace device kill. No device simulation runs, so ns/op tracks
// pure planning throughput; device-ops is the fan-out the plan emits.
func BenchmarkArrayRouter(b *testing.B) {
	dc := ssd.ScaledConfig()
	dc.Channels, dc.Ways = 2, 2
	dc.Geometry.Planes = 2
	dc.Geometry.BlocksPerPlane = 8
	dc.Geometry.PagesPerBlock = 16
	dc.LogicalUtilization = 0.75
	cfg := array.Config{
		Arch:   ssd.ArchPnSSDSplit,
		Device: dc,
		Data:   2, Parity: 1,
		Groups:             2,
		Spares:             1,
		Seed:               1,
		RebuildPagesPerSec: 200_000,
		Failures:           []fault.DeviceEvent{{Device: 0, At: 2 * sim.Millisecond}},
	}
	cfg = cfg.WithDefaults()
	tr, err := workload.Named("rocksdb-0", cfg.LogicalPages(), 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := array.BuildPlan(cfg, tr.Requests)
		b.ReportMetric(float64(p.DeviceOps()), "device-ops")
		b.ReportMetric(float64(p.RAS.DegradedReads), "degraded-reads")
	}
}

// BenchmarkArraySweep regenerates the rack-scale array study and reports
// the rebuild-interference headline: p99 while rebuilding vs healthy,
// for SpGC on pnSSD+split.
func BenchmarkArraySweep(b *testing.B) {
	opt := quickOpts()
	opt.TraceRequests = 200
	for i := 0; i < b.N; i++ {
		rows := exp.ArraySweep(opt)
		for _, r := range rows {
			if r.Arch == ssd.ArchPnSSDSplit && r.GC == ftl.GCSpatial {
				switch r.Scenario {
				case exp.ArrayHealthy:
					b.ReportMetric(r.P99.Milliseconds(), "healthy-p99-ms")
				case exp.ArrayRebuilding:
					b.ReportMetric(r.P99.Milliseconds(), "rebuild-p99-ms")
					b.ReportMetric(r.RebuildTime.Milliseconds(), "rebuild-ms")
				}
			}
		}
	}
}

// BenchmarkTable02Config exercises building a full Table II device (no
// workload), reporting raw capacity.
func BenchmarkTable02Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ssd.DefaultConfig()
		b.ReportMetric(float64(cfg.RawPages()), "raw-pages")
	}
}

// BenchmarkTable03Architectures constructs every Table III architecture
// and performs a smoke I/O on each.
func BenchmarkTable03Architectures(b *testing.B) {
	cfg := quickOpts().Cfg
	for i := 0; i < b.N; i++ {
		for _, arch := range ssd.Archs {
			s := ssd.New(arch, *cfg)
			s.Host.Warmup(64)
			s.Host.RunClosedLoop(workload.Synthetic(workload.RandRead, 64, 1, 1), 2, 8)
			s.Run()
		}
	}
}

// BenchmarkEngineThroughput measures raw event-loop performance: 16
// actors issuing timed holds over 4 contended resources, ~1.6M events
// per iteration, reported as events/sec. This is the engine's pure fast
// path (4-ary heap push/pop plus the allocation-free timed hold), with
// no SSD model code diluting the measurement.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	var fired int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		var chans [4]*sim.Resource
		for c := range chans {
			chans[c] = sim.NewResource(e, "ch")
		}
		const actors = 16
		const holdsPerActor = 50_000
		for a := 0; a < actors; a++ {
			a := a
			n := 0
			var issue func()
			issue = func() {
				n++
				if n <= holdsPerActor {
					chans[a%len(chans)].Use(sim.Time(1+a%7), issue)
				}
			}
			issue()
		}
		e.Run()
		fired += e.EventsFired()
	}
	b.StopTimer()
	if ns := b.Elapsed().Nanoseconds(); ns > 0 {
		b.ReportMetric(float64(fired)*1e9/float64(ns), "events/sec")
	}
}

// shardedBenchRun drains the many-channel engine-level model behind
// BenchmarkShardedEngineThroughput: 12 channels, each a dense local
// event chain on its own shard group, coupled to a shard-0 controller
// by EccLatency-delayed completion/grant round trips — the same event
// mix and lookahead bound as a bus-fabric SSD, with the channel work
// actually partitioned. shards=1 is the serial baseline.
func shardedBenchRun(shards int) *sim.ShardedEngine {
	const (
		channels = 12
		opsPerCh = 4000
		window   = 500 * sim.Nanosecond // the bus fabrics' EccLatency bound
	)
	se := sim.NewShardedEngine(shards, window)
	for c := 0; c < channels; c++ {
		sh := 0
		if shards > 1 {
			sh = 1 + c%(shards-1)
		}
		eng := se.Shard(sh)
		step := sim.Time(40+c*7%90) * sim.Nanosecond
		var op func(o int)
		op = func(o int) {
			k := 0
			var local func()
			local = func() {
				k++
				if k < 5 {
					eng.Schedule(step, local)
					return
				}
				se.Post(sh, 0, window, func() { // completion to the controller
					se.Post(0, sh, window, func() { // grant back to the channel
						if o+1 < opsPerCh {
							op(o + 1)
						}
					})
				})
			}
			local()
		}
		ch := c
		eng.Schedule(sim.Time(ch)*sim.Nanosecond, func() { op(0) })
	}
	se.Run()
	return se
}

// BenchmarkShardedEngineThroughput measures the partitioned engine on
// the many-channel model at 4 shards against the same model serial.
// events/sec and serial-events/sec are wall-clock (machine-dependent;
// on a single-core host they coincide); total-events and
// critpath-speedup-x are deterministic — the latter is aggregate events
// divided by the per-window critical path, i.e. the parallel speedup
// the partition exposes to a multi-core host, and the quantity the
// bench-regression gate pins.
func BenchmarkShardedEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	var fired, crit, serialFired int64
	var serialNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se := shardedBenchRun(4)
		fired += se.EventsFired()
		crit += se.CriticalPathEvents()
	}
	b.StopTimer()
	shardedNs := b.Elapsed().Nanoseconds()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		serialFired += shardedBenchRun(1).EventsFired()
	}
	serialNs = time.Since(start).Nanoseconds()
	if shardedNs > 0 {
		b.ReportMetric(float64(fired)*1e9/float64(shardedNs), "events/sec")
	}
	if serialNs > 0 {
		b.ReportMetric(float64(serialFired)*1e9/float64(serialNs), "serial-events/sec")
	}
	b.ReportMetric(float64(fired)/float64(b.N), "total-events")
	if crit > 0 {
		b.ReportMetric(float64(fired)/float64(crit), "critpath-speedup-x")
	}
}

// BenchmarkSchedPick regenerates the controller-scheduling study on the
// GC-pressure workload and reports the wires-vs-scheduling headline:
// pSSD read p99 under each policy against the pnSSD(+split)/fifo target,
// plus the decision counters that show the policies actually engaged.
// The deterministic metrics (p99s, deferred, reordered) are what the
// bench-regression gate pins; ns/op is excluded by benchjson -diff.
func BenchmarkSchedPick(b *testing.B) {
	opt := quickOpts()
	opt.TraceRequests = 250
	for i := 0; i < b.N; i++ {
		rows := exp.SchedSweep(opt)
		var deferred, reordered int64
		for _, r := range rows {
			deferred += r.Deferred
			reordered += r.Reordered
			if !r.Point.SpGC {
				continue
			}
			switch {
			case r.Point.Arch == ssd.ArchPSSD && r.Point.Sched == "fifo":
				b.ReportMetric(r.P99.Microseconds(), "pssd-fifo-p99-us")
			case r.Point.Arch == ssd.ArchPSSD && r.Point.Sched == "conflict":
				b.ReportMetric(r.P99.Microseconds(), "pssd-conflict-p99-us")
			case r.Point.Arch == ssd.ArchPSSD && r.Point.Sched == "ooo":
				b.ReportMetric(r.P99.Microseconds(), "pssd-ooo-p99-us")
			case r.Point.Arch == ssd.ArchPnSSDSplit && r.Point.Sched == "fifo":
				b.ReportMetric(r.P99.Microseconds(), "split-fifo-p99-us")
			}
		}
		b.ReportMetric(float64(deferred), "deferred")
		b.ReportMetric(float64(reordered), "reordered")
	}
}

// BenchmarkMapLookup drives the fmmu map unit's lookup path: a random
// read stream over a device whose map cache holds a quarter of the
// translation pages, so the stream mixes cache hits with demand fetches
// through the fabric. The deterministic metrics (miss rate, fetches)
// pin the cache's behavior; ns/op tracks the lookup overhead trend.
func BenchmarkMapLookup(b *testing.B) {
	cfg := ssd.ScaledConfig()
	cfg.Geometry.BlocksPerPlane = 8
	cfg.Geometry.PagesPerBlock = 16
	cfg.Mapping = "fmmu"
	numT := int((cfg.LogicalPages() + int64(cfg.Geometry.PageSize/8) - 1) / int64(cfg.Geometry.PageSize/8))
	cfg.MapCacheEntries = numT / 4
	for i := 0; i < b.N; i++ {
		s := ssd.New(ssd.ArchPnSSDSplit, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		s.Host.RunClosedLoop(workload.Synthetic(workload.RandRead, foot, 4, 1), 16, 400)
		s.Run()
		ms := s.FTL.MapStats()
		b.ReportMetric(ms.MissRate()*100, "miss-pct")
		b.ReportMetric(float64(ms.Fetches), "fetches")
		b.ReportMetric(s.Metrics().Combined().P99().Microseconds(), "p99-us")
	}
}

// BenchmarkFMMUSweep regenerates the map-cache-size x workload-skew
// ablation and reports the headline cells: the flat baseline against
// the smallest and effectively-infinite fmmu caches per skew. The p99s
// and total misses are deterministic; benchjson -diff pins them.
func BenchmarkFMMUSweep(b *testing.B) {
	opt := quickOpts()
	opt.TraceRequests = 250
	for i := 0; i < b.N; i++ {
		rows := exp.FmmuSweep(opt)
		var misses int64
		small := map[string]int{"low": 1 << 30, "high": 1 << 30}
		for _, r := range rows {
			misses += r.MapMisses
			if r.Point.Mapping == "fmmu" && r.Point.Entries < small[r.Point.Skew] {
				small[r.Point.Skew] = r.Point.Entries
			}
		}
		for _, r := range rows {
			switch {
			case r.Point.Mapping == "flat" && r.Point.Skew == "low":
				b.ReportMetric(r.P99.Microseconds(), "flat-low-p99-us")
			case r.Point.Mapping == "flat" && r.Point.Skew == "high":
				b.ReportMetric(r.P99.Microseconds(), "flat-high-p99-us")
			case r.Point.Entries == small[r.Point.Skew] && r.Point.Skew == "low":
				b.ReportMetric(r.P99.Microseconds(), "fmmu-small-low-p99-us")
			case r.Point.Entries == small[r.Point.Skew] && r.Point.Skew == "high":
				b.ReportMetric(r.P99.Microseconds(), "fmmu-small-high-p99-us")
			}
		}
		b.ReportMetric(float64(misses), "map-misses")
	}
}

// BenchmarkResourceHold measures one timed hold (Use → grant → release)
// on an idle resource. The acceptance bar for the engine fast path is 0
// allocs/op here: no closure pair, no boxing, reused event storage.
func BenchmarkResourceHold(b *testing.B) {
	e := sim.NewEngine()
	r := sim.NewResource(e, "ch")
	for i := 0; i < 8; i++ {
		r.Use(10, nil) // warm event and waiter storage
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Use(10, nil)
		e.Run()
	}
}

// BenchmarkAblationRouting reports the routing-policy ablation: h-only vs
// the paper's greedy vs the future-work JSQ router under read skew.
func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.AblationRouting(quickOpts())
		b.ReportMetric(rows[0].Latency.Microseconds(), "h-only-us")
		b.ReportMetric(rows[1].Latency.Microseconds(), "greedy-us")
		b.ReportMetric(rows[3].Latency.Microseconds(), "jsq-us")
	}
}

// BenchmarkAblationVWidth reports the v-channel width sweep endpoints.
func BenchmarkAblationVWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.AblationVWidth(quickOpts())
		b.ReportMetric(rows[0].Latency.Microseconds(), "v2bit-us")
		b.ReportMetric(rows[2].Latency.Microseconds(), "v8bit-us")
	}
}

// BenchmarkAblationGCGroup reports the SpGC group-fraction trade-off.
func BenchmarkAblationGCGroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.AblationGCGroup(quickOpts())
		b.ReportMetric(rows[0].Latency.Microseconds(), "group25-us")
		b.ReportMetric(rows[1].Latency.Microseconds(), "group50-us")
	}
}

// BenchmarkAblationEcc reports the hybrid-ECC fallback sweep endpoints.
func BenchmarkAblationEcc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.AblationEccFallback(quickOpts())
		b.ReportMetric(rows[0].Latency.Microseconds(), "ecc0-us")
		b.ReportMetric(rows[len(rows)-1].Latency.Microseconds(), "ecc100-us")
	}
}
