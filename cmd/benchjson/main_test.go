package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name string, benches []BenchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(File{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffFiles covers the regression gate: deterministic metrics over
// the threshold exit 3, wall-clock metrics are ignored, and new
// benchmarks/metrics never fail the comparison.
func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", []BenchResult{
		{Name: "BenchmarkFig14", Runs: 1, Metrics: map[string]float64{
			"ns/op": 1000, "mean-latency-us": 100, "kiops": 50,
		}},
		{Name: "BenchmarkGone", Runs: 1, Metrics: map[string]float64{"kiops": 1}},
	})

	t.Run("within threshold", func(t *testing.T) {
		newPath := writeBench(t, dir, "ok.json", []BenchResult{
			{Name: "BenchmarkFig14", Runs: 1, Metrics: map[string]float64{
				"ns/op": 9_999_999, // wall clock: ignored at any drift
				"mean-latency-us": 110, "kiops": 45,
			}},
			{Name: "BenchmarkNew", Runs: 1, Metrics: map[string]float64{"kiops": 7}},
		})
		if code := diffFiles(oldPath, newPath, 25); code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
	})

	t.Run("regression flagged", func(t *testing.T) {
		newPath := writeBench(t, dir, "bad.json", []BenchResult{
			{Name: "BenchmarkFig14", Runs: 1, Metrics: map[string]float64{
				"mean-latency-us": 200, "kiops": 50, // +100% latency
			}},
		})
		if code := diffFiles(oldPath, newPath, 25); code != 3 {
			t.Fatalf("exit %d, want 3", code)
		}
		// A looser threshold lets the same change through.
		if code := diffFiles(oldPath, newPath, 150); code != 0 {
			t.Fatalf("exit %d at 150%% threshold, want 0", code)
		}
	})

	t.Run("read error", func(t *testing.T) {
		if code := diffFiles(filepath.Join(dir, "missing.json"), oldPath, 25); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}
