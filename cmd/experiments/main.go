// Command experiments reproduces every table and figure of the paper's
// evaluation. With no flags it runs the full suite; -fig / -table select
// individual artifacts, -quick shrinks run sizes for a fast smoke pass,
// and -csv switches output to CSV.
//
// Independent configuration runs inside each figure fan out across
// -parallel workers (default: GOMAXPROCS); results are reassembled in
// submission order, so output is byte-identical at any worker count and
// -parallel 1 restores fully sequential execution. -cpuprofile /
// -memprofile write pprof profiles for performance work.
//
//	go run ./cmd/experiments -fig 14
//	go run ./cmd/experiments -table 2
//	go run ./cmd/experiments -quick
//	go run ./cmd/experiments -quick -parallel 8 -csv
//	go run ./cmd/experiments -fig 19 -cpuprofile cpu.pprof
//	go run ./cmd/experiments -quick -trace out.json -metrics-json run.json
//
// -trace / -metrics-json switch to a single instrumented GC-heavy run
// (pnSSD+split with SpGC) and write the Chrome trace-event JSON and the
// machine-readable run summary instead of the evaluation tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/ftl"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// startProfiles begins CPU profiling and/or arms a heap-profile dump for
// the -cpuprofile/-memprofile flags (either may be empty). The returned
// stop function must run before exit: it finishes the CPU profile and
// writes the heap snapshot, so future perf PRs can measure instead of
// guess.
func startProfiles(cpuPath, memPath string) func() {
	var stopCPU func()
	if cpuPath != "" {
		fh, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPU = func() { pprof.StopCPUProfile(); fh.Close() }
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if memPath != "" {
			fh, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer fh.Close()
			runtime.GC() // materialize only live allocations in the snapshot
			if err := pprof.WriteHeapProfile(fh); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
}

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 1,3,4,6,8,14,15,16,17,18,19,20a,20b,contention,tenant,array,sched,fmmu (empty = all)")
	table := flag.String("table", "", "table to print: 1,2,3")
	ablation := flag.String("ablation", "", "ablation study: vwidth, routing, ctrl-latency, gc-group, organization, ecc, victim, all")
	faultExp := flag.String("fault", "", "fault/RAS experiment: sweep (fault-rate x architecture), degraded (v-channel kill + grant drops), all")
	quick := flag.Bool("quick", false, "small runs for a fast smoke pass")
	checkFlag := flag.Bool("check", false, "attach the invariant checker to every run (panics on violation)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "workload seed")
	reqs := flag.Int("requests", 0, "override trace request count")
	traceOut := flag.String("trace", "", "run one instrumented GC-heavy run and write a Chrome trace-event JSON to this file")
	metricsOut := flag.String("metrics-json", "", "run one instrumented GC-heavy run and write the run-summary JSON to this file")
	telemetryOut := flag.String("telemetry", "", "with -fig array: run the rebuilding scenario with telemetry enabled and write the run-document JSON to this file (render with cmd/report)")
	progress := flag.Bool("progress", false, "print completed-jobs / event-rate / ETA lines to stderr while sweeps run")
	parallel := flag.Int("parallel", runner.Default(), "worker count for independent simulation runs (1 = sequential)")
	shards := flag.Int("shards", 0, "run every simulation on a partitioned engine with this many shards (0 or 1 = serial); results are byte-identical at any count")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	runner.SetDefault(*parallel)
	if *progress {
		runner.EnableProgress(os.Stderr, sim.EventsFiredTotal)
	}
	stop := startProfiles(*cpuProf, *memProf)
	defer stop()

	opt := exp.Options{Seed: *seed}
	if *quick {
		opt = exp.Quick()
		opt.Seed = *seed
	}
	if *reqs > 0 {
		opt.TraceRequests = *reqs
	}
	if *checkFlag {
		if opt.Cfg == nil {
			c := ssd.ScaledConfig()
			opt.Cfg = &c
		}
		opt.Cfg.Check = &check.Config{}
	}
	if *shards > 1 {
		if opt.Cfg == nil {
			c := ssd.ScaledConfig()
			opt.Cfg = &c
		}
		opt.Cfg.Shards = *shards
	}

	if *traceOut != "" || *metricsOut != "" {
		runTraced(opt, *traceOut, *metricsOut)
		return
	}

	if *telemetryOut != "" {
		if *fig != "array" {
			fmt.Fprintln(os.Stderr, "-telemetry requires -fig array")
			os.Exit(2)
		}
		writeArrayTelemetry(opt, *telemetryOut)
		return
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	runners := map[string]func(exp.Options, func(*report.Table)){
		"1":          fig1,
		"3":          fig3,
		"4":          fig4,
		"6":          fig6,
		"8":          fig8,
		"14":         fig14and15,
		"15":         fig14and15,
		"16":         fig16,
		"17":         fig17,
		"18":         fig18,
		"19":         fig19,
		"20a":        fig20a,
		"20b":        fig20b,
		"contention": figContention,
		"tenant":     figTenant,
		"array":      figArray,
		"sched":      figSched,
		"fmmu":       figFmmu,
	}
	tables := map[string]func(exp.Options, func(*report.Table)){
		"1": table1,
		"2": table2,
		"3": table3,
	}

	switch {
	case *faultExp != "":
		runFaultExperiments(*faultExp, opt, emit)
	case *ablation != "":
		runAblations(*ablation, opt, emit)
	case *table != "":
		fn, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		fn(opt, emit)
	case *fig != "":
		fn, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
			os.Exit(2)
		}
		fn(opt, emit)
	default:
		order := []string{"1", "3", "4", "6", "8", "14", "16", "17", "18", "19", "20a", "20b", "tenant"}
		table1(opt, emit)
		table2(opt, emit)
		table3(opt, emit)
		for _, name := range order {
			runners[name](opt, emit)
		}
	}
}

// writeArrayTelemetry runs the rebuilding array scenario with telemetry
// enabled and writes the run-document JSON for cmd/report.
func writeArrayTelemetry(opt exp.Options, path string) {
	doc := exp.ArrayTelemetryRun(opt)
	fh, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", path, err)
		os.Exit(1)
	}
	defer fh.Close()
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("telemetry: %s (%s/%s rebuilding, %d requests, p99 %.2fms, rebuild %.1fms)\n",
		path, doc.Arch, doc.GC, doc.Requests, doc.P99Ms, doc.RebuildMs)
}

// runTraced performs one instrumented GC-heavy run (pnSSD+split, SpGC,
// rocksdb-0) and writes the requested trace/summary files. Either path
// may be empty.
func runTraced(opt exp.Options, traceOut, metricsOut string) {
	open := func(path string) *os.File {
		if path == "" {
			return nil
		}
		fh, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", path, err)
			os.Exit(1)
		}
		return fh
	}
	tw, mw := open(traceOut), open(metricsOut)
	var traceW, metricsW io.Writer
	if tw != nil {
		traceW = tw
	}
	if mw != nil {
		metricsW = mw
	}
	m, err := exp.TracedRun(opt, ssd.ArchPnSSDSplit, ftl.GCSpatial, "rocksdb-0", traceW, metricsW)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traced run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("traced run: pnssd+split / spgc / rocksdb-0, %d requests, mean latency %v\n",
		m.TotalRequests(), m.MeanLatency())
	if tw != nil {
		tw.Close()
		fmt.Printf("trace: %s (open in https://ui.perfetto.dev)\n", traceOut)
	}
	if mw != nil {
		mw.Close()
		fmt.Printf("metrics: %s\n", metricsOut)
	}
}

func fig1(_ exp.Options, emit func(*report.Table)) {
	chip, busTrend := exp.Fig1()
	t := report.New("Fig 1(a): flash memory chip I/O bandwidth trend", "year", "MB/s", "product")
	for _, p := range chip {
		t.Add(fmt.Sprint(p.Year), report.F1(p.MBps), p.Label)
	}
	emit(t)
	t = report.New("Fig 1(b): flash memory bus bandwidth trend", "year", "MB/s", "interface")
	for _, p := range busTrend {
		t.Add(fmt.Sprint(p.Year), report.F1(p.MBps), p.Label)
	}
	emit(t)
}

func fig3(opt exp.Options, emit func(*report.Table)) {
	res := exp.Fig3(opt)
	heat := func(title string, rows [][]float64, imbalance float64) {
		t := report.New(fmt.Sprintf("%s on %s (imbalance index %.2f; one column per %v window)",
			title, res.Trace, imbalance, "500us"), "ch", "utilization over time")
		for ch, row := range rows {
			t.Add(fmt.Sprint(ch), report.Heat(row))
		}
		emit(t)
	}
	heat("Fig 3(a): READ channel utilization", res.ReadRows, res.ReadImbalance)
	heat("Fig 3(b): WRITE channel utilization", res.WriteRows, res.WriteImbalance)
}

func fig4(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig4(opt)
	t := report.New("Fig 4: I/O performance gain from raising flash channel bandwidth (baseSSD)",
		"trace", "1.25x", "1.5x", "2.0x")
	var sum float64
	for _, r := range rows {
		t.Add(r.Trace, report.X(r.Speedup[1.25]), report.X(r.Speedup[1.5]), report.X(r.Speedup[2.0]))
		sum += r.Speedup[2.0]
	}
	t.Add("average", "", "", report.X(sum/float64(len(rows))))
	emit(t)
}

func fig6(opt exp.Options, emit func(*report.Table)) {
	cfg := ssd.DefaultConfig()
	if opt.Cfg != nil {
		cfg = *opt.Cfg
	}
	res := exp.Fig6(cfg)
	t := report.New("Fig 6: READ transaction timing, conventional vs packetized (one 16 KB page)",
		"phase", "conventional", "packetized (16-bit)")
	for i := range res.Conventional {
		t.Add(res.Conventional[i].Phase, res.Conventional[i].Dur.String(), "")
	}
	for i := range res.Packetized {
		t.Add(res.Packetized[i].Phase, "", res.Packetized[i].Dur.String())
	}
	t.Add("TOTAL", res.ConvTotal.String(), res.PktTotal.String())
	emit(t)
}

func fig8(_ exp.Options, emit func(*report.Table)) {
	res := exp.Fig8()
	t := report.New("Fig 8: packet format overhead", "quantity", "value")
	t.Add("control header reserved bits", report.Pct(res.ControlHeaderOverhead))
	t.Add("data header reserved bits", report.Pct(res.DataHeaderOverhead))
	t.Add("read control packet", fmt.Sprintf("%d flits", res.ControlPacketFlits))
	emit(t)
	t = report.New("Fig 8 (cont): total wire overhead vs payload size", "payload B", "wire flits", "overhead")
	for _, r := range res.Rows {
		t.Add(fmt.Sprint(r.PayloadBytes), fmt.Sprint(r.WireFlits), report.Pct(r.Overhead))
	}
	emit(t)
}

func fig14and15(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig14(opt)
	t := report.New("Fig 14: average I/O latency improvement vs baseSSD (GC off)", firstCol(rows)...)
	for _, r := range rows {
		cells := []string{r.Trace}
		for _, a := range ssd.Archs {
			cells = append(cells, report.Pct(r.Improvement[a]))
		}
		t.Add(cells...)
	}
	mean := exp.MeanImprovement(rows)
	cells := []string{"geomean"}
	for _, a := range ssd.Archs {
		cells = append(cells, report.Pct(mean[a]))
	}
	t.Add(cells...)
	emit(t)

	t = report.New("Fig 15: throughput (KIOPS)", firstCol(rows)...)
	for _, r := range rows {
		cells := []string{r.Trace}
		for _, a := range ssd.Archs {
			cells = append(cells, report.F1(r.KIOPS[a]))
		}
		t.Add(cells...)
	}
	emit(t)
}

func firstCol(_ []exp.Fig14Row) []string {
	heads := []string{"trace"}
	for _, a := range ssd.Archs {
		heads = append(heads, a.String())
	}
	return heads
}

func sweepTable(title string, rows []exp.Fig16Row, emit func(*report.Table)) {
	byPattern := map[string][]exp.Fig16Row{}
	var patterns []string
	for _, r := range rows {
		key := r.Pattern.String()
		if _, seen := byPattern[key]; !seen {
			patterns = append(patterns, key)
		}
		byPattern[key] = append(byPattern[key], r)
	}
	sort.Strings(patterns)
	for _, p := range patterns {
		group := byPattern[p]
		heads := []string{"arch \\ outstanding"}
		for _, pt := range group[0].Points {
			heads = append(heads, fmt.Sprint(pt.Outstanding))
		}
		t := report.New(fmt.Sprintf("%s — %s (mean latency)", title, p), heads...)
		for _, r := range group {
			cells := []string{r.Arch.String()}
			for _, pt := range r.Points {
				cells = append(cells, pt.Latency.String())
			}
			t.Add(cells...)
		}
		emit(t)
	}
}

func fig16(opt exp.Options, emit func(*report.Table)) {
	sweepTable("Fig 16: synthetic sweep, PCWD allocation", exp.Fig16(opt), emit)
}

func fig17(opt exp.Options, emit func(*report.Table)) {
	sweepTable("Fig 17: synthetic sweep, PWCD allocation", exp.Fig17(opt), emit)
}

func fig18(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig18(opt)
	t := report.New("Fig 18: I/O performance during GC, normalized to baseSSD(PaGC)",
		"config", "read latency", "read improvement", "write latency", "write improvement")
	for _, r := range rows {
		t.Add(r.Config.Label(), r.ReadLatency.String(), report.Pct(r.ReadImprovement),
			r.WriteLatency.String(), report.Pct(r.WriteImprovement))
	}
	emit(t)
}

func fig19(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig19(opt)
	heads := []string{"trace"}
	for _, c := range exp.Fig19Configs {
		heads = append(heads, c.Label())
	}
	t := report.New("Fig 19: average I/O latency improvement with GC active, vs baseSSD(PaGC)", heads...)
	for _, r := range rows {
		cells := []string{r.Trace}
		for _, c := range exp.Fig19Configs {
			cells = append(cells, report.Pct(r.Improvement[c.Label()]))
		}
		t.Add(cells...)
	}
	emit(t)
}

func fig20a(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig20a(opt)
	t := report.New("Fig 20(a): tail latency on rocksdb-0 with GC active",
		"config", "p50", "p90", "p99", "p99.9", "max")
	for _, r := range rows {
		t.Add(r.Config.Label(), r.P50.String(), r.P90.String(), r.P99.String(), r.P999.String(), r.Max.String())
	}
	emit(t)
}

func fig20b(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Fig20b(opt)
	t := report.New("Fig 20(b): garbage collection execution time",
		"config", "mean GC round", "rounds", "pages copied")
	for _, r := range rows {
		t.Add(r.Config.Label(), r.MeanGCTime.String(), fmt.Sprint(r.Rounds), fmt.Sprint(r.PagesCopied))
	}
	emit(t)
}

func table1(_ exp.Options, emit func(*report.Table)) {
	t := report.New("Table I: ONFi flash interface signals", "symbol", "type", "pins", "description")
	for _, r := range exp.TableI() {
		t.Add(r.Symbol, r.Type, fmt.Sprint(r.Pins), r.Description)
	}
	emit(t)
}

func table2(opt exp.Options, emit func(*report.Table)) {
	cfg := ssd.DefaultConfig()
	if opt.Cfg != nil {
		cfg = *opt.Cfg
	}
	g := cfg.Geometry
	t := report.New("Table II: simulation parameters", "parameter", "value")
	t.Add("organization", fmt.Sprintf("%d channels, %d ways, 1 die, %d planes, %d blocks, %d pages",
		cfg.Channels, cfg.Ways, g.Planes, g.BlocksPerPlane, g.PagesPerBlock))
	t.Add("page size", fmt.Sprintf("%d KB", g.PageSize/1024))
	t.Add("baseline flash bus", fmt.Sprintf("%d MT/s, 8 bits", cfg.BusMTps))
	t.Add("pSSD flash bus", fmt.Sprintf("%d MT/s, 16 bits", cfg.BusMTps))
	t.Add("pnSSD v-channels", fmt.Sprintf("%d, 8 bits each", cfg.Ways))
	t.Add("flash timing", fmt.Sprintf("read=%v write=%v erase=%v", cfg.Timing.Read, cfg.Timing.Program, cfg.Timing.Erase))
	t.Add("logical utilization", report.F2(cfg.LogicalUtilization))
	emit(t)
}

func table3(_ exp.Options, emit func(*report.Table)) {
	t := report.New("Table III: SSD architectures evaluated", "acronym", "description")
	for _, row := range exp.TableIII() {
		t.Add(row[0], row[1])
	}
	emit(t)
}

var ablations = []struct {
	name  string
	title string
	run   func(exp.Options) []exp.AblationRow
}{
	{"vwidth", "Ablation: v-channel width (h fixed at 8 bits)", exp.AblationVWidth},
	{"routing", "Ablation: routing policy under read skew", exp.AblationRouting},
	{"ctrl-latency", "Ablation: control-plane message latency", exp.AblationCtrlLatency},
	{"gc-group", "Ablation: spatial GC group fraction", exp.AblationGCGroup},
	{"organization", "Ablation: Omnibus organization at 64 chips", exp.AblationOrganization},
	{"ecc", "Ablation: on-die ECC failure rate for flash-to-flash copies", exp.AblationEccFallback},
	{"victim", "Ablation: GC victim selection policy", exp.AblationVictimPolicy},
}

func runAblations(which string, opt exp.Options, emit func(*report.Table)) {
	ran := false
	for _, a := range ablations {
		if which != "all" && which != a.name {
			continue
		}
		ran = true
		t := report.New(a.title, "config", "mean latency", "p99", "detail")
		for _, row := range a.run(opt) {
			t.Add(row.Name, row.Latency.String(), row.P99.String(), row.Detail)
		}
		emit(t)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown ablation %q\n", which)
		os.Exit(2)
	}
}

func runFaultExperiments(which string, opt exp.Options, emit func(*report.Table)) {
	ran := false
	if which == "sweep" || which == "all" {
		ran = true
		rows := exp.FaultSweep(opt)
		t := report.New("Degraded mode: fault-rate sweep x architecture (rocksdb-0, PaGC, >=2 program-fails + 1 erase-fail per chip)",
			"architecture", "read-ECC rate", "mean latency", "p99", "KIOPS",
			"retries", "relays", "retired", "remaps", "ok")
		for _, r := range rows {
			ok := "yes"
			if !r.Consistent || !r.Completed {
				ok = "NO"
			}
			t.Add(r.Arch.String(), report.Pct(r.ReadECC), r.Latency.String(), r.P99.String(),
				report.F1(r.KIOPS), fmt.Sprint(r.RAS.ReadRetries), fmt.Sprint(r.RAS.ReadRelays),
				fmt.Sprint(r.RAS.BlocksRetired), fmt.Sprint(r.RAS.WriteRemaps), ok)
		}
		emit(t)
	}
	if which == "degraded" || which == "all" {
		ran = true
		rows := exp.DegradedSweep(opt)
		t := report.New("Degraded mode: pnSSD+split with SpGC under interconnect faults (rocksdb-0)",
			"scenario", "mean latency", "p99", "KIOPS", "vs healthy",
			"grant drops", "failovers", "dead-v copies", "degraded returns", "ok")
		for _, r := range rows {
			ok := "yes"
			if !r.Consistent || !r.Completed {
				ok = "NO"
			}
			t.Add(r.Name, r.Latency.String(), r.P99.String(), report.F1(r.KIOPS),
				report.Pct(r.Delta), fmt.Sprint(r.RAS.GrantDrops), fmt.Sprint(r.RAS.CopyFailovers),
				fmt.Sprint(r.RAS.DeadVCopies), fmt.Sprint(r.RAS.DegradedReturns), ok)
		}
		emit(t)
		for _, r := range rows {
			if r.RAS.TotalFaults() > 0 {
				emit(report.RASTable("RAS counters: "+r.Name, r.RAS))
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown fault experiment %q\n", which)
		os.Exit(2)
	}
}

func figTenant(opt exp.Options, emit func(*report.Table)) {
	rows := exp.TenantSweep(opt)
	t := report.New("Tenant interference: noisy write neighbor vs latency-sensitive reader (arbiter x SpGC; supplementary analysis)",
		"config", "tenant", "mean", "p50", "p95", "p99", "p99.9", "KIOPS", "SLO misses")
	for _, r := range rows {
		for _, tn := range r.Tenants {
			t.Add(r.Point.Label(), tn.Name, tn.Mean.String(), tn.P50.String(), tn.P95.String(),
				tn.P99.String(), tn.P999.String(), report.F1(tn.KIOPS), fmt.Sprint(tn.SLOViolations))
		}
	}
	emit(t)
}

func figArray(opt exp.Options, emit func(*report.Table)) {
	rows := exp.ArraySweep(opt)
	t := report.New("Rack-scale erasure-coded array: 2 groups of 2+1 + spare, rocksdb-0 (supplementary analysis)",
		"architecture", "gc", "scenario", "mean", "p99", "KIOPS",
		"degraded reads", "rebuild pages", "rebuild time", "failed reads", "GC copies", "ok")
	for _, r := range rows {
		ok := "yes"
		if !r.OK {
			ok = "NO"
		}
		t.Add(r.Arch.String(), r.GC.String(), string(r.Scenario),
			r.Latency.String(), r.P99.String(), report.F1(r.KIOPS),
			fmt.Sprint(r.RAS.DegradedReads), fmt.Sprint(r.RAS.RebuildPages),
			r.RebuildTime.String(), fmt.Sprint(r.RAS.FailedReads), fmt.Sprint(r.GCCopies), ok)
	}
	emit(t)
}

func figSched(opt exp.Options, emit func(*report.Table)) {
	rows := exp.SchedSweep(opt)
	t := report.New("Controller scheduling: Venice/Sprinkler-class policies vs Omnibus wires (rocksdb-0, GC active; supplementary analysis)",
		"architecture", "scheduler", "gc", "mean", "p99", "KIOPS", "MB/s", "GC copies", "deferred", "reordered")
	for _, r := range rows {
		gc := "PaGC"
		if r.Point.SpGC {
			gc = "SpGC"
		}
		t.Add(r.Point.Arch.String(), r.Point.Sched, gc, r.Mean.String(), r.P99.String(),
			report.F1(r.KIOPS), report.F1(r.BWMBps), fmt.Sprint(r.GCCopied),
			fmt.Sprint(r.Deferred), fmt.Sprint(r.Reordered))
	}
	emit(t)

	noisy := exp.SchedNoisy(opt)
	t = report.New("Controller scheduling under a noisy neighbor (dwrr + SpGC; latency tenant's tail is the score)",
		"architecture", "scheduler", "latency p99", "latency p99.9", "SLO misses", "noisy p99", "deferred", "reordered")
	for _, r := range noisy {
		t.Add(r.Point.Arch.String(), r.Point.Sched, r.LatencyP99.String(), r.LatencyP999.String(),
			fmt.Sprint(r.SLOViolations), r.NoisyP99.String(), fmt.Sprint(r.Deferred), fmt.Sprint(r.Reordered))
	}
	emit(t)
}

func figFmmu(opt exp.Options, emit func(*report.Table)) {
	rows := exp.FmmuSweep(opt)
	t := report.New("On-flash mapping: map-cache size x workload skew (pnSSD+split, GC active; supplementary analysis)",
		"mapping", "skew", "mean", "p99", "KIOPS", "map lookups", "map misses", "miss rate", "fetches", "writebacks")
	for _, r := range rows {
		name := r.Point.Mapping
		if r.Point.Mapping == "fmmu" {
			name = fmt.Sprintf("fmmu-%d", r.Point.Entries)
		}
		t.Add(name, r.Point.Skew, r.Mean.String(), r.P99.String(), report.F1(r.KIOPS),
			fmt.Sprint(r.MapLookups), fmt.Sprint(r.MapMisses), report.F2(r.MissRate),
			fmt.Sprint(r.MapFetches), fmt.Sprint(r.MapWritebacks))
	}
	emit(t)
}

func figContention(opt exp.Options, emit func(*report.Table)) {
	rows := exp.Contention(opt)
	t := report.New("Channel contention profile (search-0, read-skewed; supplementary analysis)",
		"architecture", "mean latency", "h mean wait", "worst wait", "v mean wait", "busiest util")
	for _, r := range rows {
		t.Add(r.Arch.String(), r.MeanLatency.String(), r.HMeanWait.String(),
			r.HMaxWait.String(), r.VMeanWait.String(), report.F2(r.BusiestUtil))
	}
	emit(t)
}
