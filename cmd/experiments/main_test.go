package main

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/report"
)

// tinyOpts shrinks runs far below -quick and attaches the invariant
// checker, so header tests double as a checked smoke pass of the CLI's
// table plumbing.
func tinyOpts() exp.Options {
	opt := exp.Quick()
	opt.Cfg.Check = &check.Config{}
	opt.TraceRequests = 150
	opt.SyntheticRequests = 30
	opt.Traces = []string{"rocksdb-0"}
	return opt
}

// collect runs one figure renderer and returns the first CSV line (the
// column headers) of every table it emits.
func collect(fn func(exp.Options, func(*report.Table)), opt exp.Options) []string {
	var heads []string
	fn(opt, func(t *report.Table) {
		heads = append(heads, strings.SplitN(t.CSV(), "\n", 2)[0])
	})
	return heads
}

// Downstream scripts parse the -csv output by column name; renaming or
// reordering a column is a breaking change this test makes explicit.
func TestCSVHeaderStability(t *testing.T) {
	opt := tinyOpts()
	cases := []struct {
		name string
		run  func(exp.Options, func(*report.Table))
		want []string
	}{
		{"contention", figContention, []string{
			"architecture,mean latency,h mean wait,worst wait,v mean wait,busiest util",
		}},
		{"fig4", fig4, []string{
			"trace,1.25x,1.5x,2.0x",
		}},
		{"fig14and15", fig14and15, []string{
			"trace,baseSSD,NoSSD(pin-constraint),NoSSD(no constraint),pSSD,pnSSD,pnSSD(+split)",
			"trace,baseSSD,NoSSD(pin-constraint),NoSSD(no constraint),pSSD,pnSSD,pnSSD(+split)",
		}},
		{"fig20a", fig20a, []string{
			"config,p50,p90,p99,p99.9,max",
		}},
		{"fig20b", fig20b, []string{
			"config,mean GC round,rounds,pages copied",
		}},
		{"table2", table2, []string{
			"parameter,value",
		}},
		{"tenant", figTenant, []string{
			"config,tenant,mean,p50,p95,p99,p99.9,KIOPS,SLO misses",
		}},
		{"fmmu", figFmmu, []string{
			"mapping,skew,mean,p99,KIOPS,map lookups,map misses,miss rate,fetches,writebacks",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := collect(c.run, opt)
			if len(got) != len(c.want) {
				t.Fatalf("%d tables emitted, want %d: %q", len(got), len(c.want), got)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("table %d header\n got: %s\nwant: %s", i, got[i], c.want[i])
				}
			}
		})
	}
}
