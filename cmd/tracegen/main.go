// Command tracegen emits synthetic workload traces as CSV, either from a
// named preset or from explicit parameters. The output replays with
// `pssdsim -tracefile`.
//
//	go run ./cmd/tracegen -preset exchange-1 -n 5000 > exchange1.csv
//	go run ./cmd/tracegen -read-ratio 0.7 -zipf 1.3 -n 1000 > custom.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	preset := flag.String("preset", "", "named preset (empty = custom parameters)")
	n := flag.Int("n", 2000, "number of requests")
	footprint := flag.Int64("footprint", 1<<17, "logical footprint in pages")
	seed := flag.Int64("seed", 1, "generator seed")
	readRatio := flag.Float64("read-ratio", 0.5, "fraction of reads (custom)")
	zipf := flag.Float64("zipf", 0, "Zipf skew s (>1 skews, 0 uniform; custom)")
	regions := flag.Int("regions", 64, "hot region count (custom)")
	regionPages := flag.Int("region-pages", 0, "read-hot window pages per region (custom)")
	reqPages := flag.Int("req-pages", 4, "request size in pages (custom)")
	gapUS := flag.Int("gap-us", 80, "mean inter-burst gap in microseconds (custom)")
	burst := flag.Int("burst", 4, "requests per burst (custom)")
	list := flag.Bool("list", false, "list presets and exit")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			why, _ := workload.Describe(name)
			fmt.Printf("%-12s %s\n", name, why)
		}
		return
	}

	var tr workload.Trace
	var err error
	if *preset != "" {
		tr, err = workload.Named(*preset, *footprint, *n, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		tr = workload.Generate("custom", workload.Params{
			ReadRatio:   *readRatio,
			ZipfS:       *zipf,
			HotRegions:  *regions,
			RegionPages: *regionPages,
			ReqPages:    *reqPages,
			MeanGap:     sim.Time(*gapUS) * sim.Microsecond,
			Burst:       *burst,
		}, *footprint, *n, *seed)
	}
	if err := workload.WriteCSV(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reads, writes, frac := tr.Mix()
	fmt.Fprintf(os.Stderr, "%s: %d requests (%d R / %d W, %.0f%% read), footprint %d pages, duration %v\n",
		tr.Name, len(tr.Requests), reads, writes, frac*100, tr.Footprint, tr.Duration())
}
