// Command report renders telemetry run documents as one self-contained
// HTML file: inline SVG sparklines for every windowed series (with the
// rebuild window shaded when the run carries rebuild marks) and stacked
// per-phase latency-attribution bars. It accepts both run-document
// shapes the repo produces — the device summary JSON written by
// `cmd/experiments -metrics-json` (when telemetry was enabled) and the
// array run document written by `cmd/experiments -fig array -telemetry`
// — and the output embeds no external assets, so it can be archived
// alongside the raw JSON.
//
//	go run ./cmd/experiments -fig array -quick -telemetry tel.json
//	go run ./cmd/report -o report.html tel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/telemetry"
)

// runDoc is the union of the two input shapes. Decoding is lenient:
// unknown fields are ignored, so a plain ssd.Summary and an
// exp.ArrayTelemetryDoc both land here, each filling its own subset.
type runDoc struct {
	// exp.ArrayTelemetryDoc fields.
	Name      string  `json:"name"`
	GC        string  `json:"gc"`
	Scenario  string  `json:"scenario"`
	MeanMs    float64 `json:"mean_ms"`
	P99Ms     float64 `json:"p99_ms"`
	RebuildMs float64 `json:"rebuild_ms"`

	// ssd.Summary fields.
	Arch      string  `json:"arch"`
	SimTimeUs float64 `json:"sim_time_us"`
	Requests  int64   `json:"requests"`
	KIOPS     float64 `json:"kiops"`

	Telemetry *telemetry.Summary `json:"telemetry"`
}

func main() {
	out := flag.String("o", "report.html", "output HTML file")
	title := flag.String("title", "simulation run report", "document title")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: report [-o out.html] run.json [run2.json ...]")
		os.Exit(2)
	}

	var runs []report.HTMLRun
	for _, path := range flag.Args() {
		doc, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runs = append(runs, toHTMLRun(path, doc))
	}

	fh, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", *out, err)
		os.Exit(1)
	}
	defer fh.Close()
	if err := report.WriteHTML(fh, *title, runs); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d run(s)\n", *out, len(runs))
}

func load(path string) (*runDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc runDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Telemetry == nil {
		return nil, fmt.Errorf("%s: no telemetry section — produce the input with "+
			"`experiments -fig array -telemetry` or `-metrics-json` on a telemetry-enabled run", path)
	}
	return &doc, nil
}

// toHTMLRun flattens one run document into the renderer's shape.
func toHTMLRun(path string, doc *runDoc) report.HTMLRun {
	tel := doc.Telemetry
	title := doc.Name
	if title == "" {
		title = doc.Arch + " run"
	}
	r := report.HTMLRun{Title: title, WindowUs: tel.WindowUs}

	meta := func(k, format string, v any, skip bool) {
		if !skip {
			r.Meta = append(r.Meta, [2]string{k, fmt.Sprintf(format, v)})
		}
	}
	meta("source", "%s", path, false)
	meta("architecture", "%s", doc.Arch, doc.Arch == "")
	meta("gc", "%s", doc.GC, doc.GC == "")
	meta("scenario", "%s", doc.Scenario, doc.Scenario == "")
	meta("requests", "%d", doc.Requests, false)
	meta("windows", "%d", tel.Windows, false)
	meta("window", "%.0f us", tel.WindowUs, false)
	meta("mean latency", "%.2f ms", doc.MeanMs, doc.MeanMs == 0)
	meta("p99 latency", "%.2f ms", doc.P99Ms, doc.P99Ms == 0)
	meta("rebuild time", "%.1f ms", doc.RebuildMs, doc.RebuildMs == 0)
	meta("throughput", "%.1f KIOPS", doc.KIOPS, doc.KIOPS == 0)
	meta("attribution violations", "%d", tel.AttributionViolations, tel.AttributionViolations == 0)

	for _, s := range tel.Series {
		r.Series = append(r.Series, report.HTMLSeries{Name: s.Name, Unit: s.Unit, Values: s.Values})
	}
	for _, m := range tel.Marks {
		r.Marks = append(r.Marks, report.HTMLMark{Name: m.Name, AtUs: m.AtUs})
	}
	// Group attribution rows by request kind, preserving summary order.
	byKind := map[string]int{}
	for _, p := range tel.Phases {
		i, ok := byKind[p.Kind]
		if !ok {
			i = len(r.Phases)
			byKind[p.Kind] = i
			r.Phases = append(r.Phases, report.HTMLPhaseGroup{Kind: p.Kind})
		}
		r.Phases[i].Phases = append(r.Phases[i].Phases, report.HTMLPhase{
			Name: p.Phase, Count: p.Count, Share: p.Share, MeanUs: p.MeanUs, P99Us: p.P99Us,
		})
	}
	return r
}
