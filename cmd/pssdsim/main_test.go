package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from this run")

// The CLI smoke test: one full deterministic run — scaled pnSSD+split
// device, spatial GC, invariant checker attached — compared byte for
// byte against the committed transcript. Any behavior drift in the
// simulator, the report formatting, or the checker wiring shows up as
// a golden diff.
func TestGoldenOutput(t *testing.T) {
	args := []string{"-arch", "pnssd+split", "-preset", "rocksdb-0", "-gc", "spgc", "-requests", "300", "-seed", "7", "-check"}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	const golden = "testdata/golden_rocksdb0_spgc.txt"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (rerun with -update to accept):\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	if !strings.Contains(buf.String(), "0 violations") {
		t.Error("checked run did not report zero violations")
	}
}

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rocksdb-0", "exchange-1", "web-0"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing preset %s", name)
		}
	}
}

func TestBadFlagsReturnErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-arch", "bogus"},
		{"-gc", "bogus"},
		{"-policy", "bogus"},
		{"-synthetic", "bogus"},
		{"-preset", "bogus", "-requests", "10"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
