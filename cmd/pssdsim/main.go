// Command pssdsim runs one SSD simulation: pick an architecture, a
// workload (named preset, trace CSV file, or synthetic pattern), a GC
// mode, and get the latency/throughput report. -trace writes a Chrome
// trace-event JSON (open in Perfetto) and -metrics-json a machine-
// readable run summary.
//
//	go run ./cmd/pssdsim -arch pnssd+split -preset rocksdb-0 -gc spgc
//	go run ./cmd/pssdsim -arch pssd -synthetic rand-read -outstanding 32
//	go run ./cmd/pssdsim -arch base -tracefile mytrace.csv
//	go run ./cmd/pssdsim -arch pnssd+split -gc spgc -trace out.json -metrics-json run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ftl"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

var archNames = map[string]ssd.Arch{
	"base":        ssd.ArchBase,
	"nossd-pin":   ssd.ArchNoSSDPin,
	"nossd-free":  ssd.ArchNoSSDFree,
	"pssd":        ssd.ArchPSSD,
	"pnssd":       ssd.ArchPnSSD,
	"pnssd+split": ssd.ArchPnSSDSplit,
}

var gcNames = map[string]ftl.GCMode{
	"none":       ftl.GCNone,
	"pagc":       ftl.GCParallel,
	"preemptive": ftl.GCPreemptive,
	"spgc":       ftl.GCSpatial,
}

func main() {
	archFlag := flag.String("arch", "pnssd+split", "architecture: base, nossd-pin, nossd-free, pssd, pnssd, pnssd+split")
	preset := flag.String("preset", "", "named workload preset (see -list)")
	traceFile := flag.String("tracefile", "", "replay a trace CSV (arrival_ps,op,lpn,pages)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON to this file (open in Perfetto)")
	metricsOut := flag.String("metrics-json", "", "write the machine-readable run summary JSON to this file")
	synth := flag.String("synthetic", "", "closed-loop pattern: seq-read, seq-write, rand-read, rand-write")
	outstanding := flag.Int("outstanding", 16, "outstanding I/Os for synthetic runs")
	requests := flag.Int("requests", 2000, "request count")
	gcFlag := flag.String("gc", "none", "GC mode: none, pagc, preemptive, spgc")
	policy := flag.String("policy", "pcwd", "page allocation policy: pcwd, pwcd")
	seed := flag.Int64("seed", 1, "workload seed")
	full := flag.Bool("full", false, "full Table II geometry (slow); default is the scaled geometry")
	list := flag.Bool("list", false, "list named traces and exit")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			why, _ := workload.Describe(name)
			fmt.Printf("%-12s %s\n", name, why)
		}
		return
	}

	arch, ok := archNames[strings.ToLower(*archFlag)]
	if !ok {
		fatalf("unknown architecture %q", *archFlag)
	}
	gc, ok := gcNames[strings.ToLower(*gcFlag)]
	if !ok {
		fatalf("unknown GC mode %q", *gcFlag)
	}

	cfg := ssd.ScaledConfig()
	if *full {
		cfg = ssd.DefaultConfig()
	}
	cfg.FTL.GCMode = gc
	switch strings.ToLower(*policy) {
	case "pcwd":
		cfg.FTL.Policy = ftl.PCWD
	case "pwcd":
		cfg.FTL.Policy = ftl.PWCD
	default:
		fatalf("unknown policy %q", *policy)
	}
	if gc != ftl.GCNone {
		cfg.LogicalUtilization = 0.75
	}
	if *traceOut != "" || *metricsOut != "" {
		cfg.Trace = &trace.Config{}
	}

	s := ssd.New(arch, cfg)
	foot := s.Config.LogicalPages()
	fmt.Printf("architecture: %s (%s)\n", arch, arch.Describe())
	fmt.Printf("device: %d chips, %d logical pages (%d MB), GC=%s, policy=%s\n",
		s.Grid.NumChips(), foot, foot*int64(cfg.Geometry.PageSize)/(1<<20), gc, cfg.FTL.Policy)

	s.Host.Warmup(foot)
	switch {
	case *synth != "":
		var p workload.Pattern
		switch strings.ToLower(*synth) {
		case "seq-read":
			p = workload.SeqRead
		case "seq-write":
			p = workload.SeqWrite
		case "rand-read":
			p = workload.RandRead
		case "rand-write":
			p = workload.RandWrite
		default:
			fatalf("unknown synthetic pattern %q", *synth)
		}
		fmt.Printf("workload: synthetic %s, %d outstanding, %d requests\n", p, *outstanding, *requests)
		s.Host.RunClosedLoop(workload.Synthetic(p, foot, 4, *seed), *outstanding, *requests)
	case *traceFile != "":
		fh, err := os.Open(*traceFile)
		if err != nil {
			fatalf("open trace: %v", err)
		}
		tr, err := workload.ReadCSV(fh, *traceFile)
		fh.Close()
		if err != nil {
			fatalf("parse trace: %v", err)
		}
		if tr.Footprint > foot {
			fatalf("trace footprint %d exceeds device logical pages %d", tr.Footprint, foot)
		}
		fmt.Printf("workload: trace file %s, %d requests\n", *traceFile, len(tr.Requests))
		s.Host.Replay(tr.Requests)
	default:
		name := *preset
		if name == "" {
			name = "rocksdb-0"
		}
		tr, err := workload.Named(name, foot, *requests, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		reads, writes, frac := tr.Mix()
		fmt.Printf("workload: %s (%d reads / %d writes, %.0f%% read), duration %v\n",
			name, reads, writes, frac*100, tr.Duration())
		s.Host.Replay(tr.Requests)
	}

	end := s.Run()
	printReport(s, end)

	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create trace file: %v", err)
		}
		if err := s.Tracer.ExportChrome(fh); err != nil {
			fatalf("write trace: %v", err)
		}
		fh.Close()
		fmt.Printf("trace: %d events -> %s (open in https://ui.perfetto.dev)\n", s.Tracer.Events(), *traceOut)
	}
	if *metricsOut != "" {
		fh, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("create metrics file: %v", err)
		}
		if err := s.WriteSummaryJSON(fh); err != nil {
			fatalf("write metrics: %v", err)
		}
		fh.Close()
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
}

func printReport(s *ssd.SSD, end sim.Time) {
	m := s.Metrics()
	comb := m.Combined()
	t := report.New("\nResults", "metric", "value")
	t.Add("simulated time", end.String())
	t.Add("requests", fmt.Sprint(m.TotalRequests()))
	t.Add("mean latency", comb.Mean().String())
	t.Add("read mean", m.Latency[stats.Read].Mean().String())
	t.Add("write mean", m.Latency[stats.Write].Mean().String())
	t.Add("p50 / p99 / p99.9", fmt.Sprintf("%v / %v / %v", comb.Percentile(50), comb.P99(), comb.Percentile(99.9)))
	t.Add("throughput", fmt.Sprintf("%.1f KIOPS, %.1f MB/s", m.KIOPS(), m.BandwidthMBps()))
	st := s.FTL.Stats()
	if st.GCRounds > 0 {
		t.Add("GC rounds", fmt.Sprint(st.GCRounds))
		t.Add("GC pages copied", fmt.Sprint(st.GCPagesCopied))
		t.Add("GC blocks erased", fmt.Sprint(st.GCBlocksErased))
		t.Add("GC total time", st.GCTotalTime.String())
	}
	t.Add("sysbus busy", s.Soc.SysBusBusy().String())
	t.Add("dram busy", s.Soc.DramBusy().String())
	fmt.Println(t.String())
	printHeatmap(s, end)
	if err := s.FTL.CheckConsistency(); err != nil {
		fatalf("FTL consistency check failed: %v", err)
	}
	fmt.Println("FTL mapping consistency: OK")
}

// printHeatmap renders the per-bus utilization timelines as a shade-rune
// heat table (the textual Fig 3), one row per h- and v-channel. It needs
// the trace recorder's fixed-window timelines, so it renders only when
// tracing is enabled.
func printHeatmap(s *ssd.SSD, end sim.Time) {
	if !s.Tracer.Enabled() {
		return
	}
	t := report.New(fmt.Sprintf("Bus utilization (%v windows)", s.Tracer.Window()), "bus", "busy", "timeline")
	for _, kind := range []string{trace.KindHChannel, trace.KindVChannel} {
		names, rows := s.Tracer.HeatRows(kind, end)
		for i, name := range names {
			busy := s.Tracer.BusyTotals(kind)[name]
			frac := 0.0
			if end > 0 {
				frac = float64(busy) / float64(end)
			}
			t.Add(name, report.Pct(frac), report.Heat(rows[i]))
		}
	}
	if len(t.Rows) > 0 {
		fmt.Println(t.String())
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
