// Command pssdsim runs one SSD simulation: pick an architecture, a
// workload (named preset, trace CSV file, or synthetic pattern), a GC
// mode, and get the latency/throughput report. -trace writes a Chrome
// trace-event JSON (open in Perfetto), -metrics-json a machine-
// readable run summary, and -check attaches the cross-layer invariant
// checker (page conservation, bus legality, leak detection at drain).
//
//	go run ./cmd/pssdsim -arch pnssd+split -preset rocksdb-0 -gc spgc
//	go run ./cmd/pssdsim -arch pssd -synthetic rand-read -outstanding 32
//	go run ./cmd/pssdsim -arch base -tracefile mytrace.csv
//	go run ./cmd/pssdsim -arch pnssd+split -gc spgc -check -trace out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/ftl"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

var archNames = map[string]ssd.Arch{
	"base":        ssd.ArchBase,
	"nossd-pin":   ssd.ArchNoSSDPin,
	"nossd-free":  ssd.ArchNoSSDFree,
	"pssd":        ssd.ArchPSSD,
	"pnssd":       ssd.ArchPnSSD,
	"pnssd+split": ssd.ArchPnSSDSplit,
}

var gcNames = map[string]ftl.GCMode{
	"none":       ftl.GCNone,
	"pagc":       ftl.GCParallel,
	"preemptive": ftl.GCPreemptive,
	"spgc":       ftl.GCSpatial,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the whole binary behind a testable seam: parse args, simulate,
// and print to stdout. The golden-output test drives it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pssdsim", flag.ContinueOnError)
	archFlag := fs.String("arch", "pnssd+split", "architecture: base, nossd-pin, nossd-free, pssd, pnssd, pnssd+split")
	preset := fs.String("preset", "", "named workload preset (see -list)")
	traceFile := fs.String("tracefile", "", "replay a trace CSV (arrival_ps,op,lpn,pages)")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON to this file (open in Perfetto)")
	metricsOut := fs.String("metrics-json", "", "write the machine-readable run summary JSON to this file")
	synth := fs.String("synthetic", "", "closed-loop pattern: seq-read, seq-write, rand-read, rand-write")
	outstanding := fs.Int("outstanding", 16, "outstanding I/Os for synthetic runs")
	requests := fs.Int("requests", 2000, "request count")
	gcFlag := fs.String("gc", "none", "GC mode: none, pagc, preemptive, spgc")
	policy := fs.String("policy", "pcwd", "page allocation policy: pcwd, pwcd")
	seed := fs.Int64("seed", 1, "workload seed")
	full := fs.Bool("full", false, "full Table II geometry (slow); default is the scaled geometry")
	checkFlag := fs.Bool("check", false, "attach the invariant checker and verify the run at drain")
	sched := fs.String("sched", "fifo", "controller scheduling policy: fifo, conflict (Venice-style path reservation), ooo (Sprinkler-style die reordering)")
	mapping := fs.String("mapping", "flat", "FTL mapping mode: flat (whole map in DRAM), fmmu (on-flash map with a bounded cache)")
	mapcache := fs.Int("mapcache", 0, "with -mapping fmmu: map cache capacity in translation-page entries (0 = default 64)")
	mapevict := fs.String("mapevict", "", "with -mapping fmmu: cache eviction policy, clock or lru (default clock)")
	shards := fs.Int("shards", 0, "run on a partitioned engine with this many shards (0 or 1 = serial); results are byte-identical at any count")
	list := fs.Bool("list", false, "list named traces and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range workload.Names() {
			why, _ := workload.Describe(name)
			fmt.Fprintf(stdout, "%-12s %s\n", name, why)
		}
		return nil
	}

	arch, ok := archNames[strings.ToLower(*archFlag)]
	if !ok {
		return fmt.Errorf("unknown architecture %q", *archFlag)
	}
	gc, ok := gcNames[strings.ToLower(*gcFlag)]
	if !ok {
		return fmt.Errorf("unknown GC mode %q", *gcFlag)
	}

	cfg := ssd.ScaledConfig()
	if *full {
		cfg = ssd.DefaultConfig()
	}
	cfg.FTL.GCMode = gc
	switch strings.ToLower(*policy) {
	case "pcwd":
		cfg.FTL.Policy = ftl.PCWD
	case "pwcd":
		cfg.FTL.Policy = ftl.PWCD
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if gc != ftl.GCNone {
		cfg.LogicalUtilization = 0.75
	}
	if *traceOut != "" || *metricsOut != "" {
		cfg.Trace = &trace.Config{}
	}
	if *checkFlag {
		cfg.Check = &check.Config{}
	}
	if *shards < 0 {
		return fmt.Errorf("negative shard count %d", *shards)
	}
	cfg.Shards = *shards
	if _, err := controller.ParseSchedPolicy(*sched); err != nil {
		return err
	}
	cfg.Scheduler = *sched
	switch strings.ToLower(*mapping) {
	case "flat":
	case "fmmu":
		switch strings.ToLower(*mapevict) {
		case "", "clock", "lru":
		default:
			return fmt.Errorf("unknown map eviction policy %q (want clock or lru)", *mapevict)
		}
		if *mapcache < 0 {
			return fmt.Errorf("negative map cache size %d", *mapcache)
		}
		cfg.Mapping = "fmmu"
		cfg.MapCacheEntries = *mapcache
		cfg.MapEviction = strings.ToLower(*mapevict)
	default:
		return fmt.Errorf("unknown mapping mode %q (want flat or fmmu)", *mapping)
	}

	s := ssd.New(arch, cfg)
	foot := s.Config.LogicalPages()
	fmt.Fprintf(stdout, "architecture: %s (%s)\n", arch, arch.Describe())
	fmt.Fprintf(stdout, "device: %d chips, %d logical pages (%d MB), GC=%s, policy=%s\n",
		s.Grid.NumChips(), foot, foot*int64(cfg.Geometry.PageSize)/(1<<20), gc, cfg.FTL.Policy)
	if s.Sched != nil { // fifo leaves the fabric unwrapped, so this line only appears for non-default policies
		fmt.Fprintf(stdout, "scheduler: %s (window=%d, reorder bound=%d)\n",
			s.Sched.Policy(), s.Sched.Window(), s.Sched.ReorderBound())
	}
	if s.FTL.MapEnabled() { // flat runs carry no map unit, so this line only appears under -mapping fmmu
		fmt.Fprintf(stdout, "mapping: fmmu (%d translation pages, cache %d entries)\n",
			s.FTL.NumTranslationPages(), s.FTL.MapCacheEntries())
	}

	s.Host.Warmup(foot)
	switch {
	case *synth != "":
		var p workload.Pattern
		switch strings.ToLower(*synth) {
		case "seq-read":
			p = workload.SeqRead
		case "seq-write":
			p = workload.SeqWrite
		case "rand-read":
			p = workload.RandRead
		case "rand-write":
			p = workload.RandWrite
		default:
			return fmt.Errorf("unknown synthetic pattern %q", *synth)
		}
		fmt.Fprintf(stdout, "workload: synthetic %s, %d outstanding, %d requests\n", p, *outstanding, *requests)
		s.Host.RunClosedLoop(workload.Synthetic(p, foot, 4, *seed), *outstanding, *requests)
	case *traceFile != "":
		fh, err := os.Open(*traceFile)
		if err != nil {
			return fmt.Errorf("open trace: %v", err)
		}
		tr, err := workload.ReadCSV(fh, *traceFile)
		fh.Close()
		if err != nil {
			return fmt.Errorf("parse trace: %v", err)
		}
		if tr.Footprint > foot {
			return fmt.Errorf("trace footprint %d exceeds device logical pages %d", tr.Footprint, foot)
		}
		fmt.Fprintf(stdout, "workload: trace file %s, %d requests\n", *traceFile, len(tr.Requests))
		if _, err := s.Host.Replay(tr.Requests); err != nil {
			return fmt.Errorf("replay trace: %v", err)
		}
	default:
		name := *preset
		if name == "" {
			name = "rocksdb-0"
		}
		tr, err := workload.Named(name, foot, *requests, *seed)
		if err != nil {
			return err
		}
		reads, writes, frac := tr.Mix()
		fmt.Fprintf(stdout, "workload: %s (%d reads / %d writes, %.0f%% read), duration %v\n",
			name, reads, writes, frac*100, tr.Duration())
		if _, err := s.Host.Replay(tr.Requests); err != nil {
			return fmt.Errorf("replay workload: %v", err)
		}
	}

	// Drain (serial or sharded per -shards) plus an explicit verify so a
	// violation surfaces as a clean error instead of SSD.Run's panic.
	end := s.Drain()
	if s.Checker.Enabled() {
		if err := s.VerifyInvariants(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "invariants: %d checks, 0 violations\n", s.Checker.Checks())
	}
	if err := printReport(stdout, s, end); err != nil {
		return err
	}

	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("create trace file: %v", err)
		}
		if err := s.Tracer.ExportChrome(fh); err != nil {
			return fmt.Errorf("write trace: %v", err)
		}
		fh.Close()
		fmt.Fprintf(stdout, "trace: %d events -> %s (open in https://ui.perfetto.dev)\n", s.Tracer.Events(), *traceOut)
	}
	if *metricsOut != "" {
		fh, err := os.Create(*metricsOut)
		if err != nil {
			return fmt.Errorf("create metrics file: %v", err)
		}
		if err := s.WriteSummaryJSON(fh); err != nil {
			return fmt.Errorf("write metrics: %v", err)
		}
		fh.Close()
		fmt.Fprintf(stdout, "metrics: %s\n", *metricsOut)
	}
	return nil
}

func printReport(stdout io.Writer, s *ssd.SSD, end sim.Time) error {
	m := s.Metrics()
	comb := m.Combined()
	t := report.New("\nResults", "metric", "value")
	t.Add("simulated time", end.String())
	t.Add("requests", fmt.Sprint(m.TotalRequests()))
	t.Add("mean latency", comb.Mean().String())
	t.Add("read mean", m.Latency[stats.Read].Mean().String())
	t.Add("write mean", m.Latency[stats.Write].Mean().String())
	t.Add("p50 / p99 / p99.9", fmt.Sprintf("%v / %v / %v", comb.Percentile(50), comb.P99(), comb.Percentile(99.9)))
	t.Add("throughput", fmt.Sprintf("%.1f KIOPS, %.1f MB/s", m.KIOPS(), m.BandwidthMBps()))
	st := s.FTL.Stats()
	if st.GCRounds > 0 {
		t.Add("GC rounds", fmt.Sprint(st.GCRounds))
		t.Add("GC pages copied", fmt.Sprint(st.GCPagesCopied))
		t.Add("GC blocks erased", fmt.Sprint(st.GCBlocksErased))
		t.Add("GC total time", st.GCTotalTime.String())
	}
	if s.Sched != nil {
		deferred, reordered, forced := s.Sched.Counts()
		t.Add("sched deferred / reordered / forced", fmt.Sprintf("%d / %d / %d", deferred, reordered, forced))
		t.Add("sched peak queue", fmt.Sprint(s.Sched.MaxPending()))
	}
	if s.FTL.MapEnabled() {
		ms := s.FTL.MapStats()
		t.Add("map hits / misses", fmt.Sprintf("%d / %d (%.0f%% miss)", ms.Hits, ms.Misses, ms.MissRate()*100))
		t.Add("map fetches / writebacks", fmt.Sprintf("%d / %d", ms.Fetches, ms.Writebacks))
		if ms.CleanRounds > 0 {
			t.Add("map clean rounds / erases", fmt.Sprintf("%d / %d", ms.CleanRounds, ms.MapErases))
		}
	}
	t.Add("sysbus busy", s.Soc.SysBusBusy().String())
	t.Add("dram busy", s.Soc.DramBusy().String())
	fmt.Fprintln(stdout, t.String())
	printHeatmap(stdout, s, end)
	if err := s.FTL.CheckConsistency(); err != nil {
		return fmt.Errorf("FTL consistency check failed: %v", err)
	}
	fmt.Fprintln(stdout, "FTL mapping consistency: OK")
	return nil
}

// printHeatmap renders the per-bus utilization timelines as a shade-rune
// heat table (the textual Fig 3), one row per h- and v-channel. It needs
// the trace recorder's fixed-window timelines, so it renders only when
// tracing is enabled.
func printHeatmap(stdout io.Writer, s *ssd.SSD, end sim.Time) {
	if !s.Tracer.Enabled() {
		return
	}
	t := report.New(fmt.Sprintf("Bus utilization (%v windows)", s.Tracer.Window()), "bus", "busy", "timeline")
	for _, kind := range []string{trace.KindHChannel, trace.KindVChannel} {
		names, rows := s.Tracer.HeatRows(kind, end)
		for i, name := range names {
			busy := s.Tracer.BusyTotals(kind)[name]
			frac := 0.0
			if end > 0 {
				frac = float64(busy) / float64(end)
			}
			t.Add(name, report.Pct(frac), report.Heat(rows[i]))
		}
	}
	if len(t.Rows) > 0 {
		fmt.Fprintln(stdout, t.String())
	}
}
