// Command sweep runs one-dimensional parameter sweeps and emits CSV
// series suitable for plotting: mean and tail latency versus outstanding
// I/O depth, bus rate, way count, or request size, for any architecture.
// Points fan out across -parallel workers (default GOMAXPROCS) and the
// CSV rows print in sweep order regardless of the worker count.
//
//	go run ./cmd/sweep -param outstanding -arch pnssd+split
//	go run ./cmd/sweep -param busrate -arch base -pattern rand-read
//	go run ./cmd/sweep -param ways -arch pnssd -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/array"
	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

var archNames = map[string]ssd.Arch{
	"base":        ssd.ArchBase,
	"nossd-pin":   ssd.ArchNoSSDPin,
	"nossd-free":  ssd.ArchNoSSDFree,
	"pssd":        ssd.ArchPSSD,
	"pnssd":       ssd.ArchPnSSD,
	"pnssd+split": ssd.ArchPnSSDSplit,
}

var patterns = map[string]workload.Pattern{
	"seq-read":   workload.SeqRead,
	"seq-write":  workload.SeqWrite,
	"rand-read":  workload.RandRead,
	"rand-write": workload.RandWrite,
}

func main() {
	param := flag.String("param", "outstanding", "sweep dimension: outstanding, busrate, ways, reqpages, tenants, sched, mapcache, rebuildrate")
	archFlag := flag.String("arch", "pnssd+split", "architecture (comma list allowed)")
	patternFlag := flag.String("pattern", "rand-read", "synthetic pattern")
	arbiterFlag := flag.String("arbiter", "rr", "queue arbiter for the tenants sweep: rr, wrr, dwrr")
	preset := flag.String("preset", "rocksdb-0", "per-tenant workload preset for the tenants sweep")
	requests := flag.Int("requests", 300, "requests per point")
	outstanding := flag.Int("outstanding", 16, "outstanding depth (fixed dims; front-end inflight cap for tenants)")
	seed := flag.Int64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", runner.Default(), "worker count for sweep points (1 = sequential)")
	shards := flag.Int("shards", 0, "run each sweep point on a partitioned engine with this many shards (0 or 1 = serial); CSV is byte-identical at any count")
	progress := flag.Bool("progress", false, "print completed-jobs / event-rate / ETA lines to stderr while the sweep runs")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()
	runner.SetDefault(*parallel)
	if *progress {
		runner.EnableProgress(os.Stderr, sim.EventsFiredTotal)
	}

	p, ok := patterns[strings.ToLower(*patternFlag)]
	if !ok {
		fatalf("unknown pattern %q", *patternFlag)
	}
	var archs []ssd.Arch
	for _, name := range strings.Split(*archFlag, ",") {
		a, ok := archNames[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			fatalf("unknown architecture %q", name)
		}
		archs = append(archs, a)
	}

	// The rebuild-rate sweep runs whole erasure-coded arrays rather than
	// single devices, so it prints its own CSV schema and returns.
	if strings.ToLower(*param) == "rebuildrate" {
		runRebuildRateSweep(archs, *requests, *seed)
		return
	}

	type point struct {
		x       int
		mk      func() ssd.Config
		outs    int
		req     int
		tenants int    // > 0 selects the multi-tenant open-loop path
		sched   string // non-empty selects a controller scheduling policy
		mapping string // non-empty labels the FTL mapping mode
	}
	var pts []point
	base := func() ssd.Config {
		c := ssd.ScaledConfig()
		c.Shards = *shards
		return c
	}
	switch strings.ToLower(*param) {
	case "outstanding":
		for _, o := range []int{1, 2, 4, 8, 16, 32, 64} {
			o := o
			pts = append(pts, point{x: o, mk: base, outs: o, req: 4})
		}
	case "busrate":
		for _, r := range []int{500, 750, 1000, 1500, 2000} {
			r := r
			pts = append(pts, point{x: r, mk: func() ssd.Config {
				c := base()
				c.BusMTps = r
				return c
			}, outs: *outstanding, req: 4})
		}
	case "ways":
		for _, w := range []int{2, 4, 8, 16} {
			w := w
			pts = append(pts, point{x: w, mk: func() ssd.Config {
				c := base()
				c.Ways = w
				return c
			}, outs: *outstanding, req: 4})
		}
	case "reqpages":
		for _, n := range []int{1, 2, 4, 8, 16} {
			n := n
			pts = append(pts, point{x: n, mk: base, outs: *outstanding, req: n})
		}
	case "sched":
		// One point per controller scheduling policy; x is the policy's
		// ordinal so the CSV stays numeric in the x column.
		for i, pol := range controller.SchedPolicyNames() {
			i, pol := i, pol
			pts = append(pts, point{x: i, mk: func() ssd.Config {
				c := base()
				c.Scheduler = pol
				return c
			}, outs: *outstanding, req: 4, sched: pol})
		}
	case "mapcache":
		// x is the map-cache capacity in translation-page entries; 0 is
		// the flat-mapping baseline (no map unit at all).
		for _, n := range []int{0, 8, 16, 32, 64, 128} {
			n := n
			mode := "fmmu"
			if n == 0 {
				mode = "flat"
			}
			pts = append(pts, point{x: n, mk: func() ssd.Config {
				c := base()
				c.Mapping = mode
				c.MapCacheEntries = n
				return c
			}, outs: *outstanding, req: 4, mapping: mode})
		}
	case "tenants":
		if _, err := host.NewArbiter(*arbiterFlag); err != nil {
			fatalf("%v", err)
		}
		for _, n := range []int{1, 2, 3, 4} {
			n := n
			pts = append(pts, point{x: n, mk: base, outs: *outstanding, tenants: n})
		}
	default:
		fatalf("unknown sweep parameter %q", *param)
	}

	if *cpuProf != "" {
		fh, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() { pprof.StopCPUProfile(); fh.Close() }()
	}
	if *memProf != "" {
		defer func() {
			fh, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer fh.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(fh); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	// Every (arch, point) simulation is independent; fan them out and
	// print the CSV rows afterwards in sweep order so output is
	// byte-identical at any parallelism.
	rows := runner.MapDefault(len(archs)*len(pts), func(i int) string {
		arch, pt := archs[i/len(pts)], pts[i%len(pts)]
		cfg := pt.mk()
		cfg.FTL.GCMode = ftl.GCNone
		label := p.String()
		if pt.sched != "" {
			label = p.String() + "/" + pt.sched
		}
		if pt.mapping != "" {
			label = p.String() + "/" + pt.mapping
		}
		if pt.tenants > 0 {
			// Tenant-count sweep: N identical preset tenants on partitioned
			// footprints replay open-loop through the multi-queue front end
			// with the chosen arbiter; requests split evenly across tenants.
			label = *preset + "/" + *arbiterFlag
			specs := make([]workload.TenantSpec, pt.tenants)
			per := *requests / pt.tenants
			if per < 1 {
				per = 1
			}
			for t := range specs {
				specs[t] = workload.TenantSpec{
					Name: fmt.Sprintf("t%d", t), Preset: *preset,
					Requests: per, Weight: 1 + t,
				}
			}
			cfg.Frontend = &host.FrontendConfig{
				Tenants:     workload.QueueConfigs(specs),
				Arbiter:     *arbiterFlag,
				MaxInflight: pt.outs,
			}
			s := ssd.New(arch, cfg)
			foot := s.Config.LogicalPages()
			s.Host.Warmup(foot)
			tr, err := workload.GenerateTenants(specs, foot, *seed)
			if err != nil {
				panic(err)
			}
			if _, err := s.Frontend.Replay(tr.Requests); err != nil {
				panic(err)
			}
			s.Run()
			m := s.Metrics()
			return fmt.Sprintf("%s,%s,%s,%d,%.2f,%.2f,%.1f",
				*param, arch, label, pt.x,
				m.MeanLatency().Microseconds(),
				m.Combined().P99().Microseconds(),
				m.KIOPS())
		}
		s := ssd.New(arch, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		gen := workload.Synthetic(p, foot, pt.req, *seed)
		s.Host.RunClosedLoop(gen, pt.outs, *requests)
		s.Run()
		m := s.Metrics()
		return fmt.Sprintf("%s,%s,%s,%d,%.2f,%.2f,%.1f",
			*param, arch, label, pt.x,
			m.MeanLatency().Microseconds(),
			m.Combined().P99().Microseconds(),
			m.KIOPS())
	})
	fmt.Printf("param,arch,pattern,x,mean_us,p99_us,kiops\n")
	for _, row := range rows {
		fmt.Println(row)
	}
}

// runRebuildRateSweep replays a mixed trace on a 2-group 2+1 array with
// one mid-trace device kill, sweeping the rebuild throttle: faster
// rebuild shortens the re-protection window but steals more device
// bandwidth from foreground I/O.
func runRebuildRateSweep(archs []ssd.Arch, requests int, seed int64) {
	rates := []int{50_000, 100_000, 200_000, 400_000, 800_000}
	rows := runner.MapDefault(len(archs)*len(rates), func(i int) string {
		arch, rate := archs[i/len(rates)], rates[i%len(rates)]
		dc := ssd.ScaledConfig()
		dc.Channels, dc.Ways = 2, 2
		dc.Geometry.Planes = 2
		dc.Geometry.BlocksPerPlane = 8
		dc.Geometry.PagesPerBlock = 16
		dc.LogicalUtilization = 0.75
		dc.FTL.GCMode = ftl.GCSpatial
		cfg := array.Config{
			Arch:   arch,
			Device: dc,
			Data:   2, Parity: 1,
			Groups:             2,
			Spares:             1,
			Seed:               seed,
			ChurnFraction:      0.5,
			RebuildPagesPerSec: rate,
		}
		tr, err := workload.Named("rocksdb-0", cfg.LogicalPages(), requests, seed)
		if err != nil {
			panic(err)
		}
		quarter := tr.Requests[len(tr.Requests)/4].Arrival
		cfg.Failures = []fault.DeviceEvent{{Device: 0, At: quarter}}
		res := array.Run(cfg, tr.Requests, 1)
		if err := res.Err(); err != nil {
			panic(err)
		}
		m := res.Metrics
		return fmt.Sprintf("rebuildrate,%s,rocksdb-0,%d,%.2f,%.2f,%.1f,%.2f,%d,%d",
			arch, rate,
			m.MeanLatency().Microseconds(),
			m.Combined().P99().Microseconds(),
			m.KIOPS(),
			res.RebuildTime.Milliseconds(),
			res.RAS.DegradedReads,
			res.RAS.FailedReads)
	})
	fmt.Printf("param,arch,workload,rate_pps,mean_us,p99_us,kiops,rebuild_ms,degraded_reads,failed_reads\n")
	for _, row := range rows {
		fmt.Println(row)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
