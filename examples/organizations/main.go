// Organizations: the Omnibus topology scales to non-square grids
// (Sec V-E). A wide grid (more ways than channels) shares each v-channel
// across several columns; a tall grid leaves surplus controllers with
// only their h-channel. This example runs the same skewed workload on
// three 64-chip organizations and reports how the v-channel layout and
// the performance change.
package main

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	orgs := []struct{ channels, ways int }{
		{4, 16}, // wide: 4 v-channels, 4 columns each
		{8, 8},  // the paper's square organization
		{16, 4}, // tall: 4 v-channels, 12 controllers h-only
	}
	for _, org := range orgs {
		cfg := ssd.ScaledConfig()
		cfg.Channels, cfg.Ways = org.channels, org.ways
		device := ssd.New(ssd.ArchPnSSDSplit, cfg)
		foot := device.Config.LogicalPages()
		device.Host.Warmup(foot)

		tr, err := workload.Named("exchange-1", foot, 1200, 31)
		if err != nil {
			panic(err)
		}
		device.Host.MustReplay(tr.Requests)
		device.Run()

		m := device.Metrics()
		omni := device.Fabric.(*controller.OmnibusFabric)
		fmt.Printf("%2d channels x %2d ways: mean=%-10v p99=%-10v  %d v-channels, %d column(s) per v-channel\n",
			org.channels, org.ways, m.MeanLatency(), m.Combined().P99(),
			omni.NumVChannels(), omni.ColumnsPerVChannel())
	}
	fmt.Println("\nSharing a v-channel across columns (the wide grid) halves the vertical")
	fmt.Println("bandwidth per chip and shows up directly in the latency distribution.")
}
