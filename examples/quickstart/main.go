// Quickstart: build a pnSSD, run a small random-read workload, and print
// the latency distribution. This is the smallest end-to-end use of the
// library: construct an ssd.SSD, warm it up, drive the host, run the
// event loop, read the metrics.
package main

import (
	"fmt"

	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	// ScaledConfig is the paper's Table II organization (8 channels x 8
	// ways, 4 planes, 16 KB pages, ULL flash, 1000 MT/s buses) with a
	// reduced block count so everything runs in moments.
	cfg := ssd.ScaledConfig()
	device := ssd.New(ssd.ArchPnSSDSplit, cfg)

	// Fill the logical space instantly so reads always hit mapped pages.
	footprint := device.Config.LogicalPages()
	device.Host.Warmup(footprint)

	// 64 KB random reads, 16 outstanding, 500 requests.
	gen := workload.Synthetic(workload.RandRead, footprint, 4, 42)
	device.Host.RunClosedLoop(gen, 16, 500)

	elapsed := device.Run()

	m := device.Metrics()
	h := m.Combined()
	fmt.Printf("architecture : %s\n", device.Arch)
	fmt.Printf("simulated    : %v for %d requests\n", elapsed, m.TotalRequests())
	fmt.Printf("mean latency : %v\n", h.Mean())
	fmt.Printf("p50 / p99    : %v / %v\n", h.Percentile(50), h.P99())
	fmt.Printf("throughput   : %.1f KIOPS (%.0f MB/s)\n", m.KIOPS(), m.BandwidthMBps())
}
