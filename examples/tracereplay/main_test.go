package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke test: the example must build, complete both replays, and print
// a result line per architecture. It exercises the full CSV round trip
// (write, re-read, replay) that the example demonstrates.
func TestExampleRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wrote ", "1500 requests", "base", "pnSSD(+split)", "completed=1500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
