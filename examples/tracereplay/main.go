// Trace replay: generate a trace CSV with the workload package, write it
// to disk, read it back, and replay it against two architectures — the
// round trip a user with real trace files would follow (convert to the
// arrival_ps,op,lpn,pages CSV, then replay).
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(stdout io.Writer) error {
	cfg := ssd.ScaledConfig()
	foot := cfg.LogicalPages()

	// 1. Generate a skewed read-mostly trace and persist it as CSV.
	tr, err := workload.Named("web-0", foot, 1500, 99)
	if err != nil {
		return err
	}
	path := filepath.Join(os.TempDir(), "web0-example.csv")
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteCSV(fh, tr); err != nil {
		fh.Close()
		return err
	}
	fh.Close()
	defer os.Remove(path)
	reads, writes, frac := tr.Mix()
	fmt.Fprintf(stdout, "wrote %s: %d requests (%d R / %d W, %.0f%% reads)\n\n", path, len(tr.Requests), reads, writes, frac*100)

	// 2. Read it back, exactly as an external trace would arrive.
	fh, err = os.Open(path)
	if err != nil {
		return err
	}
	replayed, err := workload.ReadCSV(fh, "web-0")
	fh.Close()
	if err != nil {
		return err
	}

	// 3. Replay on two architectures and compare.
	for _, arch := range []ssd.Arch{ssd.ArchBase, ssd.ArchPnSSDSplit} {
		device := ssd.New(arch, cfg)
		device.Host.Warmup(foot)
		completed, err := device.Host.Replay(replayed.Requests)
		if err != nil {
			return fmt.Errorf("%v: replay rejected: %v", arch, err)
		}
		device.Run()
		if *completed != len(replayed.Requests) {
			return fmt.Errorf("%v: completed %d of %d requests", arch, *completed, len(replayed.Requests))
		}
		m := device.Metrics()
		fmt.Fprintf(stdout, "%-16s completed=%d mean=%v p99=%v %.1f KIOPS\n",
			arch, *completed, m.MeanLatency(), m.Combined().P99(), m.KIOPS())
	}
	return nil
}
