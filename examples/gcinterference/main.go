// GC interference: the paper's headline scenario. The same mixed workload
// runs on the baseline SSD with parallel GC and on pnSSD with spatial GC;
// the spatial variant isolates collection traffic onto the GC group's
// v-channels, so host I/O barely notices a round that devastates the
// baseline (Sec VI, Figs 18-19).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(arch ssd.Arch, mode ftl.GCMode) (*stats.IOMetrics, ftl.Stats) {
	cfg := ssd.ScaledConfig()
	cfg.FTL.GCMode = mode
	cfg.LogicalUtilization = 0.75 // GC needs absolute free headroom at this scale
	device := ssd.New(arch, cfg)
	foot := device.Config.LogicalPages()
	device.Host.Warmup(foot)

	// Churn half the headroom instantly so blocks carry invalid pages and
	// collection has real work.
	rng := rand.New(rand.NewSource(7))
	churn := (device.Config.RawPages() - foot) / 2
	for i := int64(0); i < churn; i++ {
		lpn := rng.Int63n(foot)
		device.FTL.Reinstall(lpn, ftl.TokenFor(lpn, 1))
	}

	// A write-heavy LSM-style trace keeps GC triggered throughout.
	tr, err := workload.Named("rocksdb-1", foot, 600, 7)
	if err != nil {
		panic(err)
	}
	device.Host.MustReplay(tr.Requests)
	device.Run()
	if err := device.FTL.CheckConsistency(); err != nil {
		panic(err)
	}
	return device.Metrics(), device.FTL.Stats()
}

func main() {
	type cfg struct {
		name string
		arch ssd.Arch
		mode ftl.GCMode
	}
	configs := []cfg{
		{"baseSSD + parallel GC (paper baseline)", ssd.ArchBase, ftl.GCParallel},
		{"baseSSD + spatial GC (channel-limited)", ssd.ArchBase, ftl.GCSpatial},
		{"pSSD    + spatial GC (2x bus)", ssd.ArchPSSD, ftl.GCSpatial},
		{"pnSSD   + spatial GC (isolated v-channels)", ssd.ArchPnSSD, ftl.GCSpatial},
	}
	var baseline float64
	for _, c := range configs {
		m, st := run(c.arch, c.mode)
		mean := m.MeanLatency()
		if baseline == 0 {
			baseline = float64(mean)
		}
		fmt.Printf("%-44s mean=%-10v p99=%-10v GC: %d rounds, %d copies, speedup vs baseline %.2fx\n",
			c.name, mean, m.Combined().P99(), st.GCRounds, st.GCPagesCopied,
			baseline/float64(mean))
	}
	fmt.Println("\nSpatial GC on pnSSD keeps I/O off the flash channels GC is using,")
	fmt.Println("so collection runs at full speed while the I/O group serves the host.")
}
