// Path diversity: the Omnibus topology gives every chip two ways home —
// its row's h-channel and its column's v-channel. This example hammers a
// single hot channel with reads (the Fig 3 imbalance, distilled) and
// shows pnSSD routing around the hotspot while baseSSD and pSSD queue on
// one bus. It also prints the fabric's own path counters.
package main

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/host"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// hotChannelReads generates single-page reads spread across all ways of
// channel 0 only: the pathological row-hotspot.
func hotChannelReads(device *ssd.SSD, total int) {
	foot := device.Config.LogicalPages()
	planes := int64(device.Config.Geometry.Planes)
	channels := int64(device.Config.Channels)
	// With PCWD warm-up striping, LPN -> channel is (lpn/planes) % channels.
	// Pick LPNs on channel 0 at varying ways.
	var lpns []int64
	for lpn := int64(0); lpn < foot && len(lpns) < 512; lpn += planes {
		if (lpn / planes % channels) == 0 {
			lpns = append(lpns, lpn)
		}
	}
	i := 0
	gen := func(int) host.Request {
		lpn := lpns[i%len(lpns)]
		i += 7 // stride so consecutive requests hit different ways
		return host.Request{Kind: stats.Read, LPN: lpn, Pages: 1}
	}
	device.Host.RunClosedLoop(gen, 16, total)
}

func main() {
	for _, arch := range []ssd.Arch{ssd.ArchBase, ssd.ArchPSSD, ssd.ArchPnSSD, ssd.ArchPnSSDSplit} {
		device := ssd.New(arch, ssd.ScaledConfig())
		device.Host.Warmup(device.Config.LogicalPages())
		hotChannelReads(device, 400)
		device.Run()
		m := device.Metrics()
		line := fmt.Sprintf("%-22s mean=%-10v p99=%-10v %.1f KIOPS",
			arch, m.MeanLatency(), m.Combined().P99(), m.KIOPS())
		if omni, ok := device.Fabric.(*controller.OmnibusFabric); ok {
			h, v, split, _, _ := omni.PathCounts()
			line += fmt.Sprintf("   (returns: %d via h, %d via v, %d split)", h, v, split)
		}
		fmt.Println(line)
	}
	fmt.Println("\nEvery read targets channel 0. The bus architectures serialize on that")
	fmt.Println("one channel; Omnibus spreads the returns across the ways' v-channels.")
}
