package controller

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{Planes: 4, BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 16384}
}

func testRig(channels, ways int) (*sim.Engine, *Grid, *Soc) {
	e := sim.NewEngine()
	g := NewGrid(e, channels, ways, testGeo(), flash.ULLTiming())
	soc := NewSoc(e, 8000, 8000)
	return e, g, soc
}

func TestGridBasics(t *testing.T) {
	e, g, _ := testRig(4, 2)
	_ = e
	if g.NumChips() != 8 {
		t.Fatalf("NumChips = %d", g.NumChips())
	}
	if g.Chip(ChipID{3, 1}).Name() != "ch3/w1" {
		t.Fatalf("chip name = %q", g.Chip(ChipID{3, 1}).Name())
	}
	var visited int
	g.ForEach(func(id ChipID, c *flash.Chip) {
		visited++
		if g.Chip(id) != c {
			t.Fatal("ForEach id mismatch")
		}
	})
	if visited != 8 {
		t.Fatalf("visited %d chips", visited)
	}
}

func TestGridOutOfRangePanics(t *testing.T) {
	_, g, _ := testRig(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range chip did not panic")
		}
	}()
	g.Chip(ChipID{2, 0})
}

func TestSocTransferTiming(t *testing.T) {
	e := sim.NewEngine()
	soc := NewSoc(e, 8000, 8000) // 8 GB/s: 16 KB in 2us per stage
	var doneAt sim.Time
	soc.Transfer(16384, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 4096*sim.Nanosecond {
		// 16384 bytes * 125ps = 2.048us per stage, two stages.
		t.Fatalf("SoC transfer took %v, want 4.096us", doneAt)
	}
	if soc.SysBusBusy() == 0 || soc.DramBusy() == 0 {
		t.Fatal("SoC busy accounting missing")
	}
}

func TestSocPipelineOverlap(t *testing.T) {
	e := sim.NewEngine()
	soc := NewSoc(e, 8000, 8000)
	remaining := 2
	soc.Transfer(16384, func() { remaining-- })
	soc.Transfer(16384, func() { remaining-- })
	e.Run()
	if remaining != 0 {
		t.Fatal("transfers incomplete")
	}
	// Two pipelined 2.048us+2.048us transfers: second overlaps in DRAM
	// while first vacates, so total < 2 * 4.096us.
	if e.Now() >= 8192*sim.Nanosecond {
		t.Fatalf("pipeline did not overlap: %v", e.Now())
	}
}

// readLatency runs one single-plane read on an idle fabric and returns the
// end-to-end latency.
func readLatency(t *testing.T, e *sim.Engine, f Fabric, id ChipID) sim.Time {
	t.Helper()
	chip := f.Grid().Chip(id)
	a := flash.PPA{Plane: 0, Block: 0, Page: 0}
	if chip.PageStateAt(a) == flash.PageErased {
		chip.Program([]flash.ProgramOp{{Addr: a, Token: 42}}, nil)
		e.Run()
	}
	start := e.Now()
	var doneAt sim.Time
	f.Read(id, []flash.PPA{a}, func() { doneAt = e.Now() })
	e.Run()
	if doneAt <= start {
		t.Fatal("read never completed")
	}
	return doneAt - start
}

func TestBusFabricReadWriteErase(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := NewBusFabric(e, "base", g, soc, 16384, 8, 1000, false)
	id := ChipID{0, 1}
	a := flash.PPA{Plane: 1, Block: 2, Page: 0}

	var wDone, rDone, eDone bool
	f.Write(id, []flash.ProgramOp{{Addr: a, Token: 0xAB}}, func() { wDone = true })
	e.Run()
	if !wDone || g.Chip(id).ContentAt(a) != 0xAB {
		t.Fatal("write failed")
	}
	f.Read(id, []flash.PPA{a}, func() { rDone = true })
	e.Run()
	if !rDone {
		t.Fatal("read never completed")
	}
	f.Erase(id, []flash.PPA{{Plane: 1, Block: 2}}, func() { eDone = true })
	e.Run()
	if !eDone || g.Chip(id).PageStateAt(a) != flash.PageErased {
		t.Fatal("erase failed")
	}
}

func TestBusFabricReadLatencyBreakdown(t *testing.T) {
	e, g, soc := testRig(1, 1)
	f := NewBusFabric(e, "base", g, soc, 16384, 8, 1000, false)
	lat := readLatency(t, e, f, ChipID{0, 0})
	// cmd 120ns + tR 3us + xfer 16.434us + ECC 0.5us + SoC 4.096us ≈ 24.15us
	want := 120*sim.Nanosecond + 3*sim.Microsecond + 16434*sim.Nanosecond +
		500*sim.Nanosecond + 4096*sim.Nanosecond
	if lat != want {
		t.Fatalf("base read latency = %v, want %v", lat, want)
	}
}

func TestPSSDReadFasterThanBase(t *testing.T) {
	eBase, gBase, socBase := testRig(1, 1)
	base := NewBusFabric(eBase, "base", gBase, socBase, 16384, 8, 1000, false)
	ePssd, gPssd, socPssd := testRig(1, 1)
	pssd := NewBusFabric(ePssd, "pssd", gPssd, socPssd, 16384, 16, 1000, true)

	latBase := readLatency(t, eBase, base, ChipID{0, 0})
	latPssd := readLatency(t, ePssd, pssd, ChipID{0, 0})
	if latPssd >= latBase {
		t.Fatalf("pSSD read %v not faster than base %v", latPssd, latBase)
	}
	// The channel transfer halves (16.4us -> 8.2us); the rest is shared.
	saved := latBase - latPssd
	if saved < 7*sim.Microsecond || saved > 9*sim.Microsecond {
		t.Fatalf("pSSD saved %v, want ~8.2us", saved)
	}
}

func TestBusFabricChannelContention(t *testing.T) {
	// Two chips on one channel vs two chips on two channels: the shared
	// channel must serialize the page transfers.
	run := func(channels, ways int, ids []ChipID) sim.Time {
		e, g, soc := testRig(channels, ways)
		f := NewBusFabric(e, "base", g, soc, 16384, 8, 1000, false)
		for _, id := range ids {
			g.Chip(id).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
		}
		e.Run()
		start := e.Now()
		remaining := len(ids)
		for _, id := range ids {
			f.Read(id, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
		}
		e.Run()
		if remaining != 0 {
			t.Fatal("reads incomplete")
		}
		return e.Now() - start
	}
	shared := run(1, 2, []ChipID{{0, 0}, {0, 1}})
	parallel := run(2, 1, []ChipID{{0, 0}, {1, 0}})
	if shared <= parallel {
		t.Fatalf("shared-channel reads (%v) not slower than parallel channels (%v)", shared, parallel)
	}
	if float64(shared) < 1.5*float64(parallel) {
		t.Fatalf("expected strong serialization: shared=%v parallel=%v", shared, parallel)
	}
}

func TestBusFabricCopyMovesContent(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := NewBusFabric(e, "base", g, soc, 16384, 8, 1000, false)
	src, dst := ChipID{0, 0}, ChipID{1, 1}
	from, to := flash.PPA{Plane: 0, Block: 0, Page: 0}, flash.PPA{Plane: 2, Block: 3, Page: 0}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: from, Token: 0x77}}, nil)
	e.Run()
	done := false
	f.Copy(src, from, dst, to, func() { done = true })
	e.Run()
	if !done || g.Chip(dst).ContentAt(to) != 0x77 {
		t.Fatal("copy failed")
	}
}

func TestDedicatedRequires8Bits(t *testing.T) {
	e, g, soc := testRig(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("16-bit dedicated fabric did not panic")
		}
	}()
	NewBusFabric(e, "bad", g, soc, 16384, 16, 1000, false)
}
