package controller

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

// Non-square organizations (Sec V-E): wide grids share v-channels across
// columns; tall grids leave surplus controllers without a v-channel.

func TestOmnibusWideGridSharesVChannels(t *testing.T) {
	// 4 channels x 8 ways: 4 controllers, each responsible for one
	// v-channel spanning two columns.
	e, g, soc := testRig(4, 8)
	f := NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, false)
	if f.NumVChannels() != 4 {
		t.Fatalf("NumVChannels = %d, want 4", f.NumVChannels())
	}
	if f.ColumnsPerVChannel() != 2 {
		t.Fatalf("ColumnsPerVChannel = %d, want 2", f.ColumnsPerVChannel())
	}
	// Ways 0 and 1 share v-channel 0; ways 6 and 7 share v-channel 3.
	if f.VChannel(0) != f.VChannel(1) {
		t.Fatal("ways 0 and 1 should share a v-channel")
	}
	if f.VChannel(1) == f.VChannel(2) {
		t.Fatal("ways 1 and 2 should not share a v-channel")
	}
	if f.VChannel(6) != f.VChannel(7) {
		t.Fatal("ways 6 and 7 should share a v-channel")
	}
}

func TestOmnibusTallGridOneVPerWay(t *testing.T) {
	// 8 channels x 4 ways: 4 v-channels, one per way; half the
	// controllers drive only their h-channel.
	e, g, soc := testRig(8, 4)
	f := NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, false)
	if f.NumVChannels() != 4 {
		t.Fatalf("NumVChannels = %d, want 4", f.NumVChannels())
	}
	if f.ColumnsPerVChannel() != 1 {
		t.Fatalf("ColumnsPerVChannel = %d, want 1", f.ColumnsPerVChannel())
	}
	for w := 0; w < 4; w++ {
		for w2 := w + 1; w2 < 4; w2++ {
			if f.VChannel(w) == f.VChannel(w2) {
				t.Fatalf("ways %d and %d share a v-channel in tall grid", w, w2)
			}
		}
	}
}

func TestOmnibusWideGridDirectCopyAcrossSharedColumns(t *testing.T) {
	// In a 2x4 grid (colsPerV=2), chips in ways 0 and 1 share a v-channel,
	// so a copy between them is direct even though the ways differ.
	e, g, soc := testRig(2, 4)
	f := NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, false)
	src, dst := ChipID{0, 0}, ChipID{1, 1} // different ways, same v-group
	g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 0x5A}}, nil)
	e.Run()
	done := false
	f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { done = true })
	e.Run()
	if !done || g.Chip(dst).ContentAt(flash.PPA{Plane: 0, Block: 0, Page: 0}) != 0x5A {
		t.Fatal("shared-column direct copy failed")
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 1 || relayed != 0 {
		t.Fatalf("direct=%d relayed=%d, want direct copy across shared v-group", direct, relayed)
	}
	// Across v-groups (way 0 -> way 2) it must relay.
	g.Chip(ChipID{0, 2}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 0x5B}}, nil)
	e.Run()
	f.Copy(ChipID{0, 2}, flash.PPA{Plane: 0, Block: 0, Page: 0}, ChipID{0, 0}, flash.PPA{Plane: 0, Block: 1, Page: 0}, nil)
	e.Run()
	_, _, _, direct, relayed = f.PathCounts()
	if relayed != 1 {
		t.Fatalf("cross-group copy not relayed (direct=%d relayed=%d)", direct, relayed)
	}
}

func TestOmnibusWideGridReadWrite(t *testing.T) {
	e, g, soc := testRig(2, 8)
	f := NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, true)
	var done int
	for w := 0; w < 8; w++ {
		id := ChipID{w % 2, w}
		a := flash.PPA{Plane: 0, Block: 0, Page: 0}
		f.Write(id, []flash.ProgramOp{{Addr: a, Token: flash.Token(w)}}, func() { done++ })
	}
	e.Run()
	if done != 8 {
		t.Fatalf("writes completed = %d", done)
	}
	for w := 0; w < 8; w++ {
		id := ChipID{w % 2, w}
		f.Read(id, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { done++ })
	}
	e.Run()
	if done != 16 {
		t.Fatalf("reads completed = %d", done-8)
	}
}

func TestOmnibusSharedVChannelContention(t *testing.T) {
	// Two chips sharing one v-channel must serialize their direct copies;
	// chips on separate v-channels copy in parallel.
	copyTime := func(ways int, srcW1, srcW2 int) sim.Time {
		e, g, soc := testRig(2, ways)
		f := NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, false)
		for _, w := range []int{srcW1, srcW2} {
			g.Chip(ChipID{0, w}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
		}
		e.Run()
		start := e.Now()
		remaining := 2
		for _, w := range []int{srcW1, srcW2} {
			f.Copy(ChipID{0, w}, flash.PPA{Plane: 0, Block: 0, Page: 0},
				ChipID{1, w}, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { remaining-- })
		}
		e.Run()
		if remaining != 0 {
			t.Fatal("copies incomplete")
		}
		return e.Now() - start
	}
	shared := copyTime(4, 0, 1)   // 2x4: ways 0,1 share v0
	parallel := copyTime(2, 0, 1) // 2x2: ways 0,1 have own v-channels
	if shared <= parallel {
		t.Fatalf("shared v-channel copies (%v) not slower than parallel (%v)", shared, parallel)
	}
}
