// Package controller implements the flash channel controllers and the
// architecture-specific interconnect fabrics of the paper: the
// conventional bus (baseSSD), the fat packetized bus (pSSD), the Omnibus
// 2D bus with its split control/data plane (pnSSD), and the
// Network-on-SSD mesh comparator.
//
// A Fabric hides topology behind four flash transactions — read, write,
// erase, and page copy — so the FTL and the host layer are identical
// across architectures, and every performance difference in the
// experiments emerges from the interconnect model.
package controller

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/sim"
)

// ChipID locates a chip in the channel×way grid: Channel is the row (the
// h-channel it shares) and Way is the column (the v-channel it shares).
type ChipID struct {
	Channel int
	Way     int
}

// String formats the id.
func (id ChipID) String() string { return fmt.Sprintf("ch%d/w%d", id.Channel, id.Way) }

// Fabric is the uniform transaction interface over an SSD interconnect.
// All completion callbacks fire as engine events after the full data path
// (flash array, channel, SoC) has been traversed.
type Fabric interface {
	// Name identifies the architecture for reports.
	Name() string
	// Grid returns the chip array.
	Grid() *Grid
	// Read performs a (multi-plane) page read from one chip and lands the
	// data in controller DRAM.
	Read(id ChipID, ppas []flash.PPA, done func())
	// Write programs (multi-plane) pages on one chip from DRAM.
	Write(id ChipID, ops []flash.ProgramOp, done func())
	// Erase erases one block per addressed plane on one chip.
	Erase(id ChipID, blocks []flash.PPA, done func())
	// Copy moves one valid page from src to dst for garbage collection.
	// The route is architecture-specific: through the controller and DRAM
	// on bus fabrics, directly flash-to-flash where the topology allows.
	Copy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func())
	// Lookahead returns the minimum non-zero latency on the fabric's
	// cross-group data path — the ECC pipeline in front of the SoC hop,
	// a control-plane message, a mesh link traversal — which is the
	// conservative lockstep window bound for a partitioned run of this
	// fabric. Note what it does NOT claim: dispatch edges (FTL handing
	// an op to a channel, a completion callback entering FTL
	// bookkeeping) are synchronous, so any state those edges touch must
	// share a shard; the partition planner keeps that whole reactive
	// complex together and Lookahead bounds only the residual mailbox
	// traffic between shards.
	Lookahead() sim.Time
}

// Grid is the channel×way array of flash chips shared by every fabric.
type Grid struct {
	Channels int // rows
	Ways     int // columns
	chips    [][]*flash.Chip
}

// NewGrid builds channels×ways erased chips.
func NewGrid(eng *sim.Engine, channels, ways int, geo flash.Geometry, timing flash.Timing) *Grid {
	if channels <= 0 || ways <= 0 {
		panic(fmt.Sprintf("controller: invalid grid %dx%d", channels, ways))
	}
	g := &Grid{Channels: channels, Ways: ways, chips: make([][]*flash.Chip, channels)}
	for ch := 0; ch < channels; ch++ {
		g.chips[ch] = make([]*flash.Chip, ways)
		for w := 0; w < ways; w++ {
			g.chips[ch][w] = flash.NewChip(eng, fmt.Sprintf("ch%d/w%d", ch, w), geo, timing)
		}
	}
	return g
}

// Chip returns the chip at id.
func (g *Grid) Chip(id ChipID) *flash.Chip {
	if id.Channel < 0 || id.Channel >= g.Channels || id.Way < 0 || id.Way >= g.Ways {
		panic(fmt.Sprintf("controller: chip %v outside %dx%d grid", id, g.Channels, g.Ways))
	}
	return g.chips[id.Channel][id.Way]
}

// NumChips returns the total chip count.
func (g *Grid) NumChips() int { return g.Channels * g.Ways }

// ForEach visits every chip in row-major order.
func (g *Grid) ForEach(fn func(id ChipID, c *flash.Chip)) {
	for ch := 0; ch < g.Channels; ch++ {
		for w := 0; w < g.Ways; w++ {
			fn(ChipID{ch, w}, g.chips[ch][w])
		}
	}
}

// Soc models the shared controller-side resources every page crossing
// them must traverse: the system bus and DRAM, each a FIFO bandwidth
// resource, plus the on-chip control network the Omnibus control plane
// uses for request/grant messages between channel controllers.
type Soc struct {
	eng          *sim.Engine
	sysBus       *sim.Resource
	dram         *sim.Resource
	sysBusPsByte sim.Time
	dramPsByte   sim.Time
	ctrlMsgDelay sim.Time
}

// DefaultCtrlMsgLatency is the one-way latency of a control-plane message
// between two channel controllers over the SoC interconnect.
const DefaultCtrlMsgLatency = 100 * sim.Nanosecond

// NewSoc builds the SoC resources with the given bandwidths in MB/s.
// Table II provisions system bus and DRAM at the total flash bus
// bandwidth (8 GB/s for the 8×1 GB/s baseline).
func NewSoc(eng *sim.Engine, sysBusMBps, dramMBps int) *Soc {
	if sysBusMBps <= 0 || dramMBps <= 0 {
		panic("controller: non-positive SoC bandwidth")
	}
	return &Soc{
		eng:          eng,
		sysBus:       sim.NewResource(eng, "sysbus"),
		dram:         sim.NewResource(eng, "dram"),
		sysBusPsByte: sim.Time(1_000_000 / sysBusMBps), // ps per byte at MB/s == bytes/us
		dramPsByte:   sim.Time(1_000_000 / dramMBps),
		ctrlMsgDelay: DefaultCtrlMsgLatency,
	}
}

// Transfer moves n bytes across the system bus and into/out of DRAM as a
// two-stage pipeline, then runs done.
func (s *Soc) Transfer(n int, done func()) {
	if n < 0 {
		panic("controller: negative SoC transfer")
	}
	s.sysBus.UseLabeled("xfer", sim.Time(n)*s.sysBusPsByte, func() {
		s.dram.UseLabeled("xfer", sim.Time(n)*s.dramPsByte, done)
	})
}

// SetObserver attaches a hold/queue observer to the system bus and DRAM
// resources (the tracing hook); nil detaches.
func (s *Soc) SetObserver(o sim.ResourceObserver) {
	s.sysBus.SetObserver(o)
	s.dram.SetObserver(o)
}

// AddObserver attaches an additional observer to the system bus and DRAM
// resources (the invariant-checking hook), alongside any tracing observer.
func (s *Soc) AddObserver(o sim.ResourceObserver) {
	s.sysBus.AddObserver(o)
	s.dram.AddObserver(o)
}

// Idle reports whether both SoC resources are idle with empty queues — a
// drained-device invariant.
func (s *Soc) Idle() bool {
	return !s.sysBus.Busy() && s.sysBus.QueueLen() == 0 &&
		!s.dram.Busy() && s.dram.QueueLen() == 0
}

// CtrlMsg delivers a control-plane message between two channel
// controllers after the SoC interconnect latency.
func (s *Soc) CtrlMsg(fn func()) { s.eng.Schedule(s.ctrlMsgDelay, fn) }

// CtrlMsgLatency returns the current control-plane message latency.
// Fabrics whose cross-group coordination rides CtrlMsg fold it into
// their Lookahead bound.
func (s *Soc) CtrlMsgLatency() sim.Time { return s.ctrlMsgDelay }

// SetCtrlMsgLatency overrides the control-plane message latency, for the
// control-plane sensitivity ablation.
func (s *Soc) SetCtrlMsgLatency(d sim.Time) {
	if d < 0 {
		panic("controller: negative control message latency")
	}
	s.ctrlMsgDelay = d
}

// SysBusBusy returns cumulative system-bus occupancy, for reports.
func (s *Soc) SysBusBusy() sim.Time { return s.sysBus.TotalBusy() }

// DramBusy returns cumulative DRAM occupancy.
func (s *Soc) DramBusy() sim.Time { return s.dram.TotalBusy() }

// totalBytes sums the page sizes of a multi-plane op set.
func totalBytes(pageSize, pages int) int { return pageSize * pages }
