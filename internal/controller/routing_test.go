package controller

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func TestRoutePolicyStrings(t *testing.T) {
	if RouteHOnly.String() != "h-only" || RouteGreedy.String() != "greedy" || RouteJSQ.String() != "jsq" {
		t.Fatal("route policy strings wrong")
	}
	if RoutePolicy(9).String() != "route(9)" {
		t.Fatal("unknown route string wrong")
	}
}

// loadAndRead programs a page, piles reads onto one chip's h-channel, and
// returns the v-channel usage counter for the policy.
func vUsageUnder(t *testing.T, policy RoutePolicy) int64 {
	t.Helper()
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	f.SetRoutePolicy(policy)
	for w := 0; w < 2; w++ {
		g.Chip(ChipID{0, w}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	}
	e.Run()
	remaining := 6
	for i := 0; i < 6; i++ {
		w := i % 2
		f.Read(ChipID{0, w}, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
	}
	e.Run()
	if remaining != 0 {
		t.Fatal("reads incomplete")
	}
	_, v, _, _, _ := f.PathCounts()
	return v
}

func TestRoutingPoliciesDiffer(t *testing.T) {
	hOnly := vUsageUnder(t, RouteHOnly)
	greedy := vUsageUnder(t, RouteGreedy)
	jsq := vUsageUnder(t, RouteJSQ)
	if hOnly != 0 {
		t.Fatalf("h-only used the v-channel %d times", hOnly)
	}
	if greedy == 0 {
		t.Fatal("greedy never diverted under contention")
	}
	if jsq < greedy {
		t.Fatalf("JSQ diverted less than greedy (%d < %d)", jsq, greedy)
	}
}

func TestSetAdaptiveCompat(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	f.SetAdaptive(false)
	if f.route != RouteHOnly {
		t.Fatal("SetAdaptive(false) did not select h-only")
	}
	f.SetAdaptive(true)
	if f.route != RouteGreedy {
		t.Fatal("SetAdaptive(true) did not select greedy")
	}
}

func TestOnDieEccFallback(t *testing.T) {
	// rate=1: every same-column copy must take the relayed strong-ECC
	// path; rate=0: none.
	run := func(rate float64) (direct, relayed, fallbacks int64, tokenOK bool) {
		e, g, soc := testRig(4, 2)
		f := newOmnibus(e, g, soc, false)
		f.SetOnDieEccFailRate(rate)
		src, dst := ChipID{0, 1}, ChipID{3, 1}
		g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 0xE0}}, nil)
		e.Run()
		done := false
		f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { done = true })
		e.Run()
		if !done {
			t.Fatal("copy incomplete")
		}
		_, _, _, d, r := f.PathCounts()
		return d, r, f.EccFallbacks(), g.Chip(dst).ContentAt(flash.PPA{Plane: 0, Block: 0, Page: 0}) == 0xE0
	}
	d, r, fb, ok := run(1.0)
	if d != 0 || r != 1 || fb != 1 || !ok {
		t.Fatalf("rate=1: direct=%d relayed=%d fallbacks=%d ok=%v", d, r, fb, ok)
	}
	d, r, fb, ok = run(0)
	if d != 1 || r != 0 || fb != 0 || !ok {
		t.Fatalf("rate=0: direct=%d relayed=%d fallbacks=%d ok=%v", d, r, fb, ok)
	}
}

func TestOnDieEccRateValidation(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid ECC rate did not panic")
		}
	}()
	f.SetOnDieEccFailRate(1.5)
}

func TestOnDieEccRateApproximatelyRespected(t *testing.T) {
	// With rate 0.3 over many draws, fallbacks should land near 30%.
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	f.SetOnDieEccFailRate(0.3)
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if f.eccFails() {
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("ECC fail fraction = %.3f, want ~0.30", frac)
	}
	_ = e
	_ = soc
}

func TestChannelWaitAccounting(t *testing.T) {
	e := sim.NewEngine()
	g := NewGrid(e, 1, 2, testGeo(), flash.ULLTiming())
	soc := NewSoc(e, 8000, 8000)
	f := NewBusFabric(e, "base", g, soc, 16384, 8, 1000, false)
	for w := 0; w < 2; w++ {
		g.Chip(ChipID{0, w}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	}
	e.Run()
	remaining := 4
	for i := 0; i < 4; i++ {
		f.Read(ChipID{0, i % 2}, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
	}
	e.Run()
	if remaining != 0 {
		t.Fatal("reads incomplete")
	}
	ch := f.Channel(0)
	if ch.MeanWait() <= 0 {
		t.Fatal("contended channel reports zero mean wait")
	}
	if ch.MaxWait() < ch.MeanWait() {
		t.Fatal("max wait below mean wait")
	}
}
