package controller

// Sprinkler-style out-of-order die-level scheduling.
//
// Transactions pool in arrival order; an inflight window caps how many
// run concurrently and bounds how far ahead the picker may look. Each
// drain picks the eligible transaction whose target dies carry the
// least inflight work — maximizing the number of distinct busy dies —
// instead of honouring FIFO order. Every pick over older transactions
// bumps their bypass counters; one that reaches the reorder bound is
// issued next unconditionally, so reordering never starves a command.

// drainOOO fills the inflight window: while a slot is free, pick among
// the oldest Window pending transactions and issue the winner.
func (f *SchedFabric) drainOOO() {
	for f.inflight < f.cfg.Window && len(f.pending) > 0 {
		idx := f.pickOOO()
		op := f.pending[idx]
		f.pending = append(f.pending[:idx], f.pending[idx+1:]...)
		for j := 0; j < idx; j++ {
			f.pending[j].bypassed++
		}
		if idx > 0 {
			f.reordered++
		}
		f.issue(op, idx, nil)
	}
}

// pickOOO returns the index of the next transaction to issue: the
// starved one if any crossed the reorder bound (oldest first), else the
// lowest-load candidate with ties broken toward arrival order.
func (f *SchedFabric) pickOOO() int {
	lim := len(f.pending)
	if lim > f.cfg.Window {
		lim = f.cfg.Window
	}
	for i := 0; i < lim; i++ {
		if f.pending[i].bypassed >= f.cfg.ReorderBound {
			f.forced++
			return i
		}
	}
	best, bestLoad := 0, f.loadOf(f.pending[0])
	for i := 1; i < lim; i++ {
		if l := f.loadOf(f.pending[i]); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// loadOf scores a transaction by the inflight work already targeting its
// chips: 0 means every target die is idle from the scheduler's view.
func (f *SchedFabric) loadOf(op *schedOp) int {
	load := 0
	for _, c := range op.chips {
		load += f.chipLoad[c]
	}
	return load
}
