package controller

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/flash"
	"repro/internal/sim"
)

// EccLatency is the controller-side ECC pipeline latency added to every
// page that crosses a flash channel controller (LDPC decode/encode).
const EccLatency = 500 * sim.Nanosecond

// OnDieEccLatency is the weaker on-die error detection used for direct
// flash-to-flash movement in pnSSD (the hybrid-ECC scheme of the paper's
// discussion section).
const OnDieEccLatency = 100 * sim.Nanosecond

// BusFabric is the classic one-bus-per-channel fabric. With a dedicated
// 8-bit interface it is the baseline SSD; with a packetized 16-bit
// interface it is pSSD (Fig 9(a)). Chips on one channel share that
// channel for every command and every byte of payload, and all traffic —
// host I/O and GC alike — funnels through the channel controller.
type BusFabric struct {
	eng      *sim.Engine
	name     string
	grid     *Grid
	soc      *Soc
	pageSize int
	chans    []*bus.Channel
	iface    []bus.Iface
}

// NewBusFabric builds a bus fabric with one channel per grid row.
// packetized selects the pSSD interface; widthBits and rateMTps describe
// each channel (8/1000 for baseSSD, 16/1000 for pSSD per Table II).
func NewBusFabric(eng *sim.Engine, name string, grid *Grid, soc *Soc, pageSize, widthBits, rateMTps int, packetized bool) *BusFabric {
	f := &BusFabric{
		eng:      eng,
		name:     name,
		grid:     grid,
		soc:      soc,
		pageSize: pageSize,
		chans:    make([]*bus.Channel, grid.Channels),
		iface:    make([]bus.Iface, grid.Channels),
	}
	for ch := 0; ch < grid.Channels; ch++ {
		f.chans[ch] = bus.NewChannel(eng, fmt.Sprintf("%s/h%d", name, ch), widthBits, rateMTps)
		if packetized {
			f.iface[ch] = bus.NewPacketized(f.chans[ch])
		} else {
			if widthBits != 8 {
				panic("controller: dedicated interface is 8 bits wide")
			}
			f.iface[ch] = bus.NewDedicated(rateMTps)
		}
	}
	return f
}

// Name implements Fabric.
func (f *BusFabric) Name() string { return f.name }

// Grid implements Fabric.
func (f *BusFabric) Grid() *Grid { return f.grid }

// Lookahead implements Fabric. The bus fabrics' only non-zero latency
// between a channel group and the SoC is the ECC pipeline (reads pay it
// on the return path, writes before dispatch), so EccLatency is the
// window bound.
func (f *BusFabric) Lookahead() sim.Time { return EccLatency }

// Channel returns the h-channel for a grid row, for instrumentation.
func (f *BusFabric) Channel(ch int) *bus.Channel { return f.chans[ch] }

// Read implements Fabric: command on the channel, tR in the array, page
// readout on the channel, ECC, then the SoC hop into DRAM.
func (f *BusFabric) Read(id ChipID, ppas []flash.PPA, done func()) {
	ch := f.chans[id.Channel]
	ifc := f.iface[id.Channel]
	chip := f.grid.Chip(id)
	n := totalBytes(f.pageSize, len(ppas))
	ch.UseOp("read-cmd", ifc.ReadCmd(), func() {
		chip.Read(ppas, func() {
			ch.UseOp("read-xfer", ifc.ReadXfer(n), func() {
				f.eng.Schedule(EccLatency, func() {
					f.soc.Transfer(n, done)
				})
			})
		})
	})
}

// Write implements Fabric: the SoC hop out of DRAM, command+payload on the
// channel, then tPROG in the array.
func (f *BusFabric) Write(id ChipID, ops []flash.ProgramOp, done func()) {
	ch := f.chans[id.Channel]
	ifc := f.iface[id.Channel]
	chip := f.grid.Chip(id)
	n := totalBytes(f.pageSize, len(ops))
	f.soc.Transfer(n, func() {
		f.eng.Schedule(EccLatency, func() {
			ch.UseOp("program-xfer", ifc.ProgramXfer(n), func() {
				chip.Program(ops, done)
			})
		})
	})
}

// Erase implements Fabric.
func (f *BusFabric) Erase(id ChipID, blocks []flash.PPA, done func()) {
	ch := f.chans[id.Channel]
	ifc := f.iface[id.Channel]
	chip := f.grid.Chip(id)
	ch.UseOp("erase-cmd", ifc.EraseCmd(), func() {
		chip.Erase(blocks, done)
	})
}

// Copy implements Fabric: bus fabrics have no flash-to-flash connectivity,
// so a GC page copy reads the page back through the source channel into
// DRAM and writes it out through the destination channel (Fig 10(a)) —
// occupying both channels, the controllers' ECC, and the SoC twice.
func (f *BusFabric) Copy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func()) {
	srcCh := f.chans[src.Channel]
	srcIfc := f.iface[src.Channel]
	srcChip := f.grid.Chip(src)
	n := f.pageSize
	srcCh.UseOp("gc-read-cmd", srcIfc.ReadCmd(), func() {
		srcChip.Read([]flash.PPA{from}, func() {
			token := srcChip.PageRegister(from.Plane)
			srcCh.UseOp("gc-read-xfer", srcIfc.ReadXfer(n), func() {
				f.eng.Schedule(EccLatency, func() {
					f.soc.Transfer(n, func() {
						f.Write(dst, []flash.ProgramOp{{Addr: to, Token: token}}, done)
					})
				})
			})
		})
	})
}
