package controller

import (
	"fmt"
	"strings"

	"repro/internal/flash"
	"repro/internal/sim"
)

// SchedPolicy selects the controller's command scheduling policy — the
// Venice/Sprinkler-class alternatives to the paper's extra wires. FIFO
// is the historical behaviour: every transaction issues the moment the
// FTL hands it over and the per-resource queues do all the ordering.
type SchedPolicy int

// Scheduling policies.
const (
	// SchedFIFO issues transactions in arrival order with no deferral;
	// it is byte-identical to running without a scheduling layer.
	SchedFIFO SchedPolicy = iota
	// SchedConflict is Venice-style conflict-free path allocation:
	// before a (potentially split) read or a GC copy issues, its full
	// h-channel/v-channel/chip path is reserved in a conflict table, and
	// transactions whose path intersects an active reservation defer
	// until the holder releases.
	SchedConflict
	// SchedOOO is Sprinkler-style out-of-order scheduling: transactions
	// enter an inflight window and the scheduler repeatedly picks the
	// pending command that maximizes distinct-die utilization instead of
	// honouring arrival order, subject to a starvation bound.
	SchedOOO
)

// String names the policy as the CLI flags spell it.
func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedConflict:
		return "conflict"
	case SchedOOO:
		return "ooo"
	default:
		return fmt.Sprintf("sched(%d)", int(p))
	}
}

// SchedPolicyNames lists the parseable policy names in enum order.
func SchedPolicyNames() []string { return []string{"fifo", "conflict", "ooo"} }

// ParseSchedPolicy resolves a policy name; the empty string is the FIFO
// default so an unset config knob means "today's behaviour".
func ParseSchedPolicy(name string) (SchedPolicy, error) {
	switch strings.ToLower(name) {
	case "", "fifo":
		return SchedFIFO, nil
	case "conflict":
		return SchedConflict, nil
	case "ooo":
		return SchedOOO, nil
	default:
		return SchedFIFO, fmt.Errorf("controller: unknown scheduler policy %q (want fifo, conflict, or ooo)", name)
	}
}

// SegKind classifies one segment of a reserved data path.
type SegKind int

// Path segment kinds.
const (
	SegH    SegKind = iota // an h-channel row bus
	SegV                   // a v-channel column bus
	SegChip                // a flash chip (die)
)

// String names the kind.
func (k SegKind) String() string {
	switch k {
	case SegH:
		return "h"
	case SegV:
		return "v"
	case SegChip:
		return "chip"
	default:
		return fmt.Sprintf("seg(%d)", int(k))
	}
}

// PathSeg is one reservable segment of an interconnect path: an
// h-channel (Index = channel row), a v-channel (Index = v-channel
// number), or a chip (Index = channel*ways + way).
type PathSeg struct {
	Kind  SegKind
	Index int
}

// String renders "h3"/"v1"/"chip12"-style names.
func (s PathSeg) String() string { return fmt.Sprintf("%s%d", s.Kind, s.Index) }

// SchedChecker receives scheduling-layer notifications so the invariant
// checker can audit the reservation ledger and reorder-window legality.
// All hooks fire synchronously at the decision point.
type SchedChecker interface {
	// SchedReserved reports that op reserved the given path segments.
	SchedReserved(op uint64, segs []PathSeg)
	// SchedReleased reports that op released its path segments.
	SchedReleased(op uint64, segs []PathSeg)
	// SchedIssued reports that op issued to the inner fabric: rank is
	// its position among pending transactions in arrival order (0 = the
	// oldest), window the reorder-window size the pick had to respect
	// (0 = unwindowed policy), bypassed how many times the op was passed
	// over while pending, and bound the configured starvation bound.
	SchedIssued(op uint64, rank, window, bypassed, bound int)
	// SchedCompleted reports that op's completion callback ran;
	// inflight is the scheduler's remaining inflight count.
	SchedCompleted(op uint64, inflight int)
}

// SchedConfig tunes a scheduling policy. The zero value selects the
// defaults.
type SchedConfig struct {
	// Window is the out-of-order inflight window: at most this many
	// transactions run concurrently, and only the oldest Window pending
	// transactions are eligible for reordering. 1 degenerates to FIFO
	// issue order. Default 16.
	Window int
	// ReorderBound caps starvation: a pending transaction bypassed this
	// many times is issued next regardless of score (out-of-order), and
	// a deferred head bypassed this many times freezes further
	// admissions until it proceeds (conflict). Default 64.
	ReorderBound int
}

// DefaultSchedWindow and DefaultReorderBound are the SchedConfig
// defaults.
const (
	DefaultSchedWindow  = 16
	DefaultReorderBound = 64
)

func (c SchedConfig) withDefaults() SchedConfig {
	if c.Window <= 0 {
		c.Window = DefaultSchedWindow
	}
	if c.ReorderBound <= 0 {
		c.ReorderBound = DefaultReorderBound
	}
	return c
}

// opKind classifies a scheduled transaction.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opErase
	opCopy
)

func (k opKind) String() string {
	return [...]string{"read", "write", "erase", "copy"}[k]
}

// schedOp is one transaction held by the scheduling layer.
type schedOp struct {
	seq      uint64
	kind     opKind
	segs     []PathSeg // conflict-table reservation set; nil = pass through
	chips    []int     // target chip indices, for the die-utilization score
	run      func(done func())
	bypassed int
}

// SchedFabric wraps an inner Fabric with a pluggable scheduling policy.
// It is transparent to the FTL — same four transactions, same completion
// semantics — and entirely synchronous: every scheduling decision runs
// inside the enqueue call or a completion callback, so it schedules no
// engine events of its own and inherits the wrapped fabric's determinism
// (including byte-identity at any -parallel and -shards setting).
//
// With SchedFIFO the wrapper issues every transaction immediately in
// arrival order — the exact event sequence of an unwrapped fabric — so
// unit tests can diff the other policies against it.
type SchedFabric struct {
	inner Fabric
	pol   SchedPolicy
	cfg   SchedConfig
	ways  int

	seq      uint64
	inflight int

	// conflict state: active reservations and the deferred queue in
	// arrival order.
	table  map[PathSeg]uint64
	deferq []*schedOp

	// out-of-order state: pending transactions in arrival order and the
	// per-chip inflight load the picker scores against.
	pending  []*schedOp
	chipLoad map[int]int

	check SchedChecker

	// counters for reports and tests
	deferred   int64 // conflict: transactions that waited in the defer queue
	reordered  int64 // ooo: picks that bypassed at least one older transaction
	forced     int64 // ooo: starvation-bound forced picks
	maxPending int
}

// NewSchedFabric wraps inner with the given policy at default tuning.
func NewSchedFabric(inner Fabric, pol SchedPolicy) *SchedFabric {
	return NewSchedFabricCfg(inner, pol, SchedConfig{})
}

// NewSchedFabricCfg wraps inner with explicit tuning.
func NewSchedFabricCfg(inner Fabric, pol SchedPolicy, cfg SchedConfig) *SchedFabric {
	if inner == nil {
		panic("controller: scheduling layer needs an inner fabric")
	}
	return &SchedFabric{
		inner:    inner,
		pol:      pol,
		cfg:      cfg.withDefaults(),
		ways:     inner.Grid().Ways,
		table:    make(map[PathSeg]uint64),
		chipLoad: make(map[int]int),
	}
}

// Policy returns the active scheduling policy.
func (f *SchedFabric) Policy() SchedPolicy { return f.pol }

// Window returns the reorder-window size the checker should enforce: the
// configured inflight window for out-of-order, 0 (unwindowed) otherwise.
func (f *SchedFabric) Window() int {
	if f.pol == SchedOOO {
		return f.cfg.Window
	}
	return 0
}

// ReorderBound returns the configured starvation bound.
func (f *SchedFabric) ReorderBound() int { return f.cfg.ReorderBound }

// SetChecker attaches a scheduling checker; nil (the default) detaches.
func (f *SchedFabric) SetChecker(c SchedChecker) { f.check = c }

// Counts returns the policy counters: conflict deferrals, out-of-order
// reorders, and starvation-bound forced picks.
func (f *SchedFabric) Counts() (deferred, reordered, forced int64) {
	return f.deferred, f.reordered, f.forced
}

// MaxPending returns the deepest pending/deferred backlog observed.
func (f *SchedFabric) MaxPending() int { return f.maxPending }

// Quiesced reports whether the scheduling layer holds nothing: no
// inflight transactions, no deferred or pending backlog, and an empty
// reservation table — the drain-time leak invariant.
func (f *SchedFabric) Quiesced() bool {
	return f.inflight == 0 && len(f.deferq) == 0 && len(f.pending) == 0 && len(f.table) == 0
}

// Inner returns the wrapped fabric.
func (f *SchedFabric) Inner() Fabric { return f.inner }

// Name implements Fabric; the wrapper is invisible in reports.
func (f *SchedFabric) Name() string { return f.inner.Name() }

// Grid implements Fabric.
func (f *SchedFabric) Grid() *Grid { return f.inner.Grid() }

// Lookahead implements Fabric: scheduling decisions are synchronous and
// add no latency, so the inner fabric's bound carries through.
func (f *SchedFabric) Lookahead() sim.Time { return f.inner.Lookahead() }

func (f *SchedFabric) chipIndex(id ChipID) int { return id.Channel*f.ways + id.Way }

// readPath closes over the segments a read may occupy. On Omnibus the
// return path is adaptive or split, so the reservation conservatively
// covers both the row's h-channel and the column's v-channel; bus
// fabrics have only the h-channel; mesh chips reserve themselves.
func (f *SchedFabric) readPath(id ChipID) []PathSeg {
	switch in := f.inner.(type) {
	case *OmnibusFabric:
		return []PathSeg{{SegH, id.Channel}, {SegV, in.vIndex(id.Way)}, {SegChip, f.chipIndex(id)}}
	case *BusFabric:
		return []PathSeg{{SegH, id.Channel}, {SegChip, f.chipIndex(id)}}
	default:
		return []PathSeg{{SegChip, f.chipIndex(id)}}
	}
}

// copyPath closes over the segments a GC copy occupies: the column's
// v-channel for a direct Omnibus copy, the two rows' h-channels for a
// relayed one, plus both chips.
func (f *SchedFabric) copyPath(src, dst ChipID) []PathSeg {
	chips := []PathSeg{{SegChip, f.chipIndex(src)}, {SegChip, f.chipIndex(dst)}}
	var segs []PathSeg
	switch in := f.inner.(type) {
	case *OmnibusFabric:
		if in.vIndex(src.Way) == in.vIndex(dst.Way) {
			segs = []PathSeg{{SegV, in.vIndex(src.Way)}}
		} else {
			segs = []PathSeg{{SegH, src.Channel}, {SegH, dst.Channel}}
		}
	case *BusFabric:
		segs = []PathSeg{{SegH, src.Channel}, {SegH, dst.Channel}}
	}
	return dedupeSegs(append(segs, chips...))
}

// dedupeSegs removes duplicate segments (a same-row relay copy names one
// h-channel twice) so reserve/release stay exactly-once per segment.
func dedupeSegs(segs []PathSeg) []PathSeg {
	out := segs[:0]
	for _, s := range segs {
		dup := false
		for _, o := range out {
			if o == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// Read implements Fabric.
func (f *SchedFabric) Read(id ChipID, ppas []flash.PPA, done func()) {
	addrs := append([]flash.PPA(nil), ppas...)
	f.submit(&schedOp{
		kind:  opRead,
		segs:  f.readPath(id),
		chips: []int{f.chipIndex(id)},
		run:   func(fin func()) { f.inner.Read(id, addrs, fin) },
	}, done)
}

// Write implements Fabric. Writes are single-path on every fabric, so
// the conflict policy passes them through unreserved; the out-of-order
// window still sequences them against the die-utilization score.
func (f *SchedFabric) Write(id ChipID, ops []flash.ProgramOp, done func()) {
	writes := append([]flash.ProgramOp(nil), ops...)
	f.submit(&schedOp{
		kind:  opWrite,
		chips: []int{f.chipIndex(id)},
		run:   func(fin func()) { f.inner.Write(id, writes, fin) },
	}, done)
}

// Erase implements Fabric; erases are one control packet and pass the
// conflict table unreserved.
func (f *SchedFabric) Erase(id ChipID, blocks []flash.PPA, done func()) {
	addrs := append([]flash.PPA(nil), blocks...)
	f.submit(&schedOp{
		kind:  opErase,
		chips: []int{f.chipIndex(id)},
		run:   func(fin func()) { f.inner.Erase(id, addrs, fin) },
	}, done)
}

// Copy implements Fabric.
func (f *SchedFabric) Copy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func()) {
	f.submit(&schedOp{
		kind:  opCopy,
		segs:  f.copyPath(src, dst),
		chips: []int{f.chipIndex(src), f.chipIndex(dst)},
		run:   func(fin func()) { f.inner.Copy(src, from, dst, to, fin) },
	}, done)
}

// submit routes one transaction through the active policy. The done
// callback is wrapped so completion feeds the scheduler before the FTL.
func (f *SchedFabric) submit(op *schedOp, done func()) {
	op.seq = f.seq
	f.seq++
	fin := func() {
		f.complete(op)
		if done != nil {
			done()
		}
	}
	switch f.pol {
	case SchedConflict:
		if op.segs != nil && (f.frozenConflict() || !f.pathFree(op.segs)) {
			f.deferred++
			f.deferq = append(f.deferq, op)
			if n := len(f.deferq); n > f.maxPending {
				f.maxPending = n
			}
			op.run = wrapFin(op.run, fin)
			return
		}
		// A fresh reservation jumping ahead of deferred work counts as a
		// bypass against everything already waiting, so the starvation
		// bound covers new arrivals too.
		if op.segs != nil {
			for _, d := range f.deferq {
				d.bypassed++
			}
		}
		f.issue(op, 0, fin)
	case SchedOOO:
		f.pending = append(f.pending, op)
		if n := len(f.pending); n > f.maxPending {
			f.maxPending = n
		}
		op.run = wrapFin(op.run, fin)
		f.drainOOO()
	default: // SchedFIFO: immediate, arrival order
		f.issue(op, 0, fin)
	}
}

// wrapFin binds the completion chain into the op so deferred issues keep
// their callback.
func wrapFin(run func(done func()), fin func()) func(done func()) {
	return func(_ func()) { run(fin) }
}

// issue reserves the op's path (conflict policy), notifies the checker,
// bumps the load accounting, and hands the transaction to the inner
// fabric. rank is the op's arrival-order position among the transactions
// it was picked from.
func (f *SchedFabric) issue(op *schedOp, rank int, fin func()) {
	if f.pol == SchedConflict && op.segs != nil {
		for _, s := range op.segs {
			f.table[s] = op.seq
		}
		if f.check != nil {
			f.check.SchedReserved(op.seq, op.segs)
		}
	}
	f.inflight++
	for _, c := range op.chips {
		f.chipLoad[c]++
	}
	if f.check != nil {
		f.check.SchedIssued(op.seq, rank, f.Window(), op.bypassed, f.cfg.ReorderBound)
	}
	if fin != nil {
		op.run(fin)
	} else {
		op.run(nil) // deferred op: fin already bound by wrapFin
	}
}

// complete runs when the inner fabric finishes an op: release the path,
// update load, notify the checker, and let the policy admit more work.
func (f *SchedFabric) complete(op *schedOp) {
	f.inflight--
	for _, c := range op.chips {
		if f.chipLoad[c]--; f.chipLoad[c] == 0 {
			delete(f.chipLoad, c)
		}
	}
	if f.pol == SchedConflict && op.segs != nil {
		for _, s := range op.segs {
			delete(f.table, s)
		}
		if f.check != nil {
			f.check.SchedReleased(op.seq, op.segs)
		}
	}
	if f.check != nil {
		f.check.SchedCompleted(op.seq, f.inflight)
	}
	switch f.pol {
	case SchedConflict:
		f.drainConflict()
	case SchedOOO:
		f.drainOOO()
	}
}

