package controller

// Venice-style conflict-aware path reservation.
//
// A read or GC copy names its full interconnect path (h-channel,
// v-channel, chips) as a set of PathSegs before it issues. The conflict
// table maps each segment to the transaction holding it; a newcomer
// whose path intersects an active reservation joins the deferred queue
// in arrival order and is re-examined every time a holder releases.
// Single-segment transactions (writes, erases) pass through unreserved —
// serializing one control packet behind a whole reserved path would cost
// bandwidth without preventing any real contention.

// frozenConflict reports whether the deferred head has been bypassed up
// to the reorder bound: from then on nothing may overtake it — new
// reserved arrivals defer and only the head may admit — so the head is
// guaranteed to issue once its blockers complete.
func (f *SchedFabric) frozenConflict() bool {
	return len(f.deferq) > 0 && f.deferq[0].bypassed >= f.cfg.ReorderBound
}

// pathFree reports whether none of the segments is reserved.
func (f *SchedFabric) pathFree(segs []PathSeg) bool {
	for _, s := range segs {
		if _, held := f.table[s]; held {
			return false
		}
	}
	return true
}

// drainConflict scans the deferred queue in arrival order and admits
// every transaction whose path is now free. Admitting over the head
// bumps the head's bypass count; once that count reaches the reorder
// bound the queue freezes — only the head may admit — which guarantees
// the head issues once the reservations blocking it release (they all
// complete in bounded simulated time), so no transaction starves.
func (f *SchedFabric) drainConflict() {
	for i := 0; i < len(f.deferq); {
		if i > 0 && f.frozenConflict() {
			return // frozen: the head must go next
		}
		op := f.deferq[i]
		if !f.pathFree(op.segs) {
			i++
			continue
		}
		f.deferq = append(f.deferq[:i], f.deferq[i+1:]...)
		for j := 0; j < i; j++ {
			f.deferq[j].bypassed++
		}
		f.issue(op, i, nil)
	}
}
