package controller

import (
	"repro/internal/flash"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/sim"
)

// MeshFabric is the Network-on-SSD comparator: chips form a 2D mesh
// (ways × channels) and the channel controllers attach along the left
// edge, one per row. Commands and payloads travel as packets over
// multi-hop dimension-ordered routes; every byte of host I/O crosses the
// controller-adjacent edge links, which is where the paper locates the
// NoSSD bottleneck.
type MeshFabric struct {
	eng      *sim.Engine
	name     string
	grid     *Grid
	soc      *Soc
	pageSize int
	m        *mesh.Mesh
}

// NewMeshFabric builds the mesh fabric; widthBits is the per-link width
// (2 for the pin-constrained variant, 8 for the unconstrained one).
func NewMeshFabric(eng *sim.Engine, name string, grid *Grid, soc *Soc, pageSize, widthBits, rateMTps int) *MeshFabric {
	return &MeshFabric{
		eng:      eng,
		name:     name,
		grid:     grid,
		soc:      soc,
		pageSize: pageSize,
		m:        mesh.New(eng, grid.Ways, grid.Channels, widthBits, rateMTps),
	}
}

// Name implements Fabric.
func (f *MeshFabric) Name() string { return f.name }

// Lookahead implements Fabric. Mesh rows interact with each other and
// with the controller through router hops (plus the ECC pipeline on the
// controller edge), so the window bound is the smaller of the hop
// traversal and EccLatency.
func (f *MeshFabric) Lookahead() sim.Time {
	if d := f.m.HopLatency(); d < EccLatency {
		return d
	}
	return EccLatency
}

// Grid implements Fabric.
func (f *MeshFabric) Grid() *Grid { return f.grid }

// Mesh exposes the fabric's mesh for instrumentation.
func (f *MeshFabric) Mesh() *mesh.Mesh { return f.m }

func (f *MeshFabric) node(id ChipID) mesh.Node { return mesh.Node{X: id.Way, Y: id.Channel} }

// Read implements Fabric: command packet to the chip, tR, data packet back
// to the row's controller, ECC, SoC hop.
func (f *MeshFabric) Read(id ChipID, ppas []flash.PPA, done func()) {
	chip := f.grid.Chip(id)
	node := f.node(id)
	ctrl := mesh.Controller(id.Channel)
	n := totalBytes(f.pageSize, len(ppas))
	f.m.Transfer(ctrl, node, packet.ControlFlitsFor(), func() {
		chip.Read(ppas, func() {
			f.m.Transfer(node, ctrl, packet.DataFlitsFor(n), func() {
				f.eng.Schedule(EccLatency, func() {
					f.soc.Transfer(n, done)
				})
			})
		})
	})
}

// Write implements Fabric: SoC hop, then one command+payload packet stream
// to the chip, then tPROG.
func (f *MeshFabric) Write(id ChipID, ops []flash.ProgramOp, done func()) {
	chip := f.grid.Chip(id)
	node := f.node(id)
	ctrl := mesh.Controller(id.Channel)
	n := totalBytes(f.pageSize, len(ops))
	writes := append([]flash.ProgramOp(nil), ops...)
	f.soc.Transfer(n, func() {
		f.eng.Schedule(EccLatency, func() {
			f.m.Transfer(ctrl, node, packet.ControlFlitsFor()+packet.DataFlitsFor(n), func() {
				chip.Program(writes, done)
			})
		})
	})
}

// Erase implements Fabric.
func (f *MeshFabric) Erase(id ChipID, blocks []flash.PPA, done func()) {
	chip := f.grid.Chip(id)
	f.m.Transfer(mesh.Controller(id.Channel), f.node(id), packet.ControlFlitsFor(), func() {
		chip.Erase(blocks, done)
	})
}

// Copy implements Fabric: the mesh does provide flash-to-flash
// connectivity, so a GC copy sends the read command from the controller,
// then moves the payload directly from source to destination node and
// commits with an on-die program — the same capability pnSSD has, paid
// for with multi-hop link occupancy.
func (f *MeshFabric) Copy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func()) {
	srcChip, dstChip := f.grid.Chip(src), f.grid.Chip(dst)
	srcNode, dstNode := f.node(src), f.node(dst)
	n := f.pageSize
	f.m.Transfer(mesh.Controller(src.Channel), srcNode, packet.ControlFlitsFor(), func() {
		srcChip.Read([]flash.PPA{from}, func() {
			token := srcChip.PageRegister(from.Plane)
			f.m.Transfer(srcNode, dstNode, packet.DataFlitsFor(n), func() {
				reg := dstChip.AcquireVPage()
				if reg < 0 {
					// The mesh has no control-plane reservation; model the
					// stall-and-retry at the destination.
					var retry func()
					retry = func() {
						r := dstChip.AcquireVPage()
						if r < 0 {
							f.eng.Schedule(5*sim.Microsecond, retry)
							return
						}
						f.commit(dstChip, r, token, to, done)
					}
					f.eng.Schedule(5*sim.Microsecond, retry)
					return
				}
				f.commit(dstChip, reg, token, to, done)
			})
		})
	})
}

func (f *MeshFabric) commit(dstChip *flash.Chip, reg int, token flash.Token, to flash.PPA, done func()) {
	dstChip.SetVPage(reg, token)
	f.eng.Schedule(OnDieEccLatency, func() {
		dstChip.ProgramFromVPage(reg, to, done)
	})
}
