package controller

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func newOmnibus(e *sim.Engine, g *Grid, soc *Soc, split bool) *OmnibusFabric {
	return NewOmnibusFabric(e, "pnssd", g, soc, 16384, 8, 1000, split)
}

func TestOmnibusReadWriteErase(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	id := ChipID{1, 0}
	a := flash.PPA{Plane: 0, Block: 1, Page: 0}
	var w, r, er bool
	f.Write(id, []flash.ProgramOp{{Addr: a, Token: 5}}, func() { w = true })
	e.Run()
	f.Read(id, []flash.PPA{a}, func() { r = true })
	e.Run()
	f.Erase(id, []flash.PPA{{Plane: 0, Block: 1}}, func() { er = true })
	e.Run()
	if !w || !r || !er {
		t.Fatalf("w=%v r=%v er=%v", w, r, er)
	}
}

func TestOmnibusDirectCopySameColumn(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	src, dst := ChipID{0, 1}, ChipID{3, 1} // same way, different channels
	from, to := flash.PPA{Plane: 0, Block: 0, Page: 0}, flash.PPA{Plane: 0, Block: 0, Page: 0}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: from, Token: 0xBEEF}}, nil)
	e.Run()
	done := false
	f.Copy(src, from, dst, to, func() { done = true })
	e.Run()
	if !done || g.Chip(dst).ContentAt(to) != 0xBEEF {
		t.Fatal("direct copy failed")
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 1 || relayed != 0 {
		t.Fatalf("direct=%d relayed=%d, want 1, 0", direct, relayed)
	}
	// The h-channels and SoC must stay untouched by the data movement
	// (only the source program earlier used them... the program used soc).
	if f.VChannel(1).TotalBusy() == 0 {
		t.Fatal("v-channel never used for direct copy")
	}
	if f.HChannel(0).TotalBusy() != 0 && f.HChannel(3).TotalBusy() != 0 {
		t.Fatal("h-channels used during direct copy")
	}
}

func TestOmnibusDirectCopyAvoidsHChannels(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	src, dst := ChipID{1, 0}, ChipID{2, 0}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	e.Run()
	hBusyBefore := f.HChannel(1).TotalBusy() + f.HChannel(2).TotalBusy()
	socBusyBefore := soc.SysBusBusy()
	f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, nil)
	e.Run()
	if f.HChannel(1).TotalBusy()+f.HChannel(2).TotalBusy() != hBusyBefore {
		t.Fatal("direct copy occupied h-channels")
	}
	if soc.SysBusBusy() != socBusyBefore {
		t.Fatal("direct copy crossed the system bus")
	}
}

func TestOmnibusRelayedCopyCrossColumn(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	src, dst := ChipID{0, 0}, ChipID{1, 1}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 0xAA}}, nil)
	e.Run()
	done := false
	f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { done = true })
	e.Run()
	if !done || g.Chip(dst).ContentAt(flash.PPA{Plane: 0, Block: 0, Page: 0}) != 0xAA {
		t.Fatal("relayed copy failed")
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 0 || relayed != 1 {
		t.Fatalf("direct=%d relayed=%d, want 0, 1", direct, relayed)
	}
}

func TestOmnibusDirectCopyFasterThanRelay(t *testing.T) {
	// Same-column direct copy must beat the controller-relayed route: one
	// channel crossing instead of two, no SoC, no strong-ECC.
	time1 := func(srcW, dstW int) sim.Time {
		e, g, soc := testRig(4, 4)
		f := newOmnibus(e, g, soc, false)
		src, dst := ChipID{0, srcW}, ChipID{3, dstW}
		g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
		e.Run()
		start := e.Now()
		var doneAt sim.Time
		f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { doneAt = e.Now() })
		e.Run()
		return doneAt - start
	}
	direct := time1(2, 2)
	relayed := time1(2, 3)
	if direct >= relayed {
		t.Fatalf("direct copy %v not faster than relayed %v", direct, relayed)
	}
}

func TestOmnibusAdaptivePathUnderContention(t *testing.T) {
	// Saturate the h-channel of row 0 with reads from way 0; a read from
	// way 1 should divert to its v-channel.
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	for w := 0; w < 2; w++ {
		g.Chip(ChipID{0, w}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	}
	e.Run()
	remaining := 4
	for i := 0; i < 3; i++ {
		f.Read(ChipID{0, 0}, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
	}
	f.Read(ChipID{0, 1}, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
	e.Run()
	if remaining != 0 {
		t.Fatal("reads incomplete")
	}
	h, v, _, _, _ := f.PathCounts()
	if v == 0 {
		t.Fatalf("no read diverted to v-channel (h=%d v=%d)", h, v)
	}
}

func TestOmnibusSplitUsesBothPaths(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, true)
	id := ChipID{0, 0}
	g.Chip(id).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	e.Run()
	done := false
	f.Read(id, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("split read incomplete")
	}
	_, _, split, _, _ := f.PathCounts()
	if split != 1 {
		t.Fatalf("splitReturns = %d", split)
	}
	if f.HChannel(0).TotalBusy() == 0 || f.VChannel(0).TotalBusy() == 0 {
		t.Fatal("split read did not use both buses")
	}
}

func TestOmnibusSplitFasterOnIdleFabric(t *testing.T) {
	lat := func(split bool) sim.Time {
		e, g, soc := testRig(2, 2)
		f := newOmnibus(e, g, soc, split)
		return readLatency(t, e, f, ChipID{0, 0})
	}
	whole := lat(false)
	halved := lat(true)
	if halved >= whole {
		t.Fatalf("split read %v not faster than whole-page %v", halved, whole)
	}
	// Transfer time should drop by nearly half (8.2us -> ~4.1us page phase).
	saved := whole - halved
	if saved < 6*sim.Microsecond {
		t.Fatalf("split saved only %v", saved)
	}
}

func TestOmnibusVPageBackpressure(t *testing.T) {
	// Exhaust the destination's V-page registers, then issue a direct
	// copy: it must retry and eventually complete once a register frees.
	e, g, soc := testRig(2, 2)
	f := newOmnibus(e, g, soc, false)
	src, dst := ChipID{0, 0}, ChipID{1, 0}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 9}}, nil)
	e.Run()
	r0 := g.Chip(dst).AcquireVPage()
	r1 := g.Chip(dst).AcquireVPage()
	if r0 < 0 || r1 < 0 {
		t.Fatal("could not exhaust V-page registers")
	}
	done := false
	f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { done = true })
	e.RunUntil(20 * sim.Microsecond)
	if done {
		t.Fatal("copy completed despite exhausted V-page registers")
	}
	g.Chip(dst).ReleaseVPage(r0)
	g.Chip(dst).ReleaseVPage(r1)
	e.Run()
	if !done {
		t.Fatal("copy never completed after registers freed")
	}
}

func TestOmnibusPnSSDSlowerThanPSSDWhenIdle(t *testing.T) {
	// Fig 14 discussion: on an idle fabric pSSD's fat 16-bit channel beats
	// pnSSD's 8-bit h-channel for a single whole-page read.
	ePn, gPn, socPn := testRig(1, 1)
	pn := newOmnibus(ePn, gPn, socPn, false)
	eP, gP, socP := testRig(1, 1)
	p := NewBusFabric(eP, "pssd", gP, socP, 16384, 16, 1000, true)
	latPn := readLatency(t, ePn, pn, ChipID{0, 0})
	latP := readLatency(t, eP, p, ChipID{0, 0})
	if latP >= latPn {
		t.Fatalf("pSSD %v not faster than pnSSD %v on idle fabric", latP, latPn)
	}
}
