package controller

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func TestMeshFabricReadWriteErase(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := NewMeshFabric(e, "nossd", g, soc, 16384, 8, 1000)
	id := ChipID{1, 1}
	a := flash.PPA{Plane: 0, Block: 0, Page: 0}
	var w, r, er bool
	f.Write(id, []flash.ProgramOp{{Addr: a, Token: 3}}, func() { w = true })
	e.Run()
	if !w || g.Chip(id).ContentAt(a) != 3 {
		t.Fatal("mesh write failed")
	}
	f.Read(id, []flash.PPA{a}, func() { r = true })
	e.Run()
	f.Erase(id, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { er = true })
	e.Run()
	if !r || !er {
		t.Fatalf("r=%v er=%v", r, er)
	}
}

func TestMeshFabricPinConstraintMuchSlower(t *testing.T) {
	// Fig 14: NoSSD(pin-constraint) with 2-bit links is ~4x slower than
	// the 8-bit variant for page movement.
	lat := func(width int) sim.Time {
		e, g, soc := testRig(2, 2)
		f := NewMeshFabric(e, "nossd", g, soc, 16384, width, 1000)
		return readLatency(t, e, f, ChipID{0, 1})
	}
	wide := lat(8)
	narrow := lat(2)
	ratio := float64(narrow) / float64(wide)
	if ratio < 2.5 || ratio > 4.5 {
		t.Fatalf("2-bit/8-bit read latency ratio = %.2f (narrow=%v wide=%v)", ratio, narrow, wide)
	}
}

func TestMeshFabricFarChipSlower(t *testing.T) {
	e, g, soc := testRig(4, 4)
	f := NewMeshFabric(e, "nossd", g, soc, 16384, 8, 1000)
	near := readLatency(t, e, f, ChipID{0, 0})
	far := readLatency(t, e, f, ChipID{3, 3})
	if far <= near {
		t.Fatalf("far chip read %v not slower than near %v", far, near)
	}
}

func TestMeshFabricCopyDirect(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := NewMeshFabric(e, "nossd", g, soc, 16384, 8, 1000)
	src, dst := ChipID{0, 0}, ChipID{1, 1}
	g.Chip(src).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 0xCC}}, nil)
	e.Run()
	socBefore := soc.SysBusBusy()
	done := false
	f.Copy(src, flash.PPA{Plane: 0, Block: 0, Page: 0}, dst, flash.PPA{Plane: 0, Block: 0, Page: 0}, func() { done = true })
	e.Run()
	if !done || g.Chip(dst).ContentAt(flash.PPA{Plane: 0, Block: 0, Page: 0}) != 0xCC {
		t.Fatal("mesh copy failed")
	}
	if soc.SysBusBusy() != socBefore {
		t.Fatal("mesh direct copy crossed the system bus")
	}
}

func TestMeshFabricControllerEdgeCongestion(t *testing.T) {
	// All chips in one row answer reads at once: the ejection link into
	// the row controller serializes every page, so the total time is at
	// least ways × page serialization on one link.
	e, g, soc := testRig(1, 4)
	f := NewMeshFabric(e, "nossd", g, soc, 16384, 8, 1000)
	for w := 0; w < 4; w++ {
		g.Chip(ChipID{0, w}).Program([]flash.ProgramOp{{Addr: flash.PPA{Plane: 0, Block: 0, Page: 0}, Token: 1}}, nil)
	}
	e.Run()
	start := e.Now()
	remaining := 4
	for w := 0; w < 4; w++ {
		f.Read(ChipID{0, w}, []flash.PPA{{Plane: 0, Block: 0, Page: 0}}, func() { remaining-- })
	}
	e.Run()
	if remaining != 0 {
		t.Fatal("reads incomplete")
	}
	elapsed := e.Now() - start
	pageSer := sim.Time(16387) * sim.Nanosecond // 8-bit link, 1 flit/ns
	if elapsed < 4*pageSer {
		t.Fatalf("elapsed %v < 4x page serialization %v: no ejection bottleneck", elapsed, 4*pageSer)
	}
}
