package controller

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

func TestParseSchedPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    SchedPolicy
		wantErr bool
	}{
		{"", SchedFIFO, false},
		{"fifo", SchedFIFO, false},
		{"FIFO", SchedFIFO, false},
		{"conflict", SchedConflict, false},
		{"ooo", SchedOOO, false},
		{"venice", 0, true},
		{"oooo", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSchedPolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseSchedPolicy(%q): err = %v, wantErr = %v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseSchedPolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for i, name := range SchedPolicyNames() {
		if SchedPolicy(i).String() != name {
			t.Fatalf("policy %d stringifies as %q, names list says %q", i, SchedPolicy(i), name)
		}
		if p, err := ParseSchedPolicy(name); err != nil || p != SchedPolicy(i) {
			t.Fatalf("round-trip %q = %v, %v", name, p, err)
		}
	}
	if SchedPolicy(99).String() == "" || SegKind(99).String() == "" {
		t.Fatal("out-of-range enums must still stringify")
	}
}

func TestSchedPathClosure(t *testing.T) {
	e, g, soc := testRig(4, 4)
	omni := NewOmnibusFabric(e, "pnssd", g, soc, testGeo().PageSize, 8, 1000, false)
	so := NewSchedFabric(omni, SchedConflict)
	if got := so.readPath(ChipID{2, 3}); !reflect.DeepEqual(got, []PathSeg{{SegH, 2}, {SegV, 3}, {SegChip, 2*4 + 3}}) {
		t.Fatalf("omnibus read path = %v", got)
	}
	// Same v-column copy reserves the v-channel, not the h-channels.
	if got := so.copyPath(ChipID{0, 1}, ChipID{3, 1}); !reflect.DeepEqual(got, []PathSeg{{SegV, 1}, {SegChip, 1}, {SegChip, 3*4 + 1}}) {
		t.Fatalf("same-column copy path = %v", got)
	}
	// Cross-column copy relays over both rows' h-channels.
	if got := so.copyPath(ChipID{0, 0}, ChipID{1, 2}); !reflect.DeepEqual(got, []PathSeg{{SegH, 0}, {SegH, 1}, {SegChip, 0}, {SegChip, 1*4 + 2}}) {
		t.Fatalf("cross-column copy path = %v", got)
	}
	// Same-row cross-column copy names one h-channel once (dedupe).
	if got := so.copyPath(ChipID{2, 0}, ChipID{2, 3}); !reflect.DeepEqual(got, []PathSeg{{SegH, 2}, {SegChip, 2 * 4}, {SegChip, 2*4 + 3}}) {
		t.Fatalf("same-row copy path = %v", got)
	}

	e2, g2, soc2 := testRig(4, 4)
	bus := NewBusFabric(e2, "pssd", g2, soc2, testGeo().PageSize, 16, 1000, true)
	sb := NewSchedFabric(bus, SchedConflict)
	if got := sb.readPath(ChipID{1, 2}); !reflect.DeepEqual(got, []PathSeg{{SegH, 1}, {SegChip, 1*4 + 2}}) {
		t.Fatalf("bus read path = %v", got)
	}
	if got := sb.copyPath(ChipID{1, 0}, ChipID{3, 0}); !reflect.DeepEqual(got, []PathSeg{{SegH, 1}, {SegH, 3}, {SegChip, 1 * 4}, {SegChip, 3 * 4}}) {
		t.Fatalf("bus copy path = %v", got)
	}
	if PathSeg.String(PathSeg{SegV, 2}) != "v2" {
		t.Fatalf("PathSeg stringification broke: %v", PathSeg{SegV, 2})
	}
}

// schedHarness drives a SchedFabric white-box: ops are injected with
// explicit paths, issues are recorded in order, and the test completes
// them by hand.
type schedHarness struct {
	f     *SchedFabric
	order []string
	fins  map[string]func()
}

func newSchedHarness(pol SchedPolicy, cfg SchedConfig) *schedHarness {
	e, g, soc := testRig(2, 2)
	inner := newOmnibus(e, g, soc, false)
	h := &schedHarness{f: NewSchedFabricCfg(inner, pol, cfg), fins: make(map[string]func())}
	return h
}

// add injects one op named tag with the given reservation path and
// target chips; the inner issue is stubbed so completion is manual.
func (h *schedHarness) add(tag string, segs []PathSeg, chips ...int) {
	h.f.submit(&schedOp{
		kind:  opRead,
		segs:  segs,
		chips: chips,
		run: func(fin func()) {
			h.order = append(h.order, tag)
			h.fins[tag] = fin
		},
	}, nil)
}

func (h *schedHarness) complete(tag string) {
	fin := h.fins[tag]
	if fin == nil {
		panic(fmt.Sprintf("op %s never issued", tag))
	}
	delete(h.fins, tag)
	fin()
}

func segs(ss ...PathSeg) []PathSeg { return ss }

func TestConflictAdmitDeferRelease(t *testing.T) {
	type step struct {
		submit   string    // op tag to submit, "" for none
		path     []PathSeg // its reservation path
		chips    []int
		complete string // op tag to complete, "" for none
	}
	cases := []struct {
		name         string
		steps        []step
		wantOrder    []string
		wantDeferred int64
	}{
		{
			name: "disjoint paths issue immediately",
			steps: []step{
				{submit: "A", path: segs(PathSeg{SegH, 0}), chips: []int{0}},
				{submit: "B", path: segs(PathSeg{SegH, 1}), chips: []int{2}},
			},
			wantOrder:    []string{"A", "B"},
			wantDeferred: 0,
		},
		{
			name: "shared segment serializes in arrival order",
			steps: []step{
				{submit: "A", path: segs(PathSeg{SegH, 0}), chips: []int{0}},
				{submit: "B", path: segs(PathSeg{SegH, 0}), chips: []int{1}},
				{submit: "C", path: segs(PathSeg{SegH, 0}), chips: []int{0}},
				{complete: "A"},
				{complete: "B"},
			},
			wantOrder:    []string{"A", "B", "C"},
			wantDeferred: 2,
		},
		{
			name: "partial overlap defers, disjoint passes",
			steps: []step{
				{submit: "A", path: segs(PathSeg{SegH, 0}, PathSeg{SegV, 0}), chips: []int{0}},
				{submit: "B", path: segs(PathSeg{SegV, 0}, PathSeg{SegChip, 1}), chips: []int{1}},
				{submit: "C", path: segs(PathSeg{SegH, 1}, PathSeg{SegChip, 2}), chips: []int{2}},
				{complete: "A"},
			},
			wantOrder:    []string{"A", "C", "B"},
			wantDeferred: 1,
		},
		{
			name: "chip segment conflicts like a bus segment",
			steps: []step{
				{submit: "A", path: segs(PathSeg{SegChip, 3}), chips: []int{3}},
				{submit: "B", path: segs(PathSeg{SegChip, 3}), chips: []int{3}},
				{complete: "A"},
			},
			wantOrder:    []string{"A", "B"},
			wantDeferred: 1,
		},
		{
			name: "release admits every newly unblocked op",
			steps: []step{
				{submit: "A", path: segs(PathSeg{SegH, 0}, PathSeg{SegH, 1}), chips: []int{0}},
				{submit: "B", path: segs(PathSeg{SegH, 0}), chips: []int{1}},
				{submit: "C", path: segs(PathSeg{SegH, 1}), chips: []int{2}},
				{complete: "A"},
			},
			wantOrder:    []string{"A", "B", "C"},
			wantDeferred: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newSchedHarness(SchedConflict, SchedConfig{})
			for _, s := range c.steps {
				if s.submit != "" {
					h.add(s.submit, s.path, s.chips...)
				}
				if s.complete != "" {
					h.complete(s.complete)
				}
			}
			if !reflect.DeepEqual(h.order, c.wantOrder) {
				t.Fatalf("issue order = %v, want %v", h.order, c.wantOrder)
			}
			d, _, _ := h.f.Counts()
			if d != c.wantDeferred {
				t.Fatalf("deferred = %d, want %d", d, c.wantDeferred)
			}
		})
	}
}

func TestConflictStarvationFreeze(t *testing.T) {
	h := newSchedHarness(SchedConflict, SchedConfig{ReorderBound: 2})
	h.add("A", segs(PathSeg{SegH, 0}), 0)
	h.add("B", segs(PathSeg{SegH, 0}), 1) // defers behind A: queue head
	h.add("C", segs(PathSeg{SegH, 1}), 2) // fresh bypass #1
	h.add("D", segs(PathSeg{SegH, 2}), 3) // fresh bypass #2 -> frozen
	h.add("E", segs(PathSeg{SegH, 3}), 0) // path free, but queue is frozen
	if got := []string{"A", "C", "D"}; !reflect.DeepEqual(h.order, got) {
		t.Fatalf("pre-release issue order = %v, want %v", h.order, got)
	}
	h.complete("A") // unblocks the head; E follows in queue order
	want := []string{"A", "C", "D", "B", "E"}
	if !reflect.DeepEqual(h.order, want) {
		t.Fatalf("issue order = %v, want %v", h.order, want)
	}
	if d, _, _ := h.f.Counts(); d != 2 {
		t.Fatalf("deferred = %d, want 2 (B and E)", d)
	}
	h.complete("B")
	h.complete("C")
	h.complete("D")
	h.complete("E")
	if !h.f.Quiesced() {
		t.Fatal("scheduler not quiesced after all completions")
	}
}

func TestOOOPickerPrefersIdleDies(t *testing.T) {
	h := newSchedHarness(SchedOOO, SchedConfig{Window: 2})
	h.add("A", nil, 0)
	h.add("B", nil, 0) // fills the window
	h.add("C", nil, 0) // pending, same die as the inflight pair
	h.add("D", nil, 1) // pending, idle die
	if got := []string{"A", "B"}; !reflect.DeepEqual(h.order, got) {
		t.Fatalf("window fill order = %v, want %v", h.order, got)
	}
	h.complete("A") // slot frees: D's die is idle, C's carries B -> pick D
	h.complete("B")
	want := []string{"A", "B", "D", "C"}
	if !reflect.DeepEqual(h.order, want) {
		t.Fatalf("issue order = %v, want %v", h.order, want)
	}
	_, reordered, forced := h.f.Counts()
	if reordered != 1 || forced != 0 {
		t.Fatalf("reordered = %d forced = %d, want 1, 0", reordered, forced)
	}
}

func TestOOOCopyScoresBothChips(t *testing.T) {
	h := newSchedHarness(SchedOOO, SchedConfig{Window: 1})
	h.add("A", nil, 0)
	h.complete("A")
	h2 := newSchedHarness(SchedOOO, SchedConfig{Window: 2})
	h2.add("A", nil, 0)
	h2.add("B", nil, 1)
	h2.add("C", nil, 0, 1) // copy touching both busy dies
	h2.add("D", nil, 2)    // idle die
	h2.complete("A")       // C scores 1 (B on die 1), D scores 0 -> D first
	want := []string{"A", "B", "D", "C"}
	h2.complete("B")
	if !reflect.DeepEqual(h2.order, want) {
		t.Fatalf("issue order = %v, want %v", h2.order, want)
	}
}

func TestOOOStarvationForcedPick(t *testing.T) {
	h := newSchedHarness(SchedOOO, SchedConfig{Window: 2, ReorderBound: 1})
	h.add("A", nil, 0)
	h.add("B", nil, 0)
	h.add("C", nil, 0) // will be bypassed once by D
	h.add("D", nil, 1)
	h.add("E", nil, 1)
	h.complete("A") // picks D over C: C.bypassed = 1 = bound
	h.complete("D") // C is starved -> forced pick even though E's die looks no worse
	want := []string{"A", "B", "D", "C"}
	if !reflect.DeepEqual(h.order, want) {
		t.Fatalf("issue order = %v, want %v", h.order, want)
	}
	if _, _, forced := h.f.Counts(); forced != 1 {
		t.Fatalf("forced = %d, want 1", forced)
	}
}

func TestOOOWindowOneIsFIFO(t *testing.T) {
	mk := func(pol SchedPolicy, cfg SchedConfig) []string {
		h := newSchedHarness(pol, cfg)
		// Arrivals deliberately favour reordering: later ops target idle
		// dies while earlier ones pile on die 0.
		h.add("A", nil, 0)
		h.add("B", nil, 0)
		h.add("C", nil, 1)
		h.add("D", nil, 2)
		for _, tag := range []string{"A", "B", "C", "D"} {
			h.complete(tag)
		}
		return h.order
	}
	fifo := mk(SchedFIFO, SchedConfig{})
	oooW1 := mk(SchedOOO, SchedConfig{Window: 1})
	if !reflect.DeepEqual(fifo, oooW1) {
		t.Fatalf("ooo window=1 order %v differs from fifo %v", oooW1, fifo)
	}
	if !reflect.DeepEqual(fifo, []string{"A", "B", "C", "D"}) {
		t.Fatalf("fifo order = %v, not arrival order", fifo)
	}
}

// TestSchedDeterminism replays an identical pseudo-random op sequence on
// two fresh schedulers per policy: same seed, same issue order.
func TestSchedDeterminism(t *testing.T) {
	run := func(pol SchedPolicy, seed uint64) []string {
		h := newSchedHarness(pol, SchedConfig{Window: 3, ReorderBound: 4})
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % n
		}
		all := []string{}
		submitted := 0
		// issuable lists submitted ops whose issue has fired, in arrival
		// order, so random completion stays deterministic.
		issuable := func() []string {
			out := []string{}
			for _, tag := range all {
				if _, ok := h.fins[tag]; ok {
					out = append(out, tag)
				}
			}
			return out
		}
		for i := 0; i < 64; i++ {
			if ready := issuable(); len(ready) > 0 && next(3) == 0 {
				h.complete(ready[next(len(ready))])
				continue
			}
			tag := fmt.Sprintf("op%d", i)
			chip := next(4)
			h.add(tag, segs(PathSeg{SegChip, chip}), chip)
			all = append(all, tag)
			submitted++
		}
		// Drain everything: completing issued ops releases deferred and
		// pending ones, which then issue and complete on a later pass.
		for !h.f.Quiesced() {
			ready := issuable()
			if len(ready) == 0 {
				t.Fatalf("%v: stuck with work outstanding", pol)
			}
			for _, tag := range ready {
				h.complete(tag)
			}
		}
		if len(h.order) != submitted {
			t.Fatalf("%v: issued %d of %d ops", pol, len(h.order), submitted)
		}
		return h.order
	}
	for _, pol := range []SchedPolicy{SchedFIFO, SchedConflict, SchedOOO} {
		a, b := run(pol, 42), run(pol, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed produced different issue orders\n%v\n%v", pol, a, b)
		}
	}
}

// recordingSchedChecker captures checker notifications for the hook test.
type recordingSchedChecker struct {
	reserved, released, issued, completed int
	maxInflight                           int
}

func (r *recordingSchedChecker) SchedReserved(op uint64, segs []PathSeg)  { r.reserved++ }
func (r *recordingSchedChecker) SchedReleased(op uint64, segs []PathSeg) { r.released++ }
func (r *recordingSchedChecker) SchedIssued(op uint64, rank, window, bypassed, bound int) {
	r.issued++
}
func (r *recordingSchedChecker) SchedCompleted(op uint64, inflight int) {
	r.completed++
	if inflight > r.maxInflight {
		r.maxInflight = inflight
	}
}

// TestSchedFabricEndToEnd pushes real transactions through every policy
// on a live Omnibus fabric: all four op kinds complete, the wrapper
// quiesces, and the checker hooks balance.
func TestSchedFabricEndToEnd(t *testing.T) {
	for _, pol := range []SchedPolicy{SchedFIFO, SchedConflict, SchedOOO} {
		t.Run(pol.String(), func(t *testing.T) {
			e, g, soc := testRig(2, 2)
			inner := newOmnibus(e, g, soc, true)
			f := NewSchedFabricCfg(inner, pol, SchedConfig{Window: 2, ReorderBound: 3})
			rec := &recordingSchedChecker{}
			f.SetChecker(rec)
			if f.Name() != inner.Name() || f.Grid() != inner.Grid() || f.Lookahead() != inner.Lookahead() {
				t.Fatal("wrapper must delegate Name/Grid/Lookahead")
			}
			done := 0
			a := flash.PPA{Plane: 0, Block: 1, Page: 0}
			for ch := 0; ch < 2; ch++ {
				for w := 0; w < 2; w++ {
					f.Write(ChipID{ch, w}, []flash.ProgramOp{{Addr: a, Token: flash.Token(ch*2 + w)}}, func() { done++ })
				}
			}
			e.Run()
			for ch := 0; ch < 2; ch++ {
				for w := 0; w < 2; w++ {
					f.Read(ChipID{ch, w}, []flash.PPA{a}, func() { done++ })
				}
			}
			e.Run()
			f.Copy(ChipID{0, 0}, a, ChipID{1, 0}, flash.PPA{Plane: 1, Block: 1, Page: 0}, func() { done++ })
			f.Erase(ChipID{0, 1}, []flash.PPA{{Plane: 0, Block: 2}}, func() { done++ })
			e.Run()
			if done != 10 {
				t.Fatalf("%d of 10 transactions completed", done)
			}
			if !f.Quiesced() {
				t.Fatal("scheduler holds state after drain")
			}
			if rec.issued != 10 || rec.completed != 10 {
				t.Fatalf("checker saw %d issues, %d completions, want 10, 10", rec.issued, rec.completed)
			}
			if pol == SchedConflict && (rec.reserved != 5 || rec.released != 5) {
				// 4 reads + 1 copy reserve paths; writes and erases pass through.
				t.Fatalf("checker saw %d reservations, %d releases, want 5, 5", rec.reserved, rec.released)
			}
			if pol != SchedConflict && rec.reserved != 0 {
				t.Fatalf("%v reserved %d paths, want 0", pol, rec.reserved)
			}
			if g.Chip(ChipID{1, 0}).ContentAt(flash.PPA{Plane: 1, Block: 1, Page: 0}) != 0 {
				t.Fatal("copy did not move content")
			}
		})
	}
}

// TestSchedFIFOMatchesUnwrapped pins the transparency contract: the FIFO
// wrapper issues immediately in arrival order, so a wrapped run fires the
// exact event count of an unwrapped one.
func TestSchedFIFOMatchesUnwrapped(t *testing.T) {
	run := func(wrap bool) (sim.Time, int64) {
		e, g, soc := testRig(2, 2)
		var f Fabric = newOmnibus(e, g, soc, true)
		if wrap {
			f = NewSchedFabric(f, SchedFIFO)
		}
		a := flash.PPA{Plane: 0, Block: 0, Page: 0}
		for ch := 0; ch < 2; ch++ {
			for w := 0; w < 2; w++ {
				f.Write(ChipID{ch, w}, []flash.ProgramOp{{Addr: a, Token: 7}}, nil)
			}
		}
		e.Run()
		for ch := 0; ch < 2; ch++ {
			for w := 0; w < 2; w++ {
				f.Read(ChipID{ch, w}, []flash.PPA{a}, nil)
			}
		}
		return e.Run(), e.EventsFired()
	}
	t0, n0 := run(false)
	t1, n1 := run(true)
	if t0 != t1 || n0 != n1 {
		t.Fatalf("fifo wrapper perturbed the run: time %v vs %v, events %d vs %d", t0, t1, n0, n1)
	}
}

func TestSchedConfigDefaults(t *testing.T) {
	e, g, soc := testRig(2, 2)
	f := NewSchedFabric(newOmnibus(e, g, soc, false), SchedOOO)
	if f.Window() != DefaultSchedWindow || f.ReorderBound() != DefaultReorderBound {
		t.Fatalf("defaults = (%d, %d), want (%d, %d)", f.Window(), f.ReorderBound(), DefaultSchedWindow, DefaultReorderBound)
	}
	c := NewSchedFabric(f.Inner(), SchedConflict)
	if c.Window() != 0 {
		t.Fatalf("conflict policy reports window %d, want 0 (unwindowed)", c.Window())
	}
	if c.Policy() != SchedConflict || f.Policy() != SchedOOO {
		t.Fatal("Policy() mismatch")
	}
}
