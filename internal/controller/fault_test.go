package controller

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
)

// Lost grants must be retried a bounded number of times and then fail
// over to the controller-relayed copy path — never awaited forever.
func TestGrantDropFailsOverToRelay(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	inj := fault.New(fault.Config{Seed: 1, GrantDropRate: 1.0})
	f.SetFaultInjector(inj)

	src, dst := ChipID{0, 1}, ChipID{3, 1} // same column: direct-eligible
	from := flash.PPA{Plane: 0, Block: 0, Page: 0}
	to := flash.PPA{Plane: 1, Block: 2, Page: 0}
	g.Chip(src).InstallPage(from, 0xC0)

	done := false
	f.Copy(src, from, dst, to, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("copy never completed under 100% grant loss")
	}
	if g.Chip(dst).ContentAt(to) != 0xC0 {
		t.Fatal("failover relay lost the page content")
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 0 || relayed != 1 {
		t.Fatalf("direct=%d relayed=%d, want 0/1", direct, relayed)
	}
	ras := inj.RAS()
	cfg := inj.Config()
	if ras.GrantDrops != int64(cfg.GrantRetryMax)+1 {
		t.Fatalf("GrantDrops = %d, want %d", ras.GrantDrops, cfg.GrantRetryMax+1)
	}
	if ras.GrantRetries != int64(cfg.GrantRetryMax) {
		t.Fatalf("GrantRetries = %d, want %d", ras.GrantRetries, cfg.GrantRetryMax)
	}
	if ras.CopyFailovers != 1 {
		t.Fatalf("CopyFailovers = %d, want 1", ras.CopyFailovers)
	}
}

// A small backoff-time budget must fail the copy over even when the
// retry count alone would have kept the ladder going, and the failover
// must be tallied as budget-triggered.
func TestGrantBackoffBudgetForcesFailover(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	// Retry count effectively unbounded; the budget admits the first
	// 5us backoff (waited 5us <= 12us) but not the second 10us one
	// (5+10 > 12), so the exchange fails over after exactly one retry.
	inj := fault.New(fault.Config{
		Seed:               1,
		GrantDropRate:      1.0,
		GrantRetryMax:      100,
		GrantBackoffBudget: 12 * sim.Microsecond,
	})
	f.SetFaultInjector(inj)

	src, dst := ChipID{0, 1}, ChipID{3, 1}
	from := flash.PPA{Plane: 0, Block: 0, Page: 0}
	to := flash.PPA{Plane: 1, Block: 2, Page: 0}
	g.Chip(src).InstallPage(from, 0xB7)

	done := false
	f.Copy(src, from, dst, to, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("copy never completed after budget exhaustion")
	}
	if g.Chip(dst).ContentAt(to) != 0xB7 {
		t.Fatal("budget failover relay lost the page content")
	}
	ras := inj.RAS()
	if ras.GrantDrops != 2 || ras.GrantRetries != 1 {
		t.Fatalf("GrantDrops=%d GrantRetries=%d, want 2/1", ras.GrantDrops, ras.GrantRetries)
	}
	if ras.CopyFailovers != 1 {
		t.Fatalf("CopyFailovers = %d, want 1", ras.CopyFailovers)
	}
	if ras.GrantBudgetExhausted != 1 {
		t.Fatalf("GrantBudgetExhausted = %d, want 1", ras.GrantBudgetExhausted)
	}
}

// The default budget is sized above the default ladder's cumulative
// backoff, so count-bounded failovers never tally as budget-triggered.
func TestGrantDefaultBudgetCoversDefaultLadder(t *testing.T) {
	cfg := fault.New(fault.Config{Seed: 1, GrantDropRate: 1.0}).Config()
	var sum sim.Time
	for i := 0; i < cfg.GrantRetryMax; i++ {
		sum += cfg.GrantTimeout << uint(i)
	}
	if cfg.GrantBackoffBudget < sum {
		t.Fatalf("default budget %v below default ladder sum %v", cfg.GrantBackoffBudget, sum)
	}
}

// Occasional grant drops resolve by timeout and retry without giving up
// the direct path.
func TestGrantRetryRecoversDirectPath(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	// Seed-scan for a sequence that drops the first grant and passes a
	// retry would be brittle; instead drop rate 0 proves the direct path
	// and the 1.0 test above proves the bounded ladder. Here, a mid rate
	// must still always terminate.
	inj := fault.New(fault.Config{Seed: 9, GrantDropRate: 0.5})
	f.SetFaultInjector(inj)

	src, dst := ChipID{0, 1}, ChipID{3, 1}
	completed := 0
	const n = 16
	for i := 0; i < n; i++ {
		from := flash.PPA{Plane: 0, Block: 0, Page: i}
		to := flash.PPA{Plane: 1, Block: 2, Page: i}
		g.Chip(src).InstallPage(from, flash.Token(i+1))
		f.Copy(src, from, dst, to, func() { completed++ })
		e.Run()
		if g.Chip(dst).ContentAt(to) != flash.Token(i+1) {
			t.Fatalf("copy %d corrupted content", i)
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d copies", completed, n)
	}
	ras := inj.RAS()
	if ras.GrantDrops == 0 {
		t.Fatal("50% drop rate never dropped a grant")
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct+relayed != n {
		t.Fatalf("direct %d + relayed %d != %d", direct, relayed, n)
	}
	if direct == 0 {
		t.Fatal("no copy survived to the direct path at 50% drop rate")
	}
}

// A dead v-channel forces degraded-mode routing: copies relay through the
// controller and read returns collapse onto the h-channel.
func TestDeadVChannelDegradedRouting(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, true) // split on: dead v must also disable splitting
	inj := fault.New(fault.Config{Seed: 1, DeadVChannels: []int{1}})
	f.SetFaultInjector(inj)

	src, dst := ChipID{0, 1}, ChipID{3, 1} // column served by dead v1
	from := flash.PPA{Plane: 0, Block: 0, Page: 0}
	to := flash.PPA{Plane: 1, Block: 2, Page: 0}
	g.Chip(src).InstallPage(from, 0xD1)

	copied := false
	f.Copy(src, from, dst, to, func() { copied = true })
	e.Run()
	if !copied || g.Chip(dst).ContentAt(to) != 0xD1 {
		t.Fatal("copy across dead v-channel failed")
	}
	ras := inj.RAS()
	if ras.DeadVCopies != 1 {
		t.Fatalf("DeadVCopies = %d, want 1", ras.DeadVCopies)
	}
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 0 || relayed == 0 {
		t.Fatalf("direct=%d relayed=%d: dead v-channel took the direct path", direct, relayed)
	}

	read := false
	g.Chip(ChipID{2, 1}).InstallPage(to, 0xD2)
	f.Read(ChipID{2, 1}, []flash.PPA{to}, func() { read = true })
	e.Run()
	if !read {
		t.Fatal("read in dead column never completed")
	}
	if ras.DegradedReturns == 0 {
		t.Fatal("read return did not record degraded routing")
	}
	h, v, split, _, _ := f.PathCounts()
	if v != 0 || split != 0 || h == 0 {
		t.Fatalf("h=%d v=%d split=%d: dead v-channel carried data", h, v, split)
	}

	// The healthy column is unaffected: split transfers still fire there.
	g.Chip(ChipID{0, 0}).InstallPage(from, 0xD3)
	f.Read(ChipID{0, 0}, []flash.PPA{from}, nil)
	e.Run()
	_, _, split, _, _ = f.PathCounts()
	if split != 1 {
		t.Fatalf("split=%d: healthy column lost split transfers", split)
	}
}

// Reviving the channel restores the direct path.
func TestReviveRestoresDirectCopies(t *testing.T) {
	e, g, soc := testRig(4, 2)
	f := newOmnibus(e, g, soc, false)
	inj := fault.New(fault.Config{Seed: 1})
	f.SetFaultInjector(inj)
	inj.KillVChannel(1)
	inj.ReviveVChannel(1)

	src, dst := ChipID{0, 1}, ChipID{3, 1}
	from := flash.PPA{Plane: 0, Block: 0, Page: 0}
	g.Chip(src).InstallPage(from, 7)
	f.Copy(src, from, dst, flash.PPA{Plane: 0, Block: 1, Page: 0}, nil)
	e.Run()
	_, _, _, direct, relayed := f.PathCounts()
	if direct != 1 || relayed != 0 {
		t.Fatalf("direct=%d relayed=%d after revive, want 1/0", direct, relayed)
	}
}
