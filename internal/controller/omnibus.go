package controller

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// OmnibusFabric is the pnSSD interconnect (Fig 9(c)): the packetized
// bandwidth is partitioned into an 8-bit h-channel per row and an 8-bit
// v-channel per column, with channel controller k driving both h-channel
// k and v-channel k. Data-plane movement between chips happens on the
// v-channels; the control plane runs between controllers over the SoC
// interconnect with the source/destination/intermediate roles of Fig 11.
//
// I/O reads return over whichever of the chip's two buses is less loaded
// (the paper's greedy adaptive choice), or over both at once when split
// transfers are enabled. GC page copies between chips in the same column
// use only that column's v-channel — the property Spatial GC exploits.
type OmnibusFabric struct {
	eng      *sim.Engine
	name     string
	grid     *Grid
	soc      *Soc
	pageSize int
	split    bool

	h      []*bus.Channel
	v      []*bus.Channel
	hIface []bus.Packetized
	vIface []bus.Packetized

	// colsPerV is how many adjacent way-columns share one v-channel. It is
	// 1 in the square organization; in a wide organization (more ways than
	// channels) each controller's single v-channel must interconnect
	// Ways/Channels columns (Sec V-E). In a tall organization (more
	// channels than ways) there is one v-channel per way and the surplus
	// controllers drive only their h-channel.
	colsPerV int

	// route selects the I/O path policy; GC copies always use v-channels.
	route RoutePolicy

	// faults supplies deterministic interconnect fault draws: on-die ECC
	// fallbacks for direct copies (Sec VIII hybrid ECC), lost
	// request/grant exchanges, and whole-v-channel kill-switches that
	// force degraded-mode routing. Nil means no injection.
	faults       *fault.Injector
	eccFallbacks int64

	vpageRetry sim.Time

	// trc records logical spans (grant arbitration, copies) and routing
	// instants; nil (the default) disables tracing with no overhead.
	trc *trace.Recorder

	// tel feeds the grant-wait time series; nil (the default) disables
	// telemetry with no overhead.
	tel *telemetry.Collector

	// check receives routing decisions for GC copies; nil (the default)
	// disables checking with no overhead.
	check CopyChecker

	// counters for reports and tests
	hReturns, vReturns, splitReturns int64
	directCopies, relayedCopies      int64
}

// NewOmnibusFabric builds the Omnibus fabric. Table II: 8 h-channels and
// 8 v-channels, all 8 bits at the base rate. split enables the
// half-page-per-path transfer technique of Sec V-C.
func NewOmnibusFabric(eng *sim.Engine, name string, grid *Grid, soc *Soc, pageSize, widthBits, rateMTps int, split bool) *OmnibusFabric {
	return NewOmnibusFabricAsym(eng, name, grid, soc, pageSize, widthBits, widthBits, rateMTps, split)
}

// NewOmnibusFabricAsym builds an Omnibus fabric with different h- and
// v-channel widths, for the bandwidth-partitioning ablation (how much of
// the packetized 16-bit budget to give the vertical dimension).
func NewOmnibusFabricAsym(eng *sim.Engine, name string, grid *Grid, soc *Soc, pageSize, hWidthBits, vWidthBits, rateMTps int, split bool) *OmnibusFabric {
	// One v-channel per controller, but never more than one per column:
	// numV = min(channels, ways); wide grids share each v-channel across
	// ways/channels adjacent columns.
	numV := grid.Channels
	if grid.Ways < numV {
		numV = grid.Ways
	}
	colsPerV := (grid.Ways + numV - 1) / numV
	f := &OmnibusFabric{
		eng:        eng,
		name:       name,
		grid:       grid,
		soc:        soc,
		pageSize:   pageSize,
		split:      split,
		h:          make([]*bus.Channel, grid.Channels),
		v:          make([]*bus.Channel, numV),
		hIface:     make([]bus.Packetized, grid.Channels),
		vIface:     make([]bus.Packetized, numV),
		colsPerV:   colsPerV,
		route:      RouteGreedy,
		vpageRetry: 5 * sim.Microsecond,
	}
	for ch := 0; ch < grid.Channels; ch++ {
		f.h[ch] = bus.NewChannel(eng, fmt.Sprintf("%s/h%d", name, ch), hWidthBits, rateMTps)
		f.hIface[ch] = bus.NewPacketized(f.h[ch])
	}
	for i := 0; i < numV; i++ {
		f.v[i] = bus.NewChannel(eng, fmt.Sprintf("%s/v%d", name, i), vWidthBits, rateMTps)
		f.vIface[i] = bus.NewPacketized(f.v[i])
	}
	return f
}

// vIndex maps a way-column to the v-channel that serves it.
func (f *OmnibusFabric) vIndex(way int) int { return way / f.colsPerV }

// NumVChannels returns the number of v-channels in the organization.
func (f *OmnibusFabric) NumVChannels() int { return len(f.v) }

// ColumnsPerVChannel returns how many way-columns share one v-channel.
func (f *OmnibusFabric) ColumnsPerVChannel() int { return f.colsPerV }

// Name implements Fabric.
func (f *OmnibusFabric) Name() string { return f.name }

// Lookahead implements Fabric. Omnibus channel groups coordinate both
// through the ECC pipeline in front of the SoC and through control-plane
// request/grant messages, so the window bound is the smaller of the two.
// The control-plane sensitivity ablation can drive CtrlMsgLatency to
// zero; the SSD layer detects the resulting zero bound and falls back to
// a serial run rather than fake a lookahead the model no longer has.
func (f *OmnibusFabric) Lookahead() sim.Time {
	if d := f.soc.CtrlMsgLatency(); d < EccLatency {
		return d
	}
	return EccLatency
}

// Grid implements Fabric.
func (f *OmnibusFabric) Grid() *Grid { return f.grid }

// HChannel returns the h-channel for a row, for instrumentation.
func (f *OmnibusFabric) HChannel(ch int) *bus.Channel { return f.h[ch] }

// VChannel returns the v-channel serving a way-column, for
// instrumentation.
func (f *OmnibusFabric) VChannel(w int) *bus.Channel { return f.v[f.vIndex(w)] }

// RoutePolicy selects how host transfers choose between a chip's
// h-channel and v-channel.
type RoutePolicy int

// Routing policies.
const (
	// RouteHOnly disables path diversity: every host transfer uses the
	// h-channel (ablation baseline).
	RouteHOnly RoutePolicy = iota
	// RouteGreedy is the paper's policy: the first available channel wins
	// (h preferred; v only when h is busy and v idle).
	RouteGreedy
	// RouteJSQ is the "intelligent adaptive algorithm" the paper leaves
	// as future work: join the shorter queue, counting occupancy.
	RouteJSQ
)

// String names the policy.
func (p RoutePolicy) String() string {
	switch p {
	case RouteHOnly:
		return "h-only"
	case RouteGreedy:
		return "greedy"
	case RouteJSQ:
		return "jsq"
	default:
		return fmt.Sprintf("route(%d)", int(p))
	}
}

// SetRoutePolicy selects the I/O routing policy.
func (f *OmnibusFabric) SetRoutePolicy(p RoutePolicy) { f.route = p }

// SetAdaptive toggles path diversity for host I/O: false forces h-only,
// true restores the default greedy policy.
func (f *OmnibusFabric) SetAdaptive(on bool) {
	if on {
		f.route = RouteGreedy
	} else {
		f.route = RouteHOnly
	}
}

// SetTracer attaches a trace recorder for control-plane spans and
// routing-decision instants; nil (the default) detaches.
func (f *OmnibusFabric) SetTracer(t *trace.Recorder) { f.trc = t }

// SetTelemetry attaches a telemetry collector recording grant-wait
// intervals and grant-drop events; nil (the default) detaches.
func (f *OmnibusFabric) SetTelemetry(c *telemetry.Collector) { f.tel = c }

// CopyChecker receives one notification per GC copy when its route is
// decided: direct reports whether the copy takes the flash-to-flash
// v-channel path (true) or the controller-relayed h-channel path (false).
// The invariant checker uses it to assert that direct copies stay within
// one v-channel column.
type CopyChecker interface {
	CopyRouted(src, dst ChipID, direct bool)
}

// SetChecker attaches a copy-route checker; nil (the default) detaches.
func (f *OmnibusFabric) SetChecker(c CopyChecker) { f.check = c }

// SetFaultInjector attaches the shared fault injector. Nil detaches it.
func (f *OmnibusFabric) SetFaultInjector(inj *fault.Injector) { f.faults = inj }

// FaultInjector returns the attached injector (possibly nil).
func (f *OmnibusFabric) FaultInjector() *fault.Injector { return f.faults }

// ensureFaults returns the fabric's injector, creating a default one (no
// faults enabled) on first use so rate setters work standalone.
func (f *OmnibusFabric) ensureFaults() *fault.Injector {
	if f.faults == nil {
		f.faults = fault.New(fault.Config{Seed: 1})
	}
	return f.faults
}

// SetOnDieEccFailRate sets the probability that a direct flash-to-flash
// copy fails its on-die error check and falls back to the
// controller-relayed strong-ECC path. It is a convenience wrapper over
// the fault injector's OnDieECC class.
func (f *OmnibusFabric) SetOnDieEccFailRate(rate float64) {
	if rate < 0 || rate > 1 {
		panic("controller: ECC fail rate outside [0,1]")
	}
	f.ensureFaults().SetRate(fault.OnDieECC, rate)
}

// EccFallbacks returns how many direct copies re-routed through the
// controller because the on-die check flagged them.
func (f *OmnibusFabric) EccFallbacks() int64 { return f.eccFallbacks }

// eccFails draws the next deterministic on-die ECC outcome.
func (f *OmnibusFabric) eccFails() bool {
	return f.faults.Draw(fault.OnDieECC)
}

// vDead reports whether the v-channel serving a way-column is
// kill-switched; degraded-mode routing must avoid it.
func (f *OmnibusFabric) vDead(way int) bool {
	return f.faults.VChannelDead(f.vIndex(way))
}

// routeToV reports whether a host transfer should take the v-channel.
func (f *OmnibusFabric) routeToV(hch, vch *bus.Channel) bool {
	switch f.route {
	case RouteHOnly:
		return false
	case RouteGreedy:
		return hch.Load() > 0 && vch.Load() == 0
	case RouteJSQ:
		return vch.Load() < hch.Load()
	default:
		return false
	}
}

// PathCounts returns how many read returns used the h path, the v path,
// and split transfers, plus direct vs controller-relayed GC copies.
func (f *OmnibusFabric) PathCounts() (h, v, split, direct, relayed int64) {
	return f.hReturns, f.vReturns, f.splitReturns, f.directCopies, f.relayedCopies
}

// Read implements Fabric. The command always issues on the h-channel (the
// row controller owns the chip); the data return path is adaptive or
// split.
func (f *OmnibusFabric) Read(id ChipID, ppas []flash.PPA, done func()) {
	hch := f.h[id.Channel]
	hifc := f.hIface[id.Channel]
	chip := f.grid.Chip(id)
	n := totalBytes(f.pageSize, len(ppas))
	hch.UseOp("read-cmd", hifc.ReadCmd(), func() {
		chip.Read(ppas, func() {
			f.returnData(id, n, done)
		})
	})
}

// returnData moves n bytes from the chip's page registers into DRAM over
// the chosen path(s).
func (f *OmnibusFabric) returnData(id ChipID, n int, done func()) {
	hch, vch := f.h[id.Channel], f.v[f.vIndex(id.Way)]
	hifc, vifc := f.hIface[id.Channel], f.vIface[f.vIndex(id.Way)]
	finish := func() {
		f.eng.Schedule(EccLatency, func() { f.soc.Transfer(n, done) })
	}
	if f.vDead(id.Way) {
		// Degraded mode: the column's v-channel is dead, so path diversity
		// collapses and the whole payload returns over the row's h-channel
		// — the failover the paper's path redundancy makes possible.
		if r := f.faults.RAS(); r != nil {
			r.DegradedReturns++
		}
		f.hReturns++
		if f.trc.Enabled() {
			f.trc.Instant("route", "degraded-h", trace.KV{K: "chip", V: id.String()})
		}
		hch.UseOp("read-xfer", hifc.ReadXfer(n), finish)
		return
	}
	if f.split && n > 1 && hch.Load() == 0 && vch.Load() == 0 {
		// Half the payload on each bus; the v half first traverses the
		// control plane so controller[way] drives its v-channel (one
		// request/grant exchange). Splitting pays only when both buses
		// can start immediately — if either is queued, pinning half the
		// page behind that queue is worse than routing the whole page
		// adaptively, so loaded cases fall through to the greedy path.
		f.splitReturns++
		if f.trc.Enabled() {
			f.trc.Instant("route", "split-return", trace.KV{K: "chip", V: id.String()})
		}
		half1, half2 := n/2, n-n/2
		remaining := 2
		join := func() {
			remaining--
			if remaining == 0 {
				finish()
			}
		}
		hch.UseOp("read-xfer-half", hifc.ReadXfer(half1), join)
		f.soc.CtrlMsg(func() {
			f.soc.CtrlMsg(func() {
				vch.UseOp("read-xfer-half", vifc.ReadXfer(half2), join)
			})
		})
		return
	}
	// Greedy adaptive, as in the paper: the first *available* channel is
	// used — h when it is free, the v-channel when h is busy but v is
	// free, and the default h queue when both are busy. The paper notes
	// this can make non-optimal decisions; split transfers recover the
	// unused capacity.
	if f.routeToV(hch, vch) {
		f.vReturns++
		if f.trc.Enabled() {
			f.trc.Instant("route", "v-return", trace.KV{K: "chip", V: id.String()})
		}
		f.soc.CtrlMsg(func() {
			f.soc.CtrlMsg(func() {
				vch.UseOp("read-xfer", vifc.ReadXfer(n), finish)
			})
		})
		return
	}
	f.hReturns++
	hch.UseOp("read-xfer", hifc.ReadXfer(n), finish)
}

// Write implements Fabric. Payload delivery mirrors the read return path:
// split across h and v when enabled, otherwise greedy adaptive.
func (f *OmnibusFabric) Write(id ChipID, ops []flash.ProgramOp, done func()) {
	hch, vch := f.h[id.Channel], f.v[f.vIndex(id.Way)]
	hifc, vifc := f.hIface[id.Channel], f.vIface[f.vIndex(id.Way)]
	chip := f.grid.Chip(id)
	n := totalBytes(f.pageSize, len(ops))
	writes := append([]flash.ProgramOp(nil), ops...)
	f.soc.Transfer(n, func() {
		f.eng.Schedule(EccLatency, func() {
			program := func() { chip.Program(writes, done) }
			if f.vDead(id.Way) {
				// Degraded mode: deliver the whole payload on the h-channel.
				if r := f.faults.RAS(); r != nil {
					r.DegradedReturns++
				}
				hch.UseOp("program-xfer", hifc.ProgramXfer(n), program)
				return
			}
			// Split applies to read returns only. Splitting program
			// payloads couples every write to its column's v-channel, and
			// with way-striped allocation policies consecutive writes
			// share one column — the v-channel becomes a serial hotspot
			// that costs far more than the halved serialization saves.
			// Write payloads route adaptively instead; when both buses are
			// idle the split variant still sends halves down both.
			if f.split && n > 1 && hch.Load() == 0 && vch.Load() == 0 {
				half1, half2 := n/2, n-n/2
				remaining := 2
				join := func() {
					remaining--
					if remaining == 0 {
						program()
					}
				}
				hch.UseOp("program-xfer-half", hifc.ProgramXfer(half1), join)
				f.soc.CtrlMsg(func() {
					f.soc.CtrlMsg(func() {
						vch.UseOp("program-xfer-half", vifc.ProgramXfer(half2), join)
					})
				})
				return
			}
			if f.routeToV(hch, vch) {
				f.soc.CtrlMsg(func() {
					f.soc.CtrlMsg(func() {
						vch.UseOp("program-xfer", vifc.ProgramXfer(n), program)
					})
				})
				return
			}
			hch.UseOp("program-xfer", hifc.ProgramXfer(n), program)
		})
	})
}

// Erase implements Fabric: a single control packet on the h-channel.
func (f *OmnibusFabric) Erase(id ChipID, blocks []flash.PPA, done func()) {
	ch := f.h[id.Channel]
	ifc := f.hIface[id.Channel]
	chip := f.grid.Chip(id)
	ch.UseOp("erase-cmd", ifc.EraseCmd(), func() {
		chip.Erase(blocks, done)
	})
}

// Copy implements Fabric. Same-column copies move directly over the
// column's v-channel: read command and transfer command both issue on the
// v-channel (driven by its owner controller, which may be the source,
// destination, or an intermediate controller per Fig 11), the payload
// crosses the v-channel exactly once into the destination's V-page
// register, and an on-die commit programs it — no h-channel, controller
// ECC, or DRAM involvement. Cross-column copies fall back to the
// controller-relayed route over the h-channels.
func (f *OmnibusFabric) Copy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func()) {
	if f.vIndex(src.Way) != f.vIndex(dst.Way) {
		f.relayedCopies++
		if f.check != nil {
			f.check.CopyRouted(src, dst, false)
		}
		f.relayCopy(src, from, dst, to, done)
		return
	}
	if f.vDead(src.Way) {
		// Degraded mode: the column's v-channel is dead, so the SpGC
		// direct path is unavailable and the copy falls back to the
		// controller-relayed route over the rows' h-channels.
		if r := f.faults.RAS(); r != nil {
			r.DeadVCopies++
		}
		f.relayedCopies++
		if f.check != nil {
			f.check.CopyRouted(src, dst, false)
		}
		f.relayCopy(src, from, dst, to, done)
		return
	}
	if f.eccFails() {
		// Hybrid ECC (Sec VIII): the weak on-die detector flagged this
		// page; only the controller's LDPC can correct it, so the copy
		// takes the relayed route through the strong-ECC engine.
		f.eccFallbacks++
		if r := f.faults.RAS(); r != nil {
			r.OnDieECCFallbacks++
		}
		f.relayedCopies++
		if f.check != nil {
			f.check.CopyRouted(src, dst, false)
		}
		f.relayCopy(src, from, dst, to, done)
		return
	}
	vch := f.v[f.vIndex(src.Way)]
	vifc := f.vIface[f.vIndex(src.Way)]
	srcChip, dstChip := f.grid.Chip(src), f.grid.Chip(dst)

	// Control plane (Fig 11): the source's controller requests the
	// v-channel owner, the owner checks the destination's buffer status,
	// and the grant comes back — three one-way messages. The V-page
	// register is reserved at grant time; if none is free, the request
	// retries after a backoff. An injected GrantDrop loses the exchange:
	// the source controller times out after GrantTimeout<<attempt and
	// re-requests, and when the retry budget is exhausted it fails over
	// to the controller-relayed path — a grant is never awaited forever.
	attempts := 0
	arbStart := f.eng.Now()
	var waited sim.Time
	var grantSpan trace.SpanID
	if f.trc.Enabled() {
		grantSpan = f.trc.BeginSpan("gc", "grant-wait",
			trace.KV{K: "src", V: src.String()}, trace.KV{K: "dst", V: dst.String()})
	}
	var arbitrate func()
	arbitrate = func() {
		f.soc.CtrlMsg(func() { // request: source ctrl -> v-channel owner
			if f.faults.Draw(fault.GrantDrop) {
				ras := f.faults.RAS()
				ras.GrantDrops++
				f.tel.Event("grant-drop", f.eng.Now())
				cfg := f.faults.Config()
				attempts++
				backoff := cfg.GrantTimeout << uint(attempts-1)
				// The ladder is doubly bounded: by retry count and by the
				// cumulative backoff-time budget. Either bound exhausting
				// fails the copy over to the relay path; a budget-triggered
				// failover (the count alone would have kept retrying) is
				// tallied separately so the report distinguishes "gave up
				// after N tries" from "ran out of time".
				if attempts > cfg.GrantRetryMax || waited+backoff > cfg.GrantBackoffBudget {
					if attempts <= cfg.GrantRetryMax {
						ras.GrantBudgetExhausted++
					}
					ras.CopyFailovers++
					f.relayedCopies++
					if f.check != nil {
						f.check.CopyRouted(src, dst, false)
					}
					f.trc.EndSpan(grantSpan)
					f.tel.GrantWait(arbStart, f.eng.Now())
					f.relayCopy(src, from, dst, to, done)
					return
				}
				ras.GrantRetries++
				waited += backoff
				f.eng.Schedule(backoff, arbitrate)
				return
			}
			f.soc.CtrlMsg(func() { // buffer-status check at destination ctrl
				reg := dstChip.AcquireVPage()
				if reg < 0 {
					f.eng.Schedule(f.vpageRetry, arbitrate)
					return
				}
				f.soc.CtrlMsg(func() { // grant back to source ctrl
					f.directCopies++
					if f.check != nil {
						f.check.CopyRouted(src, dst, true)
					}
					f.trc.EndSpan(grantSpan)
					f.tel.GrantWait(arbStart, f.eng.Now())
					fin := done
					if f.trc.Enabled() {
						sp := f.trc.BeginSpan("gc", "direct-copy",
							trace.KV{K: "src", V: src.String()}, trace.KV{K: "dst", V: dst.String()})
						fin = func() {
							f.trc.EndSpan(sp)
							if done != nil {
								done()
							}
						}
					}
					f.directTransfer(vch, vifc, srcChip, from, dstChip, reg, to, fin)
				})
			})
		})
	}
	arbitrate()
}

// directTransfer runs the data-plane half of a same-column copy: tR on the
// source, one v-channel crossing, on-die ECC, tPROG from the V-page
// register on the destination.
func (f *OmnibusFabric) directTransfer(vch *bus.Channel, vifc bus.Packetized, srcChip *flash.Chip, from flash.PPA, dstChip *flash.Chip, reg int, to flash.PPA, done func()) {
	vch.UseOp("gc-read-cmd", vifc.ReadCmd(), func() {
		srcChip.Read([]flash.PPA{from}, func() {
			token := srcChip.PageRegister(from.Plane)
			vch.UseOp("gc-vxfer", vifc.VXfer(f.pageSize), func() {
				dstChip.SetVPage(reg, token)
				f.eng.Schedule(OnDieEccLatency, func() {
					dstChip.ProgramFromVPage(reg, to, done)
				})
			})
		})
	})
}

// relayCopy is the cross-column fallback: read through the source row's
// h-channel into DRAM, then write out through the destination row's
// h-channel — the Fig 10(a) route.
func (f *OmnibusFabric) relayCopy(src ChipID, from flash.PPA, dst ChipID, to flash.PPA, done func()) {
	if f.trc.Enabled() {
		sp := f.trc.BeginSpan("gc", "relay-copy",
			trace.KV{K: "src", V: src.String()}, trace.KV{K: "dst", V: dst.String()})
		inner := done
		done = func() {
			f.trc.EndSpan(sp)
			if inner != nil {
				inner()
			}
		}
	}
	hch := f.h[src.Channel]
	hifc := f.hIface[src.Channel]
	srcChip := f.grid.Chip(src)
	n := f.pageSize
	hch.UseOp("gc-read-cmd", hifc.ReadCmd(), func() {
		srcChip.Read([]flash.PPA{from}, func() {
			token := srcChip.PageRegister(from.Plane)
			hch.UseOp("gc-read-xfer", hifc.ReadXfer(n), func() {
				f.eng.Schedule(EccLatency, func() {
					f.soc.Transfer(n, func() {
						f.Write(dst, []flash.ProgramOp{{Addr: to, Token: token}}, done)
					})
				})
			})
		})
	})
}
