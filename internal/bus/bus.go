// Package bus models flash channel buses as shared FIFO media and provides
// the per-transaction occupancy timing for both the conventional
// dedicated-signal interface and the packetized pSSD interface.
//
// A Channel is the physical medium: width in bits, transfer rate in MT/s,
// one transaction at a time, FIFO arbitration (the paper keeps the
// controller-driven CE/R-B handshake instead of a distributed bus arbiter).
// An Iface converts logical transactions (read command, page readout,
// program, erase) into occupancy durations on a given channel.
package bus

import (
	"fmt"

	"repro/internal/onfi"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Channel is one bus: an h-channel, a v-channel, or a mesh link.
type Channel struct {
	name      string
	widthBits int
	rateMTps  int
	beat      sim.Time
	res       *sim.Resource
}

// NewChannel creates an idle channel of the given width and rate.
func NewChannel(eng *sim.Engine, name string, widthBits, rateMTps int) *Channel {
	if widthBits <= 0 || rateMTps <= 0 {
		panic(fmt.Sprintf("bus: invalid channel %s: width=%d rate=%d", name, widthBits, rateMTps))
	}
	return &Channel{
		name:      name,
		widthBits: widthBits,
		rateMTps:  rateMTps,
		beat:      sim.Time(1_000_000 / rateMTps),
		res:       sim.NewResource(eng, name),
	}
}

// Name returns the channel name.
func (c *Channel) Name() string { return c.name }

// WidthBits returns the channel width.
func (c *Channel) WidthBits() int { return c.widthBits }

// RateMTps returns the transfer rate in mega-transfers per second.
func (c *Channel) RateMTps() int { return c.rateMTps }

// BeatTime returns the duration of one transfer beat.
func (c *Channel) BeatTime() sim.Time { return c.beat }

// BandwidthMBps returns the raw channel bandwidth in MB/s.
func (c *Channel) BandwidthMBps() float64 {
	return float64(c.rateMTps) * float64(c.widthBits) / 8
}

// TimeForFlits returns the serialization time for n 8-bit flits; wide
// channels move several flits per beat, narrow channels take several beats
// per flit.
func (c *Channel) TimeForFlits(n int) sim.Time {
	if n < 0 {
		panic("bus: negative flit count")
	}
	bits := n * packet.FlitBits
	beats := (bits + c.widthBits - 1) / c.widthBits
	return sim.Time(beats) * c.beat
}

// TimeForBytes returns the serialization time for n raw payload bytes.
func (c *Channel) TimeForBytes(n int) sim.Time { return c.TimeForFlits(n) }

// Use occupies the channel for d, then runs done. Requests queue FIFO.
func (c *Channel) Use(d sim.Time, done func()) { c.res.Use(d, done) }

// UseOp is Use with an operation label ("read-xfer", "gc-copy", ...)
// naming the hold for trace observers. Labels must be constant strings.
func (c *Channel) UseOp(label string, d sim.Time, done func()) { c.res.UseLabeled(label, d, done) }

// Acquire and Release expose raw resource holds for multi-phase
// transactions that must keep the bus across phases.
func (c *Channel) Acquire(fn func()) { c.res.Acquire(fn) }

// AcquireOp is Acquire with an operation label for trace observers.
func (c *Channel) AcquireOp(label string, fn func()) { c.res.AcquireLabeled(label, fn) }

// TryAcquire acquires only if the channel is idle with no waiters.
func (c *Channel) TryAcquire(fn func()) bool { return c.res.TryAcquire(fn) }

// Release frees the channel.
func (c *Channel) Release() { c.res.Release() }

// Busy reports whether the channel is currently held.
func (c *Channel) Busy() bool { return c.res.Busy() }

// QueueLen returns the number of queued waiters.
func (c *Channel) QueueLen() int { return c.res.QueueLen() }

// Load returns queue length plus current occupancy — the greedy adaptive
// routing metric used by pnSSD controllers to pick between h and v paths.
func (c *Channel) Load() int {
	n := c.res.QueueLen()
	if c.res.Busy() {
		n++
	}
	return n
}

// SetUtilRecorder attaches a windowed utilization recorder (Fig 3).
func (c *Channel) SetUtilRecorder(u *sim.UtilRecorder) { c.res.SetUtilRecorder(u) }

// SetObserver attaches a hold/queue observer to the underlying resource
// (the tracing hook); nil detaches.
func (c *Channel) SetObserver(o sim.ResourceObserver) { c.res.SetObserver(o) }

// AddObserver attaches an additional observer alongside any already
// installed (the invariant-checking hook).
func (c *Channel) AddObserver(o sim.ResourceObserver) { c.res.AddObserver(o) }

// TotalBusy returns cumulative occupancy.
func (c *Channel) TotalBusy() sim.Time { return c.res.TotalBusy() }

// Utilization returns lifetime utilization.
func (c *Channel) Utilization() float64 { return c.res.Utilization() }

// Iface converts logical flash transactions into channel occupancy times.
// Implementations must be pure: occupancy depends only on the transaction,
// so controllers can plan transfers before acquiring the bus.
type Iface interface {
	// Name identifies the interface style for reports.
	Name() string
	// ReadCmd is the occupancy to issue a page-read command+address.
	ReadCmd() sim.Time
	// ReadXfer is the occupancy to stream a page of n bytes from the chip
	// to the controller, including any transfer command that initiates it.
	ReadXfer(n int) sim.Time
	// ProgramXfer is the occupancy to issue a program command and stream
	// n payload bytes to the chip.
	ProgramXfer(n int) sim.Time
	// EraseCmd is the occupancy to issue a block erase.
	EraseCmd() sim.Time
}

// Dedicated is the conventional ONFi signal-based interface: control pins
// sequence the transaction and only the 8 DQ pins move payload.
type Dedicated struct {
	timing onfi.Timing
}

// NewDedicated builds the conventional interface for a channel rate. The
// conventional interface is always 8 bits wide; pass the channel's rate.
func NewDedicated(rateMTps int) Dedicated {
	return Dedicated{timing: onfi.NewTiming(rateMTps)}
}

// Name implements Iface.
func (Dedicated) Name() string { return "dedicated" }

// ReadCmd implements Iface.
func (d Dedicated) ReadCmd() sim.Time { return d.timing.ReadCmdTime() }

// ReadXfer implements Iface: RE-clocked readout of n bytes.
func (d Dedicated) ReadXfer(n int) sim.Time {
	return d.timing.Handshake + d.timing.DataTime(n)
}

// ProgramXfer implements Iface: command+address cycles then the payload.
func (d Dedicated) ProgramXfer(n int) sim.Time {
	return d.timing.ProgramCmdTime() + d.timing.DataTime(n)
}

// EraseCmd implements Iface.
func (d Dedicated) EraseCmd() sim.Time { return d.timing.EraseCmdTime() }

// Packetized is the pSSD interface: everything is flits on the full channel
// width; only CE and R/B survive as sideband handshake.
type Packetized struct {
	ch        *Channel
	handshake sim.Time
}

// NewPacketized builds the packetized interface bound to a channel (the
// flit serialization time depends on the channel width).
func NewPacketized(ch *Channel) Packetized {
	return Packetized{ch: ch, handshake: onfi.DefaultHandshake}
}

// Name implements Iface.
func (Packetized) Name() string { return "packetized" }

// ReadCmd implements Iface: CE handshake plus one control packet.
func (p Packetized) ReadCmd() sim.Time {
	return p.handshake + p.ch.TimeForFlits(packet.ControlFlitsFor())
}

// ReadXfer implements Iface: a "read data transfer" control packet followed
// by the data packet streaming back.
func (p Packetized) ReadXfer(n int) sim.Time {
	return p.handshake +
		p.ch.TimeForFlits(packet.ControlFlitsFor()) +
		p.ch.TimeForFlits(packet.DataFlitsFor(n))
}

// ProgramXfer implements Iface: control packet then the payload data packet.
func (p Packetized) ProgramXfer(n int) sim.Time {
	return p.handshake +
		p.ch.TimeForFlits(packet.ControlFlitsFor()) +
		p.ch.TimeForFlits(packet.DataFlitsFor(n))
}

// EraseCmd implements Iface: a single control packet (erase carries only a
// row address, 6 flits).
func (p Packetized) EraseCmd() sim.Time {
	erase := packet.EraseControl(packet.Address{})
	return p.handshake + p.ch.TimeForFlits(erase.Flits())
}

// VXfer returns the occupancy of a direct flash-to-flash page movement on a
// v-channel: a transfer-out control packet, a transfer-in control packet,
// and the payload data packet moving once (source register to destination
// V-page register).
func (p Packetized) VXfer(n int) sim.Time {
	return p.handshake +
		2*p.ch.TimeForFlits(packet.ControlFlitsFor()) +
		p.ch.TimeForFlits(packet.DataFlitsFor(n))
}

// MeanWait returns the average queueing delay transactions experienced
// before being granted this channel — the congestion signal behind the
// per-architecture contention analyses.
func (c *Channel) MeanWait() sim.Time { return c.res.MeanWait() }

// MaxWait returns the worst queueing delay seen on this channel.
func (c *Channel) MaxWait() sim.Time { return c.res.MaxWait() }
