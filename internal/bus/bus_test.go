package bus

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestChannelBandwidth(t *testing.T) {
	e := sim.NewEngine()
	narrow := NewChannel(e, "h0", 8, 1000)
	wide := NewChannel(e, "p0", 16, 1000)
	tiny := NewChannel(e, "m0", 2, 1000)
	if narrow.BandwidthMBps() != 1000 {
		t.Fatalf("8-bit bandwidth = %v, want 1000 MB/s", narrow.BandwidthMBps())
	}
	if wide.BandwidthMBps() != 2000 {
		t.Fatalf("16-bit bandwidth = %v, want 2000 MB/s", wide.BandwidthMBps())
	}
	if tiny.BandwidthMBps() != 250 {
		t.Fatalf("2-bit bandwidth = %v, want 250 MB/s", tiny.BandwidthMBps())
	}
}

func TestChannelTimeForFlits(t *testing.T) {
	e := sim.NewEngine()
	c8 := NewChannel(e, "c8", 8, 1000)
	c16 := NewChannel(e, "c16", 16, 1000)
	c2 := NewChannel(e, "c2", 2, 1000)
	// 8-bit @ 1000 MT/s: one flit per ns.
	if got := c8.TimeForFlits(16384); got != 16384*sim.Nanosecond {
		t.Fatalf("8-bit 16K flits = %v", got)
	}
	// 16-bit: two flits per beat.
	if got := c16.TimeForFlits(16384); got != 8192*sim.Nanosecond {
		t.Fatalf("16-bit 16K flits = %v", got)
	}
	// Odd flit count on a wide channel rounds up.
	if got := c16.TimeForFlits(3); got != 2*sim.Nanosecond {
		t.Fatalf("16-bit 3 flits = %v, want 2ns", got)
	}
	// 2-bit: four beats per flit.
	if got := c2.TimeForFlits(1); got != 4*sim.Nanosecond {
		t.Fatalf("2-bit 1 flit = %v, want 4ns", got)
	}
}

func TestChannelFIFO(t *testing.T) {
	e := sim.NewEngine()
	c := NewChannel(e, "ch", 8, 1000)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.Use(10*sim.Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	if e.Now() != 30*sim.Nanosecond {
		t.Fatalf("now = %v, want 30ns", e.Now())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestChannelLoad(t *testing.T) {
	e := sim.NewEngine()
	c := NewChannel(e, "ch", 8, 1000)
	if c.Load() != 0 {
		t.Fatalf("idle load = %d", c.Load())
	}
	c.Use(100, nil)
	c.Use(100, nil)
	e.Step() // grant the first
	if c.Load() != 2 {
		t.Fatalf("load = %d, want 2 (1 busy + 1 queued)", c.Load())
	}
	e.Run()
	if c.Load() != 0 {
		t.Fatalf("drained load = %d", c.Load())
	}
}

func TestDedicatedTiming(t *testing.T) {
	d := NewDedicated(1000)
	if d.Name() != "dedicated" {
		t.Fatal("name")
	}
	// Page readout of 16 KB at 1 B/ns plus 50ns handshake.
	if got := d.ReadXfer(16384); got != 16434*sim.Nanosecond {
		t.Fatalf("ReadXfer = %v, want 16.434us", got)
	}
	// Program: 120ns cmd+addr then 16.384us payload.
	if got := d.ProgramXfer(16384); got != 16504*sim.Nanosecond {
		t.Fatalf("ProgramXfer = %v, want 16.504us", got)
	}
	if d.ReadCmd() != 120*sim.Nanosecond {
		t.Fatalf("ReadCmd = %v", d.ReadCmd())
	}
	if d.EraseCmd() != 100*sim.Nanosecond {
		t.Fatalf("EraseCmd = %v", d.EraseCmd())
	}
}

func TestPacketizedTimingOn16Bit(t *testing.T) {
	e := sim.NewEngine()
	ch := NewChannel(e, "p", 16, 1000)
	p := NewPacketized(ch)
	if p.Name() != "packetized" {
		t.Fatal("name")
	}
	// Control packet: 8 flits on 16 bits = 4 beats = 4ns, plus 50ns handshake.
	if got := p.ReadCmd(); got != 54*sim.Nanosecond {
		t.Fatalf("ReadCmd = %v, want 54ns", got)
	}
	// Readout: 50ns + 4ns xfer-cmd + data packet (16387 flits -> 8194 beats).
	want := 50*sim.Nanosecond + 4*sim.Nanosecond + 8194*sim.Nanosecond
	if got := p.ReadXfer(16384); got != want {
		t.Fatalf("ReadXfer = %v, want %v", got, want)
	}
}

func TestPacketizedFasterThanDedicatedAt2xWidth(t *testing.T) {
	// The core pSSD claim: same pins, ~2x effective bandwidth. A 16 KB page
	// readout on the 16-bit packetized interface must take close to half
	// the time of the 8-bit dedicated interface.
	e := sim.NewEngine()
	d := NewDedicated(1000)
	p := NewPacketized(NewChannel(e, "p", 16, 1000))
	dt := d.ReadXfer(16384)
	pt := p.ReadXfer(16384)
	ratio := float64(dt) / float64(pt)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("dedicated/packetized readout ratio = %.3f, want ~2.0 (d=%v p=%v)", ratio, dt, pt)
	}
}

func TestPacketizedSameWidthSlightOverhead(t *testing.T) {
	// At equal width the packetized interface pays only the header flits,
	// so it should be within 0.5% of dedicated for page transfers.
	e := sim.NewEngine()
	d := NewDedicated(1000)
	p := NewPacketized(NewChannel(e, "p", 8, 1000))
	dt := d.ReadXfer(16384).Nanoseconds()
	pt := p.ReadXfer(16384).Nanoseconds()
	if pt < dt*0.99 || pt > dt*1.005 {
		t.Fatalf("packetized 8-bit readout %vns vs dedicated %vns", pt, dt)
	}
}

func TestPacketizedVXfer(t *testing.T) {
	e := sim.NewEngine()
	ch := NewChannel(e, "v", 8, 1000)
	p := NewPacketized(ch)
	// 50ns + 2 control packets (8ns each) + data packet 16387ns
	want := 50*sim.Nanosecond + 16*sim.Nanosecond + 16387*sim.Nanosecond
	if got := p.VXfer(16384); got != want {
		t.Fatalf("VXfer = %v, want %v", got, want)
	}
}

func TestChannelInvalidParamsPanics(t *testing.T) {
	e := sim.NewEngine()
	for _, c := range []struct{ w, r int }{{0, 1000}, {8, 0}, {-8, 1000}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewChannel(%d,%d) did not panic", c.w, c.r)
				}
			}()
			NewChannel(e, "bad", c.w, c.r)
		}()
	}
}

// Property: serialization time is monotone in flit count and exactly
// inversely proportional to width for width-divisible counts.
func TestTimeForFlitsProperty(t *testing.T) {
	e := sim.NewEngine()
	c8 := NewChannel(e, "c8", 8, 1000)
	c16 := NewChannel(e, "c16", 16, 1000)
	prop := func(nRaw uint16) bool {
		n := int(nRaw)
		if c8.TimeForFlits(n+1) < c8.TimeForFlits(n) {
			return false
		}
		// even counts: 16-bit takes exactly half the 8-bit time
		even := n * 2
		return c16.TimeForFlits(even) == c8.TimeForFlits(even)/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
