package flash

import (
	"encoding/binary"
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// OnDieController is the packet-decoding state machine pSSD adds to each
// flash chip (Fig 7(b)). It receives encoded packets from the channel,
// decodes them after a small fixed latency (the internal FIFO + decode
// pipeline), and drives the unmodified flash array with the equivalent
// internal control signals.
//
// Protocol state: a program or v-transfer-in control packet arms the
// controller to consume the next data packet; everything else completes
// from the control packet alone.
type OnDieController struct {
	eng    *sim.Engine
	chip   *Chip
	decode sim.Time

	// armed program: the next data packet programs this address.
	pendingProgram *PPA
	// armed v-transfer-in: the next ToVPage data packet lands in this register.
	pendingVReg int

	packetsDecoded int64
}

// DefaultDecodeLatency models the FIFO-and-state-machine decode cost per
// packet.
const DefaultDecodeLatency = 4 * sim.Nanosecond

// NewOnDieController attaches a controller to a chip.
func NewOnDieController(eng *sim.Engine, chip *Chip) *OnDieController {
	return &OnDieController{eng: eng, chip: chip, decode: DefaultDecodeLatency, pendingVReg: -1}
}

// PacketsDecoded returns the number of packets processed.
func (o *OnDieController) PacketsDecoded() int64 { return o.packetsDecoded }

// TokenPayload encodes a page content token as a data packet payload. Real
// hardware would move 16 KB; the simulator moves the 8-byte token and
// models the 16 KB serialization time on the channel.
func TokenPayload(t Token) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(t))
	return b
}

// PayloadToken decodes a data packet payload back into a token.
func PayloadToken(b []byte) Token {
	if len(b) < 8 {
		panic("flash: short token payload")
	}
	return Token(binary.LittleEndian.Uint64(b))
}

// Submit delivers one encoded packet. reply, if the packet elicits data
// (OpReadXfer, OpVXferOut), receives the encoded response packet. ready
// fires when the triggered array operation completes (the R/B_n
// transition); packets that trigger no array operation fire ready as soon
// as decoding finishes.
func (o *OnDieController) Submit(encoded []byte, reply func([]byte), ready func()) error {
	ty, err := packet.PeekType(encoded)
	if err != nil {
		return fmt.Errorf("flash %s: %w", o.chip.Name(), err)
	}
	switch ty {
	case packet.TypeControl:
		ctrl, _, err := packet.DecodeControl(encoded)
		if err != nil {
			return fmt.Errorf("flash %s: %w", o.chip.Name(), err)
		}
		o.eng.Schedule(o.decode, func() {
			o.packetsDecoded++
			o.execControl(ctrl, reply, ready)
		})
	case packet.TypeData:
		data, _, err := packet.DecodeData(encoded)
		if err != nil {
			return fmt.Errorf("flash %s: %w", o.chip.Name(), err)
		}
		o.eng.Schedule(o.decode, func() {
			o.packetsDecoded++
			o.execData(data, ready)
		})
	}
	return nil
}

func (o *OnDieController) execControl(c packet.Control, reply func([]byte), ready func()) {
	addr := o.chip.Geometry().UnpackRow(c.Addr.Row)
	fire := func() {
		if ready != nil {
			ready()
		}
	}
	switch {
	case matchOps(c.Commands, packet.OpReadFirst, packet.OpReadSecond):
		o.chip.Read([]PPA{addr}, fire)

	case matchOps(c.Commands, packet.OpReadXfer):
		// Stream the page register back as a data packet.
		tok := o.chip.PageRegister(addr.Plane)
		resp, err := (packet.Data{Payload: TokenPayload(tok)}).Encode()
		if err != nil {
			panic(err)
		}
		if reply != nil {
			reply(resp)
		}
		fire()

	case matchOps(c.Commands, packet.OpProgram, packet.OpProgramConfirm):
		// Arm: the payload arrives as the next data packet.
		a := addr
		o.pendingProgram = &a
		fire()

	case matchOps(c.Commands, packet.OpErase, packet.OpEraseConfirm):
		o.chip.Erase([]PPA{addr}, fire)

	case matchOps(c.Commands, packet.OpVXferOut):
		// Push the page register onto the v-channel as a ToVPage data packet.
		tok := o.chip.PageRegister(addr.Plane)
		resp, err := (packet.Data{ToVPage: true, Payload: TokenPayload(tok)}).Encode()
		if err != nil {
			panic(err)
		}
		if reply != nil {
			reply(resp)
		}
		fire()

	case matchOps(c.Commands, packet.OpVXferIn):
		reg := o.chip.AcquireVPage()
		if reg < 0 {
			panic(fmt.Sprintf("flash %s: VXferIn with no free V-page register (control plane must check buffer status first)", o.chip.Name()))
		}
		o.pendingVReg = reg
		fire()

	case matchOps(c.Commands, packet.OpVCommit):
		if o.pendingVReg < 0 {
			panic(fmt.Sprintf("flash %s: VCommit with no latched V-page register", o.chip.Name()))
		}
		reg := o.pendingVReg
		o.pendingVReg = -1
		o.chip.ProgramFromVPage(reg, addr, fire)

	default:
		panic(fmt.Sprintf("flash %s: unknown command sequence %x", o.chip.Name(), c.Commands))
	}
}

func (o *OnDieController) execData(d packet.Data, ready func()) {
	fire := func() {
		if ready != nil {
			ready()
		}
	}
	switch {
	case d.ToVPage:
		if o.pendingVReg < 0 {
			panic(fmt.Sprintf("flash %s: ToVPage data with no armed VXferIn", o.chip.Name()))
		}
		o.chip.SetVPage(o.pendingVReg, PayloadToken(d.Payload))
		fire()

	case o.pendingProgram != nil:
		addr := *o.pendingProgram
		o.pendingProgram = nil
		tok := PayloadToken(d.Payload)
		o.chip.SetPageRegister(addr.Plane, tok)
		o.chip.Program([]ProgramOp{{Addr: addr, Token: tok}}, fire)

	default:
		panic(fmt.Sprintf("flash %s: unexpected data packet (no armed program)", o.chip.Name()))
	}
}

func matchOps(got []uint8, want ...uint8) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
