package flash

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func encode(t *testing.T, c packet.Control) []byte {
	t.Helper()
	b, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func encodeData(t *testing.T, d packet.Data) []byte {
	t.Helper()
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Full packetized write-then-read protocol against the on-die controller,
// exactly as the channel controller would drive it (Fig 6(b)).
func TestODCProgramReadProtocol(t *testing.T) {
	e := sim.NewEngine()
	chip := newTestChip(e)
	odc := NewOnDieController(e, chip)
	addr := PPA{Plane: 1, Block: 2, Page: 0}
	wire := chip.Address(addr)

	// Program: control packet arms, data packet carries the payload.
	if err := odc.Submit(encode(t, packet.ProgramControl(wire)), nil, nil); err != nil {
		t.Fatal(err)
	}
	programmed := false
	if err := odc.Submit(encodeData(t, packet.Data{Payload: TokenPayload(0xFACE)}), nil, func() { programmed = true }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !programmed {
		t.Fatal("program ready never fired")
	}
	if chip.ContentAt(addr) != 0xFACE {
		t.Fatalf("content = %x", chip.ContentAt(addr))
	}

	// Read: control packet starts tR; after ready, a read-transfer control
	// packet elicits the data packet.
	ready := false
	if err := odc.Submit(encode(t, packet.ReadControl(wire)), nil, func() { ready = true }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !ready {
		t.Fatal("read ready never fired")
	}
	var resp []byte
	if err := odc.Submit(encode(t, packet.ReadXferControl(wire)), func(b []byte) { resp = b }, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if resp == nil {
		t.Fatal("no data packet returned")
	}
	d, _, err := packet.DecodeData(resp)
	if err != nil {
		t.Fatal(err)
	}
	if PayloadToken(d.Payload) != 0xFACE {
		t.Fatalf("read token = %x", PayloadToken(d.Payload))
	}
}

func TestODCEraseProtocol(t *testing.T) {
	e := sim.NewEngine()
	chip := newTestChip(e)
	odc := NewOnDieController(e, chip)
	addr := PPA{Plane: 0, Block: 3, Page: 0}
	chip.Program([]ProgramOp{{Addr: addr, Token: 7}}, nil)
	e.Run()

	done := false
	if err := odc.Submit(encode(t, packet.EraseControl(chip.Address(addr))), nil, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	start := e.Now()
	e.Run()
	if !done {
		t.Fatal("erase never completed")
	}
	if e.Now()-start < sim.Millisecond {
		t.Fatalf("erase completed in %v, want >= 1ms", e.Now()-start)
	}
	if chip.PageStateAt(addr) != PageErased {
		t.Fatal("block not erased")
	}
}

// Direct flash-to-flash copy over a v-channel: source VXferOut produces a
// ToVPage data packet; destination VXferIn + data + VCommit lands it.
func TestODCFlashToFlashProtocol(t *testing.T) {
	e := sim.NewEngine()
	src := NewChip(e, "src", testGeo(), ULLTiming())
	dst := NewChip(e, "dst", testGeo(), ULLTiming())
	srcODC := NewOnDieController(e, src)
	dstODC := NewOnDieController(e, dst)

	from := PPA{Plane: 0, Block: 1, Page: 0}
	to := PPA{Plane: 2, Block: 5, Page: 0}
	src.Program([]ProgramOp{{Addr: from, Token: 0xC0FFEE}}, nil)
	e.Run()

	// Source reads the page into its register.
	if err := srcODC.Submit(encode(t, packet.ReadControl(src.Address(from))), nil, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()

	// Destination arms a V-page register.
	if err := dstODC.Submit(encode(t, packet.VXferInControl(dst.Address(to))), nil, nil); err != nil {
		t.Fatal(err)
	}
	// Source pushes the register onto the v-channel; the "wire" here is the
	// test relaying the data packet to the destination.
	var onWire []byte
	if err := srcODC.Submit(encode(t, packet.VXferOutControl(src.Address(from))), func(b []byte) { onWire = b }, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if onWire == nil {
		t.Fatal("VXferOut produced no data packet")
	}
	d, _, err := packet.DecodeData(onWire)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ToVPage {
		t.Fatal("v-channel data packet missing ToVPage flag")
	}
	if err := dstODC.Submit(onWire, nil, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()

	// Commit into the destination array.
	committed := false
	if err := dstODC.Submit(encode(t, packet.VCommitControl(dst.Address(to))), nil, func() { committed = true }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !committed {
		t.Fatal("VCommit never completed")
	}
	if dst.ContentAt(to) != 0xC0FFEE {
		t.Fatalf("flash-to-flash copy corrupted: %x", dst.ContentAt(to))
	}
	if !dst.VPageFree() {
		t.Fatal("V-page register leaked after commit")
	}
}

func TestODCGarbagePacket(t *testing.T) {
	e := sim.NewEngine()
	odc := NewOnDieController(e, newTestChip(e))
	if err := odc.Submit(nil, nil, nil); err == nil {
		t.Fatal("nil packet accepted")
	}
	if err := odc.Submit([]byte{0xFF, 0x00}, nil, nil); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestODCUnexpectedDataPanics(t *testing.T) {
	e := sim.NewEngine()
	odc := NewOnDieController(e, newTestChip(e))
	if err := odc.Submit(encodeData(t, packet.Data{Payload: TokenPayload(1)}), nil, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("orphan data packet did not panic")
		}
	}()
	e.Run()
}

func TestODCDecodeLatencyCounted(t *testing.T) {
	e := sim.NewEngine()
	chip := newTestChip(e)
	odc := NewOnDieController(e, chip)
	chip.Program([]ProgramOp{{Addr: PPA{0, 0, 0}, Token: 5}}, nil)
	e.Run()
	start := e.Now()
	odc.Submit(encode(t, packet.ReadControl(chip.Address(PPA{0, 0, 0}))), nil, nil)
	e.Run()
	want := DefaultDecodeLatency + 3*sim.Microsecond
	if e.Now()-start != want {
		t.Fatalf("read via ODC took %v, want %v", e.Now()-start, want)
	}
	if odc.PacketsDecoded() != 1 {
		t.Fatalf("PacketsDecoded = %d", odc.PacketsDecoded())
	}
}

func TestTokenPayloadRoundTrip(t *testing.T) {
	for _, tok := range []Token{0, 1, 0xDEADBEEFCAFEF00D} {
		if PayloadToken(TokenPayload(tok)) != tok {
			t.Fatalf("token %x did not round-trip", tok)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short payload did not panic")
		}
	}()
	PayloadToken([]byte{1, 2})
}
