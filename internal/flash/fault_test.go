package flash

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestReadRetryLadderExtendsDieTime(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	a := PPA{Plane: 0, Block: 0, Page: 0}
	c.InstallPage(a, 0xAB)

	inj := fault.New(fault.Config{Seed: 1, ReadECCRate: 1.0})
	c.SetFaults(inj, 0)

	done := false
	c.Read([]PPA{a}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("faulted read never completed")
	}
	// Rate 1.0 never recovers: the full ladder (3 re-senses at tR +
	// k*2us) then the 10us strong-ECC relay, on top of the base tR.
	cfg := inj.Config()
	want := c.timing.Read
	for k := 1; k <= cfg.ReadRetryMax; k++ {
		want += c.timing.Read + sim.Time(k)*cfg.ReadRetryStep
	}
	want += cfg.StrongECCLatency
	if e.Now() != want {
		t.Fatalf("faulted read took %v, want %v", e.Now(), want)
	}
	if c.PageRegister(0) != 0xAB {
		t.Fatal("relay path lost page content")
	}
	r := inj.RAS()
	if r.ReadFaults != 1 || r.ReadRetries != int64(cfg.ReadRetryMax) || r.ReadRelays != 1 {
		t.Fatalf("RAS = faults %d retries %d relays %d", r.ReadFaults, r.ReadRetries, r.ReadRelays)
	}
	if r.RetryLadder.Max() != cfg.ReadRetryMax {
		t.Fatalf("retry ladder max = %d", r.RetryLadder.Max())
	}
}

func TestZeroRateAddsNoPenalty(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	a := PPA{Plane: 0, Block: 0, Page: 0}
	c.InstallPage(a, 1)
	c.SetFaults(fault.New(fault.Config{Seed: 1}), 0)
	c.Read([]PPA{a}, nil)
	e.Run()
	if e.Now() != c.timing.Read {
		t.Fatalf("unfaulted read took %v, want %v", e.Now(), c.timing.Read)
	}
	if inj := c.faults; inj.RAS().ReadFaults != 0 {
		t.Fatal("zero-rate injector recorded read faults")
	}
}

func TestMultiPlaneWorstPageBounds(t *testing.T) {
	// With rate 1.0 every page faults; planes re-sense in parallel so the
	// multi-plane read still costs one ladder, not four.
	e := sim.NewEngine()
	c := newTestChip(e)
	var ppas []PPA
	for pl := 0; pl < 4; pl++ {
		a := PPA{Plane: pl, Block: 0, Page: 0}
		c.InstallPage(a, Token(pl+1))
		ppas = append(ppas, a)
	}
	inj := fault.New(fault.Config{Seed: 1, ReadECCRate: 1.0})
	c.SetFaults(inj, 0)
	c.Read(ppas, nil)
	e.Run()
	cfg := inj.Config()
	want := c.timing.Read
	for k := 1; k <= cfg.ReadRetryMax; k++ {
		want += c.timing.Read + sim.Time(k)*cfg.ReadRetryStep
	}
	want += cfg.StrongECCLatency
	if e.Now() != want {
		t.Fatalf("multi-plane faulted read took %v, want %v (worst page only)", e.Now(), want)
	}
	if inj.RAS().ReadFaults != 4 {
		t.Fatalf("ReadFaults = %d, want 4", inj.RAS().ReadFaults)
	}
}
