package flash

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testGeo() Geometry {
	return Geometry{Planes: 4, BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 16384}
}

func newTestChip(e *sim.Engine) *Chip {
	return NewChip(e, "chip0", testGeo(), ULLTiming())
}

func TestGeometryArithmetic(t *testing.T) {
	g := Geometry{Planes: 4, BlocksPerPlane: 1024, PagesPerBlock: 512, PageSize: 16384}
	if g.PagesPerChip() != 4*1024*512 {
		t.Fatalf("PagesPerChip = %d", g.PagesPerChip())
	}
	if g.CapacityBytes() != int64(4*1024*512)*16384 {
		t.Fatalf("CapacityBytes = %d", g.CapacityBytes())
	}
}

func TestULLTiming(t *testing.T) {
	tm := ULLTiming()
	if tm.Read != 3*sim.Microsecond || tm.Program != 50*sim.Microsecond || tm.Erase != sim.Millisecond {
		t.Fatalf("ULL timing = %+v", tm)
	}
}

func TestRowPackUnpack(t *testing.T) {
	g := Geometry{Planes: 4, BlocksPerPlane: 1024, PagesPerBlock: 512, PageSize: 16384}
	cases := []PPA{
		{0, 0, 0},
		{3, 1023, 511},
		{1, 512, 255},
	}
	for _, a := range cases {
		row := g.PackRow(a)
		if row>>24 != 0 {
			t.Fatalf("row %x exceeds 24 bits for %v", row, a)
		}
		back := g.UnpackRow(row)
		if back != a {
			t.Fatalf("round trip %v -> %x -> %v", a, row, back)
		}
	}
}

func TestRowPackUnpackProperty(t *testing.T) {
	g := Geometry{Planes: 4, BlocksPerPlane: 1024, PagesPerBlock: 512, PageSize: 16384}
	prop := func(p, b, pg uint16) bool {
		a := PPA{Plane: int(p) % g.Planes, Block: int(b) % g.BlocksPerPlane, Page: int(pg) % g.PagesPerBlock}
		return g.UnpackRow(g.PackRow(a)) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	a := PPA{Plane: 2, Block: 3, Page: 0}
	done := false
	c.Program([]ProgramOp{{Addr: a, Token: 0xDEADBEEF}}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("program completion never fired")
	}
	if e.Now() != 50*sim.Microsecond {
		t.Fatalf("program took %v, want 50us", e.Now())
	}
	if c.PageStateAt(a) != PageProgrammed || c.ContentAt(a) != 0xDEADBEEF {
		t.Fatal("page not programmed with token")
	}
	start := e.Now()
	c.Read([]PPA{a}, nil)
	e.Run()
	if e.Now()-start != 3*sim.Microsecond {
		t.Fatalf("read took %v, want 3us", e.Now()-start)
	}
	if c.PageRegister(2) != 0xDEADBEEF {
		t.Fatalf("page register = %x", c.PageRegister(2))
	}
	r, p, er := c.Counters()
	if r != 1 || p != 1 || er != 0 {
		t.Fatalf("counters = %d,%d,%d", r, p, er)
	}
}

func TestMultiPlaneOps(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	var ops []ProgramOp
	for pl := 0; pl < 4; pl++ {
		ops = append(ops, ProgramOp{Addr: PPA{Plane: pl, Block: 1, Page: 0}, Token: Token(100 + pl)})
	}
	c.Program(ops, nil)
	e.Run()
	// One multi-plane program = one tPROG, not four.
	if e.Now() != 50*sim.Microsecond {
		t.Fatalf("multi-plane program took %v, want 50us", e.Now())
	}
	start := e.Now()
	ppas := []PPA{{0, 1, 0}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}}
	c.Read(ppas, nil)
	e.Run()
	if e.Now()-start != 3*sim.Microsecond {
		t.Fatalf("multi-plane read took %v, want 3us", e.Now()-start)
	}
	for pl := 0; pl < 4; pl++ {
		if c.PageRegister(pl) != Token(100+pl) {
			t.Fatalf("plane %d register = %v", pl, c.PageRegister(pl))
		}
	}
}

func TestDieSerializesOps(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	c.Program([]ProgramOp{{Addr: PPA{0, 0, 0}, Token: 1}}, nil)
	c.Program([]ProgramOp{{Addr: PPA{0, 0, 1}, Token: 2}}, nil)
	e.Run()
	if e.Now() != 100*sim.Microsecond {
		t.Fatalf("two programs took %v, want 100us (serialized)", e.Now())
	}
}

func TestEraseResetsBlock(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	for pg := 0; pg < 3; pg++ {
		c.Program([]ProgramOp{{Addr: PPA{1, 2, pg}, Token: Token(pg + 1)}}, nil)
	}
	e.Run()
	c.Erase([]PPA{{Plane: 1, Block: 2}}, nil)
	start := e.Now()
	e.Run()
	if e.Now()-start != sim.Millisecond {
		t.Fatalf("erase took %v, want 1ms", e.Now()-start)
	}
	for pg := 0; pg < 3; pg++ {
		a := PPA{1, 2, pg}
		if c.PageStateAt(a) != PageErased || c.ContentAt(a) != ErasedToken {
			t.Fatalf("page %v not erased", a)
		}
	}
	if c.EraseCount(1, 2) != 1 {
		t.Fatalf("erase count = %d", c.EraseCount(1, 2))
	}
	// Block is reprogrammable from page 0 after erase.
	c.Program([]ProgramOp{{Addr: PPA{1, 2, 0}, Token: 9}}, nil)
	e.Run()
	if c.ContentAt(PPA{1, 2, 0}) != 9 {
		t.Fatal("reprogram after erase failed")
	}
}

func TestProgramNonErasedPanics(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	c.Program([]ProgramOp{{Addr: PPA{0, 0, 0}, Token: 1}}, nil)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("double program did not panic")
		}
	}()
	c.Program([]ProgramOp{{Addr: PPA{0, 0, 0}, Token: 2}}, nil)
}

func TestInstallPage(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	a := PPA{Plane: 0, Block: 0, Page: 0}
	c.InstallPage(a, 0x11)
	if e.Now() != 0 {
		t.Fatal("install consumed simulated time")
	}
	if c.PageStateAt(a) != PageProgrammed || c.ContentAt(a) != 0x11 {
		t.Fatal("install did not program the page")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double install did not panic")
		}
	}()
	c.InstallPage(a, 0x22)
}

func TestReadUnprogrammedPanics(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	defer func() {
		if recover() == nil {
			t.Fatal("read of erased page did not panic")
		}
	}()
	c.Read([]PPA{{0, 0, 0}}, nil)
}

func TestMultiPlaneDuplicatePlanePanics(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate plane did not panic")
		}
	}()
	c.Program([]ProgramOp{
		{Addr: PPA{1, 0, 0}, Token: 1},
		{Addr: PPA{1, 1, 0}, Token: 2},
	}, nil)
}

func TestVPageLifecycle(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	if !c.VPageFree() {
		t.Fatal("fresh chip has no free V-page registers")
	}
	r0 := c.AcquireVPage()
	r1 := c.AcquireVPage()
	if r0 != 0 || r1 != 1 {
		t.Fatalf("acquired %d, %d", r0, r1)
	}
	if c.VPageFree() || c.AcquireVPage() != -1 {
		t.Fatal("exhausted V-page registers still acquirable")
	}
	c.SetVPage(r0, 0xCAFE)
	if c.VPage(r0) != 0xCAFE {
		t.Fatal("V-page content lost")
	}
	// Commit r0 into the array: register frees on completion.
	c.ProgramFromVPage(r0, PPA{0, 4, 0}, nil)
	e.Run()
	if c.ContentAt(PPA{0, 4, 0}) != 0xCAFE {
		t.Fatal("VCommit did not program token")
	}
	if !c.VPageFree() {
		t.Fatal("V-page register not freed after commit")
	}
	c.ReleaseVPage(r1)
	if c.AcquireVPage() == -1 {
		t.Fatal("released register not reusable")
	}
}

func TestVPageMisusePanics(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	for _, fn := range []func(){
		func() { c.SetVPage(0, 1) },                         // unclaimed store
		func() { c.ReleaseVPage(0) },                        // unclaimed release
		func() { c.ProgramFromVPage(1, PPA{0, 0, 0}, nil) }, // empty commit
		func() { c.VPage(9) },                               // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("V-page misuse did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestChipBusyDuringOp(t *testing.T) {
	e := sim.NewEngine()
	c := newTestChip(e)
	c.Program([]ProgramOp{{Addr: PPA{0, 0, 0}, Token: 1}}, nil)
	e.RunUntil(10 * sim.Microsecond)
	if !c.Busy() {
		t.Fatal("chip idle mid-program")
	}
	e.Run()
	if c.Busy() {
		t.Fatal("chip busy after program completed")
	}
}

// Property: programming pages in order with arbitrary tokens, every token
// reads back; erase clears everything.
func TestProgramEraseProperty(t *testing.T) {
	prop := func(tokens []uint64) bool {
		if len(tokens) > 16 {
			tokens = tokens[:16]
		}
		e := sim.NewEngine()
		c := newTestChip(e)
		for i, tok := range tokens {
			c.Program([]ProgramOp{{Addr: PPA{0, 0, i}, Token: Token(tok)}}, nil)
		}
		e.Run()
		for i, tok := range tokens {
			if c.ContentAt(PPA{0, 0, i}) != Token(tok) {
				return false
			}
		}
		c.Erase([]PPA{{Plane: 0, Block: 0}}, nil)
		e.Run()
		for i := range tokens {
			if c.PageStateAt(PPA{0, 0, i}) != PageErased {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
