package flash

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestODCProtocolSoak drives the on-die controller through hundreds of
// randomly interleaved program / read / erase / flash-to-flash transfer
// sequences using real encoded packets, mirroring how a packetized
// channel controller would talk to the chip, and verifies every content
// movement end to end.
func TestODCProtocolSoak(t *testing.T) {
	e := sim.NewEngine()
	geo := Geometry{Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 4096}
	src := NewChip(e, "src", geo, ULLTiming())
	dst := NewChip(e, "dst", geo, ULLTiming())
	srcODC := NewOnDieController(e, src)
	dstODC := NewOnDieController(e, dst)
	rng := rand.New(rand.NewSource(99))

	type page struct {
		chip *Chip
		odc  *OnDieController
		addr PPA
	}
	// Sequential allocation cursors per (chip, plane, block).
	next := map[*Chip]map[int]*int{src: {}, dst: {}}
	alloc := func(c *Chip) (PPA, bool) {
		for plane := 0; plane < geo.Planes; plane++ {
			for b := 0; b < geo.BlocksPerPlane; b++ {
				key := plane*geo.BlocksPerPlane + b
				if next[c][key] == nil {
					z := 0
					next[c][key] = &z
				}
				if *next[c][key] < geo.PagesPerBlock {
					p := PPA{Plane: plane, Block: b, Page: *next[c][key]}
					*next[c][key]++
					return p, true
				}
			}
		}
		return PPA{}, false
	}

	written := map[page]Token{}
	var pages []page
	content := func(p page) Token { return p.chip.ContentAt(p.addr) }

	mustEncode := func(c packet.Control) []byte {
		b, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	program := func(c *Chip, odc *OnDieController) {
		addr, ok := alloc(c)
		if !ok {
			return
		}
		tok := Token(rng.Uint64())
		if err := odc.Submit(mustEncode(packet.ProgramControl(c.Address(addr))), nil, nil); err != nil {
			t.Fatal(err)
		}
		data, err := (packet.Data{Payload: TokenPayload(tok)}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := odc.Submit(data, nil, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		p := page{chip: c, odc: odc, addr: addr}
		written[p] = tok
		pages = append(pages, p)
	}

	readBack := func(p page) Token {
		if err := p.odc.Submit(mustEncode(packet.ReadControl(p.chip.Address(p.addr))), nil, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		var resp []byte
		if err := p.odc.Submit(mustEncode(packet.ReadXferControl(p.chip.Address(p.addr))), func(b []byte) { resp = b }, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		d, _, err := packet.DecodeData(resp)
		if err != nil {
			t.Fatal(err)
		}
		return PayloadToken(d.Payload)
	}

	xfer := func(from, to page) bool {
		// Read source into its register, arm destination, push, commit.
		if !to.chip.VPageFree() {
			return false
		}
		if err := from.odc.Submit(mustEncode(packet.ReadControl(from.chip.Address(from.addr))), nil, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		dstAddr, ok := alloc(to.chip)
		if !ok {
			return false
		}
		if err := to.odc.Submit(mustEncode(packet.VXferInControl(to.chip.Address(dstAddr))), nil, nil); err != nil {
			t.Fatal(err)
		}
		var wire []byte
		if err := from.odc.Submit(mustEncode(packet.VXferOutControl(from.chip.Address(from.addr))), func(b []byte) { wire = b }, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if err := to.odc.Submit(wire, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := to.odc.Submit(mustEncode(packet.VCommitControl(to.chip.Address(dstAddr))), nil, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		np := page{chip: to.chip, odc: to.odc, addr: dstAddr}
		written[np] = written[from]
		pages = append(pages, np)
		return true
	}

	for i := 0; i < 400; i++ {
		switch rng.Intn(4) {
		case 0:
			program(src, srcODC)
		case 1:
			program(dst, dstODC)
		case 2:
			if len(pages) > 0 {
				p := pages[rng.Intn(len(pages))]
				if got := readBack(p); got != written[p] {
					t.Fatalf("iter %d: read of %v on %s = %x, want %x", i, p.addr, p.chip.Name(), got, written[p])
				}
			}
		case 3:
			if len(pages) > 0 {
				from := pages[rng.Intn(len(pages))]
				to := src
				toODC := srcODC
				if from.chip == src {
					to, toODC = dst, dstODC
				}
				xfer(from, page{chip: to, odc: toODC})
			}
		}
	}

	// Final sweep: every page the soak wrote still carries its token.
	for p, tok := range written {
		if content(p) != tok {
			t.Fatalf("final sweep: %v on %s = %x, want %x", p.addr, p.chip.Name(), content(p), tok)
		}
	}
	if srcODC.PacketsDecoded() == 0 || dstODC.PacketsDecoded() == 0 {
		t.Fatal("soak did not exercise both on-die controllers")
	}
	t.Logf("soak: %d pages written, %d/%d packets decoded",
		len(written), srcODC.PacketsDecoded(), dstODC.PacketsDecoded())
}
