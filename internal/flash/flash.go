// Package flash models NAND flash memory chips: the die/plane/block/page
// geometry, array operation timing (tR, tPROG, tBERS), multi-plane
// commands, per-plane page registers, and the pnSSD additions — V-page
// registers and the on-die controller that decodes packets into internal
// control signals (Fig 7 of the paper).
//
// Page contents are modelled as 64-bit tokens rather than full 16 KB
// buffers, which lets every copy path (host write, controller-mediated GC
// copy, direct flash-to-flash v-channel copy) be verified end to end while
// keeping simulations of multi-million-page devices cheap.
package flash

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Geometry describes one chip. The paper's Table II uses 1 die, 4 planes,
// 1024 blocks per plane, 512 pages per block, 16 KB pages.
type Geometry struct {
	Planes         int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int // bytes
}

// Validate panics on a malformed geometry.
func (g Geometry) Validate() {
	if g.Planes <= 0 || g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 || g.PageSize <= 0 {
		panic(fmt.Sprintf("flash: invalid geometry %+v", g))
	}
}

// PagesPerChip returns the total page count.
func (g Geometry) PagesPerChip() int {
	return g.Planes * g.BlocksPerPlane * g.PagesPerBlock
}

// CapacityBytes returns the chip capacity.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.PagesPerChip()) * int64(g.PageSize)
}

// Timing holds the array operation latencies. Table II uses the ULL
// parameters: read 3 us, program 50 us, erase 1 ms.
type Timing struct {
	Read    sim.Time
	Program sim.Time
	Erase   sim.Time
}

// ULLTiming returns the ultra-low-latency flash parameters from Table II.
func ULLTiming() Timing {
	return Timing{
		Read:    3 * sim.Microsecond,
		Program: 50 * sim.Microsecond,
		Erase:   sim.Millisecond,
	}
}

// PPA is a physical page address within one chip.
type PPA struct {
	Plane int
	Block int
	Page  int
}

// String formats the address.
func (a PPA) String() string { return fmt.Sprintf("p%d/b%d/pg%d", a.Plane, a.Block, a.Page) }

// PackRow encodes a PPA into the 24-bit row address carried by control
// packets: plane in the top bits, then block, then page.
func (g Geometry) PackRow(a PPA) uint32 {
	g.checkPPA(a)
	return uint32(a.Plane)<<20 | uint32(a.Block)<<9 | uint32(a.Page)
}

// UnpackRow decodes a 24-bit row address back into a PPA.
func (g Geometry) UnpackRow(row uint32) PPA {
	a := PPA{
		Plane: int(row >> 20 & 0xF),
		Block: int(row >> 9 & 0x7FF),
		Page:  int(row & 0x1FF),
	}
	g.checkPPA(a)
	return a
}

func (g Geometry) checkPPA(a PPA) {
	if a.Plane < 0 || a.Plane >= g.Planes ||
		a.Block < 0 || a.Block >= g.BlocksPerPlane ||
		a.Page < 0 || a.Page >= g.PagesPerBlock {
		panic(fmt.Sprintf("flash: PPA %v outside geometry %+v", a, g))
	}
}

// PageState is the lifecycle state of one physical page.
type PageState uint8

// Page states.
const (
	PageErased PageState = iota
	PageProgrammed
)

// Token is a page content token: a 64-bit stand-in for 16 KB of data.
type Token uint64

// ErasedToken is the content of an erased (all-ones) page.
const ErasedToken Token = 0

// Chip is one flash memory chip: a single die with multiple planes. Array
// operations serialize on the die; multi-plane commands run one array
// operation covering several planes at once.
type Chip struct {
	eng    *sim.Engine
	name   string
	geo    Geometry
	timing Timing

	die *sim.Resource // array busy; R/B_n abstraction

	pageReg    []Token // per-plane page registers
	vpage      []Token // pnSSD V-page registers (2 in the paper)
	vpageInUse []bool

	content    [][]Token // [plane][block*pagesPerBlock+page]
	state      [][]PageState
	nextPage   [][]int // per [plane][block]: next programmable page index
	eraseCount [][]int

	reads, programs, erases int64

	// faults injects transient read ECC failures; faultKey identifies
	// this chip in the injector's per-chip quota accounting.
	faults   *fault.Injector
	faultKey uint64
}

// NumVPageRegisters is the count of extra V-page registers the pnSSD
// on-die data-plane adds (the paper's cost discussion assumes two).
const NumVPageRegisters = 2

// NewChip builds an erased chip.
func NewChip(eng *sim.Engine, name string, geo Geometry, timing Timing) *Chip {
	geo.Validate()
	c := &Chip{
		eng:        eng,
		name:       name,
		geo:        geo,
		timing:     timing,
		die:        sim.NewResource(eng, name+"/die"),
		pageReg:    make([]Token, geo.Planes),
		vpage:      make([]Token, NumVPageRegisters),
		vpageInUse: make([]bool, NumVPageRegisters),
	}
	c.content = make([][]Token, geo.Planes)
	c.state = make([][]PageState, geo.Planes)
	c.nextPage = make([][]int, geo.Planes)
	c.eraseCount = make([][]int, geo.Planes)
	for p := 0; p < geo.Planes; p++ {
		c.content[p] = make([]Token, geo.BlocksPerPlane*geo.PagesPerBlock)
		c.state[p] = make([]PageState, geo.BlocksPerPlane*geo.PagesPerBlock)
		c.nextPage[p] = make([]int, geo.BlocksPerPlane)
		c.eraseCount[p] = make([]int, geo.BlocksPerPlane)
	}
	return c
}

// Name returns the chip name.
func (c *Chip) Name() string { return c.name }

// Geometry returns the chip geometry.
func (c *Chip) Geometry() Geometry { return c.geo }

// Timing returns the array timing.
func (c *Chip) Timing() Timing { return c.timing }

// SetFaults attaches a fault injector. key identifies this chip for
// per-chip fault quotas; nil disables injection.
func (c *Chip) SetFaults(inj *fault.Injector, key uint64) {
	c.faults = inj
	c.faultKey = key
}

// SetObserver attaches a hold/queue observer to the die resource (the
// tracing hook); nil detaches. The die track carries one span per array
// operation, labeled read/program/erase.
func (c *Chip) SetObserver(o sim.ResourceObserver) { c.die.SetObserver(o) }

// AddObserver attaches an additional observer to the die resource (the
// invariant-checking hook), alongside any tracing observer.
func (c *Chip) AddObserver(o sim.ResourceObserver) { c.die.AddObserver(o) }

// DieName returns the die resource's diagnostic name (the trace track
// name for this chip's array operations).
func (c *Chip) DieName() string { return c.die.Name() }

// VPagesHeld counts V-page registers currently claimed — nonzero after a
// drained run indicates a leaked register from an abandoned copy.
func (c *Chip) VPagesHeld() int {
	n := 0
	for _, used := range c.vpageInUse {
		if used {
			n++
		}
	}
	return n
}

// Busy reports whether the die is executing an array operation — the R/B_n
// pin abstraction.
func (c *Chip) Busy() bool { return c.die.Busy() }

// QueueLen reports array operations waiting behind the current one.
func (c *Chip) QueueLen() int { return c.die.QueueLen() }

// Counters returns (reads, programs, erases) executed.
func (c *Chip) Counters() (reads, programs, erases int64) {
	return c.reads, c.programs, c.erases
}

func (c *Chip) pageIndex(a PPA) int { return a.Block*c.geo.PagesPerBlock + a.Page }

// PageStateAt returns the lifecycle state of a page.
func (c *Chip) PageStateAt(a PPA) PageState {
	c.geo.checkPPA(a)
	return c.state[a.Plane][c.pageIndex(a)]
}

// ContentAt returns the stored token of a page (for verification).
func (c *Chip) ContentAt(a PPA) Token {
	c.geo.checkPPA(a)
	return c.content[a.Plane][c.pageIndex(a)]
}

// EraseCount returns the P/E cycle count of a block.
func (c *Chip) EraseCount(plane, block int) int {
	c.geo.checkPPA(PPA{Plane: plane, Block: block})
	return c.eraseCount[plane][block]
}

// checkMultiPlane validates a multi-plane address vector: non-empty,
// distinct planes, within geometry.
func (c *Chip) checkMultiPlane(ppas []PPA) {
	if len(ppas) == 0 || len(ppas) > c.geo.Planes {
		panic(fmt.Sprintf("flash %s: multi-plane op with %d addresses", c.name, len(ppas)))
	}
	seen := 0
	for _, a := range ppas {
		c.geo.checkPPA(a)
		bit := 1 << a.Plane
		if seen&bit != 0 {
			panic(fmt.Sprintf("flash %s: duplicate plane %d in multi-plane op", c.name, a.Plane))
		}
		seen |= bit
	}
}

// Read performs a (multi-plane) page read: after tR the addressed pages'
// contents sit in their planes' page registers and done runs. The die is
// busy for the duration.
func (c *Chip) Read(ppas []PPA, done func()) {
	c.checkMultiPlane(ppas)
	for _, a := range ppas {
		if c.state[a.Plane][c.pageIndex(a)] != PageProgrammed {
			panic(fmt.Sprintf("flash %s: read of unprogrammed page %v", c.name, a))
		}
	}
	addrs := append([]PPA(nil), ppas...)
	c.die.AcquireLabeled("read", func() {
		// The retry ladder extends the die-busy window: re-senses hold the
		// array exactly like the first sense does on real NAND.
		c.eng.Schedule(c.timing.Read+c.readFaultPenalty(len(addrs)), func() {
			for _, a := range addrs {
				c.pageReg[a.Plane] = c.content[a.Plane][c.pageIndex(a)]
			}
			c.reads++
			c.die.Release()
			if done != nil {
				done()
			}
		})
	})
}

// readFaultPenalty draws the transient-ECC outcome for each page of a
// read and returns the extra die time the worst page costs. A faulted
// page climbs the read-retry ladder — retry k re-senses at tR plus
// k*ReadRetryStep (modelling shifted-Vref sensing) — and if the ladder is
// exhausted the page relays through the controller's strong ECC engine
// for StrongECCLatency. Planes sense in parallel, so the slowest page
// bounds the multi-plane operation.
func (c *Chip) readFaultPenalty(pages int) sim.Time {
	if c.faults == nil || c.faults.Rate(fault.ReadECC) <= 0 {
		return 0
	}
	cfg := c.faults.Config()
	ras := c.faults.RAS()
	var worst sim.Time
	for p := 0; p < pages; p++ {
		if !c.faults.DrawFor(fault.ReadECC, c.faultKey) {
			continue
		}
		ras.ReadFaults++
		var pen sim.Time
		retries := 0
		recovered := false
		for retries < cfg.ReadRetryMax {
			retries++
			pen += c.timing.Read + sim.Time(retries)*cfg.ReadRetryStep
			if !c.faults.DrawFor(fault.ReadECC, c.faultKey) {
				recovered = true
				break
			}
		}
		ras.ReadRetries += int64(retries)
		ras.RetryLadder.Add(retries)
		if !recovered {
			ras.ReadRelays++
			pen += cfg.StrongECCLatency
		}
		if pen > worst {
			worst = pen
		}
	}
	return worst
}

// ProgramOp names a target page and the token to program into it.
type ProgramOp struct {
	Addr  PPA
	Token Token
}

// Program performs a (multi-plane) page program from supplied tokens. The
// target pages must be erased. NAND's program-in-order rule within a block
// is enforced by the FTL allocator, which hands out pages sequentially;
// the chip itself tolerates out-of-order arrival because multi-path
// fabrics (Omnibus adaptive routing, the mesh) can reorder in-flight
// programs that were issued in order.
func (c *Chip) Program(ops []ProgramOp, done func()) {
	ppas := make([]PPA, len(ops))
	for i, op := range ops {
		ppas[i] = op.Addr
	}
	c.checkMultiPlane(ppas)
	for _, op := range ops {
		a := op.Addr
		if c.state[a.Plane][c.pageIndex(a)] != PageErased {
			panic(fmt.Sprintf("flash %s: program of non-erased page %v", c.name, a))
		}
	}
	writes := append([]ProgramOp(nil), ops...)
	// State is committed at issue time so a read queued behind this program
	// on the die validates against the state it will observe at grant.
	for _, op := range writes {
		c.nextPage[op.Addr.Plane][op.Addr.Block]++
		c.state[op.Addr.Plane][c.pageIndex(op.Addr)] = PageProgrammed
	}
	c.die.AcquireLabeled("program", func() {
		c.eng.Schedule(c.timing.Program, func() {
			for _, op := range writes {
				c.content[op.Addr.Plane][c.pageIndex(op.Addr)] = op.Token
			}
			c.programs++
			c.die.Release()
			if done != nil {
				done()
			}
		})
	})
}

// ProgramFromVPage programs a V-page register's content into the array —
// the commit step of a flash-to-flash copy (OpVCommit). The register is
// freed when the program completes.
func (c *Chip) ProgramFromVPage(reg int, addr PPA, done func()) {
	c.checkVReg(reg)
	if !c.vpageInUse[reg] {
		panic(fmt.Sprintf("flash %s: VCommit from empty V-page register %d", c.name, reg))
	}
	token := c.vpage[reg]
	c.Program([]ProgramOp{{Addr: addr, Token: token}}, func() {
		c.vpageInUse[reg] = false
		if done != nil {
			done()
		}
	})
}

// Erase erases one block per addressed plane (multi-plane erase). All
// pages return to the erased state and the block's P/E count increments.
func (c *Chip) Erase(blocks []PPA, done func()) {
	for i := range blocks {
		blocks[i].Page = 0
	}
	c.checkMultiPlane(blocks)
	targets := append([]PPA(nil), blocks...)
	c.die.AcquireLabeled("erase", func() {
		c.eng.Schedule(c.timing.Erase, func() {
			for _, a := range targets {
				base := a.Block * c.geo.PagesPerBlock
				for p := 0; p < c.geo.PagesPerBlock; p++ {
					c.state[a.Plane][base+p] = PageErased
					c.content[a.Plane][base+p] = ErasedToken
				}
				c.nextPage[a.Plane][a.Block] = 0
				c.eraseCount[a.Plane][a.Block]++
			}
			c.erases++
			c.die.Release()
			if done != nil {
				done()
			}
		})
	})
}

// PageRegister returns the content of a plane's page register.
func (c *Chip) PageRegister(plane int) Token {
	if plane < 0 || plane >= c.geo.Planes {
		panic(fmt.Sprintf("flash %s: plane %d out of range", c.name, plane))
	}
	return c.pageReg[plane]
}

// SetPageRegister loads a plane's page register, modelling payload arrival
// from the channel ahead of a program.
func (c *Chip) SetPageRegister(plane int, t Token) {
	if plane < 0 || plane >= c.geo.Planes {
		panic(fmt.Sprintf("flash %s: plane %d out of range", c.name, plane))
	}
	c.pageReg[plane] = t
}

func (c *Chip) checkVReg(reg int) {
	if reg < 0 || reg >= len(c.vpage) {
		panic(fmt.Sprintf("flash %s: V-page register %d out of range", c.name, reg))
	}
}

// AcquireVPage claims a free V-page register, returning its index or -1
// when both are held — the buffer-status check the Omnibus control plane
// performs before granting a v-channel transfer (Fig 11).
func (c *Chip) AcquireVPage() int {
	for i, used := range c.vpageInUse {
		if !used {
			c.vpageInUse[i] = true
			return i
		}
	}
	return -1
}

// VPageFree reports whether any V-page register is free.
func (c *Chip) VPageFree() bool {
	for _, used := range c.vpageInUse {
		if !used {
			return true
		}
	}
	return false
}

// SetVPage stores payload arriving over a v-channel into a claimed V-page
// register.
func (c *Chip) SetVPage(reg int, t Token) {
	c.checkVReg(reg)
	if !c.vpageInUse[reg] {
		panic(fmt.Sprintf("flash %s: store into unclaimed V-page register %d", c.name, reg))
	}
	c.vpage[reg] = t
}

// VPage returns a V-page register's content.
func (c *Chip) VPage(reg int) Token {
	c.checkVReg(reg)
	return c.vpage[reg]
}

// ReleaseVPage frees a claimed register without committing it (abort path).
func (c *Chip) ReleaseVPage(reg int) {
	c.checkVReg(reg)
	if !c.vpageInUse[reg] {
		panic(fmt.Sprintf("flash %s: release of unclaimed V-page register %d", c.name, reg))
	}
	c.vpageInUse[reg] = false
}

// InstallPage instantly programs a page with no simulated time, for
// warming up device state before a measured run. It bypasses the die and
// must not be called once simulation I/O is in flight.
func (c *Chip) InstallPage(a PPA, t Token) {
	c.geo.checkPPA(a)
	if c.state[a.Plane][c.pageIndex(a)] != PageErased {
		panic(fmt.Sprintf("flash %s: install over programmed page %v", c.name, a))
	}
	c.state[a.Plane][c.pageIndex(a)] = PageProgrammed
	c.content[a.Plane][c.pageIndex(a)] = t
	c.nextPage[a.Plane][a.Block]++
}

// Address converts a PPA to the on-wire packet address.
func (c *Chip) Address(a PPA) packet.Address {
	return packet.Address{Column: 0, Row: c.geo.PackRow(a)}
}
