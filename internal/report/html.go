package report

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// HTMLSeries is one windowed time series to render as a sparkline.
type HTMLSeries struct {
	Name   string
	Unit   string
	Values []float64
}

// HTMLMark is a named instant drawn as a vertical rule across every
// sparkline of its run; two or more marks additionally shade the band
// between the earliest and latest (the rebuild window, in the array
// report).
type HTMLMark struct {
	Name string
	AtUs float64
}

// HTMLPhase is one latency-attribution phase of a request kind.
type HTMLPhase struct {
	Name   string
	Count  int64
	Share  float64 // fraction of the kind's summed latency
	MeanUs float64
	P99Us  float64
}

// HTMLPhaseGroup is the per-phase decomposition of one request kind,
// rendered as a stacked share bar plus a detail table.
type HTMLPhaseGroup struct {
	Kind   string
	Phases []HTMLPhase
}

// HTMLRun is one run section of the report: headline metadata, the
// windowed series, event marks, and the latency-attribution groups.
type HTMLRun struct {
	Title    string
	Meta     [][2]string
	WindowUs float64
	Series   []HTMLSeries
	Marks    []HTMLMark
	Phases   []HTMLPhaseGroup
}

// Geometry and palette of the inline SVG charts.
const (
	svgW    = 680.0
	sparkH  = 96.0
	sparkPT = 14.0 // top padding leaves room for the label row
	sparkPB = 4.0
	sparkPX = 4.0
	barH    = 26.0
)

var phasePalette = []string{"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#b07aa1"}

// WriteHTML renders the runs as one fully self-contained HTML document:
// inline CSS, inline SVG, zero external assets or links, so the file
// can be archived next to the CSV output and opened years later with no
// network access. Charts are sparklines (one per series, sharing the
// run's time axis and mark rules) and stacked per-phase share bars.
func WriteHTML(w io.Writer, title string, runs []HTMLRun) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + reportCSS + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	for i := range runs {
		writeRun(&b, &runs[i])
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

const reportCSS = `body{font-family:sans-serif;margin:24px;max-width:760px;color:#222}
h1{font-size:1.4em}h2{font-size:1.15em;margin-top:1.6em}h3{font-size:.95em;margin-bottom:.2em}
table{border-collapse:collapse;font-size:.85em;margin:.4em 0}
td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}
th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}
dl{display:grid;grid-template-columns:max-content auto;gap:2px 12px;font-size:.85em}
dt{font-weight:bold}dd{margin:0}
svg{display:block;margin:2px 0 10px}
.legend{font-size:.8em;margin:.2em 0 .8em}
.legend span{display:inline-block;margin-right:14px}
.swatch{display:inline-block;width:10px;height:10px;margin-right:4px;vertical-align:baseline}
`

func writeRun(b *strings.Builder, r *HTMLRun) {
	fmt.Fprintf(b, "<section>\n<h2>%s</h2>\n", html.EscapeString(r.Title))
	if len(r.Meta) > 0 {
		b.WriteString("<dl>\n")
		for _, kv := range r.Meta {
			fmt.Fprintf(b, "<dt>%s</dt><dd>%s</dd>\n",
				html.EscapeString(kv[0]), html.EscapeString(kv[1]))
		}
		b.WriteString("</dl>\n")
	}
	for _, s := range r.Series {
		writeSparkline(b, s, r.WindowUs, r.Marks)
	}
	for _, g := range r.Phases {
		writePhaseGroup(b, g)
	}
	b.WriteString("</section>\n")
}

// sparkBounds picks a y range that keeps a flat series visible.
func sparkBounds(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi++
		if lo > 0 {
			lo = 0
		}
	}
	return lo, hi
}

func writeSparkline(b *strings.Builder, s HTMLSeries, windowUs float64, marks []HTMLMark) {
	n := len(s.Values)
	if n == 0 {
		return
	}
	lo, hi := sparkBounds(s.Values)
	spanUs := float64(n) * windowUs
	x := func(us float64) float64 {
		if spanUs <= 0 {
			return sparkPX
		}
		return sparkPX + (svgW-2*sparkPX)*us/spanUs
	}
	y := func(v float64) float64 {
		return sparkH - sparkPB - (sparkH-sparkPT-sparkPB)*(v-lo)/(hi-lo)
	}

	fmt.Fprintf(b, "<h3>%s <small>(%s; min %s, max %s)</small></h3>\n",
		html.EscapeString(s.Name), html.EscapeString(s.Unit), numStr(lo), numStr(hi))
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n",
		svgW, sparkH, svgW, sparkH)

	// Shaded band between the outermost marks (e.g. the rebuild window),
	// then one dashed rule per mark.
	if len(marks) >= 2 {
		first, last := marks[0].AtUs, marks[0].AtUs
		for _, m := range marks[1:] {
			if m.AtUs < first {
				first = m.AtUs
			}
			if m.AtUs > last {
				last = m.AtUs
			}
		}
		fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"#e15759\" fill-opacity=\"0.10\"/>\n",
			x(first), sparkPT, x(last)-x(first), sparkH-sparkPT-sparkPB)
	}
	for _, m := range marks {
		fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#e15759\" stroke-dasharray=\"3 2\"><title>%s</title></line>\n",
			x(m.AtUs), sparkPT, x(m.AtUs), sparkH-sparkPB, html.EscapeString(m.Name))
	}

	var pts strings.Builder
	for i, v := range s.Values {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x((float64(i)+0.5)*windowUs), y(v))
	}
	fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"#4e79a7\" stroke-width=\"1.5\"/>\n", pts.String())
	b.WriteString("</svg>\n")
}

func writePhaseGroup(b *strings.Builder, g HTMLPhaseGroup) {
	if len(g.Phases) == 0 {
		return
	}
	fmt.Fprintf(b, "<h3>%s latency by phase</h3>\n", html.EscapeString(g.Kind))

	// Stacked share bar: each phase's width is its share of the kind's
	// summed latency.
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n",
		svgW, barH, svgW, barH)
	pos := 0.0
	for i, p := range g.Phases {
		w := svgW * p.Share
		fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"0\" width=\"%.1f\" height=\"%.0f\" fill=\"%s\"><title>%s %.1f%%</title></rect>\n",
			pos, w, barH, phasePalette[i%len(phasePalette)], html.EscapeString(p.Name), p.Share*100)
		pos += w
	}
	b.WriteString("</svg>\n<div class=\"legend\">")
	for i, p := range g.Phases {
		fmt.Fprintf(b, "<span><span class=\"swatch\" style=\"background:%s\"></span>%s %.1f%%</span>",
			phasePalette[i%len(phasePalette)], html.EscapeString(p.Name), p.Share*100)
	}
	b.WriteString("</div>\n")

	b.WriteString("<table>\n<tr><th>phase</th><th>count</th><th>mean us</th><th>p99 us</th><th>share</th></tr>\n")
	for _, p := range g.Phases {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%.1f%%</td></tr>\n",
			html.EscapeString(p.Name), p.Count, numStr(p.MeanUs), numStr(p.P99Us), p.Share*100)
	}
	b.WriteString("</table>\n")
}

// numStr formats a chart number compactly.
func numStr(v float64) string {
	switch {
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.2g", v)
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
