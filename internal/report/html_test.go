package report

import (
	"strings"
	"testing"
)

func sampleRun() HTMLRun {
	return HTMLRun{
		Title:    "pnSSD+split rebuilding",
		Meta:     [][2]string{{"arch", "pnSSD+split"}, {"requests", "400"}},
		WindowUs: 500,
		Series: []HTMLSeries{
			{Name: "lat_p99", Unit: "us", Values: []float64{100, 220, 410, 180}},
			{Name: "rebuild", Unit: "pages", Values: []float64{0, 12, 30, 0}},
		},
		Marks: []HTMLMark{
			{Name: "rebuild-detect", AtUs: 600},
			{Name: "rebuild-complete", AtUs: 1400},
		},
		Phases: []HTMLPhaseGroup{{
			Kind: "read",
			Phases: []HTMLPhase{
				{Name: "sq-wait", Count: 190, Share: 0.02, MeanUs: 1, P99Us: 4},
				{Name: "flash", Count: 190, Share: 0.98, MeanUs: 80, P99Us: 300},
			},
		}},
	}
}

// TestWriteHTMLSelfContained is the archival guarantee: the document
// embeds everything (CSS, SVG) and references nothing — no URLs, no
// scripts, one file forever.
func TestWriteHTMLSelfContained(t *testing.T) {
	var b strings.Builder
	if err := WriteHTML(&b, "run report", []HTMLRun{sampleRun()}); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if strings.Contains(doc, "http") {
		t.Fatal("document references an external URL scheme")
	}
	if strings.Contains(doc, "<script") {
		t.Fatal("document embeds script")
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "<style>", "<svg", "<polyline",
		"lat_p99", "rebuild-detect", "sq-wait",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("document misses %q", want)
		}
	}
	// Two marks shade the band between them: exactly one translucent rect
	// per sparkline (2 series) plus the two phase-bar rects.
	if got := strings.Count(doc, "fill-opacity"); got != 2 {
		t.Fatalf("%d shaded mark bands, want 2 (one per sparkline)", got)
	}
	if got := strings.Count(doc, "<svg"); got != 3 {
		t.Fatalf("%d svg elements, want 3 (2 sparklines + 1 phase bar)", got)
	}
}

// TestWriteHTMLEscapesContent: user-controlled strings (titles, series
// and phase names from workload/tenant names) must not inject markup.
func TestWriteHTMLEscapesContent(t *testing.T) {
	run := sampleRun()
	run.Title = `<img src=x onerror=alert(1)>`
	run.Series[0].Name = `qdepth:<b>evil</b>`
	run.Marks[0].Name = `"quoted"`
	var b strings.Builder
	if err := WriteHTML(&b, `<script>title</script>`, []HTMLRun{run}); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	for _, banned := range []string{"<img", "<b>evil</b>", "<script>title"} {
		if strings.Contains(doc, banned) {
			t.Fatalf("unescaped markup %q leaked into the document", banned)
		}
	}
	if !strings.Contains(doc, "&lt;b&gt;evil&lt;/b&gt;") {
		t.Fatal("series name not escaped-and-kept")
	}
}

// TestWriteHTMLDegenerateSeries: empty and flat series must render (or
// skip) without dividing by zero.
func TestWriteHTMLDegenerateSeries(t *testing.T) {
	run := HTMLRun{
		Title:    "degenerate",
		WindowUs: 500,
		Series: []HTMLSeries{
			{Name: "empty", Unit: "us", Values: nil},
			{Name: "flat", Unit: "us", Values: []float64{5, 5, 5}},
			{Name: "zero", Unit: "us", Values: []float64{0, 0}},
			{Name: "single", Unit: "us", Values: []float64{7}},
		},
	}
	var b strings.Builder
	if err := WriteHTML(&b, "x", []HTMLRun{run}); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if strings.Contains(doc, "empty") {
		t.Fatal("empty series rendered a chart")
	}
	for _, want := range []string{"flat", "zero", "single"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("series %q missing", want)
		}
	}
	if strings.Contains(doc, "NaN") || strings.Contains(doc, "Inf") {
		t.Fatal("degenerate series produced non-finite coordinates")
	}
}

// TestWriteHTMLPhaseShares: the stacked bar's segment widths follow
// the shares and the legend lists every phase.
func TestWriteHTMLPhaseShares(t *testing.T) {
	var b strings.Builder
	if err := WriteHTML(&b, "x", []HTMLRun{sampleRun()}); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	// share 0.98 of the 680-wide bar = 666.4.
	if !strings.Contains(doc, `width="666.4"`) {
		t.Fatal("flash segment width does not follow its share")
	}
	if got := strings.Count(doc, "class=\"swatch\""); got != 2 {
		t.Fatalf("%d legend swatches, want 2", got)
	}
}
