// Package report renders experiment results as aligned ASCII tables and
// CSV, the output format of cmd/experiments and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; short rows are padded.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values. Per RFC 4180, cells
// containing commas, quotes, or line breaks (LF or CR) are quoted, with
// embedded quotes doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n\r") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// X formats a ratio as "N.NNx".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Pct formats a fraction as a signed percentage ("+82.3%").
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// Heat renders a utilization row (values in [0,1]) as a compact heat
// string using shade characters — the textual form of the Fig 3 heatmap.
func Heat(row []float64) string {
	shades := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range row {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		idx := int(v * float64(len(shades)-1))
		b.WriteRune(shades[idx])
	}
	return b.String()
}

// RASTable renders the reliability counters of one run as a two-column
// table, skipping classes that never fired so healthy runs stay terse.
func RASTable(title string, r *stats.RAS) *Table {
	t := New(title, "counter", "value")
	if r == nil {
		t.Add("fault injection", "off")
		return t
	}
	for _, row := range r.Rows() {
		if row[1] == "0" || row[1] == "(empty)" {
			continue
		}
		t.Add(row[0], row[1])
	}
	if len(t.Rows) == 0 {
		t.Add("faults", "none fired")
	}
	return t
}
