package report

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
	// All data lines should have the value column starting at the same
	// offset.
	idx := strings.Index(lines[1], "value")
	for _, l := range []string{lines[3], lines[4]} {
		if len(l) < idx {
			t.Fatalf("row %q shorter than header alignment", l)
		}
	}
	if !strings.Contains(lines[4], "longer-name  22") {
		t.Fatalf("row misaligned: %q", lines[4])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Add("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("row lost")
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := New("", "name", "note")
	tb.Add("x", `has "quotes", and comma`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quotes"", and comma"`) {
		t.Fatalf("CSV quoting wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Fatalf("CSV header wrong: %s", csv)
	}
}

// TestCSVQuotesLineBreaks pins the RFC 4180 rule that cells containing any
// line break — LF, CR, or CRLF — must be quoted, and that plain cells are
// left bare. encoding/csv must round-trip the output unchanged.
func TestCSVQuotesLineBreaks(t *testing.T) {
	tb := New("", "name", "note")
	tb.Add("lf", "two\nlines")
	tb.Add("cr", "carriage\rreturn")
	tb.Add("crlf", "windows\r\nbreak")
	tb.Add("plain", "no special chars")
	out := tb.CSV()
	for _, want := range []string{"\"two\nlines\"", "\"carriage\rreturn\"", "\"windows\r\nbreak\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV lost line-break quoting, want %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "plain,no special chars\n") {
		t.Fatalf("plain cell needlessly quoted:\n%s", out)
	}
	rd := csv.NewReader(strings.NewReader(out))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv cannot parse our output: %v\n%s", err, out)
	}
	if len(recs) != 5 {
		t.Fatalf("parsed %d records, want 5", len(recs))
	}
	if recs[1][1] != "two\nlines" {
		t.Fatalf("LF cell round-tripped to %q", recs[1][1])
	}
	// encoding/csv normalizes \r\n inside quoted cells to \n (RFC 4180
	// line-ending folding), so only check the CR made it in some form.
	if !strings.Contains(recs[2][1], "carriage") || !strings.Contains(recs[3][1], "windows") {
		t.Fatalf("CR cells mangled: %q %q", recs[2][1], recs[3][1])
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.234) != "1.23" || F1(1.25) != "1.2" {
		t.Fatal("float formatters wrong")
	}
	if X(2.5) != "2.50x" {
		t.Fatalf("X = %q", X(2.5))
	}
	if Pct(0.823) != "+82.3%" || Pct(-0.1) != "-10.0%" {
		t.Fatalf("Pct wrong: %q %q", Pct(0.823), Pct(-0.1))
	}
}

func TestHeat(t *testing.T) {
	h := Heat([]float64{0, 0.5, 1.0, -1, 2})
	if len([]rune(h)) != 5 {
		t.Fatalf("heat length = %d", len(h))
	}
	runes := []rune(h)
	if runes[0] != ' ' || runes[2] != '@' || runes[3] != ' ' || runes[4] != '@' {
		t.Fatalf("heat = %q", h)
	}
}
