package exp

import (
	"io"

	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TracedRun replays one named workload trace on a GC-configured device
// with the tracing subsystem enabled, then writes the Chrome trace-event
// JSON to traceW and the machine-readable run summary to summaryW (either
// may be nil to skip that export). It returns the host metrics so callers
// can cross-check the summary. This is the engine behind the -trace /
// -metrics-json flags of cmd/experiments and the CI trace smoke step.
func TracedRun(opt Options, arch ssd.Arch, mode ftl.GCMode, traceName string, traceW, summaryW io.Writer) (*stats.IOMetrics, error) {
	opt = opt.withDefaults()
	cfg := gcCfg(opt)
	cfg.FTL.GCMode = mode
	cfg.FTL.Policy = ftl.PCWD
	cfg.Trace = &trace.Config{}
	cfg.Telemetry = &telemetry.Config{}
	s := ssd.New(arch, cfg)
	warm(s, opt.ChurnFraction, opt.Seed)
	tr, err := workload.Named(traceName, s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
	if err != nil {
		return nil, err
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	if traceW != nil {
		s.InjectTelemetryCounters()
		if err := s.Tracer.ExportChrome(traceW); err != nil {
			return nil, err
		}
	}
	if summaryW != nil {
		if err := s.WriteSummaryJSON(summaryW); err != nil {
			return nil, err
		}
	}
	return s.Metrics(), nil
}
