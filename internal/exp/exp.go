// Package exp contains one runner per table and figure of the paper's
// evaluation (Sec VII), plus the motivation figures. Each runner builds
// fresh SSDs, drives the workload the paper describes, and returns typed
// rows; cmd/experiments renders them as tables and bench_test.go wraps
// them as benchmarks.
//
// Runs use ssd.ScaledConfig: the Table II organization (8 channels × 8
// ways × 4 planes, 16 KB pages, ULL timing, 1000 MT/s bus) with fewer
// blocks per plane so whole-device experiments complete in seconds. The
// interconnect behaviour under study is unaffected; see EXPERIMENTS.md.
package exp

import (
	"math"
	"math/rand"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options tunes experiment scale. Zero values select defaults.
type Options struct {
	// Cfg is the device configuration; defaults to ssd.ScaledConfig().
	Cfg *ssd.Config
	// TraceRequests is the request count per trace replay (default 2000).
	TraceRequests int
	// SyntheticRequests is the request count per closed-loop run
	// (default 300).
	SyntheticRequests int
	// ChurnFraction controls warm-up overwrites before GC experiments,
	// as a fraction of the logical space (default 0.5).
	ChurnFraction float64
	// GCUtilization is the logical utilization used for GC experiments
	// (default 0.75). GC runs need an absolutely larger free pool than the
	// no-GC runs: the scaled geometry has few blocks per plane, so the
	// default 87.5% utilization leaves so few erased blocks that a single
	// collection round's destination allocations plus a write burst
	// exhaust them and writes stall — an artifact of scaling, not of the
	// architectures under study.
	GCUtilization float64
	// Seed makes every run deterministic (default 1).
	Seed int64
	// Traces overrides the trace list (default workload.Names()).
	Traces []string
}

func (o Options) withDefaults() Options {
	if o.Cfg == nil {
		c := ssd.ScaledConfig()
		o.Cfg = &c
	}
	if o.TraceRequests == 0 {
		o.TraceRequests = 2000
	}
	if o.SyntheticRequests == 0 {
		o.SyntheticRequests = 300
	}
	if o.ChurnFraction == 0 {
		o.ChurnFraction = 0.5
	}
	if o.GCUtilization == 0 {
		o.GCUtilization = 0.75
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Traces == nil {
		o.Traces = workload.Names()
	}
	return o
}

// Quick returns options small enough for unit tests and -short benches.
func Quick() Options {
	c := ssd.ScaledConfig()
	c.Geometry.BlocksPerPlane = 8
	c.Geometry.PagesPerBlock = 16
	return Options{
		Cfg:               &c,
		TraceRequests:     400,
		SyntheticRequests: 80,
		Seed:              1,
		Traces:            []string{"exchange-1", "rocksdb-0", "mail-0"},
	}
}

// build constructs an SSD with the given architecture and GC mode.
func build(arch ssd.Arch, cfg ssd.Config, mode ftl.GCMode, policy ftl.AllocPolicy) *ssd.SSD {
	cfg.FTL.GCMode = mode
	cfg.FTL.Policy = policy
	return ssd.New(arch, cfg)
}

// warm installs the full logical footprint; churn then instantly
// overwrites churnFrac of it (bounded by the free headroom) so blocks
// carry the invalid pages GC experiments need.
func warm(s *ssd.SSD, churnFrac float64, seed int64) {
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	if churnFrac <= 0 {
		return
	}
	headroom := s.Config.RawPages() - foot
	churn := int64(float64(foot) * churnFrac)
	// Churn consumes free pages one-for-one; cap it at half the headroom
	// so the device enters the measured run with a working free pool —
	// GC needs erased blocks for copy destinations and the host keeps
	// writing while rounds are in flight.
	if limit := headroom / 2; churn > limit {
		churn = limit
	}
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < churn; i++ {
		lpn := rng.Int63n(foot)
		s.FTL.Reinstall(lpn, ftl.TokenFor(lpn, 1))
	}
}

// replayTrace replays a named trace on a fresh SSD and returns the host
// metrics and FTL stats.
func replayTrace(arch ssd.Arch, cfg ssd.Config, mode ftl.GCMode, trace string, n int, churn float64, seed int64) (*stats.IOMetrics, ftl.Stats) {
	s := build(arch, cfg, mode, ftl.PCWD)
	warm(s, churn, seed)
	tr, err := workload.Named(trace, s.Config.LogicalPages(), n, seed)
	if err != nil {
		panic(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	return s.Metrics(), s.FTL.Stats()
}

// runClosedLoop drives a synthetic pattern with a fixed outstanding depth.
func runClosedLoop(arch ssd.Arch, cfg ssd.Config, policy ftl.AllocPolicy, p workload.Pattern, outstanding, total int, seed int64) *stats.IOMetrics {
	s := build(arch, cfg, ftl.GCNone, policy)
	warm(s, 0, seed)
	gen := workload.Synthetic(p, s.Config.LogicalPages(), 4, seed) // 64 KB requests
	s.Host.RunClosedLoop(gen, outstanding, total)
	s.Run()
	return s.Metrics()
}

// gcCfg returns the device configuration for GC experiments: the base
// config at the (lower) GC utilization so the free pool is large enough,
// in absolute blocks, for collection and host writes to proceed
// concurrently at the scaled-down geometry.
func gcCfg(opt Options) ssd.Config {
	cfg := *opt.Cfg
	cfg.LogicalUtilization = opt.GCUtilization
	return cfg
}

// forceContinuousGC re-triggers collection for the whole run so I/O always
// contends with GC (the Fig 18 setup: "GC is performed while I/Os are
// being serviced").
func forceContinuousGC(s *ssd.SSD) {
	var retrigger func()
	retrigger = func() {
		if s.Host.InFlight() == 0 {
			return // workload drained; let the run end
		}
		if !s.FTL.GCActive() {
			s.FTL.TriggerGC(func() {
				s.Engine.Schedule(10*sim.Microsecond, retrigger)
			})
			return
		}
		s.Engine.Schedule(10*sim.Microsecond, retrigger)
	}
	s.Engine.Schedule(sim.Microsecond, retrigger)
}

// improvement converts a latency pair into the paper's "I/O performance
// improvement" metric: base latency / new latency - 1.
func improvement(base, other sim.Time) float64 {
	if other == 0 {
		return 0
	}
	return float64(base)/float64(other) - 1
}

// speedup is base/other.
func speedup(base, other sim.Time) float64 {
	if other == 0 {
		return 0
	}
	return float64(base) / float64(other)
}

// geomean returns the geometric mean of positive values; zero for empty.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(vs)))
}
