package exp

import (
	"testing"

	"repro/internal/ssd"
)

// TestSchedSweepUnderChecker runs the scheduling study's headline matrix
// with the invariant checker attached — including the new reservation
// ledger and reorder-window rules, so any scheduler bug panics the run —
// and asserts the structural shape the sched figure depends on.
func TestSchedSweepUnderChecker(t *testing.T) {
	opt := checkedOpts()
	rows := SchedSweep(opt)
	if want := 3 * 3 * 2; len(rows) != want { // archs x policies x GC modes
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	seen := map[string]bool{}
	var conflictDeferred, oooReordered int64
	for _, r := range rows {
		label := r.Point.Label()
		if seen[label] {
			t.Fatalf("%s appears twice", label)
		}
		seen[label] = true
		if r.Mean <= 0 || r.P99 < r.Mean/2 || r.KIOPS <= 0 || r.BWMBps <= 0 {
			t.Errorf("%s: implausible metrics mean=%v p99=%v kiops=%.1f bw=%.1f",
				label, r.Mean, r.P99, r.KIOPS, r.BWMBps)
		}
		if r.GCCopied == 0 {
			t.Errorf("%s: the GC-pressure workload never copied a page", label)
		}
		switch r.Point.Sched {
		case "fifo":
			if r.Deferred != 0 || r.Reordered != 0 {
				t.Errorf("%s: fifo reported scheduler activity %d/%d", label, r.Deferred, r.Reordered)
			}
		case "conflict":
			conflictDeferred += r.Deferred
		case "ooo":
			oooReordered += r.Reordered
		}
	}
	if !seen[SchedPoint{Arch: ssd.ArchPnSSDSplit, Sched: "conflict", SpGC: true}.Label()] {
		t.Fatal("matrix is missing the pnSSD(+split)/conflict/SpGC cell")
	}
	if conflictDeferred == 0 {
		t.Error("conflict policy never deferred a path across the whole matrix")
	}
	if oooReordered == 0 {
		t.Error("ooo policy never reordered across the whole matrix")
	}
}

// TestSchedNoisyUnderChecker runs the noisy-neighbor half of the study
// under the checker and pins its shape: both tenants report tails in
// every cell, and the fifo cells stay scheduler-inert.
func TestSchedNoisyUnderChecker(t *testing.T) {
	opt := checkedOpts()
	rows := SchedNoisy(opt)
	if want := 2 * 3; len(rows) != want { // {pSSD, pnSSD+split} x policies
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		label := r.Point.Label()
		if !r.Point.SpGC {
			t.Fatalf("%s: noisy study must run SpGC", label)
		}
		if r.LatencyP99 <= 0 || r.LatencyP999 < r.LatencyP99 || r.NoisyP99 <= 0 {
			t.Errorf("%s: implausible tails p99=%v p99.9=%v noisy=%v",
				label, r.LatencyP99, r.LatencyP999, r.NoisyP99)
		}
		if r.Point.Sched == "fifo" && (r.Deferred != 0 || r.Reordered != 0) {
			t.Errorf("%s: fifo reported scheduler activity", label)
		}
	}
}
