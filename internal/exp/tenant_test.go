package exp

import (
	"testing"

	"repro/internal/host"
	"repro/internal/ssd"
)

// TestTenantSweepUnderChecker runs the noisy-neighbor study with the
// invariant checker attached (s.Run panics on any violation, including
// the tenant ledger and arbiter-fairness rules) and asserts the
// structural shape the tenant figure depends on.
func TestTenantSweepUnderChecker(t *testing.T) {
	rows := TenantSweep(checkedOpts())
	want := 2 * len(host.ArbiterNames()) * 2 // archs x arbiters x SpGC
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		label := r.Point.Label()
		if seen[label] {
			t.Fatalf("%s appears twice", label)
		}
		seen[label] = true
		if len(r.Tenants) != 2 {
			t.Fatalf("%s: %d tenants, want 2", label, len(r.Tenants))
		}
		lat, noisy := r.Tenants[0], r.Tenants[1]
		if lat.Name != "latency" || noisy.Name != "noisy" {
			t.Fatalf("%s: tenant names %q/%q", label, lat.Name, noisy.Name)
		}
		for _, tn := range r.Tenants {
			if tn.Requests != int64(checkedOpts().TraceRequests) {
				t.Errorf("%s/%s: %d requests completed", label, tn.Name, tn.Requests)
			}
			if !(tn.P50 <= tn.P95 && tn.P95 <= tn.P99 && tn.P99 <= tn.P999) {
				t.Errorf("%s/%s: percentiles not monotone: %v %v %v %v",
					label, tn.Name, tn.P50, tn.P95, tn.P99, tn.P999)
			}
			if tn.Mean <= 0 || tn.KIOPS <= 0 {
				t.Errorf("%s/%s: mean %v, KIOPS %.1f", label, tn.Name, tn.Mean, tn.KIOPS)
			}
		}
		// Only the latency tenant has SLOs; the noisy one can never violate.
		if noisy.SLOViolations != 0 {
			t.Errorf("%s: noisy tenant reports %d SLO violations with no SLO set", label, noisy.SLOViolations)
		}
	}
	if !seen[TenantPoint{Arch: ssd.ArchPnSSDSplit, Arbiter: host.ArbDWRR, SpGC: true}.Label()] {
		t.Fatal("matrix is missing the pnSSD(+split)/dwrr/SpGC cell")
	}
}
