package exp

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// GCConfig pairs an architecture with a GC algorithm.
type GCConfig struct {
	Arch ssd.Arch
	Mode ftl.GCMode
}

// Label renders "pnSSD(SpGC)"-style names matching the paper's legends.
func (c GCConfig) Label() string {
	mode := map[ftl.GCMode]string{
		ftl.GCParallel:   "PaGC",
		ftl.GCPreemptive: "Preemptive",
		ftl.GCSpatial:    "SpGC",
	}[c.Mode]
	return fmt.Sprintf("%s(%s)", c.Arch, mode)
}

// Fig18Configs is the configuration set of Fig 18: the PaGC baseline and
// spatial GC applied across the architecture ladder.
var Fig18Configs = []GCConfig{
	{ssd.ArchBase, ftl.GCParallel},
	{ssd.ArchBase, ftl.GCSpatial},
	{ssd.ArchPSSD, ftl.GCSpatial},
	{ssd.ArchPnSSD, ftl.GCSpatial},
	{ssd.ArchPnSSDSplit, ftl.GCSpatial},
}

// Fig18Row is the synthetic GC-interference result for one configuration.
type Fig18Row struct {
	Config           GCConfig
	ReadLatency      sim.Time
	WriteLatency     sim.Time
	ReadImprovement  float64 // vs base+PaGC
	WriteImprovement float64
}

// Fig18 reproduces the synthetic interference study: random 64 KB reads
// (and separately writes) run closed-loop while garbage collection is
// continuously re-triggered, so every I/O contends with GC page copies.
// Spatial GC on pnSSD isolates GC onto the GC group's v-channels and
// shows the large gains the paper reports; on baseSSD the shared bus
// limits the benefit.
func Fig18(opt Options) []Fig18Row {
	opt = opt.withDefaults()
	cfg := gcCfg(opt)
	run := func(c GCConfig, p workload.Pattern) sim.Time {
		s := build(c.Arch, cfg, c.Mode, ftl.PCWD)
		warm(s, opt.ChurnFraction, opt.Seed)
		gen := workload.Synthetic(p, s.Config.LogicalPages(), 4, opt.Seed)
		s.Host.RunClosedLoop(gen, 16, opt.SyntheticRequests)
		forceContinuousGC(s)
		s.Run()
		return s.Metrics().MeanLatency()
	}
	// Two independent runs (read, write) per configuration.
	lats := runner.MapDefault(len(Fig18Configs)*2, func(i int) sim.Time {
		c := Fig18Configs[i/2]
		p := workload.RandRead
		if i%2 == 1 {
			p = workload.RandWrite
		}
		return run(c, p)
	})
	rows := make([]Fig18Row, len(Fig18Configs))
	for i, c := range Fig18Configs {
		rows[i] = Fig18Row{
			Config:       c,
			ReadLatency:  lats[2*i],
			WriteLatency: lats[2*i+1],
		}
	}
	for i := range rows {
		rows[i].ReadImprovement = improvement(rows[0].ReadLatency, rows[i].ReadLatency)
		rows[i].WriteImprovement = improvement(rows[0].WriteLatency, rows[i].WriteLatency)
	}
	return rows
}

// Fig19Configs is the architecture × GC-algorithm matrix of Fig 19.
var Fig19Configs = []GCConfig{
	{ssd.ArchBase, ftl.GCParallel},
	{ssd.ArchBase, ftl.GCPreemptive},
	{ssd.ArchBase, ftl.GCSpatial},
	{ssd.ArchPSSD, ftl.GCParallel},
	{ssd.ArchPSSD, ftl.GCPreemptive},
	{ssd.ArchPSSD, ftl.GCSpatial},
	{ssd.ArchPnSSDSplit, ftl.GCParallel},
	{ssd.ArchPnSSDSplit, ftl.GCPreemptive},
	{ssd.ArchPnSSDSplit, ftl.GCSpatial},
}

// Fig19Row holds per-trace latency for every configuration, with GC
// running under natural write pressure (the device is warmed past its GC
// threshold, so collection overlaps the whole replay).
type Fig19Row struct {
	Trace       string
	Latency     map[string]sim.Time // by GCConfig.Label()
	Improvement map[string]float64  // vs base+PaGC
	GCStats     map[string]ftl.Stats
}

// Fig19 reproduces the trace-driven GC comparison of Fig 19.
func Fig19(opt Options) []Fig19Row {
	opt = opt.withDefaults()
	type point struct {
		lat sim.Time
		st  ftl.Stats
	}
	nc := len(Fig19Configs)
	pts := runner.MapDefault(len(opt.Traces)*nc, func(i int) point {
		trace, c := opt.Traces[i/nc], Fig19Configs[i%nc]
		m, st := replayTrace(c.Arch, gcCfg(opt), c.Mode, trace, opt.TraceRequests, opt.ChurnFraction, opt.Seed)
		return point{lat: m.MeanLatency(), st: st}
	})
	rows := make([]Fig19Row, 0, len(opt.Traces))
	for ti, trace := range opt.Traces {
		row := Fig19Row{
			Trace:       trace,
			Latency:     make(map[string]sim.Time),
			Improvement: make(map[string]float64),
			GCStats:     make(map[string]ftl.Stats),
		}
		for ci, c := range Fig19Configs {
			row.Latency[c.Label()] = pts[ti*nc+ci].lat
			row.GCStats[c.Label()] = pts[ti*nc+ci].st
		}
		baseLabel := Fig19Configs[0].Label()
		for _, c := range Fig19Configs {
			row.Improvement[c.Label()] = improvement(row.Latency[baseLabel], row.Latency[c.Label()])
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig20aConfigs compares tail latency across the GC story's endpoints.
var Fig20aConfigs = []GCConfig{
	{ssd.ArchBase, ftl.GCParallel},
	{ssd.ArchBase, ftl.GCSpatial},
	{ssd.ArchPSSD, ftl.GCSpatial},
	{ssd.ArchPnSSDSplit, ftl.GCSpatial},
}

// Fig20aRow is the tail-latency distribution for one configuration on the
// RocksDB trace.
type Fig20aRow struct {
	Config GCConfig
	P50    sim.Time
	P90    sim.Time
	P99    sim.Time
	P999   sim.Time
	Max    sim.Time
	CDF    []stats.CDFPoint
}

// Fig20a reproduces the tail-latency comparison on the rocksdb-0 trace
// with GC active (the paper reports an 18.7x p99 reduction for
// pnSSD(SpGC) over the baseline).
func Fig20a(opt Options) []Fig20aRow {
	opt = opt.withDefaults()
	return runner.MapDefault(len(Fig20aConfigs), func(i int) Fig20aRow {
		c := Fig20aConfigs[i]
		s := build(c.Arch, gcCfg(opt), c.Mode, ftl.PCWD)
		warm(s, opt.ChurnFraction, opt.Seed)
		tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		h := s.Metrics().Combined()
		return Fig20aRow{
			Config: c,
			P50:    h.Percentile(50),
			P90:    h.Percentile(90),
			P99:    h.Percentile(99),
			P999:   h.Percentile(99.9),
			Max:    h.Max(),
			CDF:    h.CDF(),
		}
	})
}

// Fig20bRow is the mean GC elapsed time for one configuration across all
// traces.
type Fig20bRow struct {
	Config      GCConfig
	MeanGCTime  sim.Time
	Rounds      int64
	PagesCopied int64
}

// Fig20b reproduces the GC execution time comparison: average elapsed
// time per GC round across the trace suite. Direct flash-to-flash copies
// halve the number of channel transfers, and the spatial split halves
// bus contention for the copies themselves.
func Fig20b(opt Options) []Fig20bRow {
	opt = opt.withDefaults()
	nt := len(opt.Traces)
	sts := runner.MapDefault(len(Fig20aConfigs)*nt, func(i int) ftl.Stats {
		c, trace := Fig20aConfigs[i/nt], opt.Traces[i%nt]
		_, st := replayTrace(c.Arch, gcCfg(opt), c.Mode, trace, opt.TraceRequests, opt.ChurnFraction, opt.Seed)
		return st
	})
	rows := make([]Fig20bRow, len(Fig20aConfigs))
	for i, c := range Fig20aConfigs {
		rows[i].Config = c
		var total sim.Time
		var rounds, pages int64
		for ti := 0; ti < nt; ti++ {
			st := sts[i*nt+ti]
			total += st.GCTotalTime
			rounds += st.GCRounds
			pages += st.GCPagesCopied
		}
		if rounds > 0 {
			rows[i].MeanGCTime = total / sim.Time(rounds)
		}
		rows[i].Rounds = rounds
		rows[i].PagesCopied = pages
	}
	return rows
}
