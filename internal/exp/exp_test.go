package exp

import (
	"testing"

	"repro/internal/ssd"
)

func TestFig1Trend(t *testing.T) {
	chip, busTrend := Fig1()
	if len(chip) < 8 || len(busTrend) < 6 {
		t.Fatal("trend series too short")
	}
	// Chip bandwidth must grow roughly an order of magnitude per ~5 years
	// faster than the bus trend over the same span.
	chipGrowth := chip[len(chip)-1].MBps / chip[0].MBps
	busGrowth := busTrend[len(busTrend)-1].MBps / busTrend[0].MBps
	if chipGrowth < 10 {
		t.Fatalf("chip bandwidth growth %.1fx too small", chipGrowth)
	}
	if busGrowth > chipGrowth {
		t.Fatal("bus grew faster than chips — motivation inverted")
	}
}

func TestFig6Timing(t *testing.T) {
	res := Fig6(ssd.DefaultConfig())
	if len(res.Conventional) != 3 || len(res.Packetized) != 3 {
		t.Fatal("phase counts wrong")
	}
	if res.PktTotal >= res.ConvTotal {
		t.Fatalf("packetized read %v not faster than conventional %v", res.PktTotal, res.ConvTotal)
	}
	// The saving comes from the data phase: ~2x on the readout.
	ratio := float64(res.Conventional[2].Dur) / float64(res.Packetized[2].Dur)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("readout phase ratio %.2f, want ~2", ratio)
	}
}

func TestFig8Overhead(t *testing.T) {
	res := Fig8()
	if res.ControlHeaderOverhead != 0.25 || res.DataHeaderOverhead != 0.5 {
		t.Fatal("header overheads do not match the paper")
	}
	if res.ControlPacketFlits != 8 {
		t.Fatalf("control packet = %d flits", res.ControlPacketFlits)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Overhead > 0.001 {
		t.Fatalf("64KB payload overhead %.5f not negligible", last.Overhead)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Overhead >= res.Rows[i-1].Overhead {
			t.Fatal("overhead not decreasing with payload size")
		}
	}
}

func TestTableIAndIII(t *testing.T) {
	rows := TableI()
	if len(rows) != 11 {
		t.Fatalf("Table I has %d rows, want 11", len(rows))
	}
	pins := 0
	for _, r := range rows {
		pins += r.Pins
	}
	if pins != 18 {
		t.Fatalf("Table I pin total = %d, want 18", pins)
	}
	if len(TableIII()) != 6 {
		t.Fatal("Table III must list 6 architectures")
	}
}

func TestFig3Imbalance(t *testing.T) {
	res := Fig3(Quick())
	if len(res.ReadRows) != 8 || len(res.WriteRows) != 8 {
		t.Fatalf("expected 8 channel rows, got %d/%d", len(res.ReadRows), len(res.WriteRows))
	}
	// The paper's point: reads are imbalanced, writes are balanced.
	if res.ReadImbalance <= res.WriteImbalance {
		t.Fatalf("read imbalance %.2f not above write imbalance %.2f",
			res.ReadImbalance, res.WriteImbalance)
	}
}

func TestFig4BandwidthSweep(t *testing.T) {
	res := Fig4(Quick())
	if len(res) == 0 {
		t.Fatal("no rows")
	}
	var sum float64
	for _, row := range res {
		if row.Speedup[1.0] != 1.0 {
			t.Fatalf("%s: self speedup %.2f != 1", row.Trace, row.Speedup[1.0])
		}
		if row.Speedup[2.0] < 1.0 {
			t.Fatalf("%s: 2x bandwidth slowed things down (%.2f)", row.Trace, row.Speedup[2.0])
		}
		sum += row.Speedup[2.0]
	}
	mean := sum / float64(len(res))
	// The paper reports +85% on average at 2x; accept a broad band around
	// a meaningful gain.
	if mean < 1.2 {
		t.Fatalf("mean 2x speedup %.2f too small — channel not the bottleneck in model", mean)
	}
}

func TestFig14Ordering(t *testing.T) {
	rows := Fig14(Quick())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mean := MeanImprovement(rows)
	t.Logf("mean improvement: base=%.2f pin=%.2f free=%.2f pssd=%.2f pn=%.2f split=%.2f",
		mean[ssd.ArchBase], mean[ssd.ArchNoSSDPin], mean[ssd.ArchNoSSDFree],
		mean[ssd.ArchPSSD], mean[ssd.ArchPnSSD], mean[ssd.ArchPnSSDSplit])
	// Headline orderings of Figs 14-15.
	if !(mean[ssd.ArchPSSD] > 0.2) {
		t.Fatalf("pSSD improvement %.2f too small", mean[ssd.ArchPSSD])
	}
	if !(mean[ssd.ArchPnSSDSplit] > mean[ssd.ArchPnSSD]) {
		t.Fatal("split does not beat plain pnSSD")
	}
	if !(mean[ssd.ArchNoSSDPin] < 0) {
		t.Fatal("pin-constrained NoSSD should degrade performance")
	}
	if !(mean[ssd.ArchPnSSDSplit] > mean[ssd.ArchNoSSDFree]) {
		t.Fatal("pnSSD(+split) should beat unconstrained NoSSD")
	}
	// Fig 15: throughput ordering mirrors latency.
	for _, row := range rows {
		if row.KIOPS[ssd.ArchPnSSDSplit] < row.KIOPS[ssd.ArchNoSSDPin] {
			t.Fatalf("%s: split KIOPS below NoSSD(pin)", row.Trace)
		}
	}
}

func TestFig16PCWDShape(t *testing.T) {
	opt := Quick()
	rows := Fig16(opt)
	// 4 patterns x 6 archs
	if len(rows) != 24 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Points) != 7 {
			t.Fatalf("%v/%v: %d points", row.Pattern, row.Arch, len(row.Points))
		}
		// Latency must not decrease as outstanding I/O grows (queueing).
		for i := 1; i < len(row.Points); i++ {
			if row.Points[i].Latency < row.Points[i-1].Latency/2 {
				t.Fatalf("%v/%v: latency collapsed with more load", row.Pattern, row.Arch)
			}
		}
	}
}

func TestFig17PWCDSplitWins(t *testing.T) {
	opt := Quick()
	rows := Fig17(opt)
	// Under PWCD imbalance at high load, pnSSD(+split) must beat baseSSD
	// on random reads.
	find := func(arch ssd.Arch) Fig16Row {
		for _, r := range rows {
			if r.Arch == arch && r.Pattern.String() == "rand-read" {
				return r
			}
		}
		t.Fatal("row missing")
		return Fig16Row{}
	}
	split := find(ssd.ArchPnSSDSplit)
	base := find(ssd.ArchBase)
	lastSplit := split.Points[len(split.Points)-1].Latency
	lastBase := base.Points[len(base.Points)-1].Latency
	if lastSplit >= lastBase {
		t.Fatalf("PWCD rand-read @64: split %v not faster than base %v", lastSplit, lastBase)
	}
}

func TestFig18SpatialGCWins(t *testing.T) {
	rows := Fig18(Quick())
	if len(rows) != len(Fig18Configs) {
		t.Fatal("row count")
	}
	byLabel := map[string]Fig18Row{}
	for _, r := range rows {
		byLabel[r.Config.Label()] = r
	}
	pn := byLabel["pnSSD(SpGC)"]
	baseSp := byLabel["baseSSD(SpGC)"]
	t.Logf("read improvements: baseSp=%.2f pssd=%.2f pn=%.2f split=%.2f",
		baseSp.ReadImprovement, byLabel["pSSD(SpGC)"].ReadImprovement,
		pn.ReadImprovement, byLabel["pnSSD(+split)(SpGC)"].ReadImprovement)
	// pnSSD+SpGC must improve substantially over base+PaGC and beat
	// base+SpGC (shared channels limit the baseline's benefit).
	if pn.ReadImprovement < 0.5 {
		t.Fatalf("pnSSD SpGC read improvement %.2f too small", pn.ReadImprovement)
	}
	if pn.ReadImprovement <= baseSp.ReadImprovement {
		t.Fatal("pnSSD SpGC does not beat base SpGC on reads")
	}
	if pn.WriteImprovement <= 0 {
		t.Fatalf("pnSSD SpGC write improvement %.2f not positive", pn.WriteImprovement)
	}
}

func TestFig19SpGCBeatsBaseline(t *testing.T) {
	opt := Quick()
	opt.Traces = []string{"rocksdb-1"}
	rows := Fig19(opt)
	if len(rows) != 1 {
		t.Fatal("row count")
	}
	row := rows[0]
	pnSp := row.Improvement["pnSSD(+split)(SpGC)"]
	basePa := row.Improvement["baseSSD(PaGC)"]
	t.Logf("improvements: %v", row.Improvement)
	if basePa != 0 {
		t.Fatal("baseline improvement must be zero")
	}
	if pnSp <= 0.5 {
		t.Fatalf("pnSSD(+split) SpGC improvement %.2f too small vs base PaGC", pnSp)
	}
	// SpGC on pnSSD must beat PaGC on pnSSD (isolation matters, not just
	// bandwidth).
	if row.Improvement["pnSSD(+split)(SpGC)"] <= row.Improvement["pnSSD(+split)(PaGC)"] {
		t.Fatal("SpGC does not beat PaGC on the same fabric")
	}
}

func TestFig20aTail(t *testing.T) {
	opt := Quick()
	rows := Fig20a(opt)
	if len(rows) != len(Fig20aConfigs) {
		t.Fatal("row count")
	}
	base := rows[0]
	pn := rows[len(rows)-1]
	t.Logf("p99: base=%v pn=%v", base.P99, pn.P99)
	if pn.P99 >= base.P99 {
		t.Fatalf("pnSSD p99 %v not below base p99 %v", pn.P99, base.P99)
	}
	for _, r := range rows {
		if !(r.P50 <= r.P90 && r.P90 <= r.P99 && r.P99 <= r.P999 && r.P999 <= r.Max) {
			t.Fatalf("%s: percentiles not monotone", r.Config.Label())
		}
		if len(r.CDF) == 0 {
			t.Fatalf("%s: empty CDF", r.Config.Label())
		}
	}
}

func TestFig20bGCTime(t *testing.T) {
	opt := Quick()
	opt.Traces = []string{"rocksdb-1"}
	rows := Fig20b(opt)
	byLabel := map[string]Fig20bRow{}
	for _, r := range rows {
		byLabel[r.Config.Label()] = r
	}
	base := byLabel["baseSSD(PaGC)"]
	pn := byLabel["pnSSD(+split)(SpGC)"]
	if base.Rounds == 0 || pn.Rounds == 0 {
		t.Fatalf("no GC rounds recorded: base=%d pn=%d", base.Rounds, pn.Rounds)
	}
	t.Logf("GC time: base=%v pn=%v", base.MeanGCTime, pn.MeanGCTime)
	if pn.PagesCopied == 0 {
		t.Fatal("pnSSD copied nothing")
	}
}

func TestPnSSDLessPolicySensitiveThanBase(t *testing.T) {
	// Sec VII-B: "pnSSD performance is less sensitive to the access
	// pattern (or page allocation scheme) because of its ability to
	// load-balance." Compare each architecture's rand-read degradation
	// when switching the allocator from PCWD to the imbalanced PWCD.
	opt := Quick()
	latency := func(rows []Fig16Row, arch ssd.Arch) float64 {
		for _, r := range rows {
			if r.Arch == arch && r.Pattern.String() == "rand-read" {
				return float64(r.Points[len(r.Points)-1].Latency)
			}
		}
		t.Fatal("row missing")
		return 0
	}
	pcwd := Fig16(opt)
	pwcd := Fig17(opt)
	baseSens := latency(pwcd, ssd.ArchBase) / latency(pcwd, ssd.ArchBase)
	pnSens := latency(pwcd, ssd.ArchPnSSD) / latency(pcwd, ssd.ArchPnSSD)
	t.Logf("PWCD/PCWD rand-read@64: base %.3f, pnSSD %.3f", baseSens, pnSens)
	if pnSens > baseSens*1.15 {
		t.Fatalf("pnSSD more policy-sensitive (%.3f) than baseSSD (%.3f)", pnSens, baseSens)
	}
}
