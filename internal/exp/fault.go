package exp

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FaultSweepRow is one (architecture, fault rate) point of the
// degraded-mode sweep.
type FaultSweepRow struct {
	Arch       ssd.Arch
	ReadECC    float64 // transient read-ECC fail rate
	Latency    sim.Time
	P99        sim.Time
	KIOPS      float64
	RAS        *stats.RAS
	Consistent bool // ftl.CheckConsistency after the faulted run
	Completed  bool // every request of the trace finished
}

// FaultSweep replays a GC-heavy trace on every architecture at
// increasing transient read-ECC rates while forcing at least two program
// failures and one erase failure per chip — the graceful-degradation
// acceptance run. Every row must complete its trace and pass the FTL
// consistency check; the RAS counters quantify the recovery work.
func FaultSweep(opt Options) []FaultSweepRow {
	opt = opt.withDefaults()
	rates := []float64{0, 0.005, 0.01}
	return runner.MapDefault(len(ssd.Archs)*len(rates), func(i int) FaultSweepRow {
		arch, rate := ssd.Archs[i/len(rates)], rates[i%len(rates)]
		cfg := gcCfg(opt)
		cfg.FTL.GCMode = ftl.GCParallel
		cfg.Fault = &fault.Config{
			Seed:                uint64(opt.Seed),
			ReadECCRate:         rate,
			OnDieECCRate:        rate,
			ProgramFailsPerChip: 2,
			EraseFailsPerChip:   1,
		}
		s := ssd.New(arch, cfg)
		warm(s, opt.ChurnFraction, opt.Seed)
		tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		completed := s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		return FaultSweepRow{
			Arch:       arch,
			ReadECC:    rate,
			Latency:    m.MeanLatency(),
			P99:        m.Combined().P99(),
			KIOPS:      m.KIOPS(),
			RAS:        s.RAS(),
			Consistent: s.FTL.CheckConsistency() == nil,
			Completed:  *completed == len(tr.Requests),
		}
	})
}

// DegradedRow is one interconnect-degradation scenario on pnSSD+split.
type DegradedRow struct {
	Name       string
	Latency    sim.Time
	P99        sim.Time
	KIOPS      float64
	Delta      float64 // KIOPS relative to the healthy baseline - 1
	RAS        *stats.RAS
	Consistent bool
	Completed  bool
}

// DegradedSweep measures pnSSD+split with SpGC under interconnect
// faults: a lossy control plane (grant drops resolved by timeout/retry/
// failover) and each v-channel killed in turn, which forces degraded-mode
// routing — reads return over the row's h-channel and SpGC copies relay
// through the controller. Throughput must degrade, never deadlock.
func DegradedSweep(opt Options) []DegradedRow {
	opt = opt.withDefaults()

	run := func(name string, fc fault.Config) DegradedRow {
		cfg := gcCfg(opt)
		cfg.FTL.GCMode = ftl.GCSpatial
		fc.Seed = uint64(opt.Seed)
		cfg.Fault = &fc
		s := ssd.New(ssd.ArchPnSSDSplit, cfg)
		warm(s, opt.ChurnFraction, opt.Seed)
		tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		completed := s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		return DegradedRow{
			Name:       name,
			Latency:    m.MeanLatency(),
			P99:        m.Combined().P99(),
			KIOPS:      m.KIOPS(),
			RAS:        s.RAS(),
			Consistent: s.FTL.CheckConsistency() == nil,
			Completed:  *completed == len(tr.Requests),
		}
	}

	type scenario struct {
		name string
		fc   fault.Config
	}
	scenarios := []scenario{
		{"healthy baseline", fault.Config{}},
		{"grant drop 10%", fault.Config{GrantDropRate: 0.1}},
	}
	numV := opt.Cfg.Channels
	if opt.Cfg.Ways < numV {
		numV = opt.Cfg.Ways
	}
	for v := 0; v < numV; v++ {
		scenarios = append(scenarios, scenario{fmt.Sprintf("v-channel %d dead", v),
			fault.Config{DeadVChannels: []int{v}}})
	}
	rows := runner.MapDefault(len(scenarios), func(i int) DegradedRow {
		return run(scenarios[i].name, scenarios[i].fc)
	})
	base := rows[0].KIOPS
	for i := range rows {
		if base > 0 {
			rows[i].Delta = rows[i].KIOPS/base - 1
		}
	}
	return rows
}
