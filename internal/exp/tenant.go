package exp

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TenantPoint is one cell of the noisy-neighbor study: an architecture,
// a queue arbiter, and whether Spatial GC isolates collection traffic.
type TenantPoint struct {
	Arch    ssd.Arch
	Arbiter string
	SpGC    bool
}

// Label renders "pnSSD(+split)/dwrr/SpGC"-style cell names.
func (p TenantPoint) Label() string {
	gc := "PaGC"
	if p.SpGC {
		gc = "SpGC"
	}
	return fmt.Sprintf("%s/%s/%s", p.Arch, p.Arbiter, gc)
}

// TenantSweepPoints is the full matrix: both packetized architectures,
// every arbiter, SpGC on and off.
func TenantSweepPoints() []TenantPoint {
	var pts []TenantPoint
	for _, arch := range []ssd.Arch{ssd.ArchPSSD, ssd.ArchPnSSDSplit} {
		for _, arb := range host.ArbiterNames() {
			for _, spgc := range []bool{false, true} {
				pts = append(pts, TenantPoint{Arch: arch, Arbiter: arb, SpGC: spgc})
			}
		}
	}
	return pts
}

// TenantResult is one tenant's outcome at one sweep point.
type TenantResult struct {
	Name          string
	Requests      int64
	Mean          sim.Time
	P50           sim.Time
	P95           sim.Time
	P99           sim.Time
	P999          sim.Time
	KIOPS         float64
	SLOViolations int64
}

// TenantRow is one sweep point with its per-tenant results.
type TenantRow struct {
	Point   TenantPoint
	Tenants []TenantResult
}

// NoisyNeighborSpecs is the two-tenant workload of the sweep: a
// latency-sensitive read tenant (web serving, weight 4, 300 us read
// SLO) beside a bursty write-heavy neighbor (bulk updates at double
// intensity in 500 us-on / 1.5 ms-off phases, weight 1, burst-capped
// at 4 consecutive grants under dwrr). Footprints are partitioned, so
// interference flows only through shared queues, buses, and GC.
func NoisyNeighborSpecs(requests int) []workload.TenantSpec {
	return []workload.TenantSpec{
		{
			Name: "latency", Preset: "web-0", Requests: requests,
			Weight: 4, ReadSLO: 300 * sim.Microsecond, WriteSLO: 800 * sim.Microsecond,
		},
		{
			Name: "noisy", Preset: "update-0", Requests: requests,
			Intensity: 2, On: 500 * sim.Microsecond, Off: 1500 * sim.Microsecond,
			Weight: 1, Burst: 4,
		},
	}
}

// TenantSweep runs the noisy-neighbor interference study: the two
// NoisyNeighborSpecs tenants replay through a 16-deep multi-queue front
// end at every TenantSweepPoints cell, under natural GC pressure (the
// device is churned past its threshold before the run, like Fig 19).
// The per-tenant p99/p99.9 and SLO-violation columns show how much of
// the noisy tenant's burst latency each arbiter (and GC isolation)
// keeps away from the latency-sensitive tenant.
func TenantSweep(opt Options) []TenantRow {
	opt = opt.withDefaults()
	pts := TenantSweepPoints()
	return runner.MapDefault(len(pts), func(i int) TenantRow {
		return runTenantPoint(pts[i], opt)
	})
}

func runTenantPoint(p TenantPoint, opt Options) TenantRow {
	mode := ftl.GCParallel
	if p.SpGC {
		mode = ftl.GCSpatial
	}
	cfg := gcCfg(opt)
	specs := NoisyNeighborSpecs(opt.TraceRequests)
	cfg.Frontend = &host.FrontendConfig{
		Tenants:     workload.QueueConfigs(specs),
		Arbiter:     p.Arbiter,
		MaxInflight: 16,
	}
	cfg.FTL.GCMode = mode
	cfg.FTL.Policy = ftl.PCWD
	s := ssd.New(p.Arch, cfg)
	warm(s, opt.ChurnFraction, opt.Seed)
	tr, err := workload.GenerateTenants(specs, s.Config.LogicalPages(), opt.Seed)
	if err != nil {
		panic(err)
	}
	completed, err := s.Frontend.Replay(tr.Requests)
	if err != nil {
		panic(err)
	}
	s.Run()
	if *completed != len(tr.Requests) {
		panic(fmt.Sprintf("tenant sweep %s: completed %d of %d requests", p.Label(), *completed, len(tr.Requests)))
	}
	row := TenantRow{Point: p}
	for _, tm := range s.Frontend.Metrics().Tenants {
		h := tm.Combined()
		row.Tenants = append(row.Tenants, TenantResult{
			Name:          tm.Name,
			Requests:      tm.TotalRequests(),
			Mean:          h.Mean(),
			P50:           h.Percentile(50),
			P95:           h.Percentile(95),
			P99:           h.Percentile(99),
			P999:          h.Percentile(99.9),
			KIOPS:         tm.KIOPS(),
			SLOViolations: tm.SLOViolations(),
		})
	}
	return row
}
