package exp

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// The ablations quantify the design choices the paper makes or discusses:
// how the packetized bandwidth is partitioned between the h and v
// dimensions, whether the adaptive path choice matters, how sensitive the
// control plane is to SoC latency, how large the GC group should be
// (Sec VI-A discusses 1/4 vs 1/2), and how the Omnibus organization
// scales to non-square grids (Sec V-E).

// AblationRow is one configuration's result.
type AblationRow struct {
	Name    string
	Latency sim.Time
	P99     sim.Time
	Detail  string
}

// pnSSDTraceRun builds a pnSSD variant via mk, replays a trace, and
// returns metrics.
func pnSSDTraceRun(opt Options, trace string, churn float64, mode ftl.GCMode,
	mk func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric) (*ssd.SSD, AblationRow) {
	cfg := *opt.Cfg
	if mode != ftl.GCNone {
		cfg = gcCfg(opt)
	}
	cfg.FTL.GCMode = mode
	s := ssd.NewCustom(ssd.ArchPnSSD, cfg, mk)
	warm(s, churn, opt.Seed)
	tr, err := workload.Named(trace, s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
	if err != nil {
		panic(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	m := s.Metrics()
	return s, AblationRow{Latency: m.MeanLatency(), P99: m.Combined().P99()}
}

// AblationVWidth sweeps the v-channel width while holding the h-channel
// at 8 bits: how much of the packetized bandwidth budget should the
// vertical dimension get?
func AblationVWidth(opt Options) []AblationRow {
	opt = opt.withDefaults()
	widths := []int{2, 4, 8, 16}
	return runner.MapDefault(len(widths), func(i int) AblationRow {
		vBits := widths[i]
		_, row := pnSSDTraceRun(opt, "exchange-1", 0, ftl.GCNone,
			func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric {
				return controller.NewOmnibusFabricAsym(eng, "pnssd", grid, soc, pageSize, 8, vBits, opt.Cfg.BusMTps, false)
			})
		row.Name = fmt.Sprintf("v-width %d bits", vBits)
		row.Detail = "h fixed at 8 bits, exchange-1, no GC"
		return row
	})
}

// AblationRouting compares h-only routing, greedy adaptive, and
// adaptive+split on the imbalanced trace.
func AblationRouting(opt Options) []AblationRow {
	opt = opt.withDefaults()
	type variant struct {
		name  string
		split bool
		route controller.RoutePolicy
	}
	variants := []variant{
		{"h-only (no path diversity)", false, controller.RouteHOnly},
		{"greedy (paper)", false, controller.RouteGreedy},
		{"greedy + split (paper)", true, controller.RouteGreedy},
		{"join-shortest-queue (future work)", false, controller.RouteJSQ},
		{"JSQ + split", true, controller.RouteJSQ},
	}
	return runner.MapDefault(len(variants), func(i int) AblationRow {
		v := variants[i]
		_, row := pnSSDTraceRun(opt, "search-0", 0, ftl.GCNone,
			func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric {
				f := controller.NewOmnibusFabric(eng, "pnssd", grid, soc, pageSize, 8, opt.Cfg.BusMTps, v.split)
				f.SetRoutePolicy(v.route)
				return f
			})
		row.Name = v.name
		row.Detail = "search-0 (extreme read skew), no GC"
		return row
	})
}

// AblationEccFallback sweeps the on-die ECC failure rate of direct
// flash-to-flash copies (the hybrid-ECC design of Sec VIII): every
// flagged page re-routes through the controller's strong LDPC, eroding
// the isolation SpGC buys.
func AblationEccFallback(opt Options) []AblationRow {
	opt = opt.withDefaults()
	rates := []float64{0, 0.01, 0.1, 0.5, 1.0}
	return runner.MapDefault(len(rates), func(i int) AblationRow {
		rate := rates[i]
		var fab *controller.OmnibusFabric
		cfg := gcCfg(opt)
		cfg.FTL.GCMode = ftl.GCSpatial
		s := ssd.NewCustom(ssd.ArchPnSSD, cfg,
			func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric {
				fab = controller.NewOmnibusFabric(eng, "pnssd", grid, soc, pageSize, 8, opt.Cfg.BusMTps, false)
				fab.SetOnDieEccFailRate(rate)
				return fab
			})
		warm(s, opt.ChurnFraction, opt.Seed)
		tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		return AblationRow{
			Name:    fmt.Sprintf("on-die ECC fail %.0f%%", rate*100),
			Latency: m.MeanLatency(),
			P99:     m.Combined().P99(),
			Detail:  fmt.Sprintf("rocksdb-0 + SpGC, %d copies relayed for strong ECC", fab.EccFallbacks()),
		}
	})
}

// AblationCtrlLatency sweeps the control-plane message latency: how slow
// can the controller-to-controller request/grant path get before the
// v-channel stops paying off?
func AblationCtrlLatency(opt Options) []AblationRow {
	opt = opt.withDefaults()
	lats := []sim.Time{0, 100 * sim.Nanosecond, 500 * sim.Nanosecond, 2 * sim.Microsecond, 10 * sim.Microsecond}
	return runner.MapDefault(len(lats), func(i int) AblationRow {
		d := lats[i]
		_, row := pnSSDTraceRun(opt, "exchange-1", 0, ftl.GCNone,
			func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric {
				soc.SetCtrlMsgLatency(d)
				return controller.NewOmnibusFabric(eng, "pnssd", grid, soc, pageSize, 8, opt.Cfg.BusMTps, true)
			})
		row.Name = fmt.Sprintf("ctrl msg %v", d)
		row.Detail = "exchange-1, adaptive+split"
		return row
	})
}

// AblationGCGroup sweeps the SpGC GC-group fraction (Sec VI-A: a 1/4
// group trades more frequent collection for better read isolation).
func AblationGCGroup(opt Options) []AblationRow {
	opt = opt.withDefaults()
	fracs := []float64{0.25, 0.5, 0.75}
	return runner.MapDefault(len(fracs), func(i int) AblationRow {
		frac := fracs[i]
		cfg := gcCfg(opt)
		cfg.FTL.GCMode = ftl.GCSpatial
		cfg.FTL.GCGroupFraction = frac
		s := build(ssd.ArchPnSSDSplit, cfg, ftl.GCSpatial, ftl.PCWD)
		warm(s, opt.ChurnFraction, opt.Seed)
		tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		st := s.FTL.Stats()
		return AblationRow{
			Name:    fmt.Sprintf("GC group %.0f%%", frac*100),
			Latency: m.MeanLatency(),
			P99:     m.Combined().P99(),
			Detail:  fmt.Sprintf("rocksdb-0, %d GC rounds, %d copies", st.GCRounds, st.GCPagesCopied),
		}
	})
}

// AblationOrganization compares square and non-square Omnibus grids at a
// constant 64-chip budget (Sec V-E scaling).
func AblationOrganization(opt Options) []AblationRow {
	opt = opt.withDefaults()
	orgs := []struct{ ch, ways int }{{4, 16}, {8, 8}, {16, 4}}
	return runner.MapDefault(len(orgs), func(i int) AblationRow {
		org := orgs[i]
		cfg := *opt.Cfg
		cfg.Channels, cfg.Ways = org.ch, org.ways
		s := build(ssd.ArchPnSSDSplit, cfg, ftl.GCNone, ftl.PCWD)
		warm(s, 0, opt.Seed)
		tr, err := workload.Named("exchange-1", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		omni := s.Fabric.(*controller.OmnibusFabric)
		return AblationRow{
			Name:    fmt.Sprintf("%d channels x %d ways", org.ch, org.ways),
			Latency: m.MeanLatency(),
			P99:     m.Combined().P99(),
			Detail:  fmt.Sprintf("%d v-channels, %d columns each", omni.NumVChannels(), omni.ColumnsPerVChannel()),
		}
	})
}

// AblationVictimPolicy compares greedy and cost-benefit victim selection
// under skewed churn: cost-benefit should reclaim at equal or lower copy
// cost by preferring cold, low-valid blocks.
func AblationVictimPolicy(opt Options) []AblationRow {
	opt = opt.withDefaults()
	policies := []ftl.VictimPolicy{ftl.VictimGreedy, ftl.VictimCostBenefit}
	return runner.MapDefault(len(policies), func(i int) AblationRow {
		vp := policies[i]
		cfg := gcCfg(opt)
		cfg.FTL.GCMode = ftl.GCParallel
		cfg.FTL.Victim = vp
		s := build(ssd.ArchPnSSDSplit, cfg, ftl.GCParallel, ftl.PCWD)
		warm(s, 0, opt.Seed)
		// Hot/cold overwrite stream: 90% of writes hit 5% of the space, the
		// regime where age-aware cleaning avoids re-copying hot data. Warm-up
		// churn is skipped so block ages come entirely from the run itself.
		tr := workload.Generate("hotcold", workload.Params{
			ReadRatio:  0.05,
			ZipfS:      1.6,
			HotRegions: 16,
			ReqPages:   2,
			MeanGap:    40 * sim.Microsecond,
			Burst:      4,
		}, s.Config.LogicalPages(), opt.TraceRequests*2, opt.Seed)
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		st := s.FTL.Stats()
		perBlock := 0.0
		if st.GCBlocksErased > 0 {
			perBlock = float64(st.GCPagesCopied) / float64(st.GCBlocksErased)
		}
		return AblationRow{
			Name:    vp.String(),
			Latency: m.MeanLatency(),
			P99:     m.Combined().P99(),
			Detail:  fmt.Sprintf("hot/cold writes + PaGC, %.1f copies per reclaimed block", perBlock),
		}
	})
}
