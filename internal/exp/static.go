package exp

import (
	"repro/internal/bus"
	"repro/internal/onfi"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Fig1Point is one product data point of the motivation figure.
type Fig1Point struct {
	Year  int
	MBps  float64
	Label string
}

// Fig1 returns the flash-chip and flash-bus bandwidth trends of Fig 1.
// The chip series follows the ISSCC products the paper cites (per-chip
// write bandwidth); the bus series follows the ONFi interface generations.
// These are literature constants, not simulation outputs.
func Fig1() (chip, busTrend []Fig1Point) {
	// Per-chip I/O bandwidth (interface rate a single die can drive),
	// which Fig 1(a) shows growing roughly 10x every 5 years.
	chip = []Fig1Point{
		{2006, 2.5, "async SLC, 40 MT/s shared"},
		{2008, 16, "early sync MLC"},
		{2010, 66, "toggle-mode MLC"},
		{2012, 160, "planar TLC"},
		{2014, 333, "V-NAND v2"},
		{2016, 500, "V-NAND v4"},
		{2018, 1200, "1.2 Gb/s IO (Kim/Lee)"},
		{2019, 1200, "512Gb TLC v6 (Kang)"},
		{2020, 1200, "1Tb 4b/cell (Kim)"},
		{2021, 2000, "2.0 Gb/s interface (Cho)"},
	}
	busTrend = []Fig1Point{
		{2006, 40, "async SDR"},
		{2008, 133, "ONFi 2.0"},
		{2010, 200, "ONFi 2.3"},
		{2012, 400, "ONFi 3.x NV-DDR2"},
		{2014, 533, "ONFi 3.2"},
		{2017, 800, "ONFi 4.0 NV-DDR3"},
		{2020, 1200, "ONFi 4.2 NV-DDR4"},
		{2021, 1600, "ONFi 5.0"},
	}
	return chip, busTrend
}

// Fig6Phase is one phase of the read-transaction timing diagram.
type Fig6Phase struct {
	Phase string
	Dur   sim.Time
}

// Fig6Result compares the conventional and packetized read transactions.
type Fig6Result struct {
	Conventional []Fig6Phase
	Packetized   []Fig6Phase
	ConvTotal    sim.Time
	PktTotal     sim.Time
}

// Fig6 reproduces the Fig 6 timing comparison for one 16 KB page read at
// Table II rates: command/address phase, array read (tR), and data
// readout on the channel, for the 8-bit dedicated interface versus the
// 16-bit packetized interface.
func Fig6(cfg ssd.Config) Fig6Result {
	eng := sim.NewEngine()
	dedicated := bus.NewDedicated(cfg.BusMTps)
	pch := bus.NewChannel(eng, "p", 16, cfg.BusMTps)
	pkt := bus.NewPacketized(pch)
	n := cfg.Geometry.PageSize
	tR := cfg.Timing.Read

	conv := []Fig6Phase{
		{"CMD+ADDR (CLE/ALE cycles)", dedicated.ReadCmd()},
		{"tR (array read)", tR},
		{"DQ readout (RE-clocked)", dedicated.ReadXfer(n)},
	}
	pktPhases := []Fig6Phase{
		{"control packet (read)", pkt.ReadCmd()},
		{"tR (array read)", tR},
		{"xfer cmd + data packet", pkt.ReadXfer(n)},
	}
	res := Fig6Result{Conventional: conv, Packetized: pktPhases}
	for _, p := range conv {
		res.ConvTotal += p.Dur
	}
	for _, p := range pktPhases {
		res.PktTotal += p.Dur
	}
	return res
}

// Fig8Row quantifies packetization overhead for one payload size.
type Fig8Row struct {
	PayloadBytes int
	WireFlits    int
	Overhead     float64
}

// Fig8Result is the packet-format overhead analysis.
type Fig8Result struct {
	ControlHeaderOverhead float64 // fraction of header bits reserved
	DataHeaderOverhead    float64
	ControlPacketFlits    int // full read control packet
	Rows                  []Fig8Row
}

// Fig8 reproduces the packet-overhead argument of Fig 8: header bit
// overhead per packet type and total wire overhead versus payload size —
// negligible at the 16-64 KB page sizes flash actually moves.
func Fig8() Fig8Result {
	res := Fig8Result{
		ControlHeaderOverhead: packet.HeaderOverhead(packet.TypeControl),
		DataHeaderOverhead:    packet.HeaderOverhead(packet.TypeData),
		ControlPacketFlits:    packet.ControlFlitsFor(),
	}
	for _, n := range []int{512, 4096, 16384, 65535} {
		res.Rows = append(res.Rows, Fig8Row{
			PayloadBytes: n,
			WireFlits:    packet.DataFlitsFor(n) + packet.ControlFlitsFor(),
			Overhead:     packet.TransferOverhead(n),
		})
	}
	return res
}

// TableIRow describes one ONFi signal.
type TableIRow struct {
	Symbol      string
	Type        string
	Pins        int
	Description string
}

// TableI returns the flash interface signal inventory.
func TableI() []TableIRow {
	order := []onfi.Signal{onfi.CLE, onfi.ALE, onfi.RE, onfi.REc, onfi.WE, onfi.WP, onfi.CE, onfi.RBn, onfi.DQ, onfi.DQS, onfi.DQSc}
	rows := make([]TableIRow, 0, len(order))
	for _, s := range order {
		info := onfi.Signals[s]
		ty := "Data I/O"
		if info.Control {
			ty = "Control"
		}
		rows = append(rows, TableIRow{Symbol: info.Symbol, Type: ty, Pins: info.Pins, Description: info.Description})
	}
	return rows
}

// TableIIRow is one simulation parameter.
type TableIIRow struct {
	Group string
	Value string
}

// TableIII returns the architecture matrix.
func TableIII() [][2]string {
	rows := make([][2]string, 0, len(ssd.Archs))
	for _, a := range ssd.Archs {
		rows = append(rows, [2]string{a.String(), a.Describe()})
	}
	return rows
}
