package exp

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// SchedPoint is one cell of the scheduling study: an architecture, a
// controller scheduling policy, and a GC mode.
type SchedPoint struct {
	Arch  ssd.Arch
	Sched string
	SpGC  bool
}

// Label renders "pSSD/conflict/SpGC"-style cell names.
func (p SchedPoint) Label() string {
	gc := "PaGC"
	if p.SpGC {
		gc = "SpGC"
	}
	return fmt.Sprintf("%s/%s/%s", p.Arch, p.Sched, gc)
}

// SchedSweepPoints is the headline matrix: {pSSD, pnSSD, pnSSD+split} ×
// {fifo, conflict, ooo} × {PaGC, SpGC}. pSSD is the wires-vs-scheduling
// protagonist: if a smarter scheduler over the conventional bus matched
// pnSSD/fifo, the paper's extra interconnect would be unnecessary.
func SchedSweepPoints() []SchedPoint {
	var pts []SchedPoint
	for _, arch := range []ssd.Arch{ssd.ArchPSSD, ssd.ArchPnSSD, ssd.ArchPnSSDSplit} {
		for _, sched := range []string{"fifo", "conflict", "ooo"} {
			for _, spgc := range []bool{false, true} {
				pts = append(pts, SchedPoint{Arch: arch, Sched: sched, SpGC: spgc})
			}
		}
	}
	return pts
}

// SchedRow is one cell's outcome: read latency, throughput, and the
// scheduler's own decision counters.
type SchedRow struct {
	Point     SchedPoint
	Mean      sim.Time
	P99       sim.Time
	KIOPS     float64
	BWMBps    float64
	GCCopied  int64
	Deferred  int64 // conflict: path reservations that had to wait
	Reordered int64 // ooo: out-of-arrival-order picks
}

// SchedSweep replays the GC-pressure workload (rocksdb-0 over a churned
// device, like Fig 19) at every SchedSweepPoints cell and reports
// latency, bandwidth, and scheduler activity — the experiment behind
// "does smarter scheduling over fewer wires close the gap to pnSSD?".
func SchedSweep(opt Options) []SchedRow {
	opt = opt.withDefaults()
	pts := SchedSweepPoints()
	return runner.MapDefault(len(pts), func(i int) SchedRow {
		return runSchedPoint(pts[i], opt)
	})
}

func runSchedPoint(p SchedPoint, opt Options) SchedRow {
	mode := ftl.GCParallel
	if p.SpGC {
		mode = ftl.GCSpatial
	}
	cfg := gcCfg(opt)
	cfg.Scheduler = p.Sched
	cfg.FTL.GCMode = mode
	cfg.FTL.Policy = ftl.PCWD
	s := ssd.New(p.Arch, cfg)
	warm(s, opt.ChurnFraction, opt.Seed)
	tr, err := workload.Named("rocksdb-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
	if err != nil {
		panic(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	m := s.Metrics()
	lat := m.Combined()
	row := SchedRow{
		Point:    p,
		Mean:     lat.Mean(),
		P99:      lat.Percentile(99),
		KIOPS:    m.KIOPS(),
		BWMBps:   m.BandwidthMBps(),
		GCCopied: s.FTL.Stats().GCPagesCopied,
	}
	if s.Sched != nil {
		row.Deferred, row.Reordered, _ = s.Sched.Counts()
	}
	return row
}

// SchedNoisyRow is one cell of the scheduling noisy-neighbor study: the
// latency tenant's tail under a bursty neighbor, per policy.
type SchedNoisyRow struct {
	Point         SchedPoint
	LatencyP99    sim.Time
	LatencyP999   sim.Time
	SLOViolations int64
	NoisyP99      sim.Time
	Deferred      int64
	Reordered     int64
}

// SchedNoisy answers the study's second question — who wins under noisy
// neighbors? The NoisyNeighborSpecs pair replays through a dwrr
// front end with SpGC (the PR 5 winning combination) on pSSD and
// pnSSD+split, crossed with all three scheduling policies; the
// latency-sensitive tenant's p99/p99.9 and SLO misses are the score.
func SchedNoisy(opt Options) []SchedNoisyRow {
	opt = opt.withDefaults()
	var pts []SchedPoint
	for _, arch := range []ssd.Arch{ssd.ArchPSSD, ssd.ArchPnSSDSplit} {
		for _, sched := range []string{"fifo", "conflict", "ooo"} {
			pts = append(pts, SchedPoint{Arch: arch, Sched: sched, SpGC: true})
		}
	}
	return runner.MapDefault(len(pts), func(i int) SchedNoisyRow {
		return runSchedNoisyPoint(pts[i], opt)
	})
}

func runSchedNoisyPoint(p SchedPoint, opt Options) SchedNoisyRow {
	cfg := gcCfg(opt)
	cfg.Scheduler = p.Sched
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.FTL.Policy = ftl.PCWD
	specs := NoisyNeighborSpecs(opt.TraceRequests)
	cfg.Frontend = &host.FrontendConfig{
		Tenants:     workload.QueueConfigs(specs),
		Arbiter:     "dwrr",
		MaxInflight: 16,
	}
	s := ssd.New(p.Arch, cfg)
	warm(s, opt.ChurnFraction, opt.Seed)
	tr, err := workload.GenerateTenants(specs, s.Config.LogicalPages(), opt.Seed)
	if err != nil {
		panic(err)
	}
	completed, err := s.Frontend.Replay(tr.Requests)
	if err != nil {
		panic(err)
	}
	s.Run()
	if *completed != len(tr.Requests) {
		panic(fmt.Sprintf("sched noisy %s: completed %d of %d requests", p.Label(), *completed, len(tr.Requests)))
	}
	row := SchedNoisyRow{Point: p}
	for _, tm := range s.Frontend.Metrics().Tenants {
		h := tm.Combined()
		switch tm.Name {
		case "latency":
			row.LatencyP99 = h.Percentile(99)
			row.LatencyP999 = h.Percentile(99.9)
			row.SLOViolations = tm.SLOViolations()
		case "noisy":
			row.NoisyP99 = h.Percentile(99)
		}
	}
	if s.Sched != nil {
		row.Deferred, row.Reordered, _ = s.Sched.Counts()
	}
	return row
}
