package exp

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// FmmuPoint is one cell of the map-cache study: a mapping mode, the map
// cache capacity in translation-page entries (0 for flat), and the
// workload's spatial skew.
type FmmuPoint struct {
	Mapping string
	Entries int
	Skew    string // "low" (uniform) or "high" (hot translation pages)
}

// Label renders "fmmu-24/high"-style cell names.
func (p FmmuPoint) Label() string {
	if p.Mapping == "flat" {
		return "flat/" + p.Skew
	}
	return fmt.Sprintf("fmmu-%d/%s", p.Entries, p.Skew)
}

// fmmuSkews are the two workload shapes of the study. Low skew reads
// uniformly, so the translation working set is the whole map; high skew
// concentrates reads in a few hot windows, so a handful of translation
// pages serve most lookups. One translation page covers PageSize/8
// LPNs, which is why region-level (not page-level) skew is what moves
// the map hit rate.
func fmmuSkews() map[string]workload.Params {
	return map[string]workload.Params{
		"low": {ReadRatio: 0.6, ZipfS: 0, ReqPages: 4,
			MeanGap: 90 * sim.Microsecond, Burst: 8},
		"high": {ReadRatio: 0.6, ZipfS: 1.4, HotRegions: 8, RegionPages: 64, ReqPages: 4,
			MeanGap: 90 * sim.Microsecond, Burst: 8},
	}
}

// FmmuSweepPoints builds the matrix for the given device configuration:
// per skew, a flat baseline plus fmmu at an eighth of the map, half the
// map, and double the map (effectively infinite — the convergence
// anchor). Sizes scale with the configured geometry so the quick and
// full variants stress the same regimes.
func FmmuSweepPoints(cfg ssd.Config) []FmmuPoint {
	numT := int((cfg.LogicalPages() + int64(cfg.Geometry.PageSize/8) - 1) / int64(cfg.Geometry.PageSize/8))
	sizes := []int{max(1, numT/8), max(2, numT/2), 2 * numT}
	var pts []FmmuPoint
	for _, skew := range []string{"low", "high"} {
		pts = append(pts, FmmuPoint{Mapping: "flat", Skew: skew})
		for _, n := range sizes {
			pts = append(pts, FmmuPoint{Mapping: "fmmu", Entries: n, Skew: skew})
		}
	}
	return pts
}

// FmmuRow is one cell's outcome: end-to-end latency and throughput next
// to the map unit's own counters, so the table shows the causal chain —
// smaller cache, higher miss rate, longer tail.
type FmmuRow struct {
	Point         FmmuPoint
	Mean          sim.Time
	P99           sim.Time
	KIOPS         float64
	MapLookups    int64
	MapMisses     int64
	MissRate      float64
	MapFetches    int64
	MapWritebacks int64
}

// FmmuSweep runs the map-cache-size × workload-skew ablation on
// pnSSD+split with GC active: the on-flash mapping study behind the
// -mapping knob. The flat rows are the no-map-IO baseline; the fmmu
// rows show demand map traffic competing with host IO on the same
// fabric, with the p99 tracking the miss rate.
func FmmuSweep(opt Options) []FmmuRow {
	opt = opt.withDefaults()
	cfg := gcCfg(opt)
	pts := FmmuSweepPoints(cfg)
	skews := fmmuSkews()
	return runner.MapDefault(len(pts), func(i int) FmmuRow {
		return runFmmuPoint(pts[i], skews[pts[i].Skew], cfg, opt)
	})
}

func runFmmuPoint(p FmmuPoint, params workload.Params, cfg ssd.Config, opt Options) FmmuRow {
	cfg.Mapping = p.Mapping
	cfg.MapCacheEntries = p.Entries
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.FTL.Policy = ftl.PCWD
	s := ssd.New(ssd.ArchPnSSDSplit, cfg)
	warm(s, opt.ChurnFraction, opt.Seed)
	tr := workload.Generate("fmmu-"+p.Skew, params, s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
	s.Host.MustReplay(tr.Requests)
	s.Run()
	m := s.Metrics()
	lat := m.Combined()
	row := FmmuRow{
		Point: p,
		Mean:  lat.Mean(),
		P99:   lat.Percentile(99),
		KIOPS: m.KIOPS(),
	}
	if s.FTL.MapEnabled() {
		ms := s.FTL.MapStats()
		row.MapLookups = ms.Lookups
		row.MapMisses = ms.Misses
		row.MissRate = ms.MissRate()
		row.MapFetches = ms.Fetches
		row.MapWritebacks = ms.Writebacks
	}
	return row
}
