package exp

import (
	"testing"

	"repro/internal/ssd"
)

func TestAblationVWidth(t *testing.T) {
	rows := AblationVWidth(Quick())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider v-channels must never hurt; 2-bit v should be the slowest.
	if rows[0].Latency < rows[len(rows)-1].Latency {
		t.Fatalf("2-bit v (%v) faster than 16-bit v (%v)", rows[0].Latency, rows[len(rows)-1].Latency)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Latency > rows[i-1].Latency*11/10 {
			t.Fatalf("latency increased >10%% when widening v: %v -> %v", rows[i-1].Latency, rows[i].Latency)
		}
	}
}

func TestAblationRouting(t *testing.T) {
	rows := AblationRouting(Quick())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	hOnly, greedy, split, jsq := rows[0], rows[1], rows[2], rows[3]
	// Path diversity must pay on the skewed trace.
	if greedy.Latency > hOnly.Latency {
		t.Fatalf("greedy (%v) slower than h-only (%v) under read skew", greedy.Latency, hOnly.Latency)
	}
	if split.Latency > hOnly.Latency {
		t.Fatalf("split (%v) slower than h-only (%v) under read skew", split.Latency, hOnly.Latency)
	}
	// The future-work JSQ router should not lose to the paper greedy.
	if jsq.Latency > greedy.Latency*11/10 {
		t.Fatalf("JSQ (%v) much slower than greedy (%v)", jsq.Latency, greedy.Latency)
	}
}

func TestAblationEccFallback(t *testing.T) {
	rows := AblationEccFallback(Quick())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At 100%% failure every direct copy relays; with SpGC active the mean
	// latency must not improve as the failure rate rises.
	if rows[len(rows)-1].Latency < rows[0].Latency {
		t.Fatalf("full ECC fallback (%v) faster than none (%v)", rows[len(rows)-1].Latency, rows[0].Latency)
	}
	if rows[0].Detail == rows[len(rows)-1].Detail {
		t.Fatal("fallback counters identical across rates")
	}
}

func TestAblationCtrlLatency(t *testing.T) {
	rows := AblationCtrlLatency(Quick())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Latency should be non-decreasing (within noise) as the control plane
	// slows: allow small wiggle but the 10us point must be the worst or
	// near-worst.
	first, last := rows[0].Latency, rows[len(rows)-1].Latency
	if last < first {
		t.Fatalf("10us control plane (%v) faster than free control plane (%v)", last, first)
	}
}

func TestAblationGCGroup(t *testing.T) {
	rows := AblationGCGroup(Quick())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Fatalf("%s: zero latency", r.Name)
		}
		if r.Detail == "" {
			t.Fatalf("%s: missing GC stats detail", r.Name)
		}
	}
}

func TestAblationOrganization(t *testing.T) {
	rows := AblationOrganization(Quick())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The non-square organizations must report their v-channel sharing.
	if rows[0].Detail == rows[2].Detail {
		t.Fatal("wide and tall organizations report identical v-channel layout")
	}
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Fatalf("%s: zero latency", r.Name)
		}
	}
}

func TestContentionProfile(t *testing.T) {
	rows := Contention(Quick())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byArch := map[ssd.Arch]ContentionRow{}
	for _, r := range rows {
		byArch[r.Arch] = r
		if r.BusiestUtil < 0 || r.BusiestUtil > 1 {
			t.Fatalf("%v: utilization %v outside [0,1]", r.Arch, r.BusiestUtil)
		}
		if r.HMaxWait < r.HMeanWait {
			t.Fatalf("%v: max wait below mean wait", r.Arch)
		}
	}
	// The skewed read trace must queue hardest on the baseline's shared
	// 8-bit channels; pSSD's fat channel cuts the mean wait.
	if byArch[ssd.ArchPSSD].HMeanWait >= byArch[ssd.ArchBase].HMeanWait {
		t.Fatalf("pSSD h-wait %v not below base %v",
			byArch[ssd.ArchPSSD].HMeanWait, byArch[ssd.ArchBase].HMeanWait)
	}
	// Omnibus fabrics must actually shift some queueing onto v-channels.
	if byArch[ssd.ArchPnSSD].VMeanWait == 0 && byArch[ssd.ArchPnSSDSplit].VMeanWait == 0 {
		t.Fatal("no v-channel activity recorded on either Omnibus fabric")
	}
}
