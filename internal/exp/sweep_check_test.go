package exp

import (
	"testing"

	"repro/internal/check"
	"repro/internal/ssd"
)

// checkedOpts returns shrunken Quick options with the invariant checker
// attached to every SSD the sweeps build. The sweeps call s.Run(), which
// panics on any violation and verifies the full invariant set at drain —
// so simply completing these tests certifies the sweep workloads clean.
func checkedOpts() Options {
	opt := Quick()
	opt.Cfg.Check = &check.Config{}
	opt.TraceRequests = 250
	opt.SyntheticRequests = 60
	opt.Traces = []string{"rocksdb-0"}
	return opt
}

func TestContentionUnderChecker(t *testing.T) {
	rows := Contention(checkedOpts())
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	seen := map[ssd.Arch]bool{}
	for _, r := range rows {
		if seen[r.Arch] {
			t.Fatalf("%v appears twice", r.Arch)
		}
		seen[r.Arch] = true
		if r.MeanLatency <= 0 {
			t.Errorf("%v: mean latency %v not positive", r.Arch, r.MeanLatency)
		}
		if r.HMaxWait < r.HMeanWait {
			t.Errorf("%v: max wait %v below mean wait %v", r.Arch, r.HMaxWait, r.HMeanWait)
		}
		if r.BusiestUtil < 0 || r.BusiestUtil > 1 {
			t.Errorf("%v: utilization %v outside [0,1]", r.Arch, r.BusiestUtil)
		}
	}
}

func TestIOSweepsUnderChecker(t *testing.T) {
	opt := checkedOpts()

	f3 := Fig3(opt)
	if len(f3.ReadRows) != opt.Cfg.Channels || len(f3.WriteRows) != opt.Cfg.Channels {
		t.Fatalf("Fig3: %d/%d channel rows, want %d", len(f3.ReadRows), len(f3.WriteRows), opt.Cfg.Channels)
	}
	if f3.ReadImbalance <= f3.WriteImbalance {
		t.Errorf("Fig3: read imbalance %.2f not above write imbalance %.2f", f3.ReadImbalance, f3.WriteImbalance)
	}

	f4 := Fig4(opt)
	if len(f4) != len(opt.Traces) {
		t.Fatalf("Fig4: %d rows, want %d", len(f4), len(opt.Traces))
	}
	for _, r := range f4 {
		if r.Speedup[1.0] != 1.0 {
			t.Errorf("Fig4 %s: self speedup %.2f != 1", r.Trace, r.Speedup[1.0])
		}
		if r.Speedup[2.0] < 1.0 {
			t.Errorf("Fig4 %s: 2x bandwidth slowed things down (%.2f)", r.Trace, r.Speedup[2.0])
		}
	}

	f14 := Fig14(opt)
	if len(f14) != len(opt.Traces) {
		t.Fatalf("Fig14: %d rows, want %d", len(f14), len(opt.Traces))
	}
	for _, r := range f14 {
		if len(r.Latency) != len(ssd.Archs) || len(r.KIOPS) != len(ssd.Archs) {
			t.Fatalf("Fig14 %s: %d/%d arch entries, want %d", r.Trace, len(r.Latency), len(r.KIOPS), len(ssd.Archs))
		}
		if r.Improvement[ssd.ArchBase] != 0 {
			t.Errorf("Fig14 %s: baseline improvement %.3f != 0", r.Trace, r.Improvement[ssd.ArchBase])
		}
	}
}

func TestGCSweepsUnderChecker(t *testing.T) {
	opt := checkedOpts()

	f18 := Fig18(opt)
	if len(f18) != len(Fig18Configs) {
		t.Fatalf("Fig18: %d rows, want %d", len(f18), len(Fig18Configs))
	}
	if f18[0].ReadImprovement != 0 || f18[0].WriteImprovement != 0 {
		t.Errorf("Fig18: baseline improvements %.3f/%.3f != 0", f18[0].ReadImprovement, f18[0].WriteImprovement)
	}
	for _, r := range f18 {
		if r.ReadLatency <= 0 || r.WriteLatency <= 0 {
			t.Errorf("Fig18 %s: non-positive latency %v/%v", r.Config.Label(), r.ReadLatency, r.WriteLatency)
		}
	}

	f19 := Fig19(opt)
	if len(f19) != len(opt.Traces) {
		t.Fatalf("Fig19: %d rows, want %d", len(f19), len(opt.Traces))
	}
	base := Fig19Configs[0].Label()
	for _, r := range f19 {
		if len(r.Latency) != len(Fig19Configs) {
			t.Fatalf("Fig19 %s: %d configs, want %d", r.Trace, len(r.Latency), len(Fig19Configs))
		}
		if r.Improvement[base] != 0 {
			t.Errorf("Fig19 %s: baseline improvement %.3f != 0", r.Trace, r.Improvement[base])
		}
	}

	f20a := Fig20a(opt)
	if len(f20a) != len(Fig20aConfigs) {
		t.Fatalf("Fig20a: %d rows, want %d", len(f20a), len(Fig20aConfigs))
	}
	for _, r := range f20a {
		// Percentiles of one distribution must be monotone.
		if !(r.P50 <= r.P90 && r.P90 <= r.P99 && r.P99 <= r.P999 && r.P999 <= r.Max) {
			t.Errorf("Fig20a %s: percentiles not monotone: %v %v %v %v %v",
				r.Config.Label(), r.P50, r.P90, r.P99, r.P999, r.Max)
		}
		if len(r.CDF) == 0 {
			t.Errorf("Fig20a %s: empty CDF", r.Config.Label())
		}
	}

	f20b := Fig20b(opt)
	if len(f20b) != len(Fig20aConfigs) {
		t.Fatalf("Fig20b: %d rows, want %d", len(f20b), len(Fig20aConfigs))
	}
	for _, r := range f20b {
		if r.Rounds <= 0 {
			t.Errorf("Fig20b %s: no GC rounds recorded", r.Config.Label())
		}
		if r.Rounds > 0 && r.MeanGCTime <= 0 {
			t.Errorf("Fig20b %s: %d rounds but zero mean GC time", r.Config.Label(), r.Rounds)
		}
	}
}
