package exp

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ArrayScenario names one health state of the rack-scale sweep.
type ArrayScenario string

const (
	// ArrayHealthy runs with no failures.
	ArrayHealthy ArrayScenario = "healthy"
	// ArrayDegraded kills one device at t=0 with rebuild disabled, so
	// every read of its shards reconstructs for the whole run.
	ArrayDegraded ArrayScenario = "degraded"
	// ArrayRebuilding kills one device a quarter of the way through the
	// trace with the throttled rebuild scheduler on, so recovery traffic,
	// foreground I/O, and per-device GC contend.
	ArrayRebuilding ArrayScenario = "rebuilding"
)

// ArrayScenarios is the sweep order.
var ArrayScenarios = []ArrayScenario{ArrayHealthy, ArrayDegraded, ArrayRebuilding}

// ArraySweepRow is one (architecture, GC mode, scenario) point.
type ArraySweepRow struct {
	Arch     ssd.Arch
	GC       ftl.GCMode
	Scenario ArrayScenario

	Latency sim.Time
	P99     sim.Time
	KIOPS   float64

	RAS         *stats.ArrayRAS
	RebuildTime sim.Time
	// GCCopies sums GC page movement across all member devices — the
	// rebuild-interference signal SpGC vs PaGC is expected to move.
	GCCopies int64
	// OK reports a clean run: every request completed, zero failed host
	// reads, and (when the checker is attached) zero invariant violations.
	OK bool
}

// ArrayRebuildRate is the throttle used by the rebuilding scenario.
const ArrayRebuildRate = 200_000 // pages/s

// arrayCfg shrinks the per-device organization so a 7-device array
// simulates in seconds: the interconnect behaviour under study is
// per-device and unaffected by the smaller grid, and the array router
// only consumes device completion times.
func arrayCfg(opt Options, arch ssd.Arch, mode ftl.GCMode) array.Config {
	dc := *opt.Cfg
	dc.Channels, dc.Ways = 2, 2
	dc.Geometry.Planes = 2
	if dc.Geometry.BlocksPerPlane > 8 {
		dc.Geometry.BlocksPerPlane = 8
	}
	if dc.Geometry.PagesPerBlock > 16 {
		dc.Geometry.PagesPerBlock = 16
	}
	dc.LogicalUtilization = opt.GCUtilization
	dc.FTL.GCMode = mode
	return array.Config{
		Arch:   arch,
		Device: dc,
		Data:   2, Parity: 1,
		Groups:        2,
		Spares:        1,
		Seed:          opt.Seed,
		ChurnFraction: opt.ChurnFraction,
		Check:         opt.Cfg.Check != nil,
	}
}

// ArraySweep measures the erasure-coded array tier across
// {pnSSD, pnSSD+split} x {PaGC, SpGC} x {healthy, degraded, rebuilding}:
// host-visible mean and p99 latency, rebuild time, and the RAS ledger.
// The acceptance property rides along in OK — killing one device of an
// m+k group must never fail a host read.
func ArraySweep(opt Options) []ArraySweepRow {
	opt = opt.withDefaults()
	archs := []ssd.Arch{ssd.ArchPnSSD, ssd.ArchPnSSDSplit}
	modes := []ftl.GCMode{ftl.GCParallel, ftl.GCSpatial}
	n := len(archs) * len(modes) * len(ArrayScenarios)
	label := func(i int) string {
		arch := archs[i/(len(modes)*len(ArrayScenarios))]
		mode := modes[i/len(ArrayScenarios)%len(modes)]
		sc := ArrayScenarios[i%len(ArrayScenarios)]
		return fmt.Sprintf("array %v/%v/%v", arch, mode, sc)
	}
	return runner.MapLabeledDefault(n, label, func(i int) ArraySweepRow {
		arch := archs[i/(len(modes)*len(ArrayScenarios))]
		mode := modes[i/len(ArrayScenarios)%len(modes)]
		sc := ArrayScenarios[i%len(ArrayScenarios)]

		cfg := arrayCfg(opt, arch, mode)
		tr, err := workload.Named("rocksdb-0", cfg.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		switch sc {
		case ArrayDegraded:
			cfg.Failures = []fault.DeviceEvent{{Device: 0, At: 0}}
		case ArrayRebuilding:
			quarter := tr.Requests[len(tr.Requests)/4].Arrival
			cfg.Failures = []fault.DeviceEvent{{Device: 0, At: quarter}}
			cfg.RebuildPagesPerSec = ArrayRebuildRate
		}

		// The sweep parallelizes across points; each point simulates its
		// member devices sequentially to keep the worker pool flat.
		res := array.Run(cfg, tr.Requests, 1)
		var copies int64
		for _, s := range res.Devices {
			copies += s.FTL.Stats().GCPagesCopied
		}
		m := res.Metrics
		return ArraySweepRow{
			Arch:        arch,
			GC:          mode,
			Scenario:    sc,
			Latency:     m.MeanLatency(),
			P99:         m.Combined().P99(),
			KIOPS:       m.KIOPS(),
			RAS:         res.RAS,
			RebuildTime: res.RebuildTime,
			GCCopies:    copies,
			OK:          res.Err() == nil && res.RAS.FailedReads == 0,
		}
	})
}
