package exp

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ArrayScenario names one health state of the rack-scale sweep.
type ArrayScenario string

const (
	// ArrayHealthy runs with no failures.
	ArrayHealthy ArrayScenario = "healthy"
	// ArrayDegraded kills one device at t=0 with rebuild disabled, so
	// every read of its shards reconstructs for the whole run.
	ArrayDegraded ArrayScenario = "degraded"
	// ArrayRebuilding kills one device a quarter of the way through the
	// trace with the throttled rebuild scheduler on, so recovery traffic,
	// foreground I/O, and per-device GC contend.
	ArrayRebuilding ArrayScenario = "rebuilding"
)

// ArrayScenarios is the sweep order.
var ArrayScenarios = []ArrayScenario{ArrayHealthy, ArrayDegraded, ArrayRebuilding}

// ArraySweepRow is one (architecture, GC mode, scenario) point.
type ArraySweepRow struct {
	Arch     ssd.Arch
	GC       ftl.GCMode
	Scenario ArrayScenario

	Latency sim.Time
	P99     sim.Time
	KIOPS   float64

	RAS         *stats.ArrayRAS
	RebuildTime sim.Time
	// GCCopies sums GC page movement across all member devices — the
	// rebuild-interference signal SpGC vs PaGC is expected to move.
	GCCopies int64
	// OK reports a clean run: every request completed, zero failed host
	// reads, and (when the checker is attached) zero invariant violations.
	OK bool
}

// ArrayRebuildRate is the throttle used by the rebuilding scenario.
const ArrayRebuildRate = 200_000 // pages/s

// arrayCfg shrinks the per-device organization so a 7-device array
// simulates in seconds: the interconnect behaviour under study is
// per-device and unaffected by the smaller grid, and the array router
// only consumes device completion times.
func arrayCfg(opt Options, arch ssd.Arch, mode ftl.GCMode) array.Config {
	dc := *opt.Cfg
	dc.Channels, dc.Ways = 2, 2
	dc.Geometry.Planes = 2
	if dc.Geometry.BlocksPerPlane > 8 {
		dc.Geometry.BlocksPerPlane = 8
	}
	if dc.Geometry.PagesPerBlock > 16 {
		dc.Geometry.PagesPerBlock = 16
	}
	dc.LogicalUtilization = opt.GCUtilization
	dc.FTL.GCMode = mode
	return array.Config{
		Arch:   arch,
		Device: dc,
		Data:   2, Parity: 1,
		Groups:        2,
		Spares:        1,
		Seed:          opt.Seed,
		ChurnFraction: opt.ChurnFraction,
		Check:         opt.Cfg.Check != nil,
	}
}

// ArrayTelemetryDoc is the run document the -telemetry flag writes and
// cmd/report consumes: one rebuilding-scenario array run with its
// windowed time series, rebuild marks, and headline aggregates.
type ArrayTelemetryDoc struct {
	Name      string             `json:"name"`
	Arch      string             `json:"arch"`
	GC        string             `json:"gc"`
	Scenario  string             `json:"scenario"`
	Requests  int64              `json:"requests"`
	MeanMs    float64            `json:"mean_ms"`
	P99Ms     float64            `json:"p99_ms"`
	RebuildMs float64            `json:"rebuild_ms"`
	Telemetry *telemetry.Summary `json:"telemetry"`
}

// ArrayTelemetryRun runs the PR 6 headline scenario — pnSSD+split,
// SpGC, one device killed a quarter into the trace with the throttled
// rebuild on — with array-level telemetry enabled, and returns the run
// document. The time series shows host p99 per window roughly doubling
// inside the [rebuild-detect, rebuild-complete] mark window. The
// member devices fan out across the default worker pool; the telemetry
// is computed from joined completion times, so the document is
// byte-identical at any -parallel count.
func ArrayTelemetryRun(opt Options) ArrayTelemetryDoc {
	opt = opt.withDefaults()
	cfg := arrayCfg(opt, ssd.ArchPnSSDSplit, ftl.GCSpatial)
	tr, err := workload.Named("rocksdb-0", cfg.LogicalPages(), opt.TraceRequests, opt.Seed)
	if err != nil {
		panic(err)
	}
	quarter := tr.Requests[len(tr.Requests)/4].Arrival
	cfg.Failures = []fault.DeviceEvent{{Device: 0, At: quarter}}
	cfg.RebuildPagesPerSec = ArrayRebuildRate
	cfg.Telemetry = &telemetry.Config{}
	res := array.Run(cfg, tr.Requests, runner.Default())
	if err := res.Err(); err != nil {
		panic(err)
	}
	m := res.Metrics
	return ArrayTelemetryDoc{
		Name:      "array-rebuild rocksdb-0",
		Arch:      ssd.ArchPnSSDSplit.String(),
		GC:        ftl.GCSpatial.String(),
		Scenario:  string(ArrayRebuilding),
		Requests:  m.TotalRequests(),
		MeanMs:    m.MeanLatency().Milliseconds(),
		P99Ms:     m.Combined().P99().Milliseconds(),
		RebuildMs: res.RebuildTime.Milliseconds(),
		Telemetry: res.Telemetry,
	}
}

// ArraySweep measures the erasure-coded array tier across
// {pnSSD, pnSSD+split} x {PaGC, SpGC} x {healthy, degraded, rebuilding}:
// host-visible mean and p99 latency, rebuild time, and the RAS ledger.
// The acceptance property rides along in OK — killing one device of an
// m+k group must never fail a host read.
func ArraySweep(opt Options) []ArraySweepRow {
	opt = opt.withDefaults()
	archs := []ssd.Arch{ssd.ArchPnSSD, ssd.ArchPnSSDSplit}
	modes := []ftl.GCMode{ftl.GCParallel, ftl.GCSpatial}
	n := len(archs) * len(modes) * len(ArrayScenarios)
	label := func(i int) string {
		arch := archs[i/(len(modes)*len(ArrayScenarios))]
		mode := modes[i/len(ArrayScenarios)%len(modes)]
		sc := ArrayScenarios[i%len(ArrayScenarios)]
		return fmt.Sprintf("array %v/%v/%v", arch, mode, sc)
	}
	return runner.MapLabeledDefault(n, label, func(i int) ArraySweepRow {
		arch := archs[i/(len(modes)*len(ArrayScenarios))]
		mode := modes[i/len(ArrayScenarios)%len(modes)]
		sc := ArrayScenarios[i%len(ArrayScenarios)]

		cfg := arrayCfg(opt, arch, mode)
		tr, err := workload.Named("rocksdb-0", cfg.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		switch sc {
		case ArrayDegraded:
			cfg.Failures = []fault.DeviceEvent{{Device: 0, At: 0}}
		case ArrayRebuilding:
			quarter := tr.Requests[len(tr.Requests)/4].Arrival
			cfg.Failures = []fault.DeviceEvent{{Device: 0, At: quarter}}
			cfg.RebuildPagesPerSec = ArrayRebuildRate
		}

		// The sweep parallelizes across points; each point simulates its
		// member devices sequentially to keep the worker pool flat.
		res := array.Run(cfg, tr.Requests, 1)
		var copies int64
		for _, s := range res.Devices {
			copies += s.FTL.Stats().GCPagesCopied
		}
		m := res.Metrics
		return ArraySweepRow{
			Arch:        arch,
			GC:          mode,
			Scenario:    sc,
			Latency:     m.MeanLatency(),
			P99:         m.Combined().P99(),
			KIOPS:       m.KIOPS(),
			RAS:         res.RAS,
			RebuildTime: res.RebuildTime,
			GCCopies:    copies,
			OK:          res.Err() == nil && res.RAS.FailedReads == 0,
		}
	})
}
