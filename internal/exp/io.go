package exp

import (
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig3Result holds the channel-utilization imbalance analysis: one
// utilization matrix (channels × time windows) per access direction, with
// the aggregate imbalance index.
type Fig3Result struct {
	Trace          string
	ReadRows       [][]float64
	WriteRows      [][]float64
	ReadImbalance  float64
	WriteImbalance float64
}

// Fig3 reproduces the Fig 3 analysis on a baseline SSD: replay the reads
// and the writes of a skewed trace separately and record per-channel
// utilization over time. Reads inherit the workload's skew (imbalanced);
// writes are placed by the FTL's striping policy (balanced).
func Fig3(opt Options) Fig3Result {
	opt = opt.withDefaults()
	trace := "exchange-1"
	full, err := workload.Named(trace, opt.Cfg.LogicalPages()*7/8, opt.TraceRequests, opt.Seed)
	if err != nil {
		panic(err)
	}
	window := 500 * sim.Microsecond

	run := func(kind stats.IOKind) [][]float64 {
		s := build(ssd.ArchBase, *opt.Cfg, ftl.GCNone, ftl.PCWD)
		warm(s, 0, opt.Seed)
		m := s.AttachChannelUtil(window)
		var reqs []host.Request
		for _, r := range full.Requests {
			if r.Kind == kind {
				reqs = append(reqs, r)
			}
		}
		s.Host.MustReplay(reqs)
		s.Run()
		return m.Rows()
	}
	rows := runner.MapDefault(2, func(i int) [][]float64 {
		return run([]stats.IOKind{stats.Read, stats.Write}[i])
	})
	readRows, writeRows := rows[0], rows[1]
	return Fig3Result{
		Trace:          trace,
		ReadRows:       readRows,
		WriteRows:      writeRows,
		ReadImbalance:  stats.ImbalanceOfRows(readRows),
		WriteImbalance: stats.ImbalanceOfRows(writeRows),
	}
}

// Fig4Row is the bandwidth-sweep result for one trace.
type Fig4Row struct {
	Trace   string
	Speedup map[float64]float64 // bus scale factor -> mean-latency speedup vs 1.0x
}

// Fig4 reproduces the motivation sweep: raise the flash channel bandwidth
// of the baseline SSD toward 2x and measure the I/O performance gain per
// trace (the paper reports an 85% average gain at 2x, up to 6x for
// skewed workloads).
func Fig4(opt Options) []Fig4Row {
	opt = opt.withDefaults()
	scales := []float64{1.0, 1.25, 1.5, 2.0}
	// One independent run per (trace, scale) point, fanned across workers;
	// speedups are assembled afterwards from the ordered results.
	lats := runner.MapDefault(len(opt.Traces)*len(scales), func(i int) sim.Time {
		trace, sc := opt.Traces[i/len(scales)], scales[i%len(scales)]
		cfg := *opt.Cfg
		cfg.BusMTps = int(float64(cfg.BusMTps) * sc)
		m, _ := replayTrace(ssd.ArchBase, cfg, ftl.GCNone, trace, opt.TraceRequests, 0, opt.Seed)
		return m.MeanLatency()
	})
	rows := make([]Fig4Row, 0, len(opt.Traces))
	for ti, trace := range opt.Traces {
		row := Fig4Row{Trace: trace, Speedup: make(map[float64]float64, len(scales))}
		for si, sc := range scales {
			row.Speedup[sc] = speedup(lats[ti*len(scales)], lats[ti*len(scales)+si])
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig14Row holds per-trace, per-architecture latency results with GC off.
type Fig14Row struct {
	Trace       string
	Latency     map[ssd.Arch]sim.Time
	Improvement map[ssd.Arch]float64 // vs baseSSD
	KIOPS       map[ssd.Arch]float64 // the Fig 15 series from the same runs
}

// Fig14 reproduces Figs 14 and 15: every Table III architecture replays
// every trace with garbage collection disabled; results are mean I/O
// latency (Fig 14, normalized to baseSSD) and throughput in KIOPS
// (Fig 15).
func Fig14(opt Options) []Fig14Row {
	opt = opt.withDefaults()
	type point struct {
		lat   sim.Time
		kiops float64
	}
	pts := runner.MapDefault(len(opt.Traces)*len(ssd.Archs), func(i int) point {
		trace, arch := opt.Traces[i/len(ssd.Archs)], ssd.Archs[i%len(ssd.Archs)]
		m, _ := replayTrace(arch, *opt.Cfg, ftl.GCNone, trace, opt.TraceRequests, 0, opt.Seed)
		return point{lat: m.MeanLatency(), kiops: m.KIOPS()}
	})
	rows := make([]Fig14Row, 0, len(opt.Traces))
	for ti, trace := range opt.Traces {
		row := Fig14Row{
			Trace:       trace,
			Latency:     make(map[ssd.Arch]sim.Time),
			Improvement: make(map[ssd.Arch]float64),
			KIOPS:       make(map[ssd.Arch]float64),
		}
		for ai, arch := range ssd.Archs {
			p := pts[ti*len(ssd.Archs)+ai]
			row.Latency[arch] = p.lat
			row.KIOPS[arch] = p.kiops
		}
		for _, arch := range ssd.Archs {
			row.Improvement[arch] = improvement(row.Latency[ssd.ArchBase], row.Latency[arch])
		}
		rows = append(rows, row)
	}
	return rows
}

// MeanImprovement aggregates Fig14 rows into the paper's headline
// per-architecture averages.
func MeanImprovement(rows []Fig14Row) map[ssd.Arch]float64 {
	out := make(map[ssd.Arch]float64)
	for _, arch := range ssd.Archs {
		var sp []float64
		for _, r := range rows {
			sp = append(sp, 1+r.Improvement[arch])
		}
		out[arch] = geomean(sp) - 1
	}
	return out
}

// Fig16Point is one (outstanding, latency) sample of the synthetic sweep.
type Fig16Point struct {
	Outstanding int
	Latency     sim.Time
}

// Fig16Row is one architecture's curve for one pattern.
type Fig16Row struct {
	Pattern workload.Pattern
	Arch    ssd.Arch
	Points  []Fig16Point
}

// Fig16 reproduces the PCWD synthetic sweep of Fig 16: 64 KB sequential
// and random reads and writes, outstanding I/O count swept to 64, with
// the channel-balancing PCWD allocation policy.
func Fig16(opt Options) []Fig16Row { return syntheticSweep(opt, ftl.PCWD) }

// Fig17 reproduces Fig 17: the same sweep under the way-first PWCD policy
// that concentrates consecutive requests on one channel, rewarding the
// path diversity of pnSSD.
func Fig17(opt Options) []Fig16Row { return syntheticSweep(opt, ftl.PWCD) }

func syntheticSweep(opt Options, policy ftl.AllocPolicy) []Fig16Row {
	opt = opt.withDefaults()
	outs := []int{1, 2, 4, 8, 16, 32, 64}
	patterns := []workload.Pattern{workload.SeqRead, workload.RandRead, workload.SeqWrite, workload.RandWrite}
	// The full (pattern, arch, outstanding) cube is one flat job space.
	lats := runner.MapDefault(len(patterns)*len(ssd.Archs)*len(outs), func(i int) sim.Time {
		p := patterns[i/(len(ssd.Archs)*len(outs))]
		arch := ssd.Archs[i/len(outs)%len(ssd.Archs)]
		o := outs[i%len(outs)]
		m := runClosedLoop(arch, *opt.Cfg, policy, p, o, opt.SyntheticRequests, opt.Seed)
		return m.MeanLatency()
	})
	var rows []Fig16Row
	for pi, p := range patterns {
		for ai, arch := range ssd.Archs {
			row := Fig16Row{Pattern: p, Arch: arch}
			for oi, o := range outs {
				row.Points = append(row.Points, Fig16Point{
					Outstanding: o,
					Latency:     lats[(pi*len(ssd.Archs)+ai)*len(outs)+oi],
				})
			}
			rows = append(rows, row)
		}
	}
	return rows
}
