package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/ftl"
	"repro/internal/ssd"
)

// TracedRun backs the -trace/-metrics-json flags and the CI trace smoke
// step; this covers it in-process: both exports must be valid JSON and
// agree with the returned metrics.
func TestTracedRunExports(t *testing.T) {
	opt := Quick()
	opt.TraceRequests = 200
	var traceBuf, sumBuf bytes.Buffer
	m, err := TracedRun(opt, ssd.ArchPnSSDSplit, ftl.GCSpatial, "rocksdb-0", &traceBuf, &sumBuf)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalRequests() != int64(opt.TraceRequests) {
		t.Fatalf("metrics recorded %d requests, want %d", m.TotalRequests(), opt.TraceRequests)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBuf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	var sum map[string]any
	if err := json.Unmarshal(sumBuf.Bytes(), &sum); err != nil {
		t.Fatalf("summary export is not valid JSON: %v", err)
	}
	if reqs, _ := sum["requests"].(float64); int64(reqs) != m.TotalRequests() {
		t.Fatalf("summary requests %v disagrees with metrics %d", sum["requests"], m.TotalRequests())
	}
}

func TestAblationVictimPolicy(t *testing.T) {
	opt := Quick()
	opt.TraceRequests = 250
	rows := AblationVictimPolicy(opt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Fatalf("%s: zero latency", r.Name)
		}
		if r.Detail == "" {
			t.Fatalf("%s: missing copy-cost detail", r.Name)
		}
	}
}
