package exp

import (
	"testing"

	"repro/internal/ssd"
)

func TestFaultSweepQuick(t *testing.T) {
	rows := FaultSweep(Quick())
	if len(rows) != len(ssd.Archs)*3 {
		t.Fatalf("rows = %d, want %d", len(rows), len(ssd.Archs)*3)
	}
	for _, r := range rows {
		if !r.Completed {
			t.Fatalf("%v @ %.3f did not complete its trace", r.Arch, r.ReadECC)
		}
		if !r.Consistent {
			t.Fatalf("%v @ %.3f failed the consistency check", r.Arch, r.ReadECC)
		}
		if r.RAS == nil {
			t.Fatalf("%v @ %.3f has no RAS counters", r.Arch, r.ReadECC)
		}
		// The per-chip quotas fire at every rate, including zero.
		if r.RAS.ProgramFails == 0 || r.RAS.BlocksRetired == 0 {
			t.Fatalf("%v @ %.3f: quotas forced no retirement", r.Arch, r.ReadECC)
		}
		if r.ReadECC > 0 && r.RAS.ReadFaults == 0 {
			t.Fatalf("%v @ %.3f: nonzero rate injected no read faults", r.Arch, r.ReadECC)
		}
		if r.ReadECC == 0 && r.RAS.ReadFaults != 0 {
			t.Fatalf("%v: zero rate injected read faults", r.Arch)
		}
	}
}

func TestDegradedSweepQuick(t *testing.T) {
	opt := Quick()
	rows := DegradedSweep(opt)
	numV := opt.Cfg.Channels
	if opt.Cfg.Ways < numV {
		numV = opt.Cfg.Ways
	}
	if len(rows) != 2+numV {
		t.Fatalf("rows = %d, want %d", len(rows), 2+numV)
	}
	for _, r := range rows {
		if !r.Completed {
			t.Fatalf("%q did not complete its trace", r.Name)
		}
		if !r.Consistent {
			t.Fatalf("%q failed the consistency check", r.Name)
		}
	}
	if rows[0].Delta != 0 {
		t.Fatalf("healthy baseline delta = %v, want 0", rows[0].Delta)
	}
	if rows[1].RAS.GrantDrops == 0 {
		t.Fatal("grant-drop scenario dropped no grants")
	}
	degradedSeen := false
	for _, r := range rows[2:] {
		if r.RAS.DegradedReturns > 0 || r.RAS.DeadVCopies > 0 {
			degradedSeen = true
		}
	}
	if !degradedSeen {
		t.Fatal("no dead-v scenario recorded degraded routing")
	}
}
