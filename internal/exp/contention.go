package exp

import (
	"repro/internal/bus"
	"repro/internal/controller"
	"repro/internal/ftl"
	"repro/internal/mesh"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// ContentionRow summarizes queueing on one architecture's channels under
// a loaded skewed workload: where requests actually wait, the analysis
// behind the paper's "the flash channel is the bottleneck" claim and its
// NoSSD edge-congestion observation.
type ContentionRow struct {
	Arch        ssd.Arch
	MeanLatency sim.Time
	// HMeanWait and HMaxWait aggregate queueing delay on the h-channels
	// (or, for the mesh, the controller-adjacent ejection links).
	HMeanWait sim.Time
	HMaxWait  sim.Time
	// VMeanWait aggregates the v-channels (zero for non-Omnibus fabrics).
	VMeanWait sim.Time
	// BusiestUtil is the highest single-channel lifetime utilization.
	BusiestUtil float64
}

// Contention replays the most read-skewed trace at full intensity on each
// architecture and reports where time is spent queueing.
func Contention(opt Options) []ContentionRow {
	opt = opt.withDefaults()
	archs := []ssd.Arch{ssd.ArchBase, ssd.ArchPSSD, ssd.ArchPnSSD, ssd.ArchPnSSDSplit, ssd.ArchNoSSDPin}
	return runner.MapDefault(len(archs), func(i int) ContentionRow {
		arch := archs[i]
		s := build(arch, *opt.Cfg, ftl.GCNone, ftl.PCWD)
		warm(s, 0, opt.Seed)
		tr, err := workload.Named("search-0", s.Config.LogicalPages(), opt.TraceRequests, opt.Seed)
		if err != nil {
			panic(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()

		row := ContentionRow{Arch: arch, MeanLatency: s.Metrics().MeanLatency()}
		scan := func(chs []*bus.Channel) (mean, max sim.Time, util float64) {
			var totalWait sim.Time
			var n int
			for _, ch := range chs {
				totalWait += ch.MeanWait()
				n++
				if ch.MaxWait() > max {
					max = ch.MaxWait()
				}
				if u := ch.Utilization(); u > util {
					util = u
				}
			}
			if n > 0 {
				mean = totalWait / sim.Time(n)
			}
			return mean, max, util
		}
		switch fab := s.Fabric.(type) {
		case *controller.BusFabric:
			var chs []*bus.Channel
			for ch := 0; ch < s.Config.Channels; ch++ {
				chs = append(chs, fab.Channel(ch))
			}
			row.HMeanWait, row.HMaxWait, row.BusiestUtil = scan(chs)
		case *controller.OmnibusFabric:
			var hs, vs []*bus.Channel
			for ch := 0; ch < s.Config.Channels; ch++ {
				hs = append(hs, fab.HChannel(ch))
			}
			for i := 0; i < fab.NumVChannels(); i++ {
				vs = append(vs, fab.VChannel(i*fab.ColumnsPerVChannel()))
			}
			var vMax sim.Time
			var vUtil float64
			row.HMeanWait, row.HMaxWait, row.BusiestUtil = scan(hs)
			row.VMeanWait, vMax, vUtil = scan(vs)
			if vMax > row.HMaxWait {
				row.HMaxWait = vMax
			}
			if vUtil > row.BusiestUtil {
				row.BusiestUtil = vUtil
			}
		case *controller.MeshFabric:
			m := fab.Mesh()
			var chs []*bus.Channel
			for y := 0; y < s.Config.Channels; y++ {
				chs = append(chs, m.Link(meshNode(0, y), meshController(y)))
				chs = append(chs, m.Link(meshController(y), meshNode(0, y)))
			}
			row.HMeanWait, row.HMaxWait, row.BusiestUtil = scan(chs)
		}
		return row
	})
}

// meshNode and meshController adapt the mesh package's node constructors
// without importing it at every call site.
func meshNode(x, y int) mesh.Node    { return mesh.Node{X: x, Y: y} }
func meshController(y int) mesh.Node { return mesh.Controller(y) }
