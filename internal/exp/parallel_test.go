package exp

import (
	"fmt"
	"testing"

	"repro/internal/runner"
)

// TestParallelismDoesNotChangeResults runs a representative slice of the
// quick suite at worker counts 1 (the pre-parallelism inline path) and 8
// and requires the rendered results to be byte-identical. Every sweep
// point owns a private engine seeded only by its index, so the worker
// count must never leak into the numbers.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	opt := Quick()
	render := func() string {
		s := fmt.Sprintf("%+v\n", Fig3(opt))
		for _, r := range Fig14(opt) {
			s += fmt.Sprintf("%+v\n", r)
		}
		for _, r := range AblationVWidth(opt) {
			s += fmt.Sprintf("%+v\n", r)
		}
		for _, r := range FaultSweep(opt) {
			s += fmt.Sprintf("%+v\n", r)
		}
		for _, r := range TenantSweep(opt) {
			s += fmt.Sprintf("%+v\n", r)
		}
		return s
	}

	prev := runner.Default()
	defer runner.SetDefault(prev)

	runner.SetDefault(1)
	sequential := render()
	runner.SetDefault(8)
	parallel := render()

	if sequential != parallel {
		t.Fatalf("results differ between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", sequential, parallel)
	}
	if sequential == "" {
		t.Fatal("rendered output is empty; test is vacuous")
	}
}
