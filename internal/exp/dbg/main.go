package main

import (
	"fmt"
	"math/rand"

	"repro/internal/ftl"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(arch ssd.Arch, mode ftl.GCMode) {
	c := ssd.ScaledConfig()
	c.Geometry.BlocksPerPlane = 8
	c.Geometry.PagesPerBlock = 16
	c.FTL.GCMode = mode
	c.LogicalUtilization = 0.75
	s := ssd.New(arch, c)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	headroom := s.Config.RawPages() - foot
	churn := headroom / 2
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < churn; i++ {
		lpn := rng.Int63n(foot)
		s.FTL.Reinstall(lpn, ftl.TokenFor(lpn, 1))
	}
	tr, _ := workload.Named("rocksdb-1", foot, 400, 1)
	s.Host.MustReplay(tr.Requests)
	s.Run()
	m := s.Metrics()
	st := s.FTL.Stats()
	fmt.Printf("%-22s %-10s mean=%-10v meanR=%-10v meanW=%-10v p99=%-10v stalls=%-5d gcRounds=%-3d gcTime=%-10v copied=%d\n",
		arch, mode, m.MeanLatency(), m.Latency[stats.Read].Mean(), m.Latency[stats.Write].Mean(),
		m.Combined().P99(), st.WriteStalls, st.GCRounds, st.GCTotalTime, st.GCPagesCopied)
}

func main() {
	for _, arch := range []ssd.Arch{ssd.ArchBase, ssd.ArchPSSD, ssd.ArchPnSSD, ssd.ArchPnSSDSplit} {
		for _, mode := range []ftl.GCMode{ftl.GCParallel, ftl.GCPreemptive, ftl.GCSpatial} {
			run(arch, mode)
		}
	}
}
