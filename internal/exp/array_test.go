package exp

import (
	"encoding/json"
	"testing"

	"repro/internal/check"
	"repro/internal/runner"
)

func TestArraySweepQuick(t *testing.T) {
	opt := Quick()
	opt.TraceRequests = 200
	opt.Cfg.Check = &check.Config{} // the sweep must hold under the checker
	rows := ArraySweep(opt)
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%v/%v/%v: run not clean: %s", r.Arch, r.GC, r.Scenario, r.RAS)
		}
		if r.Latency <= 0 || r.KIOPS <= 0 {
			t.Errorf("%v/%v/%v: degenerate metrics mean=%v kiops=%.1f", r.Arch, r.GC, r.Scenario, r.Latency, r.KIOPS)
		}
		switch r.Scenario {
		case ArrayHealthy:
			if r.RAS.DegradedReads != 0 || r.RebuildTime != 0 {
				t.Errorf("%v/%v healthy row shows failure work: %s", r.Arch, r.GC, r.RAS)
			}
		case ArrayDegraded:
			if r.RAS.DegradedReads == 0 {
				t.Errorf("%v/%v degraded row has no degraded reads", r.Arch, r.GC)
			}
			if r.RAS.RebuildPages != 0 {
				t.Errorf("%v/%v degraded row rebuilt %d pages with rebuild off", r.Arch, r.GC, r.RAS.RebuildPages)
			}
		case ArrayRebuilding:
			if r.RAS.RebuildPages == 0 || r.RebuildTime <= 0 {
				t.Errorf("%v/%v rebuilding row did not rebuild: %s", r.Arch, r.GC, r.RAS)
			}
		}
	}
}

// TestArrayTelemetryRunDocument is the acceptance gate for the
// -telemetry export: the rebuilding-scenario run document carries the
// windowed series, both rebuild marks, and is byte-identical whether
// the member devices simulate sequentially or in parallel.
func TestArrayTelemetryRunDocument(t *testing.T) {
	opt := Quick()
	opt.TraceRequests = 200

	old := runner.Default()
	defer runner.SetDefault(old)

	runner.SetDefault(1)
	seq := ArrayTelemetryRun(opt)
	runner.SetDefault(8)
	par := ArrayTelemetryRun(opt)
	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatalf("telemetry document depends on parallelism:\n%s\n%s", a, b)
	}

	tel := seq.Telemetry
	if tel == nil {
		t.Fatal("document has no telemetry section")
	}
	if tel.Windows <= 1 {
		t.Fatalf("only %d windows", tel.Windows)
	}
	for _, name := range []string{"throughput", "lat_p99", "rebuild"} {
		sr := tel.SeriesByName(name)
		if sr == nil {
			t.Fatalf("series %q missing", name)
		}
		var total float64
		for _, v := range sr.Values {
			total += v
		}
		if total == 0 {
			t.Fatalf("series %q is all zero", name)
		}
	}
	if len(tel.Marks) != 2 ||
		tel.Marks[0].Name != "rebuild-detect" || tel.Marks[1].Name != "rebuild-complete" {
		t.Fatalf("rebuild marks %+v", tel.Marks)
	}
	if tel.Marks[1].AtUs <= tel.Marks[0].AtUs {
		t.Fatalf("rebuild completes (%v) before detection (%v)", tel.Marks[1].AtUs, tel.Marks[0].AtUs)
	}
	if seq.RebuildMs <= 0 || seq.P99Ms <= 0 || seq.Requests != 200 {
		t.Fatalf("headline fields: %+v", seq)
	}
}
