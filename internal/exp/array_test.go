package exp

import (
	"testing"

	"repro/internal/check"
)

func TestArraySweepQuick(t *testing.T) {
	opt := Quick()
	opt.TraceRequests = 200
	opt.Cfg.Check = &check.Config{} // the sweep must hold under the checker
	rows := ArraySweep(opt)
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%v/%v/%v: run not clean: %s", r.Arch, r.GC, r.Scenario, r.RAS)
		}
		if r.Latency <= 0 || r.KIOPS <= 0 {
			t.Errorf("%v/%v/%v: degenerate metrics mean=%v kiops=%.1f", r.Arch, r.GC, r.Scenario, r.Latency, r.KIOPS)
		}
		switch r.Scenario {
		case ArrayHealthy:
			if r.RAS.DegradedReads != 0 || r.RebuildTime != 0 {
				t.Errorf("%v/%v healthy row shows failure work: %s", r.Arch, r.GC, r.RAS)
			}
		case ArrayDegraded:
			if r.RAS.DegradedReads == 0 {
				t.Errorf("%v/%v degraded row has no degraded reads", r.Arch, r.GC)
			}
			if r.RAS.RebuildPages != 0 {
				t.Errorf("%v/%v degraded row rebuilt %d pages with rebuild off", r.Arch, r.GC, r.RAS.RebuildPages)
			}
		case ArrayRebuilding:
			if r.RAS.RebuildPages == 0 || r.RebuildTime <= 0 {
				t.Errorf("%v/%v rebuilding row did not rebuild: %s", r.Arch, r.GC, r.RAS)
			}
		}
	}
}
