// Package mesh models the Network-on-SSD comparator (Tavakkol et al.): a
// 2D mesh interconnect replacing the flash bus, with flash chips as nodes
// and the flash controllers attached along the left edge. Routing is
// dimension-ordered (X then Y), deadlock-free. Links are modelled with
// virtual cut-through and unbounded buffers: a packet holds each directed
// link for its serialization time, pipelining into the next link after a
// per-hop router latency, and congestion emerges from FIFO queueing at
// each link.
//
// The paper evaluates two variants: pin-constrained (each chip's pin
// budget split across four directions, 2-bit links) and unconstrained
// (8-bit links, deliberately unrealistic). Both share this model and
// differ only in link width.
package mesh

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Node addresses a mesh node. Chips occupy X in [0,W), Y in [0,H);
// controllers sit off-mesh at X == -1, one per row.
type Node struct {
	X, Y int
}

// Controller returns the controller node for row y.
func Controller(y int) Node { return Node{X: -1, Y: y} }

// IsController reports whether the node is a controller attachment.
func (n Node) IsController() bool { return n.X == -1 }

// String formats the node.
func (n Node) String() string {
	if n.IsController() {
		return fmt.Sprintf("ctrl%d", n.Y)
	}
	return fmt.Sprintf("(%d,%d)", n.X, n.Y)
}

// DefaultHopLatency is the per-hop router traversal latency.
const DefaultHopLatency = 10 * sim.Nanosecond

// Mesh is the interconnect fabric.
type Mesh struct {
	eng        *sim.Engine
	w, h       int
	widthBits  int
	rateMTps   int
	hopLatency sim.Time
	links      map[[2]Node]*bus.Channel
}

// New builds a w×h mesh with the given directed-link width and rate.
func New(eng *sim.Engine, w, h, widthBits, rateMTps int) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mesh: invalid size %dx%d", w, h))
	}
	m := &Mesh{
		eng:        eng,
		w:          w,
		h:          h,
		widthBits:  widthBits,
		rateMTps:   rateMTps,
		hopLatency: DefaultHopLatency,
		links:      make(map[[2]Node]*bus.Channel),
	}
	add := func(a, b Node) {
		m.links[[2]Node{a, b}] = bus.NewChannel(eng, fmt.Sprintf("link %v->%v", a, b), widthBits, rateMTps)
		m.links[[2]Node{b, a}] = bus.NewChannel(eng, fmt.Sprintf("link %v->%v", b, a), widthBits, rateMTps)
	}
	for y := 0; y < h; y++ {
		add(Controller(y), Node{0, y}) // injection/ejection pair
		for x := 0; x < w; x++ {
			if x+1 < w {
				add(Node{x, y}, Node{x + 1, y})
			}
			if y+1 < h {
				add(Node{x, y}, Node{x, y + 1})
			}
		}
	}
	return m
}

// Size returns (w, h).
func (m *Mesh) Size() (w, h int) { return m.w, m.h }

// WidthBits returns the link width.
func (m *Mesh) WidthBits() int { return m.widthBits }

// HopLatency returns the per-hop router traversal latency — the minimum
// delay separating any two mesh nodes, and therefore the lookahead bound
// a partitioned run derives from this interconnect.
func (m *Mesh) HopLatency() sim.Time { return m.hopLatency }

// Link returns the directed link between adjacent nodes; it panics when
// the nodes are not neighbours.
func (m *Mesh) Link(from, to Node) *bus.Channel {
	ch, ok := m.links[[2]Node{from, to}]
	if !ok {
		panic(fmt.Sprintf("mesh: no link %v->%v", from, to))
	}
	return ch
}

func (m *Mesh) check(n Node) {
	if n.IsController() {
		if n.Y < 0 || n.Y >= m.h {
			panic(fmt.Sprintf("mesh: controller row %d out of range", n.Y))
		}
		return
	}
	if n.X < 0 || n.X >= m.w || n.Y < 0 || n.Y >= m.h {
		panic(fmt.Sprintf("mesh: node %v outside %dx%d", n, m.w, m.h))
	}
}

// Path returns the dimension-ordered (X then Y) route from src to dst as a
// sequence of directed hops. Controller endpoints route through their
// row's edge node.
func (m *Mesh) Path(src, dst Node) []Node {
	m.check(src)
	m.check(dst)
	if src == dst {
		return []Node{src}
	}
	path := []Node{src}
	cur := src
	step := func(next Node) {
		path = append(path, next)
		cur = next
	}
	if cur.IsController() {
		step(Node{0, cur.Y})
	}
	// X dimension first toward the destination column (controllers live in
	// column -1's attachment, i.e. column 0 on-mesh).
	dstX := dst.X
	if dst.IsController() {
		dstX = 0
	}
	for cur.X != dstX {
		if cur.X < dstX {
			step(Node{cur.X + 1, cur.Y})
		} else {
			step(Node{cur.X - 1, cur.Y})
		}
	}
	// Then Y.
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			step(Node{cur.X, cur.Y + 1})
		} else {
			step(Node{cur.X, cur.Y - 1})
		}
	}
	if dst.IsController() {
		step(dst)
	}
	return path
}

// Hops returns the number of links on the route from src to dst.
func (m *Mesh) Hops(src, dst Node) int { return len(m.Path(src, dst)) - 1 }

// Transfer moves a packet of n payload-equivalent flits from src to dst
// along the dimension-ordered route, calling done when the tail finishes
// crossing the final link. Each link is held for the packet's full
// serialization time; the head cuts through to the next link after the
// hop latency plus one beat.
func (m *Mesh) Transfer(src, dst Node, flits int, done func()) {
	path := m.Path(src, dst)
	if len(path) < 2 {
		// Degenerate same-node transfer: no links crossed.
		m.eng.Schedule(0, func() {
			if done != nil {
				done()
			}
		})
		return
	}
	var step func(i int)
	step = func(i int) {
		link := m.Link(path[i], path[i+1])
		ser := link.TimeForFlits(flits)
		link.Acquire(func() {
			last := i+2 == len(path)
			if !last {
				// Head cut-through: downstream link is requested after the
				// router latency and the first beat.
				m.eng.Schedule(m.hopLatency+link.BeatTime(), func() { step(i + 1) })
			}
			m.eng.Schedule(ser, func() {
				link.Release()
				if last && done != nil {
					done()
				}
			})
		})
	}
	step(0)
}

// MaxLinkQueue returns the largest queue length currently present on any
// link — a congestion probe used by tests.
func (m *Mesh) MaxLinkQueue() int {
	max := 0
	for _, ch := range m.links {
		if q := ch.QueueLen(); q > max {
			max = q
		}
	}
	return max
}

// EdgeLinkBusy returns cumulative busy time of the ejection links into the
// controllers — the hotspot the paper identifies ("the performance
// bottleneck are the mesh channels near the flash controllers").
func (m *Mesh) EdgeLinkBusy() sim.Time {
	var total sim.Time
	for y := 0; y < m.h; y++ {
		total += m.Link(Node{0, y}, Controller(y)).TotalBusy()
		total += m.Link(Controller(y), Node{0, y}).TotalBusy()
	}
	return total
}
