package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPathXY(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 4, 4, 8, 1000)
	// X first, then Y.
	p := m.Path(Node{0, 0}, Node{2, 3})
	want := []Node{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {2, 3}}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestPathControllerEndpoints(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 4, 4, 8, 1000)
	// Controller 1 to chip (2,3): inject at (0,1), X to (2,1), Y to (2,3).
	p := m.Path(Controller(1), Node{2, 3})
	if p[0] != Controller(1) || p[1] != (Node{0, 1}) || p[len(p)-1] != (Node{2, 3}) {
		t.Fatalf("path = %v", p)
	}
	if m.Hops(Controller(1), Node{2, 3}) != 5 {
		t.Fatalf("hops = %d, want 5", m.Hops(Controller(1), Node{2, 3}))
	}
	// Chip back to a different controller: X to column 0 first, then Y, then eject.
	p = m.Path(Node{3, 0}, Controller(2))
	last := p[len(p)-1]
	if !last.IsController() || last.Y != 2 {
		t.Fatalf("path = %v", p)
	}
	for i := 1; i < len(p)-1; i++ {
		if p[i].IsController() {
			t.Fatalf("controller in the middle of path %v", p)
		}
	}
}

func TestPathSameNode(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 4, 4, 8, 1000)
	if got := m.Hops(Node{1, 1}, Node{1, 1}); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
}

// Property: paths are connected (adjacent hops), dimension-ordered, and
// minimal in length.
func TestPathProperty(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 8, 8, 2, 1000)
	prop := func(x1, y1, x2, y2 uint8) bool {
		src := Node{int(x1) % 8, int(y1) % 8}
		dst := Node{int(x2) % 8, int(y2) % 8}
		p := m.Path(src, dst)
		// minimal
		wantLen := abs(src.X-dst.X) + abs(src.Y-dst.Y) + 1
		if len(p) != wantLen {
			return false
		}
		turned := false
		for i := 1; i < len(p); i++ {
			dx, dy := abs(p[i].X-p[i-1].X), abs(p[i].Y-p[i-1].Y)
			if dx+dy != 1 {
				return false // non-adjacent hop
			}
			if dy == 1 {
				turned = true
			}
			if dx == 1 && turned {
				return false // X movement after Y: violates DOR
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTransferLatency(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 4, 4, 8, 1000) // 1 flit/ns links
	var doneAt sim.Time
	m.Transfer(Controller(0), Node{1, 0}, 100, func() { doneAt = e.Now() })
	e.Run()
	// 2 links; pipelined: last link starts after hop(10ns)+beat(1ns), then
	// serializes 100 flits. Total = 11 + 100 + ... first link grant at 0.
	want := (DefaultHopLatency + sim.Nanosecond) + 100*sim.Nanosecond
	if doneAt != want {
		t.Fatalf("2-hop transfer done at %v, want %v", doneAt, want)
	}
}

func TestTransferPinConstraintSlowdown(t *testing.T) {
	e2 := sim.NewEngine()
	narrow := New(e2, 8, 8, 2, 1000)
	e8 := sim.NewEngine()
	wide := New(e8, 8, 8, 8, 1000)
	var tNarrow, tWide sim.Time
	narrow.Transfer(Controller(0), Node{7, 7}, 16387, func() { tNarrow = e2.Now() })
	wide.Transfer(Controller(0), Node{7, 7}, 16387, func() { tWide = e8.Now() })
	e2.Run()
	e8.Run()
	ratio := float64(tNarrow) / float64(tWide)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("2-bit vs 8-bit transfer ratio = %.2f, want ~4 (%v vs %v)", ratio, tNarrow, tWide)
	}
}

func TestTransferSameNode(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 2, 2, 8, 1000)
	done := false
	m.Transfer(Node{1, 1}, Node{1, 1}, 50, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("degenerate transfer never completed")
	}
}

func TestCongestionAtControllerEdge(t *testing.T) {
	// All chips in row 0 send a page to controller 0 simultaneously: the
	// ejection link serializes everything, so total time is ~N * serTime,
	// and the edge link shows the load.
	e := sim.NewEngine()
	m := New(e, 8, 1, 8, 1000)
	flits := 16387
	remaining := 8
	for x := 0; x < 8; x++ {
		m.Transfer(Node{x, 0}, Controller(0), flits, func() { remaining-- })
	}
	e.Run()
	if remaining != 0 {
		t.Fatalf("%d transfers never completed", remaining)
	}
	serial := sim.Time(8*flits) * sim.Nanosecond
	if e.Now() < serial {
		t.Fatalf("completed in %v, faster than ejection-link serialization %v", e.Now(), serial)
	}
	eject := m.Link(Node{0, 0}, Controller(0))
	if eject.TotalBusy() != serial {
		t.Fatalf("ejection link busy %v, want %v", eject.TotalBusy(), serial)
	}
	if m.EdgeLinkBusy() != serial {
		t.Fatalf("EdgeLinkBusy = %v, want %v", m.EdgeLinkBusy(), serial)
	}
}

func TestLinkMissingPanics(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 2, 2, 8, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("non-adjacent link lookup did not panic")
		}
	}()
	m.Link(Node{0, 0}, Node{1, 1})
}

func TestNodeString(t *testing.T) {
	if Controller(3).String() != "ctrl3" || (Node{1, 2}).String() != "(1,2)" {
		t.Fatal("node strings wrong")
	}
}
