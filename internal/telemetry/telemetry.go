// Package telemetry is a passive time-series engine for the simulator.
//
// A Collector samples counters, gauges, and latency histograms over
// *simulated* time in fixed windows: host throughput and tail latency
// per window, per-tenant queue depth, GC activity, Omnibus grant wait,
// RAS/fault event counts, and array rebuild progress. It also owns the
// per-request latency Attribution objects (attribution.go) that
// decompose every request's end-to-end latency into named phases.
//
// The collector follows the internal/trace contract exactly:
//
//   - A nil *Collector is valid and every method is a no-op, so model
//     code calls hooks unconditionally and a run without telemetry
//     pays only nil checks.
//   - The collector never schedules events and never consults the
//     engine; callers pass the current simulated time into every hook.
//     An instrumented run therefore executes a bit-identical event
//     sequence (pinned by TestTelemetryOffIsBitIdentical).
//   - All accumulation is commutative or fed in deterministic order,
//     so exported series are byte-identical at any -parallel count.
package telemetry

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DefaultWindow is the sampling window width when Config.Window is
// zero. It matches trace.DefaultWindow so counter tracks line up with
// the utilization timelines in Perfetto.
const DefaultWindow = 500 * sim.Microsecond

// windowHistDensity is the bucket resolution of the small per-window
// latency histograms (coarser than the run-level 90/decade histograms;
// ~8% bucket error is fine for sparklines).
const windowHistDensity = 30

// Config selects telemetry collection. The zero value is usable.
type Config struct {
	// Window is the sampling window width in simulated time.
	// Zero selects DefaultWindow.
	Window sim.Time
}

// tenantSeries integrates one tenant's submission-queue depth over
// time, window by window, exactly like trace.Timeline does for
// resource queues.
type tenantSeries struct {
	name     string
	depthDur []sim.Time // sum of depth x duration per window
	depth    int
	at       sim.Time
}

// Collector accumulates all telemetry channels for one device run.
// It is not safe for concurrent use; like the trace recorder it lives
// inside a single engine's event callbacks (or is fed post-join from
// a single goroutine, as the array tier does).
type Collector struct {
	window sim.Time

	// Host completion channels, indexed by completion window.
	completed []int64
	bytes     []int64
	lat       []*stats.Histogram

	// Per-kind, per-phase attribution histograms for the whole run.
	phaseHist   [2][NumPhases]*stats.Histogram
	phaseTotal  [2][NumPhases]sim.Time
	requests    int64
	attViolated int64

	// GC activity: busy time integrated per window plus copy counts.
	gcBusy    []sim.Time
	gcCopies  []int64
	gcActive  bool
	gcSince   sim.Time
	gcSeen    bool
	lastEvent sim.Time // high-water mark of any hook, bounds open intervals

	// Omnibus grant wait: waited time integrated over the wait
	// interval, plus grant counts at resolution time.
	grantWait  []sim.Time
	grantCount []int64
	grantSeen  bool

	// Counted instants (RAS/fault events) per window, keyed by class.
	// Map order never leaks: Summary sorts the keys.
	events map[string][]int64

	// Per-tenant submission-queue depth.
	tenants []tenantSeries

	// Array rebuild progress: pages rebuilt per window.
	rebuilt     []int64
	rebuildSeen bool

	// FMMU map-cache activity: lookup hits and misses per window. mapSeen
	// gates both the series and the PhaseMap attribution rows so flat-mode
	// summaries stay byte-identical to builds without the map unit.
	mapHits   []int64
	mapMisses []int64
	mapSeen   bool

	// Named instants (e.g. rebuild-detect) surfaced in the summary.
	marks []Mark
}

// New returns a collector with the configured window width.
func New(cfg Config) *Collector {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	c := &Collector{window: w, events: make(map[string][]int64)}
	for k := 0; k < 2; k++ {
		for p := Phase(0); p < NumPhases; p++ {
			c.phaseHist[k][p] = stats.NewHistogram(90)
		}
	}
	return c
}

// Enabled reports whether the collector is active. Nil-safe.
func (c *Collector) Enabled() bool { return c != nil }

// Window returns the sampling window width.
func (c *Collector) Window() sim.Time {
	if c == nil {
		return 0
	}
	return c.window
}

// slot maps a timestamp to its window index.
func (c *Collector) slot(at sim.Time) int { return int(at / c.window) }

// touch records the high-water mark so open intervals (an unfinished
// GC round, a tenant queue that never drains) can be closed at export.
func (c *Collector) touch(at sim.Time) {
	if at > c.lastEvent {
		c.lastEvent = at
	}
}

func growI64(s []int64, w int) []int64 {
	for len(s) <= w {
		s = append(s, 0)
	}
	return s
}

func growT(s []sim.Time, w int) []sim.Time {
	for len(s) <= w {
		s = append(s, 0)
	}
	return s
}

// spread credits the duration [from, to) across the windows it
// overlaps, returning the grown slice.
func (c *Collector) spread(s []sim.Time, from, to sim.Time) []sim.Time {
	if to <= from {
		return s
	}
	s = growT(s, c.slot(to))
	for w := c.slot(from); w <= c.slot(to); w++ {
		start, end := sim.Time(w)*c.window, sim.Time(w+1)*c.window
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		if end > start {
			s[w] += end - start
		}
	}
	return s
}

// RecordCompletion adds one finished request to the windowed host
// series. It is order-independent (pure slot-indexed adds), so the
// array tier can feed it from joined per-device results after the
// fact. complete must not precede arrival.
func (c *Collector) RecordCompletion(kind stats.IOKind, arrival, complete sim.Time, bytes int64) {
	if c == nil {
		return
	}
	c.touch(complete)
	w := c.slot(complete)
	c.completed = growI64(c.completed, w)
	c.bytes = growI64(c.bytes, w)
	for len(c.lat) <= w {
		c.lat = append(c.lat, nil)
	}
	c.completed[w]++
	c.bytes[w] += bytes
	if c.lat[w] == nil {
		c.lat[w] = stats.NewHistogram(windowHistDensity)
	}
	c.lat[w].Add(complete - arrival)
}

// GCStarted marks the beginning of a GC round.
func (c *Collector) GCStarted(at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	c.gcActive, c.gcSince, c.gcSeen = true, at, true
}

// GCFinished marks the end of a GC round, crediting the busy interval.
func (c *Collector) GCFinished(at sim.Time) {
	if c == nil || !c.gcActive {
		return
	}
	c.touch(at)
	c.gcBusy = c.spread(c.gcBusy, c.gcSince, at)
	c.gcActive = false
}

// GCCopied counts one valid-page copy during collection.
func (c *Collector) GCCopied(at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	w := c.slot(at)
	c.gcCopies = growI64(c.gcCopies, w)
	c.gcCopies[w]++
	c.gcSeen = true
}

// GrantWait records one resolved Omnibus grant arbitration: the wait
// interval [from, to) is integrated across windows and the grant is
// counted in the window where it resolved. Zero-wait grants still
// count.
func (c *Collector) GrantWait(from, to sim.Time) {
	if c == nil {
		return
	}
	c.touch(to)
	c.grantWait = c.spread(c.grantWait, from, to)
	w := c.slot(to)
	c.grantCount = growI64(c.grantCount, w)
	c.grantCount[w]++
	c.grantSeen = true
}

// Event counts one instant of the named class (RAS/fault events:
// "program-fail", "grant-drop", "write-stall", ...).
func (c *Collector) Event(class string, at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	w := c.slot(at)
	c.events[class] = growI64(c.events[class], w)
	c.events[class][w]++
}

// RegisterTenants declares the tenant names, in display order, before
// any TenantDepth calls.
func (c *Collector) RegisterTenants(names []string) {
	if c == nil {
		return
	}
	for _, n := range names {
		c.tenants = append(c.tenants, tenantSeries{name: n})
	}
}

// TenantDepth records a change of one tenant's submission-queue depth.
// Calls must be time-ordered (they come from inside the simulation).
func (c *Collector) TenantDepth(name string, depth int, at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	for i := range c.tenants {
		t := &c.tenants[i]
		if t.name != name {
			continue
		}
		if t.depth > 0 {
			t.depthDur = c.spreadDepth(t.depthDur, t.at, at, t.depth)
		}
		t.depth, t.at = depth, at
		return
	}
}

// spreadDepth credits depth x duration over [from, to).
func (c *Collector) spreadDepth(s []sim.Time, from, to sim.Time, depth int) []sim.Time {
	if to <= from || depth == 0 {
		return s
	}
	s = growT(s, c.slot(to))
	for w := c.slot(from); w <= c.slot(to); w++ {
		start, end := sim.Time(w)*c.window, sim.Time(w+1)*c.window
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		if end > start {
			s[w] += (end - start) * sim.Time(depth)
		}
	}
	return s
}

// EnableMapPhase declares that a map unit is attached to this run, so
// summaries emit the map series and PhaseMap rows even if a window
// records no activity. Wired once at device construction; never called
// in flat mode.
func (c *Collector) EnableMapPhase() {
	if c == nil {
		return
	}
	c.mapSeen = true
}

// MapHit counts one map-cache lookup hit.
func (c *Collector) MapHit(at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	w := c.slot(at)
	c.mapHits = growI64(c.mapHits, w)
	c.mapHits[w]++
	c.mapSeen = true
}

// MapMiss counts one map-cache lookup miss (including coalesced joins
// onto an already in-flight fetch).
func (c *Collector) MapMiss(at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	w := c.slot(at)
	c.mapMisses = growI64(c.mapMisses, w)
	c.mapMisses[w]++
	c.mapSeen = true
}

// RebuildPage counts one array stripe page rebuilt onto a spare.
func (c *Collector) RebuildPage(at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	w := c.slot(at)
	c.rebuilt = growI64(c.rebuilt, w)
	c.rebuilt[w]++
	c.rebuildSeen = true
}

// AddMark records a named instant surfaced verbatim in the summary
// (rebuild detection, rebuild completion, ...).
func (c *Collector) AddMark(name string, at sim.Time) {
	if c == nil {
		return
	}
	c.touch(at)
	c.marks = append(c.marks, Mark{Name: name, AtUs: at.Microseconds()})
}

// Requests returns the number of attributed requests finished so far.
func (c *Collector) Requests() int64 {
	if c == nil {
		return 0
	}
	return c.requests
}

// AttributionViolations returns how many finished requests had phase
// durations that did not sum exactly to their end-to-end latency.
// The invariant test asserts this stays zero on real runs.
func (c *Collector) AttributionViolations() int64 {
	if c == nil {
		return 0
	}
	return c.attViolated
}
