// Latency attribution: each host request carries an Attribution that
// partitions its end-to-end latency [arrival, completion] into named
// phases. Mark(p, now) credits the interval since the previous mark to
// phase p and advances the cursor, so by construction the per-phase
// durations sum exactly to end-to-end latency as long as the final
// mark lands at completion time — FinishRequest verifies the identity
// per request and counts violations instead of trusting it.
package telemetry

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase names one segment of a request's life. The taxonomy follows
// the request path: submission-queue wait (including front-end
// arbitration), NVMe command processing, NVMe link transfer (write
// payload in, read return out), FTL stall (GC-driven allocation stalls
// for writes, inflight-write barriers for reads), and flash time (FTL
// issue through fabric transfer and chip ops to the last batch
// completion).
type Phase int

const (
	// PhaseQueue is submission-queue wait: request arrival to NVMe
	// pickup, including front-end arbitration when a Frontend is
	// configured (zero for direct host submission).
	PhaseQueue Phase = iota
	// PhaseCmd is NVMe command processing / controller dispatch.
	PhaseCmd
	// PhaseXfer is NVMe link payload transfer, including any queueing
	// on the link: the inbound write payload, the outbound read return.
	PhaseXfer
	// PhaseStall is FTL stall time separated from useful flash work:
	// writes blocked on free-page allocation behind GC, reads parked
	// behind in-flight writes to the same pages. For a write whose
	// prefix committed before the stall, in-flight program time
	// overlapping the stall is credited here (the stall is the
	// binding constraint).
	PhaseStall
	// PhaseMap is address-translation wait under the fmmu mapping mode:
	// time a request spends blocked on a map-cache miss while its
	// translation page is demand-paged in from flash (including queueing
	// behind an in-flight writeback of the same page). Flat mapping never
	// marks it, and summaries omit the phase unless the map unit is live,
	// so flat-mode output is byte-identical with or without this phase.
	PhaseMap
	// PhaseFlash is FTL issue to last flash batch completion: fabric
	// transfer plus chip ops, the useful device work.
	PhaseFlash
	// NumPhases bounds the per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{"sq-wait", "cmd", "nvme-xfer", "gc-stall", "map-stall", "flash"}

// String returns the phase's stable short name (used in JSON exports).
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Attribution tracks one in-flight request's phase breakdown. A nil
// *Attribution is valid and every method no-ops, mirroring the
// collector's passivity contract.
type Attribution struct {
	col     *Collector
	kind    stats.IOKind
	arrival sim.Time
	last    sim.Time
	phase   [NumPhases]sim.Time
}

// StartRequest opens an attribution for a request arriving at arrival.
// Returns nil (a valid no-op attribution) when the collector is nil.
func (c *Collector) StartRequest(kind stats.IOKind, arrival sim.Time) *Attribution {
	if c == nil {
		return nil
	}
	return &Attribution{col: c, kind: kind, arrival: arrival, last: arrival}
}

// Mark credits the time since the previous mark (initially the
// arrival) to phase p and advances the cursor to now. Marks at the
// current cursor time credit exactly zero, so un-stalled paths record
// clean zeros rather than noise.
func (a *Attribution) Mark(p Phase, now sim.Time) {
	if a == nil {
		return
	}
	if now > a.last {
		a.phase[p] += now - a.last
		a.last = now
	}
}

// Phase returns the duration credited to p so far.
func (a *Attribution) Phase(p Phase) sim.Time {
	if a == nil {
		return 0
	}
	return a.phase[p]
}

// FinishRequest closes an attribution at completion time, records the
// request into the windowed host series and the per-phase run
// histograms, and checks the partition identity: the phase durations
// must sum exactly to now-arrival. Violations are counted, not
// panicked on — the invariant test asserts the count stays zero.
func (c *Collector) FinishRequest(a *Attribution, now sim.Time, bytes int64) {
	if c == nil || a == nil {
		return
	}
	c.RecordCompletion(a.kind, a.arrival, now, bytes)
	c.requests++
	var sum sim.Time
	k := int(a.kind)
	for p := Phase(0); p < NumPhases; p++ {
		c.phaseHist[k][p].Add(a.phase[p])
		c.phaseTotal[k][p] += a.phase[p]
		sum += a.phase[p]
	}
	if sum != now-a.arrival || a.last != now {
		c.attViolated++
	}
}
