// JSON export: Summary freezes a collector into plain, deterministic
// series suitable for ssd.Summarize, the array run documents, Perfetto
// counter tracks, and cmd/report.
package telemetry

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Series is one named per-window value sequence. Values[i] covers
// simulated time [i*window, (i+1)*window).
type Series struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit"`
	Values []float64 `json:"values"`
}

// PhaseSummary aggregates one (kind, phase) histogram over the run.
type PhaseSummary struct {
	Kind    string  `json:"kind"`
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	MeanUs  float64 `json:"mean_us"`
	P50Us   float64 `json:"p50_us"`
	P99Us   float64 `json:"p99_us"`
	MaxUs   float64 `json:"max_us"`
	TotalUs float64 `json:"total_us"`
	// Share is this phase's fraction of the kind's summed latency.
	Share float64 `json:"share"`
}

// Mark is a named instant on the run timeline.
type Mark struct {
	Name string  `json:"name"`
	AtUs float64 `json:"at_us"`
}

// Summary is the machine-readable telemetry document for one run.
type Summary struct {
	WindowUs              float64        `json:"window_us"`
	Windows               int            `json:"windows"`
	Requests              int64          `json:"requests"`
	AttributionViolations int64          `json:"attribution_violations"`
	Series                []Series       `json:"series"`
	Phases                []PhaseSummary `json:"phases,omitempty"`
	Marks                 []Mark         `json:"marks,omitempty"`
}

// SeriesByName returns the named series, or nil.
func (s *Summary) SeriesByName(name string) *Series {
	if s == nil {
		return nil
	}
	for i := range s.Series {
		if s.Series[i].Name == name {
			return &s.Series[i]
		}
	}
	return nil
}

// round6 trims float noise so exported JSON stays compact and stable.
func round6(v float64) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}

// Summary freezes the collector at end-of-run time end. Open
// intervals (an active GC round, standing tenant queues) are closed at
// max(end, last hook time). Nil-safe: returns nil when disabled.
func (c *Collector) Summary(end sim.Time) *Summary {
	if c == nil {
		return nil
	}
	if end < c.lastEvent {
		end = c.lastEvent
	}
	// Close open intervals against a copy of the mutable state so
	// Summary stays idempotent.
	gcBusy := append([]sim.Time(nil), c.gcBusy...)
	if c.gcActive {
		gcBusy = c.spread(gcBusy, c.gcSince, end)
	}
	n := c.slot(end)
	if end > 0 && end%c.window == 0 {
		n-- // end on a window boundary: last window is [n-1]
	}
	if n < 0 {
		n = 0
	}
	windows := n + 1

	winSec := c.window.Seconds()
	kiops := make([]float64, windows)
	mbps := make([]float64, windows)
	mean := make([]float64, windows)
	p50 := make([]float64, windows)
	p99 := make([]float64, windows)
	for w := 0; w < windows; w++ {
		if w < len(c.completed) {
			kiops[w] = round6(float64(c.completed[w]) / winSec / 1000)
			mbps[w] = round6(float64(c.bytes[w]) / winSec / 1e6)
		}
		if w < len(c.lat) && c.lat[w] != nil {
			h := c.lat[w]
			mean[w] = round6(h.Mean().Microseconds())
			p50[w] = round6(h.Median().Microseconds())
			p99[w] = round6(h.P99().Microseconds())
		}
	}
	sum := &Summary{
		WindowUs:              c.window.Microseconds(),
		Windows:               windows,
		Requests:              c.requests,
		AttributionViolations: c.attViolated,
		Series: []Series{
			{Name: "throughput", Unit: "kiops", Values: kiops},
			{Name: "bandwidth", Unit: "mbps", Values: mbps},
			{Name: "lat_mean", Unit: "us", Values: mean},
			{Name: "lat_p50", Unit: "us", Values: p50},
			{Name: "lat_p99", Unit: "us", Values: p99},
		},
	}

	if c.gcSeen {
		busy := make([]float64, windows)
		copies := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(gcBusy) {
				busy[w] = round6(gcBusy[w].Seconds() / winSec)
			}
			if w < len(c.gcCopies) {
				copies[w] = float64(c.gcCopies[w])
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "gc_active", Unit: "frac", Values: busy},
			Series{Name: "gc_copies", Unit: "pages", Values: copies})
	}
	if c.grantSeen {
		wait := make([]float64, windows)
		grants := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(c.grantWait) {
				wait[w] = round6(c.grantWait[w].Microseconds())
			}
			if w < len(c.grantCount) {
				grants[w] = float64(c.grantCount[w])
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "grant_wait", Unit: "us", Values: wait},
			Series{Name: "grants", Unit: "count", Values: grants})
	}
	for i := range c.tenants {
		t := &c.tenants[i]
		dur := append([]sim.Time(nil), t.depthDur...)
		if t.depth > 0 {
			dur = c.spreadDepth(dur, t.at, end, t.depth)
		}
		depth := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(dur) {
				depth[w] = round6(dur[w].Seconds() / winSec)
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "qdepth:" + t.name, Unit: "reqs", Values: depth})
	}
	if c.rebuildSeen {
		pages := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(c.rebuilt) {
				pages[w] = float64(c.rebuilt[w])
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "rebuild", Unit: "pages", Values: pages})
	}
	if c.mapSeen {
		hits := make([]float64, windows)
		misses := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(c.mapHits) {
				hits[w] = float64(c.mapHits[w])
			}
			if w < len(c.mapMisses) {
				misses[w] = float64(c.mapMisses[w])
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "map_hits", Unit: "count", Values: hits},
			Series{Name: "map_misses", Unit: "count", Values: misses})
	}
	// Event classes in sorted order so map iteration never leaks.
	for _, class := range sortedKeys(c.events) {
		counts := make([]float64, windows)
		for w := 0; w < windows; w++ {
			if w < len(c.events[class]) {
				counts[w] = float64(c.events[class][w])
			}
		}
		sum.Series = append(sum.Series,
			Series{Name: "event:" + class, Unit: "count", Values: counts})
	}

	for k := 0; k < 2; k++ {
		kind := stats.IOKind(k).String()
		var kindTotal sim.Time
		for p := Phase(0); p < NumPhases; p++ {
			kindTotal += c.phaseTotal[k][p]
		}
		for p := Phase(0); p < NumPhases; p++ {
			h := c.phaseHist[k][p]
			if h.Count() == 0 {
				continue
			}
			// FinishRequest adds a zero into every phase histogram, so
			// Count alone cannot gate PhaseMap: without the flag the row
			// would appear (all-zero) in flat runs and break flat-mode
			// byte-identity with pre-map-unit output. Its zero total never
			// shifts the other phases' Share values.
			if p == PhaseMap && !c.mapSeen {
				continue
			}
			share := 0.0
			if kindTotal > 0 {
				share = round6(float64(c.phaseTotal[k][p]) / float64(kindTotal))
			}
			sum.Phases = append(sum.Phases, PhaseSummary{
				Kind:    kind,
				Phase:   p.String(),
				Count:   h.Count(),
				MeanUs:  round6(h.Mean().Microseconds()),
				P50Us:   round6(h.Median().Microseconds()),
				P99Us:   round6(h.P99().Microseconds()),
				MaxUs:   round6(h.Max().Microseconds()),
				TotalUs: round6(c.phaseTotal[k][p].Microseconds()),
				Share:   share,
			})
		}
	}
	sum.Marks = append(sum.Marks, c.marks...)
	return sum
}

func sortedKeys(m map[string][]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the class count is tiny and this avoids an
	// import for one call site.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// String summarizes the summary for debug printing.
func (s *Summary) String() string {
	if s == nil {
		return "telemetry: disabled"
	}
	return fmt.Sprintf("telemetry: %d windows x %.0fus, %d series, %d requests, %d violations",
		s.Windows, s.WindowUs, len(s.Series), s.Requests, s.AttributionViolations)
}
