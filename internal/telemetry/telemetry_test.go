package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

const us = sim.Microsecond

// TestNilCollectorIsSafe pins the passivity contract's disabled side:
// every hook on a nil collector (and nil attribution) is a no-op.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	if c.Window() != 0 {
		t.Fatal("nil collector has a window")
	}
	c.RecordCompletion(stats.Read, 0, 5*us, 4096)
	c.GCStarted(us)
	c.GCFinished(2 * us)
	c.GCCopied(us)
	c.GrantWait(us, 2*us)
	c.Event("program-fail", us)
	c.RegisterTenants([]string{"a"})
	c.TenantDepth("a", 3, us)
	c.RebuildPage(us)
	c.AddMark("m", us)
	a := c.StartRequest(stats.Write, 0)
	if a != nil {
		t.Fatal("nil collector returned a live attribution")
	}
	a.Mark(PhaseFlash, us)
	if a.Phase(PhaseFlash) != 0 {
		t.Fatal("nil attribution accumulated time")
	}
	c.FinishRequest(a, us, 4096)
	if c.Requests() != 0 || c.AttributionViolations() != 0 {
		t.Fatal("nil collector counted requests")
	}
	if c.Summary(us) != nil {
		t.Fatal("nil collector produced a summary")
	}
	if got := c.Summary(us).String(); got != "telemetry: disabled" {
		t.Fatalf("nil summary string %q", got)
	}
}

// TestWindowCount checks the window arithmetic, including the
// end-exactly-on-boundary case collapsing into the previous window.
func TestWindowCount(t *testing.T) {
	for _, tc := range []struct {
		end  sim.Time
		want int
	}{
		{0, 1}, {us, 1}, {10*us - 1, 1}, {10 * us, 1}, {10*us + 1, 2}, {20 * us, 2}, {35 * us, 4},
	} {
		c := New(Config{Window: 10 * us})
		s := c.Summary(tc.end)
		if s.Windows != tc.want {
			t.Fatalf("end=%v: %d windows, want %d", tc.end, s.Windows, tc.want)
		}
		for _, sr := range s.Series {
			if len(sr.Values) != tc.want {
				t.Fatalf("end=%v: series %s has %d values, want %d", tc.end, sr.Name, len(sr.Values), tc.want)
			}
		}
	}
	if w := New(Config{}).Window(); w != DefaultWindow {
		t.Fatalf("default window %v", w)
	}
}

// TestThroughputAndLatencySeries checks per-window completion counts
// and the windowed latency percentiles.
func TestThroughputAndLatencySeries(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.RecordCompletion(stats.Read, 0, 5*us, 4096)    // window 0, 5us latency
	c.RecordCompletion(stats.Read, 2*us, 8*us, 4096) // window 0, 6us latency
	c.RecordCompletion(stats.Write, 0, 25*us, 8192)  // window 2, 25us latency
	s := c.Summary(30 * us)
	if s.Windows != 3 {
		t.Fatalf("%d windows", s.Windows)
	}
	tp := s.SeriesByName("throughput")
	// 2 completions in a 10us window = 200 KIOPS; then 0; then 100.
	if want := []float64{200, 0, 100}; !reflect.DeepEqual(tp.Values, want) {
		t.Fatalf("throughput %v, want %v", tp.Values, want)
	}
	bw := s.SeriesByName("bandwidth")
	if bw.Values[0] <= 0 || bw.Values[1] != 0 || bw.Values[2] <= 0 {
		t.Fatalf("bandwidth %v", bw.Values)
	}
	mean := s.SeriesByName("lat_mean")
	if mean.Values[0] < 5 || mean.Values[0] > 6.5 || mean.Values[1] != 0 {
		t.Fatalf("lat_mean %v", mean.Values)
	}
	if p99 := s.SeriesByName("lat_p99"); p99.Values[2] < 24 || p99.Values[2] > 28 {
		t.Fatalf("lat_p99 %v", p99.Values)
	}
}

// TestGCBusyIntegration checks that one GC interval spreads its busy
// fraction across the windows it overlaps.
func TestGCBusyIntegration(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.GCStarted(5 * us)
	c.GCFinished(25 * us)
	c.GCCopied(7 * us)
	c.GCCopied(12 * us)
	s := c.Summary(30 * us)
	busy := s.SeriesByName("gc_active")
	if want := []float64{0.5, 1, 0.5}; !reflect.DeepEqual(busy.Values, want) {
		t.Fatalf("gc_active %v, want %v", busy.Values, want)
	}
	if copies := s.SeriesByName("gc_copies"); !reflect.DeepEqual(copies.Values, []float64{1, 1, 0}) {
		t.Fatalf("gc_copies %v", copies.Values)
	}
}

// TestSummaryClosesOpenIntervalsIdempotently: an unfinished GC round
// and a standing tenant queue are closed at the export horizon without
// mutating the collector — two exports agree byte for byte.
func TestSummaryClosesOpenIntervalsIdempotently(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.GCStarted(5 * us)
	c.RegisterTenants([]string{"t0"})
	c.TenantDepth("t0", 2, 0)
	first := c.Summary(20 * us)
	second := c.Summary(20 * us)
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("summary not idempotent:\n%s\n%s", a, b)
	}
	if busy := first.SeriesByName("gc_active"); !reflect.DeepEqual(busy.Values, []float64{0.5, 1}) {
		t.Fatalf("open GC interval not closed: %v", busy.Values)
	}
	if d := first.SeriesByName("qdepth:t0"); !reflect.DeepEqual(d.Values, []float64{2, 2}) {
		t.Fatalf("standing tenant depth not closed: %v", d.Values)
	}
}

// TestTenantDepthIntegration checks depth x duration averaging within
// a window.
func TestTenantDepthIntegration(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.RegisterTenants([]string{"a", "b"})
	c.TenantDepth("a", 4, 0)      // depth 4 over [0,5) = 2.0 average
	c.TenantDepth("a", 0, 5*us)   // drained
	c.TenantDepth("b", 1, 0)      // depth 1 across both windows
	c.TenantDepth("ghost", 9, us) // unregistered: dropped
	s := c.Summary(20 * us)
	if d := s.SeriesByName("qdepth:a"); !reflect.DeepEqual(d.Values, []float64{2, 0}) {
		t.Fatalf("qdepth:a %v", d.Values)
	}
	if d := s.SeriesByName("qdepth:b"); !reflect.DeepEqual(d.Values, []float64{1, 1}) {
		t.Fatalf("qdepth:b %v", d.Values)
	}
	if s.SeriesByName("qdepth:ghost") != nil {
		t.Fatal("unregistered tenant leaked into the summary")
	}
}

// TestGrantWaitAndEvents checks the grant-wait integration, the event
// class counting, and that event series export in sorted class order.
func TestGrantWaitAndEvents(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.GrantWait(8*us, 12*us) // 2us in window 0, 2us in window 1
	c.GrantWait(12*us, 12*us)
	c.Event("write-stall", us)
	c.Event("grant-drop", 15*us)
	c.Event("write-stall", 15*us)
	s := c.Summary(20 * us)
	if w := s.SeriesByName("grant_wait"); !reflect.DeepEqual(w.Values, []float64{2, 2}) {
		t.Fatalf("grant_wait %v", w.Values)
	}
	if g := s.SeriesByName("grants"); !reflect.DeepEqual(g.Values, []float64{0, 2}) {
		t.Fatalf("grants %v", g.Values)
	}
	if e := s.SeriesByName("event:grant-drop"); !reflect.DeepEqual(e.Values, []float64{0, 1}) {
		t.Fatalf("event:grant-drop %v", e.Values)
	}
	if e := s.SeriesByName("event:write-stall"); !reflect.DeepEqual(e.Values, []float64{1, 1}) {
		t.Fatalf("event:write-stall %v", e.Values)
	}
	var classes []string
	for _, sr := range s.Series {
		if len(sr.Name) > 6 && sr.Name[:6] == "event:" {
			classes = append(classes, sr.Name)
		}
	}
	if !reflect.DeepEqual(classes, []string{"event:grant-drop", "event:write-stall"}) {
		t.Fatalf("event series not sorted: %v", classes)
	}
}

// TestRebuildSeriesAndMarks checks the array-facing channels.
func TestRebuildSeriesAndMarks(t *testing.T) {
	c := New(Config{Window: 10 * us})
	c.RebuildPage(3 * us)
	c.RebuildPage(3 * us)
	c.RebuildPage(12 * us)
	c.AddMark("rebuild-detect", 2*us)
	c.AddMark("rebuild-complete", 12*us)
	s := c.Summary(0) // end before lastEvent: clamped up to 12us
	if r := s.SeriesByName("rebuild"); !reflect.DeepEqual(r.Values, []float64{2, 1}) {
		t.Fatalf("rebuild %v", r.Values)
	}
	if len(s.Marks) != 2 || s.Marks[0].Name != "rebuild-detect" || s.Marks[1].AtUs != 12 {
		t.Fatalf("marks %+v", s.Marks)
	}
}

// TestAttributionPartition builds one request whose marks partition
// [arrival, completion] and checks phase sums, histograms, and shares.
func TestAttributionPartition(t *testing.T) {
	c := New(Config{Window: 10 * us})
	a := c.StartRequest(stats.Read, 2*us)
	a.Mark(PhaseQueue, 4*us) // 2us queue
	a.Mark(PhaseCmd, 5*us)   // 1us cmd
	a.Mark(PhaseCmd, 5*us)   // zero-width re-mark: no-op
	a.Mark(PhaseStall, 5*us) // zero stall
	a.Mark(PhaseFlash, 11*us)
	a.Mark(PhaseXfer, 14*us)
	if got := a.Phase(PhaseFlash); got != 6*us {
		t.Fatalf("flash phase %v", got)
	}
	c.FinishRequest(a, 14*us, 4096)
	if c.Requests() != 1 || c.AttributionViolations() != 0 {
		t.Fatalf("requests=%d violations=%d", c.Requests(), c.AttributionViolations())
	}
	s := c.Summary(20 * us)
	var total float64
	for _, p := range s.Phases {
		if p.Kind != "read" {
			t.Fatalf("unexpected kind %q", p.Kind)
		}
		total += p.TotalUs
	}
	if total != 12 { // 14us - 2us arrival
		t.Fatalf("phase totals sum to %vus, want 12", total)
	}
	var shares float64
	for _, p := range s.Phases {
		shares += p.Share
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("shares sum to %v", shares)
	}
	// Zero-duration phases still appear (count > 0) with zero total.
	names := map[string]PhaseSummary{}
	for _, p := range s.Phases {
		names[p.Phase] = p
	}
	if names["gc-stall"].Count != 1 || names["gc-stall"].TotalUs != 0 {
		t.Fatalf("gc-stall row %+v", names["gc-stall"])
	}
}

// TestAttributionViolationDetected: a request whose final mark does not
// land on the completion time fails the partition identity and is
// counted, not dropped.
func TestAttributionViolationDetected(t *testing.T) {
	c := New(Config{})
	a := c.StartRequest(stats.Write, 0)
	a.Mark(PhaseFlash, 5*us)
	c.FinishRequest(a, 9*us, 0) // 4us never credited to any phase
	if c.AttributionViolations() != 1 {
		t.Fatalf("violations %d, want 1", c.AttributionViolations())
	}
	if c.Requests() != 1 {
		t.Fatalf("requests %d", c.Requests())
	}
}

// TestRecordCompletionOrderIndependent pins the property the array tier
// relies on: feeding completions in any order yields the same summary.
func TestRecordCompletionOrderIndependent(t *testing.T) {
	type rec struct {
		kind             stats.IOKind
		arrive, complete sim.Time
		bytes            int64
	}
	recs := []rec{
		{stats.Read, 0, 7 * us, 4096},
		{stats.Write, 3 * us, 25 * us, 8192},
		{stats.Read, 5 * us, 6 * us, 4096},
		{stats.Write, 0, 40 * us, 4096},
	}
	build := func(order []int) string {
		c := New(Config{Window: 10 * us})
		for _, i := range order {
			r := recs[i]
			c.RecordCompletion(r.kind, r.arrive, r.complete, r.bytes)
		}
		raw, _ := json.Marshal(c.Summary(40 * us))
		return string(raw)
	}
	fwd := build([]int{0, 1, 2, 3})
	rev := build([]int{3, 2, 1, 0})
	mix := build([]int{2, 0, 3, 1})
	if fwd != rev || fwd != mix {
		t.Fatalf("summary depends on completion feed order:\n%s\n%s\n%s", fwd, rev, mix)
	}
}

// TestPhaseStringNames pins the stable JSON phase names.
func TestPhaseStringNames(t *testing.T) {
	want := map[Phase]string{
		PhaseQueue: "sq-wait", PhaseCmd: "cmd", PhaseXfer: "nvme-xfer",
		PhaseStall: "gc-stall", PhaseFlash: "flash",
	}
	for p, name := range want {
		if p.String() != name {
			t.Fatalf("phase %d = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(99).String() != "unknown" || Phase(-1).String() != "unknown" {
		t.Fatal("out-of-range phase name")
	}
}
