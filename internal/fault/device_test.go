package fault

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestDeviceScheduleKillSemantics(t *testing.T) {
	s := NewDeviceSchedule([]DeviceEvent{
		{Device: 2, At: 100 * sim.Microsecond},
		{Device: 2, At: 50 * sim.Microsecond}, // earliest kill wins
		{Device: 5, At: 0},
	})
	if s.DeadAt(2, 49*sim.Microsecond) {
		t.Fatal("device dead before its kill time")
	}
	if !s.DeadAt(2, 50*sim.Microsecond) || !s.DeadAt(2, sim.Second) {
		t.Fatal("device not dead at/after its kill time")
	}
	if at, ok := s.KilledAt(2); !ok || at != 50*sim.Microsecond {
		t.Fatalf("KilledAt(2) = %v,%v, want 50us,true", at, ok)
	}
	if !s.DeadAt(5, 0) {
		t.Fatal("t=0 kill not dead at t=0")
	}
	if _, ok := s.KilledAt(3); ok || s.DeadAt(3, sim.Second) {
		t.Fatal("unkilled device reported dead")
	}
	kills := s.Kills()
	if len(kills) != 3 || kills[0].Device != 5 || kills[1].Device != 2 || kills[2].Device != 2 {
		t.Fatalf("Kills() order wrong: %v", kills)
	}
}

func TestDeviceScheduleTransientWindows(t *testing.T) {
	s := NewDeviceSchedule([]DeviceEvent{
		{Device: 1, At: 10, Transient: true, Until: 20},
		{Device: 1, At: 15, Transient: true, Until: 40}, // overlapping: latest end wins
	})
	if s.Outages() != 2 {
		t.Fatalf("Outages() = %d, want 2", s.Outages())
	}
	if _, out := s.UnavailableAt(1, 9); out {
		t.Fatal("unavailable before the window")
	}
	if until, out := s.UnavailableAt(1, 10); !out || until != 20 {
		t.Fatalf("UnavailableAt(1,10) = %v,%v, want 20,true", until, out)
	}
	if until, out := s.UnavailableAt(1, 16); !out || until != 40 {
		t.Fatalf("overlapping windows: until = %v,%v, want 40,true", until, out)
	}
	if _, out := s.UnavailableAt(1, 40); out {
		t.Fatal("window end is exclusive")
	}
	if s.AvailableAt(1, 16) || !s.AvailableAt(1, 40) {
		t.Fatal("AvailableAt disagrees with the outage windows")
	}
}

// A nil schedule is the healthy array: every query must be answerable
// without conditional wiring at call sites.
func TestDeviceScheduleNilIsHealthy(t *testing.T) {
	var s *DeviceSchedule
	if s.DeadAt(0, sim.Second) || !s.AvailableAt(7, 0) {
		t.Fatal("nil schedule reported a failure")
	}
	if _, ok := s.KilledAt(0); ok {
		t.Fatal("nil schedule reported a kill")
	}
	if s.Kills() != nil || s.Outages() != 0 {
		t.Fatal("nil schedule reported events")
	}
}

func TestDeviceScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   DeviceEvent
	}{
		{"negative device", DeviceEvent{Device: -1, At: 0}},
		{"negative time", DeviceEvent{Device: 0, At: -1}},
		{"empty window", DeviceEvent{Device: 0, At: 10, Transient: true, Until: 10}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: NewDeviceSchedule did not panic", c.name)
				}
			}()
			NewDeviceSchedule([]DeviceEvent{c.ev})
		}()
	}
}

func TestRandomOutagesDeterministicAndBounded(t *testing.T) {
	a := RandomOutages(7, 8, 16, sim.Second, 10*sim.Millisecond)
	b := RandomOutages(7, 8, 16, sim.Second, 10*sim.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different outage schedules")
	}
	if len(a) != 16 {
		t.Fatalf("got %d outages, want 16", len(a))
	}
	for i, e := range a {
		if !e.Transient {
			t.Fatalf("outage %d is not transient", i)
		}
		if e.Device < 0 || e.Device >= 8 {
			t.Fatalf("outage %d device %d out of range", i, e.Device)
		}
		if e.At < 0 || e.At >= sim.Second {
			t.Fatalf("outage %d start %v outside horizon", i, e.At)
		}
		if d := e.Until - e.At; d < 1 || d > 10*sim.Millisecond {
			t.Fatalf("outage %d duration %v outside (0,10ms]", i, d)
		}
	}
	c := RandomOutages(8, 8, 16, sim.Second, 10*sim.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if RandomOutages(7, 0, 4, sim.Second, sim.Millisecond) != nil {
		t.Fatal("zero devices should yield nil")
	}
}
