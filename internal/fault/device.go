package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// DeviceEvent is one whole-device availability event in an array-level
// failure schedule: a permanent kill (the device stops accepting new
// requests at At and never recovers) or a transient outage (the device
// rejects new requests in [At, Until) and then resumes). Events are part
// of the configuration, so two runs with the same schedule observe
// byte-identical failure behavior — the same property the per-draw
// Injector guarantees for its classes.
type DeviceEvent struct {
	// Device is the array-wide device index the event applies to.
	Device int
	// At is when the event takes effect.
	At sim.Time
	// Transient selects a bounded outage instead of a permanent kill.
	Transient bool
	// Until is the exclusive end of a transient outage; ignored for kills.
	Until sim.Time
}

// String renders the event for logs and failure messages.
func (e DeviceEvent) String() string {
	if e.Transient {
		return fmt.Sprintf("dev%d transient [%v,%v)", e.Device, e.At, e.Until)
	}
	return fmt.Sprintf("dev%d killed at %v", e.Device, e.At)
}

// DeviceSchedule answers availability queries over a fixed set of device
// events. Like the Injector, a nil *DeviceSchedule is valid and reports
// every device healthy, so un-faulted arrays need no conditional wiring.
type DeviceSchedule struct {
	kills    map[int]sim.Time // device -> kill time (earliest)
	outages  map[int][]DeviceEvent
	killList []DeviceEvent // kills in (At, Device) order
	nOutages int
}

// NewDeviceSchedule validates and indexes a failure schedule. Negative
// device indexes, negative times, and empty transient windows panic,
// mirroring the Config.Validate convention.
func NewDeviceSchedule(events []DeviceEvent) *DeviceSchedule {
	s := &DeviceSchedule{kills: make(map[int]sim.Time), outages: make(map[int][]DeviceEvent)}
	for _, e := range events {
		if e.Device < 0 {
			panic(fmt.Sprintf("fault: negative device index %d", e.Device))
		}
		if e.At < 0 {
			panic(fmt.Sprintf("fault: negative event time %v", e.At))
		}
		if e.Transient {
			if e.Until <= e.At {
				panic(fmt.Sprintf("fault: empty transient window [%v,%v)", e.At, e.Until))
			}
			s.outages[e.Device] = append(s.outages[e.Device], e)
			s.nOutages++
			continue
		}
		if t, ok := s.kills[e.Device]; !ok || e.At < t {
			s.kills[e.Device] = e.At
		}
		s.killList = append(s.killList, e)
	}
	sort.Slice(s.killList, func(i, j int) bool {
		if s.killList[i].At != s.killList[j].At {
			return s.killList[i].At < s.killList[j].At
		}
		return s.killList[i].Device < s.killList[j].Device
	})
	return s
}

// DeadAt reports whether the device is permanently failed at time t.
func (s *DeviceSchedule) DeadAt(dev int, t sim.Time) bool {
	if s == nil {
		return false
	}
	at, ok := s.kills[dev]
	return ok && t >= at
}

// KilledAt returns the device's kill time, if it has one.
func (s *DeviceSchedule) KilledAt(dev int) (sim.Time, bool) {
	if s == nil {
		return 0, false
	}
	at, ok := s.kills[dev]
	return at, ok
}

// UnavailableAt reports whether the device is inside a transient outage
// at time t, and if so when the outage ends.
func (s *DeviceSchedule) UnavailableAt(dev int, t sim.Time) (until sim.Time, out bool) {
	if s == nil {
		return 0, false
	}
	for _, e := range s.outages[dev] {
		if t >= e.At && t < e.Until {
			if !out || e.Until > until {
				until = e.Until
				out = true
			}
		}
	}
	return until, out
}

// AvailableAt reports whether the device accepts new requests at time t —
// neither killed nor inside a transient window.
func (s *DeviceSchedule) AvailableAt(dev int, t sim.Time) bool {
	if s.DeadAt(dev, t) {
		return false
	}
	_, out := s.UnavailableAt(dev, t)
	return !out
}

// Kills returns the permanent failures in (time, device) order.
func (s *DeviceSchedule) Kills() []DeviceEvent {
	if s == nil {
		return nil
	}
	return s.killList
}

// Outages returns the number of transient windows in the schedule.
func (s *DeviceSchedule) Outages() int {
	if s == nil {
		return 0
	}
	return s.nOutages
}

// RandomOutages draws n seed-driven transient windows over [0, horizon):
// each picks a device, a start, and a duration up to maxDur from a
// splitmix64 stream, so the same (seed, devices, n, horizon, maxDur)
// always yields the same schedule — the device-failure analogue of the
// Injector's per-class draws.
func RandomOutages(seed uint64, devices, n int, horizon, maxDur sim.Time) []DeviceEvent {
	if devices <= 0 || n <= 0 || horizon <= 0 || maxDur <= 0 {
		return nil
	}
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
	out := make([]DeviceEvent, 0, n)
	for i := 0; i < n; i++ {
		base := seed + uint64(i)*0x9E3779B97F4A7C15
		dev := int(mix(base) % uint64(devices))
		at := sim.Time(mix(base+1) % uint64(horizon))
		dur := 1 + sim.Time(mix(base+2)%uint64(maxDur))
		out = append(out, DeviceEvent{Device: dev, At: at, Transient: true, Until: at + dur})
	}
	return out
}
