// Package fault is the deterministic, seed-driven fault-injection
// subsystem. Every layer of the simulator (flash chips, the FTL, the
// interconnect fabrics) draws fault outcomes from one shared Injector;
// because draws are hashes of (seed, fault class, draw counter) and the
// event engine itself is deterministic, two runs with the same seed and
// the same configuration inject byte-identical fault sequences — the
// property the RAS determinism tests assert.
//
// The injector is nil-safe: every method on a nil *Injector reports "no
// fault", so un-faulted builds pay a single nil check per potential
// fault site and need no conditional wiring.
package fault

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Class identifies one fault class. Each class has its own rate, quota,
// and draw counter so enabling one class never perturbs the draw
// sequence of another.
type Class int

// Fault classes.
const (
	// ReadECC: a page sense fails the on-chip ECC check. Recovered by the
	// chip's read-retry ladder, escalating to controller strong ECC.
	ReadECC Class = iota
	// OnDieECC: the weak on-die detector flags a flash-to-flash copy page
	// (Sec VIII hybrid ECC); the copy relays through the controller LDPC.
	OnDieECC
	// ProgramFail: a program operation fails its status check. The FTL
	// retires the block and remaps the in-flight write.
	ProgramFail
	// EraseFail: an erase operation fails its status check. The FTL
	// retires the block instead of returning it to the free pool.
	EraseFail
	// GrantDrop: an Omnibus request/grant exchange is lost. The source
	// controller times out, backs off, retries, and finally fails over to
	// the controller-relayed copy path.
	GrantDrop

	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ReadECC:
		return "read-ecc"
	case OnDieECC:
		return "on-die-ecc"
	case ProgramFail:
		return "program-fail"
	case EraseFail:
		return "erase-fail"
	case GrantDrop:
		return "grant-drop"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config describes one fault campaign. The zero value injects nothing;
// rates are probabilities in [0,1], quotas force a fixed number of
// injections per chip before the rate applies.
type Config struct {
	// Seed drives every draw. Two runs with equal Seed and equal draw
	// sequences observe identical fault outcomes.
	Seed uint64

	// Read path. A faulted read re-senses up to ReadRetryMax times, each
	// retry costing one extra tR plus k*ReadRetryStep; if the ladder is
	// exhausted the page relays through the controller's strong ECC for
	// StrongECCLatency.
	ReadECCRate      float64
	ReadRetryMax     int      // default 3
	ReadRetryStep    sim.Time // default 2us
	StrongECCLatency sim.Time // default 10us

	// OnDieECCRate is the Sec VIII hybrid-ECC fallback probability for
	// direct flash-to-flash copies (the former SetOnDieEccFailRate hook).
	OnDieECCRate float64

	// Write/erase path. Rates must stay below 1: retirement handling
	// retries the operation on a fresh block, which only terminates when
	// some draw eventually succeeds. Quotas (...PerChip) force that many
	// deterministic failures per chip before the rate takes over.
	ProgramFailRate     float64
	ProgramFailsPerChip int
	EraseFailRate       float64
	EraseFailsPerChip   int

	// Interconnect. GrantDropRate loses request/grant exchanges; a
	// dropped grant resolves after GrantTimeout<<attempt and retries up
	// to GrantRetryMax times — within GrantBackoffBudget of cumulative
	// backoff — before failing over to the relay path.
	// DeadVChannels lists v-channel indexes that are hard-failed from t=0
	// (the kill-switch can also be thrown mid-run via KillVChannel).
	GrantDropRate float64
	GrantTimeout  sim.Time // default 5us
	GrantRetryMax int      // default 3
	// GrantBackoffBudget caps the total backoff time one grant exchange
	// may accumulate before failing over, independent of the retry count.
	// The default covers the full default ladder (the count bound fires
	// first); setting it lower trades recovery attempts for a hard bound
	// on added latency, and every budget-triggered failover is tallied in
	// RAS.GrantBudgetExhausted.
	GrantBackoffBudget sim.Time
	DeadVChannels      []int
}

// withDefaults fills the retry-ladder and timeout knobs.
func (c Config) withDefaults() Config {
	if c.ReadRetryMax == 0 {
		c.ReadRetryMax = 3
	}
	if c.ReadRetryStep == 0 {
		c.ReadRetryStep = 2 * sim.Microsecond
	}
	if c.StrongECCLatency == 0 {
		c.StrongECCLatency = 10 * sim.Microsecond
	}
	if c.GrantTimeout == 0 {
		c.GrantTimeout = 5 * sim.Microsecond
	}
	if c.GrantRetryMax == 0 {
		c.GrantRetryMax = 3
	}
	if c.GrantBackoffBudget == 0 {
		// Wide enough for the whole exponential ladder at the configured
		// retry count: sum of GrantTimeout<<i for i<GrantRetryMax is
		// GrantTimeout*(2^GrantRetryMax - 1), so twice the top term covers
		// it and the count bound remains the default failover trigger.
		c.GrantBackoffBudget = c.GrantTimeout << uint(c.GrantRetryMax)
	}
	return c
}

// Validate panics on impossible configurations, mirroring the
// panic-on-misconfiguration convention of ssd.Config.Validate.
func (c Config) Validate() {
	check01 := func(name string, r float64) {
		if r < 0 || r > 1 {
			panic(fmt.Sprintf("fault: %s rate %v outside [0,1]", name, r))
		}
	}
	check01("read ECC", c.ReadECCRate)
	check01("on-die ECC", c.OnDieECCRate)
	check01("grant drop", c.GrantDropRate)
	// Program/erase recovery re-runs the operation on a fresh block; a
	// rate of 1 would retry forever.
	if c.ProgramFailRate < 0 || c.ProgramFailRate >= 1 {
		panic(fmt.Sprintf("fault: program fail rate %v outside [0,1)", c.ProgramFailRate))
	}
	if c.EraseFailRate < 0 || c.EraseFailRate >= 1 {
		panic(fmt.Sprintf("fault: erase fail rate %v outside [0,1)", c.EraseFailRate))
	}
	if c.ProgramFailsPerChip < 0 || c.EraseFailsPerChip < 0 {
		panic("fault: negative per-chip fail quota")
	}
	if c.ReadRetryMax < 0 || c.GrantRetryMax < 0 {
		panic("fault: negative retry bound")
	}
	if c.GrantBackoffBudget < 0 {
		panic("fault: negative grant backoff budget")
	}
	for _, v := range c.DeadVChannels {
		if v < 0 {
			panic(fmt.Sprintf("fault: negative dead v-channel index %d", v))
		}
	}
}

// Injector draws deterministic fault outcomes and owns the run's RAS
// counters. All methods are nil-safe.
type Injector struct {
	cfg   Config
	rates [numClasses]float64
	quota [numClasses]int

	draws    [numClasses]uint64
	injected [numClasses]int64

	// quotaUsed counts forced injections per (class, chip key).
	quotaUsed [numClasses]map[uint64]int

	deadV map[int]bool
	ras   *stats.RAS
}

// New builds an injector. The config is validated and defaulted.
func New(cfg Config) *Injector {
	cfg.Validate()
	cfg = cfg.withDefaults()
	in := &Injector{cfg: cfg, ras: stats.NewRAS(), deadV: make(map[int]bool)}
	in.rates[ReadECC] = cfg.ReadECCRate
	in.rates[OnDieECC] = cfg.OnDieECCRate
	in.rates[ProgramFail] = cfg.ProgramFailRate
	in.rates[EraseFail] = cfg.EraseFailRate
	in.rates[GrantDrop] = cfg.GrantDropRate
	in.quota[ProgramFail] = cfg.ProgramFailsPerChip
	in.quota[EraseFail] = cfg.EraseFailsPerChip
	for c := Class(0); c < numClasses; c++ {
		in.quotaUsed[c] = make(map[uint64]int)
	}
	for _, v := range cfg.DeadVChannels {
		in.deadV[v] = true
	}
	return in
}

// Config returns the validated, defaulted configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}.withDefaults()
	}
	return in.cfg
}

// RAS returns the run's RAS counters, or nil on a nil injector.
func (in *Injector) RAS() *stats.RAS {
	if in == nil {
		return nil
	}
	return in.ras
}

// SetRate overrides one class's rate mid-run (experiment sweeps).
func (in *Injector) SetRate(c Class, rate float64) {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: %s rate %v outside [0,1]", c, rate))
	}
	if (c == ProgramFail || c == EraseFail) && rate >= 1 {
		panic(fmt.Sprintf("fault: %s rate must stay below 1", c))
	}
	in.rates[c] = rate
	switch c {
	case ReadECC:
		in.cfg.ReadECCRate = rate
	case OnDieECC:
		in.cfg.OnDieECCRate = rate
	case ProgramFail:
		in.cfg.ProgramFailRate = rate
	case EraseFail:
		in.cfg.EraseFailRate = rate
	case GrantDrop:
		in.cfg.GrantDropRate = rate
	}
}

// Rate returns the current rate for a class (0 on nil).
func (in *Injector) Rate(c Class) float64 {
	if in == nil {
		return 0
	}
	return in.rates[c]
}

// hash advances the class's draw counter and returns a SplitMix64-mixed
// word of (seed, class, counter).
func (in *Injector) hash(c Class) uint64 {
	in.draws[c]++
	x := in.cfg.Seed ^ (uint64(c)+1)*0xA24BAED4963EE407
	x += in.draws[c] * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Draw returns the next deterministic outcome for a class at its
// configured rate. A zero rate returns false without consuming a draw,
// so disabled classes leave other sequences untouched.
func (in *Injector) Draw(c Class) bool {
	if in == nil || in.rates[c] <= 0 {
		return false
	}
	hit := float64(in.hash(c)%1_000_000)/1_000_000 < in.rates[c]
	if hit {
		in.injected[c]++
	}
	return hit
}

// DrawFor is Draw with a per-chip quota: while the class's quota for the
// given key is unexhausted the draw is forced true, guaranteeing (e.g.)
// "at least N program-fails per chip" regardless of rate.
func (in *Injector) DrawFor(c Class, key uint64) bool {
	if in == nil {
		return false
	}
	if q := in.quota[c]; q > 0 && in.quotaUsed[c][key] < q {
		in.quotaUsed[c][key]++
		in.injected[c]++
		return true
	}
	return in.Draw(c)
}

// Injected returns how many times a class has fired (0 on nil).
func (in *Injector) Injected(c Class) int64 {
	if in == nil {
		return 0
	}
	return in.injected[c]
}

// VChannelDead reports whether a v-channel is kill-switched.
func (in *Injector) VChannelDead(v int) bool {
	if in == nil {
		return false
	}
	return in.deadV[v]
}

// KillVChannel hard-fails a v-channel; traffic must route around it.
func (in *Injector) KillVChannel(v int) { in.deadV[v] = true }

// ReviveVChannel restores a killed v-channel.
func (in *Injector) ReviveVChannel(v int) { delete(in.deadV, v) }
