package fault_test

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// A read that hits BOTH a kill-switched v-channel and a full ECC retry
// ladder must take the degraded h-route exactly once: the ladder
// re-senses on the die and never re-issues the fabric return, so the two
// recovery mechanisms compose without double-retrying the transfer. The
// counters pin the exact interaction — one degraded return, one relay,
// and ReadRetryMax re-senses per read — for both Omnibus architectures.
func TestKillSwitchAndRetryLadderComposeOnce(t *testing.T) {
	const n = 32
	for _, arch := range []ssd.Arch{ssd.ArchPnSSD, ssd.ArchPnSSDSplit} {
		t.Run(arch.String(), func(t *testing.T) {
			cfg := ssd.ScaledConfig()
			cfg.Geometry.BlocksPerPlane = 8
			cfg.Geometry.PagesPerBlock = 16
			// Every v-channel dead (numV = min(channels, ways)) and every
			// first sense failing ECC: each read exercises both paths.
			numV := cfg.Channels
			if cfg.Ways < numV {
				numV = cfg.Ways
			}
			dead := make([]int, numV)
			for i := range dead {
				dead[i] = i
			}
			cfg.Fault = &fault.Config{Seed: 1, ReadECCRate: 1.0, DeadVChannels: dead}

			s := ssd.New(arch, cfg)
			foot := s.Config.LogicalPages()
			s.Host.Warmup(foot)
			reqs := make([]host.Request, n)
			for i := range reqs {
				reqs[i] = host.Request{
					Arrival: sim.Time(i) * 50 * sim.Microsecond,
					Kind:    stats.Read,
					LPN:     int64(i) * (foot / n),
					Pages:   1,
				}
			}
			completed := s.Host.MustReplay(reqs)
			s.Run()
			if *completed != n {
				t.Fatalf("completed %d/%d reads", *completed, n)
			}

			ras := s.RAS()
			retryMax := int64(s.Faults.Config().ReadRetryMax)
			// On-die ladder: every read faults, burns the full ladder, and
			// escalates to the strong-ECC relay exactly once.
			if ras.ReadFaults != n || ras.ReadRelays != n {
				t.Fatalf("ReadFaults=%d ReadRelays=%d, want %d/%d", ras.ReadFaults, ras.ReadRelays, n, n)
			}
			if ras.ReadRetries != n*retryMax {
				t.Fatalf("ReadRetries = %d, want %d", ras.ReadRetries, n*retryMax)
			}
			// Fabric route: the degraded h-return fires once per read — the
			// ladder must not re-issue the transfer and re-count the route.
			if ras.DegradedReturns != n {
				t.Fatalf("DegradedReturns = %d, want %d (double-retry?)", ras.DegradedReturns, n)
			}
			ob := s.Fabric.(*controller.OmnibusFabric)
			h, v, split, _, _ := ob.PathCounts()
			if h != n || v != 0 || split != 0 {
				t.Fatalf("returns h=%d v=%d split=%d, want %d/0/0", h, v, split, n)
			}
		})
	}
}
