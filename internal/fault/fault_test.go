package fault

import "testing"

func TestDrawDeterministicAcrossInjectors(t *testing.T) {
	cfg := Config{Seed: 42, ReadECCRate: 0.3, GrantDropRate: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		if a.Draw(ReadECC) != b.Draw(ReadECC) {
			t.Fatalf("ReadECC draw %d diverged between equal-seed injectors", i)
		}
		if a.Draw(GrantDrop) != b.Draw(GrantDrop) {
			t.Fatalf("GrantDrop draw %d diverged between equal-seed injectors", i)
		}
	}
}

func TestDrawSequencesIndependentPerClass(t *testing.T) {
	// Enabling a second class must not perturb the first class's sequence.
	solo := New(Config{Seed: 7, ReadECCRate: 0.3})
	both := New(Config{Seed: 7, ReadECCRate: 0.3, GrantDropRate: 0.5})
	for i := 0; i < 500; i++ {
		both.Draw(GrantDrop)
		if solo.Draw(ReadECC) != both.Draw(ReadECC) {
			t.Fatalf("ReadECC draw %d perturbed by GrantDrop draws", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(Config{Seed: 1, ReadECCRate: 0.5}), New(Config{Seed: 2, ReadECCRate: 0.5})
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Draw(ReadECC) == b.Draw(ReadECC) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

func TestRateApproximatelyRespected(t *testing.T) {
	in := New(Config{Seed: 3, ReadECCRate: 0.3})
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if in.Draw(ReadECC) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("hit fraction = %.3f, want ~0.30", frac)
	}
	if in.Injected(ReadECC) != int64(hits) {
		t.Fatalf("Injected = %d, hits = %d", in.Injected(ReadECC), hits)
	}
}

func TestQuotaForcesPerChipFailures(t *testing.T) {
	in := New(Config{Seed: 1, ProgramFailsPerChip: 2})
	for chip := uint64(0); chip < 4; chip++ {
		for i := 0; i < 2; i++ {
			if !in.DrawFor(ProgramFail, chip) {
				t.Fatalf("chip %d forced fail %d not injected", chip, i)
			}
		}
		// Quota exhausted and rate is zero: no more failures.
		for i := 0; i < 50; i++ {
			if in.DrawFor(ProgramFail, chip) {
				t.Fatalf("chip %d failed past its quota", chip)
			}
		}
	}
	if in.Injected(ProgramFail) != 8 {
		t.Fatalf("Injected = %d, want 8", in.Injected(ProgramFail))
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Draw(ReadECC) || in.DrawFor(ProgramFail, 0) || in.VChannelDead(0) {
		t.Fatal("nil injector reported a fault")
	}
	if in.RAS() != nil {
		t.Fatal("nil injector returned RAS counters")
	}
	if in.Rate(ReadECC) != 0 || in.Injected(ReadECC) != 0 {
		t.Fatal("nil injector reported nonzero state")
	}
	if in.Config().ReadRetryMax == 0 {
		t.Fatal("nil injector config missing defaults")
	}
}

func TestKillSwitch(t *testing.T) {
	in := New(Config{Seed: 1, DeadVChannels: []int{2}})
	if !in.VChannelDead(2) || in.VChannelDead(1) {
		t.Fatal("DeadVChannels config not honored")
	}
	in.KillVChannel(1)
	if !in.VChannelDead(1) {
		t.Fatal("KillVChannel had no effect")
	}
	in.ReviveVChannel(2)
	if in.VChannelDead(2) {
		t.Fatal("ReviveVChannel had no effect")
	}
}

func TestValidateRejectsCertainProgramFailure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("program fail rate 1.0 did not panic")
		}
	}()
	New(Config{Seed: 1, ProgramFailRate: 1.0})
}

func TestValidateRejectsNegativeRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	New(Config{Seed: 1, ReadECCRate: -0.1})
}
