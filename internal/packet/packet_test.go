package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestControlRoundTrip(t *testing.T) {
	cases := []Control{
		ReadControl(Address{Column: 0x1234, Row: 0xABCDEF}),
		ProgramControl(Address{Column: 0, Row: 1}),
		EraseControl(Address{Row: 0x00FFEE}),
		ReadXferControl(Address{Column: 512, Row: 42}),
		VXferOutControl(Address{Column: 1, Row: 2}),
		VXferInControl(Address{Column: 3, Row: 4}),
		VCommitControl(Address{Column: 5, Row: 6}),
	}
	for _, c := range cases {
		enc, err := c.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", c, err)
		}
		if len(enc) != c.Flits() {
			t.Fatalf("wire len %d != Flits() %d", len(enc), c.Flits())
		}
		dec, n, err := DecodeControl(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if !bytes.Equal(dec.Commands, c.Commands) || dec.HasCol != c.HasCol || dec.HasRow != c.HasRow {
			t.Fatalf("decoded %+v != original %+v", dec, c)
		}
		if c.HasCol && dec.Addr.Column != c.Addr.Column {
			t.Fatalf("column %x != %x", dec.Addr.Column, c.Addr.Column)
		}
		if c.HasRow && dec.Addr.Row != c.Addr.Row {
			t.Fatalf("row %x != %x", dec.Addr.Row, c.Addr.Row)
		}
	}
}

func TestReadControlWireSize(t *testing.T) {
	// Header + 2 commands + 2 column + 3 row = 8 flits, per Fig 8.
	if got := ReadControl(Address{}).Flits(); got != 8 {
		t.Fatalf("read control flits = %d, want 8", got)
	}
	if got := ControlFlitsFor(); got != 8 {
		t.Fatalf("ControlFlitsFor = %d, want 8", got)
	}
	// Erase: header + 2 commands + 3 row = 6 flits.
	if got := EraseControl(Address{}).Flits(); got != 6 {
		t.Fatalf("erase control flits = %d, want 6", got)
	}
}

func TestDataRoundTrip(t *testing.T) {
	payload := make([]byte, 16384)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	d := Data{ToVPage: true, Split: true, Payload: payload}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 16384+3 {
		t.Fatalf("wire len = %d, want 16387", len(enc))
	}
	dec, n, err := DecodeData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || !dec.ToVPage || !dec.Split || !bytes.Equal(dec.Payload, payload) {
		t.Fatalf("bad decode: n=%d flags=%v/%v", n, dec.ToVPage, dec.Split)
	}
}

func TestDataTooLarge(t *testing.T) {
	d := Data{Payload: make([]byte, MaxDataPayload+1)}
	if _, err := d.Encode(); err == nil {
		t.Fatal("oversized payload encoded without error")
	}
}

func TestPeekType(t *testing.T) {
	c, _ := ReadControl(Address{}).Encode()
	d, _ := (Data{Payload: []byte{1}}).Encode()
	if ty, err := PeekType(c); err != nil || ty != TypeControl {
		t.Fatalf("PeekType(control) = %v, %v", ty, err)
	}
	if ty, err := PeekType(d); err != nil || ty != TypeData {
		t.Fatalf("PeekType(data) = %v, %v", ty, err)
	}
	if _, err := PeekType(nil); err != ErrTruncated {
		t.Fatalf("PeekType(nil) err = %v", err)
	}
	if _, err := PeekType([]byte{0xFF}); err != ErrBadType {
		t.Fatalf("PeekType(bad) err = %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc, _ := ReadControl(Address{Column: 9, Row: 9}).Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeControl(enc[:cut]); err == nil {
			t.Fatalf("control truncated at %d decoded without error", cut)
		}
	}
	dEnc, _ := (Data{Payload: make([]byte, 64)}).Encode()
	for _, cut := range []int{0, 1, 2, 10, len(dEnc) - 1} {
		if _, _, err := DecodeData(dEnc[:cut]); err == nil {
			t.Fatalf("data truncated at %d decoded without error", cut)
		}
	}
}

func TestDecodeWrongType(t *testing.T) {
	c, _ := ReadControl(Address{}).Encode()
	if _, _, err := DecodeData(c); err != ErrBadType {
		t.Fatalf("DecodeData(control) err = %v, want ErrBadType", err)
	}
	d, _ := (Data{Payload: []byte{1, 2, 3}}).Encode()
	if _, _, err := DecodeControl(d); err != ErrBadType {
		t.Fatalf("DecodeControl(data) err = %v, want ErrBadType", err)
	}
}

func TestHeaderOverhead(t *testing.T) {
	if HeaderOverhead(TypeControl) != 0.25 {
		t.Fatalf("control header overhead = %v, want 0.25", HeaderOverhead(TypeControl))
	}
	if HeaderOverhead(TypeData) != 0.5 {
		t.Fatalf("data header overhead = %v, want 0.5", HeaderOverhead(TypeData))
	}
}

func TestTransferOverheadSmallForPages(t *testing.T) {
	// For a 16 KB page the total packetization overhead must be well under
	// 0.1% — the paper's argument that packet overhead is negligible.
	if ov := TransferOverhead(16384); ov <= 0 || ov > 0.001 {
		t.Fatalf("16KB transfer overhead = %v, want (0, 0.001]", ov)
	}
	// And it must shrink as pages grow.
	if TransferOverhead(65535) >= TransferOverhead(16384) {
		t.Fatal("overhead not decreasing with payload size")
	}
	if TransferOverhead(0) != 0 {
		t.Fatal("zero payload overhead should be 0")
	}
}

func TestTypeString(t *testing.T) {
	if TypeControl.String() != "control" || TypeData.String() != "data" {
		t.Fatal("type strings wrong")
	}
	if Type(3).String() != "type(3)" {
		t.Fatalf("unknown type string = %q", Type(3).String())
	}
}

// Property: any address round-trips through a read control packet.
func TestControlAddressRoundTripProperty(t *testing.T) {
	prop := func(col uint16, rowRaw uint32) bool {
		row := rowRaw & 0xFFFFFF // 24-bit row on the wire
		c := ReadControl(Address{Column: col, Row: row})
		enc, err := c.Encode()
		if err != nil {
			return false
		}
		dec, _, err := DecodeControl(enc)
		return err == nil && dec.Addr.Column == col && dec.Addr.Row == row
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: data payloads of any size up to a few KB round-trip with flags.
func TestDataRoundTripProperty(t *testing.T) {
	prop := func(payload []byte, v, s bool) bool {
		d := Data{ToVPage: v, Split: s, Payload: payload}
		enc, err := d.Encode()
		if err != nil {
			return false
		}
		dec, n, err := DecodeData(enc)
		return err == nil && n == len(enc) && dec.ToVPage == v && dec.Split == s &&
			bytes.Equal(dec.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
