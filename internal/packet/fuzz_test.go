package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Decoders must never panic on arbitrary bytes — they are the boundary
// between the wire and the on-die controller.

func TestDecodeControlNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeControl(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDataNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeData(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEitherOnRandomBytes(t *testing.T) {
	// Random buffers either decode cleanly or error — and a clean decode
	// must re-encode to a prefix-compatible buffer.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(32)
		b := make([]byte, n)
		rng.Read(b)
		ty, err := PeekType(b)
		if err != nil {
			continue
		}
		switch ty {
		case TypeControl:
			c, used, err := DecodeControl(b)
			if err != nil {
				continue
			}
			enc, err := c.Encode()
			if err != nil {
				t.Fatalf("decoded control failed to re-encode: %v", err)
			}
			if len(enc) != used {
				t.Fatalf("re-encode length %d != consumed %d", len(enc), used)
			}
		case TypeData:
			d, used, err := DecodeData(b)
			if err != nil {
				continue
			}
			enc, err := d.Encode()
			if err != nil {
				t.Fatalf("decoded data failed to re-encode: %v", err)
			}
			if len(enc) != used {
				t.Fatalf("re-encode length %d != consumed %d", len(enc), used)
			}
		}
	}
}

func TestControlCommandBounds(t *testing.T) {
	// Encode rejects command counts the 2-bit T field cannot carry.
	for _, n := range []int{0, 4, 5} {
		c := Control{Commands: make([]uint8, n)}
		if _, err := c.Encode(); err == nil {
			t.Fatalf("control with %d commands encoded", n)
		}
	}
}
