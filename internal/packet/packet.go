// Package packet implements the pSSD wire formats of the paper's Fig 8.
//
// A flit is 8 bits. On an 8-bit channel one flit moves per transfer beat;
// on a 16-bit pSSD channel two flits move per beat. Packets are one or more
// flits:
//
//	Control packet:  [header][command flits][column flits][row flits]
//	Data packet:     [header][len lo][len hi][payload flits...]
//
// The control header uses 6 of its 8 bits (25% header overhead) and the
// data header uses 4 of 8 (50%), matching the overhead figures quoted in
// the paper. Against a 16 KB page payload both are negligible, which is the
// paper's point.
package packet

import (
	"errors"
	"fmt"
)

// FlitBits is the width of one flow-control digit.
const FlitBits = 8

// Type is the 2-bit packet type carried in every header.
type Type uint8

// Packet types.
const (
	TypeControl Type = 0 // command + addresses
	TypeData    Type = 1 // payload transfer
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeControl:
		return "control"
	case TypeData:
		return "data"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Command opcodes carried in control packets. The conventional ONFi
// opcodes are kept verbatim; the pSSD-specific transfer commands occupy
// vendor-reserved space.
const (
	OpReadFirst      = 0x00 // page read, first cycle
	OpReadSecond     = 0x30 // page read, confirm cycle
	OpProgram        = 0x80 // page program, first cycle
	OpProgramConfirm = 0x10 // page program, confirm cycle
	OpErase          = 0x60 // block erase, first cycle
	OpEraseConfirm   = 0xD0 // block erase, confirm cycle
	OpReadStatus     = 0x70 // status poll
	OpReadXfer       = 0xE0 // pSSD: "read data transfer" — stream page register out
	OpVXferOut       = 0xE1 // pnSSD: push page register onto the v-channel
	OpVXferIn        = 0xE2 // pnSSD: latch v-channel payload into a V-page register
	OpVCommit        = 0xE3 // pnSSD: program a V-page register into the array
)

// Address is a flash physical address as serialized on the wire: a 2-flit
// column address and a 3-flit row address, as in ONFi.
type Address struct {
	Column uint16 // byte offset within the page
	Row    uint32 // plane/block/page packed by the flash geometry (24 bits)
}

const (
	colFlits = 2
	rowFlits = 3
)

// Control is a decoded control packet.
type Control struct {
	Commands []uint8 // 1..3 command flits
	HasCol   bool    // column address present (2 flits)
	HasRow   bool    // row address present (3 flits)
	Addr     Address
}

// Flits returns the on-wire length in flits, including the header.
func (c Control) Flits() int {
	n := 1 + len(c.Commands)
	if c.HasCol {
		n += colFlits
	}
	if c.HasRow {
		n += rowFlits
	}
	return n
}

// header layout (control):
//
//	bit 7..6  Type = 00
//	bit 5..4  T    = number of command flits (0..3)
//	bit 3     C    = column address present
//	bit 2     R    = row address present
//	bit 1..0  reserved (the 2 unused bits = 25% header overhead)
//
// header layout (data):
//
//	bit 7..6  Type = 01
//	bit 5     V    = deliver into a V-page register (flash-to-flash)
//	bit 4     S    = split segment (one half of a split page transfer)
//	bit 3..0  reserved (the 4 unused bits = 50% header overhead)

// Encode serializes the control packet.
func (c Control) Encode() ([]byte, error) {
	if len(c.Commands) == 0 || len(c.Commands) > 3 {
		return nil, fmt.Errorf("packet: control packet with %d command flits (want 1..3)", len(c.Commands))
	}
	hdr := byte(TypeControl)<<6 | byte(len(c.Commands))<<4
	if c.HasCol {
		hdr |= 1 << 3
	}
	if c.HasRow {
		hdr |= 1 << 2
	}
	out := make([]byte, 0, c.Flits())
	out = append(out, hdr)
	out = append(out, c.Commands...)
	if c.HasCol {
		out = append(out, byte(c.Addr.Column), byte(c.Addr.Column>>8))
	}
	if c.HasRow {
		out = append(out, byte(c.Addr.Row), byte(c.Addr.Row>>8), byte(c.Addr.Row>>16))
	}
	return out, nil
}

// Data is a decoded data packet. Payload length is carried in two flits
// after the header, so a packet can carry up to 64 KiB-1 of payload; page
// payloads (16 KiB) and split halves fit directly.
type Data struct {
	ToVPage bool   // deliver into the destination's V-page register
	Split   bool   // this packet is one half of a split transfer
	Payload []byte // payload flits; length on the wire, content modelled
}

// MaxDataPayload is the largest payload one data packet can carry.
const MaxDataPayload = 1<<16 - 1

// Flits returns the on-wire length in flits: header + 2 length flits +
// payload.
func (d Data) Flits() int { return 1 + 2 + len(d.Payload) }

// DataFlitsFor returns the wire length of a data packet carrying n payload
// bytes, without building one.
func DataFlitsFor(n int) int { return 1 + 2 + n }

// ControlFlitsFor returns the wire length of the control packet for a
// typical two-cycle command with full column+row addressing (e.g. read or
// program): header + 2 commands + 2 column + 3 row = 8 flits.
func ControlFlitsFor() int { return 8 }

// Encode serializes the data packet.
func (d Data) Encode() ([]byte, error) {
	if len(d.Payload) > MaxDataPayload {
		return nil, fmt.Errorf("packet: payload %d exceeds %d", len(d.Payload), MaxDataPayload)
	}
	hdr := byte(TypeData) << 6
	if d.ToVPage {
		hdr |= 1 << 5
	}
	if d.Split {
		hdr |= 1 << 4
	}
	out := make([]byte, 0, d.Flits())
	out = append(out, hdr, byte(len(d.Payload)), byte(len(d.Payload)>>8))
	out = append(out, d.Payload...)
	return out, nil
}

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadType   = errors.New("packet: unknown packet type")
)

// PeekType returns the packet type of an encoded buffer.
func PeekType(b []byte) (Type, error) {
	if len(b) == 0 {
		return 0, ErrTruncated
	}
	t := Type(b[0] >> 6)
	if t != TypeControl && t != TypeData {
		return 0, ErrBadType
	}
	return t, nil
}

// DecodeControl parses an encoded control packet, returning the packet and
// the number of flits consumed.
func DecodeControl(b []byte) (Control, int, error) {
	if len(b) == 0 {
		return Control{}, 0, ErrTruncated
	}
	if Type(b[0]>>6) != TypeControl {
		return Control{}, 0, ErrBadType
	}
	nCmd := int(b[0] >> 4 & 0x3)
	hasCol := b[0]&(1<<3) != 0
	hasRow := b[0]&(1<<2) != 0
	if nCmd == 0 {
		return Control{}, 0, fmt.Errorf("packet: control header with zero command flits")
	}
	need := 1 + nCmd
	if hasCol {
		need += colFlits
	}
	if hasRow {
		need += rowFlits
	}
	if len(b) < need {
		return Control{}, 0, ErrTruncated
	}
	c := Control{Commands: append([]uint8(nil), b[1:1+nCmd]...), HasCol: hasCol, HasRow: hasRow}
	p := 1 + nCmd
	if hasCol {
		c.Addr.Column = uint16(b[p]) | uint16(b[p+1])<<8
		p += colFlits
	}
	if hasRow {
		c.Addr.Row = uint32(b[p]) | uint32(b[p+1])<<8 | uint32(b[p+2])<<16
		p += rowFlits
	}
	return c, p, nil
}

// DecodeData parses an encoded data packet, returning the packet and the
// number of flits consumed.
func DecodeData(b []byte) (Data, int, error) {
	if len(b) < 3 {
		return Data{}, 0, ErrTruncated
	}
	if Type(b[0]>>6) != TypeData {
		return Data{}, 0, ErrBadType
	}
	d := Data{ToVPage: b[0]&(1<<5) != 0, Split: b[0]&(1<<4) != 0}
	n := int(b[1]) | int(b[2])<<8
	if len(b) < 3+n {
		return Data{}, 0, ErrTruncated
	}
	d.Payload = append([]byte(nil), b[3:3+n]...)
	return d, 3 + n, nil
}

// ReadControl builds the control packet for a page read.
func ReadControl(a Address) Control {
	return Control{Commands: []uint8{OpReadFirst, OpReadSecond}, HasCol: true, HasRow: true, Addr: a}
}

// ReadXferControl builds the pSSD "read data transfer" control packet that
// asks the on-die controller to stream the page register back.
func ReadXferControl(a Address) Control {
	return Control{Commands: []uint8{OpReadXfer}, HasCol: true, HasRow: true, Addr: a}
}

// ProgramControl builds the control packet preceding a program payload.
func ProgramControl(a Address) Control {
	return Control{Commands: []uint8{OpProgram, OpProgramConfirm}, HasCol: true, HasRow: true, Addr: a}
}

// EraseControl builds the control packet for a block erase (row only).
func EraseControl(a Address) Control {
	return Control{Commands: []uint8{OpErase, OpEraseConfirm}, HasRow: true, Addr: a}
}

// VXferOutControl builds the pnSSD control packet telling a source chip to
// push a page register onto its v-channel.
func VXferOutControl(a Address) Control {
	return Control{Commands: []uint8{OpVXferOut}, HasCol: true, HasRow: true, Addr: a}
}

// VXferInControl builds the pnSSD control packet telling a destination chip
// to latch the next v-channel payload into a V-page register.
func VXferInControl(a Address) Control {
	return Control{Commands: []uint8{OpVXferIn}, HasCol: true, HasRow: true, Addr: a}
}

// VCommitControl builds the pnSSD control packet that programs a V-page
// register into the array at the given address.
func VCommitControl(a Address) Control {
	return Control{Commands: []uint8{OpVCommit}, HasCol: true, HasRow: true, Addr: a}
}

// HeaderOverhead reports the fraction of header bits that are wasted
// (reserved) for each packet type: 2/8 for control, 4/8 for data — the
// numbers quoted in the paper.
func HeaderOverhead(t Type) float64 {
	switch t {
	case TypeControl:
		return 2.0 / 8.0
	case TypeData:
		return 4.0 / 8.0
	default:
		return 0
	}
}

// TransferOverhead reports the fractional wire overhead of moving a
// payload of n bytes as one data packet plus one full control packet,
// relative to the raw payload: the whole-transaction overhead the paper
// argues is small for 16-64 KB pages.
func TransferOverhead(n int) float64 {
	if n <= 0 {
		return 0
	}
	wire := DataFlitsFor(n) + ControlFlitsFor()
	return float64(wire-n) / float64(n)
}
