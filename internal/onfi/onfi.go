// Package onfi models the conventional dedicated-signal flash channel
// interface (Open NAND Flash Interface, Table I of the paper). It provides
// the signal inventory and the per-transaction channel occupancy times for
// the baseline SSD, in which separate control pins (CLE, ALE, RE, WE, ...)
// sequence every command while only the 8 DQ pins carry payload.
package onfi

import (
	"fmt"

	"repro/internal/sim"
)

// Signal is one pin of the NV-DDR4-style flash interface.
type Signal int

// The 18-signal NV-DDR4 interface of Table I. DQ is listed once but is
// eight pins wide.
const (
	CLE  Signal = iota // Command Latch Enable
	ALE                // Address Latch Enable
	RE                 // Read Enable
	REc                // Read Enable Complement
	WE                 // Write Enable
	WP                 // Write Protection
	CE                 // Chip Enable
	RBn                // Ready/Busy
	DQ                 // Data Input/Outputs (8 pins)
	DQS                // Data Strobe
	DQSc               // Data Strobe Complement
)

// Info describes one signal for documentation and reporting.
type Info struct {
	Symbol      string
	Control     bool // control signal vs data I/O
	Pins        int  // number of physical pins
	Description string
}

// Signals is the Table I inventory.
var Signals = map[Signal]Info{
	CLE:  {"CLE", true, 1, "Command Latch Enable"},
	ALE:  {"ALE", true, 1, "Address Latch Enable"},
	RE:   {"RE", true, 1, "Read Enable"},
	REc:  {"RE_c", true, 1, "Read Enable Complement"},
	WE:   {"WE", true, 1, "Write Enable"},
	WP:   {"WP", true, 1, "Write Protection"},
	CE:   {"CE", true, 1, "Chip Enable"},
	RBn:  {"R/B_n", true, 1, "Ready/Busy"},
	DQ:   {"DQ[7:0]", false, 8, "Data Input/Outputs"},
	DQS:  {"DQS", false, 1, "Data Strobe"},
	DQSc: {"DQS_c", false, 1, "Data Strobe Complement"},
}

// String returns the signal symbol.
func (s Signal) String() string {
	if info, ok := Signals[s]; ok {
		return info.Symbol
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// PinCounts returns (total pins, payload pins) for the interface — 18 and
// 10 for NV-DDR4; the 10 payload pins are DQ[7:0] plus the DQS pair, of
// which 8 carry data. The paper's bandwidth argument rests on this split.
func PinCounts() (total, payload int) {
	for _, info := range Signals {
		total += info.Pins
		if !info.Control {
			payload += info.Pins
		}
	}
	return total, payload
}

// Command/address cycle counts for the standard two-cycle commands.
const (
	ReadCmdCycles    = 2 // 00h ... 30h
	ProgramCmdCycles = 2 // 80h ... 10h
	EraseCmdCycles   = 2 // 60h ... D0h
	ColumnAddrCycles = 2
	RowAddrCycles    = 3
	FullAddrCycles   = ColumnAddrCycles + RowAddrCycles
	EraseAddrCycles  = RowAddrCycles
	StatusPollCycles = 2 // 70h + status byte
)

// Timing converts transfer rate into per-phase channel occupancy for the
// dedicated-signal interface.
type Timing struct {
	// CycleTime is the time for one 8-bit transfer beat on DQ.
	CycleTime sim.Time
	// CmdCycleTime is the time for one command/address cycle. Command and
	// address cycles on real NAND run on the slower asynchronous timing
	// set; we model them at a fixed multiple of the data cycle.
	CmdCycleTime sim.Time
	// Handshake is the fixed per-transaction overhead for CE assertion and
	// R/B polling.
	Handshake sim.Time
}

// DefaultCmdCycleFactor is how much slower a command/address cycle is than
// a data beat.
const DefaultCmdCycleFactor = 10

// DefaultHandshake is the fixed CE/R-B handshake overhead per transaction.
const DefaultHandshake = 50 * sim.Nanosecond

// NewTiming builds timing for a channel running at the given transfer rate
// (mega-transfers per second) — 1000 MT/s on an 8-bit bus moves one byte
// per nanosecond.
func NewTiming(transferMTps int) Timing {
	if transferMTps <= 0 {
		panic("onfi: non-positive transfer rate")
	}
	cycle := sim.Time(1_000_000 / transferMTps) // ps per beat
	return Timing{
		CycleTime:    cycle,
		CmdCycleTime: cycle * DefaultCmdCycleFactor,
		Handshake:    DefaultHandshake,
	}
}

// CmdAddrTime returns channel occupancy for issuing nCmd command cycles and
// nAddr address cycles, including the handshake.
func (t Timing) CmdAddrTime(nCmd, nAddr int) sim.Time {
	return t.Handshake + sim.Time(nCmd+nAddr)*t.CmdCycleTime
}

// ReadCmdTime is the occupancy to issue a page-read command.
func (t Timing) ReadCmdTime() sim.Time { return t.CmdAddrTime(ReadCmdCycles, FullAddrCycles) }

// ProgramCmdTime is the occupancy to issue a program command (the payload
// streams separately via DataTime).
func (t Timing) ProgramCmdTime() sim.Time { return t.CmdAddrTime(ProgramCmdCycles, FullAddrCycles) }

// EraseCmdTime is the occupancy to issue a block erase.
func (t Timing) EraseCmdTime() sim.Time { return t.CmdAddrTime(EraseCmdCycles, EraseAddrCycles) }

// DataTime is the occupancy to stream n payload bytes over the 8 DQ pins.
func (t Timing) DataTime(n int) sim.Time { return sim.Time(n) * t.CycleTime }
