package onfi

import (
	"testing"

	"repro/internal/sim"
)

func TestPinCounts(t *testing.T) {
	total, payload := PinCounts()
	if total != 18 {
		t.Fatalf("total pins = %d, want 18 (NV-DDR4)", total)
	}
	if payload != 10 {
		t.Fatalf("payload pins = %d, want 10 (DQ[7:0] + DQS pair)", payload)
	}
}

func TestSignalStrings(t *testing.T) {
	if CLE.String() != "CLE" || DQ.String() != "DQ[7:0]" || RBn.String() != "R/B_n" {
		t.Fatal("signal symbols wrong")
	}
	if Signal(99).String() != "signal(99)" {
		t.Fatal("unknown signal string wrong")
	}
}

func TestSignalInventoryMatchesTableI(t *testing.T) {
	var control, data int
	for _, info := range Signals {
		if info.Control {
			control++
		} else {
			data++
		}
	}
	if control != 8 {
		t.Fatalf("control signal kinds = %d, want 8", control)
	}
	if data != 3 {
		t.Fatalf("data signal kinds = %d, want 3 (DQ, DQS, DQS_c)", data)
	}
}

func TestTimingAt1000MTps(t *testing.T) {
	tm := NewTiming(1000)
	if tm.CycleTime != sim.Nanosecond {
		t.Fatalf("cycle time = %v, want 1ns at 1000 MT/s", tm.CycleTime)
	}
	// A 16 KB page should stream in 16.384 us.
	if got := tm.DataTime(16384); got != 16384*sim.Nanosecond {
		t.Fatalf("DataTime(16KB) = %v, want 16.384us", got)
	}
}

func TestTimingCmdPhases(t *testing.T) {
	tm := NewTiming(1000)
	// read: 2 cmd + 5 addr cycles at 10ns each + 50ns handshake = 120ns
	if got := tm.ReadCmdTime(); got != 120*sim.Nanosecond {
		t.Fatalf("ReadCmdTime = %v, want 120ns", got)
	}
	if got := tm.ProgramCmdTime(); got != tm.ReadCmdTime() {
		t.Fatalf("ProgramCmdTime = %v, want same as read", got)
	}
	// erase: 2 cmd + 3 addr = 50ns + 50ns handshake = 100ns
	if got := tm.EraseCmdTime(); got != 100*sim.Nanosecond {
		t.Fatalf("EraseCmdTime = %v, want 100ns", got)
	}
}

func TestTimingScalesWithRate(t *testing.T) {
	slow := NewTiming(500)
	fast := NewTiming(1000)
	if slow.DataTime(1000) != 2*fast.DataTime(1000) {
		t.Fatal("data time does not scale inversely with rate")
	}
}

func TestTimingInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewTiming(0)
}
