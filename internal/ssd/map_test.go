package ssd

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mappingArtifacts mirrors shardedArtifacts with the mapping mode as the
// variable under test: fully instrumented GC-heavy run, returning every
// byte-addressable artifact.
func mappingArtifacts(t *testing.T, shards int, mapping string, entries int) (summary, chrome, tel []byte, s *SSD) {
	t.Helper()
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Trace = &trace.Config{Window: 100 * sim.Microsecond}
	cfg.Check = &check.Config{}
	cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	cfg.Shards = shards
	cfg.Mapping = mapping
	cfg.MapCacheEntries = entries
	s = New(ArchPnSSDSplit, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("exchange-1", foot, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	end := s.Run() // checker enabled: a violation panics

	var sb bytes.Buffer
	if err := s.WriteSummaryJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := s.Tracer.ExportChrome(&cb); err != nil {
		t.Fatal(err)
	}
	doc, err := json.MarshalIndent(s.Telemetry.Summary(end), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), cb.Bytes(), doc, s
}

// TestMappingFlatByteIdentical pins the default-path contract of the
// mapping refactor: Mapping "" and "flat" build no map unit, so every
// artifact matches byte for byte and no map fields leak into the output.
func TestMappingFlatByteIdentical(t *testing.T) {
	refSummary, refChrome, refTel, ref := mappingArtifacts(t, 0, "", 0)
	if ref.FTL.MapEnabled() {
		t.Fatal("default config built a map unit")
	}
	summary, chrome, tel, s := mappingArtifacts(t, 0, "flat", 0)
	if s.FTL.MapEnabled() {
		t.Fatal("explicit flat built a map unit")
	}
	if !bytes.Equal(summary, refSummary) || !bytes.Equal(chrome, refChrome) || !bytes.Equal(tel, refTel) {
		t.Fatal("explicit flat output diverges from the default")
	}
	for _, leak := range []string{`"mapping"`, `"map_hits"`, "map-stall"} {
		if bytes.Contains(refSummary, []byte(leak)) || bytes.Contains(refTel, []byte(leak)) {
			t.Fatalf("flat artifacts leak %s", leak)
		}
	}
}

// TestShardsByteIdentityFmmu extends the shard-identity contract to the
// fmmu mapping mode: with map fetches, writebacks, and cleaning in the
// event stream, serial vs 4-shard runs still agree on every artifact
// byte, with the full checker (map ledger included) clean throughout.
func TestShardsByteIdentityFmmu(t *testing.T) {
	refSummary, refChrome, refTel, ref := mappingArtifacts(t, 0, "fmmu", 16)
	if !ref.FTL.MapEnabled() {
		t.Fatal("fmmu built no map unit")
	}
	summary, chrome, tel, _ := mappingArtifacts(t, 4, "fmmu", 16)
	if !bytes.Equal(summary, refSummary) {
		t.Fatal("fmmu summary diverges between serial and shards=4")
	}
	if !bytes.Equal(chrome, refChrome) {
		t.Fatal("fmmu Chrome trace diverges between serial and shards=4")
	}
	if !bytes.Equal(tel, refTel) {
		t.Fatal("fmmu telemetry diverges between serial and shards=4")
	}
	if !bytes.Contains(refSummary, []byte(`"mapping": "fmmu"`)) {
		t.Fatal("fmmu summary does not report the mapping mode")
	}
}

// TestFmmuWiring covers the constructor plumbing end to end: the map
// unit is built with the configured cache size, the checker's map ledger
// engages under -check, telemetry grows the map-stall phase and the
// hit/miss series, and the run summary carries the map counters.
func TestFmmuWiring(t *testing.T) {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Mapping = "fmmu"
	cfg.MapCacheEntries = 2 // tiny: force real miss traffic
	cfg.MapEviction = "lru"
	cfg.Check = &check.Config{}
	cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	s := New(ArchPnSSDSplit, cfg)
	if !s.FTL.MapEnabled() || s.FTL.MapCacheEntries() != 2 {
		t.Fatalf("map unit: enabled=%v entries=%d", s.FTL.MapEnabled(), s.FTL.MapCacheEntries())
	}
	if s.FTL.NumTranslationPages() == 0 {
		t.Fatal("no translation pages carved")
	}
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("rocksdb-0", foot, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	end := s.Run() // checker enabled: violations panic

	sum := s.Summarize()
	if sum.Mapping != "fmmu" || sum.MapLookups == 0 || sum.MapMisses == 0 || sum.MapFetches == 0 {
		t.Fatalf("summary map counters: %+v", sum)
	}
	if sum.MapMissRate <= 0 || sum.MapMissRate > 1 {
		t.Fatalf("MapMissRate = %v", sum.MapMissRate)
	}
	if resident, pend := s.Checker.MapCounts(); resident == 0 || pend != 0 {
		t.Fatalf("checker map ledger: resident=%d pendWB=%d after drain", resident, pend)
	}
	doc, err := json.Marshal(s.Telemetry.Summary(end))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"map-stall", "map_hits", "map_misses"} {
		if !bytes.Contains(doc, []byte(want)) {
			t.Fatalf("fmmu telemetry lacks %s", want)
		}
	}
}

// TestConfigValidateEnums walks every invalid-enum path through Validate
// and pins that each panic message names the accepted values, so a typo
// on the command line tells the user what to type instead.
func TestConfigValidateEnums(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"scheduler", func(c *Config) { c.Scheduler = "venice" },
			`unknown scheduler policy "venice" (want fifo, conflict, or ooo)`},
		{"mapping", func(c *Config) { c.Mapping = "dftl" },
			`unknown mapping mode "dftl" (want flat or fmmu)`},
		{"map-eviction", func(c *Config) { c.MapEviction = "random" },
			`unknown map eviction policy "random" (want clock or lru)`},
		{"map-cache-negative", func(c *Config) { c.MapCacheEntries = -1 },
			"negative map cache size -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			tc.mut(&cfg)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Validate accepted invalid %s", tc.name)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panic value %T, want string", r)
				}
				if !strings.Contains(msg, tc.want) {
					t.Fatalf("panic %q does not name the accepted values (%q)", msg, tc.want)
				}
			}()
			cfg.Validate()
		})
	}
}
