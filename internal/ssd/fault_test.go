package ssd

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/stats"
	"repro/internal/workload"
)

func faultyConfig(seed uint64) Config {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCParallel
	cfg.FTL.GCThreshold = 0.3
	cfg.LogicalUtilization = 0.75
	cfg.Fault = &fault.Config{
		Seed:                seed,
		ReadECCRate:         0.01,
		OnDieECCRate:        0.01,
		ProgramFailsPerChip: 2,
		EraseFailsPerChip:   1,
		GrantDropRate:       0.05,
	}
	return cfg
}

// The graceful-degradation acceptance run: every architecture finishes a
// GC-heavy trace at a 1% transient read-ECC rate with at least two
// program failures and one erase failure forced on every chip, ends with
// bit-identical logical state, and never panics or hangs. Faults may only
// change *when* things happen and which blocks hold the data — never what
// the device stores.
func TestArchitecturesPreserveLogicalStateUnderFaults(t *testing.T) {
	cfg := faultyConfig(23)
	foot := cfg.LogicalPages()
	tr, err := workload.Named("rocksdb-1", foot, 300, 23)
	if err != nil {
		t.Fatal(err)
	}
	expected := make(map[int64]int64)
	for _, r := range tr.Requests {
		if r.Kind != stats.Write {
			continue
		}
		for i := 0; i < r.Pages; i++ {
			lpn := (r.LPN + int64(i)) % foot
			expected[lpn]++
		}
	}

	for _, arch := range Archs {
		s := New(arch, cfg)
		s.Host.Warmup(foot)
		completed := s.Host.MustReplay(tr.Requests)
		s.Run()
		if *completed != len(tr.Requests) {
			t.Fatalf("%v: completed %d of %d under faults", arch, *completed, len(tr.Requests))
		}
		if err := s.FTL.CheckConsistency(); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		for lpn := int64(0); lpn < foot; lpn++ {
			id, addr, ok := s.FTL.Map(lpn)
			if !ok {
				t.Fatalf("%v: LPN %d unmapped after faulted run", arch, lpn)
			}
			want := ftl.TokenFor(lpn, expected[lpn])
			if got := s.Grid.Chip(id).ContentAt(addr); got != want {
				t.Fatalf("%v: LPN %d content %x, want version %d", arch, lpn, got, expected[lpn])
			}
		}
		ras := s.RAS()
		if ras.ReadFaults == 0 {
			t.Fatalf("%v: 1%% read-ECC rate injected no read faults", arch)
		}
		// The per-chip quotas force >= 2 program failures on every chip
		// that programs at least two pages — under this trace, all of them.
		chips := int64(cfg.Channels * cfg.Ways)
		if ras.ProgramFails < 2*chips {
			t.Fatalf("%v: ProgramFails = %d, want >= %d", arch, ras.ProgramFails, 2*chips)
		}
		if ras.EraseFails < 1 {
			t.Fatalf("%v: no erase failure forced", arch)
		}
		if ras.BlocksRetired == 0 || int64(s.FTL.RetiredBlocks()) != ras.BlocksRetired {
			t.Fatalf("%v: retirement accounting mismatch: FTL=%d RAS=%d",
				arch, s.FTL.RetiredBlocks(), ras.BlocksRetired)
		}
	}
}

// Fault injection must not break reproducibility: the same fault seed
// yields identical metrics, identical event counts, and identical RAS
// counters.
func TestFaultDeterminism(t *testing.T) {
	run := func() (float64, float64, int64, string) {
		cfg := faultyConfig(5)
		cfg.FTL.GCMode = ftl.GCSpatial
		s := New(ArchPnSSDSplit, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.Named("exchange-1", foot, 400, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		return m.MeanLatency().Microseconds(), m.KIOPS(), s.Engine.EventsFired(), s.RAS().String()
	}
	l1, k1, e1, r1 := run()
	l2, k2, e2, r2 := run()
	if l1 != l2 || k1 != k2 || e1 != e2 {
		t.Fatalf("non-deterministic under faults: (%v,%v,%d) vs (%v,%v,%d)", l1, k1, e1, l2, k2, e2)
	}
	if r1 != r2 {
		t.Fatalf("RAS counters diverged:\n%s\n%s", r1, r2)
	}
	if r1 == stats.NewRAS().String() {
		t.Fatal("faulted run recorded no RAS activity")
	}
}

// Killing v-channels degrades pnSSD but never deadlocks: the trace still
// completes over the h-channels, SpGC falls back to relayed copies, and
// logical state stays consistent — even with every v-channel dead.
func TestDeadVChannelsDegradeButComplete(t *testing.T) {
	run := func(dead []int) (latencyUs float64, ras *stats.RAS) {
		cfg := tinyConfig()
		cfg.FTL.GCMode = ftl.GCSpatial
		cfg.FTL.GCThreshold = 0.3
		cfg.LogicalUtilization = 0.75
		if dead != nil {
			cfg.Fault = &fault.Config{Seed: 7, DeadVChannels: dead}
		}
		s := New(ArchPnSSDSplit, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.Named("rocksdb-1", foot, 300, 7)
		if err != nil {
			t.Fatal(err)
		}
		completed := s.Host.MustReplay(tr.Requests)
		s.Run()
		if *completed != len(tr.Requests) {
			t.Fatalf("dead=%v: completed %d of %d", dead, *completed, len(tr.Requests))
		}
		if err := s.FTL.CheckConsistency(); err != nil {
			t.Fatalf("dead=%v: %v", dead, err)
		}
		return s.Metrics().MeanLatency().Microseconds(), s.RAS()
	}

	healthy, _ := run(nil)
	oneDead, ras := run([]int{0})
	if ras.DegradedReturns == 0 {
		t.Fatal("dead v-channel forced no degraded h returns")
	}
	if oneDead < healthy {
		t.Fatalf("killing a v-channel improved latency: %v < %v", oneDead, healthy)
	}
	allDead, ras := run([]int{0, 1, 2, 3})
	if ras.DegradedReturns == 0 {
		t.Fatal("all-dead run recorded no degraded routing")
	}
	if allDead < oneDead {
		t.Fatalf("killing all v-channels beat killing one: %v < %v", allDead, oneDead)
	}
}
