package ssd

import (
	"bytes"
	"testing"

	"repro/internal/check"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSingleTenantFrontendBitEquivalence pins the tentpole's
// compatibility guarantee: a one-tenant front end with an unlimited
// inflight window is a transparent pass-through, so a run through it is
// bit-identical — same event count, same drain time, same summary JSON
// — to driving the Host directly. A regression here means multi-tenant
// support changed single-tenant results.
func TestSingleTenantFrontendBitEquivalence(t *testing.T) {
	makeTrace := func(cfg Config) workload.Trace {
		tr, err := workload.Named("rocksdb-1", cfg.LogicalPages(), 400, 7)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	run := func(frontend bool) ([]byte, int64, sim.Time) {
		cfg := tinyConfig()
		cfg.FTL.GCMode = ftl.GCSpatial
		cfg.LogicalUtilization = 0.75
		if frontend {
			cfg.Frontend = &host.FrontendConfig{
				Tenants: []host.TenantConfig{{Name: "only"}},
				Arbiter: host.ArbRR,
				// MaxInflight 0: dispatch at enqueue, nothing ever queues.
			}
		}
		s := New(ArchPnSSDSplit, cfg)
		foot := cfg.LogicalPages()
		s.Host.Warmup(foot)
		tr := makeTrace(cfg)
		var completed *int
		var err error
		if frontend {
			completed, err = s.Frontend.Replay(tr.Requests)
		} else {
			completed, err = s.Host.Replay(tr.Requests)
		}
		if err != nil {
			t.Fatalf("replay (frontend=%v): %v", frontend, err)
		}
		end := s.Run()
		if *completed != len(tr.Requests) {
			t.Fatalf("frontend=%v: completed %d of %d", frontend, *completed, len(tr.Requests))
		}
		var buf bytes.Buffer
		if err := s.WriteSummaryJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), s.Engine.EventsFired(), end
	}
	direct, dEvents, dEnd := run(false)
	fronted, fEvents, fEnd := run(true)
	if dEvents != fEvents {
		t.Fatalf("event counts diverge: direct %d, frontend %d", dEvents, fEvents)
	}
	if dEnd != fEnd {
		t.Fatalf("drain times diverge: direct %v, frontend %v", dEnd, fEnd)
	}
	if !bytes.Equal(direct, fronted) {
		t.Fatalf("summaries diverge:\ndirect:   %s\nfrontend: %s", direct, fronted)
	}
}

// TestMultiTenantRunWithCheckerAndTrace exercises the full wiring: a
// two-tenant noisy-neighbor run with the invariant checker and tracer
// attached must drain cleanly, satisfy every tenant invariant, record
// per-tenant metrics, and emit per-tenant trace tracks.
func TestMultiTenantRunWithCheckerAndTrace(t *testing.T) {
	for _, arb := range host.ArbiterNames() {
		cfg := tinyConfig()
		cfg.FTL.GCMode = ftl.GCSpatial
		cfg.LogicalUtilization = 0.75
		cfg.Check = &check.Config{}
		cfg.Trace = &trace.Config{}
		specs := []workload.TenantSpec{
			{Name: "reader", Preset: "web-0", Requests: 150, Weight: 4, ReadSLO: 300 * sim.Microsecond},
			{Name: "writer", Preset: "update-0", Requests: 150, Weight: 1, Burst: 4,
				On: 300 * sim.Microsecond, Off: 900 * sim.Microsecond},
		}
		cfg.Frontend = &host.FrontendConfig{
			Tenants:     workload.QueueConfigs(specs),
			Arbiter:     arb,
			MaxInflight: 8,
		}
		s := New(ArchPnSSDSplit, cfg)
		foot := cfg.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.GenerateTenants(specs, foot, 11)
		if err != nil {
			t.Fatal(err)
		}
		completed, err := s.Frontend.Replay(tr.Requests)
		if err != nil {
			t.Fatalf("%s: %v", arb, err)
		}
		s.Engine.Run()
		if err := s.VerifyInvariants(); err != nil {
			t.Fatalf("%s: %v", arb, err)
		}
		if *completed != len(tr.Requests) {
			t.Fatalf("%s: completed %d of %d", arb, *completed, len(tr.Requests))
		}
		for i, tm := range s.Frontend.Metrics().Tenants {
			if tm.TotalRequests() != 150 {
				t.Fatalf("%s: tenant %d recorded %d requests", arb, i, tm.TotalRequests())
			}
			q, g, d := s.Checker.TenantCounts(i)
			if q != 150 || g != 150 || d != 150 {
				t.Fatalf("%s: tenant %d ledger %d/%d/%d, want 150 each", arb, i, q, g, d)
			}
		}
		if got := len(s.Tracer.Tracks(trace.KindTenant)); got != 2 {
			t.Fatalf("%s: %d tenant trace tracks, want 2", arb, got)
		}
	}
}

// TestMultiTenantDeterminism: the same two-tenant configuration twice
// must be bit-identical (the prop harness asserts the same across
// worker counts; this is the cheap in-package version).
func TestMultiTenantDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		cfg := tinyConfig()
		cfg.FTL.GCMode = ftl.GCParallel
		cfg.LogicalUtilization = 0.75
		specs := []workload.TenantSpec{
			{Name: "a", Preset: "exchange-1", Requests: 120, Weight: 2},
			{Name: "b", Preset: "mail-0", Requests: 120, Weight: 1},
		}
		cfg.Frontend = &host.FrontendConfig{
			Tenants:     workload.QueueConfigs(specs),
			Arbiter:     host.ArbDWRR,
			MaxInflight: 4,
		}
		s := New(ArchPSSD, cfg)
		foot := cfg.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.GenerateTenants(specs, foot, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Frontend.Replay(tr.Requests); err != nil {
			t.Fatal(err)
		}
		end := s.Run()
		return end, s.Engine.EventsFired(), s.Frontend.Metrics().Tenants[0].SLOViolations() + s.Frontend.Grants(1)
	}
	e1, f1, x1 := run()
	e2, f2, x2 := run()
	if e1 != e2 || f1 != f2 || x1 != x2 {
		t.Fatalf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", e1, f1, x1, e2, f2, x2)
	}
}
