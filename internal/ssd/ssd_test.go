package ssd

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tinyConfig shrinks the device to run whole-workload tests in
// milliseconds.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Channels = 4
	c.Ways = 4
	c.Geometry.BlocksPerPlane = 8
	c.Geometry.PagesPerBlock = 16
	c.FTL.GCMode = ftl.GCNone
	return c
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.Channels != 8 || c.Ways != 8 {
		t.Fatal("organization is not 8 channels x 8 ways")
	}
	g := c.Geometry
	if g.Planes != 4 || g.BlocksPerPlane != 1024 || g.PagesPerBlock != 512 || g.PageSize != 16384 {
		t.Fatalf("geometry %+v does not match Table II", g)
	}
	if c.BusMTps != 1000 {
		t.Fatal("bus rate is not 1000 MT/s")
	}
	if c.Timing.Read != 3*sim.Microsecond || c.Timing.Program != 50*sim.Microsecond || c.Timing.Erase != sim.Millisecond {
		t.Fatal("flash timing does not match ULL parameters")
	}
	if c.RawPages() != 8*8*4*1024*512 {
		t.Fatalf("RawPages = %d", c.RawPages())
	}
	if c.LogicalPages() >= c.RawPages() {
		t.Fatal("no over-provisioning")
	}
}

func TestArchStringsMatchTableIII(t *testing.T) {
	want := map[Arch]string{
		ArchBase:       "baseSSD",
		ArchNoSSDPin:   "NoSSD(pin-constraint)",
		ArchNoSSDFree:  "NoSSD(no constraint)",
		ArchPSSD:       "pSSD",
		ArchPnSSD:      "pnSSD",
		ArchPnSSDSplit: "pnSSD(+split)",
	}
	if len(Archs) != len(want) {
		t.Fatal("Archs list incomplete")
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
		if a.Describe() == "unknown" || a.Describe() == "" {
			t.Fatalf("%s has no description", s)
		}
	}
}

func TestNewBuildsEveryArch(t *testing.T) {
	for _, arch := range Archs {
		s := New(arch, tinyConfig())
		if s.Fabric.Name() != arch.String() {
			t.Fatalf("fabric name %q for arch %v", s.Fabric.Name(), arch)
		}
		// Smoke: warm up a little and do one read and one write.
		s.Host.Warmup(64)
		done := 0
		s.Host.Submit(host.Request{Kind: stats.Read, LPN: 1, Pages: 2}, func() { done++ })
		s.Host.Submit(host.Request{Kind: stats.Write, LPN: 2, Pages: 2}, func() { done++ })
		s.Run()
		if done != 2 {
			t.Fatalf("%v: %d of 2 requests completed", arch, done)
		}
		if s.Metrics().TotalRequests() != 2 {
			t.Fatalf("%v: metrics lost requests", arch)
		}
	}
}

func TestArchitectureLatencyOrderingNoGC(t *testing.T) {
	// Single outstanding random reads on an idle device: the headline
	// per-architecture ordering must hold (Fig 14 rationale):
	// pSSD < pnSSD < base < NoSSD(pin), and NoSSD(free) < base.
	lat := func(arch Arch) sim.Time {
		s := New(arch, tinyConfig())
		s.Host.Warmup(512)
		gen := workload.Synthetic(workload.RandRead, 512, 4, 11)
		s.Host.RunClosedLoop(gen, 1, 50)
		s.Run()
		return s.Metrics().MeanLatency()
	}
	base := lat(ArchBase)
	pssd := lat(ArchPSSD)
	pn := lat(ArchPnSSD)
	pnSplit := lat(ArchPnSSDSplit)
	nosPin := lat(ArchNoSSDPin)
	nosFree := lat(ArchNoSSDFree)

	if !(pssd < base) {
		t.Fatalf("pSSD (%v) not faster than base (%v)", pssd, base)
	}
	if !(pn < base) {
		t.Fatalf("pnSSD (%v) not faster than base (%v)", pn, base)
	}
	if !(pnSplit < pn) {
		t.Fatalf("split (%v) not faster than pnSSD (%v)", pnSplit, pn)
	}
	if !(nosPin > base) {
		t.Fatalf("NoSSD(pin) (%v) not slower than base (%v)", nosPin, base)
	}
	if !(nosFree < nosPin) {
		t.Fatalf("NoSSD(free) (%v) not faster than NoSSD(pin) (%v)", nosFree, nosPin)
	}
}

func TestAttachChannelUtil(t *testing.T) {
	s := New(ArchBase, tinyConfig())
	m := s.AttachChannelUtil(100 * sim.Microsecond)
	if m == nil {
		t.Fatal("no util matrix on bus fabric")
	}
	s.Host.Warmup(128)
	s.Host.RunClosedLoop(workload.Synthetic(workload.RandRead, 128, 2, 3), 4, 40)
	s.Run()
	rows := m.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var total float64
	for _, row := range rows {
		for _, v := range row {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("utilization matrix recorded nothing")
	}

	pn := New(ArchPnSSD, tinyConfig())
	if pn.AttachChannelUtil(100*sim.Microsecond) == nil {
		t.Fatal("no util matrix on omnibus fabric")
	}
	mesh := New(ArchNoSSDPin, tinyConfig())
	if mesh.AttachChannelUtil(100*sim.Microsecond) != nil {
		t.Fatal("mesh fabric should return nil util matrix")
	}
}

func TestScaledConfigPreservesShape(t *testing.T) {
	full := DefaultConfig()
	scaled := ScaledConfig()
	if scaled.Channels != full.Channels || scaled.Ways != full.Ways {
		t.Fatal("scaling changed the interconnect shape")
	}
	if scaled.Geometry.Planes != full.Geometry.Planes || scaled.Geometry.PageSize != full.Geometry.PageSize {
		t.Fatal("scaling changed plane count or page size")
	}
	if scaled.RawPages() >= full.RawPages() {
		t.Fatal("scaling did not shrink capacity")
	}
}

func TestEndToEndTraceReplayWithGC(t *testing.T) {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCParallel
	cfg.FTL.GCThreshold = 0.3
	s := New(ArchBase, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("rocksdb-1", foot, 400, 17)
	if err != nil {
		t.Fatal(err)
	}
	completed := s.Host.MustReplay(tr.Requests)
	s.Run()
	if *completed != 400 {
		t.Fatalf("completed %d of 400", *completed)
	}
	if err := s.FTL.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if s.FTL.Stats().GCRounds == 0 {
		t.Fatal("write-heavy trace never triggered GC")
	}
}
