package ssd

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/sim"
)

// Partition is the shard map of a partitioned run: how the device's chip
// array divides into groups along the architecture's natural seams, which
// engine shard each group lives on, and the conservative lookahead window
// the groups' fabric latencies support.
//
// The seams follow the interconnect topology, because that is where the
// model's latencies are:
//
//   - Bus architectures (baseSSD, pSSD): one group per h-channel pair —
//     two channels share a shard so an 8-channel device fills 4 shards.
//   - Omnibus (pnSSD, pnSSD+split): one group per v-channel column; the
//     v-channel is the resource a column's chips contend on, so a column
//     is the natural unit of locality.
//   - Mesh (NoSSD): one group per mesh row (a grid channel), matching the
//     row-major injection links.
//
// Shard 0 always holds the host, FTL, controller SoC, and every fabric
// resource: the dispatch edges between those layers and the channels are
// synchronous (zero simulated latency), so the whole reactive complex
// must share a shard — see DESIGN.md §15 for why that is a property of
// the model, not of the engine. Chip groups map onto shards 1..N-1
// round-robin.
type Partition struct {
	// Shards is the effective shard count including shard 0. At most
	// Groups+1: more shards than groups would idle.
	Shards int
	// Groups is the number of natural chip groups the topology yields.
	Groups int
	// Window is the conservative lookahead bound derived from the
	// fabric's minimum cross-group latency at plan time.
	Window sim.Time
	// groupShard[g] is the shard of group g; groupOf[ch][w] the group of
	// chip (ch, w).
	groupShard []int
	groupOf    [][]int
}

// PlanPartition derives the shard map for arch from the device geometry,
// capping the effective shard count at the natural group count + 1.
// requested must be at least 1.
func PlanPartition(arch Arch, cfg Config, requested int, window sim.Time) Partition {
	if requested < 1 {
		panic(fmt.Sprintf("ssd: requested %d shards", requested))
	}
	p := Partition{Window: window}
	group := func(ch, way int) int { return 0 }
	switch arch {
	case ArchBase, ArchPSSD:
		p.Groups = (cfg.Channels + 1) / 2
		group = func(ch, way int) int { return ch / 2 }
	case ArchPnSSD, ArchPnSSDSplit:
		numV := cfg.Channels
		if cfg.Ways < numV {
			numV = cfg.Ways
		}
		colsPerV := (cfg.Ways + numV - 1) / numV
		p.Groups = numV
		group = func(ch, way int) int { return way / colsPerV }
	case ArchNoSSDPin, ArchNoSSDFree:
		p.Groups = cfg.Channels
		group = func(ch, way int) int { return ch }
	default:
		panic(fmt.Sprintf("ssd: unknown architecture %d", int(arch)))
	}
	p.Shards = requested
	if max := p.Groups + 1; p.Shards > max {
		p.Shards = max
	}
	p.groupShard = make([]int, p.Groups)
	for g := range p.groupShard {
		if p.Shards > 1 {
			p.groupShard[g] = 1 + g%(p.Shards-1)
		}
	}
	p.groupOf = make([][]int, cfg.Channels)
	for ch := range p.groupOf {
		p.groupOf[ch] = make([]int, cfg.Ways)
		for w := range p.groupOf[ch] {
			p.groupOf[ch][w] = group(ch, w)
		}
	}
	return p
}

// ShardOf returns the shard a chip's group maps to.
func (p Partition) ShardOf(id controller.ChipID) int {
	return p.groupShard[p.GroupOf(id)]
}

// GroupOf returns the natural group of a chip.
func (p Partition) GroupOf(id controller.ChipID) int {
	if id.Channel < 0 || id.Channel >= len(p.groupOf) || id.Way < 0 || id.Way >= len(p.groupOf[id.Channel]) {
		panic(fmt.Sprintf("ssd: chip %v outside partition", id))
	}
	return p.groupOf[id.Channel][id.Way]
}
