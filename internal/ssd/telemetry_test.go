package ssd

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runTelemetered executes the determinism workload (GC-heavy SpGC run
// on the given arch) with or without the telemetry collector attached.
func runTelemetered(t *testing.T, arch Arch, mode ftl.GCMode, telemetered bool) *SSD {
	t.Helper()
	cfg := tinyConfig()
	cfg.FTL.GCMode = mode
	cfg.LogicalUtilization = 0.75
	if telemetered {
		cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	}
	s := New(arch, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("exchange-1", foot, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	return s
}

// TestTelemetryOffIsBitIdentical is the acceptance gate for the
// passivity contract: a run with the telemetry hooks compiled in but
// detached must execute the exact same event sequence as an
// instrumented run of the same workload — the collector observes, it
// never schedules.
func TestTelemetryOffIsBitIdentical(t *testing.T) {
	off := runTelemetered(t, ArchPnSSDSplit, ftl.GCSpatial, false)
	on := runTelemetered(t, ArchPnSSDSplit, ftl.GCSpatial, true)

	if off.Telemetry.Enabled() {
		t.Fatal("uninstrumented run has a live collector")
	}
	if !on.Telemetry.Enabled() {
		t.Fatal("instrumented run has no collector")
	}
	if a, b := off.Engine.EventsFired(), on.Engine.EventsFired(); a != b {
		t.Fatalf("event counts diverge: %d off vs %d on", a, b)
	}
	if a, b := off.Engine.Now(), on.Engine.Now(); a != b {
		t.Fatalf("end times diverge: %v vs %v", a, b)
	}
	mo, mt := off.Metrics(), on.Metrics()
	if mo.MeanLatency() != mt.MeanLatency() || mo.KIOPS() != mt.KIOPS() {
		t.Fatalf("metrics diverge: (%v, %v) vs (%v, %v)",
			mo.MeanLatency(), mo.KIOPS(), mt.MeanLatency(), mt.KIOPS())
	}
	if so, st := off.FTL.Stats(), on.FTL.Stats(); so != st {
		t.Fatalf("FTL stats diverge: %+v vs %+v", so, st)
	}
	if on.Telemetry.Requests() == 0 {
		t.Fatal("instrumented run attributed no requests")
	}
}

// TestAttributionSumsToEndToEnd is the per-request invariant across
// architectures and GC modes: every attributed request's phase
// durations must sum exactly to its end-to-end latency (FinishRequest
// verifies the identity per request; a nonzero violation count means a
// code path completed without marking its time).
func TestAttributionSumsToEndToEnd(t *testing.T) {
	for _, arch := range []Arch{ArchBase, ArchPSSD, ArchPnSSDSplit} {
		for _, mode := range []ftl.GCMode{ftl.GCParallel, ftl.GCSpatial} {
			s := runTelemetered(t, arch, mode, true)
			if n := s.Telemetry.Requests(); n != 400 {
				t.Fatalf("%v/%v: %d attributed requests, want 400", arch, mode, n)
			}
			if v := s.Telemetry.AttributionViolations(); v != 0 {
				t.Fatalf("%v/%v: %d attribution violations", arch, mode, v)
			}
		}
	}
}

// TestTelemetrySummaryRoundTrip checks the Summarize embedding: the
// telemetry section survives a JSON round trip with its series, phase
// rows, and per-kind phase-share structure intact.
func TestTelemetrySummaryRoundTrip(t *testing.T) {
	s := runTelemetered(t, ArchPnSSDSplit, ftl.GCSpatial, true)
	var buf bytes.Buffer
	if err := s.WriteSummaryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	tel := sum.Telemetry
	if tel == nil {
		t.Fatal("summary has no telemetry section")
	}
	if tel.Windows <= 0 || tel.WindowUs != 100 {
		t.Fatalf("window shape: %d x %.0fus", tel.Windows, tel.WindowUs)
	}
	for _, name := range []string{"throughput", "bandwidth", "lat_mean", "lat_p50", "lat_p99", "gc_active", "gc_copies"} {
		sr := tel.SeriesByName(name)
		if sr == nil {
			t.Fatalf("series %q missing", name)
		}
		if len(sr.Values) != tel.Windows {
			t.Fatalf("series %q has %d values for %d windows", name, len(sr.Values), tel.Windows)
		}
	}
	// A GC-heavy run must show GC busy time somewhere.
	var gcBusy float64
	for _, v := range tel.SeriesByName("gc_active").Values {
		gcBusy += v
	}
	if gcBusy == 0 {
		t.Fatal("gc_active series is all zero on a GC-heavy run")
	}
	// Phase rows exist for both kinds and shares sum to ~1 per kind.
	shares := map[string]float64{}
	for _, p := range tel.Phases {
		shares[p.Kind] += p.Share
	}
	for _, kind := range []string{"read", "write"} {
		if sh := shares[kind]; sh < 0.999 || sh > 1.001 {
			t.Fatalf("%s phase shares sum to %v", kind, sh)
		}
	}
}

// TestTelemetryCounterTracksInChromeExport checks the Perfetto export:
// with tracing and telemetry both on, InjectTelemetryCounters renders
// every telemetry series as a "tel:" counter track.
func TestTelemetryCounterTracksInChromeExport(t *testing.T) {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Trace = &trace.Config{Window: 100 * sim.Microsecond}
	cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	s := New(ArchPnSSDSplit, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("exchange-1", foot, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	s.InjectTelemetryCounters()
	var buf bytes.Buffer
	if err := s.Tracer.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Cat  string             `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	tracks := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && strings.HasPrefix(e.Name, "tel:") {
			if e.Cat != "telemetry" {
				t.Fatalf("counter %s has category %q", e.Name, e.Cat)
			}
			if len(e.Args) != 1 {
				t.Fatalf("counter %s carries %d args", e.Name, len(e.Args))
			}
			for unit, v := range e.Args {
				if _, ok := v.(float64); !ok {
					t.Fatalf("counter %s arg %q is not numeric: %v", e.Name, unit, v)
				}
			}
			tracks[e.Name]++
		}
	}
	sum := s.Telemetry.Summary(s.Engine.Now())
	if len(tracks) != len(sum.Series) {
		t.Fatalf("%d counter tracks for %d series", len(tracks), len(sum.Series))
	}
	for _, sr := range sum.Series {
		if tracks["tel:"+sr.Name] != len(sr.Values) {
			t.Fatalf("track tel:%s has %d points, series has %d",
				sr.Name, tracks["tel:"+sr.Name], len(sr.Values))
		}
	}
}

// TestTenantDepthSeries checks the front-end hook: a multi-tenant run
// with telemetry exports one qdepth series per tenant, and the
// bursty/throttled shape leaves nonzero standing depth somewhere.
func TestTenantDepthSeries(t *testing.T) {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	specs := []workload.TenantSpec{
		{Name: "reader", Preset: "web-0", Requests: 120, Weight: 4},
		{Name: "writer", Preset: "update-0", Requests: 120, Weight: 1, Burst: 4},
	}
	cfg.Frontend = &host.FrontendConfig{
		Tenants:     workload.QueueConfigs(specs),
		Arbiter:     host.ArbWRR,
		MaxInflight: 2,
	}
	s := New(ArchPnSSDSplit, cfg)
	foot := cfg.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.GenerateTenants(specs, foot, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Frontend.Replay(tr.Requests); err != nil {
		t.Fatal(err)
	}
	s.Run()
	sum := s.Telemetry.Summary(s.Engine.Now())
	var sawDepth bool
	for _, name := range []string{"qdepth:reader", "qdepth:writer"} {
		sr := sum.SeriesByName(name)
		if sr == nil {
			t.Fatalf("series %q missing", name)
		}
		for _, v := range sr.Values {
			if v < 0 {
				t.Fatalf("%s has negative depth %v", name, v)
			}
			if v > 0 {
				sawDepth = true
			}
		}
	}
	if !sawDepth {
		t.Fatal("no tenant ever showed standing queue depth under MaxInflight=2")
	}
}
