package ssd

import (
	"encoding/json"
	"io"

	"repro/internal/bus"
	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// BusInfo names one bus channel of the device together with its kind
// ("h-channel" or "v-channel") — the enumeration behind the utilization
// heatmap and the per-bus summary rows.
type BusInfo struct {
	Name    string
	Kind    string
	Channel *bus.Channel
}

// Buses enumerates the device's bus channels in display order: all
// h-channels, then (on Omnibus fabrics) all v-channels. Mesh fabrics
// return nil — their links have no per-row channel notion.
func (s *SSD) Buses() []BusInfo {
	switch fab := s.Fabric.(type) {
	case *controller.BusFabric:
		out := make([]BusInfo, 0, s.Config.Channels)
		for ch := 0; ch < s.Config.Channels; ch++ {
			c := fab.Channel(ch)
			out = append(out, BusInfo{Name: c.Name(), Kind: trace.KindHChannel, Channel: c})
		}
		return out
	case *controller.OmnibusFabric:
		out := make([]BusInfo, 0, s.Config.Channels+fab.NumVChannels())
		for ch := 0; ch < s.Config.Channels; ch++ {
			c := fab.HChannel(ch)
			out = append(out, BusInfo{Name: c.Name(), Kind: trace.KindHChannel, Channel: c})
		}
		for i := 0; i < fab.NumVChannels(); i++ {
			c := fab.VChannel(i * fab.ColumnsPerVChannel())
			out = append(out, BusInfo{Name: c.Name(), Kind: trace.KindVChannel, Channel: c})
		}
		return out
	default:
		return nil
	}
}

// LatencySummary is the percentile digest of one latency histogram, in
// microseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

func latencySummary(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanUs: h.Mean().Microseconds(),
		P50Us:  h.Percentile(50).Microseconds(),
		P95Us:  h.Percentile(95).Microseconds(),
		P99Us:  h.Percentile(99).Microseconds(),
		MaxUs:  h.Max().Microseconds(),
	}
}

// BusSummary is one bus's occupancy digest.
type BusSummary struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	BusyFraction float64 `json:"busy_fraction"`
	BusyUs       float64 `json:"busy_us"`
}

// Summary is the compact machine-readable digest of one run, the
// -metrics-json output: throughput, latency percentiles, per-bus busy
// fractions, GC and RAS counters, and (when tracing was on) trace totals.
type Summary struct {
	Arch          string  `json:"arch"`
	SimTimeUs     float64 `json:"sim_time_us"`
	EventsFired   int64   `json:"events_fired"`
	Requests      int64   `json:"requests"`
	KIOPS         float64 `json:"kiops"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`

	ReadLatency  LatencySummary `json:"read_latency"`
	WriteLatency LatencySummary `json:"write_latency"`

	Buses []BusSummary `json:"buses,omitempty"`

	GCRounds      int64 `json:"gc_rounds"`
	GCPagesCopied int64 `json:"gc_pages_copied"`
	WriteStalls   int64 `json:"write_stalls"`

	FlashReads    int64 `json:"flash_reads"`
	FlashPrograms int64 `json:"flash_programs"`
	FlashErases   int64 `json:"flash_erases"`

	RAS map[string]string `json:"ras,omitempty"`

	// Scheduler counters appear only when a non-FIFO scheduling policy
	// was configured, so default summaries stay byte-identical.
	Scheduler      string `json:"scheduler,omitempty"`
	SchedDeferred  int64  `json:"sched_deferred,omitempty"`
	SchedReordered int64  `json:"sched_reordered,omitempty"`
	SchedForced    int64  `json:"sched_forced,omitempty"`
	SchedMaxQueue  int    `json:"sched_max_queue,omitempty"`

	// Mapping counters appear only under the fmmu mapping mode, so flat
	// summaries stay byte-identical.
	Mapping        string  `json:"mapping,omitempty"`
	MapLookups     int64   `json:"map_lookups,omitempty"`
	MapHits        int64   `json:"map_hits,omitempty"`
	MapMisses      int64   `json:"map_misses,omitempty"`
	MapMissRate    float64 `json:"map_miss_rate,omitempty"`
	MapFetches     int64   `json:"map_fetches,omitempty"`
	MapWritebacks  int64   `json:"map_writebacks,omitempty"`
	MapEvictions   int64   `json:"map_evictions,omitempty"`
	MapCleanRounds int64   `json:"map_clean_rounds,omitempty"`

	TraceEvents int64   `json:"trace_events,omitempty"`
	TraceHolds  int64   `json:"trace_holds,omitempty"`
	TraceWaitUs float64 `json:"trace_wait_us,omitempty"`

	// Telemetry carries the windowed time series and per-phase latency
	// attribution when Config.Telemetry was set.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
}

// Summarize digests the device's current state into a Summary. Call it
// after Run.
func (s *SSD) Summarize() Summary {
	m := s.Metrics()
	fs := s.FTL.Stats()
	now := s.Engine.Now()
	sum := Summary{
		Arch:          s.Arch.String(),
		SimTimeUs:     now.Microseconds(),
		EventsFired:   s.Engine.EventsFired(),
		Requests:      m.TotalRequests(),
		KIOPS:         m.KIOPS(),
		BandwidthMBps: m.BandwidthMBps(),
		ReadLatency:   latencySummary(m.Latency[stats.Read]),
		WriteLatency:  latencySummary(m.Latency[stats.Write]),
		GCRounds:      fs.GCRounds,
		GCPagesCopied: fs.GCPagesCopied,
		WriteStalls:   fs.WriteStalls,
	}
	for _, b := range s.Buses() {
		sum.Buses = append(sum.Buses, BusSummary{
			Name:         b.Name,
			Kind:         b.Kind,
			BusyFraction: b.Channel.Utilization(),
			BusyUs:       b.Channel.TotalBusy().Microseconds(),
		})
	}
	s.Grid.ForEach(func(_ controller.ChipID, c *flash.Chip) {
		r, p, e := c.Counters()
		sum.FlashReads += r
		sum.FlashPrograms += p
		sum.FlashErases += e
	})
	if ras := s.RAS(); ras != nil {
		sum.RAS = make(map[string]string)
		for _, row := range ras.Rows() {
			if row[1] != "0" && row[1] != "(empty)" {
				sum.RAS[row[0]] = row[1]
			}
		}
	}
	if s.Sched != nil {
		sum.Scheduler = s.Sched.Policy().String()
		sum.SchedDeferred, sum.SchedReordered, sum.SchedForced = s.Sched.Counts()
		sum.SchedMaxQueue = s.Sched.MaxPending()
	}
	if s.FTL.MapEnabled() {
		ms := s.FTL.MapStats()
		sum.Mapping = "fmmu"
		sum.MapLookups = ms.Lookups
		sum.MapHits = ms.Hits
		sum.MapMisses = ms.Misses
		sum.MapMissRate = ms.MissRate()
		sum.MapFetches = ms.Fetches
		sum.MapWritebacks = ms.Writebacks
		sum.MapEvictions = ms.Evictions
		sum.MapCleanRounds = ms.CleanRounds
	}
	if s.Tracer.Enabled() {
		holds, waits := s.Tracer.Holds()
		sum.TraceEvents = int64(s.Tracer.Events())
		sum.TraceHolds = holds
		sum.TraceWaitUs = waits.Microseconds()
	}
	if s.Telemetry.Enabled() {
		sum.Telemetry = s.Telemetry.Summary(now)
	}
	return sum
}

// InjectTelemetryCounters renders the telemetry series as Perfetto
// counter tracks on the trace recorder, one counter lane per series,
// so the time-resolved view appears next to the span tracks in one
// trace file. Call after Run and before ExportChrome; a no-op unless
// both tracing and telemetry are enabled.
func (s *SSD) InjectTelemetryCounters() {
	if !s.Tracer.Enabled() || !s.Telemetry.Enabled() {
		return
	}
	sum := s.Telemetry.Summary(s.Engine.Now())
	for _, sr := range sum.Series {
		s.Tracer.CounterSeries("tel:"+sr.Name, sr.Unit, s.Telemetry.Window(), sr.Values)
	}
}

// WriteSummaryJSON writes the run summary as indented JSON.
func (s *SSD) WriteSummaryJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Summarize())
}
