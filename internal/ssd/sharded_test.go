package ssd

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shardedArtifacts runs the fully instrumented determinism workload —
// GC-heavy SpGC on pnSSD+split with tracing, the invariant checker, and
// telemetry all live — at the given shard count (0 = plain serial
// engine) and scheduling policy ("" = default fifo) and returns every
// byte-addressable artifact: the run summary JSON, the Chrome trace
// export, and the telemetry document.
func shardedArtifacts(t *testing.T, shards int, sched string) (summary, chrome, tel []byte, s *SSD) {
	t.Helper()
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Trace = &trace.Config{Window: 100 * sim.Microsecond}
	cfg.Check = &check.Config{}
	cfg.Telemetry = &telemetry.Config{Window: 100 * sim.Microsecond}
	cfg.Shards = shards
	cfg.Scheduler = sched
	s = New(ArchPnSSDSplit, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("exchange-1", foot, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	end := s.Run() // checker enabled: a violation panics

	var sb bytes.Buffer
	if err := s.WriteSummaryJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := s.Tracer.ExportChrome(&cb); err != nil {
		t.Fatal(err)
	}
	doc, err := json.MarshalIndent(s.Telemetry.Summary(end), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), cb.Bytes(), doc, s
}

// TestShardsByteIdentity is the tentpole's non-negotiable contract at
// the device level, pinned the same way internal/runner pinned
// -parallel: summary JSON, Chrome trace, and telemetry document are
// byte-identical at every shard count — serial engine, shards=1, 2, and
// 4 — with the full invariant checker clean on each run.
func TestShardsByteIdentity(t *testing.T) {
	refSummary, refChrome, refTel, ref := shardedArtifacts(t, 0, "")
	if ref.Sharded != nil {
		t.Fatal("serial run built a sharded engine")
	}
	for _, shards := range []int{1, 2, 4} {
		summary, chrome, tel, s := shardedArtifacts(t, shards, "")
		if shards > 1 {
			if s.Sharded == nil || s.Partition == nil {
				t.Fatalf("shards=%d run has no sharded engine/partition", shards)
			}
			if s.Sharded.Shard(0) != s.Engine {
				t.Fatalf("shards=%d: SSD.Engine is not shard 0", shards)
			}
			if w := s.Sharded.Window(); w != s.Fabric.Lookahead() {
				t.Fatalf("shards=%d window %v, want fabric lookahead %v", shards, w, s.Fabric.Lookahead())
			}
		} else if s.Sharded != nil {
			t.Fatal("shards=1 should run the serial engine directly")
		}
		if !bytes.Equal(summary, refSummary) {
			t.Fatalf("shards=%d summary JSON diverges from serial (%d vs %d bytes)", shards, len(summary), len(refSummary))
		}
		if !bytes.Equal(chrome, refChrome) {
			t.Fatalf("shards=%d Chrome trace diverges from serial (%d vs %d bytes)", shards, len(chrome), len(refChrome))
		}
		if !bytes.Equal(tel, refTel) {
			t.Fatalf("shards=%d telemetry document diverges from serial (%d vs %d bytes)", shards, len(tel), len(refTel))
		}
		if a, b := s.Engine.EventsFired(), ref.Engine.EventsFired(); a != b {
			t.Fatalf("shards=%d fired %d events, serial fired %d", shards, a, b)
		}
	}
}

// TestPartitionPlan pins the topology-natural shard maps: h-channel
// pairs on bus fabrics, v-channel columns on Omnibus, rows on the mesh —
// controller complex always on shard 0, effective shard count capped at
// groups+1.
func TestPartitionPlan(t *testing.T) {
	cfg := tinyConfig() // 4 channels x 4 ways
	cases := []struct {
		arch      Arch
		requested int
		groups    int
		shards    int
	}{
		{ArchBase, 4, 2, 3},        // 2 channel pairs -> at most 3 shards
		{ArchPSSD, 2, 2, 2},
		{ArchPnSSD, 8, 4, 5},       // numV = min(4,4) = 4 columns
		{ArchPnSSDSplit, 4, 4, 4},
		{ArchNoSSDPin, 16, 4, 5},   // one group per row
	}
	for _, tc := range cases {
		p := PlanPartition(tc.arch, cfg, tc.requested, sim.Microsecond)
		if p.Groups != tc.groups || p.Shards != tc.shards {
			t.Fatalf("%v requested=%d: groups=%d shards=%d, want %d/%d",
				tc.arch, tc.requested, p.Groups, p.Shards, tc.groups, tc.shards)
		}
		seen := make(map[int]bool)
		for ch := 0; ch < cfg.Channels; ch++ {
			for w := 0; w < cfg.Ways; w++ {
				sh := p.ShardOf(chipID(ch, w))
				if sh < 1 || sh >= p.Shards {
					t.Fatalf("%v chip ch%d/w%d on shard %d outside [1,%d)", tc.arch, ch, w, sh, p.Shards)
				}
				seen[sh] = true
			}
		}
		if len(seen) != p.Shards-1 {
			t.Fatalf("%v: chips cover %d shards, want all %d worker shards", tc.arch, len(seen), p.Shards-1)
		}
	}
	// Chips sharing a seam share a shard.
	p := PlanPartition(ArchBase, cfg, 4, sim.Microsecond)
	if p.ShardOf(chipID(0, 0)) != p.ShardOf(chipID(1, 3)) {
		t.Fatal("baseSSD: channels 0 and 1 form a pair but landed on different shards")
	}
	p = PlanPartition(ArchPnSSD, cfg, 8, sim.Microsecond)
	if p.ShardOf(chipID(0, 2)) != p.ShardOf(chipID(3, 2)) {
		t.Fatal("pnSSD: way-column 2 split across shards")
	}
	if p.ShardOf(chipID(0, 1)) == p.ShardOf(chipID(0, 2)) {
		t.Fatal("pnSSD: distinct v-columns collapsed onto one shard with shards > columns")
	}
}

// TestShardedZeroLookaheadFallsBackSerial: the control-plane ablation
// can drive an Omnibus fabric's minimum cross-group latency to zero;
// a sharded device must then drain serially (there is no lookahead to
// window on) and still finish clean.
func TestShardedZeroLookaheadFallsBackSerial(t *testing.T) {
	cfg := tinyConfig()
	cfg.Shards = 4
	s := New(ArchPnSSD, cfg)
	s.Soc.SetCtrlMsgLatency(0)
	if la := s.Fabric.Lookahead(); la != 0 {
		t.Fatalf("lookahead %v after zeroing control-plane latency, want 0", la)
	}
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	gen := workload.Synthetic(workload.RandRead, 256, 4, 11)
	s.Host.RunClosedLoop(gen, 4, 64)
	s.Run()
	if s.Sharded.Windows() != 0 {
		t.Fatalf("zero-lookahead drain still ran %d lockstep windows", s.Sharded.Windows())
	}
	if got := s.Metrics().TotalRequests(); got != 64 {
		t.Fatalf("completed %d/64 requests on the serial fallback", got)
	}
}

func chipID(ch, w int) controller.ChipID { return controller.ChipID{Channel: ch, Way: w} }
