// Package ssd assembles complete simulated SSDs: the Table II
// configuration, the Table III architecture matrix (baseSSD, pSSD, pnSSD,
// pnSSD+split, and the two NoSSD mesh variants), and a one-call
// constructor that wires engine, flash grid, SoC, fabric, FTL, and host
// together. This is the public entry point the examples, the experiment
// runners, and the benchmarks build on.
package ssd

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Arch selects one of the evaluated SSD architectures (Table III).
type Arch int

// Architectures.
const (
	ArchBase       Arch = iota // conventional SSD: dedicated signaling, 8-bit bus
	ArchNoSSDPin               // Network-on-SSD, pin-constrained 2-bit mesh links
	ArchNoSSDFree              // Network-on-SSD, unconstrained 8-bit mesh links
	ArchPSSD                   // packetized SSD: 16-bit packetized bus (Sec IV)
	ArchPnSSD                  // pSSD + Omnibus topology (Sec V)
	ArchPnSSDSplit             // pnSSD with split page transfers (Sec V-C)
)

// Archs lists every architecture in Table III order.
var Archs = []Arch{ArchBase, ArchNoSSDPin, ArchNoSSDFree, ArchPSSD, ArchPnSSD, ArchPnSSDSplit}

// String returns the paper's acronym.
func (a Arch) String() string {
	switch a {
	case ArchBase:
		return "baseSSD"
	case ArchNoSSDPin:
		return "NoSSD(pin-constraint)"
	case ArchNoSSDFree:
		return "NoSSD(no constraint)"
	case ArchPSSD:
		return "pSSD"
	case ArchPnSSD:
		return "pnSSD"
	case ArchPnSSDSplit:
		return "pnSSD(+split)"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// Describe returns the Table III description.
func (a Arch) Describe() string {
	switch a {
	case ArchBase:
		return "Conventional SSD"
	case ArchNoSSDPin:
		return "Network-on-SSD with 2-bit channel on mesh"
	case ArchNoSSDFree:
		return "Network-on-SSD with 8-bit channel on mesh"
	case ArchPSSD:
		return "Packetized SSD (Sec IV)"
	case ArchPnSSD:
		return "pSSD with Omnibus topology (Sec V)"
	case ArchPnSSDSplit:
		return "Split technique applied on pnSSD"
	default:
		return "unknown"
	}
}

// Config is the simulation configuration; DefaultConfig reproduces Table
// II and ScaledConfig shrinks per-plane block counts for fast tests and
// benches while preserving every ratio the experiments depend on.
type Config struct {
	Channels int
	Ways     int
	Geometry flash.Geometry
	Timing   flash.Timing
	// BusMTps is the flash channel transfer rate (Table II: 1000 MT/s).
	BusMTps int
	// FTL carries allocation policy and GC settings.
	FTL ftl.Config
	// LogicalUtilization is the fraction of raw capacity exported as LPNs
	// (the rest is over-provisioning).
	LogicalUtilization float64
	// Fault, when non-nil, enables deterministic fault injection: one
	// shared injector is threaded through every chip, the FTL, and (on
	// Omnibus architectures) the fabric control plane.
	Fault *fault.Config
	// Trace, when non-nil, enables the tracing subsystem: a recorder is
	// attached to every bus channel, flash die, SoC resource, and the NVMe
	// link, and the host/FTL/fabric layers emit lifecycle spans. Nil (the
	// default) leaves every hook detached, so the simulation is
	// bit-identical to a build without tracing.
	Trace *trace.Config
	// Check, when non-nil, enables the invariant checker: an observer is
	// attached alongside tracing on every bus channel, flash die, SoC
	// resource, and the NVMe link, the FTL reports page commits, and Run
	// verifies drain-time invariants. Nil (the default) leaves every hook
	// detached, so the simulation is bit-identical to a build without
	// checking.
	Check *check.Config
	// Frontend, when non-nil, builds a multi-tenant NVMe front end over
	// the host: one submission/completion queue pair per tenant with the
	// configured arbiter deciding dispatch order. Nil (the default) leaves
	// the single-queue Host as the only entry point.
	Frontend *host.FrontendConfig
	// Telemetry, when non-nil, enables the time-series engine: a
	// collector samples windowed host throughput/latency, GC activity,
	// Omnibus grant wait, per-tenant queue depth, and RAS events, and
	// every request carries a latency attribution decomposing its
	// end-to-end latency into phases. Nil (the default) leaves every
	// hook detached, so the simulation is bit-identical to a build
	// without telemetry.
	Telemetry *telemetry.Config
	// Scheduler selects the controller's command scheduling policy:
	// "fifo" (or empty, the default — issue in arrival order, byte-
	// identical to a build without the scheduling layer), "conflict"
	// (Venice-style conflict-aware path reservation), or "ooo"
	// (Sprinkler-style out-of-order die-level reordering). Non-FIFO
	// policies interpose controller.SchedFabric between the FTL and the
	// fabric.
	Scheduler string
	// Mapping selects the FTL mapping mode: "flat" (or empty, the
	// default — whole map in DRAM, translation free, byte-identical to a
	// build without the map unit) or "fmmu" (FMMU-style demand-paged
	// mapping: translation pages live on flash, a bounded DRAM map cache
	// holds the hot subset, and map IO flows through the fabric as real
	// traffic).
	Mapping string
	// MapCacheEntries is the fmmu map-cache capacity in translation
	// pages; zero selects the ftl default (64). Ignored in flat mode.
	MapCacheEntries int
	// MapEviction selects the fmmu map-cache replacement policy:
	// "clock" (or empty, the default) or "lru". Ignored in flat mode.
	MapEviction string
	// Shards, when above 1, runs the device on a partitioned engine
	// (sim.ShardedEngine): the chip array divides into topology-natural
	// groups (see PlanPartition), the lockstep window comes from the
	// fabric's Lookahead bound, and Run drains through the sharded
	// engine. Every output is byte-identical at any shard count — 0, 1,
	// and the serial engine included; that contract is pinned by tests
	// and CI the same way the runner pinned -parallel.
	Shards int
}

// DefaultConfig returns the paper's Table II parameters: 8 channels, 8
// ways, 1 die, 4 planes, 1024 blocks, 512 pages, 16 KB pages, ULL flash,
// 1000 MT/s bus.
func DefaultConfig() Config {
	return Config{
		Channels:           8,
		Ways:               8,
		Geometry:           flash.Geometry{Planes: 4, BlocksPerPlane: 1024, PagesPerBlock: 512, PageSize: 16384},
		Timing:             flash.ULLTiming(),
		BusMTps:            1000,
		FTL:                ftl.DefaultConfig(),
		LogicalUtilization: 0.875,
	}
}

// ScaledConfig returns Table II with the per-plane block count and pages
// per block reduced so whole-device experiments run in seconds. Channel
// count, way count, plane count, page size, bus rate, and flash timing —
// everything that shapes the interconnect results — are untouched.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.Geometry.BlocksPerPlane = 16
	c.Geometry.PagesPerBlock = 32
	return c
}

// Validate panics on malformed configuration.
func (c Config) Validate() {
	c.Geometry.Validate()
	if c.Channels <= 0 || c.Ways <= 0 || c.BusMTps <= 0 {
		panic(fmt.Sprintf("ssd: invalid config %+v", c))
	}
	if c.LogicalUtilization <= 0 || c.LogicalUtilization >= 1 {
		panic("ssd: LogicalUtilization must be in (0,1)")
	}
	if c.Shards < 0 {
		panic(fmt.Sprintf("ssd: negative shard count %d", c.Shards))
	}
	if _, err := controller.ParseSchedPolicy(c.Scheduler); err != nil {
		panic(fmt.Sprintf("ssd: %v", err))
	}
	switch c.Mapping {
	case "", "flat", "fmmu":
	default:
		panic(fmt.Sprintf("ssd: unknown mapping mode %q (want flat or fmmu)", c.Mapping))
	}
	switch c.MapEviction {
	case "", "clock", "lru":
	default:
		panic(fmt.Sprintf("ssd: unknown map eviction policy %q (want clock or lru)", c.MapEviction))
	}
	if c.MapCacheEntries < 0 {
		panic(fmt.Sprintf("ssd: negative map cache size %d", c.MapCacheEntries))
	}
	if c.Frontend != nil {
		if err := c.Frontend.Validate(); err != nil {
			panic(err)
		}
	}
	if c.Fault != nil {
		c.Fault.Validate()
		numV := c.Channels
		if c.Ways < numV {
			numV = c.Ways
		}
		for _, v := range c.Fault.DeadVChannels {
			if v >= numV {
				panic(fmt.Sprintf("ssd: dead v-channel %d outside [0,%d)", v, numV))
			}
		}
	}
}

// RawPages returns the device's physical page count.
func (c Config) RawPages() int64 {
	return int64(c.Channels) * int64(c.Ways) * int64(c.Geometry.PagesPerChip())
}

// LogicalPages returns the exported LPN count.
func (c Config) LogicalPages() int64 {
	return int64(float64(c.RawPages()) * c.LogicalUtilization)
}

// totalFlashMBps is the aggregate baseline flash bus bandwidth used to
// provision SoC and NVMe resources (Table II's "x1" note).
func (c Config) totalFlashMBps() int { return c.Channels * c.BusMTps }

// SSD is one assembled device.
type SSD struct {
	Arch   Arch
	Config Config
	Engine *sim.Engine
	Grid   *controller.Grid
	Soc    *controller.Soc
	Fabric controller.Fabric
	FTL    *ftl.FTL
	Host   *host.Host
	// Frontend is the multi-tenant queue front end, nil unless
	// Config.Frontend was set.
	Frontend *host.Frontend
	// Faults is the shared injector, nil unless Config.Fault was set.
	Faults *fault.Injector
	// Tracer is the trace recorder, nil unless Config.Trace was set.
	Tracer *trace.Recorder
	// Checker is the invariant checker, nil unless Config.Check was set.
	Checker *check.Checker
	// Telemetry is the time-series collector, nil unless
	// Config.Telemetry was set.
	Telemetry *telemetry.Collector
	// Sched is the scheduling layer between FTL and fabric, nil unless
	// Config.Scheduler selected a non-FIFO policy. Fabric stays the
	// inner interconnect model in either case.
	Sched *controller.SchedFabric
	// Sharded is the partitioned engine, nil unless Config.Shards > 1.
	// Engine is then shard 0 of it — the shard holding the host, FTL,
	// SoC, and fabric resources — so every existing accessor keeps
	// working unchanged.
	Sharded *sim.ShardedEngine
	// Partition is the shard map, nil unless Config.Shards > 1.
	Partition *Partition
}

// RAS returns the run's RAS counters, or nil when fault injection is off.
func (s *SSD) RAS() *stats.RAS { return s.Faults.RAS() }

// wireFaults builds the injector from cfg.Fault (nil when absent) and
// attaches it to every chip, the FTL, and an Omnibus fabric's control
// plane. Bus and mesh fabrics have no v-channels or grant exchange, so
// for them only the flash- and FTL-level classes apply.
func wireFaults(cfg Config, grid *controller.Grid, fab controller.Fabric, f *ftl.FTL) *fault.Injector {
	if cfg.Fault == nil {
		return nil
	}
	inj := fault.New(*cfg.Fault)
	grid.ForEach(func(id controller.ChipID, c *flash.Chip) {
		c.SetFaults(inj, uint64(id.Channel*cfg.Ways+id.Way))
	})
	f.SetFaults(inj)
	if ob, ok := fab.(*controller.OmnibusFabric); ok {
		ob.SetFaultInjector(inj)
	}
	return inj
}

// wireTrace builds the recorder from cfg.Trace (nil when absent),
// registers one track per h-channel, v-channel, chip die, SoC resource,
// and the NVMe link — in that display order, so every bus appears in the
// export even if idle — and attaches the observer and span hooks through
// every layer. Mesh fabrics trace their chips, SoC, and NVMe link; mesh
// links have no per-row channel notion and stay untracked.
func wireTrace(cfg Config, eng *sim.Engine, grid *controller.Grid, fab controller.Fabric, f *ftl.FTL, h *host.Host, soc *controller.Soc) *trace.Recorder {
	if cfg.Trace == nil {
		return nil
	}
	rec := trace.New(eng, *cfg.Trace)
	switch fb := fab.(type) {
	case *controller.BusFabric:
		for ch := 0; ch < grid.Channels; ch++ {
			c := fb.Channel(ch)
			rec.RegisterTrack(c.Name(), trace.KindHChannel)
			c.SetObserver(rec)
		}
	case *controller.OmnibusFabric:
		for ch := 0; ch < grid.Channels; ch++ {
			c := fb.HChannel(ch)
			rec.RegisterTrack(c.Name(), trace.KindHChannel)
			c.SetObserver(rec)
		}
		for i := 0; i < fb.NumVChannels(); i++ {
			c := fb.VChannel(i * fb.ColumnsPerVChannel())
			rec.RegisterTrack(c.Name(), trace.KindVChannel)
			c.SetObserver(rec)
		}
		fb.SetTracer(rec)
	}
	grid.ForEach(func(_ controller.ChipID, c *flash.Chip) {
		rec.RegisterTrack(c.DieName(), trace.KindChip)
		c.SetObserver(rec)
	})
	rec.RegisterTrack("sysbus", trace.KindSoc)
	rec.RegisterTrack("dram", trace.KindSoc)
	soc.SetObserver(rec)
	rec.RegisterTrack(h.NvmeName(), trace.KindHost)
	h.SetObserver(rec)
	h.SetTracer(rec)
	f.SetTracer(rec)
	return rec
}

// wireCheck builds the invariant checker from cfg.Check (nil when
// absent): it registers every bus channel, die, SoC resource, and the
// NVMe link with its kind, attaches the checker as an additional observer
// (tracing, if enabled, keeps its own), hooks the FTL's page-commit sink
// and the Omnibus copy-routing notification, and installs the drain-time
// leak and accounting checks Run verifies.
func wireCheck(cfg Config, eng *sim.Engine, grid *controller.Grid, fab controller.Fabric, f *ftl.FTL, h *host.Host, soc *controller.Soc, inj *fault.Injector) *check.Checker {
	if cfg.Check == nil {
		return nil
	}
	ck := check.New(eng, *cfg.Check)
	watch := func(name string, busy func() bool, queued func() int) {
		ck.WatchIdle(name, func() (bool, int) { return busy(), queued() })
	}
	switch fb := fab.(type) {
	case *controller.BusFabric:
		for ch := 0; ch < grid.Channels; ch++ {
			c := fb.Channel(ch)
			ck.RegisterResource(c.Name(), trace.KindHChannel)
			c.AddObserver(ck)
			watch(c.Name(), c.Busy, c.QueueLen)
		}
	case *controller.OmnibusFabric:
		for ch := 0; ch < grid.Channels; ch++ {
			c := fb.HChannel(ch)
			ck.RegisterResource(c.Name(), trace.KindHChannel)
			c.AddObserver(ck)
			watch(c.Name(), c.Busy, c.QueueLen)
		}
		for i := 0; i < fb.NumVChannels(); i++ {
			c := fb.VChannel(i * fb.ColumnsPerVChannel())
			ck.RegisterResource(c.Name(), trace.KindVChannel)
			c.AddObserver(ck)
			watch(c.Name(), c.Busy, c.QueueLen)
		}
		ck.WatchCopies(fb.ColumnsPerVChannel())
		fb.SetChecker(ck)
	}
	grid.ForEach(func(_ controller.ChipID, c *flash.Chip) {
		ck.RegisterResource(c.DieName(), trace.KindChip)
		c.AddObserver(ck)
		watch(c.DieName(), c.Busy, c.QueueLen)
	})
	soc.AddObserver(ck)
	ck.RegisterResource("sysbus", trace.KindSoc)
	ck.RegisterResource("dram", trace.KindSoc)
	ck.AddDrainCheck("soc-idle", func() error {
		if !soc.Idle() {
			return fmt.Errorf("SoC resources busy or queued after drain")
		}
		return nil
	})
	ck.RegisterResource(h.NvmeName(), trace.KindHost)
	h.AddObserver(ck)
	ck.AddDrainCheck("nvme-idle", func() error {
		if !h.NvmeIdle() {
			return fmt.Errorf("NVMe link busy or queued after drain")
		}
		return nil
	})
	if f.MapEnabled() {
		ck.WatchMap(f.MapCacheEntries())
		ck.SetMapProbe(f.MapFlashToken)
		f.SetMapChecker(ck)
		ck.AddDrainCheck("map-idle", f.MapIdle)
	}
	f.SetChecker(ck)
	ck.SetContentProbe(func(lpn int64) (flash.Token, bool) {
		id, addr, ok := f.Map(lpn)
		if !ok {
			return 0, false
		}
		chip := grid.Chip(id)
		if chip.PageStateAt(addr) != flash.PageProgrammed {
			return 0, false
		}
		return chip.ContentAt(addr), true
	})
	ck.AddDrainCheck("engine-drained", func() error {
		if n := eng.Pending(); n != 0 {
			return fmt.Errorf("%d events still pending", n)
		}
		return nil
	})
	ck.AddDrainCheck("ftl-drained", func() error {
		switch {
		case f.Outstanding() != 0:
			return fmt.Errorf("%d host ops outstanding", f.Outstanding())
		case f.InflightWriteLPNs() != 0:
			return fmt.Errorf("%d LPNs with writes in flight", f.InflightWriteLPNs())
		case f.StalledWrites() != 0:
			return fmt.Errorf("%d writes stalled on space", f.StalledWrites())
		case f.GCActive():
			return fmt.Errorf("GC round still active")
		}
		return nil
	})
	ck.AddDrainCheck("ftl-consistency", f.CheckConsistency)
	ck.AddDrainCheck("vpage-leaks", func() error {
		var err error
		grid.ForEach(func(id controller.ChipID, c *flash.Chip) {
			if err == nil && c.VPagesHeld() > 0 {
				err = fmt.Errorf("chip %v holds %d V-page registers", id, c.VPagesHeld())
			}
		})
		return err
	})
	if inj != nil {
		ck.AddDrainCheck("ras-balance", check.RASBalance(inj))
	}
	return ck
}

// wireTelemetry builds the collector from cfg.Telemetry (nil when
// absent) and attaches it to the host (attribution + windowed series),
// the FTL (GC activity, stall events), and an Omnibus fabric's grant
// arbitration. The collector is purely passive — it never schedules
// events — so an instrumented run executes the same event sequence.
func wireTelemetry(cfg Config, fab controller.Fabric, f *ftl.FTL, h *host.Host) *telemetry.Collector {
	if cfg.Telemetry == nil {
		return nil
	}
	col := telemetry.New(*cfg.Telemetry)
	h.SetTelemetry(col)
	f.SetTelemetry(col)
	if f.MapEnabled() {
		col.EnableMapPhase()
	}
	if ob, ok := fab.(*controller.OmnibusFabric); ok {
		ob.SetTelemetry(col)
	}
	return col
}

// wireFrontend builds the multi-tenant front end from cfg.Frontend (nil
// when absent) and hooks it into tracing (one span track per tenant)
// and the invariant checker (per-queue depth ledger, arbiter fairness
// bound, per-tenant conservation, and a drained-front-end check).
func wireFrontend(cfg Config, h *host.Host, rec *trace.Recorder, ck *check.Checker, col *telemetry.Collector) *host.Frontend {
	if cfg.Frontend == nil {
		return nil
	}
	fe, err := host.NewFrontend(h, *cfg.Frontend)
	if err != nil {
		panic(err) // cfg.Validate already vetted the frontend config
	}
	if rec.Enabled() {
		fe.SetTracer(rec)
	}
	if ck.Enabled() {
		ck.WatchTenants(fe.NumTenants(), fe.StarvationBound())
		fe.SetObserver(ck)
		ck.AddDrainCheck("frontend-drained", func() error {
			if !fe.Drained() {
				return fmt.Errorf("front end has queued or inflight commands after drain (inflight=%d)", fe.Inflight())
			}
			return nil
		})
	}
	if col.Enabled() {
		fe.SetTelemetry(col)
	}
	return fe
}

// wrapSched interposes the scheduling layer between FTL and fabric when
// cfg.Scheduler selects a non-FIFO policy. The FTL issues through the
// returned Fabric; everything else (tracing, checking, telemetry, bus
// accessors) keeps seeing the inner fabric, whose event behavior the
// wrapper only re-sequences. FIFO (the default) returns the fabric
// unwrapped, so the default build is byte-identical to one without the
// scheduling layer compiled in.
func wrapSched(cfg Config, fab controller.Fabric) (controller.Fabric, *controller.SchedFabric) {
	pol, err := controller.ParseSchedPolicy(cfg.Scheduler)
	if err != nil {
		panic(fmt.Sprintf("ssd: %v", err)) // Validate already vetted it
	}
	if pol == controller.SchedFIFO {
		return fab, nil
	}
	s := controller.NewSchedFabric(fab, pol)
	return s, s
}

// wireSchedCheck attaches the scheduling-layer invariants: the
// reservation ledger and reorder-window rules audit every decision, and
// a drain check asserts the scheduler holds nothing at end of run.
func wireSchedCheck(sched *controller.SchedFabric, ck *check.Checker) {
	if sched == nil || !ck.Enabled() {
		return
	}
	ck.WatchSched(sched.Window(), sched.ReorderBound())
	sched.SetChecker(ck)
	ck.AddDrainCheck("sched-quiesced", func() error {
		if !sched.Quiesced() {
			return fmt.Errorf("scheduler still holds work after drain")
		}
		return nil
	})
}

// ftlConfig returns cfg.FTL with the map unit enabled when Mapping
// selects fmmu. Flat (or empty) leaves Map nil, so the FTL is built
// exactly as before the mapping mode existed.
func ftlConfig(cfg Config) ftl.Config {
	fc := cfg.FTL
	if cfg.Mapping == "fmmu" {
		fc.Map = &ftl.MapConfig{Entries: cfg.MapCacheEntries, Eviction: cfg.MapEviction}
	}
	return fc
}

// newEngines builds the simulation engine for cfg: a lone serial engine,
// or — when cfg.Shards asks for partitioning — shard 0 of a
// ShardedEngine plus the partition plan. The plan's window is
// provisional until the fabric exists; the constructors and Drain
// refresh it from Fabric.Lookahead.
func newEngines(arch Arch, cfg Config) (*sim.Engine, *sim.ShardedEngine, *Partition) {
	if cfg.Shards <= 1 {
		return sim.NewEngine(), nil, nil
	}
	plan := PlanPartition(arch, cfg, cfg.Shards, sim.Nanosecond)
	se := sim.NewShardedEngine(plan.Shards, plan.Window)
	return se.Shard(0), se, &plan
}

// adoptLookahead records the fabric's lookahead bound as the sharded
// engine's lockstep window once the fabric exists.
func adoptLookahead(se *sim.ShardedEngine, part *Partition, fab controller.Fabric) {
	if se == nil {
		return
	}
	if la := fab.Lookahead(); la > 0 {
		se.SetWindow(la)
		part.Window = la
	}
}

// New builds an SSD of the given architecture. The SoC and NVMe
// bandwidths are provisioned at the architecture's total flash-channel
// bandwidth so they never bottleneck the interconnect under study
// (Sec VII-A).
func New(arch Arch, cfg Config) *SSD {
	cfg.Validate()
	eng, se, part := newEngines(arch, cfg)
	grid := controller.NewGrid(eng, cfg.Channels, cfg.Ways, cfg.Geometry, cfg.Timing)

	// Controller-side bandwidth multiplier: packetized architectures double
	// the per-controller pin bandwidth (16 bits vs 8).
	mult := 1
	switch arch {
	case ArchPSSD, ArchPnSSD, ArchPnSSDSplit, ArchNoSSDFree:
		mult = 2
	}
	socMBps := cfg.totalFlashMBps() * mult
	soc := controller.NewSoc(eng, socMBps, socMBps)

	fab := makeFabric(arch, eng, grid, soc, cfg)
	adoptLookahead(se, part, fab)
	ftlFab, sched := wrapSched(cfg, fab)
	f := ftl.New(eng, ftlFab, ftlConfig(cfg), cfg.LogicalPages())
	h := host.New(eng, f, cfg.Geometry.PageSize, socMBps)
	inj := wireFaults(cfg, grid, fab, f)
	rec := wireTrace(cfg, eng, grid, fab, f, h, soc)
	ck := wireCheck(cfg, eng, grid, fab, f, h, soc, inj)
	wireSchedCheck(sched, ck)
	col := wireTelemetry(cfg, fab, f, h)
	fe := wireFrontend(cfg, h, rec, ck, col)
	return &SSD{Arch: arch, Config: cfg, Engine: eng, Grid: grid, Soc: soc, Fabric: fab, FTL: f, Host: h, Frontend: fe, Faults: inj, Tracer: rec, Checker: ck, Telemetry: col, Sched: sched, Sharded: se, Partition: part}
}

// NewCustom builds an SSD whose fabric comes from the supplied
// constructor — the hook the ablation studies use to vary channel widths,
// routing policy, or control-plane latency while keeping the rest of the
// stack identical. The arch parameter only labels the result.
func NewCustom(arch Arch, cfg Config, mk func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric) *SSD {
	cfg.Validate()
	eng, se, part := newEngines(arch, cfg)
	grid := controller.NewGrid(eng, cfg.Channels, cfg.Ways, cfg.Geometry, cfg.Timing)
	socMBps := cfg.totalFlashMBps() * 2
	soc := controller.NewSoc(eng, socMBps, socMBps)
	fab := mk(eng, grid, soc, cfg.Geometry.PageSize)
	adoptLookahead(se, part, fab)
	ftlFab, sched := wrapSched(cfg, fab)
	f := ftl.New(eng, ftlFab, ftlConfig(cfg), cfg.LogicalPages())
	h := host.New(eng, f, cfg.Geometry.PageSize, socMBps)
	inj := wireFaults(cfg, grid, fab, f)
	rec := wireTrace(cfg, eng, grid, fab, f, h, soc)
	ck := wireCheck(cfg, eng, grid, fab, f, h, soc, inj)
	wireSchedCheck(sched, ck)
	col := wireTelemetry(cfg, fab, f, h)
	fe := wireFrontend(cfg, h, rec, ck, col)
	return &SSD{Arch: arch, Config: cfg, Engine: eng, Grid: grid, Soc: soc, Fabric: fab, FTL: f, Host: h, Frontend: fe, Faults: inj, Tracer: rec, Checker: ck, Telemetry: col, Sched: sched, Sharded: se, Partition: part}
}

func makeFabric(arch Arch, eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, cfg Config) controller.Fabric {
	var fab controller.Fabric
	ps := cfg.Geometry.PageSize
	switch arch {
	case ArchBase:
		fab = controller.NewBusFabric(eng, arch.String(), grid, soc, ps, 8, cfg.BusMTps, false)
	case ArchPSSD:
		fab = controller.NewBusFabric(eng, arch.String(), grid, soc, ps, 16, cfg.BusMTps, true)
	case ArchPnSSD:
		fab = controller.NewOmnibusFabric(eng, arch.String(), grid, soc, ps, 8, cfg.BusMTps, false)
	case ArchPnSSDSplit:
		fab = controller.NewOmnibusFabric(eng, arch.String(), grid, soc, ps, 8, cfg.BusMTps, true)
	case ArchNoSSDPin:
		fab = controller.NewMeshFabric(eng, arch.String(), grid, soc, ps, 2, cfg.BusMTps)
	case ArchNoSSDFree:
		fab = controller.NewMeshFabric(eng, arch.String(), grid, soc, ps, 8, cfg.BusMTps)
	default:
		panic(fmt.Sprintf("ssd: unknown architecture %d", int(arch)))
	}
	return fab
}

// AttachChannelUtil attaches per-channel utilization recorders with the
// given window to every h-channel (bus and Omnibus fabrics) and returns
// the matrix — the instrument behind Fig 3. Mesh fabrics have no channel
// notion and return nil.
func (s *SSD) AttachChannelUtil(window sim.Time) *stats.UtilMatrix {
	switch fab := s.Fabric.(type) {
	case *controller.BusFabric:
		m := stats.NewUtilMatrix(s.Config.Channels, window)
		for ch := 0; ch < s.Config.Channels; ch++ {
			fab.Channel(ch).SetUtilRecorder(m.Recorders[ch])
		}
		return m
	case *controller.OmnibusFabric:
		m := stats.NewUtilMatrix(s.Config.Channels, window)
		for ch := 0; ch < s.Config.Channels; ch++ {
			fab.HChannel(ch).SetUtilRecorder(m.Recorders[ch])
		}
		return m
	default:
		return nil
	}
}

// Drain runs the simulation to completion and returns the final time,
// routing through the partitioned engine when Config.Shards enabled one
// and the serial engine otherwise — without verifying invariants (Run
// does both). The sharded path refreshes the lockstep window from the
// fabric's current Lookahead bound first: ablations may have changed the
// underlying latencies since construction, and if one drove the bound to
// zero (SetCtrlMsgLatency(0)) there is no lookahead left to window on,
// so Drain falls back to draining shard 0 serially — byte-identical,
// since the reactive model lives entirely on shard 0.
func (s *SSD) Drain() sim.Time {
	if s.Sharded != nil {
		if la := s.Fabric.Lookahead(); la > 0 {
			if la != s.Sharded.Window() {
				s.Sharded.SetWindow(la)
				s.Partition.Window = la
			}
			return s.Sharded.Run()
		}
	}
	return s.Engine.Run()
}

// Run drains the event queue and returns the final simulation time. With
// the invariant checker enabled, every drain is verified and a violation
// panics — turning each experiment run into a correctness oracle. Use
// Drain plus VerifyInvariants to inspect violations without panicking.
func (s *SSD) Run() sim.Time {
	t := s.Drain()
	if s.Checker.Enabled() {
		if err := s.Checker.Verify(); err != nil {
			panic(err)
		}
	}
	return t
}

// VerifyInvariants evaluates the checker's drain-time invariants and
// returns the accumulated violations as an error, or nil when clean (or
// when checking is disabled). Idempotent.
func (s *SSD) VerifyInvariants() error { return s.Checker.Verify() }

// Metrics returns the host-side I/O metrics.
func (s *SSD) Metrics() *stats.IOMetrics { return s.Host.Metrics() }
