package ssd

import (
	"bytes"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/ftl"
	"repro/internal/workload"
)

// TestSchedulerFIFOByteIdentical pins the default-path contract of the
// scheduling refactor: Scheduler "" and "fifo" both leave the fabric
// unwrapped, so the whole artifact set — summary, trace, telemetry —
// matches today's output byte for byte.
func TestSchedulerFIFOByteIdentical(t *testing.T) {
	refSummary, refChrome, refTel, ref := shardedArtifacts(t, 0, "")
	if ref.Sched != nil {
		t.Fatal("default config built a scheduling layer")
	}
	summary, chrome, tel, s := shardedArtifacts(t, 0, "fifo")
	if s.Sched != nil {
		t.Fatal("explicit fifo built a scheduling layer")
	}
	if !bytes.Equal(summary, refSummary) || !bytes.Equal(chrome, refChrome) || !bytes.Equal(tel, refTel) {
		t.Fatal("explicit fifo output diverges from the default")
	}
	if bytes.Contains(refSummary, []byte("\"scheduler\"")) {
		t.Fatal("default summary leaks scheduler fields")
	}
}

// TestShardsByteIdentitySched extends the shard-identity contract to the
// non-FIFO policies: for conflict and ooo, serial vs 4-shard runs agree
// on every artifact byte, with the checker (including the new scheduler
// ledger) clean throughout.
func TestShardsByteIdentitySched(t *testing.T) {
	for _, sched := range []string{"conflict", "ooo"} {
		refSummary, refChrome, refTel, ref := shardedArtifacts(t, 0, sched)
		if ref.Sched == nil {
			t.Fatalf("sched=%s: no scheduling layer built", sched)
		}
		summary, chrome, tel, _ := shardedArtifacts(t, 4, sched)
		if !bytes.Equal(summary, refSummary) {
			t.Fatalf("sched=%s: summary diverges between serial and shards=4", sched)
		}
		if !bytes.Equal(chrome, refChrome) {
			t.Fatalf("sched=%s: Chrome trace diverges between serial and shards=4", sched)
		}
		if !bytes.Equal(tel, refTel) {
			t.Fatalf("sched=%s: telemetry diverges between serial and shards=4", sched)
		}
		if !bytes.Contains(refSummary, []byte(`"scheduler": "`+sched+`"`)) {
			t.Fatalf("sched=%s: summary does not report the policy", sched)
		}
		if !ref.Sched.Quiesced() {
			t.Fatalf("sched=%s: scheduler not quiesced after drain", sched)
		}
	}
}

// TestSchedulerWiring covers the constructor plumbing: the wrapper is
// interposed for non-FIFO policies (FTL side) while SSD.Fabric stays the
// inner fabric for tracing/summary accessors, and the checker's
// scheduling ledger engages under -check.
func TestSchedulerWiring(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scheduler = "conflict"
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	cfg.Check = &check.Config{}
	s := New(ArchPnSSDSplit, cfg)
	if s.Sched == nil || s.Sched.Policy() != controller.SchedConflict {
		t.Fatalf("Sched = %+v, want conflict wrapper", s.Sched)
	}
	if _, ok := s.Fabric.(*controller.OmnibusFabric); !ok {
		t.Fatalf("SSD.Fabric is %T, want the inner Omnibus fabric", s.Fabric)
	}
	if s.Sched.Inner() != s.Fabric {
		t.Fatal("wrapper does not wrap SSD.Fabric")
	}
	if s.Buses() == nil {
		t.Fatal("bus enumeration broke under the scheduling layer")
	}
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("rocksdb-0", foot, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run() // checker enabled: violations panic
	if issued, done := s.Checker.SchedCounts(); issued == 0 || issued != done {
		t.Fatalf("scheduler ledger saw issued=%d done=%d", issued, done)
	}
	sum := s.Summarize()
	if sum.Scheduler != "conflict" {
		t.Fatalf("summary scheduler = %q", sum.Scheduler)
	}
	if sum.SchedDeferred == 0 {
		t.Fatal("GC-heavy split workload never deferred a conflicting path")
	}

	// ooo wiring: the window is enforced, so the checker must have seen
	// in-window issues only (a violation would have panicked above).
	cfg.Scheduler = "ooo"
	s2 := New(ArchPnSSDSplit, cfg)
	if s2.Sched == nil || s2.Sched.Policy() != controller.SchedOOO {
		t.Fatal("ooo wiring failed")
	}
	s2.Host.Warmup(foot)
	s2.Host.MustReplay(tr.Requests)
	s2.Run()
	if sum2 := s2.Summarize(); sum2.Scheduler != "ooo" || sum2.SchedReordered == 0 {
		t.Fatalf("ooo summary = %q reordered=%d, want reorders under load", sum2.Scheduler, sum2.SchedReordered)
	}
}

func TestSchedulerValidate(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scheduler = "venice"
	defer func() {
		if recover() == nil {
			t.Fatal("Validate accepted an unknown scheduler policy")
		}
	}()
	cfg.Validate()
}
