package ssd

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestArchitecturesPreserveIdenticalLogicalState replays the same GC-heavy
// trace on every Table III architecture and verifies that each device ends
// with exactly the same logical contents: for every LPN, the flash page
// its mapping points at stores the token of the last write the trace made
// to it. Interconnects may only change *when* things happen — never what
// the device stores.
func TestArchitecturesPreserveIdenticalLogicalState(t *testing.T) {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCParallel
	cfg.FTL.GCThreshold = 0.3
	cfg.LogicalUtilization = 0.75

	foot := cfg.LogicalPages()
	tr, err := workload.Named("rocksdb-1", foot, 300, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Expected final version per LPN: count the write requests covering it,
	// replicating the host's page expansion (wrap at the footprint).
	expected := make(map[int64]int64)
	for _, r := range tr.Requests {
		if r.Kind != stats.Write {
			continue
		}
		for i := 0; i < r.Pages; i++ {
			lpn := (r.LPN + int64(i)) % foot
			expected[lpn]++
		}
	}

	for _, arch := range Archs {
		s := New(arch, cfg)
		s.Host.Warmup(foot)
		completed := s.Host.MustReplay(tr.Requests)
		s.Run()
		if *completed != len(tr.Requests) {
			t.Fatalf("%v: completed %d of %d", arch, *completed, len(tr.Requests))
		}
		if err := s.FTL.CheckConsistency(); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		for lpn := int64(0); lpn < foot; lpn++ {
			id, addr, ok := s.FTL.Map(lpn)
			if !ok {
				t.Fatalf("%v: LPN %d unmapped after run", arch, lpn)
			}
			want := ftl.TokenFor(lpn, expected[lpn])
			if got := s.Grid.Chip(id).ContentAt(addr); got != want {
				t.Fatalf("%v: LPN %d content %x, want version %d", arch, lpn, got, expected[lpn])
			}
		}
	}
}

// TestDeterminism runs the same configuration twice and demands
// bit-identical metrics: the whole simulator is supposed to be
// reproducible.
func TestDeterminism(t *testing.T) {
	run := func() (float64, float64, int64) {
		cfg := tinyConfig()
		cfg.FTL.GCMode = ftl.GCSpatial
		cfg.LogicalUtilization = 0.75
		s := New(ArchPnSSDSplit, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.Named("exchange-1", foot, 400, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		m := s.Metrics()
		return m.MeanLatency().Microseconds(), m.KIOPS(), s.Engine.EventsFired()
	}
	l1, k1, e1 := run()
	l2, k2, e2 := run()
	if l1 != l2 || k1 != k2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%v,%v,%d) vs (%v,%v,%d)", l1, k1, e1, l2, k2, e2)
	}
}
