package ssd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// gcConfig is tinyConfig with parallel GC forced on — the checker's
// interesting paths (copies, erases, stalls) all live behind GC.
func gcConfig() Config {
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCParallel
	cfg.FTL.GCThreshold = 0.3
	cfg.LogicalUtilization = 0.75
	return cfg
}

// The headline acceptance run: every Table III architecture finishes a
// GC-heavy trace with the full invariant checker attached and reports
// zero violations — both on a healthy device and under the standard
// fault cocktail (which additionally exercises the RAS-balance drain
// check).
func TestCheckerCleanAcrossArchitectures(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"healthy", gcConfig()},
		{"faulty", faultyConfig(23)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Check = &check.Config{}
			foot := cfg.LogicalPages()
			tr, err := workload.Named("rocksdb-1", foot, 300, 23)
			if err != nil {
				t.Fatal(err)
			}
			for _, arch := range Archs {
				s := New(arch, cfg)
				s.Host.Warmup(foot)
				completed := s.Host.MustReplay(tr.Requests)
				s.Run() // panics on any violation
				if *completed != len(tr.Requests) {
					t.Fatalf("%v: completed %d of %d", arch, *completed, len(tr.Requests))
				}
				if err := s.VerifyInvariants(); err != nil {
					t.Fatalf("%v: %v", arch, err)
				}
				if s.Checker.Checks() == 0 {
					t.Fatalf("%v: checker attached but asserted nothing", arch)
				}
			}
		})
	}
}

// The checker must be an observer, never a participant: with it on or
// off the very same workload fires the same number of events and
// produces a byte-identical run summary.
func TestCheckerPassivity(t *testing.T) {
	run := func(withCheck bool) (int64, []byte) {
		cfg := gcConfig()
		if withCheck {
			cfg.Check = &check.Config{}
		}
		s := New(ArchPnSSDSplit, cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		tr, err := workload.Named("exchange-1", foot, 400, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Host.MustReplay(tr.Requests)
		s.Run()
		var buf bytes.Buffer
		if err := s.WriteSummaryJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return s.Engine.EventsFired(), buf.Bytes()
	}
	evOff, sumOff := run(false)
	evOn, sumOn := run(true)
	if evOff != evOn {
		t.Fatalf("checker perturbed the event sequence: %d events off, %d on", evOff, evOn)
	}
	if !bytes.Equal(sumOff, sumOn) {
		t.Fatalf("checker perturbed the run summary:\noff: %s\non:  %s", sumOff, sumOn)
	}
}

// corruptCopyFabric is the seeded-mutation test double: it delegates
// everything to a real bus fabric but "performs" GC copies by instantly
// installing the wrong token at the destination — the classic silent
// relocation bug the page-conservation invariant exists to catch.
type corruptCopyFabric struct {
	controller.Fabric
	eng    *sim.Engine
	grid   *controller.Grid
	copies int
}

func (d *corruptCopyFabric) Copy(src controller.ChipID, from flash.PPA, dst controller.ChipID, to flash.PPA, done func()) {
	d.copies++
	tok := d.grid.Chip(src).ContentAt(from)
	d.grid.Chip(dst).InstallPage(to, tok+1)
	d.eng.Schedule(sim.Microsecond, done)
}

func TestCheckerCatchesCorruptedGCCopy(t *testing.T) {
	cfg := gcConfig()
	cfg.Check = &check.Config{}
	var liar *corruptCopyFabric
	s := NewCustom(ArchBase, cfg, func(eng *sim.Engine, grid *controller.Grid, soc *controller.Soc, pageSize int) controller.Fabric {
		inner := controller.NewBusFabric(eng, "liar", grid, soc, pageSize, 8, cfg.BusMTps, false)
		liar = &corruptCopyFabric{Fabric: inner, eng: eng, grid: grid}
		return liar
	})
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("rocksdb-1", foot, 300, 23)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	// Run the engine directly: SSD.Run would panic on the violation we
	// want to inspect.
	s.Engine.Run()
	if liar.copies == 0 {
		t.Fatal("workload never triggered a GC copy; mutation not exercised")
	}
	err = s.VerifyInvariants()
	if err == nil || !strings.Contains(err.Error(), "page-conservation") {
		t.Fatalf("corrupted GC copies not caught by conservation checker: %v", err)
	}
}
