package ssd

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runGCHeavy executes the determinism workload (GC-heavy SpGC run on
// pnSSD+split) with or without tracing and returns the device.
func runGCHeavy(t *testing.T, traced bool) *SSD {
	t.Helper()
	cfg := tinyConfig()
	cfg.FTL.GCMode = ftl.GCSpatial
	cfg.LogicalUtilization = 0.75
	if traced {
		cfg.Trace = &trace.Config{Window: 100 * sim.Microsecond}
	}
	s := New(ArchPnSSDSplit, cfg)
	foot := s.Config.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named("exchange-1", foot, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.Host.MustReplay(tr.Requests)
	s.Run()
	return s
}

// TestTracingOffIsBitIdentical is the acceptance gate for the disabled
// path: a run with the tracing hooks compiled in but detached must execute
// the exact same event sequence — same event count, same latencies, same
// GC activity — as a traced run of the same workload. Tracing is passive;
// only the recorder side differs.
func TestTracingOffIsBitIdentical(t *testing.T) {
	off := runGCHeavy(t, false)
	on := runGCHeavy(t, true)

	if off.Tracer.Enabled() {
		t.Fatal("untraced run has a live recorder")
	}
	if !on.Tracer.Enabled() {
		t.Fatal("traced run has no recorder")
	}
	if a, b := off.Engine.EventsFired(), on.Engine.EventsFired(); a != b {
		t.Fatalf("event counts diverge: %d untraced vs %d traced", a, b)
	}
	if a, b := off.Engine.Now(), on.Engine.Now(); a != b {
		t.Fatalf("end times diverge: %v vs %v", a, b)
	}
	mo, mt := off.Metrics(), on.Metrics()
	if mo.MeanLatency() != mt.MeanLatency() || mo.KIOPS() != mt.KIOPS() {
		t.Fatalf("metrics diverge: (%v, %v) vs (%v, %v)",
			mo.MeanLatency(), mo.KIOPS(), mt.MeanLatency(), mt.KIOPS())
	}
	so, st := off.FTL.Stats(), on.FTL.Stats()
	if so != st {
		t.Fatalf("FTL stats diverge: %+v vs %+v", so, st)
	}
	if on.Tracer.Events() == 0 {
		t.Fatal("traced GC-heavy run recorded no events")
	}
}

// TestTraceExportCoversDevice checks the export acceptance criteria: the
// Chrome JSON is valid and declares at least one track per h-channel,
// v-channel, and chip.
func TestTraceExportCoversDevice(t *testing.T) {
	s := runGCHeavy(t, true)
	var buf bytes.Buffer
	if err := s.Tracer.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			// Track names are "<kind> <resource>".
			name, _ := e.Args["name"].(string)
			for _, k := range []string{trace.KindHChannel, trace.KindVChannel, trace.KindChip} {
				if len(name) > len(k) && name[:len(k)] == k {
					kinds[k]++
				}
			}
		}
	}
	cfg := s.Config
	if kinds[trace.KindHChannel] != cfg.Channels {
		t.Fatalf("%d h-channel tracks, want %d", kinds[trace.KindHChannel], cfg.Channels)
	}
	if kinds[trace.KindVChannel] == 0 {
		t.Fatal("no v-channel tracks on an Omnibus fabric")
	}
	if want := s.Grid.NumChips(); kinds[trace.KindChip] != want {
		t.Fatalf("%d chip tracks, want %d", kinds[trace.KindChip], want)
	}
}

// TestTraceBusyAgreesWithChannels checks that the per-bus busy time
// reconstructed from hold spans agrees with each channel's own TotalBusy
// accounting within 1% — the heatmap and the report must tell one story.
func TestTraceBusyAgreesWithChannels(t *testing.T) {
	s := runGCHeavy(t, true)
	byKind := map[string]map[string]int64{}
	for _, kind := range []string{trace.KindHChannel, trace.KindVChannel} {
		byKind[kind] = map[string]int64{}
		for name, busy := range s.Tracer.BusyTotals(kind) {
			byKind[kind][name] = int64(busy)
		}
	}
	checked := 0
	for _, b := range s.Buses() {
		got, ok := byKind[b.Kind][b.Name]
		if !ok {
			t.Fatalf("bus %s (%s) has no trace track", b.Name, b.Kind)
		}
		want := int64(b.Channel.TotalBusy())
		if want == 0 {
			if got != 0 {
				t.Fatalf("bus %s: trace busy %d but channel idle", b.Name, got)
			}
			continue
		}
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.01 {
			t.Fatalf("bus %s: trace busy %d vs channel %d (%.2f%% off)", b.Name, got, want, rel*100)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no busy bus to compare")
	}
}

// TestSummarizeShape exercises the -metrics-json digest on a traced run.
func TestSummarizeShape(t *testing.T) {
	s := runGCHeavy(t, true)
	var buf bytes.Buffer
	if err := s.WriteSummaryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Arch != ArchPnSSDSplit.String() {
		t.Fatalf("arch %q", sum.Arch)
	}
	if sum.Requests != 400 || sum.EventsFired <= 0 || sum.SimTimeUs <= 0 {
		t.Fatalf("summary core fields: %+v", sum)
	}
	if sum.ReadLatency.Count+sum.WriteLatency.Count != sum.Requests {
		t.Fatalf("latency counts %d+%d != %d requests",
			sum.ReadLatency.Count, sum.WriteLatency.Count, sum.Requests)
	}
	if len(sum.Buses) == 0 {
		t.Fatal("no bus summaries on an Omnibus device")
	}
	if sum.GCRounds == 0 {
		t.Fatal("GC-heavy run reports zero GC rounds")
	}
	if sum.TraceEvents == 0 || sum.TraceHolds == 0 {
		t.Fatalf("trace totals missing: events=%d holds=%d", sum.TraceEvents, sum.TraceHolds)
	}
}
