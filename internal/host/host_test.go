package host

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/stats"
)

func testHost(t *testing.T) (*sim.Engine, *Host) {
	t.Helper()
	e := sim.NewEngine()
	geo := flash.Geometry{Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 8, PageSize: 4096}
	g := controller.NewGrid(e, 2, 2, geo, flash.ULLTiming())
	soc := controller.NewSoc(e, 8000, 8000)
	fab := controller.NewBusFabric(e, "base", g, soc, geo.PageSize, 8, 1000, false)
	cfg := ftl.DefaultConfig()
	cfg.GCMode = ftl.GCNone
	f := ftl.New(e, fab, cfg, 256)
	return e, New(e, f, geo.PageSize, 8000)
}

func TestSubmitReadRecordsLatency(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	done := false
	h.Submit(Request{Kind: stats.Read, LPN: 3, Pages: 2}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("read never completed")
	}
	m := h.Metrics()
	if m.Requests[stats.Read] != 1 {
		t.Fatalf("read count = %d", m.Requests[stats.Read])
	}
	lat := m.Latency[stats.Read].Mean()
	// Must include at least cmd latency + tR + channel transfer.
	if lat < 5*sim.Microsecond || lat > 100*sim.Microsecond {
		t.Fatalf("read latency = %v, outside sane range", lat)
	}
	if m.Bytes[stats.Read] != 8192 {
		t.Fatalf("read bytes = %d", m.Bytes[stats.Read])
	}
}

func TestSubmitWriteUpdatesVersion(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	h.Submit(Request{Kind: stats.Write, LPN: 5, Pages: 1}, nil)
	e.Run()
	id, addr, ok := h.FTL().Map(5)
	if !ok {
		t.Fatal("LPN 5 unmapped after write")
	}
	// Version 1 token must be stored (warmup wrote version 0).
	_ = id
	_ = addr
	h.Submit(Request{Kind: stats.Write, LPN: 5, Pages: 1}, nil)
	e.Run()
	if h.Metrics().Requests[stats.Write] != 2 {
		t.Fatal("write count wrong")
	}
}

func TestRequestWrapsFootprint(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(256)
	done := false
	// Request starting at the last LPN wraps to 0.
	h.Submit(Request{Kind: stats.Read, LPN: 255, Pages: 2}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("wrapping read never completed")
	}
}

func TestReplayOpenLoop(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	reqs := []Request{
		{Arrival: 10 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1},
		{Arrival: 20 * sim.Microsecond, Kind: stats.Write, LPN: 1, Pages: 1},
		{Arrival: 30 * sim.Microsecond, Kind: stats.Read, LPN: 2, Pages: 1},
	}
	completed, err := h.Replay(reqs)
	if err != nil {
		t.Fatalf("replay rejected: %v", err)
	}
	e.Run()
	if *completed != 3 {
		t.Fatalf("completed = %d", *completed)
	}
	if h.Metrics().TotalRequests() != 3 {
		t.Fatal("metrics missing requests")
	}
	// Latency is measured from arrival, not submission.
	if h.Metrics().FirstArrival != 10*sim.Microsecond {
		t.Fatalf("first arrival = %v", h.Metrics().FirstArrival)
	}
}

// ReplayTimed must report one completion time per request, ordered like
// the input trace, each at or after its arrival and consistent with the
// aggregate metrics.
func TestReplayTimedReportsPerRequestCompletions(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	reqs := []Request{
		{Arrival: 10 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1},
		{Arrival: 20 * sim.Microsecond, Kind: stats.Write, LPN: 1, Pages: 1},
		{Arrival: 30 * sim.Microsecond, Kind: stats.Read, LPN: 2, Pages: 1},
	}
	times, err := h.ReplayTimed(reqs)
	if err != nil {
		t.Fatalf("replay rejected: %v", err)
	}
	for i, at := range times {
		if at != -1 {
			t.Fatalf("request %d completed (%v) before the engine ran", i, at)
		}
	}
	e.Run()
	for i, at := range times {
		if at < reqs[i].Arrival {
			t.Fatalf("request %d completed at %v before arrival %v", i, at, reqs[i].Arrival)
		}
	}
	if h.Metrics().TotalRequests() != 3 {
		t.Fatal("metrics missing requests")
	}
	bad := []Request{{Arrival: -1, Kind: stats.Read, LPN: 0, Pages: 1}}
	if _, err := h.ReplayTimed(bad); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestRunClosedLoopMaintainsOutstanding(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	maxSeen := 0
	gen := func(i int) Request {
		if h.InFlight() > maxSeen {
			maxSeen = h.InFlight()
		}
		return Request{Kind: stats.Read, LPN: int64(i % 64), Pages: 1}
	}
	h.RunClosedLoop(gen, 4, 40)
	e.Run()
	if h.Metrics().TotalRequests() != 40 {
		t.Fatalf("completed %d of 40", h.Metrics().TotalRequests())
	}
	if maxSeen > 4 {
		t.Fatalf("outstanding exceeded limit: %d", maxSeen)
	}
	if h.InFlight() != 0 {
		t.Fatal("requests leaked")
	}
}

func TestClosedLoopMoreOutstandingMoreThroughput(t *testing.T) {
	run := func(outstanding int) float64 {
		e, h := testHost(t)
		h.Warmup(256)
		h.RunClosedLoop(func(i int) Request {
			return Request{Kind: stats.Read, LPN: int64((i * 7) % 250), Pages: 1}
		}, outstanding, 100)
		e.Run()
		return h.Metrics().KIOPS()
	}
	k1 := run(1)
	k8 := run(8)
	if k8 <= k1 {
		t.Fatalf("no throughput gain from parallelism: 1->%.1f 8->%.1f KIOPS", k1, k8)
	}
}

func TestSubmitInvalidReturnsError(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(8)
	cases := []struct {
		name string
		req  Request
	}{
		{"zero pages", Request{Kind: stats.Read, LPN: 0, Pages: 0}},
		{"negative pages", Request{Kind: stats.Read, LPN: 0, Pages: -3}},
		{"unknown kind", Request{Kind: stats.IOKind(7), LPN: 0, Pages: 1}},
		{"future arrival", Request{Arrival: 5 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1}},
	}
	for _, tc := range cases {
		if err := h.Submit(tc.req, nil); err == nil {
			t.Errorf("%s: Submit accepted invalid request %+v", tc.name, tc.req)
		}
	}
	// Rejections must not schedule anything or count as in flight.
	if h.InFlight() != 0 {
		t.Fatalf("rejected requests left %d in flight", h.InFlight())
	}
	if n := e.Run(); n != 0 {
		t.Fatalf("rejected requests scheduled events (drained at %v)", n)
	}
	if h.Metrics().TotalRequests() != 0 {
		t.Fatal("rejected requests recorded metrics")
	}
}

func TestReplayRejectsMalformedTrace(t *testing.T) {
	good := Request{Arrival: 10 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1}
	cases := []struct {
		name string
		reqs []Request
	}{
		{"zero pages", []Request{good, {Arrival: 20 * sim.Microsecond, Kind: stats.Read, Pages: 0}}},
		{"unknown kind", []Request{good, {Arrival: 20 * sim.Microsecond, Kind: stats.IOKind(9), Pages: 1}}},
		{"arrival in the past", []Request{{Arrival: -1, Kind: stats.Read, Pages: 1}}},
	}
	for _, tc := range cases {
		e, h := testHost(t)
		h.Warmup(64)
		if _, err := h.Replay(tc.reqs); err == nil {
			t.Errorf("%s: Replay accepted malformed trace", tc.name)
		}
		// A rejected trace must schedule nothing — not even its valid rows.
		if e.Pending() != 0 {
			t.Errorf("%s: rejected replay left %d events scheduled", tc.name, e.Pending())
		}
	}
}

func TestReplayPastArrivalAfterAdvance(t *testing.T) {
	e, h := testHost(t)
	h.Warmup(64)
	h.Submit(Request{Kind: stats.Read, LPN: 0, Pages: 1}, nil)
	e.Run() // clock is now past zero
	if _, err := h.Replay([]Request{{Arrival: 0, Kind: stats.Read, Pages: 1}}); err == nil {
		t.Fatal("Replay accepted an arrival earlier than the current clock")
	}
}

func TestMustReplayPanicsOnBadTrace(t *testing.T) {
	_, h := testHost(t)
	h.Warmup(64)
	defer func() {
		if recover() == nil {
			t.Fatal("MustReplay did not panic on a malformed trace")
		}
	}()
	h.MustReplay([]Request{{Kind: stats.Read, Pages: 0}})
}
