package host

import "fmt"

// QueueState is the arbiter's read-only view of one submission queue at
// a grant decision. Len counts queued commands, HeadPages is the size of
// the command at the head (the service cost a deficit arbiter charges),
// and Weight/Burst come from the queue's TenantConfig.
type QueueState struct {
	Len       int
	HeadPages int
	Weight    int
	Burst     int
}

// Arbiter picks which submission queue the front end serves next. Pick
// is called once per grant with one QueueState per queue, at least one
// of which is non-empty, and must return the index of a non-empty
// queue. Implementations are stateful (rotation pointers, deficit
// counters) and must be deterministic: the same call sequence yields
// the same grants. An arbiter instance belongs to exactly one Frontend.
type Arbiter interface {
	Name() string
	Pick(qs []QueueState) int
}

// Arbiter names accepted by NewArbiter and FrontendConfig.Arbiter.
const (
	ArbRR   = "rr"   // round-robin, one grant per non-empty queue
	ArbWRR  = "wrr"  // weighted round-robin, Weight consecutive grants
	ArbDWRR = "dwrr" // deficit-weighted round-robin, page-cost based
)

// ArbiterNames lists the built-in arbiters in documentation order.
func ArbiterNames() []string { return []string{ArbRR, ArbWRR, ArbDWRR} }

// NewArbiter builds a fresh arbiter by name; the empty name selects
// round-robin.
func NewArbiter(name string) (Arbiter, error) {
	switch name {
	case "", ArbRR:
		return &roundRobin{}, nil
	case ArbWRR:
		return &weightedRR{}, nil
	case ArbDWRR:
		return &deficitWRR{fresh: true}, nil
	default:
		return nil, fmt.Errorf("host: unknown arbiter %q (have %v)", name, ArbiterNames())
	}
}

// weightOf clamps a queue weight to at least 1 so a zero-valued config
// still makes progress.
func weightOf(q QueueState) int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// costOf is the service cost of a queue's head command in pages.
func costOf(q QueueState) int {
	if q.HeadPages <= 0 {
		return 1
	}
	return q.HeadPages
}

// roundRobin grants one command per non-empty queue in rotation: the
// classic NVMe round-robin arbitration. Every non-empty queue is served
// within len(qs) grants.
type roundRobin struct{ last int }

func (*roundRobin) Name() string { return ArbRR }

func (r *roundRobin) Pick(qs []QueueState) int {
	n := len(qs)
	for i := 1; i <= n; i++ {
		idx := (r.last + i) % n
		if qs[idx].Len > 0 {
			r.last = idx
			return idx
		}
	}
	panic("host: arbiter Pick called with all queues empty")
}

// weightedRR serves up to Weight consecutive commands from the current
// queue before rotating: NVMe weighted round-robin with integer
// weights. Under saturation each queue's command share is proportional
// to its weight, and every non-empty queue is served within
// sum(weights) grants.
type weightedRR struct {
	cur  int
	used int
}

func (*weightedRR) Name() string { return ArbWRR }

func (w *weightedRR) Pick(qs []QueueState) int {
	n := len(qs)
	for scanned := 0; scanned <= n; {
		q := qs[w.cur%n]
		if q.Len == 0 || w.used >= weightOf(q) {
			w.cur = (w.cur + 1) % n
			w.used = 0
			scanned++
			continue
		}
		w.used++
		return w.cur
	}
	panic("host: arbiter Pick called with all queues empty")
}

// DWRRQuantumPages is the deficit replenished per weight unit each time
// the deficit arbiter visits a queue. It is sized to the largest common
// request (16 pages = 256 KB at 16 KB pages) so a weight-1 queue serves
// a typical head command on its first visit.
const DWRRQuantumPages = 16

// deficitWRR is deficit-weighted round-robin: each visit replenishes a
// queue's deficit by Weight x DWRRQuantumPages and the queue is served
// while its deficit covers the head command's page cost, so service is
// weight-proportional in *pages* rather than commands — a queue sending
// large writes cannot crowd out one sending small reads of equal
// weight. Burst, when positive, caps consecutive grants to one queue
// regardless of remaining deficit, bounding the latency a bursty tenant
// can impose on its neighbours.
type deficitWRR struct {
	cur     int
	deficit []int
	streak  int
	fresh   bool // replenish pending for the current queue
}

func (*deficitWRR) Name() string { return ArbDWRR }

func (d *deficitWRR) advance(n int) {
	d.cur = (d.cur + 1) % n
	d.streak = 0
	d.fresh = true
}

func (d *deficitWRR) Pick(qs []QueueState) int {
	n := len(qs)
	for len(d.deficit) < n {
		d.deficit = append(d.deficit, 0)
	}
	any := false
	for _, q := range qs {
		if q.Len > 0 {
			any = true
			break
		}
	}
	if !any {
		panic("host: arbiter Pick called with all queues empty")
	}
	// An idle queue forfeits its deficit (standard DRR), so every
	// rotation either serves a command or strictly raises some non-empty
	// queue's deficit — the loop terminates within
	// ceil(maxCost/quantum) x n iterations.
	for {
		q := qs[d.cur]
		if q.Len == 0 {
			d.deficit[d.cur] = 0
			d.advance(n)
			continue
		}
		if d.fresh {
			d.deficit[d.cur] += weightOf(q) * DWRRQuantumPages
			d.fresh = false
		}
		if q.Burst > 0 && d.streak >= q.Burst {
			d.advance(n)
			continue
		}
		if cost := costOf(q); d.deficit[d.cur] >= cost {
			d.deficit[d.cur] -= cost
			d.streak++
			return d.cur
		}
		d.advance(n)
	}
}
