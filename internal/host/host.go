// Package host models the NVMe front end of the SSD and drives workloads
// against the FTL. It supports open-loop trace replay (requests arrive at
// trace timestamps) and closed-loop generators (a fixed number of
// outstanding I/Os, the x-axis of the paper's Figs 16-17), and records
// per-request latency into stats.IOMetrics.
package host

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Request is one host I/O at page granularity: Pages consecutive LPNs
// starting at LPN. Tenant selects the submission queue when the request
// goes through a multi-queue Frontend; the single-queue Host ignores it.
type Request struct {
	Arrival sim.Time
	Kind    stats.IOKind
	LPN     int64
	Pages   int
	Tenant  int
}

// DefaultCmdLatency is the fixed NVMe command processing overhead
// (submission queue doorbell, fetch, completion) per request.
const DefaultCmdLatency = 1 * sim.Microsecond

// Host is the front end bound to one FTL.
type Host struct {
	eng        *sim.Engine
	f          *ftl.FTL
	pageSize   int
	nvme       *sim.Resource
	nvmePsByte sim.Time
	cmdLatency sim.Time

	metrics  *stats.IOMetrics
	versions map[int64]int64
	inFlight int
	reqSeq   int64

	// trc records one async span per request lifecycle (arrival through
	// completion); nil (the default) disables tracing with no overhead.
	trc *trace.Recorder
	// tel attributes per-request latency to phases and feeds windowed
	// time series; nil (the default) disables telemetry with no
	// overhead, matching the tracer contract.
	tel *telemetry.Collector
}

// New builds a host. nvmeMBps is the host link bandwidth (Table II: PCIe
// 4.0 x4, provisioned at the total flash bus bandwidth).
func New(eng *sim.Engine, f *ftl.FTL, pageSize, nvmeMBps int) *Host {
	if nvmeMBps <= 0 {
		panic("host: non-positive NVMe bandwidth")
	}
	return &Host{
		eng:        eng,
		f:          f,
		pageSize:   pageSize,
		nvme:       sim.NewResource(eng, "nvme"),
		nvmePsByte: sim.Time(1_000_000 / nvmeMBps),
		cmdLatency: DefaultCmdLatency,
		metrics:    stats.NewIOMetrics(),
		versions:   make(map[int64]int64),
	}
}

// Metrics returns the recorder.
func (h *Host) Metrics() *stats.IOMetrics { return h.metrics }

// SetTracer attaches a trace recorder for request lifecycle spans; nil
// (the default) detaches.
func (h *Host) SetTracer(t *trace.Recorder) { h.trc = t }

// SetTelemetry attaches a telemetry collector for latency attribution
// and windowed host series; nil (the default) detaches.
func (h *Host) SetTelemetry(c *telemetry.Collector) { h.tel = c }

// SetObserver attaches a hold/queue observer to the NVMe link resource.
func (h *Host) SetObserver(o sim.ResourceObserver) { h.nvme.SetObserver(o) }

// AddObserver attaches an additional observer to the NVMe link resource
// (the invariant-checking hook), alongside any tracing observer.
func (h *Host) AddObserver(o sim.ResourceObserver) { h.nvme.AddObserver(o) }

// NvmeName returns the NVMe link resource's trace track name.
func (h *Host) NvmeName() string { return h.nvme.Name() }

// NvmeIdle reports whether the NVMe link is idle with no queued
// transfers — a drained-device invariant.
func (h *Host) NvmeIdle() bool { return !h.nvme.Busy() && h.nvme.QueueLen() == 0 }

// FTL returns the bound translation layer.
func (h *Host) FTL() *ftl.FTL { return h.f }

// InFlight returns requests submitted but not completed.
func (h *Host) InFlight() int { return h.inFlight }

// Warmup installs the whole footprint [0, lpns) instantly so reads always
// hit mapped pages and the device starts at realistic occupancy.
func (h *Host) Warmup(lpns int64) {
	for lpn := int64(0); lpn < lpns; lpn++ {
		h.f.Install(lpn, ftl.TokenFor(lpn, 0))
	}
}

func (h *Host) lpnsOf(r Request) []int64 {
	lpns := make([]int64, r.Pages)
	for i := range lpns {
		lpn := r.LPN + int64(i)
		if lpn >= h.f.NumLPNs() {
			lpn %= h.f.NumLPNs()
		}
		lpns[i] = lpn
	}
	return lpns
}

// Submit issues one request now (the request's Arrival field is used only
// for latency accounting and must not be in the future). done may be nil.
// A malformed request — non-positive page count, unknown kind, or an
// arrival still in the future — is rejected with an error before any
// event is scheduled, so replaying an untrusted trace cannot crash the
// simulation.
func (h *Host) Submit(r Request, done func()) error {
	if err := r.validate(h.eng.Now()); err != nil {
		return err
	}
	h.inFlight++
	lpns := h.lpnsOf(r)
	bytes := int64(r.Pages) * int64(h.pageSize)
	var span trace.SpanID
	if h.trc.Enabled() {
		h.reqSeq++
		span = h.trc.BeginSpan("req", r.Kind.String(),
			trace.KV{K: "seq", V: h.reqSeq},
			trace.KV{K: "lpn", V: r.LPN},
			trace.KV{K: "pages", V: r.Pages})
	}
	// Latency attribution: the marks below partition [arrival,
	// completion] along the request path — sq-wait to NVMe pickup,
	// command processing, link transfer, FTL stall, flash work — so
	// phase durations sum exactly to end-to-end latency.
	att := h.tel.StartRequest(r.Kind, r.Arrival)
	att.Mark(telemetry.PhaseQueue, h.eng.Now())
	finish := func() {
		h.inFlight--
		now := h.eng.Now()
		h.metrics.Record(r.Kind, r.Arrival, now, bytes)
		h.trc.EndSpan(span)
		if r.Kind == stats.Read {
			att.Mark(telemetry.PhaseXfer, now)
		} else {
			att.Mark(telemetry.PhaseFlash, now)
		}
		h.tel.FinishRequest(att, now, bytes)
		if done != nil {
			done()
		}
	}
	xfer := sim.Time(bytes) * h.nvmePsByte
	if r.Kind == stats.Read {
		h.eng.Schedule(h.cmdLatency, func() {
			att.Mark(telemetry.PhaseCmd, h.eng.Now())
			h.f.ReadTracked(lpns, att, func() {
				att.Mark(telemetry.PhaseFlash, h.eng.Now())
				h.nvme.UseLabeled("read-return", xfer, finish)
			})
		})
	} else {
		toks := make([]flash.Token, len(lpns))
		for i, lpn := range lpns {
			h.versions[lpn]++
			toks[i] = ftl.TokenFor(lpn, h.versions[lpn])
		}
		h.eng.Schedule(h.cmdLatency, func() {
			att.Mark(telemetry.PhaseCmd, h.eng.Now())
			h.nvme.UseLabeled("write-payload", xfer, func() {
				att.Mark(telemetry.PhaseXfer, h.eng.Now())
				h.f.WriteTracked(lpns, toks, att, finish)
			})
		})
	}
	return nil
}

// validate rejects a malformed request; now is the engine clock a
// future-arrival check compares against.
func (r Request) validate(now sim.Time) error {
	if r.Pages <= 0 {
		return fmt.Errorf("host: request with %d pages", r.Pages)
	}
	if r.Kind != stats.Read && r.Kind != stats.Write {
		return fmt.Errorf("host: unknown request kind %d", int(r.Kind))
	}
	if r.Arrival > now {
		return fmt.Errorf("host: submit at %v before arrival time %v", now, r.Arrival)
	}
	return nil
}

// Replay schedules every request of an open-loop trace at its arrival
// time; run the engine afterwards and read Metrics. It returns a counter
// that reports completions. The whole trace is validated up front — an
// arrival before the current simulation time, a non-positive page
// count, or an unknown kind rejects the trace with an error and
// schedules nothing, so a malformed trace file cannot crash a sweep.
func (h *Host) Replay(reqs []Request) (*int, error) {
	now := h.eng.Now()
	for i, r := range reqs {
		if r.Arrival < now {
			return nil, fmt.Errorf("host: request %d arrival %v is in the past (now %v)", i, r.Arrival, now)
		}
		if err := r.validate(r.Arrival); err != nil {
			return nil, fmt.Errorf("host: request %d: %w", i, err)
		}
	}
	completed := new(int)
	for _, r := range reqs {
		r := r
		h.eng.At(r.Arrival, func() {
			r.Arrival = h.eng.Now()
			h.mustSubmit(r, func() { *completed++ })
		})
	}
	return completed, nil
}

// ReplayTimed is Replay returning per-request completion times: entry i
// is when request i's completion fired, or -1 if it never completed by
// the time the engine drained. Array-level reassembly needs the
// per-request view — a stripe's host latency is the max over its shard
// completions — where the aggregate IOMetrics histogram is not enough.
func (h *Host) ReplayTimed(reqs []Request) ([]sim.Time, error) {
	now := h.eng.Now()
	for i, r := range reqs {
		if r.Arrival < now {
			return nil, fmt.Errorf("host: request %d arrival %v is in the past (now %v)", i, r.Arrival, now)
		}
		if err := r.validate(r.Arrival); err != nil {
			return nil, fmt.Errorf("host: request %d: %w", i, err)
		}
	}
	times := make([]sim.Time, len(reqs))
	for i := range times {
		times[i] = -1
	}
	for i, r := range reqs {
		i, r := i, r
		h.eng.At(r.Arrival, func() {
			r.Arrival = h.eng.Now()
			h.mustSubmit(r, func() { times[i] = h.eng.Now() })
		})
	}
	return times, nil
}

// MustReplayTimed is ReplayTimed for traces generated in-process,
// panicking on a validation failure.
func (h *Host) MustReplayTimed(reqs []Request) []sim.Time {
	times, err := h.ReplayTimed(reqs)
	if err != nil {
		panic(err)
	}
	return times
}

// MustReplay replays a trace the caller knows is well-formed (generated
// in-process, not loaded from disk), panicking on a validation failure —
// the convenience the experiment drivers use. Untrusted traces go
// through Replay and handle the error.
func (h *Host) MustReplay(reqs []Request) *int {
	completed, err := h.Replay(reqs)
	if err != nil {
		panic(err)
	}
	return completed
}

// mustSubmit issues a request already validated by the caller; a
// rejection here is a host-layer bug, not bad input.
func (h *Host) mustSubmit(r Request, done func()) {
	if err := h.Submit(r, done); err != nil {
		panic(err)
	}
}

// RunClosedLoop keeps `outstanding` requests in flight until total
// requests have been issued, pulling each next request from gen. It
// schedules the first wave now; run the engine to completion afterwards.
func (h *Host) RunClosedLoop(gen func(i int) Request, outstanding, total int) {
	if outstanding <= 0 || total <= 0 {
		panic("host: invalid closed-loop parameters")
	}
	if outstanding > total {
		outstanding = total
	}
	issued := 0
	var issue func()
	issue = func() {
		if issued >= total {
			return
		}
		r := gen(issued)
		issued++
		r.Arrival = h.eng.Now()
		h.mustSubmit(r, issue)
	}
	for i := 0; i < outstanding; i++ {
		h.eng.Schedule(0, issue)
	}
}
