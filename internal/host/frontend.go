package host

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TenantConfig describes one tenant's NVMe submission/completion queue
// pair: its arbitration weight, an optional burst cap on consecutive
// grants (deficit arbiter only), and optional per-kind latency targets
// the per-tenant SLO accounting judges completions against.
type TenantConfig struct {
	Name   string
	Weight int         // arbitration weight; <=0 means 1
	Burst  int         // max consecutive grants under dwrr; 0 = unlimited
	SLO    [2]sim.Time // per stats.IOKind latency target; 0 disables
}

// FrontendConfig parameterizes the multi-queue front end.
type FrontendConfig struct {
	// Tenants declares one queue pair per tenant, in tenant-ID order.
	Tenants []TenantConfig
	// Arbiter names the grant policy: "rr" (default), "wrr", "dwrr".
	Arbiter string
	// MaxInflight caps the commands dispatched into the device across
	// all queues; 0 means unlimited (every command dispatches at
	// enqueue, so arbitration never delays anything — the single-tenant
	// equivalence configuration).
	MaxInflight int
}

// Validate rejects a malformed configuration.
func (c FrontendConfig) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("host: frontend with no tenants")
	}
	if _, err := NewArbiter(c.Arbiter); err != nil {
		return err
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("host: negative MaxInflight %d", c.MaxInflight)
	}
	for i, t := range c.Tenants {
		if t.Weight < 0 || t.Burst < 0 {
			return fmt.Errorf("host: tenant %d (%s): negative weight or burst", i, t.Name)
		}
	}
	return nil
}

// FrontendObserver receives queue-pair lifecycle callbacks — the hook
// the invariant checker uses for per-queue depth accounting, the
// arbiter fairness bound, and per-tenant conservation. Depths are
// reported after the transition.
type FrontendObserver interface {
	// TenantQueued fires after a command lands in a submission queue.
	TenantQueued(tenant, depth int)
	// TenantGranted fires after the arbiter dispatches a queue's head.
	TenantGranted(tenant, depth int)
	// TenantDone fires when a dispatched command completes.
	TenantDone(tenant int)
}

// pending is one queued command.
type pending struct {
	req  Request
	done func()
}

// tenantQueue is one submission queue pair. fifo[head:] are the queued
// commands; head advances on dispatch and the slice is compacted when
// drained so replays don't pin the whole trace in memory.
type tenantQueue struct {
	cfg  TenantConfig
	fifo []pending
	head int
}

func (q *tenantQueue) len() int { return len(q.fifo) - q.head }

func (q *tenantQueue) push(p pending) { q.fifo = append(q.fifo, p) }

func (q *tenantQueue) pop() pending {
	p := q.fifo[q.head]
	q.fifo[q.head] = pending{}
	q.head++
	if q.head == len(q.fifo) {
		q.fifo = q.fifo[:0]
		q.head = 0
	}
	return p
}

// Frontend is the multi-tenant NVMe front end: N submission/completion
// queue pairs ahead of one Host, with a pluggable arbiter deciding
// which queue's head command dispatches whenever an inflight slot is
// free. Per-tenant latency, throughput, and SLO-violation metrics are
// recorded at completion. All methods run on the simulation's single
// goroutine; dispatch happens synchronously inside enqueue and
// completion events, so a Frontend adds no engine events of its own —
// with MaxInflight 0 and one tenant, a run is event-for-event identical
// to driving the Host directly.
type Frontend struct {
	h        *Host
	eng      *sim.Engine
	arb      Arbiter
	max      int
	queues   []*tenantQueue
	views    []QueueState // reused arbiter view, one per queue
	inflight int
	grants   []int64
	tm       *stats.TenantSet

	obs    FrontendObserver
	trc    *trace.Recorder
	tracks []*trace.Track
	// tel records per-tenant submission-queue depth series; nil (the
	// default) disables telemetry with no overhead.
	tel *telemetry.Collector
}

// NewFrontend builds a front end over a Host from a validated
// configuration.
func NewFrontend(h *Host, cfg FrontendConfig) (*Frontend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arb, err := NewArbiter(cfg.Arbiter)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cfg.Tenants))
	queues := make([]*tenantQueue, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		if t.Name == "" {
			t.Name = fmt.Sprintf("tenant%d", i)
		}
		names[i] = t.Name
		queues[i] = &tenantQueue{cfg: t}
	}
	fe := &Frontend{
		h:      h,
		eng:    h.eng,
		arb:    arb,
		max:    cfg.MaxInflight,
		queues: queues,
		views:  make([]QueueState, len(queues)),
		grants: make([]int64, len(queues)),
		tm:     stats.NewTenantSet(names),
	}
	for i, t := range cfg.Tenants {
		fe.tm.SetSLO(i, stats.Read, t.SLO[stats.Read])
		fe.tm.SetSLO(i, stats.Write, t.SLO[stats.Write])
	}
	return fe, nil
}

// Host returns the wrapped single-queue host.
func (fe *Frontend) Host() *Host { return fe.h }

// Metrics returns the per-tenant metrics set.
func (fe *Frontend) Metrics() *stats.TenantSet { return fe.tm }

// NumTenants returns the queue-pair count.
func (fe *Frontend) NumTenants() int { return len(fe.queues) }

// TenantName returns the queue's display name.
func (fe *Frontend) TenantName(tenant int) string { return fe.queues[tenant].cfg.Name }

// ArbiterName returns the active grant policy's name.
func (fe *Frontend) ArbiterName() string { return fe.arb.Name() }

// QueueLen returns the commands waiting in one submission queue.
func (fe *Frontend) QueueLen(tenant int) int { return fe.queues[tenant].len() }

// Inflight returns commands dispatched but not completed.
func (fe *Frontend) Inflight() int { return fe.inflight }

// Grants returns the dispatch count per tenant, the arbiter's service
// ledger.
func (fe *Frontend) Grants(tenant int) int64 { return fe.grants[tenant] }

// Drained reports whether every queue is empty with nothing inflight —
// the front end's end-of-run invariant.
func (fe *Frontend) Drained() bool {
	if fe.inflight != 0 {
		return false
	}
	for _, q := range fe.queues {
		if q.len() != 0 {
			return false
		}
	}
	return true
}

// SetObserver attaches the queue lifecycle observer (nil detaches).
func (fe *Frontend) SetObserver(o FrontendObserver) { fe.obs = o }

// SetTelemetry attaches a telemetry collector and registers the tenant
// names with it (in queue order); nil detaches. The host's collector
// is attached separately by the device wiring.
func (fe *Frontend) SetTelemetry(c *telemetry.Collector) {
	fe.tel = c
	if c.Enabled() {
		names := make([]string, len(fe.queues))
		for i, q := range fe.queues {
			names[i] = q.cfg.Name
		}
		c.RegisterTenants(names)
	}
}

// SetTracer attaches a trace recorder and registers one track per
// tenant; request lifecycle spans (enqueue through completion, so they
// include queueing delay) land on the tenant's own track.
func (fe *Frontend) SetTracer(rec *trace.Recorder) {
	fe.trc = rec
	fe.tracks = nil
	if !rec.Enabled() {
		return
	}
	fe.tracks = make([]*trace.Track, len(fe.queues))
	for i, q := range fe.queues {
		fe.tracks[i] = rec.RegisterTrack("tenant "+q.cfg.Name, trace.KindTenant)
	}
}

// StarvationBound returns a conservative bound on how many grants other
// queues can receive while one non-empty queue waits: the invariant the
// checker's tenant-starvation rule enforces. All built-in arbiters
// rotate, so the bound is rotations x per-rotation grants; the deficit
// arbiter needs up to maxCost/quantum rotations to accumulate a large
// head command's cost.
func (fe *Frontend) StarvationBound() int {
	totalWeight := 0
	for _, q := range fe.queues {
		totalWeight += weightOf(QueueState{Weight: q.cfg.Weight})
	}
	// Per rotation, wrr grants up to totalWeight commands and dwrr up to
	// totalWeight x quantum pages of cost-1 commands; a starved head
	// command of up to 4 quanta needs 4 rotations. 16x margin keeps the
	// rule a safety net against real starvation (which is unbounded),
	// not a tight schedule assertion.
	return 16 * 4 * totalWeight * DWRRQuantumPages
}

// Enqueue places one command on a tenant's submission queue and pumps
// the dispatcher. The request is validated here (tenant range, pages,
// kind, arrival not in the future), so dispatch cannot fail later. done
// may be nil; it runs at completion after metrics are recorded.
func (fe *Frontend) Enqueue(tenant int, r Request, done func()) error {
	if tenant < 0 || tenant >= len(fe.queues) {
		return fmt.Errorf("host: tenant %d outside [0,%d)", tenant, len(fe.queues))
	}
	if err := r.validate(fe.eng.Now()); err != nil {
		return err
	}
	r.Tenant = tenant
	q := fe.queues[tenant]
	q.push(pending{req: r, done: done})
	if fe.obs != nil {
		fe.obs.TenantQueued(tenant, q.len())
	}
	fe.tel.TenantDepth(q.cfg.Name, q.len(), fe.eng.Now())
	fe.pump()
	return nil
}

// Replay schedules every request of a merged multi-tenant open-loop
// trace at its arrival time, routing each to the queue its Tenant field
// names. Validation is up front, like Host.Replay: a bad trace rejects
// before anything is scheduled.
func (fe *Frontend) Replay(reqs []Request) (*int, error) {
	now := fe.eng.Now()
	for i, r := range reqs {
		if r.Tenant < 0 || r.Tenant >= len(fe.queues) {
			return nil, fmt.Errorf("host: request %d tenant %d outside [0,%d)", i, r.Tenant, len(fe.queues))
		}
		if r.Arrival < now {
			return nil, fmt.Errorf("host: request %d arrival %v is in the past (now %v)", i, r.Arrival, now)
		}
		if err := r.validate(r.Arrival); err != nil {
			return nil, fmt.Errorf("host: request %d: %w", i, err)
		}
	}
	completed := new(int)
	for _, r := range reqs {
		r := r
		fe.eng.At(r.Arrival, func() {
			r.Arrival = fe.eng.Now()
			if err := fe.Enqueue(r.Tenant, r, func() { *completed++ }); err != nil {
				panic(err) // validated above; a rejection here is a bug
			}
		})
	}
	return completed, nil
}

// anyQueued reports whether any submission queue holds a command.
func (fe *Frontend) anyQueued() bool {
	for _, q := range fe.queues {
		if q.len() > 0 {
			return true
		}
	}
	return false
}

// pump dispatches queued commands while inflight slots are free,
// consulting the arbiter once per grant. It runs synchronously inside
// enqueue and completion callbacks and never schedules events itself.
func (fe *Frontend) pump() {
	for (fe.max == 0 || fe.inflight < fe.max) && fe.anyQueued() {
		for i, q := range fe.queues {
			v := QueueState{Len: q.len(), Weight: q.cfg.Weight, Burst: q.cfg.Burst}
			if v.Len > 0 {
				v.HeadPages = q.fifo[q.head].req.Pages
			}
			fe.views[i] = v
		}
		pick := fe.arb.Pick(fe.views)
		q := fe.queues[pick]
		p := q.pop()
		fe.inflight++
		fe.grants[pick]++
		if fe.obs != nil {
			fe.obs.TenantGranted(pick, q.len())
		}
		fe.tel.TenantDepth(q.cfg.Name, q.len(), fe.eng.Now())
		fe.dispatch(pick, p)
	}
}

// dispatch hands one command to the host and hooks completion:
// per-tenant metrics, tracing, observer, the caller's done, then
// another pump for the freed slot.
func (fe *Frontend) dispatch(tenant int, p pending) {
	var span trace.SpanID
	if fe.trc.Enabled() {
		span = fe.trc.BeginSpanOn(fe.tracks[tenant], "tenant-req", p.req.Kind.String(),
			trace.KV{K: "lpn", V: p.req.LPN},
			trace.KV{K: "pages", V: p.req.Pages})
	}
	req := p.req
	bytes := int64(req.Pages) * int64(fe.h.pageSize)
	err := fe.h.Submit(req, func() {
		fe.inflight--
		fe.tm.Record(tenant, req.Kind, req.Arrival, fe.eng.Now(), bytes)
		fe.trc.EndSpan(span)
		if fe.obs != nil {
			fe.obs.TenantDone(tenant)
		}
		if p.done != nil {
			p.done()
		}
		fe.pump()
	})
	if err != nil {
		panic(err) // requests are validated at Enqueue; see Request.validate
	}
}

// RunClosedLoop keeps `outstanding` of one tenant's commands in flight
// (queued or dispatched) until total have been issued, pulling each
// next request from gen — the per-tenant analogue of Host.RunClosedLoop
// for saturation studies where the arbiter, not the workload's arrival
// process, decides service order.
func (fe *Frontend) RunClosedLoop(tenant int, gen func(i int) Request, outstanding, total int) error {
	if tenant < 0 || tenant >= len(fe.queues) {
		return fmt.Errorf("host: tenant %d outside [0,%d)", tenant, len(fe.queues))
	}
	if outstanding <= 0 || total <= 0 {
		return fmt.Errorf("host: invalid closed-loop parameters (%d outstanding, %d total)", outstanding, total)
	}
	if outstanding > total {
		outstanding = total
	}
	issued := 0
	var issue func()
	issue = func() {
		if issued >= total {
			return
		}
		r := gen(issued)
		issued++
		r.Arrival = fe.eng.Now()
		if err := fe.Enqueue(tenant, r, issue); err != nil {
			panic(err) // generator produced an invalid request
		}
	}
	for i := 0; i < outstanding; i++ {
		fe.eng.Schedule(0, issue)
	}
	return nil
}
