package host

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func testFrontend(t *testing.T, cfg FrontendConfig) (*sim.Engine, *Frontend) {
	t.Helper()
	e, h := testHost(t)
	h.Warmup(256)
	fe, err := NewFrontend(h, cfg)
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	return e, fe
}

func twoTenants() FrontendConfig {
	return FrontendConfig{
		Tenants: []TenantConfig{
			{Name: "a", Weight: 2},
			{Name: "b", Weight: 1},
		},
		Arbiter:     ArbRR,
		MaxInflight: 2,
	}
}

func TestFrontendConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  FrontendConfig
	}{
		{"no tenants", FrontendConfig{Arbiter: ArbRR}},
		{"bad arbiter", FrontendConfig{Tenants: []TenantConfig{{}}, Arbiter: "lifo"}},
		{"negative inflight", FrontendConfig{Tenants: []TenantConfig{{}}, MaxInflight: -1}},
		{"negative weight", FrontendConfig{Tenants: []TenantConfig{{Weight: -2}}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
		}
	}
	if err := twoTenants().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestFrontendEnqueueValidation(t *testing.T) {
	e, fe := testFrontend(t, twoTenants())
	if err := fe.Enqueue(2, Request{Kind: stats.Read, Pages: 1}, nil); err == nil {
		t.Error("out-of-range tenant accepted")
	}
	if err := fe.Enqueue(-1, Request{Kind: stats.Read, Pages: 1}, nil); err == nil {
		t.Error("negative tenant accepted")
	}
	if err := fe.Enqueue(0, Request{Kind: stats.Read, Pages: 0}, nil); err == nil {
		t.Error("zero-page request accepted")
	}
	if err := fe.Enqueue(0, Request{Arrival: sim.Microsecond, Kind: stats.Read, Pages: 1}, nil); err == nil {
		t.Error("future arrival accepted")
	}
	if !fe.Drained() {
		t.Fatal("rejected enqueues left state behind")
	}
	e.Run()
}

func TestFrontendCompletesAndRecordsPerTenant(t *testing.T) {
	e, fe := testFrontend(t, twoTenants())
	done := make([]int, 2)
	for i := 0; i < 10; i++ {
		tenant := i % 2
		if err := fe.Enqueue(tenant, Request{Kind: stats.Read, LPN: int64(i * 4), Pages: 1}, func() { done[tenant]++ }); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	e.Run()
	if done[0] != 5 || done[1] != 5 {
		t.Fatalf("completions = %v, want [5 5]", done)
	}
	tm := fe.Metrics()
	for i := 0; i < 2; i++ {
		if got := tm.Tenants[i].TotalRequests(); got != 5 {
			t.Fatalf("tenant %d metrics recorded %d requests", i, got)
		}
	}
	if !fe.Drained() {
		t.Fatal("front end not drained after run")
	}
	if fe.Grants(0)+fe.Grants(1) != 10 {
		t.Fatalf("grants = %d + %d, want 10", fe.Grants(0), fe.Grants(1))
	}
}

func TestFrontendRespectsMaxInflight(t *testing.T) {
	cfg := twoTenants()
	cfg.MaxInflight = 3
	e, fe := testFrontend(t, cfg)
	maxSeen := 0
	obs := observerFunc{granted: func(_, _ int) {
		if fe.Inflight() > maxSeen {
			maxSeen = fe.Inflight()
		}
	}}
	fe.SetObserver(obs)
	for i := 0; i < 20; i++ {
		fe.Enqueue(i%2, Request{Kind: stats.Read, LPN: int64(i * 2), Pages: 1}, nil)
	}
	e.Run()
	if maxSeen > 3 {
		t.Fatalf("inflight reached %d with cap 3", maxSeen)
	}
	if !fe.Drained() {
		t.Fatal("not drained")
	}
}

// observerFunc adapts closures to FrontendObserver for tests.
type observerFunc struct {
	queued  func(tenant, depth int)
	granted func(tenant, depth int)
	done    func(tenant int)
}

func (o observerFunc) TenantQueued(tenant, depth int) {
	if o.queued != nil {
		o.queued(tenant, depth)
	}
}
func (o observerFunc) TenantGranted(tenant, depth int) {
	if o.granted != nil {
		o.granted(tenant, depth)
	}
}
func (o observerFunc) TenantDone(tenant int) {
	if o.done != nil {
		o.done(tenant)
	}
}

func TestFrontendObserverSequence(t *testing.T) {
	cfg := twoTenants()
	cfg.MaxInflight = 1
	e, fe := testFrontend(t, cfg)
	var queued, granted, completed int
	fe.SetObserver(observerFunc{
		queued:  func(_, _ int) { queued++ },
		granted: func(_, _ int) { granted++ },
		done:    func(_ int) { completed++ },
	})
	for i := 0; i < 6; i++ {
		fe.Enqueue(i%2, Request{Kind: stats.Write, LPN: int64(i), Pages: 1}, nil)
	}
	e.Run()
	if queued != 6 || granted != 6 || completed != 6 {
		t.Fatalf("observer saw queued=%d granted=%d done=%d, want 6 each", queued, granted, completed)
	}
}

func TestFrontendSLOAccounting(t *testing.T) {
	cfg := twoTenants()
	// An SLO far below any physically possible latency: every read
	// violates; an SLO far above: none do.
	cfg.Tenants[0].SLO[stats.Read] = 1 // 1 ps
	cfg.Tenants[1].SLO[stats.Read] = sim.Second
	e, fe := testFrontend(t, cfg)
	for i := 0; i < 4; i++ {
		fe.Enqueue(i%2, Request{Kind: stats.Read, LPN: int64(i), Pages: 1}, nil)
	}
	e.Run()
	tm := fe.Metrics()
	if v := tm.Tenants[0].SLOViolations(); v != 2 {
		t.Fatalf("tenant a: %d violations, want 2", v)
	}
	if v := tm.Tenants[1].SLOViolations(); v != 0 {
		t.Fatalf("tenant b: %d violations, want 0", v)
	}
}

func TestFrontendReplayRoutesByTenant(t *testing.T) {
	e, fe := testFrontend(t, twoTenants())
	reqs := []Request{
		{Arrival: 10 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1, Tenant: 0},
		{Arrival: 20 * sim.Microsecond, Kind: stats.Write, LPN: 4, Pages: 1, Tenant: 1},
		{Arrival: 30 * sim.Microsecond, Kind: stats.Read, LPN: 8, Pages: 1, Tenant: 1},
	}
	completed, err := fe.Replay(reqs)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	e.Run()
	if *completed != 3 {
		t.Fatalf("completed %d of 3", *completed)
	}
	if fe.Grants(0) != 1 || fe.Grants(1) != 2 {
		t.Fatalf("grants = [%d %d], want [1 2]", fe.Grants(0), fe.Grants(1))
	}
	// Latency is measured from arrival.
	if got := fe.Metrics().Tenants[0].FirstArrival; got != 10*sim.Microsecond {
		t.Fatalf("tenant a first arrival = %v", got)
	}
}

func TestFrontendReplayRejectsBadTrace(t *testing.T) {
	cases := []struct {
		name string
		reqs []Request
	}{
		{"bad tenant", []Request{{Arrival: 1, Kind: stats.Read, Pages: 1, Tenant: 5}}},
		{"negative tenant", []Request{{Arrival: 1, Kind: stats.Read, Pages: 1, Tenant: -1}}},
		{"zero pages", []Request{{Arrival: 1, Kind: stats.Read, Pages: 0}}},
		{"past arrival", []Request{{Arrival: -1, Kind: stats.Read, Pages: 1}}},
	}
	for _, tc := range cases {
		e, fe := testFrontend(t, twoTenants())
		if _, err := fe.Replay(tc.reqs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if e.Pending() != 0 {
			t.Errorf("%s: rejected replay scheduled events", tc.name)
		}
	}
}

func TestFrontendClosedLoop(t *testing.T) {
	cfg := twoTenants()
	cfg.MaxInflight = 4
	e, fe := testFrontend(t, cfg)
	if err := fe.RunClosedLoop(0, func(i int) Request {
		return Request{Kind: stats.Read, LPN: int64((i * 3) % 250), Pages: 1}
	}, 4, 30); err != nil {
		t.Fatalf("closed loop: %v", err)
	}
	e.Run()
	if got := fe.Metrics().Tenants[0].TotalRequests(); got != 30 {
		t.Fatalf("completed %d of 30", got)
	}
	if err := fe.RunClosedLoop(9, nil, 1, 1); err == nil {
		t.Error("bad tenant accepted")
	}
	if err := fe.RunClosedLoop(0, nil, 0, 1); err == nil {
		t.Error("zero outstanding accepted")
	}
}

// TestFrontendUnlimitedInflightIsTransparent: with MaxInflight 0 every
// command dispatches at enqueue, so the wrapped host sees the same
// submission sequence as direct Host.Replay — the single-tenant
// equivalence property (asserted device-wide in internal/ssd).
func TestFrontendUnlimitedInflightIsTransparent(t *testing.T) {
	reqs := []Request{
		{Arrival: 10 * sim.Microsecond, Kind: stats.Read, LPN: 0, Pages: 1},
		{Arrival: 12 * sim.Microsecond, Kind: stats.Write, LPN: 8, Pages: 2},
		{Arrival: 15 * sim.Microsecond, Kind: stats.Read, LPN: 16, Pages: 1},
	}

	eDirect, hDirect := testHost(t)
	hDirect.Warmup(256)
	hDirect.MustReplay(reqs)
	eDirect.Run()

	eFe, fe := testFrontend(t, FrontendConfig{Tenants: []TenantConfig{{Name: "only"}}})
	if _, err := fe.Replay(reqs); err != nil {
		t.Fatalf("frontend replay: %v", err)
	}
	eFe.Run()

	if a, b := eDirect.EventsFired(), eFe.EventsFired(); a != b {
		t.Fatalf("event counts diverge: direct %d, frontend %d", a, b)
	}
	if a, b := hDirect.Metrics().MeanLatency(), fe.Host().Metrics().MeanLatency(); a != b {
		t.Fatalf("latency diverges: direct %v, frontend %v", a, b)
	}
}
