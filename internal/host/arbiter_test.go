package host

import (
	"fmt"
	"testing"
)

// saturate builds n queue views that never empty: every queue always
// has a head command of the given page cost.
func saturate(weights, bursts, costs []int) []QueueState {
	qs := make([]QueueState, len(weights))
	for i := range qs {
		qs[i] = QueueState{Len: 1 << 20, HeadPages: costs[i], Weight: weights[i], Burst: bursts[i]}
	}
	return qs
}

// serviceShares runs the arbiter for `grants` picks against saturated
// queues and returns commands granted and pages served per queue.
func serviceShares(a Arbiter, qs []QueueState, grants int) (cmds, pages []int) {
	cmds = make([]int, len(qs))
	pages = make([]int, len(qs))
	for g := 0; g < grants; g++ {
		i := a.Pick(qs)
		cmds[i]++
		pages[i] += costOf(qs[i])
	}
	return cmds, pages
}

func TestNewArbiter(t *testing.T) {
	for _, name := range append(ArbiterNames(), "") {
		a, err := NewArbiter(name)
		if err != nil {
			t.Fatalf("NewArbiter(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = ArbRR
		}
		if a.Name() != want {
			t.Fatalf("NewArbiter(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := NewArbiter("priority"); err == nil {
		t.Fatal("NewArbiter accepted an unknown name")
	}
}

// TestArbiterServesOnlyNonEmpty: every arbiter must skip empty queues
// and always return a queue with work, from any starting rotation.
func TestArbiterServesOnlyNonEmpty(t *testing.T) {
	for _, name := range ArbiterNames() {
		t.Run(name, func(t *testing.T) {
			a, _ := NewArbiter(name)
			qs := []QueueState{
				{Len: 0},
				{Len: 3, HeadPages: 2, Weight: 2},
				{Len: 0},
				{Len: 1, HeadPages: 4, Weight: 1},
			}
			for g := 0; g < 50; g++ {
				i := a.Pick(qs)
				if qs[i].Len == 0 {
					t.Fatalf("grant %d: picked empty queue %d", g, i)
				}
			}
		})
	}
}

// TestArbiterStarvationFreedom: under full saturation, every queue must
// be served within its arbiter's rotation bound — rr within n grants,
// wrr within sum(weights), dwrr within enough rotations to accumulate
// the head command's cost.
func TestArbiterStarvationFreedom(t *testing.T) {
	weights := []int{1, 4, 2, 8}
	costs := []int{4, 1, 16, 2}
	bursts := []int{0, 0, 0, 0}
	n := len(weights)
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	cases := []struct {
		arb   string
		bound int // max grants elsewhere while a queue waits
	}{
		{ArbRR, n},
		{ArbWRR, sumW},
		// dwrr: a rotation serves at most sum(weight)*quantum/minCost
		// commands, and the 16-page head needs one quantum accumulation.
		{ArbDWRR, sumW * DWRRQuantumPages},
	}
	for _, tc := range cases {
		t.Run(tc.arb, func(t *testing.T) {
			a, _ := NewArbiter(tc.arb)
			qs := saturate(weights, bursts, costs)
			wait := make([]int, n)
			for g := 0; g < 5000; g++ {
				i := a.Pick(qs)
				for j := range wait {
					if j == i {
						wait[j] = 0
					} else {
						wait[j]++
						if wait[j] > tc.bound {
							t.Fatalf("queue %d waited %d grants (bound %d)", j, wait[j], tc.bound)
						}
					}
				}
			}
		})
	}
}

// TestWRRWeightProportionalCommands: under saturation, wrr's command
// share must match the weights exactly (each rotation serves exactly
// weight commands per queue).
func TestWRRWeightProportionalCommands(t *testing.T) {
	weights := []int{1, 3, 6}
	a, _ := NewArbiter(ArbWRR)
	qs := saturate(weights, []int{0, 0, 0}, []int{1, 1, 1})
	rotations := 100
	cmds, _ := serviceShares(a, qs, rotations*(1+3+6))
	for i, w := range weights {
		if cmds[i] != rotations*w {
			t.Fatalf("queue %d (weight %d): %d grants, want %d", i, w, cmds[i], rotations*w)
		}
	}
}

// TestDWRRWeightProportionalPages: dwrr's page share must track weights
// even when queues send different request sizes — the property that
// distinguishes it from wrr, whose command-count fairness lets a
// large-request tenant take a proportionally larger page share.
func TestDWRRWeightProportionalPages(t *testing.T) {
	weights := []int{1, 1, 2}
	costs := []int{8, 1, 4} // queue 0 sends big requests, queue 1 small
	a, _ := NewArbiter(ArbDWRR)
	qs := saturate(weights, []int{0, 0, 0}, costs)
	_, pages := serviceShares(a, qs, 20000)
	// Equal weights -> equal pages despite 8x request-size difference.
	ratio := float64(pages[0]) / float64(pages[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("equal-weight queues served %d vs %d pages (ratio %.2f)", pages[0], pages[1], ratio)
	}
	// Double weight -> double pages.
	ratio = float64(pages[2]) / float64(pages[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weight-2 queue served %d pages vs weight-1's %d (ratio %.2f, want ~2)", pages[2], pages[1], ratio)
	}
}

// TestDWRRBurstCap: with a burst cap, a queue with abundant deficit
// still yields after Burst consecutive grants.
func TestDWRRBurstCap(t *testing.T) {
	a, _ := NewArbiter(ArbDWRR)
	qs := saturate([]int{8, 1}, []int{2, 0}, []int{1, 1})
	streak, maxStreak, last := 0, 0, -1
	for g := 0; g < 2000; g++ {
		i := a.Pick(qs)
		if i == last {
			streak++
		} else {
			streak = 1
			last = i
		}
		if i == 0 && streak > maxStreak {
			maxStreak = streak
		}
	}
	if maxStreak > 2 {
		t.Fatalf("burst-capped queue got %d consecutive grants (cap 2)", maxStreak)
	}
}

// TestWRRZeroWeightStillServed: weight 0 clamps to 1 rather than
// starving the queue.
func TestWRRZeroWeightStillServed(t *testing.T) {
	for _, name := range []string{ArbWRR, ArbDWRR} {
		a, _ := NewArbiter(name)
		qs := saturate([]int{0, 5}, []int{0, 0}, []int{1, 1})
		cmds, _ := serviceShares(a, qs, 600)
		if cmds[0] == 0 {
			t.Fatalf("%s: zero-weight queue never served", name)
		}
	}
}

// TestArbiterDeterminism: the same pick sequence against the same
// queue states must yield identical grants — the property the
// parallel-run byte-identity of the experiments rests on.
func TestArbiterDeterminism(t *testing.T) {
	for _, name := range ArbiterNames() {
		run := func() string {
			a, _ := NewArbiter(name)
			qs := saturate([]int{1, 2, 3}, []int{0, 2, 0}, []int{3, 1, 5})
			s := ""
			for g := 0; g < 500; g++ {
				s += fmt.Sprint(a.Pick(qs))
			}
			return s
		}
		if run() != run() {
			t.Fatalf("%s: two identical runs diverged", name)
		}
	}
}

func TestArbiterPanicsOnAllEmpty(t *testing.T) {
	for _, name := range ArbiterNames() {
		t.Run(name, func(t *testing.T) {
			a, _ := NewArbiter(name)
			defer func() {
				if recover() == nil {
					t.Fatal("Pick with all queues empty did not panic")
				}
			}()
			a.Pick([]QueueState{{Len: 0}, {Len: 0}})
		})
	}
}
