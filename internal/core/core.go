package core
