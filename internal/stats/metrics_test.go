package stats

import (
	"testing"

	"repro/internal/sim"
)

func TestIOMetricsRecord(t *testing.T) {
	m := NewIOMetrics()
	m.Record(Read, 0, 10*sim.Microsecond, 4096)
	m.Record(Write, 5*sim.Microsecond, 55*sim.Microsecond, 8192)
	if m.TotalRequests() != 2 || m.Requests[Read] != 1 || m.Requests[Write] != 1 {
		t.Fatalf("request counts wrong: %+v", m.Requests)
	}
	if m.TotalBytes() != 12288 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	if m.Latency[Read].Mean() != 10*sim.Microsecond {
		t.Fatalf("read mean = %v", m.Latency[Read].Mean())
	}
	if m.Latency[Write].Mean() != 50*sim.Microsecond {
		t.Fatalf("write mean = %v", m.Latency[Write].Mean())
	}
	if m.Span() != 55*sim.Microsecond {
		t.Fatalf("Span = %v, want 55us", m.Span())
	}
}

func TestIOMetricsKIOPS(t *testing.T) {
	m := NewIOMetrics()
	// 1000 requests over 1ms => 1,000,000 IOPS => 1000 KIOPS.
	for i := 0; i < 1000; i++ {
		at := sim.Time(i) * sim.Microsecond
		m.Record(Read, at, at+sim.Microsecond, 4096)
	}
	span := m.Span() // 1000us
	if span != 1000*sim.Microsecond {
		t.Fatalf("span = %v", span)
	}
	got := m.KIOPS()
	if got < 999 || got > 1001 {
		t.Fatalf("KIOPS = %v, want ~1000", got)
	}
}

func TestIOMetricsBandwidth(t *testing.T) {
	m := NewIOMetrics()
	// 16 MB over 16 ms => 1000 MB/s.
	for i := 0; i < 1024; i++ {
		at := sim.Time(i) * 16 * sim.Microsecond
		m.Record(Write, at, at+16*sim.Microsecond, 16384)
	}
	got := m.BandwidthMBps()
	if got < 990 || got > 1030 {
		t.Fatalf("BandwidthMBps = %v, want ~1000", got)
	}
}

func TestIOMetricsCombined(t *testing.T) {
	m := NewIOMetrics()
	m.Record(Read, 0, 10, 1)
	m.Record(Write, 0, 30, 1)
	c := m.Combined()
	if c.Count() != 2 || c.Mean() != 20 {
		t.Fatalf("combined: count=%d mean=%v", c.Count(), c.Mean())
	}
}

func TestIOMetricsInvalidCompletion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("completion before arrival did not panic")
		}
	}()
	NewIOMetrics().Record(Read, 10, 5, 1)
}

func TestIOKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("IOKind strings wrong")
	}
}

func TestUtilMatrixRows(t *testing.T) {
	m := NewUtilMatrix(2, 10)
	m.Recorders[0].AddBusy(0, 10) // window 0 fully busy on ch0
	m.Recorders[1].AddBusy(10, 15)
	rows := m.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Fatal("rows not padded to equal width")
	}
	if rows[0][0] != 1.0 || rows[1][1] != 0.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestUtilMatrixImbalance(t *testing.T) {
	balanced := NewUtilMatrix(4, 10)
	for _, r := range balanced.Recorders {
		r.AddBusy(0, 10)
	}
	if got := balanced.ImbalanceIndex(); got != 1.0 {
		t.Fatalf("balanced imbalance = %v, want 1.0", got)
	}

	skewed := NewUtilMatrix(4, 10)
	skewed.Recorders[0].AddBusy(0, 10) // only one channel busy
	got := skewed.ImbalanceIndex()
	if got != 4.0 {
		t.Fatalf("skewed imbalance = %v, want 4.0 (max/mean with 1-of-4 busy)", got)
	}

	empty := NewUtilMatrix(4, 10)
	if got := empty.ImbalanceIndex(); got != 1.0 {
		t.Fatalf("empty imbalance = %v, want 1.0", got)
	}
}
