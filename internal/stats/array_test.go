package stats

import (
	"strings"
	"testing"
)

// TestArrayRASRowsCoverEveryCounter pins the canonical row order and
// checks every counter appears exactly once with its live value — the
// reports and determinism tests consume this form verbatim.
func TestArrayRASRowsCoverEveryCounter(t *testing.T) {
	r := NewArrayRAS()
	r.DeviceKills = 1
	r.TransientOutages = 2
	r.RouterRetries = 3
	r.RetryExhausted = 4
	r.DegradedReads = 5
	r.ReconstructionReads = 6
	r.SpareReads = 7
	r.FailedReads = 8
	r.RedirectedWrites = 9
	r.DeferredWrites = 10
	r.LostWrites = 11
	r.RebuildPages = 12
	r.RebuildReads = 13
	r.RebuildSkipped = 14
	r.DoubleAcks = 15

	rows := r.Rows()
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15 (one per counter)", len(rows))
	}
	wantOrder := []string{
		"device kills", "transient outages", "router retries",
		"retry budget exhausted", "degraded reads", "reconstruction reads",
		"spare reads", "failed reads", "redirected writes",
		"deferred writes", "lost writes", "rebuild pages",
		"rebuild reads", "rebuild skipped (fresh)", "double acks",
	}
	for i, row := range rows {
		if row[0] != wantOrder[i] {
			t.Fatalf("row %d label %q, want %q", i, row[0], wantOrder[i])
		}
		// Counters were seeded 1..15 in row order.
		if want := i + 1; row[1] != itoa(want) {
			t.Fatalf("row %q value %q, want %d", row[0], row[1], want)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestArrayRASStringDeterministic checks the one-line form: fixed
// order, every label present, stable across calls.
func TestArrayRASStringDeterministic(t *testing.T) {
	r := NewArrayRAS()
	r.DegradedReads = 42
	s1, s2 := r.String(), r.String()
	if s1 != s2 {
		t.Fatal("String is not stable")
	}
	if !strings.Contains(s1, "degraded reads=42") {
		t.Fatalf("String misses live counter: %q", s1)
	}
	if !strings.HasPrefix(s1, "device kills=0 ") {
		t.Fatalf("String order changed: %q", s1)
	}
	if got := strings.Count(s1, "="); got != 15 {
		t.Fatalf("%d fields in String, want 15", got)
	}
}
