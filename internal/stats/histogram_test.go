package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Add(10 * sim.Microsecond)
	h.Add(20 * sim.Microsecond)
	h.Add(30 * sim.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 20*sim.Microsecond {
		t.Fatalf("Mean = %v, want 20us", h.Mean())
	}
	if h.Min() != 10*sim.Microsecond || h.Max() != 30*sim.Microsecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	var samples []sim.Time
	for i := 0; i < 20000; i++ {
		// log-uniform from 1us to 10ms
		v := sim.Time(float64(sim.Microsecond) * pow10(rng.Float64()*4))
		samples = append(samples, v)
		h.Add(v)
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		exact := ExactPercentile(samples, p)
		got := h.Percentile(p)
		ratio := float64(got) / float64(exact)
		if ratio < 0.94 || ratio > 1.06 {
			t.Errorf("p%.1f: histogram=%v exact=%v ratio=%.3f", p, got, exact, ratio)
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear-ish interpolation is fine for test data generation
	return r * (1 + 9*x/1.0)
}

func TestHistogramExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(0)
	h.Add(5 * sim.Millisecond)
	if h.Percentile(0) != 0 {
		t.Fatalf("p0 = %v, want 0", h.Percentile(0))
	}
	if h.Percentile(100) != 5*sim.Millisecond {
		t.Fatalf("p100 = %v, want 5ms", h.Percentile(100))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sample did not panic")
		}
	}()
	NewLatencyHistogram().Add(-1)
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	a.Add(sim.Microsecond)
	b.Add(3 * sim.Microsecond)
	b.Add(5 * sim.Microsecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d, want 3", a.Count())
	}
	if a.Mean() != 3*sim.Microsecond {
		t.Fatalf("Mean = %v, want 3us", a.Mean())
	}
	if a.Min() != sim.Microsecond || a.Max() != 5*sim.Microsecond {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i) * sim.Microsecond)
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	last := pts[len(pts)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF does not reach 1: %v", last.Fraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		h := NewLatencyHistogram()
		for _, v := range raw {
			h.Add(sim.Time(v))
		}
		prev := sim.Time(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			if h.Count() > 0 && (v < h.Min() || v > h.Max()) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramPercentileEmpty pins the empty-histogram contract: every
// percentile query, including out-of-range p, returns 0 rather than the
// MaxInt64 sentinel the min field starts at.
func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	for _, p := range []float64{-5, 0, 50, 100, 200} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
}

// TestHistogramPercentileSingleSample: with one sample, every percentile
// is that sample exactly — bucketing must not distort it.
func TestHistogramPercentileSingleSample(t *testing.T) {
	v := 137 * sim.Microsecond
	h := NewLatencyHistogram()
	h.Add(v)
	for _, p := range []float64{-1, 0, 0.001, 50, 99.999, 100, 150} {
		if got := h.Percentile(p); got != v {
			t.Fatalf("single-sample Percentile(%v) = %v, want %v", p, got, v)
		}
	}
}

// TestHistogramPercentileBoundsExact: p<=0 must return the exact recorded
// minimum and p>=100 the exact maximum (not bucket bounds), including for
// out-of-range p.
func TestHistogramPercentileBoundsExact(t *testing.T) {
	h := NewLatencyHistogram()
	lo, hi := 999*sim.Nanosecond, 7777*sim.Microsecond
	h.Add(lo)
	h.Add(42 * sim.Microsecond)
	h.Add(hi)
	for _, p := range []float64{-10, 0} {
		if got := h.Percentile(p); got != lo {
			t.Fatalf("Percentile(%v) = %v, want exact min %v", p, got, lo)
		}
	}
	for _, p := range []float64{100, 250} {
		if got := h.Percentile(p); got != hi {
			t.Fatalf("Percentile(%v) = %v, want exact max %v", p, got, hi)
		}
	}
}

// TestHistogramAgreesWithExactOnRandomSample drives the same uniform
// random sample through the histogram and ExactPercentile and demands
// agreement within the histogram's documented relative error (~2.6% at 90
// buckets/decade; allow 6% for rank-rounding) across the full percentile
// range, exact at the endpoints.
func TestHistogramAgreesWithExactOnRandomSample(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(99))
	samples := make([]sim.Time, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := sim.Time(rng.Int63n(int64(10*sim.Millisecond))) + 1
		samples = append(samples, v)
		h.Add(v)
	}
	if got, want := h.Percentile(0), ExactPercentile(samples, 0); got != want {
		t.Fatalf("p0: histogram %v, exact %v", got, want)
	}
	if got, want := h.Percentile(100), ExactPercentile(samples, 100); got != want {
		t.Fatalf("p100: histogram %v, exact %v", got, want)
	}
	for _, p := range []float64{0.1, 1, 5, 25, 50, 75, 90, 99, 99.9} {
		exact := ExactPercentile(samples, p)
		got := h.Percentile(p)
		ratio := float64(got) / float64(exact)
		if ratio < 0.94 || ratio > 1.06 {
			t.Errorf("p%v: histogram=%v exact=%v ratio=%.3f", p, got, exact, ratio)
		}
	}
}

func TestExactPercentile(t *testing.T) {
	s := []sim.Time{50, 10, 40, 30, 20}
	if got := ExactPercentile(s, 50); got != 30 {
		t.Fatalf("p50 = %v, want 30", got)
	}
	if got := ExactPercentile(s, 0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := ExactPercentile(s, 100); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
	if got := ExactPercentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	// input must not be mutated
	if s[0] != 50 {
		t.Fatal("ExactPercentile mutated input")
	}
}
