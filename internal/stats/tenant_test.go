package stats

import (
	"testing"

	"repro/internal/sim"
)

const tus = sim.Microsecond

// TestTenantSetRecordAndSLO drives two tenants with distinct targets
// and checks metrics isolation and per-kind SLO accounting.
func TestTenantSetRecordAndSLO(t *testing.T) {
	s := NewTenantSet([]string{"reader", "writer"})
	if s.Len() != 2 {
		t.Fatalf("Len %d", s.Len())
	}
	s.SetSLO(0, Read, 10*tus) // reads over 10us violate
	// Writer has no targets: nothing it does can violate.

	s.Record(0, Read, 0, 5*tus, 4096)   // within SLO
	s.Record(0, Read, 0, 10*tus, 4096)  // exactly on target: not a miss
	s.Record(0, Read, 0, 11*tus, 4096)  // miss
	s.Record(0, Write, 0, 99*tus, 4096) // no write target: never a miss
	s.Record(1, Write, 0, 500*tus, 8192)

	reader, writer := s.Tenants[0], s.Tenants[1]
	if reader.Name != "reader" || writer.Name != "writer" {
		t.Fatalf("names %q %q", reader.Name, writer.Name)
	}
	if got := reader.SLOViolations(); got != 1 {
		t.Fatalf("reader SLO violations %d, want 1", got)
	}
	if got := writer.SLOViolations(); got != 0 {
		t.Fatalf("writer SLO violations %d, want 0", got)
	}
	if reader.Violations[Read] != 1 || reader.Violations[Write] != 0 {
		t.Fatalf("reader per-kind violations %v", reader.Violations)
	}
	// Metrics are isolated per tenant.
	if n := reader.TotalRequests(); n != 4 {
		t.Fatalf("reader requests %d", n)
	}
	if n := writer.TotalRequests(); n != 1 {
		t.Fatalf("writer requests %d", n)
	}
	if lat := writer.Combined().Max(); lat != 500*tus {
		t.Fatalf("writer max latency %v", lat)
	}
}

// TestTenantMetricsP999 checks the tail accessor against a known
// distribution: 999 fast requests and one slow outlier put p99.9 at the
// outlier's bucket.
func TestTenantMetricsP999(t *testing.T) {
	s := NewTenantSet([]string{"only"})
	for i := 0; i < 999; i++ {
		s.Record(0, Read, 0, 10*tus, 4096)
	}
	s.Record(0, Read, 0, 1000*tus, 4096)
	p999 := s.Tenants[0].P999()
	if p999 < 900*tus {
		t.Fatalf("p99.9 %v does not reach the outlier", p999)
	}
	if p50 := s.Tenants[0].Combined().Median(); p50 > 12*tus {
		t.Fatalf("median %v pulled up by the outlier", p50)
	}
}

// TestTenantMetricsString smoke-checks the log form carries the name
// and violation count.
func TestTenantMetricsString(t *testing.T) {
	s := NewTenantSet([]string{"t0"})
	s.SetSLO(0, Write, tus)
	s.Record(0, Write, 0, 2*tus, 1)
	got := s.Tenants[0].String()
	if len(got) == 0 || got[:3] != "t0:" {
		t.Fatalf("String %q", got)
	}
	if want := "slo-viol=1"; !contains(got, want) {
		t.Fatalf("String %q misses %q", got, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
