package stats

import (
	"fmt"

	"repro/internal/sim"
)

// TenantMetrics aggregates one tenant's I/O outcomes: the standard
// latency/volume metrics plus service-level-objective accounting
// against per-kind latency targets (0 = no target for that kind).
type TenantMetrics struct {
	Name string
	IOMetrics
	SLO        [2]sim.Time // per IOKind latency target; 0 disables
	Violations [2]int64    // completions over the kind's target
}

// SLOViolations returns the total SLO misses across kinds.
func (t *TenantMetrics) SLOViolations() int64 {
	return t.Violations[Read] + t.Violations[Write]
}

// P999 returns the tenant's combined p99.9 latency.
func (t *TenantMetrics) P999() sim.Time { return t.Combined().Percentile(99.9) }

// String summarizes the tenant for logs.
func (t *TenantMetrics) String() string {
	return fmt.Sprintf("%s: %v slo-viol=%d", t.Name, t.IOMetrics.String(), t.SLOViolations())
}

// TenantSet holds per-tenant metrics for one multi-queue run, indexed
// by tenant ID (= submission queue index).
type TenantSet struct {
	Tenants []*TenantMetrics
}

// NewTenantSet builds one TenantMetrics per name.
func NewTenantSet(names []string) *TenantSet {
	s := &TenantSet{Tenants: make([]*TenantMetrics, len(names))}
	for i, name := range names {
		s.Tenants[i] = &TenantMetrics{Name: name, IOMetrics: *NewIOMetrics()}
	}
	return s
}

// SetSLO installs a tenant's per-kind latency target; 0 disables the
// kind's accounting.
func (s *TenantSet) SetSLO(tenant int, kind IOKind, target sim.Time) {
	s.Tenants[tenant].SLO[kind] = target
}

// Record logs one completed request for a tenant, tallying an SLO
// violation when the kind has a target and the latency exceeds it.
func (s *TenantSet) Record(tenant int, kind IOKind, arrival, complete sim.Time, bytes int64) {
	t := s.Tenants[tenant]
	t.IOMetrics.Record(kind, arrival, complete, bytes)
	if target := t.SLO[kind]; target > 0 && complete-arrival > target {
		t.Violations[kind]++
	}
}

// Len returns the tenant count.
func (s *TenantSet) Len() int { return len(s.Tenants) }
