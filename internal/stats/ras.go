package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CountHist is a dense histogram over small non-negative integer counts —
// retry-ladder depths, retired blocks per chip, and similar RAS
// quantities where the domain is a handful of integers rather than a
// latency range.
type CountHist struct {
	counts []int64
	n      int64
	sum    int64
}

// NewCountHist returns an empty count histogram.
func NewCountHist() *CountHist { return &CountHist{} }

// Add records one sample. Negative samples panic: retry and retirement
// counts below zero are accounting bugs.
func (h *CountHist) Add(v int) {
	if v < 0 {
		panic("stats: negative count sample")
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.n++
	h.sum += int64(v)
}

// N returns the number of samples recorded.
func (h *CountHist) N() int64 { return h.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *CountHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest recorded value, or 0 when empty.
func (h *CountHist) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// String renders the histogram as "value:count" pairs, e.g. "1:34 2:5".
func (h *CountHist) String() string {
	if h.n == 0 {
		return "(empty)"
	}
	var parts []string
	for v, c := range h.counts {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%d:%d", v, c))
		}
	}
	return strings.Join(parts, " ")
}

// RAS aggregates reliability/availability/serviceability events over one
// simulation run: what the fault injector fired and how each layer
// recovered. Counters are grouped by fault class; every recovery path in
// the stack increments exactly one "handled" counter so the table always
// balances against the injected totals.
type RAS struct {
	// Flash read path: transient ECC failures and the read-retry ladder.
	ReadFaults  int64      // reads whose first sense failed the ECC check
	ReadRetries int64      // total re-sense attempts across all ladders
	ReadRelays  int64      // reads escalated to the controller's strong ECC
	RetryLadder *CountHist // retries needed per faulted read

	// Flash write/erase path: permanent failures and FTL retirement.
	ProgramFails  int64 // program operations that failed status check
	EraseFails    int64 // erase operations that failed status check
	BlocksRetired int64 // blocks permanently removed from the free pool
	WriteRemaps   int64 // in-flight host writes remapped to a fresh block
	GCCopyRetries int64 // GC copies redirected after a destination failure

	// Interconnect: Omnibus control-plane and v-channel faults.
	OnDieECCFallbacks    int64 // direct copies relayed for strong ECC
	GrantDrops           int64 // request/grant exchanges that timed out
	GrantRetries         int64 // arbitration retries after a grant timeout
	CopyFailovers        int64 // copies relayed after the grant ladder gave up
	GrantBudgetExhausted int64 // failovers forced by the backoff-time budget, not the retry count
	DeadVCopies          int64 // copies relayed because the v-channel is dead
	DegradedReturns      int64 // transfers forced onto h by a dead v-channel

	retiredByChip map[uint64]int64
}

// NewRAS returns zeroed counters.
func NewRAS() *RAS {
	return &RAS{
		RetryLadder:   NewCountHist(),
		retiredByChip: make(map[uint64]int64),
	}
}

// RecordRetirement counts one retired block against its chip.
func (r *RAS) RecordRetirement(chip uint64) {
	r.BlocksRetired++
	r.retiredByChip[chip]++
}

// RetirementHist returns the distribution of retired blocks per chip that
// retired at least one block.
func (r *RAS) RetirementHist() *CountHist {
	h := NewCountHist()
	for _, n := range r.retiredByChip {
		h.Add(int(n))
	}
	return h
}

// TotalFaults returns the number of injected fault events across classes.
func (r *RAS) TotalFaults() int64 {
	return r.ReadFaults + r.ProgramFails + r.EraseFails +
		r.OnDieECCFallbacks + r.GrantDrops + r.DeadVCopies
}

// Rows returns (label, value) pairs for every counter in a fixed order,
// the canonical form reports and determinism tests consume.
func (r *RAS) Rows() [][2]string {
	n := func(v int64) string { return fmt.Sprint(v) }
	rows := [][2]string{
		{"read ECC faults", n(r.ReadFaults)},
		{"read retries", n(r.ReadRetries)},
		{"read strong-ECC relays", n(r.ReadRelays)},
		{"retry ladder", r.RetryLadder.String()},
		{"program fails", n(r.ProgramFails)},
		{"erase fails", n(r.EraseFails)},
		{"blocks retired", n(r.BlocksRetired)},
		{"retired per chip", r.RetirementHist().String()},
		{"write remaps", n(r.WriteRemaps)},
		{"GC copy retries", n(r.GCCopyRetries)},
		{"on-die ECC fallbacks", n(r.OnDieECCFallbacks)},
		{"grant drops", n(r.GrantDrops)},
		{"grant retries", n(r.GrantRetries)},
		{"copy failovers", n(r.CopyFailovers)},
		{"grant budget exhausted", n(r.GrantBudgetExhausted)},
		{"dead-v copies relayed", n(r.DeadVCopies)},
		{"degraded h returns", n(r.DegradedReturns)},
	}
	return rows
}

// String renders every counter on one line, deterministically — the form
// the fault-determinism tests compare across runs.
func (r *RAS) String() string {
	var parts []string
	for _, row := range r.Rows() {
		parts = append(parts, row[0]+"="+row[1])
	}
	// Per-chip retirement detail, sorted for determinism.
	chips := make([]uint64, 0, len(r.retiredByChip))
	for c := range r.retiredByChip {
		chips = append(chips, c)
	}
	sort.Slice(chips, func(i, j int) bool { return chips[i] < chips[j] })
	for _, c := range chips {
		parts = append(parts, fmt.Sprintf("chip%d=%d", c, r.retiredByChip[c]))
	}
	return strings.Join(parts, " ")
}
