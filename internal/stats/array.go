package stats

import (
	"fmt"
	"strings"
)

// ArrayRAS aggregates reliability events over one array-level run: what
// the device-failure schedule did and how the cluster router and rebuild
// scheduler recovered. It is the rack-scale sibling of RAS, which counts
// intra-device recovery; one array run carries both (an ArrayRAS for the
// router plus one RAS per device).
type ArrayRAS struct {
	// Failure schedule.
	DeviceKills      int64 // permanent whole-device failures that took effect
	TransientOutages int64 // transient unavailability windows in the schedule

	// Router read path.
	RouterRetries       int64 // reads retried against an unresponsive device
	RetryExhausted      int64 // reads whose bounded retry/backoff budget ran out
	DegradedReads       int64 // pages served by m-of-(m+k) reconstruction
	ReconstructionReads int64 // surviving-shard reads issued for reconstruction
	SpareReads          int64 // dead-shard reads served directly from the rebuilt spare
	FailedReads         int64 // pages with fewer than m live shards — data loss

	// Router write path.
	RedirectedWrites int64 // shard writes redirected from a dead device to its spare
	DeferredWrites   int64 // shard writes delayed past a transient window
	LostWrites       int64 // shard writes dropped: dead device and no spare mapped

	// Rebuild scheduler.
	RebuildPages   int64 // shards re-protected onto the spare
	RebuildReads   int64 // surviving-shard reads issued by rebuild
	RebuildSkipped int64 // stripes skipped because a redirected write already re-protected them

	// Acknowledgement ledger.
	DoubleAcks int64 // array requests acknowledged more than once — must stay 0
}

// NewArrayRAS returns zeroed counters.
func NewArrayRAS() *ArrayRAS { return &ArrayRAS{} }

// Rows returns (label, value) pairs in a fixed order, the canonical form
// reports and determinism tests consume.
func (r *ArrayRAS) Rows() [][2]string {
	n := func(v int64) string { return fmt.Sprint(v) }
	return [][2]string{
		{"device kills", n(r.DeviceKills)},
		{"transient outages", n(r.TransientOutages)},
		{"router retries", n(r.RouterRetries)},
		{"retry budget exhausted", n(r.RetryExhausted)},
		{"degraded reads", n(r.DegradedReads)},
		{"reconstruction reads", n(r.ReconstructionReads)},
		{"spare reads", n(r.SpareReads)},
		{"failed reads", n(r.FailedReads)},
		{"redirected writes", n(r.RedirectedWrites)},
		{"deferred writes", n(r.DeferredWrites)},
		{"lost writes", n(r.LostWrites)},
		{"rebuild pages", n(r.RebuildPages)},
		{"rebuild reads", n(r.RebuildReads)},
		{"rebuild skipped (fresh)", n(r.RebuildSkipped)},
		{"double acks", n(r.DoubleAcks)},
	}
}

// String renders every counter on one line, deterministically.
func (r *ArrayRAS) String() string {
	parts := make([]string, 0, 16)
	for _, row := range r.Rows() {
		parts = append(parts, row[0]+"="+row[1])
	}
	return strings.Join(parts, " ")
}
