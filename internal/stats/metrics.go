package stats

import (
	"fmt"

	"repro/internal/sim"
)

// IOKind distinguishes read and write I/O in per-kind metrics.
type IOKind int

// I/O kinds.
const (
	Read IOKind = iota
	Write
)

// String returns "read" or "write".
func (k IOKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// IOMetrics aggregates per-request latency and volume for one simulation
// run, split by read/write.
type IOMetrics struct {
	Latency      [2]*Histogram
	Bytes        [2]int64
	Requests     [2]int64
	FirstArrival sim.Time
	LastComplete sim.Time
	haveFirst    bool
}

// NewIOMetrics returns empty metrics.
func NewIOMetrics() *IOMetrics {
	return &IOMetrics{
		Latency: [2]*Histogram{NewLatencyHistogram(), NewLatencyHistogram()},
	}
}

// Record logs one completed request.
func (m *IOMetrics) Record(kind IOKind, arrival, complete sim.Time, bytes int64) {
	if complete < arrival {
		panic("stats: completion precedes arrival")
	}
	m.Latency[kind].Add(complete - arrival)
	m.Bytes[kind] += bytes
	m.Requests[kind]++
	if !m.haveFirst || arrival < m.FirstArrival {
		m.FirstArrival = arrival
		m.haveFirst = true
	}
	if complete > m.LastComplete {
		m.LastComplete = complete
	}
}

// TotalRequests returns the request count across kinds.
func (m *IOMetrics) TotalRequests() int64 { return m.Requests[Read] + m.Requests[Write] }

// TotalBytes returns the byte volume across kinds.
func (m *IOMetrics) TotalBytes() int64 { return m.Bytes[Read] + m.Bytes[Write] }

// Combined returns a histogram merging read and write latencies.
func (m *IOMetrics) Combined() *Histogram {
	h := NewLatencyHistogram()
	h.Merge(m.Latency[Read])
	h.Merge(m.Latency[Write])
	return h
}

// MeanLatency returns the mean latency across all requests, the paper's
// primary "average I/O latency" metric.
func (m *IOMetrics) MeanLatency() sim.Time { return m.Combined().Mean() }

// Span returns the wall-clock interval covered, from first arrival to last
// completion.
func (m *IOMetrics) Span() sim.Time {
	if !m.haveFirst {
		return 0
	}
	return m.LastComplete - m.FirstArrival
}

// KIOPS returns completed requests per wall-clock millisecond, i.e.
// thousands of I/O operations per second — the Fig 15 metric.
func (m *IOMetrics) KIOPS() float64 {
	span := m.Span()
	if span <= 0 {
		return 0
	}
	return float64(m.TotalRequests()) / span.Seconds() / 1000
}

// BandwidthMBps returns achieved bandwidth in MB/s.
func (m *IOMetrics) BandwidthMBps() float64 {
	span := m.Span()
	if span <= 0 {
		return 0
	}
	return float64(m.TotalBytes()) / span.Seconds() / 1e6
}

// String summarizes the run.
func (m *IOMetrics) String() string {
	return fmt.Sprintf("reqs=%d (r=%d w=%d) mean=%v p99=%v kiops=%.1f",
		m.TotalRequests(), m.Requests[Read], m.Requests[Write],
		m.MeanLatency(), m.Combined().P99(), m.KIOPS())
}

// UtilMatrix is a channels × time-window utilization matrix: the data
// behind the paper's Fig 3 heatmap. Rows are channels, columns are windows.
type UtilMatrix struct {
	Recorders []*sim.UtilRecorder
}

// NewUtilMatrix creates one recorder per channel with a shared window.
func NewUtilMatrix(channels int, window sim.Time) *UtilMatrix {
	m := &UtilMatrix{Recorders: make([]*sim.UtilRecorder, channels)}
	for i := range m.Recorders {
		m.Recorders[i] = sim.NewUtilRecorder(window)
	}
	return m
}

// Rows returns the matrix as [channel][window] utilization in [0,1], with
// all rows padded to the same width.
func (m *UtilMatrix) Rows() [][]float64 {
	rows := make([][]float64, len(m.Recorders))
	width := 0
	for i, r := range m.Recorders {
		rows[i] = r.Series()
		if len(rows[i]) > width {
			width = len(rows[i])
		}
	}
	for i := range rows {
		for len(rows[i]) < width {
			rows[i] = append(rows[i], 0)
		}
	}
	return rows
}

// ImbalanceIndex quantifies cross-channel imbalance; 1.0 is perfectly
// balanced. See ImbalanceOfRows.
func (m *UtilMatrix) ImbalanceIndex() float64 { return ImbalanceOfRows(m.Rows()) }

// ImbalanceOfRows computes a busy-weighted imbalance index over a
// [channel][window] utilization matrix: the sum over windows of the
// busiest channel's utilization divided by the sum of the mean
// utilization. Busy-weighting keeps sparse near-idle windows (one brief
// transfer somewhere) from dominating the index the way a per-window
// average of max/mean would.
func ImbalanceOfRows(rows [][]float64) float64 {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return 1
	}
	var maxSum, meanSum float64
	for w := 0; w < len(rows[0]); w++ {
		var sum, max float64
		for c := range rows {
			v := rows[c][w]
			sum += v
			if v > max {
				max = v
			}
		}
		maxSum += max
		meanSum += sum / float64(len(rows))
	}
	if meanSum == 0 {
		return 1
	}
	return maxSum / meanSum
}
