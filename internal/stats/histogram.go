// Package stats provides the measurement primitives used across the
// simulator: latency histograms with percentile queries, throughput
// counters, and the per-channel utilization matrices behind the paper's
// imbalance analysis (Fig 3).
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Histogram is a log-bucketed latency histogram. Buckets are spaced at a
// fixed ratio per decade, giving bounded relative error on percentile
// queries while using constant memory regardless of sample count. The
// zero value is not usable; call NewHistogram.
type Histogram struct {
	bucketsPerDecade int
	counts           []int64
	n                int64
	sum              float64
	min              sim.Time
	max              sim.Time
}

// NewHistogram returns a histogram with the given resolution; 90 buckets
// per decade bounds relative error at about 2.6%.
func NewHistogram(bucketsPerDecade int) *Histogram {
	if bucketsPerDecade <= 0 {
		panic("stats: non-positive histogram resolution")
	}
	return &Histogram{
		bucketsPerDecade: bucketsPerDecade,
		min:              math.MaxInt64,
	}
}

// NewLatencyHistogram returns a histogram at the default resolution used
// throughout the experiments.
func NewLatencyHistogram() *Histogram { return NewHistogram(90) }

func (h *Histogram) bucketOf(v sim.Time) int {
	if v <= 0 {
		return 0
	}
	b := int(math.Log10(float64(v))*float64(h.bucketsPerDecade)) + 1
	if b < 1 {
		b = 1
	}
	return b
}

// bucketLow returns a representative value (geometric lower bound) for a
// bucket index.
func (h *Histogram) bucketValue(b int) sim.Time {
	if b == 0 {
		return 0
	}
	return sim.Time(math.Pow(10, float64(b)/float64(h.bucketsPerDecade)))
}

// Add records one sample. Negative samples panic: a latency below zero is a
// model bug.
func (h *Histogram) Add(v sim.Time) {
	if v < 0 {
		panic("stats: negative latency sample")
	}
	b := h.bucketOf(v)
	for b >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.n++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the arithmetic mean of samples, or 0 when empty.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.n))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the approximate p-th percentile (p in [0,100]). The
// exact recorded min and max are returned at the extremes so headline
// numbers like p0/p100 are never distorted by bucketing.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			v := h.bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Percentile(50).
func (h *Histogram) Median() sim.Time { return h.Percentile(50) }

// P99 is Percentile(99).
func (h *Histogram) P99() sim.Time { return h.Percentile(99) }

// Merge adds all samples of other into h. Resolutions must match.
func (h *Histogram) Merge(other *Histogram) {
	if other.bucketsPerDecade != h.bucketsPerDecade {
		panic("stats: merging histograms with different resolutions")
	}
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// CDF returns (value, cumulative fraction) points suitable for plotting a
// latency CDF (Fig 20a). Empty histograms return nil.
func (h *Histogram) CDF() []CDFPoint {
	if h.n == 0 {
		return nil
	}
	var pts []CDFPoint
	var seen int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		v := h.bucketValue(b)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		pts = append(pts, CDFPoint{Value: v, Fraction: float64(seen) / float64(h.n)})
	}
	return pts
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    sim.Time
	Fraction float64
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.n, h.Mean(), h.Median(), h.P99(), h.Max())
}

// ExactPercentile computes a percentile exactly from a raw sample slice.
// It is used by tests to validate Histogram and by small experiments where
// storing samples is cheap. The input is not modified.
func ExactPercentile(samples []sim.Time, p float64) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	s := make([]sim.Time, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}
