package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/flash"
)

func TestVictimPolicyStrings(t *testing.T) {
	if VictimGreedy.String() != "greedy" || VictimCostBenefit.String() != "cost-benefit" {
		t.Fatal("victim policy strings wrong")
	}
}

// runVictimPolicy churns a device under the given victim policy and
// returns (pages copied, blocks erased): the write-amplification signal.
func runVictimPolicy(t *testing.T, policy VictimPolicy) (int64, int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.3
	cfg.Victim = policy
	e, f, g := rig(cfg, 320)
	version := make(map[int64]int64)
	for lpn := int64(0); lpn < 320; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	// Skewed churn: a small hot set rewrites constantly, the rest is cold
	// — the regime where cost-benefit outperforms greedy.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 700; i++ {
		var lpn int64
		if rng.Float64() < 0.9 {
			lpn = rng.Int63n(32) // hot
		} else {
			lpn = 32 + rng.Int63n(288) // cold
		}
		version[lpn]++
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn, v := range version {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
			t.Fatalf("policy %v: LPN %d stale", policy, lpn)
		}
	}
	st := f.Stats()
	return st.GCPagesCopied, st.GCBlocksErased
}

func TestCostBenefitVictimCorrectAndReclaims(t *testing.T) {
	copied, erased := runVictimPolicy(t, VictimCostBenefit)
	if erased == 0 {
		t.Fatal("cost-benefit GC never erased")
	}
	if copied < 0 {
		t.Fatal("negative copies")
	}
}

func TestGreedyVictimCorrectAndReclaims(t *testing.T) {
	copied, erased := runVictimPolicy(t, VictimGreedy)
	if erased == 0 {
		t.Fatal("greedy GC never erased")
	}
	_ = copied
}

func TestVictimPoliciesBothMakeProgress(t *testing.T) {
	gCopied, gErased := runVictimPolicy(t, VictimGreedy)
	cbCopied, cbErased := runVictimPolicy(t, VictimCostBenefit)
	t.Logf("greedy: %d copied / %d erased; cost-benefit: %d copied / %d erased",
		gCopied, gErased, cbCopied, cbErased)
	// Both policies must reclaim; per-erase copy cost (write amplification
	// per reclaimed block) should be in a sane band for both.
	for _, pair := range []struct {
		name           string
		copied, erased int64
	}{{"greedy", gCopied, gErased}, {"cost-benefit", cbCopied, cbErased}} {
		perBlock := float64(pair.copied) / float64(pair.erased)
		if perBlock > 8 { // pagesPerBlock is 8 in the small rig
			t.Fatalf("%s: %f copies per erased block exceeds block size", pair.name, perBlock)
		}
	}
}
