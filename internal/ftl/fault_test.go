package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/flash"
)

// A forced program failure retires the block and remaps the in-flight
// write to a fresh one; the host-visible result is indistinguishable
// from a clean write.
func TestProgramFailRetiresBlockAndRemapsWrite(t *testing.T) {
	e, f, g := rig(noGC(), 256)
	inj := fault.New(fault.Config{Seed: 1, ProgramFailsPerChip: 1})
	f.SetFaults(inj)

	var lpns []int64
	var toks []flash.Token
	for lpn := int64(0); lpn < 16; lpn++ {
		lpns = append(lpns, lpn)
		toks = append(toks, TokenFor(lpn, 1))
	}
	done := false
	f.Write(lpns, toks, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("faulted write never completed")
	}
	for i, lpn := range lpns {
		if got := contentOf(t, f, g, lpn); got != toks[i] {
			t.Fatalf("LPN %d content = %x, want %x", lpn, got, toks[i])
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	ras := inj.RAS()
	if ras.ProgramFails == 0 {
		t.Fatal("per-chip quota injected no program failures")
	}
	// One failure per chip and one retirement per failure.
	if int64(f.RetiredBlocks()) != ras.ProgramFails || ras.BlocksRetired != ras.ProgramFails {
		t.Fatalf("retired=%d BlocksRetired=%d ProgramFails=%d",
			f.RetiredBlocks(), ras.BlocksRetired, ras.ProgramFails)
	}
	if ras.WriteRemaps == 0 {
		t.Fatal("no in-flight write was remapped")
	}
	// Remapped LPNs stay readable.
	readDone := false
	f.Read(lpns, func() { readDone = true })
	e.Run()
	if !readDone {
		t.Fatal("read after remap never completed")
	}
}

// GC-heavy churn with program-fail and erase-fail quotas plus a small
// background rate: the device loses blocks to retirement mid-collection
// yet every LPN keeps its latest token and the FTL invariants hold.
func TestFaultChurnKeepsLogicalStateConsistent(t *testing.T) {
	// 192 LPNs on the 512-page rig leaves headroom for the up-to-12
	// blocks the quotas retire; a higher utilization would make the GC
	// threshold permanently unreachable on the shrunken pool.
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.25
	e, f, g := rig(cfg, 192)
	inj := fault.New(fault.Config{
		Seed:                11,
		ProgramFailsPerChip: 2,
		EraseFailsPerChip:   1,
	})
	f.SetFaults(inj)

	version := make(map[int64]int64)
	for lpn := int64(0); lpn < 192; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 700; i++ {
		var lpn int64
		if rng.Float64() < 0.9 {
			lpn = rng.Int63n(32)
		} else {
			lpn = 32 + rng.Int63n(160)
		}
		version[lpn]++
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn, v := range version {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
			t.Fatalf("LPN %d stale after faulted churn", lpn)
		}
	}
	ras := inj.RAS()
	if ras.ProgramFails < 2*4 {
		t.Fatalf("ProgramFails = %d, quota should force >= 8", ras.ProgramFails)
	}
	if ras.EraseFails < 1 {
		t.Fatalf("EraseFails = %d, quota should force >= 1 per erasing chip", ras.EraseFails)
	}
	if int64(f.RetiredBlocks()) != ras.BlocksRetired {
		t.Fatalf("RetiredBlocks()=%d != RAS BlocksRetired=%d", f.RetiredBlocks(), ras.BlocksRetired)
	}
	if f.Stats().GCBlocksErased == 0 {
		t.Fatal("GC made no progress under fault injection")
	}
}

// A block that fails erase is retired, never freed, and never allocated
// again; its terminal state is BlockRetired.
func TestEraseFailBlockReachesTerminalState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.25
	e, f, _ := rig(cfg, 192)
	inj := fault.New(fault.Config{Seed: 3, EraseFailsPerChip: 1})
	f.SetFaults(inj)

	for lpn := int64(0); lpn < 192; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		lpn := rng.Int63n(64)
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, int64(i+1))}, func() {})
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	ras := inj.RAS()
	if ras.EraseFails == 0 {
		t.Fatal("no erase failures were forced")
	}
	retired := 0
	for _, ps := range f.planes {
		for b := range ps.blocks {
			if !ps.blocks[b].bad {
				continue
			}
			retired++
			if ps.blocks[b].state == BlockFree {
				t.Fatalf("retired block %d returned to the free pool", b)
			}
			for _, fb := range ps.free {
				if fb == b {
					t.Fatalf("retired block %d listed as free", b)
				}
			}
		}
	}
	if retired == 0 {
		t.Fatal("erase failures retired no blocks")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A program failure on a GC copy destination redirects the copy to a new
// destination without corrupting the migrated page.
func TestGCCopyRetriesOnDestinationFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.25
	e, f, g := rig(cfg, 192)

	// Fragment through the warmup path, which performs no fault draws;
	// with the injector attached afterwards, the only program draws in
	// the run are GC copy destinations.
	version := make(map[int64]int64)
	for lpn := int64(0); lpn < 192; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 250; i++ {
		lpn := rng.Int63n(192)
		version[lpn]++
		f.Reinstall(lpn, TokenFor(lpn, version[lpn]))
	}
	inj := fault.New(fault.Config{Seed: 2, ProgramFailsPerChip: 1})
	f.SetFaults(inj)

	done := false
	f.TriggerGC(func() { done = true })
	e.Run()
	if !done {
		t.Fatal("GC round never finished under copy-destination failures")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 192; lpn++ {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, version[lpn]) {
			t.Fatalf("LPN %d stale after GC copy retries", lpn)
		}
	}
	ras := inj.RAS()
	if ras.GCCopyRetries == 0 {
		t.Fatal("no GC copy destination failure was injected")
	}
	if ras.GCCopyRetries != ras.ProgramFails {
		t.Fatalf("GCCopyRetries=%d ProgramFails=%d: a non-GC program drew a fault", ras.GCCopyRetries, ras.ProgramFails)
	}
	if int64(f.RetiredBlocks()) != ras.BlocksRetired {
		t.Fatalf("RetiredBlocks()=%d != BlocksRetired=%d", f.RetiredBlocks(), ras.BlocksRetired)
	}
}
