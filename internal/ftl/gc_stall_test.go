package ftl

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/sim"
)

// Regression test for the zero-victim GC recursion. On a device small
// enough that every Full block still has programs in flight when a host
// write runs out of space, the stall-triggered collection round selects
// no victims. finishGC used to retry the stalled write synchronously,
// which re-stalled, restarted GC, found no victims again, and recursed
// until the stack overflowed. The round now parks the write; the next
// program completion restarts collection and the write drains normally.
func TestGCZeroVictimRoundParksStalledWrites(t *testing.T) {
	geo := flash.Geometry{Planes: 1, BlocksPerPlane: 3, PagesPerBlock: 4, PageSize: 4096}
	e := sim.NewEngine()
	g := controller.NewGrid(e, 1, 1, geo, flash.ULLTiming())
	soc := controller.NewSoc(e, 8000, 8000)
	fab := controller.NewBusFabric(e, "base", g, soc, geo.PageSize, 8, 1000, false)
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	f := New(e, fab, cfg, 4)

	done := 0
	write := func(lpn, ver int64) {
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, ver)}, func() { done++ })
	}
	// Fill block 0 (lpns 0-3), then block 1 (the same lpns again, making
	// block 0 all-garbage), all with their programs still queued on the
	// single die. The ninth write finds only the reserve block free and
	// stalls; the GC round it triggers sees two Full blocks, both with
	// in-flight programs — zero victims.
	for lpn := int64(0); lpn < 4; lpn++ {
		write(lpn, 0)
	}
	for lpn := int64(0); lpn < 4; lpn++ {
		write(lpn, 1)
	}
	write(0, 2)
	if f.StalledWrites() != 1 {
		t.Fatalf("stalled writes = %d, want 1 (scenario did not reproduce)", f.StalledWrites())
	}
	if f.GCActive() {
		t.Fatal("zero-victim round left GC marked active")
	}

	e.Run()

	if done != 9 {
		t.Fatalf("completed %d of 9 writes", done)
	}
	if f.StalledWrites() != 0 {
		t.Fatalf("%d writes still parked after drain", f.StalledWrites())
	}
	if got := contentOf(t, f, g, 0); got != TokenFor(0, 2) {
		t.Fatalf("LPN 0 content = %x, want the stalled write's token %x", got, TokenFor(0, 2))
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
