package ftl

import (
	"testing"

	"repro/internal/flash"
	"repro/internal/sim"
)

// fmmuCfg returns a no-GC FTL config with the map unit enabled.
// EntriesPerPage is shrunk to 8 so the small test geometry yields many
// translation pages (numLPNs/8) instead of one.
func fmmuCfg(entries int, eviction string, batch int) Config {
	c := noGC()
	c.Map = &MapConfig{Entries: entries, Eviction: eviction, EntriesPerPage: 8, WritebackBatch: batch}
	return c
}

// warmFootprint installs LPNs [0, n) at version 0.
func warmFootprint(f *FTL, n int64) {
	for lpn := int64(0); lpn < n; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
}

// readLPN runs one single-page read to completion.
func readLPN(t *testing.T, e *sim.Engine, f *FTL, lpn int64) {
	t.Helper()
	done := false
	f.Read([]int64{lpn}, func() { done = true })
	e.Run()
	if !done {
		t.Fatalf("read of LPN %d never completed", lpn)
	}
}

func TestMapConfigDefaults(t *testing.T) {
	geo := smallGeo()
	c := MapConfig{}.withDefaults(geo)
	if c.Entries != 64 || c.Eviction != "clock" || c.WritebackBatch != 8 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.EntriesPerPage != geo.PageSize/8 {
		t.Fatalf("EntriesPerPage = %d, want %d", c.EntriesPerPage, geo.PageSize/8)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad eviction policy did not panic")
		}
	}()
	MapConfig{Eviction: "random"}.withDefaults(geo)
}

func TestMapCarvingAndDirectory(t *testing.T) {
	_, f, g := rig(fmmuCfg(4, "clock", 8), 256)
	m := f.mapu
	wantT := 256 / 8
	if m.numT != wantT {
		t.Fatalf("numT = %d, want %d", m.numT, wantT)
	}
	wantBlocks := (wantT+smallGeo().PagesPerBlock-1)/smallGeo().PagesPerBlock + 3
	if len(m.blocks) != wantBlocks {
		t.Fatalf("%d map blocks carved, want %d", len(m.blocks), wantBlocks)
	}
	// Every translation page is on flash at version 0, and the carved
	// blocks are invisible to host GC and consistency accounting.
	for tp := 0; tp < m.numT; tp++ {
		tok, ok := f.MapFlashToken(tp)
		if !ok || tok != MapTokenFor(tp, 0) {
			t.Fatalf("t=%d initial flash token %#x ok=%v", tp, tok, ok)
		}
	}
	for _, blk := range m.blocks {
		bi := &f.planeAt(blk.id, blk.plane).blocks[blk.block]
		if !bi.mapOwned || bi.state != BlockFull {
			t.Fatalf("map block %v/%d/%d: mapOwned=%v state=%v", blk.id, blk.plane, blk.block, bi.mapOwned, bi.state)
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = g
}

// TestMapHitMissEvict drives the hit/miss/evict matrix for both
// eviction policies through real reads on a 2-entry cache. Sequential
// warmup leaves the last two translation pages resident under both
// policies, so the stat deltas below are policy-independent.
func TestMapHitMissEvict(t *testing.T) {
	for _, pol := range []string{"clock", "lru"} {
		t.Run(pol, func(t *testing.T) {
			e, f, _ := rig(fmmuCfg(2, pol, 64), 256)
			warmFootprint(f, 256)

			base := f.MapStats()
			readLPN(t, e, f, 40) // t5: absent after warmup -> miss
			s := f.MapStats()
			if s.Misses != base.Misses+1 || s.Fetches != base.Fetches+1 {
				t.Fatalf("cold read: misses %d->%d fetches %d->%d", base.Misses, s.Misses, base.Fetches, s.Fetches)
			}

			readLPN(t, e, f, 41) // same t5 -> hit, no new fetch
			s2 := f.MapStats()
			if s2.Hits != s.Hits+1 || s2.Fetches != s.Fetches {
				t.Fatalf("warm read: hits %d->%d fetches %d->%d", s.Hits, s2.Hits, s.Fetches, s2.Fetches)
			}

			// Two more distinct pages overflow the 2-entry cache; under
			// both policies t5 is out after t6 and t7 came in.
			readLPN(t, e, f, 48) // t6
			readLPN(t, e, f, 56) // t7
			s3 := f.MapStats()
			if s3.Evictions <= base.Evictions {
				t.Fatal("overflow produced no evictions")
			}
			readLPN(t, e, f, 40) // t5 again -> must miss
			s4 := f.MapStats()
			if s4.Misses != s3.Misses+1 {
				t.Fatalf("evicted page did not miss: misses %d->%d", s3.Misses, s4.Misses)
			}
			if err := f.MapIdle(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMapEvictPolicyChoice pins where CLOCK and LRU differ: with the
// reference bit of one entry cleared, CLOCK takes it regardless of
// recency, while LRU takes the least-recently-used entry.
func TestMapEvictPolicyChoice(t *testing.T) {
	mk := func(pol string) *mapUnit {
		_, f, _ := rig(fmmuCfg(3, pol, 64), 256)
		m := f.mapu
		// Make t0, t1, t2 resident (clean), in that order.
		m.warmTouch(0)  // t0
		m.warmTouch(8)  // t1
		m.warmTouch(16) // t2
		return m
	}

	lru := mk("lru")
	lru.touchSlot(lru.where[0]) // t0 most recent; t1 now least recent
	si, ok := lru.grabSlot()
	if !ok || lru.slots[si].t != mapSlotEmpty {
		t.Fatalf("lru grabSlot: ok=%v", ok)
	}
	if _, still := lru.where[1]; still {
		t.Fatal("lru kept t1")
	}
	if _, kept := lru.where[0]; !kept {
		t.Fatal("lru evicted the most recent entry t0")
	}

	clk := mk("clock")
	// Clear t2's reference bit only; CLOCK must take it on the sweep
	// even though it was touched last.
	clk.slots[clk.where[16]].ref = false
	if _, ok := clk.grabSlot(); !ok {
		t.Fatal("clock grabSlot failed")
	}
	if _, still := clk.where[16]; still {
		t.Fatal("clock kept the ref-cleared entry t2")
	}
}

// TestMapMissUnderMiss: independent requests missing on different
// translation pages fetch concurrently; misses on the same page
// coalesce onto one fetch.
func TestMapMissUnderMiss(t *testing.T) {
	e, f, _ := rig(fmmuCfg(4, "clock", 64), 256)
	warmFootprint(f, 256)

	// Same page: two misses, one fetch, one coalesced join.
	base := f.MapStats()
	doneA, doneB := false, false
	f.Read([]int64{0}, func() { doneA = true }) // t0
	f.Read([]int64{1}, func() { doneB = true }) // t0 too
	e.Run()
	if !doneA || !doneB {
		t.Fatal("coalesced reads did not complete")
	}
	s := f.MapStats()
	if s.Misses != base.Misses+2 || s.Fetches != base.Fetches+1 || s.SharedMisses != base.SharedMisses+1 {
		t.Fatalf("same-page: misses +%d fetches +%d shared +%d, want +2/+1/+1",
			s.Misses-base.Misses, s.Fetches-base.Fetches, s.SharedMisses-base.SharedMisses)
	}

	// Different pages: both fetches in flight at once — neither request
	// serializes behind the other's map IO.
	var at2, at3 sim.Time
	f.Read([]int64{16}, func() { at2 = e.Now() }) // t2
	f.Read([]int64{24}, func() { at3 = e.Now() }) // t3
	e.Run()
	s2 := f.MapStats()
	if s2.Fetches != s.Fetches+2 {
		t.Fatalf("distinct pages shared a fetch: +%d", s2.Fetches-s.Fetches)
	}
	// A serialized pipeline would finish the second read a full
	// fetch+read later; concurrent fetches on different chips finish
	// within one page-read time of each other.
	if at2 == 0 || at3 == 0 {
		t.Fatal("reads did not complete")
	}
}

// TestMapWritebackBatching: dirty pages accumulate below the batch
// threshold and flush together exactly when it is reached.
func TestMapWritebackBatching(t *testing.T) {
	e, f, _ := rig(fmmuCfg(64, "clock", 4), 256)
	warmFootprint(f, 256)

	write := func(lpn int64) {
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, 1)}, func() {})
		e.Run()
	}
	// Three distinct translation pages dirtied: below the threshold,
	// nothing flushes.
	write(0)  // t0
	write(8)  // t1
	write(16) // t2
	if s := f.MapStats(); s.Writebacks != 0 {
		t.Fatalf("flushed %d writebacks below the batch threshold", s.Writebacks)
	}
	if f.mapu.dirtyCount != 3 {
		t.Fatalf("dirtyCount = %d, want 3", f.mapu.dirtyCount)
	}
	// The fourth dirty page hits the threshold: all four flush.
	write(24) // t3
	if s := f.MapStats(); s.Writebacks != 4 {
		t.Fatalf("Writebacks = %d, want 4", s.Writebacks)
	}
	if f.mapu.dirtyCount != 0 {
		t.Fatalf("dirtyCount = %d after flush", f.mapu.dirtyCount)
	}
	// Flash now holds the committed versions.
	for _, tp := range []int{0, 1, 2, 3} {
		tok, ok := f.MapFlashToken(tp)
		if !ok || tok != MapTokenFor(tp, f.mapu.flashVer[tp]) {
			t.Fatalf("t=%d flash token %#x ok=%v", tp, tok, ok)
		}
	}
	if err := f.MapIdle(); err != nil {
		t.Fatal(err)
	}
}

// TestMapCacheSizeOne: the degenerate one-entry cache still serves
// multi-page requests (lookups are sequential, so only the lookup
// instant needs residency) and dirty evictions write back correctly.
func TestMapCacheSizeOne(t *testing.T) {
	e, f, g := rig(fmmuCfg(1, "clock", 2), 256)
	warmFootprint(f, 256)

	// One request spanning four translation pages.
	done := false
	f.Read([]int64{0, 8, 16, 24}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("multi-page read never completed on a 1-entry cache")
	}
	s := f.MapStats()
	if s.Misses < 3 {
		t.Fatalf("expected ≥3 misses through a 1-entry cache, got %d", s.Misses)
	}
	// Writes churn the single slot through dirty evictions.
	for lpn := int64(0); lpn < 64; lpn += 8 {
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, 1)}, func() {})
		e.Run()
	}
	if err := f.MapIdle(); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 64; lpn += 8 {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, 1) {
			t.Fatalf("LPN %d content %#x after map churn", lpn, got)
		}
	}
}

// TestMapCleaningReclaims: writeback volume beyond the map region's
// append capacity forces cleaning rounds, which must relocate live
// translation pages intact and keep every committed version readable.
func TestMapCleaningReclaims(t *testing.T) {
	e, f, _ := rig(fmmuCfg(64, "clock", 2), 128)
	warmFootprint(f, 128)

	// 16 translation pages, 5 map blocks (2 directory + 2 + spare) of 8
	// pages each: ~24 append pages before cleaning must run. Dirty the
	// whole map repeatedly.
	for round := 0; round < 12; round++ {
		for lpn := int64(0); lpn < 128; lpn += 8 {
			f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, int64(round+1))}, func() {})
		}
		e.Run()
	}
	s := f.MapStats()
	if s.CleanRounds == 0 || s.MapErases == 0 {
		t.Fatalf("no map cleaning despite %d writebacks (rounds=%d erases=%d)", s.Writebacks, s.CleanRounds, s.MapErases)
	}
	if err := f.MapIdle(); err != nil {
		t.Fatal(err)
	}
	// Conservation: flash holds exactly the last committed token for
	// every translation page, even after relocation.
	m := f.mapu
	for tp := 0; tp < m.numT; tp++ {
		tok, ok := f.MapFlashToken(tp)
		if !ok || tok != MapTokenFor(tp, m.flashVer[tp]) {
			t.Fatalf("t=%d after cleaning: flash %#x, want version %d", tp, tok, m.flashVer[tp])
		}
	}
	// Region bookkeeping balances: live counts sum to numT.
	live := 0
	for _, blk := range m.blocks {
		live += blk.live
	}
	if live != m.numT {
		t.Fatalf("live pages sum to %d, want %d", live, m.numT)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestFmmuInfiniteCacheConvergesToFlat: with every translation page
// resident (cache ≥ numT) and a read-only workload, fmmu performs no
// map IO at all, so per-request completion times and order match flat
// mapping exactly — the golden degeneracy check.
func TestFmmuInfiniteCacheConvergesToFlat(t *testing.T) {
	type result struct {
		order []int64
		times []sim.Time
	}
	runOne := func(cfg Config) result {
		e, f, _ := rig(cfg, 256)
		warmFootprint(f, 256)
		var res result
		for i := 0; i < 40; i++ {
			lpn := int64((i * 37) % 256)
			lpn2 := int64((i*53 + 7) % 256)
			f.Read([]int64{lpn, lpn2}, func() {
				res.order = append(res.order, lpn)
				res.times = append(res.times, e.Now())
			})
		}
		e.Run()
		return res
	}
	flat := runOne(noGC())
	fm := runOne(fmmuCfg(1024, "clock", 8))
	if len(flat.order) != len(fm.order) {
		t.Fatalf("completion counts differ: %d vs %d", len(flat.order), len(fm.order))
	}
	for i := range flat.order {
		if flat.order[i] != fm.order[i] || flat.times[i] != fm.times[i] {
			t.Fatalf("request %d diverged: flat (lpn %d at %v) vs fmmu (lpn %d at %v)",
				i, flat.order[i], flat.times[i], fm.order[i], fm.times[i])
		}
	}
}

// TestMapFlatAccessors: every map accessor is a well-defined zero in
// flat mode.
func TestMapFlatAccessors(t *testing.T) {
	_, f, _ := rig(noGC(), 256)
	if f.MapEnabled() {
		t.Fatal("flat FTL reports a map unit")
	}
	if s := f.MapStats(); s != (MapStats{}) {
		t.Fatalf("flat MapStats = %+v", s)
	}
	if f.NumTranslationPages() != 0 || f.MapCacheEntries() != 0 {
		t.Fatal("flat map geometry accessors nonzero")
	}
	if _, ok := f.MapFlashToken(0); ok {
		t.Fatal("flat MapFlashToken returned content")
	}
	if err := f.MapIdle(); err != nil {
		t.Fatal(err)
	}
	f.SetMapChecker(nil) // must be a no-op, not a panic
}

// TestMapTokensDisjoint: map tokens never collide with host-data tokens
// over the ranges a run can produce, so conservation checks cannot
// cross-match.
func TestMapTokensDisjoint(t *testing.T) {
	seen := make(map[flash.Token]bool)
	for tp := 0; tp < 64; tp++ {
		for v := int64(0); v < 8; v++ {
			seen[MapTokenFor(tp, v)] = true
		}
	}
	for lpn := int64(0); lpn < 256; lpn++ {
		for v := int64(0); v < 8; v++ {
			if seen[TokenFor(lpn, v)] {
				t.Fatalf("TokenFor(%d,%d) collides with a map token", lpn, v)
			}
		}
	}
}
