// FMMU-style demand-paged mapping (ROADMAP item 3; Woo & Min, "FMMU").
//
// In flat mode (Config.Map == nil) the FTL holds the whole LPN map in
// DRAM and translation is free — the assumption every config made until
// now, and one that silently caps the simulated device at DRAM-sized
// footprints. The map unit models what multi-TB SSDs actually do: the
// map lives on flash as translation pages, a bounded DRAM map cache
// holds the hot subset, and a lookup that misses demand-pages its
// translation page in through the very fabric under study. Map IO is
// ordinary fabric traffic — fab.Read/fab.Write/fab.Erase against a
// dedicated map-block region — so it reserves h-channels, v-channels and
// dies like any host IO, flows through the controller scheduling layer
// when one is configured, and interferes with host traffic exactly the
// way Sprinkler argues die-level map contention must.
//
// The cache is timing-only: l2p/p2l stay authoritative, so a stale or
// evicted cache entry can cost latency but never corrupt a translation.
// What keeps the model honest is the ledger the checker mirrors: every
// translation page has a content version, the token MapTokenFor(t, ver)
// is physically programmed into flash on writeback, and the invariant
// checker verifies at drain that flash holds exactly the last committed
// token for every page (page conservation extended to the map itself).
package ftl

import (
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MapConfig enables and parameterizes the FMMU-style map unit. A nil
// *MapConfig on Config selects flat mapping: no map unit is built, no
// map IO exists, and the run is byte-identical to builds without this
// file.
type MapConfig struct {
	// Entries is the DRAM map-cache capacity in translation pages
	// (default 64).
	Entries int
	// Eviction selects the cache replacement policy: "clock" (default)
	// or "lru".
	Eviction string
	// EntriesPerPage is how many LPN translations one flash page holds
	// (default PageSize/8: 8-byte PPN entries). Unit tests shrink it to
	// exercise many translation pages on tiny geometries.
	EntriesPerPage int
	// WritebackBatch flushes dirty translation pages once this many are
	// dirty at once (default 8). Dirty pages below the threshold stay in
	// DRAM, as on a real device between periodic syncs.
	WritebackBatch int
}

func (c MapConfig) withDefaults(geo flash.Geometry) MapConfig {
	if c.Entries <= 0 {
		c.Entries = 64
	}
	if c.Eviction == "" {
		c.Eviction = "clock"
	}
	if c.Eviction != "clock" && c.Eviction != "lru" {
		panic(fmt.Sprintf("ftl: unknown map eviction policy %q (want clock or lru)", c.Eviction))
	}
	if c.EntriesPerPage <= 0 {
		c.EntriesPerPage = geo.PageSize / 8
	}
	if c.WritebackBatch <= 0 {
		c.WritebackBatch = 8
	}
	return c
}

// MapStats aggregates map-unit activity over a run.
type MapStats struct {
	Lookups          int64 // translation-page lookups (distinct pages per request)
	Hits             int64 // lookups served from the DRAM cache
	Misses           int64 // lookups that had to wait for flash
	SharedMisses     int64 // misses coalesced onto an already in-flight fetch
	Fetches          int64 // map-read flash operations issued
	Writebacks       int64 // map-write flash operations issued (all causes)
	ForcedWritebacks int64 // writebacks forced by dirty eviction
	UpdateAllocs     int64 // dirty entries installed without fetching (write-allocate)
	UpdateBypasses   int64 // updates written back directly with no slot available
	Evictions        int64 // cache entries evicted
	Relocations      int64 // live translation pages moved by map-block cleaning
	CleanRounds      int64 // map-block cleaning rounds
	MapErases        int64 // map blocks erased by cleaning
}

// MissRate returns Misses/Lookups, zero when no lookups happened.
func (s MapStats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// MapSink receives the map unit's lifecycle hooks for invariant
// checking, mirroring CheckSink: MapCommitted is the authoritative
// record of what every translation page's flash home should contain.
type MapSink interface {
	// MapResident records translation page t entering the cache at
	// version ver (fetch completion, write-allocate, or warmup touch).
	MapResident(t int, ver int64, dirty bool)
	// MapHit records a lookup served from the cache at version ver.
	MapHit(t int, ver int64)
	// MapMiss records a lookup that found t absent (or mid-fetch).
	MapMiss(t int)
	// MapDirtied records an in-cache update advancing t to version ver.
	MapDirtied(t int, ver int64)
	// MapEvicted records t leaving the cache; dirty entries must later
	// be committed at a version ≥ theirs or the ledger flags a lost
	// writeback.
	MapEvicted(t int, ver int64, dirty bool)
	// MapCommitted records a map-write (writeback or cleaning
	// relocation) programming token tok for t at version ver.
	MapCommitted(t int, ver int64, tok flash.Token)
}

// MapTokenFor derives the content token programmed into flash for a
// (translation page, version) pair. The constants differ from TokenFor
// so map tokens never collide with host-data tokens.
func MapTokenFor(t int, version int64) flash.Token {
	x := uint64(t)*0xD6E8FEB86659FD93 + uint64(version)*0x9E3779B97F4A7C15 + 0xA5A5A5A5A5A5A5A5
	x ^= x >> 29
	return flash.Token(x)
}

const mapSlotEmpty = -1

// mapSlot is one DRAM map-cache entry.
type mapSlot struct {
	t     int   // translation page index, mapSlotEmpty when free
	dirty bool  // DRAM version ahead of the flash home
	ref   bool  // CLOCK second-chance bit
	use   int64 // LRU recency stamp
	pend  bool  // fetch in flight into this slot; not evictable
}

// mapBlock is one flash block carved out for translation pages.
type mapBlock struct {
	id        controller.ChipID
	plane     int
	block     int
	next      int // next append page index
	live      int // translation pages whose current flash home is here
	fetchRefs int // in-flight map reads pinning this block against erase
	writes    int // in-flight map programs into this block
}

// wbReq is one queued translation-page writeback.
type wbReq struct {
	t   int
	ver int64
}

// mapUnit is the FMMU model: directory, cache, writeback queue, and
// map-block cleaner. All state mutation happens inside engine event
// callbacks, in deterministic order.
type mapUnit struct {
	f   *FTL
	cfg MapConfig

	numT    int // translation pages covering the logical space
	perPage int

	// Cache.
	slots     []mapSlot
	where     map[int]int // t -> slot index (present also while pend)
	freeSlots []int       // LIFO; seeded so slot 0 pops first
	hand      int         // CLOCK sweep position
	useTick   int64       // LRU stamp source

	// Directory: where each translation page lives on flash and which
	// content version is current (DRAM) vs committed (flash).
	loc      []int64 // t -> phys page index of the flash home
	homeB    []int   // t -> index into blocks of the flash home
	ver      []int64 // t -> current content version
	flashVer []int64 // t -> version last committed to flash

	// Map-block region.
	blocks  []mapBlock
	activeB int // current append block
	spareB  int // erased block reserved as the cleaning destination

	// Waiters.
	fetching    map[int][]func() // t -> lookups coalesced onto the in-flight fetch
	wbPending   map[int]int      // t -> in-flight map programs for t
	wbWaiters   map[int][]func() // t -> continuations parked until wbPending[t]==0
	slotWaiters []func()         // lookups parked until any fetch lands

	// Writeback and cleaning.
	dirtyCount int
	wbQueue    []wbReq
	cleaning   bool
	cleanSpan  trace.SpanID

	stats MapStats
	sink  MapSink
}

// tIndex maps an LPN to its translation page.
func (m *mapUnit) tIndex(lpn int64) int { return int(lpn / int64(m.perPage)) }

// newMapUnit carves the map-block region out of the free pools, installs
// the initial directory (every translation page programmed at version 0,
// consuming no simulated time — the device ships formatted), and returns
// the unit. Called from New before any host IO exists, so the carve is
// deterministic for a given config.
func newMapUnit(f *FTL, cfg MapConfig) *mapUnit {
	cfg = cfg.withDefaults(f.geo)
	m := &mapUnit{
		f:         f,
		cfg:       cfg,
		perPage:   cfg.EntriesPerPage,
		where:     make(map[int]int),
		fetching:  make(map[int][]func()),
		wbPending: make(map[int]int),
		wbWaiters: make(map[int][]func()),
	}
	m.numT = int((f.numLPNs + int64(m.perPage) - 1) / int64(m.perPage))
	m.slots = make([]mapSlot, cfg.Entries)
	for i := range m.slots {
		m.slots[i].t = mapSlotEmpty
	}
	for i := cfg.Entries - 1; i >= 0; i-- {
		m.freeSlots = append(m.freeSlots, i)
	}
	m.loc = make([]int64, m.numT)
	m.homeB = make([]int, m.numT)
	m.ver = make([]int64, m.numT)
	m.flashVer = make([]int64, m.numT)
	m.carveBlocks()
	m.installDirectory()
	return m
}

// carveBlocks removes the map region from the host free pools:
// ceil(numT/pagesPerBlock) directory blocks plus two overwrite blocks
// plus one spare (the cleaning destination), spread round-robin across
// chips and planes so map IO exercises the whole fabric. Carved blocks
// are marked Full+mapOwned: GC skips them, FreeBlockFraction honestly
// excludes them, and CheckConsistency passes because their validCount
// stays zero (translation pages never enter p2l).
func (m *mapUnit) carveBlocks() {
	geo := m.f.geo
	needed := (m.numT+geo.PagesPerBlock-1)/geo.PagesPerBlock + 3
	numChips := m.f.channels * m.f.ways
	for i := 0; i < needed; i++ {
		chipIdx := i % numChips
		id := controller.ChipID{Channel: chipIdx / m.f.ways, Way: chipIdx % m.f.ways}
		plane := (i / numChips) % geo.Planes
		ps := m.f.planeAt(id, plane)
		n := len(ps.free)
		if n == 0 {
			panic(fmt.Sprintf("ftl: map region does not fit: chip %v plane %d has no free block for map block %d/%d (shrink the footprint or EntriesPerPage)", id, plane, i, needed))
		}
		b := ps.free[n-1]
		ps.free = ps.free[:n-1]
		bi := &ps.blocks[b]
		bi.state = BlockFull
		bi.mapOwned = true
		m.blocks = append(m.blocks, mapBlock{id: id, plane: plane, block: b})
	}
	m.spareB = len(m.blocks) - 1
}

// installDirectory programs every translation page at version 0 into the
// carved blocks sequentially, instantly (InstallPage, like warmup).
func (m *mapUnit) installDirectory() {
	geo := m.f.geo
	bi := 0
	for t := 0; t < m.numT; t++ {
		if m.blocks[bi].next == geo.PagesPerBlock {
			bi++
		}
		if bi >= m.spareB {
			panic("ftl: map directory overflowed into the spare block")
		}
		blk := &m.blocks[bi]
		addr := flash.PPA{Plane: blk.plane, Block: blk.block, Page: blk.next}
		m.f.fab.Grid().Chip(blk.id).InstallPage(addr, MapTokenFor(t, 0))
		m.loc[t] = physIndex(geo, m.f.ways, blk.id, addr)
		m.homeB[t] = bi
		blk.next++
		blk.live++
	}
	m.activeB = bi
}

// ---- cache ----

func (m *mapUnit) touchSlot(si int) {
	m.slots[si].ref = true
	m.useTick++
	m.slots[si].use = m.useTick
}

// grabSlot returns a free or evictable slot, or false when every slot
// has a fetch in flight. Eviction is policy-driven; a dirty victim
// queues an immediate writeback of its version on the way out.
func (m *mapUnit) grabSlot() (int, bool) {
	if n := len(m.freeSlots); n > 0 {
		si := m.freeSlots[n-1]
		m.freeSlots = m.freeSlots[:n-1]
		return si, true
	}
	switch m.cfg.Eviction {
	case "lru":
		best, bestUse := -1, int64(0)
		for si := range m.slots {
			sl := &m.slots[si]
			if sl.pend {
				continue
			}
			if best < 0 || sl.use < bestUse {
				best, bestUse = si, sl.use
			}
		}
		if best < 0 {
			return 0, false
		}
		m.evict(best)
		return best, true
	default: // clock
		for sweep := 0; sweep < 2*len(m.slots); sweep++ {
			si := m.hand
			m.hand = (m.hand + 1) % len(m.slots)
			sl := &m.slots[si]
			if sl.pend {
				continue
			}
			if sl.ref {
				sl.ref = false
				continue
			}
			m.evict(si)
			return si, true
		}
		return 0, false
	}
}

func (m *mapUnit) evict(si int) {
	sl := &m.slots[si]
	t := sl.t
	wasDirty := sl.dirty
	if wasDirty {
		m.stats.ForcedWritebacks++
		m.wbQueue = append(m.wbQueue, wbReq{t: t, ver: m.ver[t]})
		m.dirtyCount--
	}
	m.stats.Evictions++
	if m.sink != nil {
		m.sink.MapEvicted(t, m.ver[t], wasDirty)
	}
	delete(m.where, t)
	sl.t, sl.dirty, sl.ref, sl.pend = mapSlotEmpty, false, false, false
	if wasDirty {
		m.drainWB()
	}
}

// install makes t resident in slot si.
func (m *mapUnit) install(si, t int, dirty bool) {
	sl := &m.slots[si]
	sl.t, sl.dirty, sl.pend = t, dirty, false
	m.where[t] = si
	m.touchSlot(si)
	if dirty {
		m.dirtyCount++
	}
	if m.sink != nil {
		m.sink.MapResident(t, m.ver[t], dirty)
	}
}

// ---- lookup / demand paging ----

// tpages returns the distinct translation pages backing lpns, in
// first-touch order.
func (m *mapUnit) tpages(lpns []int64) []int {
	ts := make([]int, 0, len(lpns))
	for _, lpn := range lpns {
		t := m.tIndex(lpn)
		dup := false
		for _, u := range ts {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			ts = append(ts, t)
		}
	}
	return ts
}

// translate ensures every translation page backing lpns is resident,
// fetching missing ones from flash, then runs done. Pages are resolved
// sequentially within one request — only the lookup instant needs
// residency (the entry may be evicted again right after), which is what
// makes a one-entry cache workable — and concurrently across requests:
// a miss parks only its own request, so independent host requests never
// serialize behind one map fetch (miss-under-miss).
func (m *mapUnit) translate(lpns []int64, done func()) {
	m.lookupAll(m.tpages(lpns), done)
}

func (m *mapUnit) lookupAll(ts []int, done func()) {
	for len(ts) > 0 {
		t := ts[0]
		now := m.f.eng.Now()
		m.stats.Lookups++
		if si, ok := m.where[t]; ok && !m.slots[si].pend {
			m.stats.Hits++
			m.touchSlot(si)
			m.f.tel.MapHit(now)
			if m.sink != nil {
				m.sink.MapHit(t, m.ver[t])
			}
			ts = ts[1:]
			continue
		}
		m.stats.Misses++
		m.f.tel.MapMiss(now)
		if m.sink != nil {
			m.sink.MapMiss(t)
		}
		rest := ts[1:]
		cont := func() { m.lookupAll(rest, done) }
		if _, ok := m.where[t]; ok {
			// Fetch already in flight: coalesce onto it.
			m.stats.SharedMisses++
			m.fetching[t] = append(m.fetching[t], cont)
			return
		}
		m.startFetch(t, cont)
		return
	}
	done()
}

// resolveAgain re-resolves t after a wait (slot or writeback); the world
// may have changed while parked. The original lookup already counted its
// miss, so this path never double-counts.
func (m *mapUnit) resolveAgain(t int, cont func()) {
	if si, ok := m.where[t]; ok {
		if m.slots[si].pend {
			m.fetching[t] = append(m.fetching[t], cont)
			return
		}
		m.touchSlot(si)
		cont()
		return
	}
	m.startFetch(t, cont)
}

// startFetch demand-pages translation page t in from its flash home.
func (m *mapUnit) startFetch(t int, cont func()) {
	if m.wbPending[t] > 0 {
		// A program for this page is still in the fabric; the chip
		// commits page state only when the op arrives, so a read racing
		// it could reach an unprogrammed page. Park until it lands.
		m.wbWaiters[t] = append(m.wbWaiters[t], func() { m.resolveAgain(t, cont) })
		return
	}
	si, ok := m.grabSlot()
	if !ok {
		// Every slot has a fetch in flight: wait for one to land.
		m.slotWaiters = append(m.slotWaiters, func() { m.resolveAgain(t, cont) })
		return
	}
	sl := &m.slots[si]
	sl.t, sl.pend, sl.dirty, sl.ref = t, true, false, false
	m.where[t] = si
	m.stats.Fetches++
	hb := m.homeB[t]
	m.blocks[hb].fetchRefs++
	_, addr := physDecode(m.f.geo, m.f.ways, m.loc[t])
	var span trace.SpanID
	if m.f.trc.Enabled() {
		span = m.f.trc.BeginSpan("ftl", "map-fetch", trace.KV{K: "tpage", V: t})
	}
	m.f.fab.Read(m.blocks[hb].id, []flash.PPA{addr}, func() {
		m.f.trc.EndSpan(span)
		m.blocks[hb].fetchRefs--
		// The slot was reserved for t; pend kept it from being evicted
		// or reused while the read was in flight.
		sl := &m.slots[si]
		sl.pend = false
		m.touchSlot(si)
		// An update may have dirtied the entry mid-fetch (noteUpdate on
		// a pend slot); MapResident reports the current version either
		// way.
		if m.sink != nil {
			m.sink.MapResident(t, m.ver[t], sl.dirty)
		}
		waiters := m.fetching[t]
		delete(m.fetching, t)
		cont()
		for _, w := range waiters {
			w()
		}
		m.wakeSlotWaiters()
	})
}

func (m *mapUnit) wakeSlotWaiters() {
	if len(m.slotWaiters) == 0 {
		return
	}
	ws := m.slotWaiters
	m.slotWaiters = nil
	for _, w := range ws {
		w()
	}
}

// warmTouch makes a translation page resident during instant warmup, as
// a clean entry: warmup models a clean mount where the flash directory
// already matches the installed state, so no version bump and no
// writeback traffic (and an effectively infinite cache then behaves
// exactly like flat mapping on a read-only workload).
func (m *mapUnit) warmTouch(lpn int64) {
	t := m.tIndex(lpn)
	if si, ok := m.where[t]; ok {
		m.touchSlot(si)
		return
	}
	si, ok := m.grabSlot()
	if !ok {
		return // every slot mid-fetch; cannot happen during warmup
	}
	m.install(si, t, false)
}

// ---- updates and writeback ----

// noteUpdate records a mapping change for lpn: the translation page's
// version advances and its cache entry becomes dirty. A non-resident
// entry is write-allocated dirty without fetching flash content first —
// the FMMU pipelined-update path: a map update overwrites its entry, so
// the stale flash copy contributes nothing and reading it first would be
// pure added latency.
func (m *mapUnit) noteUpdate(lpn int64) {
	t := m.tIndex(lpn)
	m.ver[t]++
	if si, ok := m.where[t]; ok {
		sl := &m.slots[si]
		if !sl.dirty {
			sl.dirty = true
			m.dirtyCount++
		}
		m.touchSlot(si)
		// A pend slot has not announced residency yet; the fetch
		// completion will report the dirty install instead.
		if !sl.pend && m.sink != nil {
			m.sink.MapDirtied(t, m.ver[t])
		}
		m.maybeFlush()
		return
	}
	si, ok := m.grabSlot()
	if !ok {
		// Every slot is mid-fetch: bypass the cache and queue the
		// writeback directly. The update itself already landed in the
		// authoritative tables.
		m.stats.UpdateBypasses++
		m.wbQueue = append(m.wbQueue, wbReq{t: t, ver: m.ver[t]})
		m.drainWB()
		return
	}
	m.stats.UpdateAllocs++
	m.install(si, t, true)
	m.maybeFlush()
}

func (m *mapUnit) maybeFlush() {
	if m.dirtyCount < m.cfg.WritebackBatch {
		return
	}
	m.flushDirty()
}

// flushDirty queues a batched writeback of every dirty resident entry,
// lowest translation page first (deterministic order), marking them
// clean at queue time: the queued version is exactly what the flush will
// commit, and a later update simply re-dirties the entry at a higher
// version.
func (m *mapUnit) flushDirty() {
	var ts []int
	for si := range m.slots {
		sl := &m.slots[si]
		if sl.t != mapSlotEmpty && sl.dirty {
			ts = append(ts, sl.t)
		}
	}
	sort.Ints(ts)
	for _, t := range ts {
		m.wbQueue = append(m.wbQueue, wbReq{t: t, ver: m.ver[t]})
		sl := &m.slots[m.where[t]]
		sl.dirty = false
		m.dirtyCount--
	}
	m.drainWB()
}

// drainWB issues queued translation-page writebacks in order, one flash
// program per page (map pages in one block share a plane, so multi-plane
// batching is structurally impossible). When the map region has no
// appendable page left it starts a cleaning round and resumes when the
// round frees a block.
func (m *mapUnit) drainWB() {
	for len(m.wbQueue) > 0 {
		req := m.wbQueue[0]
		if req.ver <= m.flashVer[req.t] {
			// Superseded: an equal-or-newer version already committed.
			m.wbQueue = m.wbQueue[1:]
			continue
		}
		bi, page, ok := m.mapAlloc()
		if !ok {
			m.startCleaning()
			return
		}
		m.wbQueue = m.wbQueue[1:]
		m.commitWB(req, bi, page)
	}
}

// mapAlloc returns the map block index and page for the next append, or
// false when every non-spare block is full.
func (m *mapUnit) mapAlloc() (int, int, bool) {
	if m.blocks[m.activeB].next < m.f.geo.PagesPerBlock {
		p := m.blocks[m.activeB].next
		m.blocks[m.activeB].next++
		return m.activeB, p, true
	}
	for bi := range m.blocks {
		if bi == m.spareB {
			continue
		}
		if m.blocks[bi].next == 0 {
			m.activeB = bi
			m.blocks[bi].next = 1
			return bi, 0, true
		}
	}
	return 0, 0, false
}

// commitWB programs one translation page to its new home. Bookkeeping —
// directory move, version commit, ledger hook — happens at issue time:
// the chip commits page state when the op arrives, and wbPending parks
// any fetch of t until the program lands, so no read can observe the
// window in between.
func (m *mapUnit) commitWB(req wbReq, bi, page int) {
	t := req.t
	blk := &m.blocks[bi]
	addr := flash.PPA{Plane: blk.plane, Block: blk.block, Page: page}
	tok := MapTokenFor(t, req.ver)
	m.blocks[m.homeB[t]].live--
	m.homeB[t] = bi
	blk.live++
	m.loc[t] = physIndex(m.f.geo, m.f.ways, blk.id, addr)
	m.flashVer[t] = req.ver
	m.stats.Writebacks++
	if m.sink != nil {
		m.sink.MapCommitted(t, req.ver, tok)
	}
	m.f.tel.Event("map-writeback", m.f.eng.Now())
	m.issueMapWrite(bi, addr, t, tok)
}

// issueMapWrite sends one map program into the fabric, tracking the
// in-flight window that gates fetches of t and the erase of block bi.
func (m *mapUnit) issueMapWrite(bi int, addr flash.PPA, t int, tok flash.Token) {
	m.wbPending[t]++
	m.blocks[bi].writes++
	m.f.fab.Write(m.blocks[bi].id, []flash.ProgramOp{{Addr: addr, Token: tok}}, func() {
		m.blocks[bi].writes--
		m.wbPending[t]--
		if m.wbPending[t] <= 0 {
			delete(m.wbPending, t)
			ws := m.wbWaiters[t]
			delete(m.wbWaiters, t)
			for _, w := range ws {
				w()
			}
		}
	})
}

// ---- map-block cleaning ----

// startCleaning reclaims map-region space: the full block with the
// fewest live translation pages is compacted into the reserved spare,
// erased, and becomes the new spare; the old spare joins the append
// rotation. One round runs at a time; drainWB resumes when it finishes.
func (m *mapUnit) startCleaning() {
	if m.cleaning {
		return
	}
	m.cleaning = true
	m.stats.CleanRounds++
	victim := -1
	for bi := range m.blocks {
		if bi == m.spareB || m.blocks[bi].next < m.f.geo.PagesPerBlock {
			continue
		}
		if victim < 0 || m.blocks[bi].live < m.blocks[victim].live {
			victim = bi
		}
	}
	if victim < 0 || m.blocks[victim].live >= m.f.geo.PagesPerBlock {
		panic("ftl: map region wedged — every map block fully live (region sized too small)")
	}
	if m.f.trc.Enabled() {
		m.cleanSpan = m.f.trc.BeginSpan("ftl", "map-clean",
			trace.KV{K: "victim", V: victim},
			trace.KV{K: "live", V: m.blocks[victim].live})
	}
	var ts []int
	for t := 0; t < m.numT; t++ {
		if m.homeB[t] == victim {
			ts = append(ts, t)
		}
	}
	m.relocate(victim, ts, 0)
}

// relocate moves the victim's live translation pages into the spare, one
// read-then-program chain at a time, then erases the victim. Pages whose
// own writeback is mid-flight are waited on (the writeback rehomes them
// off the victim anyway); pages rehomed since the scan are skipped.
func (m *mapUnit) relocate(victim int, ts []int, i int) {
	for i < len(ts) && m.homeB[ts[i]] != victim {
		i++
	}
	if i >= len(ts) {
		m.eraseMapBlock(victim)
		return
	}
	t := ts[i]
	if m.wbPending[t] > 0 {
		m.wbWaiters[t] = append(m.wbWaiters[t], func() { m.relocate(victim, ts, i) })
		return
	}
	_, src := physDecode(m.f.geo, m.f.ways, m.loc[t])
	m.blocks[victim].fetchRefs++
	m.f.fab.Read(m.blocks[victim].id, []flash.PPA{src}, func() {
		m.blocks[victim].fetchRefs--
		if m.homeB[t] != victim {
			// A writeback rehomed the page while the read was queued.
			m.relocate(victim, ts, i+1)
			return
		}
		sp := &m.blocks[m.spareB]
		if sp.next >= m.f.geo.PagesPerBlock {
			panic("ftl: map spare block overflowed during cleaning")
		}
		page := sp.next
		sp.next++
		addr := flash.PPA{Plane: sp.plane, Block: sp.block, Page: page}
		ver := m.flashVer[t]
		tok := MapTokenFor(t, ver)
		m.blocks[victim].live--
		m.homeB[t] = m.spareB
		sp.live++
		m.loc[t] = physIndex(m.f.geo, m.f.ways, sp.id, addr)
		m.stats.Relocations++
		if m.sink != nil {
			// Same version, new home: the ledger's monotonicity rule is ≥.
			m.sink.MapCommitted(t, ver, tok)
		}
		m.issueMapWrite(m.spareB, addr, t, tok)
		m.relocate(victim, ts, i+1)
	})
}

// eraseMapBlock erases a fully compacted victim once nothing pins it:
// in-flight fetches of already-rehomed pages may still target it, and
// its own last appends may still be in the fabric. Polls like
// eraseVictim does for host reads.
func (m *mapUnit) eraseMapBlock(victim int) {
	blk := &m.blocks[victim]
	if blk.live != 0 {
		panic(fmt.Sprintf("ftl: erasing map block with %d live pages", blk.live))
	}
	if blk.fetchRefs > 0 || blk.writes > 0 {
		m.f.eng.Schedule(20*sim.Microsecond, func() { m.eraseMapBlock(victim) })
		return
	}
	m.f.fab.Erase(blk.id, []flash.PPA{{Plane: blk.plane, Block: blk.block}}, func() {
		m.finishCleaning(victim)
	})
}

func (m *mapUnit) finishCleaning(victim int) {
	m.blocks[victim].next = 0
	m.stats.MapErases++
	oldSpare := m.spareB
	m.spareB = victim
	// The old spare holds the relocated pages; keep appending into its
	// free tail. If relocation filled it completely, mapAlloc falls back
	// to the next erased block (or the next cleaning round).
	if m.blocks[oldSpare].next < m.f.geo.PagesPerBlock {
		m.activeB = oldSpare
	}
	m.cleaning = false
	m.f.trc.EndSpan(m.cleanSpan)
	m.cleanSpan = trace.SpanID{}
	m.drainWB()
}

// ---- introspection / checker attach points ----

// MapEnabled reports whether the fmmu map unit is active.
func (f *FTL) MapEnabled() bool { return f.mapu != nil }

// MapStats returns a copy of the map unit's counters (zero when flat).
func (f *FTL) MapStats() MapStats {
	if f.mapu == nil {
		return MapStats{}
	}
	return f.mapu.stats
}

// NumTranslationPages returns the translation-page count (zero when
// flat).
func (f *FTL) NumTranslationPages() int {
	if f.mapu == nil {
		return 0
	}
	return f.mapu.numT
}

// MapCacheEntries returns the configured map-cache capacity (zero when
// flat).
func (f *FTL) MapCacheEntries() int {
	if f.mapu == nil {
		return 0
	}
	return f.mapu.cfg.Entries
}

// MapFlashToken probes the flash content at translation page t's current
// home — the checker's conservation witness.
func (f *FTL) MapFlashToken(t int) (flash.Token, bool) {
	m := f.mapu
	if m == nil || t < 0 || t >= m.numT {
		return 0, false
	}
	id, addr := physDecode(f.geo, f.ways, m.loc[t])
	return f.fab.Grid().Chip(id).ContentAt(addr), true
}

// SetMapChecker attaches a map-ledger sink (nil detaches) and replays
// the current directory and residency so the mirror starts aligned:
// every translation page's committed version, then every resident entry.
func (f *FTL) SetMapChecker(s MapSink) {
	m := f.mapu
	if m == nil {
		return
	}
	m.sink = s
	if s == nil {
		return
	}
	for t := 0; t < m.numT; t++ {
		s.MapCommitted(t, m.flashVer[t], MapTokenFor(t, m.flashVer[t]))
	}
	for si := range m.slots {
		sl := &m.slots[si]
		if sl.t != mapSlotEmpty && !sl.pend {
			s.MapResident(sl.t, m.ver[sl.t], sl.dirty)
		}
	}
}

// MapIdle returns an error while the map unit still has work in flight;
// the drain checker calls it after the engine empties. Dirty resident
// entries are fine (they flush on the batch threshold, like a real
// device between syncs) — what must be empty is everything event-driven.
func (f *FTL) MapIdle() error {
	m := f.mapu
	if m == nil {
		return nil
	}
	if n := len(m.fetching); n > 0 {
		return fmt.Errorf("ftl: %d map fetches still in flight", n)
	}
	for si := range m.slots {
		if m.slots[si].t != mapSlotEmpty && m.slots[si].pend {
			return fmt.Errorf("ftl: map slot %d still pending", si)
		}
	}
	if n := len(m.slotWaiters); n > 0 {
		return fmt.Errorf("ftl: %d lookups parked on map slots", n)
	}
	if n := len(m.wbQueue); n > 0 {
		return fmt.Errorf("ftl: %d map writebacks still queued", n)
	}
	if n := len(m.wbPending); n > 0 {
		return fmt.Errorf("ftl: %d translation pages with programs in flight", n)
	}
	if n := len(m.wbWaiters); n > 0 {
		return fmt.Errorf("ftl: %d waiters parked on map writebacks", n)
	}
	if m.cleaning {
		return fmt.Errorf("ftl: map cleaning round still active")
	}
	return nil
}
