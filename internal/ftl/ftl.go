// Package ftl implements the flash translation layer: page-level logical
// to physical mapping, the PCWD/PWCD page allocation policies, and three
// garbage collectors — parallel GC (PaGC, the paper's baseline), a
// semi-preemptive GC, and the paper's Spatial GC, which partitions the
// ways into an I/O group and a GC group so collection runs concurrently
// with host I/O on physically disjoint flash (Sec VI).
//
// The FTL talks to the flash exclusively through a controller.Fabric, so
// the identical mapping and GC logic runs against every architecture and
// all performance differences come from the interconnect.
package ftl

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// GCMode selects the garbage collection engine.
type GCMode int

// GC modes.
const (
	GCNone       GCMode = iota // never collect (for no-GC experiments)
	GCParallel                 // PaGC: all chips collect at once
	GCPreemptive               // semi-preemptive: yields to host I/O between copies
	GCSpatial                  // SpGC: I/O group vs GC group (Sec VI)
)

// String names the mode.
func (m GCMode) String() string {
	switch m {
	case GCNone:
		return "none"
	case GCParallel:
		return "pagc"
	case GCPreemptive:
		return "preemptive"
	case GCSpatial:
		return "spgc"
	default:
		return fmt.Sprintf("gcmode(%d)", int(m))
	}
}

// VictimPolicy selects how GC picks victim blocks.
type VictimPolicy int

// Victim selection policies.
const (
	// VictimGreedy picks the blocks with the fewest valid pages — the
	// paper's baseline policy.
	VictimGreedy VictimPolicy = iota
	// VictimCostBenefit weighs reclaimed space against copy cost and
	// block age: maximize (1-u)/(2u) * age, the classic cleaning policy.
	// Cold blocks are preferred at equal utilization.
	VictimCostBenefit
)

// String names the policy.
func (p VictimPolicy) String() string {
	if p == VictimCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// Config parameterizes the FTL.
type Config struct {
	Policy AllocPolicy
	GCMode GCMode
	// Victim selects the GC victim policy (default greedy, as the paper).
	Victim VictimPolicy
	// GCThreshold triggers collection when the free-block fraction drops
	// below it.
	GCThreshold float64
	// VictimsPerChip is the number of victim blocks selected per
	// participating chip per GC round (the paper doubles this for SpGC so
	// total victims match the baseline).
	VictimsPerChip int
	// GCGroupFraction is the fraction of ways assigned to the GC group
	// under SpGC; the paper uses 1/2 and discusses 1/4 as an ablation.
	GCGroupFraction float64
	// Map enables the FMMU-style demand-paged map unit (map.go); nil
	// selects flat mapping, byte-identical to builds without the unit.
	Map *MapConfig
}

// DefaultConfig returns the paper's FTL parameters.
func DefaultConfig() Config {
	return Config{
		Policy:          PCWD,
		GCMode:          GCParallel,
		GCThreshold:     0.25,
		VictimsPerChip:  1,
		GCGroupFraction: 0.5,
	}
}

const unmapped = int64(-1)

// Stats aggregates FTL activity over a run.
type Stats struct {
	HostReads      int64
	HostWrites     int64
	GCRounds       int64
	GCPagesCopied  int64
	GCBlocksErased int64
	GCTotalTime    sim.Time
	GCLastTime     sim.Time
	WriteStalls    int64
}

// FTL is the translation layer over one fabric.
type FTL struct {
	eng *sim.Engine
	fab controller.Fabric
	cfg Config
	geo flash.Geometry

	channels, ways int
	numLPNs        int64

	l2p    []int64 // lpn -> phys, or unmapped
	p2l    []int64 // phys -> lpn, or unmapped
	planes []*planeState
	alloc  *allocator

	// in-flight write tracking: reads of an LPN with a write in flight
	// wait for the write to land.
	inflightWrites map[int64]int
	writeWaiters   map[int64][]func()

	// writes stalled on allocation space, retried as blocks free up.
	stalled []func() bool

	// reserveBlocks is the pool of free blocks host writes may not consume
	// — headroom that guarantees GC can always allocate copy destinations.
	reserveBlocks int

	outstanding int // host ops in flight (preemptive GC probe)

	gcActive  bool
	gcGroupLo bool // SpGC: true when the low-way half is the GC group
	stats     Stats

	// faults draws program/erase failure outcomes; nil means no injection.
	faults *fault.Injector

	// trc records GC-round and write-stall spans; nil (the default)
	// disables tracing with no overhead.
	trc    *trace.Recorder
	gcSpan trace.SpanID

	// tel feeds GC activity windows and per-request stall attribution;
	// nil (the default) disables telemetry with no overhead.
	tel *telemetry.Collector

	// sink receives page-commit notifications for invariant checking; nil
	// (the default) disables the hook with no overhead.
	sink CheckSink

	// mapu is the FMMU map unit; nil selects flat mapping with zero
	// translation overhead (map.go).
	mapu *mapUnit
}

// CheckSink receives the FTL's authoritative record of what every LPN
// should contain: one PageWritten per committed mapping update, covering
// host writes, warm-up installs, and fault-remapped reissues. The
// invariant checker uses it to verify page conservation at drain.
type CheckSink interface {
	PageWritten(lpn int64, tok flash.Token)
}

// SetChecker attaches a page-commit sink; nil (the default) detaches.
func (f *FTL) SetChecker(s CheckSink) { f.sink = s }

// New builds an FTL over the fabric. numLPNs is the exported logical
// capacity in pages; it must leave over-provisioning headroom below the
// raw capacity or GC cannot make progress.
func New(eng *sim.Engine, fab controller.Fabric, cfg Config, numLPNs int64) *FTL {
	grid := fab.Grid()
	geo := grid.Chip(controller.ChipID{Channel: 0, Way: 0}).Geometry()
	raw := int64(grid.NumChips()) * int64(geo.PagesPerChip())
	if numLPNs <= 0 || numLPNs >= raw {
		panic(fmt.Sprintf("ftl: logical capacity %d must be in (0, %d)", numLPNs, raw))
	}
	if cfg.GCMode == GCSpatial && (cfg.GCGroupFraction <= 0 || cfg.GCGroupFraction >= 1) {
		panic("ftl: GCGroupFraction must be in (0,1)")
	}
	f := &FTL{
		eng:            eng,
		fab:            fab,
		cfg:            cfg,
		geo:            geo,
		channels:       grid.Channels,
		ways:           grid.Ways,
		numLPNs:        numLPNs,
		l2p:            make([]int64, numLPNs),
		p2l:            make([]int64, raw),
		planes:         make([]*planeState, grid.NumChips()*geo.Planes),
		alloc:          newAllocator(cfg.Policy, grid.Channels, grid.Ways, geo.Planes),
		inflightWrites: make(map[int64]int),
		writeWaiters:   make(map[int64][]func()),
		gcGroupLo:      false,                     // first SpGC round collects the high half
		reserveBlocks:  grid.Channels * grid.Ways, // one block per chip
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for i := range f.planes {
		f.planes[i] = newPlaneState(geo.BlocksPerPlane, geo.PagesPerBlock)
	}
	if cfg.Map != nil {
		f.mapu = newMapUnit(f, *cfg.Map)
	}
	return f
}

// Stats returns a copy of the accumulated statistics.
func (f *FTL) Stats() Stats { return f.stats }

// SetFaults attaches the fault injector; nil disables injection.
func (f *FTL) SetFaults(inj *fault.Injector) { f.faults = inj }

// SetTracer attaches a trace recorder for GC-round and write-stall spans;
// nil (the default) detaches.
func (f *FTL) SetTracer(t *trace.Recorder) { f.trc = t }

// SetTelemetry attaches a telemetry collector for GC activity windows
// and stall attribution; nil (the default) detaches.
func (f *FTL) SetTelemetry(c *telemetry.Collector) { f.tel = c }

// chipKey identifies a chip in the injector's per-chip quota maps.
func (f *FTL) chipKey(id controller.ChipID) uint64 {
	return uint64(id.Channel*f.ways + id.Way)
}

// ras returns the RAS counters (non-nil only when an injector with RAS
// accounting is attached). Fault-handling paths only run after a draw
// fired, which requires a live injector, so they may use it directly.
func (f *FTL) ras() *stats.RAS { return f.faults.RAS() }

// RetiredBlocks counts blocks permanently removed from service.
func (f *FTL) RetiredBlocks() int {
	n := 0
	for _, ps := range f.planes {
		for b := range ps.blocks {
			if ps.blocks[b].bad {
				n++
			}
		}
	}
	return n
}

// NumLPNs returns the exported logical capacity in pages.
func (f *FTL) NumLPNs() int64 { return f.numLPNs }

// GCActive reports whether a collection round is in progress.
func (f *FTL) GCActive() bool { return f.gcActive }

// Outstanding returns host operations in flight.
func (f *FTL) Outstanding() int { return f.outstanding }

// InflightWriteLPNs returns the number of LPNs with writes still in
// flight — nonzero after a drained run indicates a leaked reference.
func (f *FTL) InflightWriteLPNs() int { return len(f.inflightWrites) }

// StalledWrites returns writes parked on allocation space — nonzero after
// a drained run indicates the device wedged out of space.
func (f *FTL) StalledWrites() int { return len(f.stalled) }

func (f *FTL) planeAt(id controller.ChipID, plane int) *planeState {
	chipIdx := id.Channel*f.ways + id.Way
	return f.planes[chipIdx*f.geo.Planes+plane]
}

func (f *FTL) checkLPN(lpn int64) {
	if lpn < 0 || lpn >= f.numLPNs {
		panic(fmt.Sprintf("ftl: LPN %d outside [0,%d)", lpn, f.numLPNs))
	}
}

// FreeBlockFraction returns the fraction of all blocks currently erased.
func (f *FTL) FreeBlockFraction() float64 {
	total, free := 0, 0
	for _, ps := range f.planes {
		total += len(ps.blocks)
		free += ps.freeBlocks()
	}
	return float64(free) / float64(total)
}

// TokenFor derives the content token the FTL writes for a (lpn, version)
// pair; tests use it to verify end-to-end data integrity.
func TokenFor(lpn int64, version int64) flash.Token {
	x := uint64(lpn)*0x9E3779B97F4A7C15 + uint64(version)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return flash.Token(x)
}

// Map returns the physical location backing an LPN and whether it is
// mapped.
func (f *FTL) Map(lpn int64) (controller.ChipID, flash.PPA, bool) {
	f.checkLPN(lpn)
	phys := f.l2p[lpn]
	if phys == unmapped {
		return controller.ChipID{}, flash.PPA{}, false
	}
	id, addr := physDecode(f.geo, f.ways, phys)
	return id, addr, true
}

// warmupSlot picks an allocation slot for instant warm-up writes. Like
// host writes it must not strand the device without erased blocks: slots
// with an open active block are preferred, and a new block is opened only
// while the GC reserve stays intact. Without this, warm-up churn would
// open one partial block in every plane and leave zero erased blocks —
// a state from which GC cannot allocate a single copy destination.
func (f *FTL) warmupSlot() (slot, bool) {
	if s, ok := f.alloc.next(func(s slot) bool { return f.planeAt(s.chip, s.plane).active >= 0 }); ok {
		return s, true
	}
	return f.alloc.next(func(s slot) bool {
		ps := f.planeAt(s.chip, s.plane)
		return len(ps.free) > 0 && f.totalFreeBlocks() > f.reserveBlocks
	})
}

// Install instantly maps and programs an LPN for pre-run warmup, consuming
// no simulated time. It uses the normal allocator so warmed-up layouts
// match what the policy would have produced.
func (f *FTL) Install(lpn int64, tok flash.Token) {
	f.checkLPN(lpn)
	if f.l2p[lpn] != unmapped {
		panic(fmt.Sprintf("ftl: Install over mapped LPN %d", lpn))
	}
	s, ok := f.alloc.next(func(s slot) bool { return f.planeAt(s.chip, s.plane).hasSpace() })
	if !ok {
		panic("ftl: Install with no space")
	}
	ps := f.planeAt(s.chip, s.plane)
	block, page, err := ps.allocate()
	if err != nil {
		panic(fmt.Sprintf("ftl: Install allocation failed: %v", err))
	}
	addr := flash.PPA{Plane: s.plane, Block: block, Page: page}
	f.fab.Grid().Chip(s.chip).InstallPage(addr, tok)
	phys := physIndex(f.geo, f.ways, s.chip, addr)
	f.l2p[lpn] = phys
	f.p2l[phys] = lpn
	ps.blocks[block].validCount++
	if f.sink != nil {
		f.sink.PageWritten(lpn, tok)
	}
	if f.mapu != nil {
		f.mapu.warmTouch(lpn)
	}
}

// Reinstall instantly overwrites an already-mapped LPN during warmup:
// the old page is invalidated and a fresh one allocated and programmed,
// consuming no simulated time. Warm-up churn with Reinstall produces the
// realistic block fragmentation GC experiments need without simulating
// millions of writes.
func (f *FTL) Reinstall(lpn int64, tok flash.Token) {
	f.checkLPN(lpn)
	old := f.l2p[lpn]
	if old == unmapped {
		panic(fmt.Sprintf("ftl: Reinstall of unmapped LPN %d", lpn))
	}
	s, ok := f.warmupSlot()
	if !ok {
		panic("ftl: Reinstall with no space (respecting the GC reserve)")
	}
	f.invalidatePhys(old)
	ps := f.planeAt(s.chip, s.plane)
	block, page, err := ps.allocate()
	if err != nil {
		panic(fmt.Sprintf("ftl: Reinstall allocation failed: %v", err))
	}
	addr := flash.PPA{Plane: s.plane, Block: block, Page: page}
	f.fab.Grid().Chip(s.chip).InstallPage(addr, tok)
	phys := physIndex(f.geo, f.ways, s.chip, addr)
	f.l2p[lpn] = phys
	f.p2l[phys] = lpn
	ps.blocks[block].validCount++
	if f.sink != nil {
		f.sink.PageWritten(lpn, tok)
	}
	if f.mapu != nil {
		f.mapu.warmTouch(lpn)
	}
}

// groupOps batches per-page operations on one chip into multi-plane sets
// with distinct planes.
type chipBatch struct {
	id   controller.ChipID
	ppas []flash.PPA
	toks []flash.Token
	lpns []int64 // parallel to ppas on write batches; nil on reads
}

func batchByChip(locs []controller.ChipID, addrs []flash.PPA, toks []flash.Token, lpns []int64) []chipBatch {
	var batches []chipBatch
	open := make(map[controller.ChipID]int) // chip -> open batch index
	for i := range locs {
		id := locs[i]
		bi, ok := open[id]
		if ok {
			b := &batches[bi]
			conflict := false
			for _, a := range b.ppas {
				if a.Plane == addrs[i].Plane {
					conflict = true
					break
				}
			}
			if !conflict {
				b.ppas = append(b.ppas, addrs[i])
				if toks != nil {
					b.toks = append(b.toks, toks[i])
				}
				if lpns != nil {
					b.lpns = append(b.lpns, lpns[i])
				}
				continue
			}
		}
		nb := chipBatch{id: id, ppas: []flash.PPA{addrs[i]}}
		if toks != nil {
			nb.toks = []flash.Token{toks[i]}
		}
		if lpns != nil {
			nb.lpns = []int64{lpns[i]}
		}
		batches = append(batches, nb)
		open[id] = len(batches) - 1
	}
	return batches
}

// Read services host page reads for the given LPNs, invoking done when
// every page has arrived in DRAM. Reads of LPNs with writes in flight wait
// for those writes; reads of never-written LPNs panic — warm up first.
func (f *FTL) Read(lpns []int64, done func()) {
	f.ReadTracked(lpns, nil, done)
}

// ReadTracked is Read carrying a latency attribution: time the read
// spends parked behind in-flight writes is credited to the stall
// phase, everything from issue onward to flash. att may be nil.
func (f *FTL) ReadTracked(lpns []int64, att *telemetry.Attribution, done func()) {
	if len(lpns) == 0 {
		panic("ftl: empty read")
	}
	f.outstanding++
	f.stats.HostReads += int64(len(lpns))
	wrapped := func() {
		f.outstanding--
		done()
	}
	for _, lpn := range lpns {
		f.checkLPN(lpn)
	}
	f.readWhenStable(append([]int64(nil), lpns...), att, wrapped)
}

// readWhenStable issues the read once no target LPN has a write in
// flight. Every wake-up re-checks the whole set: while the read waited on
// one LPN, a fresh write to another may have started, and issuing then
// would read a page whose program has not reached the chip.
func (f *FTL) readWhenStable(lpns []int64, att *telemetry.Attribution, done func()) {
	for _, lpn := range lpns {
		if f.inflightWrites[lpn] > 0 {
			f.writeWaiters[lpn] = append(f.writeWaiters[lpn], func() {
				f.readWhenStable(lpns, att, done)
			})
			return
		}
	}
	// Any wait behind in-flight writes ends here; un-stalled reads
	// mark at their own issue instant and credit an exact zero.
	att.Mark(telemetry.PhaseStall, f.eng.Now())
	if f.mapu == nil {
		f.issueRead(lpns, done)
		return
	}
	f.mapu.translate(lpns, func() {
		att.Mark(telemetry.PhaseMap, f.eng.Now())
		// A fetch consumed simulated time: a write to one of the target
		// LPNs may have started meanwhile, so re-check stability before
		// issuing (any new wait is credited back to the stall phase).
		for _, lpn := range lpns {
			if f.inflightWrites[lpn] > 0 {
				f.readWhenStable(lpns, att, done)
				return
			}
		}
		f.issueRead(lpns, done)
	})
}

func (f *FTL) issueRead(lpns []int64, done func()) {
	locs := make([]controller.ChipID, len(lpns))
	addrs := make([]flash.PPA, len(lpns))
	for i, lpn := range lpns {
		id, addr, ok := f.Map(lpn)
		if !ok {
			panic(fmt.Sprintf("ftl: read of unmapped LPN %d (warm up the footprint first)", lpn))
		}
		locs[i], addrs[i] = id, addr
	}
	batches := batchByChip(locs, addrs, nil, nil)
	remaining := len(batches)
	for _, b := range batches {
		b := b
		// Pin the blocks under read so GC cannot erase them while the read
		// is still queued behind channel or die contention.
		for i, a := range b.ppas {
			if debugReads && f.fab.Grid().Chip(b.id).PageStateAt(a) != flash.PageProgrammed {
				bi := f.planeAt(b.id, a.Plane).blocks[a.Block]
				phys := physIndex(f.geo, f.ways, b.id, a)
				lpn := f.p2l[phys]
				infl := -1
				if lpn >= 0 {
					infl = f.inflightWrites[lpn]
				}
				var readLPN, readL2P int64 = -1, -1
				for _, cand := range lpns {
					if f.l2p[cand] == phys {
						readLPN, readL2P = cand, f.l2p[cand]
					}
				}
				panic(fmt.Sprintf("ftl: issueRead of erased page %v on %v (batch idx %d, block state=%d valid=%d inflight=%d refs=%d, p2l=%d inflightWrites[p2l]=%d l2p[p2l]=%d readLPN=%d readL2P=%d inflightWrites[readLPN]=%d phys=%d)",
					a, b.id, i, bi.state, bi.validCount, bi.inflight, bi.readRefs, lpn, infl, func() int64 {
						if lpn >= 0 {
							return f.l2p[lpn]
						}
						return -2
					}(), readLPN, readL2P, f.inflightWrites[readLPN], phys))
			}
			f.planeAt(b.id, a.Plane).blocks[a.Block].readRefs++
		}
		f.fab.Read(b.id, b.ppas, func() {
			for _, a := range b.ppas {
				f.planeAt(b.id, a.Plane).blocks[a.Block].readRefs--
			}
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// Write services host page writes: each LPN gets a fresh physical page
// from the allocation policy, the old page (if any) is invalidated, and
// done fires when every program completes. Writes trigger GC when free
// space drops below the threshold; when no space is allocatable (GC group
// restriction or genuine exhaustion) the write stalls until blocks free.
func (f *FTL) Write(lpns []int64, toks []flash.Token, done func()) {
	f.WriteTracked(lpns, toks, nil, done)
}

// WriteTracked is Write carrying a latency attribution: time blocked
// on free-page allocation (GC stalls) is credited to the stall phase,
// program time from the final full allocation onward to flash. att may
// be nil.
func (f *FTL) WriteTracked(lpns []int64, toks []flash.Token, att *telemetry.Attribution, done func()) {
	if len(lpns) == 0 || len(lpns) != len(toks) {
		panic("ftl: malformed write")
	}
	f.outstanding++
	f.stats.HostWrites += int64(len(lpns))
	wrapped := func() {
		f.outstanding--
		done()
	}
	lp := append([]int64(nil), lpns...)
	tk := append([]flash.Token(nil), toks...)
	if f.mapu == nil {
		f.tryWrite(lp, tk, att, wrapped)
		f.maybeTriggerGC()
		return
	}
	// Even an overwrite consults the map first — honest DFTL lookup
	// traffic: the FTL must know the old physical page to invalidate it.
	f.mapu.translate(lp, func() {
		att.Mark(telemetry.PhaseMap, f.eng.Now())
		f.tryWrite(lp, tk, att, wrapped)
		f.maybeTriggerGC()
	})
}

// hostWriteAllowed reports whether host writes may target a slot right
// now: under active SpGC, writes are restricted to the I/O group, and a
// host write may not open a fresh block when doing so would eat into the
// GC reserve — it stalls until collection frees space instead.
func (f *FTL) hostWriteAllowed(s slot) bool {
	ps := f.planeAt(s.chip, s.plane)
	if !ps.hasSpace() {
		return false
	}
	if ps.active < 0 && f.cfg.GCMode != GCNone && f.totalFreeBlocks() <= f.reserveBlocks {
		return false
	}
	if f.gcActive && f.cfg.GCMode == GCSpatial && f.inGCGroup(s.chip.Way) {
		return false
	}
	return true
}

func (f *FTL) tryWrite(lpns []int64, toks []flash.Token, att *telemetry.Attribution, done func()) {
	// Allocate as many pages as space allows; a shortfall commits the
	// allocated prefix and stalls the remainder until blocks free up.
	targets := make([]pendingTarget, 0, len(lpns))
	for range lpns {
		s, ok := f.alloc.next(f.hostWriteAllowed)
		if !ok {
			break
		}
		ps := f.planeAt(s.chip, s.plane)
		block, page, err := ps.allocate()
		if err != nil {
			// Recoverable shortfall (a fault retired the block between the
			// filter's space check and here): stall like any other.
			break
		}
		targets = append(targets, pendingTarget{s: s, block: block, page: page})
	}
	if len(targets) < len(lpns) {
		// Not enough space now: record already-allocated targets as a
		// partial prefix and stall the remainder.
		f.stats.WriteStalls++
		if len(targets) > 0 {
			f.commitWrite(lpns[:len(targets)], toks[:len(targets)], targets, nil)
			lpns = lpns[len(targets):]
			toks = toks[len(targets):]
		}
		lp, tk := lpns, toks
		f.tel.Event("write-stall", f.eng.Now())
		var stallSpan trace.SpanID
		if f.trc.Enabled() {
			stallSpan = f.trc.BeginSpan("ftl", "write-stall", trace.KV{K: "pages", V: len(lp)})
		}
		f.stalled = append(f.stalled, func() bool {
			// retried later; returns true when issued
			f.trc.EndSpan(stallSpan)
			f.tryWrite(lp, tk, att, done)
			return true
		})
		// A stalled write means allocation is out of space right now —
		// collection must run no matter where the threshold sits.
		if !f.gcActive && f.cfg.GCMode != GCNone {
			f.startGC(nil)
		}
		return
	}
	// Full allocation succeeded: any stall epochs end here. For a
	// write whose prefix committed earlier, program time overlapping
	// the stall is credited to the stall (the binding constraint).
	att.Mark(telemetry.PhaseStall, f.eng.Now())
	f.commitWrite(lpns, toks, targets, done)
}

type pendingTarget struct {
	s     slot
	block int
	page  int
}

func (f *FTL) commitWrite(lpns []int64, toks []flash.Token, targets []pendingTarget, done func()) {
	locs := make([]controller.ChipID, len(lpns))
	addrs := make([]flash.PPA, len(lpns))
	for i, tgt := range targets {
		lpn := lpns[i]
		// Invalidate the previous version.
		if old := f.l2p[lpn]; old != unmapped {
			f.invalidatePhys(old)
		}
		addr := flash.PPA{Plane: tgt.s.plane, Block: tgt.block, Page: tgt.page}
		phys := physIndex(f.geo, f.ways, tgt.s.chip, addr)
		if debugReads && f.p2l[phys] != unmapped {
			panic(fmt.Sprintf("ftl: commitWrite double-maps phys %d (old lpn %d, new lpn %d) at %v/%v", phys, f.p2l[phys], lpn, tgt.s.chip, addr))
		}
		f.l2p[lpn] = phys
		f.p2l[phys] = lpn
		ps := f.planeAt(tgt.s.chip, tgt.s.plane)
		ps.blocks[tgt.block].validCount++
		ps.blocks[tgt.block].inflight++
		ps.blocks[tgt.block].lastWrite = int64(f.eng.Now())
		f.inflightWrites[lpn]++
		if f.sink != nil {
			f.sink.PageWritten(lpn, toks[i])
		}
		if f.mapu != nil {
			f.mapu.noteUpdate(lpn)
		}
		locs[i], addrs[i] = tgt.s.chip, addr
	}
	batches := batchByChip(locs, addrs, toks, lpns)
	remaining := len(batches)
	lpnsCopy := append([]int64(nil), lpns...)
	for _, b := range batches {
		b := b
		ops := make([]flash.ProgramOp, len(b.ppas))
		for i := range b.ppas {
			ops[i] = flash.ProgramOp{Addr: b.ppas[i], Token: b.toks[i]}
		}
		f.fab.Write(b.id, ops, func() {
			for _, a := range b.ppas {
				f.planeAt(b.id, a.Plane).blocks[a.Block].inflight--
			}
			// Firmware reads the NAND status register after tPROG: a failed
			// program retires the block and remaps the write. The remap
			// holds its own in-flight reference, so reads of the remapped
			// LPN keep waiting even after this batch releases below.
			if f.faults != nil {
				f.handleProgramFaults(b)
			}
			remaining--
			if remaining == 0 {
				for _, lpn := range lpnsCopy {
					f.releaseInflight(lpn)
				}
				// Liveness backstop: if writes are parked with no collection
				// running (a zero-victim round finished while every Full block
				// still had programs in flight), this completion is the event
				// that unblocks victim selection — restart GC. Healthy runs
				// never take this branch: a stall always leaves gcActive set.
				if len(f.stalled) > 0 && !f.gcActive && f.cfg.GCMode != GCNone {
					f.startGC(nil)
				}
				if done != nil {
					done()
				}
			}
		})
	}
}

// holdInflight adds an in-flight write reference for an LPN, keeping
// reads of it parked.
func (f *FTL) holdInflight(lpn int64) { f.inflightWrites[lpn]++ }

// releaseInflight drops one in-flight reference; the last release wakes
// reads that were waiting on the LPN.
func (f *FTL) releaseInflight(lpn int64) {
	f.inflightWrites[lpn]--
	if f.inflightWrites[lpn] < 0 {
		panic(fmt.Sprintf("ftl: negative inflight count for LPN %d", lpn))
	}
	if f.inflightWrites[lpn] == 0 {
		delete(f.inflightWrites, lpn)
		waiters := f.writeWaiters[lpn]
		delete(f.writeWaiters, lpn)
		for _, w := range waiters {
			w()
		}
	}
}

// handleProgramFaults draws the program-fail outcome for every page of a
// completed write batch. A failed page retires its block; if the page
// still backs its LPN the mapping is undone and the write reissued to a
// fresh block — the bad-block remap path. The stale token left in the
// failed page is harmless: the mapping no longer points there and the
// block never returns to service.
func (f *FTL) handleProgramFaults(b chipBatch) {
	key := f.chipKey(b.id)
	for i, a := range b.ppas {
		if !f.faults.DrawFor(fault.ProgramFail, key) {
			continue
		}
		f.ras().ProgramFails++
		f.tel.Event("program-fail", f.eng.Now())
		f.retireBlock(b.id, a.Plane, a.Block)
		phys := physIndex(f.geo, f.ways, b.id, a)
		lpn := b.lpns[i]
		if f.p2l[phys] != lpn || f.l2p[lpn] != phys {
			// Superseded mid-flight by a host overwrite: the failed page
			// held no current data, retirement alone suffices.
			continue
		}
		f.ras().WriteRemaps++
		f.invalidatePhys(phys)
		f.l2p[lpn] = unmapped
		// Hold the in-flight reference across the reissue so a read of
		// this LPN cannot observe the unmapped window (or a stalled
		// reissue) and panic on an unmapped read.
		f.holdInflight(lpn)
		f.tryWrite([]int64{lpn}, []flash.Token{b.toks[i]}, nil, func() { f.releaseInflight(lpn) })
	}
}

// retireBlock permanently removes a block from service after a program
// or erase failure: it is closed if open, pulled from the free pool, and
// marked bad so no allocator ever hands it out again. Valid pages remain
// readable; GC migrates them off before the block reaches its terminal
// BlockRetired state.
func (f *FTL) retireBlock(id controller.ChipID, plane, block int) {
	ps := f.planeAt(id, plane)
	bi := &ps.blocks[block]
	if bi.bad {
		return
	}
	bi.bad = true
	if ps.active == block {
		ps.active = -1
	}
	if ps.gcActive == block {
		ps.gcActive = -1
	}
	for i, fb := range ps.free {
		if fb == block {
			ps.free = append(ps.free[:i], ps.free[i+1:]...)
			break
		}
	}
	// An open block closes as Full so GC can still select it and migrate
	// its remaining valid pages.
	if bi.state == BlockActive || bi.state == BlockFree {
		bi.state = BlockFull
	}
	if r := f.ras(); r != nil {
		r.RecordRetirement(f.chipKey(id))
	}
}

// invalidatePhys drops the valid count for a superseded physical page.
func (f *FTL) invalidatePhys(phys int64) {
	id, addr := physDecode(f.geo, f.ways, phys)
	ps := f.planeAt(id, addr.Plane)
	ps.blocks[addr.Block].validCount--
	if ps.blocks[addr.Block].validCount < 0 {
		panic("ftl: negative valid count")
	}
	f.p2l[phys] = unmapped
}

// retryStalled reissues writes that stalled on allocation.
func (f *FTL) retryStalled() {
	if len(f.stalled) == 0 {
		return
	}
	pending := f.stalled
	f.stalled = nil
	for _, retry := range pending {
		retry()
	}
}

// CheckConsistency validates l2p/p2l agreement and valid-count accounting;
// tests call it after workloads and GC churn.
func (f *FTL) CheckConsistency() error {
	validByBlock := make(map[int64]int32)
	for lpn, phys := range f.l2p {
		if phys == unmapped {
			continue
		}
		if f.p2l[phys] != int64(lpn) {
			return fmt.Errorf("ftl: l2p[%d]=%d but p2l=%d", lpn, phys, f.p2l[phys])
		}
		id, addr := physDecode(f.geo, f.ways, phys)
		chipIdx := int64(id.Channel*f.ways+id.Way)*int64(f.geo.Planes) + int64(addr.Plane)
		validByBlock[chipIdx*int64(f.geo.BlocksPerPlane)+int64(addr.Block)]++
	}
	for pi, ps := range f.planes {
		for b := range ps.blocks {
			want := validByBlock[int64(pi)*int64(f.geo.BlocksPerPlane)+int64(b)]
			if ps.blocks[b].validCount != want {
				return fmt.Errorf("ftl: plane %d block %d validCount=%d, mapped=%d", pi, b, ps.blocks[b].validCount, want)
			}
			if ps.blocks[b].bad {
				if ps.active == b || ps.gcActive == b {
					return fmt.Errorf("ftl: plane %d retired block %d is an open allocation target", pi, b)
				}
				for _, fb := range ps.free {
					if fb == b {
						return fmt.Errorf("ftl: plane %d retired block %d in free pool", pi, b)
					}
				}
				if ps.blocks[b].state == BlockFree {
					return fmt.Errorf("ftl: plane %d retired block %d marked free", pi, b)
				}
			}
		}
	}
	return nil
}

// debugReads enables an issue-time page-state check in issueRead.
var debugReads = true

// WearStats summarizes block erase counts across the device — the P/E
// cycle distribution whose uniformity the SpGC group swap protects
// (Sec VI-A: groups alternate "to uniformly increase the age of the
// flash memory").
type WearStats struct {
	MinErase  int
	MaxErase  int
	MeanErase float64
	// PerWay is the mean erase count per way-column, exposing any
	// systematic imbalance between the two SpGC groups.
	PerWay []float64
}

// Wear computes the device's current wear statistics from the chips' P/E
// counters.
func (f *FTL) Wear() WearStats {
	ws := WearStats{MinErase: int(^uint(0) >> 1)}
	perWay := make([]float64, f.ways)
	perWayBlocks := make([]int, f.ways)
	var total, blocks int
	f.fab.Grid().ForEach(func(id controller.ChipID, c *flash.Chip) {
		for plane := 0; plane < f.geo.Planes; plane++ {
			for b := 0; b < f.geo.BlocksPerPlane; b++ {
				e := c.EraseCount(plane, b)
				total += e
				blocks++
				perWay[id.Way] += float64(e)
				perWayBlocks[id.Way]++
				if e < ws.MinErase {
					ws.MinErase = e
				}
				if e > ws.MaxErase {
					ws.MaxErase = e
				}
			}
		}
	})
	if blocks > 0 {
		ws.MeanErase = float64(total) / float64(blocks)
	}
	ws.PerWay = perWay
	for w := range ws.PerWay {
		if perWayBlocks[w] > 0 {
			ws.PerWay[w] /= float64(perWayBlocks[w])
		}
	}
	if blocks == 0 {
		ws.MinErase = 0
	}
	return ws
}

// GroupWearGap returns the relative gap between the mean wear of the two
// way-halves: |lo - hi| / max(lo, hi), zero when perfectly level.
func (ws WearStats) GroupWearGap() float64 {
	n := len(ws.PerWay)
	if n < 2 {
		return 0
	}
	var lo, hi float64
	for w, v := range ws.PerWay {
		if w < n/2 {
			lo += v
		} else {
			hi += v
		}
	}
	max := lo
	if hi > max {
		max = hi
	}
	if max == 0 {
		return 0
	}
	diff := lo - hi
	if diff < 0 {
		diff = -diff
	}
	return diff / max
}
