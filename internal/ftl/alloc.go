package ftl

import (
	"errors"
	"fmt"

	"repro/internal/controller"
	"repro/internal/flash"
)

// ErrNoFreeBlock reports that a plane has no erased block to open. It is
// a recoverable condition, not an invariant violation: under injected
// program/erase failures the free pool shrinks as blocks retire, and
// callers stall or retry rather than crash.
var ErrNoFreeBlock = errors.New("ftl: no free block in plane")

// Dim is one striping dimension of the page allocation policy.
type Dim int

// Striping dimensions. The paper's configurations have one die per chip,
// so the D in PCWD/PWCD is degenerate and omitted here.
const (
	DimPlane Dim = iota
	DimChannel
	DimWay
)

// AllocPolicy orders the striping dimensions from fastest-varying to
// slowest. Consecutively written pages advance along the first dimension
// first.
type AllocPolicy struct {
	Order [3]Dim
	name  string
}

// PCWD is the plane-channel-way-die policy of Fig 16: a 4-page request
// fills one chip's planes (a multi-plane program) and consecutive requests
// stripe across channels, balancing channel load.
var PCWD = AllocPolicy{Order: [3]Dim{DimPlane, DimChannel, DimWay}, name: "PCWD"}

// PWCD is the plane-way-channel-die policy of Fig 17: consecutive requests
// stripe across the ways of one channel before moving to the next channel,
// concentrating load and creating the imbalance the paper uses to show off
// path diversity.
var PWCD = AllocPolicy{Order: [3]Dim{DimPlane, DimWay, DimChannel}, name: "PWCD"}

// String returns the policy mnemonic.
func (p AllocPolicy) String() string {
	if p.name != "" {
		return p.name
	}
	return fmt.Sprintf("policy%v", p.Order)
}

// BlockState is the lifecycle of one block as the FTL sees it.
type BlockState uint8

// Block states.
const (
	BlockFree BlockState = iota
	BlockActive
	BlockFull
	BlockErasing
	// BlockRetired is terminal: the block failed a program or erase and
	// left service. It is never erased, freed, or allocated again.
	BlockRetired
)

// blockInfo is the FTL's bookkeeping for one physical block.
type blockInfo struct {
	state      BlockState
	validCount int32
	inflight   int32 // writes issued but not yet completed
	readRefs   int32 // host reads issued but not yet completed; gates erase
	// bad marks a block that failed a program or erase. Valid pages on a
	// bad block remain readable and are migrated off by GC, after which
	// the block transitions to BlockRetired instead of returning to the
	// free pool.
	bad bool
	// lastWrite is the time of the most recent program into this block,
	// the age signal cost-benefit victim selection uses.
	lastWrite int64
	// mapOwned marks a block carved out for the fmmu map unit's
	// translation pages: host GC never selects it (the map unit runs its
	// own cleaner) and its pages never enter p2l.
	mapOwned bool
}

// planeState manages block allocation within one (chip, plane). Host
// writes and GC copies fill separate active blocks so a collection round
// consumes free blocks at the rate it erases them instead of opening a
// fresh block in every plane it scatters copies into.
type planeState struct {
	pagesPerBlock int
	free          []int // erased block indices, LIFO
	active        int   // block currently filled by host writes, -1 if none
	nextPage      int
	gcActive      int // block currently filled by GC copies, -1 if none
	gcNextPage    int
	blocks        []blockInfo
}

func newPlaneState(blocks, pagesPerBlock int) *planeState {
	ps := &planeState{pagesPerBlock: pagesPerBlock, active: -1, gcActive: -1, blocks: make([]blockInfo, blocks)}
	// Reverse order so block 0 is popped first, which keeps layouts easy
	// to reason about in tests.
	for b := blocks - 1; b >= 0; b-- {
		ps.free = append(ps.free, b)
	}
	return ps
}

// hasSpace reports whether at least one more page can be allocated.
func (ps *planeState) hasSpace() bool { return ps.active >= 0 || len(ps.free) > 0 }

// freeBlocks returns the count of fully erased blocks.
func (ps *planeState) freeBlocks() int { return len(ps.free) }

// allocate returns the next (block, page) in sequence. Allocating on a
// full plane returns ErrNoFreeBlock — recoverable, because injected
// faults can retire blocks between a caller's space check and the
// allocation itself.
func (ps *planeState) allocate() (block, page int, err error) {
	if ps.active < 0 {
		n := len(ps.free)
		if n == 0 {
			return 0, 0, ErrNoFreeBlock
		}
		ps.active = ps.free[n-1]
		ps.free = ps.free[:n-1]
		ps.nextPage = 0
		ps.blocks[ps.active].state = BlockActive
	}
	block, page = ps.active, ps.nextPage
	ps.nextPage++
	if ps.nextPage == ps.pagesPerBlock {
		ps.blocks[ps.active].state = BlockFull
		ps.active = -1
	}
	return block, page, nil
}

// hasGCSpace reports whether a GC copy destination can be allocated
// without stealing the host's open block.
func (ps *planeState) hasGCSpace() bool { return ps.gcActive >= 0 || len(ps.free) > 0 }

// gcOpen reports whether a GC destination block is already open, which
// the destination chooser prefers so copies stream into few blocks.
func (ps *planeState) gcOpen() bool { return ps.gcActive >= 0 }

// allocateGC returns the next (block, page) of the plane's GC stream, or
// ErrNoFreeBlock when no erased block remains to open.
func (ps *planeState) allocateGC() (block, page int, err error) {
	if ps.gcActive < 0 {
		n := len(ps.free)
		if n == 0 {
			return 0, 0, ErrNoFreeBlock
		}
		ps.gcActive = ps.free[n-1]
		ps.free = ps.free[:n-1]
		ps.gcNextPage = 0
		ps.blocks[ps.gcActive].state = BlockActive
	}
	block, page = ps.gcActive, ps.gcNextPage
	ps.gcNextPage++
	if ps.gcNextPage == ps.pagesPerBlock {
		ps.blocks[ps.gcActive].state = BlockFull
		ps.gcActive = -1
	}
	return block, page, nil
}

// slot is one (chip, plane) allocation target.
type slot struct {
	chip  controller.ChipID
	plane int
}

// allocator walks (plane, channel, way) space in policy order, skipping
// slots the supplied filter rejects and slots with no space.
type allocator struct {
	policy   AllocPolicy
	channels int
	ways     int
	planes   int
	cursor   int
	total    int
}

func newAllocator(policy AllocPolicy, channels, ways, planes int) *allocator {
	return &allocator{
		policy:   policy,
		channels: channels,
		ways:     ways,
		planes:   planes,
		total:    channels * ways * planes,
	}
}

// slotAt decomposes a linear index into a slot according to the policy
// order (first dimension varies fastest).
func (a *allocator) slotAt(n int) slot {
	n %= a.total
	var coord [3]int // indexed by Dim
	for _, d := range a.policy.Order {
		size := a.dimSize(d)
		coord[d] = n % size
		n /= size
	}
	return slot{chip: controller.ChipID{Channel: coord[DimChannel], Way: coord[DimWay]}, plane: coord[DimPlane]}
}

func (a *allocator) dimSize(d Dim) int {
	switch d {
	case DimPlane:
		return a.planes
	case DimChannel:
		return a.channels
	case DimWay:
		return a.ways
	}
	panic("ftl: unknown dimension")
}

// next returns the next allocatable slot accepted by ok, advancing the
// cursor, or false when no slot qualifies.
func (a *allocator) next(ok func(s slot) bool) (slot, bool) {
	for i := 0; i < a.total; i++ {
		s := a.slotAt(a.cursor)
		a.cursor++
		if ok(s) {
			return s, true
		}
	}
	return slot{}, false
}

// physIndex linearizes a physical page location for the reverse map.
func physIndex(geo flash.Geometry, ways int, id controller.ChipID, addr flash.PPA) int64 {
	chipIdx := int64(id.Channel)*int64(ways) + int64(id.Way)
	perPlane := int64(geo.BlocksPerPlane) * int64(geo.PagesPerBlock)
	return chipIdx*int64(geo.PagesPerChip()) +
		int64(addr.Plane)*perPlane +
		int64(addr.Block)*int64(geo.PagesPerBlock) +
		int64(addr.Page)
}

// physDecode inverts physIndex.
func physDecode(geo flash.Geometry, ways int, phys int64) (controller.ChipID, flash.PPA) {
	perChip := int64(geo.PagesPerChip())
	chipIdx := phys / perChip
	rem := phys % perChip
	perPlane := int64(geo.BlocksPerPlane) * int64(geo.PagesPerBlock)
	plane := rem / perPlane
	rem %= perPlane
	block := rem / int64(geo.PagesPerBlock)
	page := rem % int64(geo.PagesPerBlock)
	return controller.ChipID{Channel: int(chipIdx) / ways, Way: int(chipIdx) % ways},
		flash.PPA{Plane: int(plane), Block: int(block), Page: int(page)}
}
