package ftl

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/trace"
)

// maybeTriggerGC starts a collection round when free space is below the
// threshold and no round is running.
func (f *FTL) maybeTriggerGC() {
	if f.gcActive || f.cfg.GCMode == GCNone {
		return
	}
	if f.FreeBlockFraction() >= f.cfg.GCThreshold {
		return
	}
	f.startGC(nil)
}

// TriggerGC forces a collection round immediately (experiments use this to
// study interference); done fires when the round completes. It panics if a
// round is already active.
func (f *FTL) TriggerGC(done func()) {
	if f.gcActive {
		panic("ftl: TriggerGC during active GC")
	}
	if f.cfg.GCMode == GCNone {
		panic("ftl: TriggerGC with GC disabled")
	}
	f.startGC(done)
}

// victim identifies one block chosen for collection.
type victim struct {
	id    controller.ChipID
	plane int
	block int
}

// inGCGroup reports whether a way belongs to the current GC group under
// SpGC. Groups swap every round to level wear (Fig 12(c)).
func (f *FTL) inGCGroup(way int) bool {
	boundary := int(float64(f.ways) * f.cfg.GCGroupFraction)
	if boundary <= 0 {
		boundary = 1
	}
	if boundary >= f.ways {
		boundary = f.ways - 1
	}
	if f.gcGroupLo {
		return way < boundary
	}
	return way >= f.ways-boundary
}

// gcParticipant reports whether a chip contributes victims this round.
func (f *FTL) gcParticipant(id controller.ChipID) bool {
	if f.cfg.GCMode != GCSpatial {
		return true
	}
	return f.inGCGroup(id.Way)
}

// selectVictims picks up to perChip victim blocks on every participating
// chip using the greedy minimum-valid policy. Only full blocks with no
// in-flight writes qualify.
func (f *FTL) selectVictims(perChip int) []victim {
	var victims []victim
	f.fab.Grid().ForEach(func(id controller.ChipID, _ *flash.Chip) {
		if !f.gcParticipant(id) {
			return
		}
		type cand struct {
			plane, block int
			valid        int32
			lastWrite    int64
		}
		var cands []cand
		for plane := 0; plane < f.geo.Planes; plane++ {
			ps := f.planeAt(id, plane)
			for b := range ps.blocks {
				bi := &ps.blocks[b]
				if bi.state == BlockFull && bi.inflight == 0 && !bi.mapOwned {
					cands = append(cands, cand{plane, b, bi.validCount, bi.lastWrite})
				}
			}
		}
		// Score candidates: greedy prefers the fewest valid pages;
		// cost-benefit maximizes (1-u)/(2u) * age. Lower score wins so
		// both policies share the selection loop; ties resolve by
		// (plane, block) scan order for determinism.
		now := float64(f.eng.Now())
		score := func(c cand) float64 {
			if f.cfg.Victim == VictimCostBenefit {
				u := float64(c.valid) / float64(f.geo.PagesPerBlock)
				if u >= 1 {
					return 0 // nothing reclaimable, maximal copy cost
				}
				age := now - float64(c.lastWrite) + 1
				// Maximize benefit/cost = (1-u)*age / 2u; lower score wins.
				return -(1 - u) * age / (2*u + 1e-9)
			}
			return float64(c.valid)
		}
		for k := 0; k < perChip && len(cands) > 0; k++ {
			best := 0
			bestScore := score(cands[0])
			for i := 1; i < len(cands); i++ {
				if sc := score(cands[i]); sc < bestScore {
					best, bestScore = i, sc
				}
			}
			c := cands[best]
			cands = append(cands[:best], cands[best+1:]...)
			victims = append(victims, victim{id: id, plane: c.plane, block: c.block})
			f.planeAt(id, c.plane).blocks[c.block].state = BlockErasing
		}
	})
	return victims
}

// startGC runs one collection round: select victims, migrate their valid
// pages, erase them, return them to the free pools.
func (f *FTL) startGC(done func()) {
	f.gcActive = true
	f.stats.GCRounds++
	started := f.eng.Now()
	f.tel.GCStarted(started)
	if f.trc.Enabled() {
		f.gcSpan = f.trc.BeginSpan("gc", "gc-round",
			trace.KV{K: "round", V: f.stats.GCRounds},
			trace.KV{K: "mode", V: f.cfg.GCMode.String()})
	}

	perChip := f.cfg.VictimsPerChip
	if f.cfg.GCMode == GCSpatial {
		// Only a fraction of the chips participate; scale victims per chip
		// so the total matches the baseline (Sec VII-A).
		perChip = int(float64(perChip)/f.cfg.GCGroupFraction + 0.5)
	}
	freeAtStart := f.totalFreeBlocks()
	victims := f.capVictims(f.selectVictims(perChip))
	if len(victims) == 0 {
		f.finishGC(started, freeAtStart, false, done)
		return
	}
	remaining := len(victims)
	for _, v := range victims {
		v := v
		f.collectVictim(v, func() {
			remaining--
			if remaining == 0 {
				f.finishGC(started, freeAtStart, true, done)
			}
		})
	}
}

// capVictims trims a round's victim set so that the pages its copies will
// consume fit in half the currently free space. Without the cap, a round
// on a nearly full device could have every victim stalled waiting for a
// destination while no erase is pending to free one. Dropped victims
// return to the Full state for later rounds.
func (f *FTL) capVictims(victims []victim) []victim {
	budget := int64(f.totalFreeBlocks()) * int64(f.geo.PagesPerBlock) / 2
	kept := victims[:0]
	for _, v := range victims {
		valid := int64(f.planeAt(v.id, v.plane).blocks[v.block].validCount)
		if valid > budget && len(kept) > 0 {
			f.planeAt(v.id, v.plane).blocks[v.block].state = BlockFull
			continue
		}
		budget -= valid
		kept = append(kept, v)
	}
	return kept
}

func (f *FTL) totalFreeBlocks() int {
	free := 0
	for _, ps := range f.planes {
		free += ps.freeBlocks()
	}
	return free
}

func (f *FTL) finishGC(started sim.Time, freeAtStart int, hadVictims bool, done func()) {
	f.gcActive = false
	f.tel.GCFinished(f.eng.Now())
	dur := f.eng.Now() - started
	f.stats.GCTotalTime += dur
	f.stats.GCLastTime = dur
	if f.trc.Enabled() {
		f.trc.EndSpan(f.gcSpan,
			trace.KV{K: "pages_copied", V: f.stats.GCPagesCopied},
			trace.KV{K: "blocks_erased", V: f.stats.GCBlocksErased})
		f.gcSpan = trace.SpanID{}
	}
	if f.cfg.GCMode == GCSpatial {
		f.gcGroupLo = !f.gcGroupLo
	}
	// A zero-victim round fires no events and changes no allocation state,
	// so retrying stalled writes would re-stall them, restart GC, and recurse
	// without bound (every Full block can have programs in flight on a tiny
	// device). Leave them parked: each victim erase already retries, and the
	// commitWrite completion hook restarts GC once in-flight programs land.
	if hadVictims {
		f.retryStalled()
	}
	if done != nil {
		done()
	}
	// Space may still be short under heavy write pressure. Re-check on a
	// fresh event — but only when this round achieved a net free-block
	// gain. Near the device's compaction limit, rounds that free exactly
	// as many blocks as their copies consume would otherwise chain GC
	// forever; the next host write re-triggers instead.
	if f.totalFreeBlocks() > freeAtStart {
		f.eng.Schedule(0, f.maybeTriggerGC)
	}
}

// collectVictim migrates every valid page off one victim block, then
// erases it.
func (f *FTL) collectVictim(v victim, done func()) {
	// Snapshot the valid pages now; pages invalidated by host overwrites
	// mid-collection are re-checked at copy time.
	var pages []int
	base := physIndex(f.geo, f.ways, v.id, flash.PPA{Plane: v.plane, Block: v.block, Page: 0})
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		if f.p2l[base+int64(p)] != unmapped {
			pages = append(pages, p)
		}
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(pages) {
			f.eraseVictim(v, done)
			return
		}
		proceed := func() {
			f.copyOnePage(v, pages[i], func() { step(i + 1) })
		}
		if f.cfg.GCMode == GCPreemptive {
			f.yieldToHost(proceed)
			return
		}
		proceed()
	}
	step(0)
}

// yieldToHost implements the semi-preemptive policy: between page copies,
// GC waits while host I/O is outstanding, polling until the device goes
// idle — unless free space is critically low, in which case it stops
// yielding (GC cannot be postponed indefinitely). Writes stalled on
// allocation never count as I/O worth yielding to: they cannot progress
// until GC frees space, so waiting on them would deadlock the device
// with free space sitting just above the critical floor.
func (f *FTL) yieldToHost(proceed func()) {
	critical := f.cfg.GCThreshold / 4
	var poll func()
	poll = func() {
		if f.outstanding == 0 || len(f.stalled) > 0 || f.FreeBlockFraction() < critical {
			proceed()
			return
		}
		f.eng.Schedule(10*sim.Microsecond, poll)
	}
	poll()
}

// copyOnePage migrates one page of a victim block if it is still valid.
func (f *FTL) copyOnePage(v victim, page int, done func()) {
	from := flash.PPA{Plane: v.plane, Block: v.block, Page: page}
	oldPhys := physIndex(f.geo, f.ways, v.id, from)
	lpn := f.p2l[oldPhys]
	if lpn == unmapped {
		// Host overwrote it since selection; nothing to move.
		done()
		return
	}
	dstChip, dstAddr, ok := f.allocGCDestination(v)
	if !ok {
		if debugGC {
			free := f.totalFreeBlocks()
			println("GC alloc fail: victim", v.id.Channel, v.id.Way, "page", page, "freeBlocks", free)
		}
		// Transient exhaustion: every free block is being consumed by
		// concurrent copies or host writes racing into the reserve. Other
		// victims' erases will free blocks; retry then.
		f.eng.Schedule(20*sim.Microsecond, func() { f.copyOnePage(v, page, done) })
		return
	}
	newPhys := physIndex(f.geo, f.ways, dstChip, dstAddr)
	dstPS := f.planeAt(dstChip, dstAddr.Plane)
	dstPS.blocks[dstAddr.Block].inflight++
	f.stats.GCPagesCopied++
	f.tel.GCCopied(f.eng.Now())
	f.fab.Copy(v.id, from, dstChip, dstAddr, func() {
		dstPS.blocks[dstAddr.Block].inflight--
		if f.faults.DrawFor(fault.ProgramFail, f.chipKey(dstChip)) {
			// The commit program at the destination failed its status
			// check: retire the destination block and retry the copy to a
			// fresh one. The source mapping never moved, so the page is
			// still intact on the victim.
			r := f.ras()
			r.ProgramFails++
			r.GCCopyRetries++
			f.retireBlock(dstChip, dstAddr.Plane, dstAddr.Block)
			f.copyOnePage(v, page, done)
			return
		}
		if f.p2l[oldPhys] == lpn && f.l2p[lpn] == oldPhys {
			// Still current: move the mapping.
			if debugGC2 && f.p2l[newPhys] != unmapped {
				panic(fmt.Sprintf("ftl: GC copy double-maps phys %d (old lpn %d, new lpn %d)", newPhys, f.p2l[newPhys], lpn))
			}
			f.l2p[lpn] = newPhys
			f.p2l[newPhys] = lpn
			f.p2l[oldPhys] = unmapped
			f.planeAt(v.id, v.plane).blocks[v.block].validCount--
			dstPS.blocks[dstAddr.Block].validCount++
			if f.mapu != nil {
				f.mapu.noteUpdate(lpn)
			}
		}
		// Otherwise the host rewrote the LPN mid-copy; the copied page is
		// immediately garbage and stays invalid at the destination.
		done()
	})
}

// allocGCDestination picks the destination page for a GC copy. SpGC
// restricts destinations to the victim's own column (way) so copies move
// only over that column's v-channel (Sec VI-A); PaGC and preemptive GC
// allocate anywhere via the normal policy. If the same-column restriction
// cannot be satisfied, it widens to any GC-group chip.
func (f *FTL) allocGCDestination(v victim) (controller.ChipID, flash.PPA, bool) {
	pick := func(ok func(s slot) bool) (controller.ChipID, flash.PPA, bool) {
		// Prefer planes with a GC destination block already open so copies
		// stream sequentially into few blocks; only then open fresh ones.
		s, found := f.alloc.next(func(s slot) bool { return f.planeAt(s.chip, s.plane).gcOpen() && ok(s) })
		if !found {
			s, found = f.alloc.next(func(s slot) bool { return f.planeAt(s.chip, s.plane).hasGCSpace() && ok(s) })
		}
		if !found {
			return controller.ChipID{}, flash.PPA{}, false
		}
		ps := f.planeAt(s.chip, s.plane)
		block, page, err := ps.allocateGC()
		if err != nil {
			// Recoverable: a fault retired the last free block between the
			// hasGCSpace check and the allocation. The caller retries once
			// pending erases free space.
			return controller.ChipID{}, flash.PPA{}, false
		}
		return s.chip, flash.PPA{Plane: s.plane, Block: block, Page: page}, true
	}
	if f.cfg.GCMode == GCSpatial {
		if id, addr, ok := pick(func(s slot) bool { return s.chip.Way == v.id.Way }); ok {
			return id, addr, true
		}
		if id, addr, ok := pick(func(s slot) bool { return f.inGCGroup(s.chip.Way) }); ok {
			return id, addr, true
		}
		// Last resort: anywhere — correctness over isolation when the GC
		// group itself has no space left.
	}
	return pick(func(s slot) bool { return true })
}

// eraseVictim erases a fully migrated victim and returns it to the free
// pool. The erase waits for host reads still pinning the block — reads
// that mapped a page before its copy relocated it and are queued behind
// channel contention.
func (f *FTL) eraseVictim(v victim, done func()) {
	ps := f.planeAt(v.id, v.plane)
	if ps.blocks[v.block].validCount != 0 {
		// True invariant: collectVictim migrated every valid page before
		// calling here; a nonzero count is an accounting bug, not a fault.
		panic(fmt.Sprintf("ftl: erasing block with %d valid pages", ps.blocks[v.block].validCount))
	}
	if ps.blocks[v.block].readRefs > 0 {
		f.eng.Schedule(20*sim.Microsecond, func() { f.eraseVictim(v, done) })
		return
	}
	if ps.blocks[v.block].bad {
		// A block retired by an earlier program failure: its valid pages
		// are now migrated, so it leaves service for good — no erase, no
		// return to the free pool.
		ps.blocks[v.block].state = BlockRetired
		f.retryStalled()
		done()
		return
	}
	f.fab.Erase(v.id, []flash.PPA{{Plane: v.plane, Block: v.block}}, func() {
		if f.faults.DrawFor(fault.EraseFail, f.chipKey(v.id)) {
			// Erase status failed: the block retires instead of rejoining
			// the free pool.
			f.ras().EraseFails++
			f.tel.Event("erase-fail", f.eng.Now())
			f.retireBlock(v.id, v.plane, v.block)
			ps.blocks[v.block].state = BlockRetired
			f.retryStalled()
			done()
			return
		}
		ps.blocks[v.block].state = BlockFree
		ps.free = append(ps.free, v.block)
		f.stats.GCBlocksErased++
		f.retryStalled()
		done()
	})
}

// debugGC enables diagnostic prints from the GC destination allocator.
var debugGC = false

// debugGC2 enables mapping-invariant assertions in the copy path.
var debugGC2 = true
