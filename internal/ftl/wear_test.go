package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/sim"
)

func TestWearStatsEmptyDevice(t *testing.T) {
	_, f, _ := rig(noGC(), 256)
	ws := f.Wear()
	if ws.MinErase != 0 || ws.MaxErase != 0 || ws.MeanErase != 0 {
		t.Fatalf("fresh device wear = %+v", ws)
	}
	if ws.GroupWearGap() != 0 {
		t.Fatal("fresh device has a group wear gap")
	}
}

// churnMode runs sustained overwrite churn under the given GC mode and
// returns the wear statistics.
func churnWear(t *testing.T, mode GCMode, rounds int) WearStats {
	t.Helper()
	e := sim.NewEngine()
	g := controller.NewGrid(e, 4, 4, smallGeo(), flash.ULLTiming())
	soc := controller.NewSoc(e, 8000, 8000)
	fab := controller.NewOmnibusFabric(e, "pnssd", g, soc, smallGeo().PageSize, 8, 1000, false)
	cfg := DefaultConfig()
	cfg.GCMode = mode
	cfg.GCThreshold = 0.3
	f := New(e, fab, cfg, 800) // 1024 raw pages, ~78% utilization
	for lpn := int64(0); lpn < 800; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	rng := rand.New(rand.NewSource(11))
	version := map[int64]int64{}
	for i := 0; i < rounds; i++ {
		lpn := rng.Int63n(800)
		version[lpn]++
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return f.Wear()
}

func TestSpatialGCSwapLevelsWearAcrossGroups(t *testing.T) {
	ws := churnWear(t, GCSpatial, 1500)
	if ws.MaxErase == 0 {
		t.Fatal("churn produced no erases")
	}
	// With group swapping, the two way-halves must see similar wear: the
	// gap between group means stays well below total wear.
	if gap := ws.GroupWearGap(); gap > 0.5 {
		t.Fatalf("SpGC group wear gap = %.2f (per-way means %v)", gap, ws.PerWay)
	}
}

func TestWearAccumulatesWithChurn(t *testing.T) {
	light := churnWear(t, GCParallel, 300)
	heavy := churnWear(t, GCParallel, 1500)
	if heavy.MeanErase <= light.MeanErase {
		t.Fatalf("mean wear did not grow with churn: %.2f vs %.2f", heavy.MeanErase, light.MeanErase)
	}
	if heavy.MaxErase < heavy.MinErase {
		t.Fatal("max below min")
	}
}

func TestGroupWearGapArithmetic(t *testing.T) {
	ws := WearStats{PerWay: []float64{2, 2, 0, 0}}
	if gap := ws.GroupWearGap(); gap != 1.0 {
		t.Fatalf("one-sided wear gap = %v, want 1.0", gap)
	}
	ws = WearStats{PerWay: []float64{3, 3, 3, 3}}
	if gap := ws.GroupWearGap(); gap != 0 {
		t.Fatalf("level wear gap = %v, want 0", gap)
	}
	ws = WearStats{PerWay: []float64{1}}
	if ws.GroupWearGap() != 0 {
		t.Fatal("single-way gap should be 0")
	}
}
