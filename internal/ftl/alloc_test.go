package ftl

import (
	"testing"
	"testing/quick"

	"repro/internal/controller"
	"repro/internal/flash"
)

func TestAllocatorCoversEverySlotOncePerCycle(t *testing.T) {
	for _, policy := range []AllocPolicy{PCWD, PWCD} {
		a := newAllocator(policy, 4, 3, 2)
		seen := make(map[slot]int)
		for i := 0; i < a.total; i++ {
			s, ok := a.next(func(slot) bool { return true })
			if !ok {
				t.Fatalf("%v: allocator refused with universal filter", policy)
			}
			seen[s]++
		}
		if len(seen) != a.total {
			t.Fatalf("%v: %d distinct slots in one cycle, want %d", policy, len(seen), a.total)
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("%v: slot %v visited %d times in one cycle", policy, s, n)
			}
		}
	}
}

func TestAllocatorPolicyOrder(t *testing.T) {
	// PCWD: plane varies fastest, then channel, then way.
	a := newAllocator(PCWD, 2, 2, 2)
	want := []slot{
		{controller.ChipID{Channel: 0, Way: 0}, 0},
		{controller.ChipID{Channel: 0, Way: 0}, 1},
		{controller.ChipID{Channel: 1, Way: 0}, 0},
		{controller.ChipID{Channel: 1, Way: 0}, 1},
		{controller.ChipID{Channel: 0, Way: 1}, 0},
		{controller.ChipID{Channel: 0, Way: 1}, 1},
		{controller.ChipID{Channel: 1, Way: 1}, 0},
		{controller.ChipID{Channel: 1, Way: 1}, 1},
	}
	for i, w := range want {
		s, ok := a.next(func(slot) bool { return true })
		if !ok || s != w {
			t.Fatalf("PCWD step %d = %v, want %v", i, s, w)
		}
	}
	// PWCD: plane, then way, then channel.
	b := newAllocator(PWCD, 2, 2, 2)
	wantB := []slot{
		{controller.ChipID{Channel: 0, Way: 0}, 0},
		{controller.ChipID{Channel: 0, Way: 0}, 1},
		{controller.ChipID{Channel: 0, Way: 1}, 0},
		{controller.ChipID{Channel: 0, Way: 1}, 1},
		{controller.ChipID{Channel: 1, Way: 0}, 0},
	}
	for i, w := range wantB {
		s, ok := b.next(func(slot) bool { return true })
		if !ok || s != w {
			t.Fatalf("PWCD step %d = %v, want %v", i, s, w)
		}
	}
}

func TestAllocatorFilterSkips(t *testing.T) {
	a := newAllocator(PCWD, 2, 2, 1)
	// Reject way 1 entirely: only two slots remain.
	got := make(map[slot]bool)
	for i := 0; i < 4; i++ {
		s, ok := a.next(func(s slot) bool { return s.chip.Way == 0 })
		if !ok {
			t.Fatal("allocator refused despite acceptable slots")
		}
		if s.chip.Way != 0 {
			t.Fatalf("filter violated: %v", s)
		}
		got[s] = true
	}
	if len(got) != 2 {
		t.Fatalf("distinct way-0 slots = %d, want 2", len(got))
	}
	// Reject everything: must return false, not loop forever.
	if _, ok := a.next(func(slot) bool { return false }); ok {
		t.Fatal("allocator satisfied an unsatisfiable filter")
	}
}

// Property: physIndex/physDecode are inverse for arbitrary geometry-valid
// locations.
func TestPhysIndexRoundTripProperty(t *testing.T) {
	geo := flash.Geometry{Planes: 4, BlocksPerPlane: 16, PagesPerBlock: 32, PageSize: 4096}
	const ways = 8
	prop := func(ch, w, pl, b, pg uint16) bool {
		id := controller.ChipID{Channel: int(ch % 8), Way: int(w % ways)}
		addr := flash.PPA{
			Plane: int(pl) % geo.Planes,
			Block: int(b) % geo.BlocksPerPlane,
			Page:  int(pg) % geo.PagesPerBlock,
		}
		gotID, gotAddr := physDecode(geo, ways, physIndex(geo, ways, id, addr))
		return gotID == id && gotAddr == addr
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: physIndex is injective over a full small device.
func TestPhysIndexInjective(t *testing.T) {
	geo := flash.Geometry{Planes: 2, BlocksPerPlane: 3, PagesPerBlock: 4, PageSize: 4096}
	const channels, ways = 2, 3
	seen := make(map[int64]bool)
	for ch := 0; ch < channels; ch++ {
		for w := 0; w < ways; w++ {
			for pl := 0; pl < geo.Planes; pl++ {
				for b := 0; b < geo.BlocksPerPlane; b++ {
					for pg := 0; pg < geo.PagesPerBlock; pg++ {
						phys := physIndex(geo, ways, controller.ChipID{Channel: ch, Way: w},
							flash.PPA{Plane: pl, Block: b, Page: pg})
						if seen[phys] {
							t.Fatalf("phys %d duplicated", phys)
						}
						seen[phys] = true
					}
				}
			}
		}
	}
	want := channels * ways * geo.PagesPerChip()
	if len(seen) != want {
		t.Fatalf("covered %d phys ids, want %d", len(seen), want)
	}
}

func TestPlaneStateGCAndHostStreamsIndependent(t *testing.T) {
	ps := newPlaneState(4, 4)
	hb, _, _ := ps.allocate()
	gb, _, _ := ps.allocateGC()
	if hb == gb {
		t.Fatal("host and GC streams share a block")
	}
	// Fill the host block; the GC block must be untouched.
	for i := 1; i < 4; i++ {
		b, p, err := ps.allocate()
		if err != nil {
			t.Fatalf("host allocation %d failed: %v", i, err)
		}
		if b != hb || p != i {
			t.Fatalf("host allocation %d = (%d,%d)", i, b, p)
		}
	}
	if ps.blocks[hb].state != BlockFull {
		t.Fatal("host block not full after 4 pages")
	}
	if ps.blocks[gb].state != BlockActive || !ps.gcOpen() {
		t.Fatal("GC block state disturbed by host stream")
	}
	// GC stream continues from page 1.
	if b, p, _ := ps.allocateGC(); b != gb || p != 1 {
		t.Fatalf("GC allocation = (%d,%d), want (%d,1)", b, p, gb)
	}
}
