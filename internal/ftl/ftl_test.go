package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/controller"
	"repro/internal/flash"
	"repro/internal/sim"
)

func smallGeo() flash.Geometry {
	return flash.Geometry{Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 8, PageSize: 4096}
}

// rig builds a 2x2 base-SSD with 512 raw pages and the given FTL config.
func rig(cfg Config, numLPNs int64) (*sim.Engine, *FTL, *controller.Grid) {
	e := sim.NewEngine()
	g := controller.NewGrid(e, 2, 2, smallGeo(), flash.ULLTiming())
	soc := controller.NewSoc(e, 8000, 8000)
	fab := controller.NewBusFabric(e, "base", g, soc, smallGeo().PageSize, 8, 1000, false)
	return e, New(e, fab, cfg, numLPNs), g
}

func omniRig(cfg Config, numLPNs int64, channels, ways int) (*sim.Engine, *FTL, *controller.OmnibusFabric) {
	e := sim.NewEngine()
	g := controller.NewGrid(e, channels, ways, smallGeo(), flash.ULLTiming())
	soc := controller.NewSoc(e, 8000, 8000)
	fab := controller.NewOmnibusFabric(e, "pnssd", g, soc, smallGeo().PageSize, 8, 1000, false)
	return e, New(e, fab, cfg, numLPNs), fab
}

func noGC() Config {
	c := DefaultConfig()
	c.GCMode = GCNone
	return c
}

// contentOf fetches the token stored at an LPN's current mapping.
func contentOf(t *testing.T, f *FTL, g *controller.Grid, lpn int64) flash.Token {
	t.Helper()
	id, addr, ok := f.Map(lpn)
	if !ok {
		t.Fatalf("LPN %d unmapped", lpn)
	}
	return g.Chip(id).ContentAt(addr)
}

func TestInstallAndRead(t *testing.T) {
	e, f, g := rig(noGC(), 256)
	for lpn := int64(0); lpn < 10; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	if e.Now() != 0 {
		t.Fatal("Install consumed time")
	}
	for lpn := int64(0); lpn < 10; lpn++ {
		if contentOf(t, f, g, lpn) != TokenFor(lpn, 0) {
			t.Fatalf("LPN %d content wrong", lpn)
		}
	}
	done := false
	f.Read([]int64{0, 1, 2, 3}, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if f.Stats().HostReads != 4 {
		t.Fatalf("HostReads = %d", f.Stats().HostReads)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	e, f, g := rig(noGC(), 256)
	lpns := []int64{5, 6, 7, 8}
	toks := make([]flash.Token, len(lpns))
	for i, lpn := range lpns {
		toks[i] = TokenFor(lpn, 1)
	}
	done := false
	f.Write(lpns, toks, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("write never completed")
	}
	for i, lpn := range lpns {
		if got := contentOf(t, f, g, lpn); got != toks[i] {
			t.Fatalf("LPN %d content = %x, want %x", lpn, got, toks[i])
		}
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	e, f, _ := rig(noGC(), 256)
	f.Write([]int64{1}, []flash.Token{TokenFor(1, 0)}, func() {})
	e.Run()
	_, oldAddr, _ := f.Map(1)
	f.Write([]int64{1}, []flash.Token{TokenFor(1, 1)}, func() {})
	e.Run()
	_, newAddr, _ := f.Map(1)
	if oldAddr == newAddr {
		t.Fatal("overwrite reused the same physical page")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWaitsForInflightWrite(t *testing.T) {
	e, f, g := rig(noGC(), 256)
	f.Write([]int64{3}, []flash.Token{TokenFor(3, 0)}, func() {})
	e.Run()
	var readDoneAt, writeDoneAt sim.Time
	f.Write([]int64{3}, []flash.Token{TokenFor(3, 1)}, func() { writeDoneAt = e.Now() })
	f.Read([]int64{3}, func() { readDoneAt = e.Now() })
	e.Run()
	if readDoneAt <= writeDoneAt {
		t.Fatalf("read (%v) did not wait for in-flight write (%v)", readDoneAt, writeDoneAt)
	}
	if contentOf(t, f, g, 3) != TokenFor(3, 1) {
		t.Fatal("read raced the write")
	}
}

func TestReadUnmappedPanics(t *testing.T) {
	e, f, _ := rig(noGC(), 256)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped read did not panic")
		}
	}()
	f.Read([]int64{99}, func() {})
	e.Run()
}

func TestAllocationPolicyPlacement(t *testing.T) {
	// PCWD: pages stripe plane-first then channel — consecutive 2-page
	// writes land on alternating channels, same way.
	cfg := noGC()
	cfg.Policy = PCWD
	e, f, _ := rig(cfg, 256)
	for lpn := int64(0); lpn < 8; lpn++ {
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, 0)}, func() {})
	}
	e.Run()
	var chans []int
	for lpn := int64(0); lpn < 8; lpn++ {
		id, _, _ := f.Map(lpn)
		chans = append(chans, id.Channel)
	}
	// planes=2, channels=2: lpn0,1 plane0/1 ch0; lpn2,3 ch1; lpn4,5 ch0 w1...
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if chans[i] != want[i] {
			t.Fatalf("PCWD channel seq = %v, want %v", chans, want)
		}
	}

	// PWCD: ways before channels — first four single-page writes all stay
	// on channel 0.
	cfg.Policy = PWCD
	e2, f2, _ := rig(cfg, 256)
	for lpn := int64(0); lpn < 8; lpn++ {
		f2.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, 0)}, func() {})
	}
	e2.Run()
	for lpn := int64(0); lpn < 4; lpn++ {
		id, _, _ := f2.Map(lpn)
		if id.Channel != 0 {
			t.Fatalf("PWCD: LPN %d on channel %d, want 0", lpn, id.Channel)
		}
	}
}

func TestMultiPlaneBatching(t *testing.T) {
	// A 2-page PCWD write fills both planes of one chip: the chip should
	// see exactly one (multi-plane) program.
	e, f, g := rig(noGC(), 256)
	f.Write([]int64{0, 1}, []flash.Token{TokenFor(0, 0), TokenFor(1, 0)}, func() {})
	e.Run()
	id0, _, _ := f.Map(0)
	id1, _, _ := f.Map(1)
	if id0 != id1 {
		t.Fatalf("PCWD pair split across chips %v and %v", id0, id1)
	}
	_, programs, _ := g.Chip(id0).Counters()
	if programs != 1 {
		t.Fatalf("programs = %d, want 1 multi-plane op", programs)
	}
}

func fillAndChurn(t *testing.T, e *sim.Engine, f *FTL, numLPNs int64, churn int, seed int64) map[int64]int64 {
	t.Helper()
	version := make(map[int64]int64)
	for lpn := int64(0); lpn < numLPNs; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
		version[lpn] = 0
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < churn; i++ {
		lpn := rng.Int63n(numLPNs)
		version[lpn]++
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
		// Drain periodically to bound in-flight state.
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	return version
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.3
	// 512 raw pages; 320 LPNs leaves ~37% over-provisioning.
	e, f, g := rig(cfg, 320)
	version := fillAndChurn(t, e, f, 320, 400, 42)
	if f.Stats().GCRounds == 0 {
		t.Fatal("churn never triggered GC")
	}
	if f.Stats().GCBlocksErased == 0 {
		t.Fatal("GC erased nothing")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn, v := range version {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
			t.Fatalf("LPN %d content %x, want version %d", lpn, got, v)
		}
	}
}

func TestGCPreemptivePreservesData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCPreemptive
	cfg.GCThreshold = 0.3
	e, f, g := rig(cfg, 320)
	version := fillAndChurn(t, e, f, 320, 400, 43)
	if f.Stats().GCRounds == 0 {
		t.Fatal("churn never triggered GC")
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for lpn, v := range version {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
			t.Fatalf("LPN %d stale content", lpn)
		}
	}
}

func TestSpatialGCSameColumnCopies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCSpatial
	cfg.GCThreshold = 0.3
	// 4x4 omnibus grid: raw = 16 chips * 128 pages = 2048; use 1280 LPNs.
	e, f, fab := omniRig(cfg, 1280, 4, 4)
	version := make(map[int64]int64)
	for lpn := int64(0); lpn < 1280; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
		version[lpn] = 0
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1200; i++ {
		lpn := rng.Int63n(1280)
		version[lpn]++
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
		if i%8 == 7 {
			e.Run()
		}
	}
	e.Run()
	if f.Stats().GCRounds == 0 {
		t.Fatal("no GC rounds")
	}
	_, _, _, direct, relayed := fab.PathCounts()
	if direct == 0 {
		t.Fatal("SpGC produced no direct v-channel copies")
	}
	if relayed > direct/4 {
		t.Fatalf("SpGC relayed too many copies cross-column: direct=%d relayed=%d", direct, relayed)
	}
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	g := fab.Grid()
	for lpn, v := range version {
		if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
			t.Fatalf("LPN %d stale after SpGC", lpn)
		}
	}
}

func TestSpatialGCGroupSwap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCSpatial
	_, f, _ := omniRig(cfg, 1280, 4, 4)
	if f.inGCGroup(0) || f.inGCGroup(1) || !f.inGCGroup(2) || !f.inGCGroup(3) {
		t.Fatal("initial GC group should be the high ways")
	}
	f.gcGroupLo = true
	if !f.inGCGroup(0) || !f.inGCGroup(1) || f.inGCGroup(2) || f.inGCGroup(3) {
		t.Fatal("swapped GC group should be the low ways")
	}
}

func TestSpatialGCWritesAvoidGCGroup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCSpatial
	cfg.GCThreshold = 0.3
	e, f, fab := omniRig(cfg, 1280, 4, 4)
	for lpn := int64(0); lpn < 1280; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	// Trigger GC manually, then write during the round and verify placement.
	var wrote []controller.ChipID
	gcDone := false
	f.TriggerGC(func() { gcDone = true })
	for i := 0; i < 16; i++ {
		lpn := int64(i)
		f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, 1)}, func() {})
		e.RunFor(5 * sim.Microsecond)
		if !f.GCActive() {
			break
		}
		if id, _, ok := f.Map(lpn); ok {
			wrote = append(wrote, id)
		}
	}
	e.Run()
	if !gcDone {
		t.Fatal("GC never finished")
	}
	if len(wrote) == 0 {
		t.Skip("GC finished before any write placement was observed")
	}
	for _, id := range wrote {
		if id.Way >= 2 { // high ways are the first GC group on a 4-way rig
			t.Fatalf("write landed in GC group at %v", id)
		}
	}
	_ = fab
}

func TestWriteStallsWhenFullThenRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	cfg.GCThreshold = 0.05 // effectively only stall-driven GC
	e, f, _ := rig(cfg, 320)
	version := fillAndChurn(t, e, f, 320, 600, 99)
	if err := f.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = version
	if f.Stats().GCRounds == 0 {
		t.Fatal("no GC despite churn beyond capacity")
	}
}

func TestTriggerGCPanicsWhenActive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCMode = GCParallel
	e, f, _ := rig(cfg, 320)
	for lpn := int64(0); lpn < 320; lpn++ {
		f.Install(lpn, TokenFor(lpn, 0))
	}
	f.TriggerGC(nil)
	if !f.GCActive() {
		t.Fatal("GC not active after trigger")
	}
	defer func() {
		recover()
		e.Run()
	}()
	f.TriggerGC(nil)
	t.Fatal("double trigger did not panic")
}

func TestGCModeStrings(t *testing.T) {
	if GCNone.String() != "none" || GCParallel.String() != "pagc" ||
		GCPreemptive.String() != "preemptive" || GCSpatial.String() != "spgc" {
		t.Fatal("GC mode strings wrong")
	}
}

func TestTokenForDistinct(t *testing.T) {
	seen := make(map[flash.Token]bool)
	for lpn := int64(0); lpn < 100; lpn++ {
		for v := int64(0); v < 5; v++ {
			tok := TokenFor(lpn, v)
			if seen[tok] {
				t.Fatalf("token collision at lpn=%d v=%d", lpn, v)
			}
			seen[tok] = true
		}
	}
}

// Property-style stress: random single-page reads and writes with GC churn
// keep the mapping consistent and every read returns current data.
func TestRandomWorkloadConsistency(t *testing.T) {
	for _, mode := range []GCMode{GCParallel, GCPreemptive} {
		cfg := DefaultConfig()
		cfg.GCMode = mode
		cfg.GCThreshold = 0.35
		e, f, g := rig(cfg, 320)
		version := make(map[int64]int64)
		for lpn := int64(0); lpn < 320; lpn++ {
			f.Install(lpn, TokenFor(lpn, 0))
		}
		rng := rand.New(rand.NewSource(7 + int64(mode)))
		for i := 0; i < 500; i++ {
			lpn := rng.Int63n(320)
			if rng.Intn(2) == 0 {
				f.Read([]int64{lpn}, func() {})
			} else {
				version[lpn]++
				f.Write([]int64{lpn}, []flash.Token{TokenFor(lpn, version[lpn])}, func() {})
			}
			if i%16 == 15 {
				e.Run()
				if err := f.CheckConsistency(); err != nil {
					t.Fatalf("mode %v iter %d: %v", mode, i, err)
				}
			}
		}
		e.Run()
		for lpn, v := range version {
			if got := contentOf(t, f, g, lpn); got != TokenFor(lpn, v) {
				t.Fatalf("mode %v: LPN %d stale", mode, lpn)
			}
		}
	}
}
