package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// progressState is the -progress reporter: optional, process-wide,
// and fully decoupled from the simulation — it reads wall-clock time
// and a caller-supplied cumulative event counter, never simulated
// state, so enabling it cannot perturb any run.
type progressState struct {
	// enabled is read lock-free on the per-job hot path.
	enabled atomic.Bool

	mu     sync.Mutex
	w      io.Writer
	events func() int64
	lastAt time.Time
	lastEv int64
}

var prog progressState

// EnableProgress turns on coarse progress reporting for every Map call
// in the process: completed-job counts for the current batch, the
// cumulative simulated event count from eventCount (nil omits the
// event columns), the event rate since the previous line, and a
// wall-clock ETA extrapolated from completed jobs. Lines go to w —
// conventionally stderr, never stdout, so experiment CSV output is
// unaffected. Reporting is rate-limited to one line per second plus a
// final line when each batch completes. Passing a nil writer disables
// reporting.
func EnableProgress(w io.Writer, eventCount func() int64) {
	prog.mu.Lock()
	prog.w = w
	prog.events = eventCount
	prog.lastAt = time.Time{}
	prog.lastEv = 0
	prog.mu.Unlock()
	prog.enabled.Store(w != nil)
}

// DisableProgress turns progress reporting back off.
func DisableProgress() { EnableProgress(nil, nil) }

// note reports one completed job (done of n) of a batch that started
// at t0. Intermediate lines are throttled; the batch's final job
// always prints so short batches still leave one line.
func (p *progressState) note(done, n int, t0 time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return
	}
	now := time.Now()
	final := done == n
	if !final && now.Sub(p.lastAt) < time.Second {
		return
	}
	line := fmt.Sprintf("progress: %d/%d jobs", done, n)
	if p.events != nil {
		ev := p.events()
		line += fmt.Sprintf(", %s events", countStr(ev))
		since := p.lastAt
		if since.IsZero() {
			since = t0
		}
		if dt := now.Sub(since); dt > 0 && ev >= p.lastEv {
			line += fmt.Sprintf(", %s ev/s", countStr(int64(float64(ev-p.lastEv)/dt.Seconds())))
		}
		p.lastEv = ev
	}
	if final {
		line += fmt.Sprintf(", done in %v", now.Sub(t0).Round(time.Millisecond))
	} else if done > 0 {
		eta := time.Duration(float64(now.Sub(t0)) / float64(done) * float64(n-done))
		line += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
	p.lastAt = now
}

// countStr humanizes a count with k/M/G suffixes.
func countStr(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
