package runner

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

func TestMapOrderedResults(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(8, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	got := Map(8, 1, func(i int) int { return 41 + i })
	if len(got) != 1 || got[0] != 41 {
		t.Fatalf("n=1 returned %v", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(8, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("propagated panic %v does not carry the job's value", v)
		}
	}()
	Map(4, 32, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

// A labeled map must name the offending sweep point — index AND its
// config description — in the propagated panic, at any parallelism.
func TestMapLabeledPanicCarriesConfig(t *testing.T) {
	label := func(i int) string { return "arch=pnSSD/gc=SpGC/point=" + string(rune('a'+i)) }
	for _, p := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("parallel=%d: worker panic did not propagate", p)
				}
				s, ok := v.(string)
				if !ok {
					t.Fatalf("parallel=%d: propagated panic %v is not a message", p, v)
				}
				for _, want := range []string{"job 5", "arch=pnSSD/gc=SpGC/point=f", "kaboom"} {
					if !strings.Contains(s, want) {
						t.Fatalf("parallel=%d: panic %q missing %q", p, s, want)
					}
				}
			}()
			MapLabeled(p, 16, label, func(i int) int {
				if i == 5 {
					panic("kaboom")
				}
				return i
			})
		}()
	}
}

// The label function is only consulted on failure, so an expensive
// formatter costs nothing on the happy path.
func TestMapLabeledSuccessNeverCallsLabel(t *testing.T) {
	var calls atomic.Int64
	label := func(i int) string { calls.Add(1); return "x" }
	got := MapLabeled(4, 64, label, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("label called %d times on success, want 0", calls.Load())
	}
}

func TestMapLabeledNilLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MapLabeled(nil label) did not panic")
		}
	}()
	MapLabeled(1, 4, nil, func(i int) int { return i })
}

func TestSetDefaultClampsToOne(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(-3)
	if Default() != 1 {
		t.Fatalf("Default() = %d after SetDefault(-3), want 1", Default())
	}
	SetDefault(6)
	if Default() != 6 {
		t.Fatalf("Default() = %d, want 6", Default())
	}
}

// TestMapSimulationsDeterministic runs real (tiny) SSD simulations — the
// runner's actual payload — sequentially and at several parallelism
// levels and requires identical metrics: each run owns a private engine,
// so scheduling must not leak into results.
func TestMapSimulationsDeterministic(t *testing.T) {
	cfg := ssd.ScaledConfig()
	cfg.Geometry.BlocksPerPlane = 8
	cfg.Geometry.PagesPerBlock = 16
	run := func(i int) [2]float64 {
		s := ssd.New(ssd.Archs[i%len(ssd.Archs)], cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		gen := workload.Synthetic(workload.RandRead, foot, 2, int64(i+1))
		s.Host.RunClosedLoop(gen, 4, 40)
		s.Run()
		m := s.Metrics()
		return [2]float64{m.MeanLatency().Microseconds(), m.KIOPS()}
	}
	want := Map(1, 12, run)
	for _, p := range []int{2, 8} {
		got := Map(p, 12, run)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d: run %d = %v, sequential %v", p, i, got[i], want[i])
			}
		}
	}
}
