package runner

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

func TestMapOrderedResults(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16} {
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(8, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	got := Map(8, 1, func(i int) int { return 41 + i })
	if len(got) != 1 || got[0] != 41 {
		t.Fatalf("n=1 returned %v", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(8, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("propagated panic %v does not carry the job's value", v)
		}
	}()
	Map(4, 32, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestSetDefaultClampsToOne(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(-3)
	if Default() != 1 {
		t.Fatalf("Default() = %d after SetDefault(-3), want 1", Default())
	}
	SetDefault(6)
	if Default() != 6 {
		t.Fatalf("Default() = %d, want 6", Default())
	}
}

// TestMapSimulationsDeterministic runs real (tiny) SSD simulations — the
// runner's actual payload — sequentially and at several parallelism
// levels and requires identical metrics: each run owns a private engine,
// so scheduling must not leak into results.
func TestMapSimulationsDeterministic(t *testing.T) {
	cfg := ssd.ScaledConfig()
	cfg.Geometry.BlocksPerPlane = 8
	cfg.Geometry.PagesPerBlock = 16
	run := func(i int) [2]float64 {
		s := ssd.New(ssd.Archs[i%len(ssd.Archs)], cfg)
		foot := s.Config.LogicalPages()
		s.Host.Warmup(foot)
		gen := workload.Synthetic(workload.RandRead, foot, 2, int64(i+1))
		s.Host.RunClosedLoop(gen, 4, 40)
		s.Run()
		m := s.Metrics()
		return [2]float64{m.MeanLatency().Microseconds(), m.KIOPS()}
	}
	want := Map(1, 12, run)
	for _, p := range []int{2, 8} {
		got := Map(p, 12, run)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d: run %d = %v, sequential %v", p, i, got[i], want[i])
			}
		}
	}
}
