package runner

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestProgressReportsBatch: with reporting enabled, a Map batch emits
// at least the final line, carrying the job count and the event column
// from the supplied counter.
func TestProgressReportsBatch(t *testing.T) {
	defer DisableProgress()
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	EnableProgress(w, func() int64 { return 1_500_000 })
	out := Map(4, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if !strings.Contains(got, "progress: 8/8 jobs") {
		t.Fatalf("no final progress line in %q", got)
	}
	if !strings.Contains(got, "1.5M events") {
		t.Fatalf("no event column in %q", got)
	}
	if !strings.Contains(got, "done in") {
		t.Fatalf("no completion time in %q", got)
	}
}

// TestProgressSequentialPath covers the parallel<=1 inline path with a
// nil event counter (event columns omitted).
func TestProgressSequentialPath(t *testing.T) {
	defer DisableProgress()
	var buf bytes.Buffer
	EnableProgress(&buf, nil)
	MapLabeled(1, 3, func(i int) string { return "job" }, func(i int) int { return i })
	got := buf.String()
	if !strings.Contains(got, "progress: 3/3 jobs") {
		t.Fatalf("no final line in %q", got)
	}
	if strings.Contains(got, "events") {
		t.Fatalf("event column with nil counter in %q", got)
	}
}

// TestProgressDisabledIsSilent: the default (and post-disable) state
// writes nothing and costs only one atomic load per batch.
func TestProgressDisabledIsSilent(t *testing.T) {
	var buf bytes.Buffer
	EnableProgress(&buf, nil)
	DisableProgress()
	Map(2, 4, func(i int) int { return i })
	if buf.Len() != 0 {
		t.Fatalf("disabled reporter wrote %q", buf.String())
	}
}

// TestCountStr pins the humanized count format.
func TestCountStr(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{
		{0, "0"}, {999, "999"}, {1_000, "1.0k"}, {15_300, "15.3k"},
		{2_000_000, "2.0M"}, {3_500_000_000, "3.5G"},
	} {
		if got := countStr(tc.v); got != tc.want {
			t.Fatalf("countStr(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
