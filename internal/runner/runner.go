// Package runner fans independent simulation runs across OS threads.
//
// Every experiment in this repository sweeps dozens of configurations,
// and each configuration is a self-contained deterministic simulation: it
// builds its own sim.Engine, its own SSD, its own workload generator, and
// shares no mutable state with any other run. That makes the sweeps
// embarrassingly parallel — the only requirement is that results come
// back in submission order so tables, CSV output, and downstream
// normalization (row 0 is usually the baseline) are byte-identical to a
// sequential pass.
//
// Map is the single primitive: run n index-addressed jobs on up to p
// goroutines and return the results as a slice in index order. With p=1
// the jobs run inline on the calling goroutine in index order, which is
// exactly the pre-parallelism behavior. Determinism therefore does not
// depend on scheduling at all: each job is deterministic in isolation,
// and assembly order is fixed by index, so any p produces the same bytes.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultParallelism is the worker count used by Default-driven call
// sites; it is stored atomically so the -parallel flag handlers in main
// packages and concurrent test runners never race on it.
var defaultParallelism atomic.Int64

func init() { defaultParallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// SetDefault sets the process-wide default worker count used by Default.
// Values below 1 are clamped to 1 (sequential).
func SetDefault(n int) {
	if n < 1 {
		n = 1
	}
	defaultParallelism.Store(int64(n))
}

// Default returns the process-wide default worker count: GOMAXPROCS at
// startup unless overridden by SetDefault (the -parallel flag).
func Default() int { return int(defaultParallelism.Load()) }

// jobPanic carries a worker panic (plus its job index) back to the Map
// caller so it resurfaces on the calling goroutine, as it would have
// sequentially, instead of crashing the process from a worker.
type jobPanic struct {
	index int
	value any
}

// Map runs job(0) … job(n-1) on up to parallel goroutines and returns
// their results in index order. parallel <= 1 (or n <= 1) runs the jobs
// inline in index order on the calling goroutine. Jobs must be
// independent: each builds whatever engine/device it needs and returns a
// value. If any job panics, Map re-panics on the calling goroutine with
// the first panicking index's value after all workers have stopped
// picking up new work.
func Map[T any](parallel, n int, job func(i int) T) []T {
	return mapLabeled(parallel, n, nil, job)
}

// MapLabeled is Map with a per-item label: when a job panics, the panic
// that resurfaces on the calling goroutine names the offending item —
// "job 7 (pnSSD+split/SpGC/rebuilding)" instead of a bare index — so a
// sweep-point failure can be reproduced from the message alone. label is
// only called on failure; it must be safe to call for any index. Unlike
// Map, the sequential path also wraps the panic, so the message is
// uniform at any parallelism.
func MapLabeled[T any](parallel, n int, label func(i int) string, job func(i int) T) []T {
	if label == nil {
		panic("runner: MapLabeled requires a label function")
	}
	return mapLabeled(parallel, n, label, job)
}

// describe renders one failed job for the re-panic message.
func describe(index int, label func(i int) string) string {
	if label == nil {
		return fmt.Sprintf("job %d", index)
	}
	return fmt.Sprintf("job %d (%s)", index, label(index))
}

func mapLabeled[T any](parallel, n int, label func(i int) string, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	// Progress reporting observes job completions but never influences
	// them: it reads wall-clock time only, so results stay byte-identical
	// with the flag on or off.
	track := prog.enabled.Load()
	var t0 time.Time
	if track {
		t0 = time.Now()
	}
	out := make([]T, n)
	if parallel <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if label == nil {
				// Bare Map keeps the pre-parallelism behavior: the panic
				// propagates with its original stack intact.
				out[i] = job(i)
			} else {
				func() {
					defer func() {
						if v := recover(); v != nil {
							panic(fmt.Sprintf("runner: %s panicked: %v", describe(i, label), v))
						}
					}()
					out[i] = job(i)
				}()
			}
			if track {
				prog.note(i+1, n, t0)
			}
		}
		return out
	}
	if parallel > n {
		parallel = n
	}

	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		failed  bool
		failure jobPanic
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				mu.Lock()
				stop := failed
				mu.Unlock()
				if stop {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							mu.Lock()
							if !failed || i < failure.index {
								failed = true
								failure = jobPanic{index: i, value: v}
							}
							mu.Unlock()
						}
					}()
					out[i] = job(i)
				}()
				if track {
					prog.note(int(done.Add(1)), n, t0)
				}
			}
		}()
	}
	wg.Wait()
	if failed {
		panic(fmt.Sprintf("runner: %s panicked: %v", describe(failure.index, label), failure.value))
	}
	return out
}

// MapDefault is Map at the process-wide default parallelism.
func MapDefault[T any](n int, job func(i int) T) []T {
	return Map(Default(), n, job)
}

// MapLabeledDefault is MapLabeled at the process-wide default parallelism.
func MapLabeledDefault[T any](n int, label func(i int) string, job func(i int) T) []T {
	return MapLabeled(Default(), n, label, job)
}
