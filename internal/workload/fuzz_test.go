package workload

import (
	"bytes"
	"strings"
	"testing"
)

// malformedCSVs is the shared rejection table: every shape ReadCSV must
// refuse with an error (and, per FuzzReadCSV, must never panic on).
var malformedCSVs = []struct {
	name string
	csv  string
}{
	{"empty", ""},
	{"header only rows short", "arrival_ps,op,lpn\n1,R,2\n"},
	{"short row", "arrival_ps,op,lpn,pages\n1,R,2\n"},
	{"long row", "arrival_ps,op,lpn,pages\n1,R,2,3,4\n"},
	{"bad op", "arrival_ps,op,lpn,pages\n1,X,2,3\n"},
	{"non-numeric arrival", "arrival_ps,op,lpn,pages\nnotanumber,R,2,3\n"},
	{"non-numeric lpn", "arrival_ps,op,lpn,pages\n1,R,abc,3\n"},
	{"non-numeric pages", "arrival_ps,op,lpn,pages\n1,R,2,many\n"},
	{"negative arrival", "arrival_ps,op,lpn,pages\n-5,R,2,3\n"},
	{"negative lpn", "arrival_ps,op,lpn,pages\n1,R,-2,3\n"},
	{"zero pages", "arrival_ps,op,lpn,pages\n1,R,2,0\n"},
	{"negative pages", "arrival_ps,op,lpn,pages\n1,R,2,-1\n"},
	{"huge pages", "arrival_ps,op,lpn,pages\n1,R,2,1048577\n"},
	{"lpn near overflow", "arrival_ps,op,lpn,pages\n1,R,9223372036854775807,1\n"},
	{"out of order", "arrival_ps,op,lpn,pages\n10,R,0,1\n5,W,8,1\n"},
	{"bare quote", "arrival_ps,op,lpn,pages\n1,R,\"2,3\n"},
	{"float arrival", "arrival_ps,op,lpn,pages\n1.5,R,2,3\n"},
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	for _, tc := range malformedCSVs {
		if _, err := ReadCSV(strings.NewReader(tc.csv), "bad"); err == nil {
			t.Errorf("%s: ReadCSV accepted %q", tc.name, tc.csv)
		}
	}
}

// FuzzReadCSV: ReadCSV takes untrusted trace files, so on arbitrary
// bytes it must either return a valid trace or an error — never panic.
// A returned trace must also satisfy the replay preconditions the
// parser claims to enforce.
func FuzzReadCSV(f *testing.F) {
	// Seed with real WriteCSV output...
	tr, err := Named("rocksdb-0", 2048, 40, 9)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("arrival_ps,op,lpn,pages\n0,R,0,1\n0,W,4,2\n"))
	// ...and with every known-malformed shape.
	for _, tc := range malformedCSVs {
		f.Add([]byte(tc.csv))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		prev := int64(-1)
		for i, r := range got.Requests {
			if r.Pages <= 0 || r.Pages > MaxCSVReqPages {
				t.Fatalf("request %d: page count %d escaped validation", i, r.Pages)
			}
			if r.LPN < 0 || r.LPN+int64(r.Pages) > got.Footprint {
				t.Fatalf("request %d: [%d,%d) outside footprint %d", i, r.LPN, r.LPN+int64(r.Pages), got.Footprint)
			}
			if int64(r.Arrival) < prev {
				t.Fatalf("request %d: arrival %d before previous %d", i, r.Arrival, prev)
			}
			prev = int64(r.Arrival)
			if r.Tenant != 0 {
				t.Fatalf("request %d: parser invented tenant %d", i, r.Tenant)
			}
		}
	})
}
