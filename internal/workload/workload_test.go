package workload

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSyntheticSequential(t *testing.T) {
	gen := Synthetic(SeqWrite, 64, 4, 1)
	for i := 0; i < 16; i++ {
		r := gen(i)
		if r.Kind != stats.Write {
			t.Fatal("seq-write produced a read")
		}
		want := int64((i * 4) % 64)
		if r.LPN != want || r.Pages != 4 {
			t.Fatalf("req %d: lpn=%d pages=%d, want lpn=%d pages=4", i, r.LPN, r.Pages, want)
		}
	}
}

func TestSyntheticRandomAligned(t *testing.T) {
	gen := Synthetic(RandRead, 1024, 4, 2)
	seen := make(map[int64]bool)
	for i := 0; i < 200; i++ {
		r := gen(i)
		if r.Kind != stats.Read {
			t.Fatal("rand-read produced a write")
		}
		if r.LPN%4 != 0 {
			t.Fatalf("unaligned LPN %d", r.LPN)
		}
		if r.LPN < 0 || r.LPN+4 > 1024 {
			t.Fatalf("LPN %d outside footprint", r.LPN)
		}
		seen[r.LPN] = true
	}
	if len(seen) < 50 {
		t.Fatalf("random generator too repetitive: %d distinct", len(seen))
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(RandWrite, 512, 2, 7)
	b := Synthetic(RandWrite, 512, 2, 7)
	for i := 0; i < 50; i++ {
		if a(i) != b(i) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestPatternStrings(t *testing.T) {
	if SeqRead.String() != "seq-read" || RandWrite.String() != "rand-write" {
		t.Fatal("pattern strings wrong")
	}
	if SeqWrite.Kind() != stats.Write || RandRead.Kind() != stats.Read {
		t.Fatal("pattern kinds wrong")
	}
}

func TestGenerateRespectsParams(t *testing.T) {
	p := Params{ReadRatio: 0.7, ZipfS: 1.3, HotRegions: 16, ReqPages: 2, MeanGap: 10 * sim.Microsecond, Burst: 4}
	tr := Generate("test", p, 4096, 1000, 42)
	if len(tr.Requests) != 1000 {
		t.Fatalf("generated %d requests", len(tr.Requests))
	}
	reads, writes, frac := tr.Mix()
	if reads+writes != 1000 {
		t.Fatal("mix does not sum")
	}
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction = %.2f, want ~0.7", frac)
	}
	var prev sim.Time
	for _, r := range tr.Requests {
		if r.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.Arrival
		if r.LPN < 0 || r.LPN+int64(r.Pages) > 4096 {
			t.Fatalf("request outside footprint: lpn=%d", r.LPN)
		}
	}
	if tr.Duration() <= 0 {
		t.Fatal("zero duration")
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	// With strong skew, the busiest region should absorb far more than its
	// uniform share of requests.
	skewed := Generate("skew", Params{ReadRatio: 1, ZipfS: 1.5, HotRegions: 16, ReqPages: 1, MeanGap: sim.Microsecond, Burst: 1}, 1600, 4000, 1)
	uniform := Generate("flat", Params{ReadRatio: 1, ZipfS: 0, HotRegions: 16, ReqPages: 1, MeanGap: sim.Microsecond, Burst: 1}, 1600, 4000, 1)
	share := func(tr Trace) float64 {
		counts := make(map[int64]int)
		for _, r := range tr.Requests {
			counts[r.LPN/100]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(tr.Requests))
	}
	if share(skewed) < 2*share(uniform) {
		t.Fatalf("skewed max-region share %.3f not >> uniform %.3f", share(skewed), share(uniform))
	}
}

func TestNamedPresets(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("only %d presets", len(names))
	}
	for _, name := range names {
		tr, err := Named(name, 4096, 200, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Requests) != 200 || tr.Name != name {
			t.Fatalf("%s: bad trace", name)
		}
		if why, err := Describe(name); err != nil || why == "" {
			t.Fatalf("%s: no description", name)
		}
	}
	if _, err := Named("nope", 4096, 10, 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("unknown describe accepted")
	}
}

func TestPresetCharacters(t *testing.T) {
	// The read-ratio ordering that drives the experiments must hold:
	// search-0 is most read-heavy; update-0 most write-heavy.
	frac := func(name string) float64 {
		tr, err := Named(name, 8192, 2000, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, _, f := tr.Mix()
		return f
	}
	if !(frac("search-0") > frac("web-0") && frac("web-0") > frac("rocksdb-0")) {
		t.Fatal("read-heavy ordering broken")
	}
	if !(frac("update-0") < frac("mail-0") && frac("mail-0") < frac("rocksdb-0")) {
		t.Fatal("write-heavy ordering broken")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Named("rocksdb-0", 2048, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rocksdb-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if back.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d mutated: %+v vs %+v", i, back.Requests[i], tr.Requests[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"arrival_ps,op,lpn,pages\n1,X,2,3\n",
		"arrival_ps,op,lpn,pages\nnotanumber,R,2,3\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c), "bad"); err == nil {
			t.Fatalf("case %d: bad CSV accepted", i)
		}
	}
}
