// Package workload generates the I/O streams the experiments run:
// closed-loop synthetic patterns (sequential/random read/write, Figs
// 16-18) and open-loop trace workloads modelled after the enterprise
// traces the paper replays (Exchange, RocksDB, web, mail, ...).
//
// The real trace files are not redistributable, so each named preset is a
// parametric generator tuned to the published characteristics that matter
// to the paper's results: read/write mix, spatial skew (which produces the
// read-channel imbalance of Fig 3), request size, arrival intensity, and
// burstiness. A CSV reader/writer allows replaying genuine traces when
// available.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Pattern is a closed-loop synthetic access pattern.
type Pattern int

// Synthetic patterns of Figs 16-18.
const (
	SeqRead Pattern = iota
	SeqWrite
	RandRead
	RandWrite
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case SeqRead:
		return "seq-read"
	case SeqWrite:
		return "seq-write"
	case RandRead:
		return "rand-read"
	case RandWrite:
		return "rand-write"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Kind returns the I/O direction of the pattern.
func (p Pattern) Kind() stats.IOKind {
	if p == SeqRead || p == RandRead {
		return stats.Read
	}
	return stats.Write
}

// Synthetic returns a closed-loop request generator over a footprint of
// LPNs with fixed request size (the paper's synthetic I/O is 64 KB = 4
// pages of 16 KB, exercising multi-plane commands).
func Synthetic(p Pattern, footprint int64, reqPages int, seed int64) func(i int) host.Request {
	if footprint <= 0 || reqPages <= 0 {
		panic("workload: invalid synthetic parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	var cursor int64
	return func(i int) host.Request {
		var lpn int64
		switch p {
		case SeqRead, SeqWrite:
			lpn = cursor
			cursor = (cursor + int64(reqPages)) % footprint
		case RandRead, RandWrite:
			lpn = rng.Int63n(footprint)
			lpn -= lpn % int64(reqPages)
		}
		return host.Request{Kind: p.Kind(), LPN: lpn, Pages: reqPages}
	}
}

// Params tunes a trace generator.
type Params struct {
	// ReadRatio is the fraction of requests that are reads.
	ReadRatio float64
	// ZipfS > 1 skews request LPNs toward hot regions; 0 means uniform.
	// Because sequential warm-up with PCWD maps consecutive LPNs to
	// consecutive channels in round-robin, hot *regions* (not hot pages)
	// are what concentrates traffic on a subset of channels.
	ZipfS float64
	// HotRegions partitions the footprint; Zipf picks a region, then the
	// address is uniform within it. More skew + fewer regions = stronger
	// channel imbalance for reads (Fig 3).
	HotRegions int
	// RegionPages is the size of the *read-hot* window at the start of
	// each region, in pages. Because page-striping policies map
	// consecutive LPNs round-robin across channels, a hot window narrower
	// than one striping round (channels × planes pages) concentrates its
	// reads on a channel subset — the mechanism behind the paper's Fig 3
	// read imbalance. Writes ignore it and spread over the whole region,
	// keeping GC pressure realistic. 0 disables the window (reads use the
	// full region too).
	RegionPages int
	// ReqPages is the request size in pages.
	ReqPages int
	// MeanGap is the mean inter-arrival time of request bursts.
	MeanGap sim.Time
	// Burst is the number of requests arriving together.
	Burst int
}

// Trace is an open-loop workload.
type Trace struct {
	Name     string
	Requests []host.Request
	// Footprint is the highest LPN + request span the trace touches.
	Footprint int64
}

// Generate builds a trace of n requests over a footprint of LPNs.
func Generate(name string, p Params, footprint int64, n int, seed int64) Trace {
	if p.ReqPages <= 0 || footprint < int64(p.ReqPages) || n <= 0 {
		panic("workload: invalid generation parameters")
	}
	if p.Burst <= 0 {
		p.Burst = 1
	}
	if p.HotRegions <= 0 {
		p.HotRegions = 64
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if p.ZipfS > 1 {
		zipf = rand.NewZipf(rng, p.ZipfS, 1, uint64(p.HotRegions-1))
	}
	regionSize := footprint / int64(p.HotRegions)
	if regionSize < int64(p.ReqPages) {
		regionSize = int64(p.ReqPages)
	}
	// Shuffle region order so "hot" regions are scattered over the address
	// space rather than always the low LPNs.
	perm := rng.Perm(p.HotRegions)
	// Each region's read-hot window sits at an independent random offset.
	// Region starts are all congruent modulo the striping round, so
	// anchoring windows at region starts would pile every hot window onto
	// the same channels; random offsets scatter them across (channel, way)
	// positions the way scattered hot files do on a real device.
	hotOff := make([]int64, p.HotRegions)
	for i := range hotOff {
		span := regionSize - int64(p.RegionPages)
		if p.RegionPages > 0 && span > 0 {
			off := rng.Int63n(span + 1)
			off -= off % int64(p.ReqPages)
			hotOff[i] = off
		}
	}

	reqs := make([]host.Request, 0, n)
	now := sim.Time(0)
	for len(reqs) < n {
		for b := 0; b < p.Burst && len(reqs) < n; b++ {
			kind := stats.Write
			if rng.Float64() < p.ReadRatio {
				kind = stats.Read
			}
			var region int64
			if zipf != nil {
				region = int64(perm[zipf.Uint64()])
			} else {
				region = rng.Int63n(int64(p.HotRegions))
			}
			base := region * regionSize
			window := regionSize
			if kind == stats.Read && p.RegionPages > 0 && int64(p.RegionPages) < regionSize {
				window = int64(p.RegionPages)
				base += hotOff[region]
			}
			span := window - int64(p.ReqPages)
			var off int64
			if span > 0 {
				off = rng.Int63n(span + 1)
			}
			lpn := base + off
			if lpn+int64(p.ReqPages) > footprint {
				lpn = footprint - int64(p.ReqPages)
			}
			reqs = append(reqs, host.Request{Arrival: now, Kind: kind, LPN: lpn, Pages: p.ReqPages})
		}
		gap := sim.Time(rng.ExpFloat64() * float64(p.MeanGap))
		now += gap
	}
	return Trace{Name: name, Requests: reqs, Footprint: footprint}
}

// preset describes one named workload family.
type preset struct {
	params Params
	why    string
}

// presets are tuned to the qualitative characteristics the paper reports
// for its trace suite: Exchange is read-skewed and bursty (the Fig 3
// imbalance example), RocksDB mixes compaction writes with hot random
// reads (the Fig 20 tail-latency example), web serving is read-dominated,
// mail and update streams are write-heavy.
var presets = map[string]preset{
	"exchange-0": {Params{ReadRatio: 0.60, ZipfS: 1.3, HotRegions: 32, RegionPages: 16, ReqPages: 2, MeanGap: 60 * sim.Microsecond, Burst: 4},
		"mail-server metadata: read-leaning, strongly skewed, bursty"},
	"exchange-1": {Params{ReadRatio: 0.75, ZipfS: 1.4, HotRegions: 16, RegionPages: 8, ReqPages: 2, MeanGap: 70 * sim.Microsecond, Burst: 4},
		"the paper's Fig 3 example: reads concentrate on few channels"},
	"rocksdb-0": {Params{ReadRatio: 0.50, ZipfS: 1.2, HotRegions: 64, RegionPages: 16, ReqPages: 4, MeanGap: 90 * sim.Microsecond, Burst: 8},
		"LSM store: compaction write bursts + hot random reads (Fig 20a)"},
	"rocksdb-1": {Params{ReadRatio: 0.35, ZipfS: 1.1, HotRegions: 64, RegionPages: 24, ReqPages: 4, MeanGap: 80 * sim.Microsecond, Burst: 8},
		"write-heavier LSM phase, high GC pressure"},
	"web-0": {Params{ReadRatio: 0.90, ZipfS: 1.25, HotRegions: 48, RegionPages: 12, ReqPages: 2, MeanGap: 50 * sim.Microsecond, Burst: 2},
		"web serving: read-dominated with moderate skew"},
	"mail-0": {Params{ReadRatio: 0.25, ZipfS: 0, HotRegions: 64, ReqPages: 2, MeanGap: 70 * sim.Microsecond, Burst: 4},
		"mail delivery: write-dominated, near-uniform"},
	"update-0": {Params{ReadRatio: 0.10, ZipfS: 0, HotRegions: 64, ReqPages: 4, MeanGap: 100 * sim.Microsecond, Burst: 8},
		"bulk update stream: almost pure sequentialish writes"},
	"search-0": {Params{ReadRatio: 0.95, ZipfS: 1.5, HotRegions: 8, RegionPages: 8, ReqPages: 2, MeanGap: 40 * sim.Microsecond, Burst: 2},
		"index serving: extreme read skew, worst-case channel imbalance"},
}

// Names returns the available preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line rationale of a preset.
func Describe(name string) (string, error) {
	p, ok := presets[name]
	if !ok {
		return "", fmt.Errorf("workload: unknown preset %q", name)
	}
	return p.why, nil
}

// Named generates a preset trace over the footprint.
func Named(name string, footprint int64, n int, seed int64) (Trace, error) {
	p, ok := presets[name]
	if !ok {
		return Trace{}, fmt.Errorf("workload: unknown preset %q (have %v)", name, Names())
	}
	return Generate(name, p.params, footprint, n, seed), nil
}

// WriteCSV stores a trace as "arrival_ps,op,lpn,pages" rows.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_ps", "op", "lpn", "pages"}); err != nil {
		return err
	}
	for _, r := range t.Requests {
		op := "W"
		if r.Kind == stats.Read {
			op = "R"
		}
		if err := cw.Write([]string{
			strconv.FormatInt(int64(r.Arrival), 10),
			op,
			strconv.FormatInt(r.LPN, 10),
			strconv.Itoa(r.Pages),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MaxCSVReqPages bounds the per-request page count ReadCSV accepts. A
// larger value is always a conversion bug (the biggest real-trace
// request is a few MB), and the bound keeps lpn+pages arithmetic far
// from integer overflow.
const MaxCSVReqPages = 1 << 20

// ReadCSV loads a trace written by WriteCSV (or hand-converted from a
// real trace). The input is untrusted: every malformed shape — short or
// long rows, non-numeric fields, non-positive page counts, negative
// arrivals or LPNs, and out-of-order arrivals — returns an error rather
// than producing a trace that would later crash a replay.
func ReadCSV(r io.Reader, name string) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row widths are checked per row below
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: bad trace CSV: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("workload: empty trace")
	}
	start := 0
	if len(rows[0]) > 0 && rows[0][0] == "arrival_ps" {
		start = 1
	}
	t := Trace{Name: name}
	prev := sim.Time(-1)
	for i, row := range rows[start:] {
		if len(row) != 4 {
			return Trace{}, fmt.Errorf("workload: row %d has %d fields, want 4", i, len(row))
		}
		at, err1 := strconv.ParseInt(row[0], 10, 64)
		lpn, err2 := strconv.ParseInt(row[2], 10, 64)
		pages, err3 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return Trace{}, fmt.Errorf("workload: row %d unparseable", i)
		}
		if at < 0 {
			return Trace{}, fmt.Errorf("workload: row %d negative arrival %d", i, at)
		}
		if sim.Time(at) < prev {
			return Trace{}, fmt.Errorf("workload: row %d arrival %d before previous arrival %d — trace must be time-ordered", i, at, int64(prev))
		}
		prev = sim.Time(at)
		if lpn < 0 || lpn > math.MaxInt64-MaxCSVReqPages {
			return Trace{}, fmt.Errorf("workload: row %d lpn %d out of range", i, lpn)
		}
		if pages <= 0 || pages > MaxCSVReqPages {
			return Trace{}, fmt.Errorf("workload: row %d page count %d outside [1,%d]", i, pages, MaxCSVReqPages)
		}
		kind := stats.Write
		switch row[1] {
		case "R", "r":
			kind = stats.Read
		case "W", "w":
		default:
			return Trace{}, fmt.Errorf("workload: row %d bad op %q", i, row[1])
		}
		req := host.Request{Arrival: sim.Time(at), Kind: kind, LPN: lpn, Pages: pages}
		if end := lpn + int64(pages); end > t.Footprint {
			t.Footprint = end
		}
		t.Requests = append(t.Requests, req)
	}
	return t, nil
}

// Mix summarizes a trace's composition for reports.
func (t Trace) Mix() (reads, writes int, readFrac float64) {
	for _, r := range t.Requests {
		if r.Kind == stats.Read {
			reads++
		} else {
			writes++
		}
	}
	total := reads + writes
	if total == 0 {
		return 0, 0, 0
	}
	return reads, writes, float64(reads) / float64(total)
}

// Duration returns the arrival span of the trace.
func (t Trace) Duration() sim.Time {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival - t.Requests[0].Arrival
}
