package workload

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestQueueConfigsMapping(t *testing.T) {
	specs := []TenantSpec{
		{Name: "lat", Weight: 4, Burst: 0, ReadSLO: 300 * sim.Microsecond, WriteSLO: 800 * sim.Microsecond},
		{Name: "bulk", Weight: 1, Burst: 4},
	}
	cfgs := QueueConfigs(specs)
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	if cfgs[0].Name != "lat" || cfgs[0].Weight != 4 || cfgs[0].Burst != 0 {
		t.Fatalf("queue 0 = %+v", cfgs[0])
	}
	if cfgs[0].SLO[stats.Read] != 300*sim.Microsecond || cfgs[0].SLO[stats.Write] != 800*sim.Microsecond {
		t.Fatalf("queue 0 SLOs = %v", cfgs[0].SLO)
	}
	if cfgs[1].Name != "bulk" || cfgs[1].Weight != 1 || cfgs[1].Burst != 4 || cfgs[1].SLO != [2]sim.Time{} {
		t.Fatalf("queue 1 = %+v", cfgs[1])
	}
}

func TestGenerateTenantsDeterministic(t *testing.T) {
	specs := []TenantSpec{
		{Name: "a", Preset: "web-0", Requests: 80, Intensity: 2},
		{Name: "b", Preset: "update-0", Requests: 80, On: 200 * sim.Microsecond, Off: 600 * sim.Microsecond},
	}
	t1, err := GenerateTenants(specs, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenerateTenants(specs, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Requests) != 160 || len(t2.Requests) != 160 {
		t.Fatalf("request counts %d, %d", len(t1.Requests), len(t2.Requests))
	}
	for i := range t1.Requests {
		if t1.Requests[i] != t2.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, t1.Requests[i], t2.Requests[i])
		}
	}
	if t1.Name != "a+b" {
		t.Fatalf("trace name %q", t1.Name)
	}
}

// TestGenerateTenantsPartition: non-overlapping tenants must touch
// disjoint LPN slices, shares must be honoured, and the merged trace
// must be time-ordered with tenant-ID tie-breaks.
func TestGenerateTenantsPartition(t *testing.T) {
	const foot = 8192
	specs := []TenantSpec{
		{Name: "half", Preset: "rocksdb-0", Requests: 100, Share: 0.5},
		{Name: "restA", Preset: "web-0", Requests: 100},
		{Name: "restB", Preset: "mail-0", Requests: 100},
	}
	tr, err := GenerateTenants(specs, foot, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous slices in spec order: [0,4096), [4096,6144), [6144,8192).
	bounds := [][2]int64{{0, 4096}, {4096, 6144}, {6144, 8192}}
	for i, r := range tr.Requests {
		b := bounds[r.Tenant]
		if r.LPN < b[0] || r.LPN+int64(r.Pages) > b[1] {
			t.Fatalf("request %d (tenant %d) [%d,%d) escapes slice [%d,%d)",
				i, r.Tenant, r.LPN, r.LPN+int64(r.Pages), b[0], b[1])
		}
		if i > 0 {
			p, q := tr.Requests[i-1], r
			if q.Arrival < p.Arrival || (q.Arrival == p.Arrival && q.Tenant < p.Tenant) {
				t.Fatalf("merge order broken at %d: %+v after %+v", i, q, p)
			}
		}
	}
}

// TestGenerateTenantsOverlap: an overlapping tenant roams the whole
// footprint while its partitioned neighbour stays in its slice.
func TestGenerateTenantsOverlap(t *testing.T) {
	const foot = 4096
	specs := []TenantSpec{
		{Name: "shared", Preset: "rocksdb-0", Requests: 200, Overlap: true},
		{Name: "own", Preset: "web-0", Requests: 50},
	}
	tr, err := GenerateTenants(specs, foot, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sharedMax int64
	for _, r := range tr.Requests {
		if end := r.LPN + int64(r.Pages); r.LPN < 0 || end > foot {
			t.Fatalf("request [%d,%d) outside footprint", r.LPN, end)
		}
		if r.Tenant == 0 {
			if end := r.LPN + int64(r.Pages); end > sharedMax {
				sharedMax = end
			}
		}
	}
	// The overlapping tenant was not confined to the partitioned slice.
	if sharedMax <= foot/2 {
		t.Fatalf("overlap tenant stayed below %d of %d pages", sharedMax, foot)
	}
}

// TestGenerateTenantsBurstyPhases: with On/Off set, every arrival of
// the bursty tenant lands inside an active window of the on/off cycle.
func TestGenerateTenantsBurstyPhases(t *testing.T) {
	on, off := 250*sim.Microsecond, 750*sim.Microsecond
	specs := []TenantSpec{
		{Name: "bursty", Preset: "update-0", Requests: 120, On: on, Off: off},
		{Name: "steady", Preset: "web-0", Requests: 120},
	}
	tr, err := GenerateTenants(specs, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	cycle := on + off
	for _, r := range tr.Requests {
		if r.Tenant != 0 {
			continue
		}
		if r.Arrival%cycle >= on {
			t.Fatalf("bursty arrival %v lands in the off window (cycle %v, on %v)", r.Arrival, cycle, on)
		}
	}
}

// TestGenerateTenantsIntensity: Intensity 4 compresses a tenant's
// arrival span by roughly 4x relative to the unscaled run.
func TestGenerateTenantsIntensity(t *testing.T) {
	span := func(intensity float64) sim.Time {
		tr, err := GenerateTenants([]TenantSpec{
			{Name: "x", Preset: "rocksdb-0", Requests: 200, Intensity: intensity},
		}, 4096, 6)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Duration()
	}
	base, fast := span(0), span(4)
	ratio := float64(base) / float64(fast)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("intensity 4 compressed span by %.2fx, want ~4x (base %v, fast %v)", ratio, base, fast)
	}
}

func TestGenerateTenantsParamsOverridePreset(t *testing.T) {
	p := Params{ReadRatio: 1.0, ReqPages: 2, MeanGap: 10 * sim.Microsecond}
	tr, err := GenerateTenants([]TenantSpec{
		{Name: "custom", Preset: "update-0", Params: &p, Requests: 60},
	}, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes, _ := tr.Mix()
	if writes != 0 || reads != 60 {
		t.Fatalf("explicit read-only Params ignored: %d reads, %d writes", reads, writes)
	}
}

func TestGenerateTenantsRejects(t *testing.T) {
	ok := TenantSpec{Name: "ok", Preset: "web-0", Requests: 10}
	cases := []struct {
		name  string
		specs []TenantSpec
		foot  int64
		want  string
	}{
		{"no specs", nil, 1024, "no tenant specs"},
		{"bad footprint", []TenantSpec{ok}, 0, "footprint"},
		{"negative share", []TenantSpec{{Name: "x", Preset: "web-0", Requests: 10, Share: -0.1}}, 1024, "share"},
		{"shares over 1", []TenantSpec{
			{Name: "x", Preset: "web-0", Requests: 10, Share: 0.7},
			{Name: "y", Preset: "web-0", Requests: 10, Share: 0.7},
		}, 1024, "shares sum"},
		{"zero requests", []TenantSpec{{Name: "x", Preset: "web-0"}}, 1024, "requests"},
		{"unknown preset", []TenantSpec{{Name: "x", Preset: "nope", Requests: 10}}, 1024, "unknown preset"},
		{"slice too small", []TenantSpec{
			{Name: "x", Preset: "rocksdb-0", Requests: 10, Share: 0.001},
			ok,
		}, 1024, "smaller than"},
	}
	for _, tc := range cases {
		_, err := GenerateTenants(tc.specs, tc.foot, 1)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPhase(t *testing.T) {
	on, off := sim.Time(100), sim.Time(300)
	cases := []struct{ in, want sim.Time }{
		{0, 0},
		{99, 99},   // still inside the first active window
		{100, 400}, // first instant of the second window
		{250, 850}, // two full cycles plus 50 into the third window
	}
	for _, c := range cases {
		if got := phase(c.in, on, off); got != c.want {
			t.Errorf("phase(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Zero on/off is the identity.
	if got := phase(123, 0, 0); got != 123 {
		t.Errorf("phase with no windows = %d, want 123", got)
	}
	if got := phase(123, 100, 0); got != 123 {
		t.Errorf("phase with zero off = %d, want 123", got)
	}
}
