// Multi-tenant workload generation: each tenant gets its own open-loop
// generator (preset or explicit params, footprint partition or overlap,
// arrival-intensity scaling, optional bursty on/off phases) and the
// per-tenant streams merge into one time-ordered trace whose requests
// carry tenant IDs — ready for host.Frontend.Replay.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TenantSpec describes one tenant's workload and queue configuration.
type TenantSpec struct {
	Name string
	// Preset names a workload family; Params overrides it when non-nil.
	Preset string
	Params *Params
	// Requests is this tenant's request count.
	Requests int

	// Share is the fraction of the device footprint this tenant owns
	// when footprints are partitioned; tenants with Share 0 split the
	// unclaimed remainder equally. Overlap instead gives the tenant the
	// whole footprint — the shared-dataset (and GC cross-talk) case.
	Share   float64
	Overlap bool

	// Intensity scales arrival gaps: 2.0 doubles the tenant's arrival
	// rate (halves gaps), 0 or 1 leaves the preset's intensity. Applied
	// before on/off phasing.
	Intensity float64
	// On/Off, when Off > 0, compress the tenant's arrivals into
	// alternating active/idle phases of the given lengths — the bursty
	// noisy-neighbor shape. Arrivals keep their order.
	On, Off sim.Time

	// Queue-pair parameters forwarded to host.TenantConfig.
	Weight   int
	Burst    int
	ReadSLO  sim.Time
	WriteSLO sim.Time
}

// QueueConfig converts the spec's queue-pair parameters to the front
// end's TenantConfig.
func (s TenantSpec) QueueConfig() host.TenantConfig {
	c := host.TenantConfig{Name: s.Name, Weight: s.Weight, Burst: s.Burst}
	c.SLO[stats.Read] = s.ReadSLO
	c.SLO[stats.Write] = s.WriteSLO
	return c
}

// QueueConfigs converts every spec.
func QueueConfigs(specs []TenantSpec) []host.TenantConfig {
	out := make([]host.TenantConfig, len(specs))
	for i, s := range specs {
		out[i] = s.QueueConfig()
	}
	return out
}

// phase compresses an arrival timeline into on/off bursts: active time
// accumulates during On-length windows separated by Off-length idle
// gaps, so a tenant that would arrive continuously instead alternates
// between full-rate activity and silence.
func phase(a, on, off sim.Time) sim.Time {
	if on <= 0 || off <= 0 {
		return a
	}
	return (a/on)*(on+off) + a%on
}

// GenerateTenants builds each tenant's trace and merges them into one
// time-ordered multi-tenant trace over the device footprint. Merging is
// deterministic: ties in arrival time resolve by tenant ID, so the same
// (specs, footprint, seed) always yields the same byte-for-byte trace.
// Each tenant draws from an independent seed derived from the base seed
// and its index.
func GenerateTenants(specs []TenantSpec, footprint int64, seed int64) (Trace, error) {
	if len(specs) == 0 {
		return Trace{}, fmt.Errorf("workload: no tenant specs")
	}
	if footprint <= 0 {
		return Trace{}, fmt.Errorf("workload: non-positive footprint %d", footprint)
	}

	// Partition the footprint: overlapping tenants see all of it;
	// partitioned tenants carve contiguous slices sized by Share, with
	// zero-Share tenants splitting the unclaimed remainder equally.
	claimed := 0.0
	unsized := 0
	for i, s := range specs {
		if s.Share < 0 || s.Share > 1 {
			return Trace{}, fmt.Errorf("workload: tenant %d share %.2f outside [0,1]", i, s.Share)
		}
		if s.Overlap {
			continue
		}
		if s.Share > 0 {
			claimed += s.Share
		} else {
			unsized++
		}
	}
	if claimed > 1.0001 {
		return Trace{}, fmt.Errorf("workload: tenant shares sum to %.2f > 1", claimed)
	}
	equal := 0.0
	if unsized > 0 {
		equal = (1 - claimed) / float64(unsized)
	}

	var merged []host.Request
	base := int64(0)
	name := ""
	for i, s := range specs {
		if s.Requests <= 0 {
			return Trace{}, fmt.Errorf("workload: tenant %d (%s) has %d requests", i, s.Name, s.Requests)
		}
		p := s.Params
		if p == nil {
			pr, ok := presets[s.Preset]
			if !ok {
				return Trace{}, fmt.Errorf("workload: tenant %d: unknown preset %q (have %v)", i, s.Preset, Names())
			}
			p = &pr.params
		}
		params := *p
		if s.Intensity > 0 && s.Intensity != 1 {
			params.MeanGap = sim.Time(float64(params.MeanGap) / s.Intensity)
			if params.MeanGap <= 0 {
				params.MeanGap = 1
			}
		}
		span := footprint
		off := int64(0)
		if !s.Overlap {
			share := s.Share
			if share == 0 {
				share = equal
			}
			span = int64(float64(footprint) * share)
			if span < int64(params.ReqPages) {
				return Trace{}, fmt.Errorf("workload: tenant %d (%s) footprint share %d pages is smaller than its %d-page requests", i, s.Name, span, params.ReqPages)
			}
			off = base
			base += span
		}
		tr := Generate(s.Name, params, span, s.Requests, seed+int64(i)*0x9e37)
		for _, r := range tr.Requests {
			r.LPN += off
			r.Arrival = phase(r.Arrival, s.On, s.Off)
			r.Tenant = i
			merged = append(merged, r)
		}
		if name != "" {
			name += "+"
		}
		name += s.Name
	}

	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].Arrival != merged[b].Arrival {
			return merged[a].Arrival < merged[b].Arrival
		}
		return merged[a].Tenant < merged[b].Tenant
	})
	return Trace{Name: name, Requests: merged, Footprint: footprint}, nil
}
