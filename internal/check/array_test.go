package check

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestArrayCheckerNilIsInert(t *testing.T) {
	var c *ArrayChecker
	c.Ack(0, 0)
	c.CheckAllAcked(4, 0)
	c.CheckStripeConservation(4, 3, 2, nil, 0)
	c.CheckRebuildComplete(4, nil, 0)
	if c.DoubleAcks() != 0 || c.Violations() != nil || c.Err() != nil {
		t.Fatal("nil array checker is not inert")
	}
}

func TestArrayCheckerDoubleAck(t *testing.T) {
	c := NewArrayChecker(0)
	c.Ack(0, sim.Microsecond)
	c.Ack(1, 2*sim.Microsecond)
	c.Ack(0, 3*sim.Microsecond) // failover path acked again
	if c.DoubleAcks() != 1 {
		t.Fatalf("DoubleAcks = %d, want 1", c.DoubleAcks())
	}
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "array-double-ack" {
		t.Fatalf("violations: %v", vs)
	}
	c.CheckAllAcked(2, 4*sim.Microsecond)
	if len(c.Violations()) != 1 {
		t.Fatalf("clean ledger grew violations: %v", c.Violations())
	}
}

func TestArrayCheckerMissingAndPhantomAcks(t *testing.T) {
	c := NewArrayChecker(0)
	c.Ack(0, 0)
	c.Ack(7, 0) // outside [0,2)
	c.CheckAllAcked(2, sim.Microsecond)
	var rules []string
	for _, v := range c.Violations() {
		rules = append(rules, v.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "array-missing-ack") {
		t.Fatalf("missing ack not flagged: %v", rules)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestArrayCheckerStripeConservation(t *testing.T) {
	c := NewArrayChecker(0)
	// 4 stripes, width 3, need 2 live shards. Stripe 2 lost two shards.
	ok := func(stripe int64, lane int) bool {
		if stripe == 2 {
			return lane == 0
		}
		return lane != 1 // one dead lane everywhere else: still conserved
	}
	c.CheckStripeConservation(4, 3, 2, ok, sim.Second)
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "array-stripe-loss" || !strings.Contains(vs[0].Detail, "stripe 2") {
		t.Fatalf("violations: %v", vs)
	}
}

func TestArrayCheckerRebuildComplete(t *testing.T) {
	c := NewArrayChecker(0)
	c.CheckRebuildComplete(5, func(s int64) bool { return s != 3 }, sim.Second)
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "array-rebuild-incomplete" {
		t.Fatalf("violations: %v", vs)
	}
}

func TestArrayCheckerTruncatesAtCap(t *testing.T) {
	c := NewArrayChecker(2)
	c.CheckRebuildComplete(10, func(int64) bool { return false }, 0)
	if len(c.Violations()) != 2 {
		t.Fatalf("recorded %d violations, cap 2", len(c.Violations()))
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "10 violation(s)") {
		t.Fatalf("Err() = %v, want total 10", err)
	}
}
