package prop

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// ArrayCase is one randomized array configuration: a small erasure-coded
// cluster of generated devices plus a device-failure schedule. It is a
// separate dimension from Case — the device generator's draw sequence is
// frozen by the existing determinism tests, so the array dimension draws
// from its own stream.
type ArrayCase struct {
	Index int
	Seed  uint64
	Arch  ssd.Arch

	Planes  int
	Blocks  int
	Pages   int
	BusMTps int
	GCMode  ftl.GCMode

	Data, Parity int
	Groups       int

	// Exactly one failure mode per case, so the no-failed-reads property
	// stays provable: a kill never overlaps an outage on its survivors.
	Kill    bool     // one permanent device kill (with spare + rebuild)
	KillDev int      // coded device index
	KillAt  sim.Time // kill time
	Outages int      // transient windows when Kill is false

	Trace    string
	Requests int
}

// String renders the case for failure messages.
func (c ArrayCase) String() string {
	fail := fmt.Sprintf("outages=%d", c.Outages)
	if c.Kill {
		fail = fmt.Sprintf("kill dev%d@%v", c.KillDev, c.KillAt)
	}
	return fmt.Sprintf("array case %d seed=%#x %v geo=%d/%d/%d gc=%v %d+%d x%d %s %s x%d",
		c.Index, c.Seed, c.Arch, c.Planes, c.Blocks, c.Pages, c.GCMode,
		c.Data, c.Parity, c.Groups, fail, c.Trace, c.Requests)
}

// GenerateArray draws n array cases from the seed; the same (seed, n)
// always yields the same slice. The device space is deliberately tamer
// than Generate's — modest utilization, GC modes that drain — because
// the properties under test are the router's failure paths, not FTL
// feasibility edges (Generate already covers those per device).
func GenerateArray(seed uint64, n int) []ArrayCase {
	r := &rng{s: seed ^ 0xbb67ae8584caa73b}
	traces := workload.Names()
	gcModes := []ftl.GCMode{ftl.GCParallel, ftl.GCSpatial}
	archs := []ssd.Arch{ssd.ArchPnSSD, ssd.ArchPnSSDSplit, ssd.ArchPSSD}
	cases := make([]ArrayCase, n)
	for i := range cases {
		c := ArrayCase{
			Index:    i,
			Seed:     r.next(),
			Arch:     archs[r.intn(len(archs))],
			Planes:   pickInt(r, 1, 2),
			Blocks:   pickInt(r, 8, 12),
			Pages:    pickInt(r, 8, 16),
			BusMTps:  pickInt(r, 800, 1000),
			GCMode:   gcModes[r.intn(len(gcModes))],
			Data:     pickInt(r, 2, 3),
			Parity:   1,
			Groups:   pickInt(r, 1, 2),
			Trace:    traces[r.intn(len(traces))],
			Requests: 80 + 40*r.intn(3),
			Kill:     r.intn(2) == 1,
		}
		if c.Kill {
			c.KillDev = r.intn(c.Groups * (c.Data + c.Parity))
			c.KillAt = sim.Time(r.intn(2000)) * sim.Microsecond
		} else {
			c.Outages = 1 + r.intn(3)
		}
		cases[i] = c
	}
	return cases
}

// Config expands the case into a full array configuration with both the
// per-device and array-level checkers enabled.
func (c ArrayCase) Config() array.Config {
	dc := ssd.DefaultConfig()
	dc.Channels, dc.Ways = 2, 2
	dc.Geometry.Planes = c.Planes
	dc.Geometry.BlocksPerPlane = c.Blocks
	dc.Geometry.PagesPerBlock = c.Pages
	dc.Geometry.PageSize = 4096
	dc.BusMTps = c.BusMTps
	dc.FTL.GCMode = c.GCMode
	dc.LogicalUtilization = 0.5

	cfg := array.Config{
		Arch:   c.Arch,
		Device: dc,
		Data:   c.Data, Parity: c.Parity,
		Groups: c.Groups,
		Spares: 1,
		Seed:   int64(c.Seed >> 2),
		Check:  true,
	}
	if c.Kill {
		cfg.Failures = []fault.DeviceEvent{{Device: c.KillDev, At: c.KillAt}}
		cfg.RebuildPagesPerSec = 200_000
	} else {
		coded := c.Groups * (c.Data + c.Parity)
		cfg.Failures = fault.RandomOutages(c.Seed, coded, c.Outages, 3*sim.Millisecond, 300*sim.Microsecond)
	}
	return cfg
}

// ArrayResult is one array case's outcome.
type ArrayResult struct {
	Case   ArrayCase
	Digest string // determinism witness
	Err    error
}

// RunArray executes one array case and asserts the failure-dimension
// properties: the run drains clean (zero array and device violations),
// every host request completes, and — the coding guarantee — no host
// read fails while failures stay within the parity budget.
func RunArray(c ArrayCase) ArrayResult {
	cfg := c.Config()
	tr, err := workload.Named(c.Trace, cfg.LogicalPages(), c.Requests, int64(c.Seed>>1))
	if err != nil {
		return ArrayResult{Case: c, Err: err}
	}
	// Devices fan out inside Run; each prop case runs them sequentially
	// so RunArrayAll can parallelize across cases instead.
	res := array.Run(cfg, tr.Requests, 1)
	out := ArrayResult{Case: c}
	if err := res.Err(); err != nil {
		out.Err = fmt.Errorf("%v: %w", c, err)
		return out
	}
	if got := res.Metrics.TotalRequests(); got != int64(len(tr.Requests)) {
		out.Err = fmt.Errorf("%v: recorded %d of %d requests", c, got, len(tr.Requests))
		return out
	}
	if res.RAS.FailedReads != 0 {
		out.Err = fmt.Errorf("%v: %d failed reads within the parity budget", c, res.RAS.FailedReads)
		return out
	}
	if c.Kill && res.RAS.RebuildPages+res.RAS.RebuildSkipped != cfg.StripesPerGroup() {
		out.Err = fmt.Errorf("%v: rebuild covered %d of %d stripes", c,
			res.RAS.RebuildPages+res.RAS.RebuildSkipped, cfg.StripesPerGroup())
		return out
	}
	out.Digest = fmt.Sprintf("%s|%v|%v|%v|%v",
		res.RAS, res.Metrics.MeanLatency(), res.Metrics.Combined().P99(), res.SimTime, res.RebuildTime)
	return out
}

// RunArrayAll executes the cases across workers; results (and digests)
// must not depend on the worker count.
func RunArrayAll(cases []ArrayCase, parallel int) []ArrayResult {
	label := func(i int) string { return cases[i].String() }
	return runner.MapLabeled(parallel, len(cases), label, func(i int) ArrayResult { return RunArray(cases[i]) })
}
