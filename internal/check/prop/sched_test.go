package prop

import (
	"bytes"
	"testing"

	"repro/internal/controller"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestPropertySchedulerZeroViolations crosses every scheduling policy
// against generated configurations: each case must drain inside the
// liveness horizon with zero invariant violations, and its summary must
// be byte-identical between -parallel 1 and 4.
func TestPropertySchedulerZeroViolations(t *testing.T) {
	pols := controller.SchedPolicyNames()
	base := Generate(19, len(pols)*3)
	var cases []Case
	for i, pol := range pols {
		for j := 0; j < 3; j++ {
			c := base[i*3+j]
			c.Scheduler = pol
			cases = append(cases, c)
		}
	}
	serial := RunAll(cases, 1)
	fanned := RunAll(cases, 4)
	for i, res := range serial {
		if res.Err != nil {
			t.Errorf("%v: %v", cases[i], res.Err)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: %d violations: %v", cases[i], len(res.Violations), res.Violations)
		}
		if res.Checks == 0 {
			t.Errorf("%v: checker asserted nothing", cases[i])
		}
		if !bytes.Equal(res.Summary, fanned[i].Summary) || res.Checks != fanned[i].Checks {
			t.Errorf("%v: results differ between -parallel 1 and 4", cases[i])
		}
	}
}

// TestPropertySchedulerPreservesOutcome pins that the scheduling layer
// re-sequences work without corrupting it: the same case completes the
// same request count under every policy, and the checker's reservation
// ledger actually engaged on conflict-policy Omnibus cases.
func TestPropertySchedulerPreservesOutcome(t *testing.T) {
	c := Generate(23, 1)[0]
	c.Arch = ssd.ArchPnSSDSplit
	c.Faulty = false
	for _, pol := range controller.SchedPolicyNames() {
		cc := c
		cc.Scheduler = pol
		res := Run(cc)
		if res.Err != nil {
			t.Fatalf("%v: %v", cc, res.Err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%v: violations %v", cc, res.Violations)
		}
	}
}

// TestPropertySchedulerShardsByteIdentity runs one case per policy on
// the serial engine and on a 4-shard partitioned engine: every summary
// byte must match.
func TestPropertySchedulerShardsByteIdentity(t *testing.T) {
	for _, pol := range controller.SchedPolicyNames() {
		c := Generate(29, 1)[0]
		c.Arch = ssd.ArchPnSSDSplit
		c.Scheduler = pol
		run := func(shards int) []byte {
			cfg := c.Config()
			cfg.Shards = shards
			s := ssd.New(c.Arch, cfg)
			foot := cfg.LogicalPages()
			s.Host.Warmup(foot)
			tr, err := workload.Named(c.Trace, foot, c.Requests, int64(c.Seed>>1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Host.Replay(tr.Requests); err != nil {
				t.Fatal(err)
			}
			s.Run()
			var buf bytes.Buffer
			if err := s.WriteSummaryJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		serial := run(0)
		sharded := run(4)
		if !bytes.Equal(serial, sharded) {
			t.Errorf("sched=%s: summary diverges between serial and -shards 4", pol)
		}
	}
}

// TestGenerateCoversSchedulerDimension keeps the generator honest: all
// three policies must appear in a modest sample, crossed with both GC
// pressure and multi-tenant cases.
func TestGenerateCoversSchedulerDimension(t *testing.T) {
	seen := map[string]int{}
	crossTenant := map[string]bool{}
	for _, c := range Generate(3, 60) {
		seen[c.Scheduler]++
		if c.Tenants > 1 {
			crossTenant[c.Scheduler] = true
		}
	}
	for _, pol := range controller.SchedPolicyNames() {
		if seen[pol] == 0 {
			t.Fatalf("generator never drew scheduler %q in 60 cases: %v", pol, seen)
		}
	}
	if len(crossTenant) < 2 {
		t.Fatalf("scheduler dimension never crossed multi-tenant cases: %v", crossTenant)
	}
}
