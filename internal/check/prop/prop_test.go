package prop

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/host"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(42, 20)
	b := Generate(42, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(42, 20) differs between calls")
	}
	c := Generate(43, 20)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical cases")
	}
}

// Case.String is the reproduction handle printed on every failure; it
// must carry the seed and be distinct per case.
func TestCaseStringCarriesSeed(t *testing.T) {
	cases := Generate(5, 2)
	if !strings.Contains(cases[0].String(), "seed=") {
		t.Fatalf("case string %q missing seed", cases[0])
	}
	if cases[0].String() == cases[1].String() {
		t.Fatal("distinct cases render identically")
	}
}

// A case naming an unknown trace must come back as a Result error, not a
// panic — Run is the harness's failure boundary.
func TestRunRejectsUnknownTrace(t *testing.T) {
	c := Generate(5, 1)[0]
	c.Trace = "no-such-trace"
	if res := Run(c); res.Err == nil {
		t.Fatal("Run accepted an unknown trace")
	}
}

// The zero-violation property: every configuration the generator can
// draw — any architecture, geometry, GC mode, victim policy, and fault
// cocktail — finishes its workload with the full invariant checker
// attached and nothing to report. CI runs this with -race and a fixed
// seed.
func TestPropertyZeroViolations(t *testing.T) {
	for _, res := range RunAll(Generate(1, 10), 4) {
		if res.Err != nil {
			t.Errorf("%v\nviolations: %v", res.Err, res.Violations)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: %d violations: %v", res.Case, len(res.Violations), res.Violations)
		}
		if res.Checks == 0 {
			t.Errorf("%v: checker asserted nothing", res.Case)
		}
	}
}

// The determinism property: a seed reproduces its results byte for byte
// whether the cases run sequentially or spread across runner workers.
func TestPropertyDeterministicAcrossParallelism(t *testing.T) {
	cases := Generate(7, 6)
	serial := RunAll(cases, 1)
	fanned := RunAll(cases, 4)
	for i := range cases {
		if serial[i].Err != nil || fanned[i].Err != nil {
			t.Fatalf("%v: serial err %v, parallel err %v", cases[i], serial[i].Err, fanned[i].Err)
		}
		if !bytes.Equal(serial[i].Summary, fanned[i].Summary) {
			t.Errorf("%v: summary differs between -parallel 1 and 4:\n%s\nvs\n%s",
				cases[i], serial[i].Summary, fanned[i].Summary)
		}
		if serial[i].Checks != fanned[i].Checks {
			t.Errorf("%v: check count differs: %d vs %d", cases[i], serial[i].Checks, fanned[i].Checks)
		}
	}
}

// A single case rerun from its own value reproduces itself — the
// shrink-and-replay workflow a failing property run depends on.
func TestPropertyCaseReplay(t *testing.T) {
	c := Generate(99, 3)[2]
	r1 := Run(c)
	r2 := Run(c)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("replay errs: %v / %v", r1.Err, r2.Err)
	}
	if !bytes.Equal(r1.Summary, r2.Summary) {
		t.Fatalf("%v: replay summary differs", c)
	}
}

// The multi-tenant property, asserted explicitly rather than hoping the
// generator happened to draw Tenants > 1: every arbiter x tenant-count
// combination runs its workload through the multi-queue front end with
// the full checker (including the tenant ledger, fairness, and
// conservation rules) and reports zero violations, byte-identically at
// any worker count.
func TestPropertyMultiTenantZeroViolations(t *testing.T) {
	base := Generate(11, len(host.ArbiterNames())*2)
	var cases []Case
	for i, arb := range host.ArbiterNames() {
		for j, tenants := range []int{2, 3} {
			c := base[i*2+j]
			c.Tenants = tenants
			c.Arbiter = arb
			cases = append(cases, c)
		}
	}
	serial := RunAll(cases, 1)
	fanned := RunAll(cases, 4)
	for i, res := range serial {
		if res.Err != nil {
			t.Errorf("%v: %v", cases[i], res.Err)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: %d violations: %v", cases[i], len(res.Violations), res.Violations)
		}
		if res.Checks == 0 {
			t.Errorf("%v: checker asserted nothing", cases[i])
		}
		if !bytes.Equal(res.Summary, fanned[i].Summary) || res.Checks != fanned[i].Checks {
			t.Errorf("%v: results differ between -parallel 1 and 4", cases[i])
		}
	}
}

// Generate must actually exercise the tenant dimension: across a modest
// sample, both single- and multi-tenant cases and more than one arbiter
// appear.
func TestGenerateCoversTenantDimension(t *testing.T) {
	single, multi := 0, 0
	arbs := map[string]bool{}
	for _, c := range Generate(3, 40) {
		if c.Tenants <= 1 {
			single++
		} else {
			multi++
			arbs[c.Arbiter] = true
		}
	}
	if single == 0 || multi == 0 {
		t.Fatalf("tenant mix degenerate: %d single, %d multi", single, multi)
	}
	if len(arbs) < 2 {
		t.Fatalf("multi-tenant cases drew only arbiters %v", arbs)
	}
}
