package prop

import "testing"

// A broad sweep across generator seeds: every case from every seed must
// drain, verify, and stay inside the feasibility envelope. This is the
// guard that keeps a future generator change from drawing configurations
// past the device's compaction limit.
func TestStressManySeeds(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for _, res := range RunAll(Generate(seed, 10), 8) {
			if res.Err != nil {
				t.Errorf("seed %d: %v", seed, res.Err)
			}
		}
	}
}
