package prop

import (
	"bytes"
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestPropertyMappingZeroViolations crosses both mapping modes against
// generated configurations: each case must drain inside the liveness
// horizon with zero invariant violations (the fmmu cases run the full
// map ledger — coherence, versioning, writeback conservation), and its
// summary must be byte-identical between -parallel 1 and 4.
func TestPropertyMappingZeroViolations(t *testing.T) {
	base := Generate(31, 8)
	var cases []Case
	for i, mode := range []string{"flat", "fmmu"} {
		for j := 0; j < 4; j++ {
			c := base[i*4+j]
			c.Mapping = mode
			cases = append(cases, c)
		}
	}
	serial := RunAll(cases, 1)
	fanned := RunAll(cases, 4)
	for i, res := range serial {
		if res.Err != nil {
			t.Errorf("%v: %v", cases[i], res.Err)
			continue
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: %d violations: %v", cases[i], len(res.Violations), res.Violations)
		}
		if res.Checks == 0 {
			t.Errorf("%v: checker asserted nothing", cases[i])
		}
		if !bytes.Equal(res.Summary, fanned[i].Summary) || res.Checks != fanned[i].Checks {
			t.Errorf("%v: results differ between -parallel 1 and 4", cases[i])
		}
	}
}

// TestPropertyMappingShardsByteIdentity runs one fmmu case per cache
// size on the serial engine and on a 4-shard partitioned engine: with
// map fetches and writebacks in the event stream, every summary byte
// must still match.
func TestPropertyMappingShardsByteIdentity(t *testing.T) {
	for _, entries := range []int{1, 4, 64} {
		c := Generate(37, 1)[0]
		c.Arch = ssd.ArchPnSSDSplit
		c.Mapping = "fmmu"
		c.MapCacheEntries = entries
		run := func(shards int) []byte {
			cfg := c.Config()
			cfg.Shards = shards
			s := ssd.New(c.Arch, cfg)
			foot := cfg.LogicalPages()
			s.Host.Warmup(foot)
			tr, err := workload.Named(c.Trace, foot, c.Requests, int64(c.Seed>>1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Host.Replay(tr.Requests); err != nil {
				t.Fatal(err)
			}
			s.Run()
			var buf bytes.Buffer
			if err := s.WriteSummaryJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		serial := run(0)
		sharded := run(4)
		if !bytes.Equal(serial, sharded) {
			t.Errorf("mapcache=%d: summary diverges between serial and -shards 4", entries)
		}
	}
}

// TestGenerateCoversMappingDimension keeps the generator honest: both
// mapping modes and at least three distinct cache sizes must appear in
// a modest sample, crossed with both eviction policies and with the
// scheduler dimension.
func TestGenerateCoversMappingDimension(t *testing.T) {
	modes := map[string]int{}
	sizes := map[int]bool{}
	evictions := map[string]bool{}
	crossSched := map[string]bool{}
	for _, c := range Generate(3, 60) {
		modes[c.Mapping]++
		if c.Mapping == "fmmu" {
			sizes[c.MapCacheEntries] = true
			evictions[c.MapEviction] = true
			if c.Scheduler != "" && c.Scheduler != "fifo" {
				crossSched[c.Scheduler] = true
			}
		}
	}
	for _, mode := range []string{"flat", "fmmu"} {
		if modes[mode] == 0 {
			t.Fatalf("generator never drew mapping %q in 60 cases: %v", mode, modes)
		}
	}
	if len(sizes) < 3 {
		t.Fatalf("generator drew only %d distinct cache sizes: %v", len(sizes), sizes)
	}
	if len(evictions) < 2 {
		t.Fatalf("generator never crossed both eviction policies: %v", evictions)
	}
	if len(crossSched) == 0 {
		t.Fatal("fmmu never crossed a non-FIFO scheduler")
	}
}
