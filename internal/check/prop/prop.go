// Package prop is the property-based validation harness for the
// invariant checker: it derives randomized device configurations and
// workloads from a single seed, runs each one with the full checker
// attached, and exposes the results so tests can assert the two global
// properties — every generated configuration finishes with zero
// invariant violations, and a seed reproduces its results byte for
// byte regardless of how many runner workers execute the cases.
package prop

import (
	"bytes"
	"fmt"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/host"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Case is one randomized configuration drawn by Generate. Every field
// that shapes the run is explicit so a failing case can be reproduced
// (and minimized) from its printed value alone.
type Case struct {
	Index    int
	Seed     uint64
	Arch     ssd.Arch
	Channels int
	Ways     int
	Planes   int
	Blocks   int // per plane
	Pages    int // per block
	BusMTps  int

	GCMode      ftl.GCMode
	GCThreshold float64
	Victim      ftl.VictimPolicy
	Utilization float64

	Faulty   bool
	Trace    string
	Requests int

	// Tenants > 1 routes the workload through a multi-queue front end
	// with the named Arbiter (round-robin striping of requests across
	// queues); Tenants <= 1 drives the single-queue host directly.
	Tenants int
	Arbiter string

	// Scheduler selects the controller scheduling policy ("fifo",
	// "conflict", or "ooo") — the empty string, like "fifo", runs
	// without the scheduling layer.
	Scheduler string

	// Mapping selects the FTL mapping mode ("flat" or "fmmu"); under
	// fmmu the map cache holds MapCacheEntries translation pages and
	// evicts with MapEviction ("clock" or "lru").
	Mapping         string
	MapCacheEntries int
	MapEviction     string
}

// String renders the case compactly for failure messages.
func (c Case) String() string {
	return fmt.Sprintf("case %d seed=%#x %v %dx%d geo=%d/%d/%d gc=%v thr=%.2f util=%.2f faulty=%v %s x%d tenants=%d/%s sched=%s map=%s/%d/%s",
		c.Index, c.Seed, c.Arch, c.Channels, c.Ways, c.Planes, c.Blocks, c.Pages,
		c.GCMode, c.GCThreshold, c.Utilization, c.Faulty, c.Trace, c.Requests, c.Tenants, c.Arbiter, c.Scheduler,
		c.Mapping, c.MapCacheEntries, c.MapEviction)
}

// rng is a splitmix64 stream: tiny, seedable, and stable across Go
// releases — unlike math/rand, whose algorithm the standard library is
// free to change under us.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func pickInt(r *rng, opts ...int) int { return opts[r.intn(len(opts))] }

// Generate draws n cases from the seed. The same (seed, n) always
// yields the same slice. The space deliberately skews small: whole
// devices of a few hundred pages so a case runs in milliseconds, with
// GC always enabled (the checker's interesting invariants all live
// behind collection) and fault injection on roughly half the cases.
func Generate(seed uint64, n int) []Case {
	r := &rng{s: seed ^ 0x6a09e667f3bcc909}
	traces := workload.Names()
	gcModes := []ftl.GCMode{ftl.GCParallel, ftl.GCPreemptive, ftl.GCSpatial}
	victims := []ftl.VictimPolicy{ftl.VictimGreedy, ftl.VictimCostBenefit}
	cases := make([]Case, n)
	for i := range cases {
		blocks := pickInt(r, 6, 8, 12)
		planes := pickInt(r, 1, 2)
		channels := pickInt(r, 2, 4)
		ways := pickInt(r, 2, 4)
		pages := pickInt(r, 8, 16)
		faulty := r.intn(2) == 1
		mapping := []string{"flat", "fmmu"}[r.intn(2)]
		mapEntries := pickInt(r, 1, 4, 16, 64)
		mapEviction := []string{"clock", "lru"}[r.intn(2)]
		// Feasibility cap: each plane permanently consumes ~2.5 blocks of
		// slack (host-active block, open GC destination, and the global
		// one-block-per-chip reserve), and forced retirement faults eat up
		// to two more blocks per chip for good. A utilization that leaves
		// less than that pushes the device past its compaction limit — GC
		// cycles 100%-valid blocks forever and stalled writes never drain.
		// That's an infeasible device, not a simulator bug, so the
		// generator stays on the feasible side.
		eff := float64(blocks)
		if faulty && blocks >= 8 {
			eff -= 2 / float64(planes)
		}
		if mapping == "fmmu" {
			// The map unit permanently carves its region out of the free
			// pool, round-robin across chips and planes. Charge each plane
			// its worst-case share before the utilization cap so fmmu cases
			// stay on the feasible side too. Upper-bound the translation
			// page count with the maximum drawable utilization (0.65).
			raw := channels * ways * planes * blocks * pages
			perPage := 4096 / 8
			numT := (raw*65/100 + perPage) / perPage
			mapBlocks := (numT+pages-1)/pages + 3
			slots := channels * ways * planes
			eff -= float64((mapBlocks + slots - 1) / slots)
		}
		// Utilization is a fraction of *raw* capacity, so the cap compares
		// against post-retirement blocks: valid data plus ~3.5 slack blocks
		// per plane (host-active, GC destination, reserve share, and margin
		// for uniform-garbage traces where GC reclaim is least efficient)
		// must fit in eff.
		util := 0.45 + 0.05*float64(r.intn(4))
		if max := (eff - 3.5) / float64(blocks); util > max {
			util = 0.05 * float64(int(max/0.05))
		}
		cases[i] = Case{
			Index:       i,
			Seed:        r.next(),
			Arch:        ssd.Archs[r.intn(len(ssd.Archs))],
			Channels:    channels,
			Ways:        ways,
			Planes:      planes,
			Blocks:      blocks,
			Pages:       pages,
			BusMTps:     pickInt(r, 800, 1000),
			GCMode:      gcModes[r.intn(len(gcModes))],
			GCThreshold: 0.2 + 0.05*float64(r.intn(5)),
			Victim:      victims[r.intn(len(victims))],
			Utilization: util,
			Faulty:      faulty,
			Trace:       traces[r.intn(len(traces))],
			Requests:    100 + 50*r.intn(5),
			Tenants:     pickInt(r, 1, 2, 3),
			Arbiter:     host.ArbiterNames()[r.intn(len(host.ArbiterNames()))],
			Scheduler:   controller.SchedPolicyNames()[r.intn(len(controller.SchedPolicyNames()))],

			Mapping:         mapping,
			MapCacheEntries: mapEntries,
			MapEviction:     mapEviction,
		}
	}
	return cases
}

// Config expands the case into a full device configuration with the
// invariant checker enabled.
func (c Case) Config() ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.Channels = c.Channels
	cfg.Ways = c.Ways
	cfg.Geometry.Planes = c.Planes
	cfg.Geometry.BlocksPerPlane = c.Blocks
	cfg.Geometry.PagesPerBlock = c.Pages
	cfg.Geometry.PageSize = 4096
	cfg.BusMTps = c.BusMTps
	cfg.FTL.GCMode = c.GCMode
	cfg.FTL.GCThreshold = c.GCThreshold
	cfg.FTL.Victim = c.Victim
	cfg.LogicalUtilization = c.Utilization
	if c.Faulty {
		cfg.Fault = &fault.Config{
			Seed:          c.Seed,
			ReadECCRate:   0.01,
			OnDieECCRate:  0.01,
			GrantDropRate: 0.02,
		}
		// Retirement faults permanently shrink capacity; only devices with
		// blocks to spare take them (mirrors the generator's eff cap).
		if c.Blocks >= 8 {
			cfg.Fault.ProgramFailsPerChip = 1
			cfg.Fault.EraseFailsPerChip = 1
		}
	}
	cfg.Scheduler = c.Scheduler
	cfg.Mapping = c.Mapping
	cfg.MapCacheEntries = c.MapCacheEntries
	cfg.MapEviction = c.MapEviction
	cfg.Check = &check.Config{}
	if c.Tenants > 1 {
		tenants := make([]host.TenantConfig, c.Tenants)
		for i := range tenants {
			// Deterministic weight/burst spread so wrr and dwrr exercise
			// their non-uniform paths: weights 1,2,3,... and a burst cap on
			// every other queue.
			tenants[i] = host.TenantConfig{
				Name:   fmt.Sprintf("t%d", i),
				Weight: 1 + i,
				Burst:  (i % 2) * 4,
			}
		}
		cfg.Frontend = &host.FrontendConfig{
			Tenants:     tenants,
			Arbiter:     c.Arbiter,
			MaxInflight: 8,
		}
	}
	return cfg
}

// Result is one case's outcome: the run summary (the determinism
// witness), the checker's tallies, and any failure.
type Result struct {
	Case       Case
	Summary    []byte
	Checks     int64
	Violations []check.Violation
	Err        error
}

// Run executes one case to drain and verifies every invariant. The
// returned Result carries the violation list even when Err is set so
// callers can print both.
func Run(c Case) Result {
	cfg := c.Config()
	s := ssd.New(c.Arch, cfg)
	foot := cfg.LogicalPages()
	s.Host.Warmup(foot)
	tr, err := workload.Named(c.Trace, foot, c.Requests, int64(c.Seed>>1))
	if err != nil {
		return Result{Case: c, Err: err}
	}
	var completed *int
	if s.Frontend != nil {
		for i := range tr.Requests {
			tr.Requests[i].Tenant = i % c.Tenants
		}
		completed, err = s.Frontend.Replay(tr.Requests)
	} else {
		completed, err = s.Host.Replay(tr.Requests)
	}
	if err != nil {
		return Result{Case: c, Err: fmt.Errorf("%v: replay rejected: %w", c, err)}
	}
	// Engine.RunUntil, not SSD.Run: a violating case should come back as
	// a Result rather than a panic, and the horizon (generous — generated
	// workloads drain in well under 100 simulated ms) turns a livelocked
	// device into a clean liveness failure instead of a wall-clock hang.
	s.Engine.RunUntil(2 * sim.Second)
	res := Result{Case: c, Checks: s.Checker.Checks(), Violations: s.Checker.Violations()}
	if s.Engine.Pending() != 0 {
		res.Err = fmt.Errorf("%v: %d events still pending at the 2s horizon — livelock", c, s.Engine.Pending())
		return res
	}
	if *completed != len(tr.Requests) {
		res.Err = fmt.Errorf("%v: completed %d of %d requests", c, *completed, len(tr.Requests))
		return res
	}
	if err := s.VerifyInvariants(); err != nil {
		res.Violations = s.Checker.Violations()
		res.Err = fmt.Errorf("%v: %w", c, err)
		return res
	}
	var buf bytes.Buffer
	if err := s.WriteSummaryJSON(&buf); err != nil {
		res.Err = err
		return res
	}
	res.Summary = buf.Bytes()
	return res
}

// RunAll executes the cases on the shared experiment runner with the
// given worker count and returns results in case order — the order (and
// every byte of every summary) must not depend on parallelism.
func RunAll(cases []Case, parallel int) []Result {
	return runner.Map(parallel, len(cases), func(i int) Result { return Run(cases[i]) })
}
