package prop

import (
	"reflect"
	"testing"
)

func TestGenerateArrayDeterministic(t *testing.T) {
	a := GenerateArray(7, 12)
	b := GenerateArray(7, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateArray is not deterministic for a fixed seed")
	}
	if reflect.DeepEqual(a, GenerateArray(8, 12)) {
		t.Fatal("different seeds produced identical array cases")
	}
	kills, outages := 0, 0
	for _, c := range a {
		if c.Kill {
			kills++
		} else {
			if c.Outages == 0 {
				t.Fatalf("%v: no failure mode at all", c)
			}
			outages++
		}
	}
	if kills == 0 || outages == 0 {
		t.Fatalf("generator never varied the failure mode: %d kills, %d outage cases", kills, outages)
	}
}

func TestArrayPropertiesHold(t *testing.T) {
	cases := GenerateArray(1, 8)
	results := RunArrayAll(cases, 4)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%v", r.Err)
		}
	}
}

func TestArrayRunParallelismInvariant(t *testing.T) {
	cases := GenerateArray(3, 4)
	seq := RunArrayAll(cases, 1)
	par := RunArrayAll(cases, 4)
	for i := range cases {
		if seq[i].Err != nil {
			t.Fatalf("sequential: %v", seq[i].Err)
		}
		if par[i].Err != nil {
			t.Fatalf("parallel: %v", par[i].Err)
		}
		if seq[i].Digest != par[i].Digest {
			t.Errorf("%v: digest diverged across worker counts:\n seq %s\n par %s",
				cases[i], seq[i].Digest, par[i].Digest)
		}
	}
}
