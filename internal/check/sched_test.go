package check

import (
	"strings"
	"testing"

	"repro/internal/controller"
)

func segH(i int) controller.PathSeg { return controller.PathSeg{Kind: controller.SegH, Index: i} }
func segV(i int) controller.PathSeg { return controller.PathSeg{Kind: controller.SegV, Index: i} }

func wantRule(t *testing.T, c *Checker, rule string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %q violation recorded; have %v", rule, c.Violations())
}

// TestSchedDoubleReserveCaught is the mutation test: a deliberately
// double-reserved path segment must trip the reservation ledger.
func TestSchedDoubleReserveCaught(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(0, 8)
	c.SchedReserved(1, []controller.PathSeg{segH(0), segV(2)})
	if len(c.Violations()) != 0 {
		t.Fatalf("clean reservation flagged: %v", c.Violations())
	}
	c.SchedReserved(2, []controller.PathSeg{segH(0)}) // overlaps op 1's h0
	wantRule(t, c, "sched-reserve-overlap")
	if !strings.Contains(c.Violations()[0].Detail, "h0") {
		t.Fatalf("violation does not name the segment: %v", c.Violations()[0])
	}
}

func TestSchedReleaseLedger(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(0, 8)
	c.SchedReserved(1, []controller.PathSeg{segH(0)})
	c.SchedReleased(2, []controller.PathSeg{segH(0)}) // wrong owner
	wantRule(t, c, "sched-release")

	_, c2 := newChecker()
	c2.WatchSched(0, 8)
	c2.SchedReleased(1, []controller.PathSeg{segV(3)}) // never reserved
	wantRule(t, c2, "sched-release")

	// Exactly-once: reserve, release, then a second release must trip.
	_, c3 := newChecker()
	c3.WatchSched(0, 8)
	c3.SchedReserved(1, []controller.PathSeg{segH(1)})
	c3.SchedReleased(1, []controller.PathSeg{segH(1)})
	if len(c3.Violations()) != 0 {
		t.Fatalf("balanced reserve/release flagged: %v", c3.Violations())
	}
	c3.SchedReleased(1, []controller.PathSeg{segH(1)})
	wantRule(t, c3, "sched-release")
}

func TestSchedWindowLegality(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(4, 8)
	c.SchedIssued(1, 3, 4, 0, 8) // rank 3 inside window 4: legal
	if len(c.Violations()) != 0 {
		t.Fatalf("legal issue flagged: %v", c.Violations())
	}
	c.SchedIssued(2, 4, 4, 0, 8) // rank == window: outside
	wantRule(t, c, "sched-window")

	// A scheduler reporting a different window than configured is itself
	// a violation (the knob and the enforcement drifted apart).
	_, c2 := newChecker()
	c2.WatchSched(4, 8)
	c2.SchedIssued(1, 0, 16, 0, 8)
	wantRule(t, c2, "sched-window")
}

func TestSchedStarvationBound(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(0, 8)
	c.SchedIssued(1, 0, 0, 8, 8) // at the bound: legal
	if len(c.Violations()) != 0 {
		t.Fatalf("at-bound issue flagged: %v", c.Violations())
	}
	c.SchedIssued(2, 0, 0, 9, 8) // past the bound
	wantRule(t, c, "sched-starvation")
}

func TestSchedInflightBalance(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(0, 8)
	c.SchedIssued(1, 0, 0, 0, 8)
	c.SchedCompleted(1, 0)
	if issued, done := c.SchedCounts(); issued != 1 || done != 1 {
		t.Fatalf("counts = (%d, %d), want (1, 1)", issued, done)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("balanced issue/complete flagged: %v", c.Violations())
	}
	c.SchedCompleted(2, 0) // completion with no issue
	wantRule(t, c, "sched-inflight")

	// Scheduler-reported inflight disagreeing with the ledger trips too.
	_, c2 := newChecker()
	c2.WatchSched(0, 8)
	c2.SchedIssued(1, 0, 0, 0, 8)
	c2.SchedCompleted(1, 5)
	wantRule(t, c2, "sched-inflight")
}

func TestSchedDrainLedger(t *testing.T) {
	_, c := newChecker()
	c.WatchSched(0, 8)
	c.SchedReserved(1, []controller.PathSeg{segH(0)})
	c.SchedIssued(1, 0, 0, 0, 8)
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "sched-ledger") {
		t.Fatalf("leaked reservation + inflight not caught at drain: %v", err)
	}
	c.SchedReleased(1, []controller.PathSeg{segH(0)})
	c.SchedCompleted(1, 0)
	if err := c.Verify(); err != nil {
		t.Fatalf("drained ledger still dirty: %v", err)
	}
}

// TestSchedHooksInertWithoutWatch pins nil-safety: the SchedChecker
// methods are no-ops on a nil checker and on one that never enabled the
// scheduling ledger.
func TestSchedHooksInertWithoutWatch(t *testing.T) {
	var nilC *Checker
	nilC.WatchSched(4, 8)
	nilC.SchedReserved(1, []controller.PathSeg{segH(0)})
	nilC.SchedReleased(1, []controller.PathSeg{segH(0)})
	nilC.SchedIssued(1, 0, 0, 0, 0)
	nilC.SchedCompleted(1, 0)
	if issued, done := nilC.SchedCounts(); issued != 0 || done != 0 {
		t.Fatal("nil checker accumulated scheduler state")
	}

	_, c := newChecker()
	c.SchedReserved(1, []controller.PathSeg{segH(0)})
	c.SchedIssued(1, 99, 1, 99, 1)
	c.SchedCompleted(2, -5)
	if c.Checks() != 0 || len(c.Violations()) != 0 {
		t.Fatal("unwatched checker evaluated scheduler assertions")
	}
}
