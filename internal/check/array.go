package check

import (
	"fmt"

	"repro/internal/sim"
)

// ArrayChecker asserts the array-tier invariants: acknowledgement
// exactly-once discipline under failover, stripe conservation (every
// committed stripe readable from at least m of its m+k shards), and
// rebuild completeness at drain. It is deliberately decoupled from the
// per-device Checker — the array router is not a simulated resource, so
// these rules are evaluated against closures the array run supplies
// rather than observer hooks. Like the Checker, a nil *ArrayChecker is
// valid and inert, so un-checked array runs need no conditional wiring.
type ArrayChecker struct {
	max        int
	violations []Violation
	truncated  int

	acks       map[int64]sim.Time
	doubleAcks int64
}

// NewArrayChecker builds a checker recording at most maxViolations in
// detail; zero selects DefaultMaxViolations.
func NewArrayChecker(maxViolations int) *ArrayChecker {
	if maxViolations <= 0 {
		maxViolations = DefaultMaxViolations
	}
	return &ArrayChecker{max: maxViolations, acks: make(map[int64]sim.Time)}
}

func (c *ArrayChecker) violate(at sim.Time, rule, format string, args ...any) {
	if len(c.violations) >= c.max {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{Time: at, Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Ack records one host-visible completion of array request req. A second
// ack of the same request is the no-double-acks-under-failover breach:
// retry and reconstruction paths must merge into exactly one completion.
func (c *ArrayChecker) Ack(req int64, at sim.Time) {
	if c == nil {
		return
	}
	if first, ok := c.acks[req]; ok {
		c.doubleAcks++
		c.violate(at, "array-double-ack", "request %d acked at %v and again at %v", req, first, at)
		return
	}
	c.acks[req] = at
}

// DoubleAcks returns how many requests were acknowledged more than once.
func (c *ArrayChecker) DoubleAcks() int64 {
	if c == nil {
		return 0
	}
	return c.doubleAcks
}

// CheckAllAcked asserts at drain that every request 0..n-1 was
// acknowledged exactly once (double acks were already caught by Ack).
func (c *ArrayChecker) CheckAllAcked(n int64, at sim.Time) {
	if c == nil {
		return
	}
	for req := int64(0); req < n; req++ {
		if _, ok := c.acks[req]; !ok {
			c.violate(at, "array-missing-ack", "request %d never acknowledged", req)
		}
	}
	if extra := int64(len(c.acks)) - n; extra > 0 {
		c.violate(at, "array-phantom-ack", "%d acks for requests outside [0,%d)", extra, n)
	}
}

// CheckStripeConservation asserts that every committed stripe is
// readable via some m of its width shards: shardOK(stripe, lane)
// reports whether lane's shard is on a live device and its content
// matches the stripe's expected version. minLive is m — losing more
// than k shards of any stripe is data loss the coding cannot hide.
func (c *ArrayChecker) CheckStripeConservation(stripes int64, width, minLive int, shardOK func(stripe int64, lane int) bool, at sim.Time) {
	if c == nil {
		return
	}
	for s := int64(0); s < stripes; s++ {
		live := 0
		for lane := 0; lane < width; lane++ {
			if shardOK(s, lane) {
				live++
			}
		}
		if live < minLive {
			c.violate(at, "array-stripe-loss", "stripe %d has %d/%d readable shards, need %d", s, live, width, minLive)
		}
	}
}

// CheckRebuildComplete asserts at drain that every stripe the rebuild
// was responsible for is re-protected on the spare: rebuilt(stripe)
// reports whether the spare holds a current copy of the lost shard.
func (c *ArrayChecker) CheckRebuildComplete(stripes int64, rebuilt func(stripe int64) bool, at sim.Time) {
	if c == nil {
		return
	}
	for s := int64(0); s < stripes; s++ {
		if !rebuilt(s) {
			c.violate(at, "array-rebuild-incomplete", "stripe %d not re-protected at drain", s)
		}
	}
}

// Violations returns the recorded breaches in detection order.
func (c *ArrayChecker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Err summarizes the run: nil when every invariant held, otherwise an
// error quoting the first violation and the total count.
func (c *ArrayChecker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	total := len(c.violations) + c.truncated
	return fmt.Errorf("array checker: %d violation(s), first: %s", total, c.violations[0])
}
