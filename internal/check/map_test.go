package check

import (
	"strings"
	"testing"

	"repro/internal/flash"
)

// TestMapConservationCatchesDroppedWriteback is the mutation test for
// the map ledger's drain rules: a dirty eviction that never commits must
// trip map-writeback-lost, and a commit whose token is not what flash
// actually holds must trip map-conservation — the two ways an FTL bug
// can silently lose a translation page.
func TestMapConservationCatchesDroppedWriteback(t *testing.T) {
	// Dropped writeback: evict dirty, never commit, drain.
	_, c := newChecker()
	c.WatchMap(4)
	c.MapResident(3, 0, false)
	c.MapDirtied(3, 1)
	c.MapEvicted(3, 1, true)
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("clean dirty-eviction flagged: %v", c.Violations())
	}
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "map-writeback-lost") {
		t.Fatalf("dropped writeback not caught at drain: %v", err)
	}
	if !strings.Contains(err.Error(), "t=3") {
		t.Fatalf("violation does not name the translation page: %v", err)
	}

	// The same history with the writeback committed is clean.
	_, c2 := newChecker()
	c2.WatchMap(4)
	c2.SetMapProbe(func(tp int) (flash.Token, bool) { return flash.Token(0xAB), true })
	c2.MapResident(3, 0, false)
	c2.MapDirtied(3, 1)
	c2.MapEvicted(3, 1, true)
	c2.MapCommitted(3, 1, flash.Token(0xAB))
	if err := c2.Verify(); err != nil {
		t.Fatalf("committed writeback flagged: %v", err)
	}

	// Conservation: the commit landed, but flash holds a different
	// token (e.g. the program was dropped or misdirected).
	_, c3 := newChecker()
	c3.WatchMap(4)
	c3.SetMapProbe(func(tp int) (flash.Token, bool) { return flash.Token(0xEE), true })
	c3.MapCommitted(7, 2, flash.Token(0xAB))
	err = c3.Verify()
	if err == nil || !strings.Contains(err.Error(), "map-conservation") {
		t.Fatalf("corrupted translation page not caught: %v", err)
	}

	// Conservation, lost variant: the probe finds no programmed page.
	_, c4 := newChecker()
	c4.WatchMap(4)
	c4.SetMapProbe(func(tp int) (flash.Token, bool) { return 0, false })
	c4.MapCommitted(7, 2, flash.Token(0xAB))
	err = c4.Verify()
	if err == nil || !strings.Contains(err.Error(), "map-conservation") {
		t.Fatalf("unprogrammed translation page not caught: %v", err)
	}
}

// TestMapCacheCoherenceCatchesStaleEntry is the mutation test for the
// coherence mirror: a hit served at a version older than what the cache
// holds (a stale entry — the translation handed out could be wrong)
// must trip map-coherence, as must hits and evictions on absent entries.
func TestMapCacheCoherenceCatchesStaleEntry(t *testing.T) {
	_, c := newChecker()
	c.WatchMap(4)
	c.MapResident(5, 0, false)
	c.MapDirtied(5, 1)
	c.MapHit(5, 1) // current version: legal
	if len(c.Violations()) != 0 {
		t.Fatalf("coherent hit flagged: %v", c.Violations())
	}
	c.MapHit(5, 0) // stale version
	wantRule(t, c, "map-coherence")
	if !strings.Contains(c.Violations()[0].Detail, "stale") {
		t.Fatalf("violation does not say stale: %v", c.Violations()[0])
	}

	// Hit on an absent entry.
	_, c2 := newChecker()
	c2.WatchMap(4)
	c2.MapHit(9, 0)
	wantRule(t, c2, "map-coherence")

	// Miss announced while the entry is resident.
	_, c3 := newChecker()
	c3.WatchMap(4)
	c3.MapResident(2, 0, false)
	c3.MapMiss(2)
	wantRule(t, c3, "map-coherence")

	// Double install without an eviction in between.
	_, c4 := newChecker()
	c4.WatchMap(4)
	c4.MapResident(2, 0, false)
	c4.MapResident(2, 0, false)
	wantRule(t, c4, "map-coherence")

	// Eviction of an entry that was never resident.
	_, c5 := newChecker()
	c5.WatchMap(4)
	c5.MapEvicted(6, 0, false)
	wantRule(t, c5, "map-coherence")
}

// TestMapVersionAndOverflowRules covers the remaining map invariants:
// version steps, commit monotonicity, and the occupancy bound.
func TestMapVersionAndOverflowRules(t *testing.T) {
	// In-cache update skipping a version.
	_, c := newChecker()
	c.WatchMap(4)
	c.MapResident(1, 0, false)
	c.MapDirtied(1, 2) // 0 -> 2: skipped 1
	wantRule(t, c, "map-version")

	// Commit regression (relocations re-commit at the same version,
	// which is legal; going backwards is not).
	_, c2 := newChecker()
	c2.WatchMap(4)
	c2.MapCommitted(1, 3, flash.Token(1))
	c2.MapCommitted(1, 3, flash.Token(1)) // relocation: same version, legal
	if len(c2.Violations()) != 0 {
		t.Fatalf("same-version recommit flagged: %v", c2.Violations())
	}
	c2.MapCommitted(1, 2, flash.Token(2))
	wantRule(t, c2, "map-version")

	// Occupancy past the configured capacity.
	_, c3 := newChecker()
	c3.WatchMap(2)
	c3.MapResident(0, 0, false)
	c3.MapResident(1, 0, false)
	if len(c3.Violations()) != 0 {
		t.Fatalf("at-capacity flagged: %v", c3.Violations())
	}
	c3.MapResident(2, 0, false)
	wantRule(t, c3, "map-overflow")

	// Ledger sizes are observable for cross-checks.
	if res, pend := c3.MapCounts(); res != 3 || pend != 0 {
		t.Fatalf("MapCounts = (%d, %d)", res, pend)
	}
}

// TestNilAndDisabledMapHooks: the hooks are safe on a nil checker and
// inert until WatchMap arms them, matching the sched ledger contract.
func TestNilAndDisabledMapHooks(t *testing.T) {
	var nc *Checker
	nc.WatchMap(4)
	nc.SetMapProbe(nil)
	nc.MapResident(0, 0, false)
	nc.MapHit(0, 0)
	nc.MapMiss(0)
	nc.MapDirtied(0, 1)
	nc.MapEvicted(0, 1, true)
	nc.MapCommitted(0, 1, 0)
	if res, pend := nc.MapCounts(); res != 0 || pend != 0 {
		t.Fatal("nil checker accumulated map state")
	}

	_, c := newChecker() // enabled but WatchMap never called
	c.MapHit(0, 0)
	c.MapEvicted(0, 1, true)
	if len(c.Violations()) != 0 || c.Checks() != 0 {
		t.Fatal("unwatched map hooks did work")
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("unwatched Verify: %v", err)
	}
}
