package check

import (
	"fmt"
	"sort"

	"repro/internal/flash"
)

// mapState is the map-unit ledger: a mirror of the FMMU map cache plus
// the translation-page conservation record. The mirror is driven purely
// by the ftl.MapSink hooks, so any divergence between what the map unit
// announces and what a coherent cache could have done surfaces as a
// violation — including divergence introduced by bugs in the map unit's
// own bookkeeping, which is the point.
type mapState struct {
	entries  int
	resident map[int]int64 // t -> version the cache claims to hold
	dirty    map[int]bool  // t -> mirror of the entry's dirty flag
	flashVer map[int]int64 // t -> last committed (flash) version
	expect   map[int]flash.Token // t -> token the last commit programmed
	// pendWB tracks dirty evictions: the evicted version must later be
	// committed (at that version or newer) or the writeback was lost.
	pendWB map[int]int64
	probe  func(t int) (flash.Token, bool)
}

// WatchMap enables the map-unit invariants: cache coherence (hits only
// on resident entries at the announced version, installs only on absent
// entries, occupancy bounded by the configured capacity), version
// monotonicity (in-cache updates advance by one, commits never regress),
// and two drain rules — every dirty eviction eventually commits, and
// flash holds exactly the last committed token for every translation
// page (page conservation extended to the map itself).
func (c *Checker) WatchMap(entries int) {
	if c == nil {
		return
	}
	c.mapst = &mapState{
		entries:  entries,
		resident: make(map[int]int64),
		dirty:    make(map[int]bool),
		flashVer: make(map[int]int64),
		expect:   make(map[int]flash.Token),
		pendWB:   make(map[int]int64),
	}
	c.AddDrainCheck("map-writeback-lost", func() error {
		m := c.mapst
		if len(m.pendWB) == 0 {
			return nil
		}
		ts := make([]int, 0, len(m.pendWB))
		for t := range m.pendWB {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		return fmt.Errorf("%d dirty-evicted translation page(s) never committed (first: t=%d at version %d)",
			len(ts), ts[0], m.pendWB[ts[0]])
	})
	c.AddDrainCheck("map-conservation", func() error {
		m := c.mapst
		if m.probe == nil {
			return nil
		}
		ts := make([]int, 0, len(m.expect))
		for t := range m.expect {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		bad, detail := 0, ""
		for _, t := range ts {
			c.checks++
			got, ok := m.probe(t)
			want := m.expect[t]
			if !ok {
				bad++
				if detail == "" {
					detail = fmt.Sprintf("t=%d committed but not on a programmed page", t)
				}
				continue
			}
			if got != want {
				bad++
				if detail == "" {
					detail = fmt.Sprintf("t=%d flash holds %#x, last commit %#x", t, got, want)
				}
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d translation page(s) lost or corrupted (%s)", bad, detail)
		}
		return nil
	})
}

// SetMapProbe installs the lookup the map-conservation drain rule uses
// to read a translation page's flash content back.
func (c *Checker) SetMapProbe(probe func(t int) (flash.Token, bool)) {
	if c == nil || c.mapst == nil {
		return
	}
	c.mapst.probe = probe
}

// MapResident implements ftl.MapSink: an install must target an absent
// entry and must not push occupancy past the configured capacity.
func (c *Checker) MapResident(t int, ver int64, dirty bool) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	m := c.mapst
	if old, ok := m.resident[t]; ok {
		c.violate("map-coherence", "t=%d installed at version %d while already resident at %d", t, ver, old)
	}
	m.resident[t] = ver
	m.dirty[t] = dirty
	if m.entries > 0 && len(m.resident) > m.entries {
		c.violate("map-overflow", "%d resident translation pages, cache capacity %d", len(m.resident), m.entries)
	}
}

// MapHit implements ftl.MapSink: a hit must land on a resident entry at
// exactly the announced version — a hit on a stale or absent entry is a
// coherence breach (the served translation could be wrong).
func (c *Checker) MapHit(t int, ver int64) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	m := c.mapst
	have, ok := m.resident[t]
	switch {
	case !ok:
		c.violate("map-coherence", "hit on t=%d which is not resident", t)
	case have != ver:
		c.violate("map-coherence", "hit on t=%d at version %d, cache mirror holds %d (stale entry)", t, ver, have)
	}
}

// MapMiss implements ftl.MapSink: a miss on a resident entry means the
// unit is about to fetch a page it already holds.
func (c *Checker) MapMiss(t int) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	if ver, ok := c.mapst.resident[t]; ok {
		c.violate("map-coherence", "miss on t=%d while resident at version %d", t, ver)
	}
}

// MapDirtied implements ftl.MapSink: an in-cache update must hit a
// resident entry and advance its version by exactly one.
func (c *Checker) MapDirtied(t int, ver int64) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	m := c.mapst
	have, ok := m.resident[t]
	switch {
	case !ok:
		c.violate("map-coherence", "dirtied t=%d which is not resident", t)
	case ver != have+1:
		c.violate("map-version", "t=%d dirtied to version %d from %d (must advance by one)", t, ver, have)
	}
	m.resident[t] = ver
	m.dirty[t] = true
}

// MapEvicted implements ftl.MapSink: an eviction must remove a resident
// entry; a dirty eviction opens a writeback obligation the drain rule
// enforces.
func (c *Checker) MapEvicted(t int, ver int64, dirty bool) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	m := c.mapst
	if _, ok := m.resident[t]; !ok {
		c.violate("map-coherence", "evicted t=%d which is not resident", t)
	}
	delete(m.resident, t)
	delete(m.dirty, t)
	if dirty {
		m.pendWB[t] = ver
	}
}

// MapCommitted implements ftl.MapSink: a commit records the token flash
// must hold for t and may never regress the committed version (cleaning
// relocations re-commit at the same version; writebacks advance it).
func (c *Checker) MapCommitted(t int, ver int64, tok flash.Token) {
	if c == nil || c.mapst == nil {
		return
	}
	c.checks++
	m := c.mapst
	if have, ok := m.flashVer[t]; ok && ver < have {
		c.violate("map-version", "t=%d committed at version %d after %d (commits must be monotone)", t, ver, have)
	}
	m.flashVer[t] = ver
	m.expect[t] = tok
	if want, ok := m.pendWB[t]; ok && ver >= want {
		delete(m.pendWB, t)
	}
}

// MapCounts returns (resident, pending-writeback) ledger sizes, for
// cross-checks in tests. Safe on nil.
func (c *Checker) MapCounts() (resident, pendingWB int) {
	if c == nil || c.mapst == nil {
		return 0, 0
	}
	return len(c.mapst.resident), len(c.mapst.pendWB)
}
