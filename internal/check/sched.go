package check

import (
	"fmt"

	"repro/internal/controller"
)

// schedState is the scheduling-layer ledger: which path segment is held
// by which transaction, plus the inflight count the issue/complete hooks
// must keep balanced.
type schedState struct {
	window   int // reorder window the issue rank must respect; 0 = unwindowed
	bound    int // starvation bound on the bypass counter
	reserved map[controller.PathSeg]uint64
	inflight int
	issued   int64
	done     int64
}

// WatchSched enables the scheduling-layer invariants: the reservation
// ledger (every reserved segment is released exactly once, by its
// holder, with no overlapping reservations), reorder-window legality (no
// pick outside the window, no bypass count past the starvation bound),
// and a drain check that the ledger empties. window is the reorder
// window to enforce (0 disables the rank rule, for unwindowed policies);
// bound is the configured starvation bound.
func (c *Checker) WatchSched(window, bound int) {
	if c == nil {
		return
	}
	c.sched = &schedState{
		window:   window,
		bound:    bound,
		reserved: make(map[controller.PathSeg]uint64),
	}
	c.AddDrainCheck("sched-ledger", func() error {
		s := c.sched
		if n := len(s.reserved); n > 0 {
			return fmt.Errorf("%d path segment(s) still reserved after drain", n)
		}
		if s.inflight != 0 {
			return fmt.Errorf("scheduler inflight count %d after drain (issued %d, completed %d)",
				s.inflight, s.issued, s.done)
		}
		return nil
	})
}

// SchedReserved implements controller.SchedChecker: no segment may be
// reserved while another transaction holds it.
func (c *Checker) SchedReserved(op uint64, segs []controller.PathSeg) {
	if c == nil || c.sched == nil {
		return
	}
	c.checks++
	for _, s := range segs {
		if holder, held := c.sched.reserved[s]; held {
			c.violate("sched-reserve-overlap", "op %d reserves segment %v already held by op %d",
				op, s, holder)
			continue
		}
		c.sched.reserved[s] = op
	}
}

// SchedReleased implements controller.SchedChecker: every release must
// match an active reservation by the same transaction.
func (c *Checker) SchedReleased(op uint64, segs []controller.PathSeg) {
	if c == nil || c.sched == nil {
		return
	}
	c.checks++
	for _, s := range segs {
		holder, held := c.sched.reserved[s]
		switch {
		case !held:
			c.violate("sched-release", "op %d releases segment %v that is not reserved", op, s)
		case holder != op:
			c.violate("sched-release", "op %d releases segment %v held by op %d", op, s, holder)
		default:
			delete(c.sched.reserved, s)
		}
	}
}

// SchedIssued implements controller.SchedChecker: a windowed policy may
// only pick among the oldest window transactions, and no transaction may
// be bypassed more often than the starvation bound.
func (c *Checker) SchedIssued(op uint64, rank, window, bypassed, bound int) {
	if c == nil || c.sched == nil {
		return
	}
	c.checks++
	if c.sched.window > 0 && rank >= c.sched.window {
		c.violate("sched-window", "op %d issued at rank %d outside the reorder window %d",
			op, rank, c.sched.window)
	}
	if window != c.sched.window {
		c.violate("sched-window", "op %d issued under window %d, scheduler configured %d",
			op, window, c.sched.window)
	}
	if c.sched.bound > 0 && bypassed > c.sched.bound {
		c.violate("sched-starvation", "op %d bypassed %d times, past the reorder bound %d",
			op, bypassed, c.sched.bound)
	}
	if bound != c.sched.bound {
		c.violate("sched-starvation", "op %d issued under bound %d, scheduler configured %d",
			op, bound, c.sched.bound)
	}
	c.sched.inflight++
	c.sched.issued++
}

// SchedCompleted implements controller.SchedChecker: completions must
// balance issues, and the scheduler's own inflight count must agree with
// the ledger's.
func (c *Checker) SchedCompleted(op uint64, inflight int) {
	if c == nil || c.sched == nil {
		return
	}
	c.checks++
	c.sched.inflight--
	c.sched.done++
	if c.sched.inflight < 0 {
		c.violate("sched-inflight", "op %d completed with no matching issue", op)
	}
	if inflight != c.sched.inflight {
		c.violate("sched-inflight", "op %d completion: scheduler reports %d inflight, ledger has %d",
			op, inflight, c.sched.inflight)
	}
}

// SchedCounts returns (issued, completed) transactions observed, for
// cross-checks in tests. Safe on nil.
func (c *Checker) SchedCounts() (issued, done int64) {
	if c == nil || c.sched == nil {
		return 0, 0
	}
	return c.sched.issued, c.sched.done
}
