package check

import (
	"strings"
	"testing"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newChecker() (*sim.Engine, *Checker) {
	e := sim.NewEngine()
	return e, New(e, Config{})
}

func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	c.RegisterResource("x", trace.KindHChannel)
	c.ResourceHold(nil, "read-cmd", 0, 0, 0)
	c.ResourceQueue(nil, 1, 0)
	c.PageWritten(0, 1)
	c.SetContentProbe(nil)
	c.WatchCopies(1)
	c.CopyRouted(controller.ChipID{}, controller.ChipID{}, true)
	c.WatchIdle("x", nil)
	c.AddDrainCheck("x", nil)
	if err := c.Verify(); err != nil {
		t.Fatalf("nil Verify: %v", err)
	}
	if c.Checks() != 0 || c.Violations() != nil {
		t.Fatal("nil checker accumulated state")
	}
}

func TestLabelLegality(t *testing.T) {
	e, c := newChecker()
	r := sim.NewResource(e, "v0")
	c.RegisterResource("v0", trace.KindVChannel)

	// gc-vxfer is legal on a v-channel; gc-read-xfer (the relayed GC
	// transfer) is h-channel work and must be flagged.
	c.ResourceHold(r, "gc-vxfer", 0, 0, 10)
	if err := c.Verify(); err != nil {
		t.Fatalf("legal label flagged: %v", err)
	}
	c.ResourceHold(r, "gc-read-xfer", 10, 10, 20)
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "label-legality") {
		t.Fatalf("illegal v-channel label not flagged: %v", err)
	}
}

func TestUnknownResourceSkipsLabelCheck(t *testing.T) {
	e, c := newChecker()
	r := sim.NewResource(e, "mystery")
	c.ResourceHold(r, "anything-goes", 0, 0, 5)
	if err := c.Verify(); err != nil {
		t.Fatalf("unregistered resource label flagged: %v", err)
	}
}

func TestHoldOrderAndOverlap(t *testing.T) {
	e, c := newChecker()
	r := sim.NewResource(e, "h0")
	c.RegisterResource("h0", trace.KindHChannel)

	c.ResourceHold(r, "read-xfer", 5, 3, 10)  // granted before queued
	c.ResourceHold(r, "read-xfer", 0, 8, 20)  // overlaps [3,10]
	c.ResourceHold(r, "read-xfer", 0, 30, 25) // released before granted
	err := c.Verify()
	if err == nil {
		t.Fatal("no violations reported")
	}
	for _, rule := range []string{"hold-order", "hold-overlap"} {
		if !strings.Contains(err.Error(), rule) {
			t.Errorf("missing %s in: %v", rule, err)
		}
	}
	if got := len(c.Violations()); got < 3 {
		t.Fatalf("violations = %d, want >= 3", got)
	}
}

func TestQueueDepthAndClock(t *testing.T) {
	e, c := newChecker()
	r := sim.NewResource(e, "h0")
	c.ResourceQueue(r, 2, 10)
	c.ResourceQueue(r, -1, 10) // negative depth
	c.ResourceQueue(r, 0, 5)   // time went backwards
	err := c.Verify()
	if err == nil {
		t.Fatal("no violations reported")
	}
	for _, rule := range []string{"queue-depth", "clock-monotonic"} {
		if !strings.Contains(err.Error(), rule) {
			t.Errorf("missing %s in: %v", rule, err)
		}
	}
}

func TestCopyColumnInvariant(t *testing.T) {
	_, c := newChecker()
	c.WatchCopies(2) // ways 0,1 on v0; ways 2,3 on v1
	c.CopyRouted(controller.ChipID{Channel: 0, Way: 0}, controller.ChipID{Channel: 1, Way: 1}, true)
	c.CopyRouted(controller.ChipID{Channel: 0, Way: 0}, controller.ChipID{Channel: 1, Way: 3}, false)
	if err := c.Verify(); err != nil {
		t.Fatalf("legal copies flagged: %v", err)
	}
	c.CopyRouted(controller.ChipID{Channel: 0, Way: 0}, controller.ChipID{Channel: 1, Way: 2}, true)
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "copy-column") {
		t.Fatalf("cross-column direct copy not flagged: %v", err)
	}
	if d, r := c.CopyCounts(); d != 2 || r != 1 {
		t.Fatalf("copy counts = (%d,%d), want (2,1)", d, r)
	}
}

func TestPageConservation(t *testing.T) {
	_, c := newChecker()
	store := map[int64]flash.Token{}
	c.SetContentProbe(func(lpn int64) (flash.Token, bool) {
		tok, ok := store[lpn]
		return tok, ok
	})
	c.PageWritten(1, 0xA)
	c.PageWritten(2, 0xB)
	store[1], store[2] = 0xA, 0xB
	if err := c.Verify(); err != nil {
		t.Fatalf("conserved pages flagged: %v", err)
	}
	store[2] = 0xFF  // corrupted
	delete(store, 1) // lost
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "page-conservation") {
		t.Fatalf("lost/corrupted pages not flagged: %v", err)
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}
}

func TestVerifyIdempotent(t *testing.T) {
	_, c := newChecker()
	c.AddDrainCheck("always-bad", func() error { return errTest })
	err1 := c.Verify()
	err2 := c.Verify()
	if err1 == nil || err2 == nil {
		t.Fatal("drain check not reported")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("Verify not idempotent:\n%v\nvs\n%v", err1, err2)
	}
	if got := len(c.Violations()); got != 1 {
		t.Fatalf("violations duplicated across Verify calls: %d", got)
	}
}

var errTest = &verifyErr{}

type verifyErr struct{}

func (*verifyErr) Error() string { return "synthetic failure" }

func TestViolationCap(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, Config{MaxViolations: 2})
	r := sim.NewResource(e, "h0")
	for i := 0; i < 5; i++ {
		c.ResourceQueue(r, -1, 0)
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("violations = %d, want cap 2", got)
	}
	if err := c.Verify(); err == nil || !strings.Contains(err.Error(), "past the cap") {
		t.Fatalf("dropped count not reported: %v", err)
	}
}

func TestRASBalance(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 7})
	if err := RASBalance(inj)(); err != nil {
		t.Fatalf("zeroed ledger imbalanced: %v", err)
	}
	if err := RASBalance(nil)(); err != nil {
		t.Fatalf("nil injector: %v", err)
	}
	// Unbalance the ledger: a drop with no matching retry or failover.
	inj.RAS().GrantDrops++
	if err := RASBalance(inj)(); err == nil {
		t.Fatal("imbalanced ledger not flagged")
	}
}

func TestWatchIdleReportsLeaks(t *testing.T) {
	_, c := newChecker()
	busy := true
	c.WatchIdle("stuck-bus", func() (bool, int) { return busy, 0 })
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "drain-leak") {
		t.Fatalf("leak not flagged: %v", err)
	}
	busy = false
	if err := c.Verify(); err != nil {
		t.Fatalf("idle resource flagged: %v", err)
	}
}
