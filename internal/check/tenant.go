package check

import "fmt"

// tenantState is the checker's own ledger for one submission queue. The
// checker recomputes depth from queued/granted transitions and compares
// it against the depth the front end reports, so a bookkeeping bug in
// either layer surfaces as a mismatch.
type tenantState struct {
	queued  int64 // commands enqueued
	granted int64 // commands dispatched by the arbiter
	done    int64 // commands completed
	depth   int   // ledger queue depth
	waiting int64 // grants elsewhere while this queue was non-empty
}

// WatchTenants enables the multi-queue front-end invariants for n
// tenants: per-queue depth accounting (the front end's reported depth
// must match the checker's own queued/granted ledger), the arbiter
// fairness bound (no non-empty queue watches more than `bound` grants
// go elsewhere — a generous safety net against true starvation, not a
// tight schedule assertion), and per-tenant conservation (every queued
// command is granted exactly once and completes exactly once, verified
// at drain). bound <= 0 disables the fairness rule.
func (c *Checker) WatchTenants(n, bound int) {
	if c == nil {
		return
	}
	c.tenants = make([]tenantState, n)
	c.tenantBound = bound
	c.AddDrainCheck("tenant-conservation", c.tenantDrain)
}

// TenantQueued implements host.FrontendObserver.
func (c *Checker) TenantQueued(tenant, depth int) {
	if c == nil {
		return
	}
	c.checks++
	if tenant < 0 || tenant >= len(c.tenants) {
		c.violate("tenant-queue-depth", "queued on unknown tenant %d", tenant)
		return
	}
	t := &c.tenants[tenant]
	t.queued++
	t.depth++
	if t.depth != depth {
		c.violate("tenant-queue-depth", "tenant %d: reported depth %d, ledger %d after enqueue", tenant, depth, t.depth)
	}
}

// TenantGranted implements host.FrontendObserver: besides the depth
// ledger it advances the fairness clock — every other non-empty queue
// has watched one more grant go elsewhere.
func (c *Checker) TenantGranted(tenant, depth int) {
	if c == nil {
		return
	}
	c.checks++
	if tenant < 0 || tenant >= len(c.tenants) {
		c.violate("tenant-queue-depth", "grant on unknown tenant %d", tenant)
		return
	}
	t := &c.tenants[tenant]
	t.granted++
	t.depth--
	t.waiting = 0
	if t.depth < 0 {
		c.violate("tenant-queue-depth", "tenant %d: granted with empty ledger queue", tenant)
		t.depth = 0
	}
	if t.depth != depth {
		c.violate("tenant-queue-depth", "tenant %d: reported depth %d, ledger %d after grant", tenant, depth, t.depth)
	}
	for i := range c.tenants {
		o := &c.tenants[i]
		if i == tenant || o.depth == 0 {
			continue
		}
		o.waiting++
		if c.tenantBound > 0 && o.waiting == int64(c.tenantBound)+1 {
			c.violate("tenant-starvation", "tenant %d: non-empty queue passed over for %d grants (bound %d)",
				i, o.waiting, c.tenantBound)
		}
	}
}

// TenantDone implements host.FrontendObserver.
func (c *Checker) TenantDone(tenant int) {
	if c == nil {
		return
	}
	c.checks++
	if tenant < 0 || tenant >= len(c.tenants) {
		c.violate("tenant-conservation", "completion on unknown tenant %d", tenant)
		return
	}
	t := &c.tenants[tenant]
	t.done++
	if t.done > t.granted {
		c.violate("tenant-conservation", "tenant %d: %d completions for %d grants", tenant, t.done, t.granted)
	}
}

// tenantDrain is the end-of-run conservation assertion: every queue
// empty, every queued command granted, every grant completed.
func (c *Checker) tenantDrain() error {
	for i := range c.tenants {
		t := &c.tenants[i]
		switch {
		case t.depth != 0:
			return fmt.Errorf("tenant %d: %d commands still queued after drain", i, t.depth)
		case t.queued != t.granted:
			return fmt.Errorf("tenant %d: %d queued but %d granted", i, t.queued, t.granted)
		case t.granted != t.done:
			return fmt.Errorf("tenant %d: %d granted but %d completed", i, t.granted, t.done)
		}
	}
	return nil
}

// TenantCounts returns one tenant's (queued, granted, done) ledger, for
// tests; zeros for an out-of-range tenant.
func (c *Checker) TenantCounts(tenant int) (queued, granted, done int64) {
	if c == nil || tenant < 0 || tenant >= len(c.tenants) {
		return 0, 0, 0
	}
	t := &c.tenants[tenant]
	return t.queued, t.granted, t.done
}
