// Package check is the simulation invariant checker: a passive subsystem
// that subscribes to the same observer hooks as tracing and asserts
// cross-layer invariants at event granularity — bus hold legality,
// GC-copy routing, page conservation, RAS accounting balance, and
// resource-leak detection at drain.
//
// Like the tracing recorder, a nil *Checker is valid everywhere and every
// method on it is a no-op, so a build with checking disabled executes the
// exact event sequence of a build without the checker compiled in.
package check

import (
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/flash"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes the checker.
type Config struct {
	// MaxViolations caps how many violations are recorded in detail;
	// further ones are counted but not stored. Zero means the default (64).
	MaxViolations int
}

// DefaultMaxViolations is the recorded-violation cap when Config leaves
// MaxViolations zero.
const DefaultMaxViolations = 64

// Violation is one invariant breach, timestamped at detection.
type Violation struct {
	Time   sim.Time
	Rule   string
	Detail string
}

// String renders the violation for error messages.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.Time, v.Rule, v.Detail)
}

// resourceState is the per-resource hold history the legality rules need.
type resourceState struct {
	kind        string
	lastRelease sim.Time
	haveHold    bool
}

// idleProbe checks one resource for drain-time leaks.
type idleProbe struct {
	name  string
	probe func() (busy bool, queued int)
}

// drainCheck is a named end-of-run assertion.
type drainCheck struct {
	name string
	fn   func() error
}

// Checker subscribes to observer hooks and records invariant violations.
// It is passive: it never schedules events or mutates model state, so an
// attached checker changes no simulated behavior, only adds bookkeeping.
type Checker struct {
	eng *sim.Engine
	cfg Config

	kinds     map[string]string // resource name -> trace.Kind* string
	res       map[*sim.Resource]*resourceState
	watermark sim.Time // latest observer timestamp seen (monotonic clock)

	// page conservation: the FTL's authoritative lpn -> token record and
	// the probe that reads the mapped flash content back at drain.
	expected     map[int64]flash.Token
	contentProbe func(lpn int64) (flash.Token, bool)

	// GC copy routing (Omnibus only): colsPerV > 0 enables the
	// direct-copy column invariant.
	colsPerV                    int
	directCopies, relayedCopies int64

	// multi-queue front-end ledger (WatchTenants): per-tenant
	// queued/granted/done counts and the fairness bound.
	tenants     []tenantState
	tenantBound int

	// scheduling-layer ledger (WatchSched): path reservations and the
	// inflight balance.
	sched *schedState

	// map-unit ledger (WatchMap): cache-coherence mirror and the
	// translation-page conservation record.
	mapst *mapState

	idleProbes  []idleProbe
	drainChecks []drainCheck

	violations []Violation // runtime violations, appended as they occur
	drainViols []Violation // drain violations, recomputed per Verify
	dropped    int64       // violations past the cap
	checks     int64       // assertions evaluated
}

// New builds a checker bound to the engine.
func New(eng *sim.Engine, cfg Config) *Checker {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	return &Checker{
		eng:      eng,
		cfg:      cfg,
		kinds:    make(map[string]string),
		res:      make(map[*sim.Resource]*resourceState),
		expected: make(map[int64]flash.Token),
	}
}

// Enabled reports whether the checker is attached; safe on nil.
func (c *Checker) Enabled() bool { return c != nil }

// Checks returns the number of assertions evaluated; safe on nil.
func (c *Checker) Checks() int64 {
	if c == nil {
		return 0
	}
	return c.checks
}

// violate records one breach, respecting the cap.
func (c *Checker) violate(rule, format string, args ...any) {
	if len(c.violations) >= c.cfg.MaxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Time:   c.eng.Now(),
		Rule:   rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

// RegisterResource declares a resource's kind (a trace.Kind* string) so
// hold labels can be validated against the kind's legal set. Unregistered
// resources are tracked with trace.KindOther and skip label checks.
func (c *Checker) RegisterResource(name, kind string) {
	if c == nil {
		return
	}
	c.kinds[name] = kind
}

// legalLabels maps a resource kind to the hold labels the architecture
// models are allowed to place on it. The v-channel set is the heart of
// the GC-safety invariant: relayed GC transfers (gc-read-xfer), read
// commands, and erase commands are controller-driven h-channel work and
// must never appear on a v-channel.
var legalLabels = map[string]map[string]bool{
	trace.KindHChannel: {
		"read-cmd": true, "read-xfer": true, "read-xfer-half": true,
		"program-xfer": true, "program-xfer-half": true,
		"erase-cmd": true, "gc-read-cmd": true, "gc-read-xfer": true,
	},
	trace.KindVChannel: {
		"read-xfer": true, "read-xfer-half": true,
		"program-xfer": true, "program-xfer-half": true,
		"gc-read-cmd": true, "gc-vxfer": true,
	},
	trace.KindChip: {"read": true, "program": true, "erase": true},
	trace.KindSoc:  {"xfer": true},
	trace.KindHost: {"read-return": true, "write-payload": true},
}

func (c *Checker) stateOf(r *sim.Resource) *resourceState {
	st, ok := c.res[r]
	if !ok {
		kind, known := c.kinds[r.Name()]
		if !known {
			kind = trace.KindOther
		}
		st = &resourceState{kind: kind}
		c.res[r] = st
	}
	return st
}

// ResourceHold implements sim.ResourceObserver: every completed hold is
// checked for timestamp sanity, non-overlap with the previous hold on the
// same resource, and label legality for the resource's kind.
func (c *Checker) ResourceHold(r *sim.Resource, label string, queuedAt, grantedAt, releasedAt sim.Time) {
	if c == nil {
		return
	}
	c.checks++
	st := c.stateOf(r)
	if !(queuedAt <= grantedAt && grantedAt <= releasedAt) {
		c.violate("hold-order", "%s: queued=%v granted=%v released=%v out of order (label %q)",
			r.Name(), queuedAt, grantedAt, releasedAt, label)
	}
	if st.haveHold && grantedAt < st.lastRelease {
		c.violate("hold-overlap", "%s: hold %q granted at %v overlaps previous hold released at %v",
			r.Name(), label, grantedAt, st.lastRelease)
	}
	if releasedAt < c.watermark {
		c.violate("clock-monotonic", "%s: hold released at %v after observing %v",
			r.Name(), releasedAt, c.watermark)
	} else {
		c.watermark = releasedAt
	}
	if legal, ok := legalLabels[st.kind]; ok && !legal[label] {
		c.violate("label-legality", "%s (%s): illegal hold label %q", r.Name(), st.kind, label)
	}
	st.lastRelease = releasedAt
	st.haveHold = true
}

// ResourceQueue implements sim.ResourceObserver: queue depths must be
// non-negative and observations time-ordered.
func (c *Checker) ResourceQueue(r *sim.Resource, depth int, at sim.Time) {
	if c == nil {
		return
	}
	c.checks++
	if depth < 0 {
		c.violate("queue-depth", "%s: negative queue depth %d", r.Name(), depth)
	}
	if at < c.watermark {
		c.violate("clock-monotonic", "%s: queue event at %v after observing %v",
			r.Name(), at, c.watermark)
	} else {
		c.watermark = at
	}
}

// PageWritten implements ftl.CheckSink: it records the authoritative
// content for an LPN. Verify replays the record against the flash arrays.
func (c *Checker) PageWritten(lpn int64, tok flash.Token) {
	if c == nil {
		return
	}
	c.checks++
	c.expected[lpn] = tok
}

// SetContentProbe installs the lookup Verify uses to read an LPN's mapped
// flash content back: it returns the stored token and whether the LPN is
// mapped to a programmed page.
func (c *Checker) SetContentProbe(lookup func(lpn int64) (flash.Token, bool)) {
	if c == nil {
		return
	}
	c.contentProbe = lookup
}

// WatchCopies enables the GC routing invariant for an Omnibus fabric
// whose v-channels each serve colsPerV way-columns.
func (c *Checker) WatchCopies(colsPerV int) {
	if c == nil {
		return
	}
	c.colsPerV = colsPerV
}

// CopyRouted implements controller.CopyChecker: a copy routed direct must
// stay within one v-channel column — the structural property Spatial GC
// relies on to keep collection off the h-channels.
func (c *Checker) CopyRouted(src, dst controller.ChipID, direct bool) {
	if c == nil {
		return
	}
	c.checks++
	if direct {
		c.directCopies++
		if c.colsPerV > 0 && src.Way/c.colsPerV != dst.Way/c.colsPerV {
			c.violate("copy-column", "direct copy %v -> %v crosses v-channel columns (colsPerV=%d)",
				src, dst, c.colsPerV)
		}
	} else {
		c.relayedCopies++
	}
}

// CopyCounts returns (direct, relayed) copies observed, for cross-checks
// against fabric counters.
func (c *Checker) CopyCounts() (direct, relayed int64) {
	if c == nil {
		return 0, 0
	}
	return c.directCopies, c.relayedCopies
}

// WatchIdle registers a drain-time leak probe: at Verify the resource
// must be idle with an empty queue.
func (c *Checker) WatchIdle(name string, probe func() (busy bool, queued int)) {
	if c == nil {
		return
	}
	c.idleProbes = append(c.idleProbes, idleProbe{name: name, probe: probe})
}

// AddDrainCheck registers a named end-of-run assertion evaluated by
// Verify; a non-nil error becomes a violation.
func (c *Checker) AddDrainCheck(name string, fn func() error) {
	if c == nil {
		return
	}
	c.drainChecks = append(c.drainChecks, drainCheck{name: name, fn: fn})
}

// Verify evaluates every drain-time invariant and returns an error
// summarizing all recorded violations (runtime and drain), or nil when
// the run is clean. It is idempotent: drain checks are recomputed on each
// call and runtime violations are never duplicated. Safe on nil.
func (c *Checker) Verify() error {
	if c == nil {
		return nil
	}
	c.drainViols = c.drainViols[:0]
	drainViolate := func(rule, format string, args ...any) {
		c.drainViols = append(c.drainViols, Violation{
			Time:   c.eng.Now(),
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	for _, p := range c.idleProbes {
		c.checks++
		busy, queued := p.probe()
		if busy || queued > 0 {
			drainViolate("drain-leak", "%s: busy=%v queued=%d after drain", p.name, busy, queued)
		}
	}
	for _, d := range c.drainChecks {
		c.checks++
		if err := d.fn(); err != nil {
			drainViolate("drain-check", "%s: %v", d.name, err)
		}
	}
	if c.contentProbe != nil && len(c.expected) > 0 {
		lpns := make([]int64, 0, len(c.expected))
		for lpn := range c.expected {
			lpns = append(lpns, lpn)
		}
		sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
		bad := 0
		for _, lpn := range lpns {
			c.checks++
			got, ok := c.contentProbe(lpn)
			want := c.expected[lpn]
			if !ok {
				bad++
				if bad <= 8 {
					drainViolate("page-conservation", "LPN %d: written but not mapped to a programmed page", lpn)
				}
				continue
			}
			if got != want {
				bad++
				if bad <= 8 {
					drainViolate("page-conservation", "LPN %d: content %#x, want %#x", lpn, got, want)
				}
			}
		}
		if bad > 8 {
			drainViolate("page-conservation", "%d further LPNs lost or corrupted", bad-8)
		}
	}
	all := c.Violations()
	if len(all) == 0 {
		return nil
	}
	msg := fmt.Sprintf("check: %d invariant violation(s)", len(all))
	if c.dropped > 0 {
		msg += fmt.Sprintf(" (+%d past the cap)", c.dropped)
	}
	for i, v := range all {
		if i >= 16 {
			msg += fmt.Sprintf("\n  ... and %d more", len(all)-16)
			break
		}
		msg += "\n  " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// Violations returns every recorded violation: runtime ones in detection
// order followed by the latest Verify's drain findings. Safe on nil.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	out := make([]Violation, 0, len(c.violations)+len(c.drainViols))
	out = append(out, c.violations...)
	out = append(out, c.drainViols...)
	return out
}

// RASBalance returns a drain check asserting the injected-fault ledger:
// every fault the injector fired is accounted for by exactly one recovery
// counter. The identities follow the recovery paths — a faulted read's
// true draws equal its retries (recovered) or retries+1 with one strong
// ECC relay (exhausted); every program/erase fail and grant drop is
// counted where it is handled; every dropped grant ends in a retry or a
// relay failover; every on-die ECC hit becomes a fallback.
func RASBalance(inj *fault.Injector) func() error {
	return func() error {
		if inj == nil {
			return nil
		}
		r := inj.RAS()
		if r == nil {
			return nil
		}
		type identity struct {
			name      string
			got, want int64
		}
		ids := []identity{
			{"read ECC draws == retries + relays", inj.Injected(fault.ReadECC), r.ReadRetries + r.ReadRelays},
			{"program-fail draws == program fails", inj.Injected(fault.ProgramFail), r.ProgramFails},
			{"erase-fail draws == erase fails", inj.Injected(fault.EraseFail), r.EraseFails},
			{"grant-drop draws == grant drops", inj.Injected(fault.GrantDrop), r.GrantDrops},
			{"grant drops == retries + failovers", r.GrantDrops, r.GrantRetries + r.CopyFailovers},
			{"on-die ECC draws == fallbacks", inj.Injected(fault.OnDieECC), r.OnDieECCFallbacks},
		}
		for _, id := range ids {
			if id.got != id.want {
				return fmt.Errorf("RAS imbalance: %s (%d != %d)", id.name, id.got, id.want)
			}
		}
		return nil
	}
}
