package sim

import (
	"fmt"
	"strings"
	"testing"
)

// goldenRun executes a scripted mixed workload — bare events, timed holds
// on two contended resources, manual acquire/release pairs, nested
// scheduling, and a RunUntil cut — and serializes the exact firing order
// as "id@time" tokens. The script is driven by an inline LCG so it never
// depends on math/rand internals. The engine to drive and the final drain
// are injected so the identical script can run on a bare Engine and on a
// ShardedEngine wrapping one (TestShardedGoldenSequence).
func goldenRun() string {
	e := NewEngine()
	return goldenScript(e, e.Run)
}

func goldenScript(e *Engine, run func() Time) string {
	var sb strings.Builder
	rec := func(id string, arg int) { fmt.Fprintf(&sb, "%s%d@%d;", id, arg, int64(e.Now())) }

	lcg := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % n
	}

	rA := NewResource(e, "A")
	rB := NewResource(e, "B")
	for i := 0; i < 48; i++ {
		i := i
		switch next(5) {
		case 0:
			e.Schedule(Time(next(60)), func() { rec("t", i) })
		case 1:
			rA.Use(Time(next(25)), func() { rec("a", i) })
		case 2:
			rB.UseLabeled("xfer", Time(next(25)), func() { rec("b", i) })
		case 3:
			rA.AcquireLabeled("manual", func() {
				rec("g", i)
				e.Schedule(Time(next(15)), func() {
					rA.Release()
					rec("r", i)
				})
			})
		case 4:
			// Timed hold with no completion callback, mixed in so the
			// done==nil path is part of the golden ordering too.
			rB.Use(Time(next(10)), nil)
		}
	}
	e.Schedule(5, func() {
		rec("n", 0)
		e.Schedule(0, func() { rec("n", 1) })
		e.Schedule(7, func() { rec("n", 2) })
	})
	n := e.RunUntil(90)
	rec("cut", int(n))
	run()
	fmt.Fprintf(&sb, "fired=%d now=%d busyA=%d busyB=%d waitA=%d waitB=%d",
		e.EventsFired(), int64(e.Now()),
		int64(rA.TotalBusy()), int64(rB.TotalBusy()),
		int64(rA.TotalWait()), int64(rB.TotalWait()))
	return sb.String()
}

// TestEngineGoldenSequence pins the engine's event ordering bit-for-bit.
// The golden string was captured from the container/heap implementation;
// any scheduler change that reorders events — even among same-instant
// events — breaks every downstream experiment's reproducibility and must
// fail here first.
func TestEngineGoldenSequence(t *testing.T) {
	got := goldenRun()
	if got != goldenWant {
		t.Fatalf("event sequence diverged from golden:\n got: %s\nwant: %s", got, goldenWant)
	}
}

// TestShardedGoldenSequence pins the shards=1 degenerate case of the
// partitioned engine to the exact serial golden string: a ShardedEngine
// wrapping one shard must replay the reference workload event for event,
// byte for byte — the sim-level anchor of the "sharding never changes
// results" contract.
func TestShardedGoldenSequence(t *testing.T) {
	se := NewShardedEngine(1, 500*Nanosecond)
	got := goldenScript(se.Shard(0), se.Run)
	if got != goldenWant {
		t.Fatalf("sharded(1) sequence diverged from serial golden:\n got: %s\nwant: %s", got, goldenWant)
	}
	if se.Windows() != 0 || se.CrossPosts() != 0 {
		t.Fatalf("single-shard run used %d windows / %d cross posts, want 0/0", se.Windows(), se.CrossPosts())
	}
}

const goldenWant = "n0@5;n1@5;t42@6;t21@9;a2@12;n2@12;t38@14;t12@19;t26@19;t23@21;t30@24;b3@26;a4@29;g9@29;r9@34;g10@34;r10@34;t28@37;a11@38;g13@38;t35@39;r13@40;a16@40;g20@40;t5@48;b6@48;r20@52;g22@52;r22@54;t15@56;b7@58;a25@65;b8@77;a27@78;g29@78;r29@84;b14@85;b17@88;a37@89;g40@89;cut58@90;b18@91;b19@97;r40@101;b31@106;a45@124;a46@124;b43@156;b47@177;fired=88 now=177 busyA=124 busyB=177 waitA=874 waitB=1833"
