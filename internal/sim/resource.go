package sim

// Resource is a unit-capacity server with FIFO admission. It models any
// hardware element that serves one occupant at a time: a bus channel, a
// flash die, a DRAM port. Holders acquire the resource, are called back when
// granted, and must release it when done.
//
// Grant callbacks run as fresh events (never re-entrantly inside Acquire or
// Release), so model code can treat them as happening "next".
type Resource struct {
	eng     *Engine
	name    string
	busy    bool
	waiters []grantReq

	// accounting
	busySince   Time
	totalBusy   Time
	totalGrants int64
	totalWait   Time
	maxWait     Time
	util        *UtilRecorder
	obs         ResourceObserver
	curLabel    string
	curQueued   Time

	// Timed-hold fast path: Use/UseLabeled holds are granted through the
	// two method values below (bound once at construction) instead of
	// per-hold closures, so the common "occupy a bus for a serialization
	// time" pattern schedules zero heap allocations. The duration and
	// completion callback of the hold currently in flight live in curDur
	// and curDone; unit capacity guarantees at most one timed hold is
	// active at a time, so one slot suffices. Queued timed holds carry
	// their duration/callback in their grantReq until granted.
	curDur    Time
	curDone   func()
	grantStep func() // bound r.timedGrantStep
	relStep   func() // bound r.timedReleaseStep
}

// ResourceObserver receives passive notifications about a resource's
// occupancy and queue, the hook the tracing subsystem attaches to. All
// callbacks fire synchronously inside Acquire/Release; implementations
// must only record — scheduling events or touching model state from an
// observer would perturb the simulation it is observing.
type ResourceObserver interface {
	// ResourceHold reports one completed hold: the holder enqueued at
	// queuedAt, was granted at grantedAt (equal to queuedAt for immediate
	// grants), and released at releasedAt.
	ResourceHold(r *Resource, label string, queuedAt, grantedAt, releasedAt Time)
	// ResourceQueue reports the waiter-queue depth after it changed.
	ResourceQueue(r *Resource, depth int, at Time)
}

type grantReq struct {
	fn    func()
	at    Time
	label string
	// timed marks a Use/UseLabeled hold: fn is nil and the hold runs for
	// dur, then releases and calls done (which may be nil).
	timed bool
	dur   Time
	done  func()
}

// DefaultHoldLabel names holds acquired without an explicit label.
const DefaultHoldLabel = "hold"

// NewResource creates an idle resource attached to the engine. The name is
// used only for diagnostics.
func NewResource(eng *Engine, name string) *Resource {
	r := &Resource{eng: eng, name: name}
	r.grantStep = r.timedGrantStep
	r.relStep = r.timedReleaseStep
	return r
}

// Name returns the diagnostic name supplied at construction.
func (r *Resource) Name() string { return r.name }

// SetUtilRecorder attaches a windowed utilization recorder; every busy
// interval is reported to it. A nil recorder detaches.
func (r *Resource) SetUtilRecorder(u *UtilRecorder) { r.util = u }

// SetObserver attaches a hold/queue observer; nil detaches. With no
// observer attached the accounting paths are unchanged, so runs with
// tracing disabled are bit-identical to runs before observers existed.
func (r *Resource) SetObserver(o ResourceObserver) { r.obs = o }

// AddObserver attaches an additional observer alongside any already
// installed, fanning callbacks out to both in installation order. This
// lets tracing and invariant checking watch the same resource without
// either knowing about the other.
func (r *Resource) AddObserver(o ResourceObserver) {
	if o == nil {
		return
	}
	if r.obs == nil {
		r.obs = o
		return
	}
	r.obs = teeObserver{a: r.obs, b: o}
}

// teeObserver fans observer callbacks out to two observers.
type teeObserver struct {
	a, b ResourceObserver
}

func (t teeObserver) ResourceHold(r *Resource, label string, queuedAt, grantedAt, releasedAt Time) {
	t.a.ResourceHold(r, label, queuedAt, grantedAt, releasedAt)
	t.b.ResourceHold(r, label, queuedAt, grantedAt, releasedAt)
}

func (t teeObserver) ResourceQueue(r *Resource, depth int, at Time) {
	t.a.ResourceQueue(r, depth, at)
	t.b.ResourceQueue(r, depth, at)
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters not yet granted.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire requests the resource. When granted, fn runs as its own event; the
// holder must eventually call Release.
func (r *Resource) Acquire(fn func()) { r.AcquireLabeled(DefaultHoldLabel, fn) }

// AcquireLabeled is Acquire with a label naming the hold for observers
// (e.g. "read-xfer" on a bus, "program" on a die). Labels should be
// constant strings; they are carried by value and never retained.
func (r *Resource) AcquireLabeled(label string, fn func()) {
	if fn == nil {
		panic("sim: nil acquire callback for " + r.name)
	}
	if !r.busy {
		r.grant(grantReq{fn: fn, at: r.eng.Now(), label: label})
		return
	}
	r.waiters = append(r.waiters, grantReq{fn: fn, at: r.eng.Now(), label: label})
	if r.obs != nil {
		r.obs.ResourceQueue(r, len(r.waiters), r.eng.Now())
	}
}

// TryAcquire acquires the resource only if it is idle and has no waiters,
// reporting success. On success fn is scheduled exactly as with Acquire.
func (r *Resource) TryAcquire(fn func()) bool {
	if r.busy || len(r.waiters) > 0 {
		return false
	}
	r.grant(grantReq{fn: fn, at: r.eng.Now(), label: DefaultHoldLabel})
	return true
}

func (r *Resource) grant(req grantReq) {
	r.busy = true
	r.busySince = r.eng.Now()
	r.curLabel = req.label
	r.curQueued = req.at
	r.totalGrants++
	if req.timed {
		r.curDur = req.dur
		r.curDone = req.done
		r.eng.Schedule(0, r.grantStep)
		return
	}
	r.eng.Schedule(0, req.fn)
}

// timedGrantStep is the grant event of a timed hold: it runs at the grant
// instant and schedules the release, exactly as the closure pair in
// UseLabeled used to — same event count, same seq consumption, so runs
// are bit-identical to the closure-based implementation.
func (r *Resource) timedGrantStep() {
	r.eng.Schedule(r.curDur, r.relStep)
}

// timedReleaseStep releases a timed hold and runs its completion
// callback. curDone is read before Release because Release may grant the
// next queued timed hold, which overwrites the slot.
func (r *Resource) timedReleaseStep() {
	done := r.curDone
	r.curDone = nil
	r.Release()
	if done != nil {
		done()
	}
}

// Release frees the resource and grants it to the next FIFO waiter, if any.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: release of idle resource " + r.name)
	}
	held := r.eng.Now() - r.busySince
	r.totalBusy += held
	if r.util != nil {
		r.util.AddBusy(r.busySince, r.eng.Now())
	}
	if r.obs != nil {
		r.obs.ResourceHold(r, r.curLabel, r.curQueued, r.busySince, r.eng.Now())
	}
	r.busy = false
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		wait := r.eng.Now() - next.at
		r.totalWait += wait
		if wait > r.maxWait {
			r.maxWait = wait
		}
		if r.obs != nil {
			r.obs.ResourceQueue(r, len(r.waiters), r.eng.Now())
		}
		r.grant(next)
	}
}

// Use acquires the resource, holds it for d, then releases it and runs done
// (which may be nil). It is the common "occupy a bus for a serialization
// time" helper.
func (r *Resource) Use(d Time, done func()) { r.UseLabeled(DefaultHoldLabel, d, done) }

// UseLabeled is Use with an observer label for the hold. It is the
// engine's hottest path — every bus transfer and flash operation passes
// through it — so it is allocation-free: instead of building a
// grant-then-release closure pair per hold, the hold's duration and done
// callback ride in the grant request and fire through per-resource
// method values bound once at construction.
func (r *Resource) UseLabeled(label string, d Time, done func()) {
	if d < 0 {
		panic("sim: negative hold duration for " + r.name)
	}
	if !r.busy {
		r.grant(grantReq{at: r.eng.Now(), label: label, timed: true, dur: d, done: done})
		return
	}
	r.waiters = append(r.waiters, grantReq{at: r.eng.Now(), label: label, timed: true, dur: d, done: done})
	if r.obs != nil {
		r.obs.ResourceQueue(r, len(r.waiters), r.eng.Now())
	}
}

// TotalBusy returns cumulative held time over completed holds.
func (r *Resource) TotalBusy() Time { return r.totalBusy }

// TotalGrants returns the number of grants issued.
func (r *Resource) TotalGrants() int64 { return r.totalGrants }

// TotalWait returns the cumulative time grantees spent queued before
// receiving the resource; immediate grants contribute zero.
func (r *Resource) TotalWait() Time { return r.totalWait }

// MaxWait returns the longest single queueing delay observed.
func (r *Resource) MaxWait() Time { return r.maxWait }

// MeanWait returns the average queueing delay over all grants.
func (r *Resource) MeanWait() Time {
	if r.totalGrants == 0 {
		return 0
	}
	return r.totalWait / Time(r.totalGrants)
}

// Utilization returns TotalBusy divided by the elapsed time since zero.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() == 0 {
		return 0
	}
	return float64(r.totalBusy) / float64(r.eng.Now())
}

// UtilRecorder accumulates busy time into fixed-width windows, producing the
// per-channel utilization time series behind the paper's Fig 3 heatmap.
type UtilRecorder struct {
	window  Time
	busyPer []Time
}

// NewUtilRecorder creates a recorder with the given window width.
func NewUtilRecorder(window Time) *UtilRecorder {
	if window <= 0 {
		panic("sim: non-positive utilization window")
	}
	return &UtilRecorder{window: window}
}

// Window returns the configured window width.
func (u *UtilRecorder) Window() Time { return u.window }

// AddBusy credits the interval [from, to) across the windows it overlaps.
func (u *UtilRecorder) AddBusy(from, to Time) {
	if to < from {
		panic("sim: inverted busy interval")
	}
	if from == to {
		return
	}
	// Grow straight to the interval's last window instead of one window
	// per loop iteration: an interval far past the recorded range costs
	// one append, not O(gap) reallocating appends.
	if last := int((to - 1) / u.window); last >= len(u.busyPer) {
		u.busyPer = append(u.busyPer, make([]Time, last+1-len(u.busyPer))...)
	}
	for from < to {
		w := int(from / u.window)
		end := Time(w+1) * u.window
		if end > to {
			end = to
		}
		u.busyPer[w] += end - from
		from = end
	}
}

// Series returns per-window utilization in [0,1], one entry per window from
// time zero through the last busy interval recorded.
func (u *UtilRecorder) Series() []float64 {
	out := make([]float64, len(u.busyPer))
	for i, b := range u.busyPer {
		out[i] = float64(b) / float64(u.window)
	}
	return out
}
