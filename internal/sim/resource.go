package sim

// Resource is a unit-capacity server with FIFO admission. It models any
// hardware element that serves one occupant at a time: a bus channel, a
// flash die, a DRAM port. Holders acquire the resource, are called back when
// granted, and must release it when done.
//
// Grant callbacks run as fresh events (never re-entrantly inside Acquire or
// Release), so model code can treat them as happening "next".
type Resource struct {
	eng     *Engine
	name    string
	busy    bool
	waiters []grantReq

	// accounting
	busySince   Time
	totalBusy   Time
	totalGrants int64
	totalWait   Time
	maxWait     Time
	util        *UtilRecorder
	obs         ResourceObserver
	curLabel    string
	curQueued   Time
}

// ResourceObserver receives passive notifications about a resource's
// occupancy and queue, the hook the tracing subsystem attaches to. All
// callbacks fire synchronously inside Acquire/Release; implementations
// must only record — scheduling events or touching model state from an
// observer would perturb the simulation it is observing.
type ResourceObserver interface {
	// ResourceHold reports one completed hold: the holder enqueued at
	// queuedAt, was granted at grantedAt (equal to queuedAt for immediate
	// grants), and released at releasedAt.
	ResourceHold(r *Resource, label string, queuedAt, grantedAt, releasedAt Time)
	// ResourceQueue reports the waiter-queue depth after it changed.
	ResourceQueue(r *Resource, depth int, at Time)
}

type grantReq struct {
	fn    func()
	at    Time
	label string
}

// DefaultHoldLabel names holds acquired without an explicit label.
const DefaultHoldLabel = "hold"

// NewResource creates an idle resource attached to the engine. The name is
// used only for diagnostics.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the diagnostic name supplied at construction.
func (r *Resource) Name() string { return r.name }

// SetUtilRecorder attaches a windowed utilization recorder; every busy
// interval is reported to it. A nil recorder detaches.
func (r *Resource) SetUtilRecorder(u *UtilRecorder) { r.util = u }

// SetObserver attaches a hold/queue observer; nil detaches. With no
// observer attached the accounting paths are unchanged, so runs with
// tracing disabled are bit-identical to runs before observers existed.
func (r *Resource) SetObserver(o ResourceObserver) { r.obs = o }

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen returns the number of waiters not yet granted.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire requests the resource. When granted, fn runs as its own event; the
// holder must eventually call Release.
func (r *Resource) Acquire(fn func()) { r.AcquireLabeled(DefaultHoldLabel, fn) }

// AcquireLabeled is Acquire with a label naming the hold for observers
// (e.g. "read-xfer" on a bus, "program" on a die). Labels should be
// constant strings; they are carried by value and never retained.
func (r *Resource) AcquireLabeled(label string, fn func()) {
	if fn == nil {
		panic("sim: nil acquire callback for " + r.name)
	}
	if !r.busy {
		r.grant(label, fn, r.eng.Now())
		return
	}
	r.waiters = append(r.waiters, grantReq{fn: fn, at: r.eng.Now(), label: label})
	if r.obs != nil {
		r.obs.ResourceQueue(r, len(r.waiters), r.eng.Now())
	}
}

// TryAcquire acquires the resource only if it is idle and has no waiters,
// reporting success. On success fn is scheduled exactly as with Acquire.
func (r *Resource) TryAcquire(fn func()) bool {
	if r.busy || len(r.waiters) > 0 {
		return false
	}
	r.grant(DefaultHoldLabel, fn, r.eng.Now())
	return true
}

func (r *Resource) grant(label string, fn func(), queuedAt Time) {
	r.busy = true
	r.busySince = r.eng.Now()
	r.curLabel = label
	r.curQueued = queuedAt
	r.totalGrants++
	r.eng.Schedule(0, fn)
}

// Release frees the resource and grants it to the next FIFO waiter, if any.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: release of idle resource " + r.name)
	}
	held := r.eng.Now() - r.busySince
	r.totalBusy += held
	if r.util != nil {
		r.util.AddBusy(r.busySince, r.eng.Now())
	}
	if r.obs != nil {
		r.obs.ResourceHold(r, r.curLabel, r.curQueued, r.busySince, r.eng.Now())
	}
	r.busy = false
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		wait := r.eng.Now() - next.at
		r.totalWait += wait
		if wait > r.maxWait {
			r.maxWait = wait
		}
		if r.obs != nil {
			r.obs.ResourceQueue(r, len(r.waiters), r.eng.Now())
		}
		r.grant(next.label, next.fn, next.at)
	}
}

// Use acquires the resource, holds it for d, then releases it and runs done
// (which may be nil). It is the common "occupy a bus for a serialization
// time" helper.
func (r *Resource) Use(d Time, done func()) { r.UseLabeled(DefaultHoldLabel, d, done) }

// UseLabeled is Use with an observer label for the hold.
func (r *Resource) UseLabeled(label string, d Time, done func()) {
	if d < 0 {
		panic("sim: negative hold duration for " + r.name)
	}
	r.AcquireLabeled(label, func() {
		r.eng.Schedule(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// TotalBusy returns cumulative held time over completed holds.
func (r *Resource) TotalBusy() Time { return r.totalBusy }

// TotalGrants returns the number of grants issued.
func (r *Resource) TotalGrants() int64 { return r.totalGrants }

// TotalWait returns the cumulative time grantees spent queued before
// receiving the resource; immediate grants contribute zero.
func (r *Resource) TotalWait() Time { return r.totalWait }

// MaxWait returns the longest single queueing delay observed.
func (r *Resource) MaxWait() Time { return r.maxWait }

// MeanWait returns the average queueing delay over all grants.
func (r *Resource) MeanWait() Time {
	if r.totalGrants == 0 {
		return 0
	}
	return r.totalWait / Time(r.totalGrants)
}

// Utilization returns TotalBusy divided by the elapsed time since zero.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() == 0 {
		return 0
	}
	return float64(r.totalBusy) / float64(r.eng.Now())
}

// UtilRecorder accumulates busy time into fixed-width windows, producing the
// per-channel utilization time series behind the paper's Fig 3 heatmap.
type UtilRecorder struct {
	window  Time
	busyPer []Time
}

// NewUtilRecorder creates a recorder with the given window width.
func NewUtilRecorder(window Time) *UtilRecorder {
	if window <= 0 {
		panic("sim: non-positive utilization window")
	}
	return &UtilRecorder{window: window}
}

// Window returns the configured window width.
func (u *UtilRecorder) Window() Time { return u.window }

// AddBusy credits the interval [from, to) across the windows it overlaps.
func (u *UtilRecorder) AddBusy(from, to Time) {
	if to < from {
		panic("sim: inverted busy interval")
	}
	for from < to {
		w := int(from / u.window)
		for w >= len(u.busyPer) {
			u.busyPer = append(u.busyPer, 0)
		}
		end := Time(w+1) * u.window
		if end > to {
			end = to
		}
		u.busyPer[w] += end - from
		from = end
	}
}

// Series returns per-window utilization in [0,1], one entry per window from
// time zero through the last busy interval recorded.
func (u *UtilRecorder) Series() []float64 {
	out := make([]float64, len(u.busyPer))
	for i, b := range u.busyPer {
		out[i] = float64(b) / float64(u.window)
	}
	return out
}
