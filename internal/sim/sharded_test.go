package sim

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// synthRun drives a shard-count-agnostic synthetic model — numCh
// "channels" each running a dense local event chain that periodically
// sends a request to a "controller", which replies after a round-trip
// latency — and returns the per-channel event traces plus aggregate
// stats. Every delay is the same at every shard count; only the routing
// (same-shard Schedule vs cross-shard mailbox) differs, so the traces
// must be identical whether the model runs on 1, 2, or 4 shards.
func synthRun(shards, numCh int) (traces []string, served int, end Time, se *ShardedEngine) {
	const window = 100 * Nanosecond
	se = NewShardedEngine(shards, window)

	shardOf := func(ch int) int {
		if shards == 1 {
			return 0
		}
		return 1 + ch%(shards-1) // controller alone on shard 0
	}

	bufs := make([]strings.Builder, numCh)
	for c := 0; c < numCh; c++ {
		c := c
		sh := shardOf(c)
		eng := se.Shard(sh)
		step := Time(3+c) * Nanosecond
		var tick func(i int)
		tick = func(i int) {
			fmt.Fprintf(&bufs[c], "e%d@%d;", i, int64(eng.Now()))
			if i%7 == 3 {
				// Request to the controller; it replies after the same
				// latency. 107ns clears the 100ns lookahead bound and is
				// chosen so no reply ever collides with a tick instant
				// (214 is not a multiple of any channel step): same-time
				// cross-shard arrivals are the one place windowed
				// delivery may legitimately order differently than a
				// serial run, and this test pins everything else.
				const hop = 107 * Nanosecond
				se.Post(sh, 0, hop, func() {
					served++
					se.Post(0, sh, hop, func() {
						fmt.Fprintf(&bufs[c], "r%d@%d;", i, int64(eng.Now()))
					})
				})
			}
			if i < 40 {
				eng.Schedule(step, func() { tick(i + 1) })
			}
		}
		eng.Schedule(Time(c)*Nanosecond, func() { tick(0) })
	}

	end = se.Run()
	traces = make([]string, numCh)
	for c := range bufs {
		traces[c] = bufs[c].String()
	}
	return traces, served, end, se
}

// TestShardedIdenticalAcrossShardCounts is the core determinism contract
// at the sim level: the same model produces identical per-channel event
// traces, controller counts, final clock, and total event count at 1, 2,
// and 4 shards — and repeated 4-shard runs replay bit-for-bit.
func TestShardedIdenticalAcrossShardCounts(t *testing.T) {
	const numCh = 6
	refTraces, refServed, refEnd, refSE := synthRun(1, numCh)
	refFired := refSE.EventsFired()
	if refFired == 0 || refServed == 0 {
		t.Fatalf("degenerate reference run: fired=%d served=%d", refFired, refServed)
	}
	for _, shards := range []int{2, 4, 4} { // 4 twice: replay determinism
		traces, served, end, se := synthRun(shards, numCh)
		if !reflect.DeepEqual(traces, refTraces) {
			t.Fatalf("shards=%d traces diverge from serial:\n got: %v\nwant: %v", shards, traces, refTraces)
		}
		if served != refServed || end != refEnd || se.EventsFired() != refFired {
			t.Fatalf("shards=%d aggregates diverge: served=%d end=%v fired=%d, want %d/%v/%d",
				shards, served, end, se.EventsFired(), refServed, refEnd, refFired)
		}
		if se.CrossPosts() == 0 {
			t.Fatalf("shards=%d run routed no posts through the mailbox — the test exercised nothing", shards)
		}
		if cp := se.CriticalPathEvents(); cp <= 0 || cp > se.EventsFired() {
			t.Fatalf("shards=%d critical path %d outside (0, %d]", shards, cp, se.EventsFired())
		}
		if se.Pending() != 0 {
			t.Fatalf("shards=%d left %d events pending after Run", shards, se.Pending())
		}
	}
}

// TestShardedMailboxOrder pins the barrier delivery order: posts from
// different source shards targeting the same destination instant are
// applied in (window, source shard, post order), so the destination
// executes them in that order regardless of which worker goroutine
// finished its window first.
func TestShardedMailboxOrder(t *testing.T) {
	const window = 10 * Nanosecond
	se := NewShardedEngine(3, window)
	var order []string
	target := 50 * Nanosecond
	// Both sources aim at the same absolute destination time; shard 2
	// posts "first" within its own window, but shard 1's mailbox drains
	// first at the barrier.
	se.Shard(2).Schedule(Nanosecond, func() {
		se.Post(2, 0, target-Nanosecond, func() { order = append(order, "from2a") })
		se.Post(2, 0, target-Nanosecond, func() { order = append(order, "from2b") })
	})
	se.Shard(1).Schedule(2*Nanosecond, func() {
		se.Post(1, 0, target-2*Nanosecond, func() { order = append(order, "from1") })
	})
	se.Run()
	want := []string{"from1", "from2a", "from2b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order %v, want %v (src-shard order, then post order)", order, want)
	}
}

// TestShardedLookaheadViolationPanics: a cross-shard post under the
// window is a partition bug and must panic, not silently serialize.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	se := NewShardedEngine(2, 100*Nanosecond)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard post under the lookahead window did not panic")
		}
	}()
	se.Post(0, 1, 99*Nanosecond, func() {})
}

// TestShardedExclusiveDrainCausality exercises the exclusive-mode fast
// path: long stretches where one shard is the only active one must drain
// at full speed yet stop at the first cross-shard post, so a reply
// posted back never lands in the lone shard's past. The events here are
// 1ps apart — thousands of times finer than the window — so any overrun
// past the interrupt point would trip Engine.At's schedule-into-the-past
// panic immediately.
func TestShardedExclusiveDrainCausality(t *testing.T) {
	const window = 10 * Nanosecond
	se := NewShardedEngine(2, window)
	pong := 0
	var tick func(i int)
	tick = func(i int) {
		if i%5000 == 2500 {
			se.Post(1, 0, window, func() {
				se.Post(0, 1, window, func() { pong++ })
			})
		}
		if i < 20000 {
			se.Shard(1).Schedule(Picosecond, func() { tick(i + 1) })
		}
	}
	se.Shard(1).Schedule(0, func() { tick(0) })
	end := se.Run()
	if pong != 4 {
		t.Fatalf("completed %d ping-pongs, want 4", pong)
	}
	if want := Time(20000); end < want {
		t.Fatalf("final clock %v before the chain end %v", end, want)
	}
	// Shard 1's chain dominates every window; the only off-critical-path
	// work is the 4 controller events, which overlap windows where the
	// chain fires thousands of events.
	if got, want := se.CriticalPathEvents(), se.EventsFired()-int64(pong); got != want {
		t.Fatalf("critical path %d, want %d (all but the %d overlapped controller events)",
			got, want, pong)
	}
}

// TestShardedEngineArgChecks covers constructor and accessor guards.
func TestShardedEngineArgChecks(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShardedEngine(0, Nanosecond) },
		func() { NewShardedEngine(2, 0) },
		func() { NewShardedEngine(2, Nanosecond).SetWindow(0) },
		func() { NewShardedEngine(2, Nanosecond).Post(0, 5, Nanosecond, func() {}) },
		func() { NewShardedEngine(2, Nanosecond).Post(0, 1, Nanosecond, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	se := NewShardedEngine(3, 2*Nanosecond)
	if se.NumShards() != 3 || se.Window() != 2*Nanosecond {
		t.Fatalf("NumShards/Window = %d/%v, want 3/2ns", se.NumShards(), se.Window())
	}
	se.SetWindow(5 * Nanosecond)
	if se.Window() != 5*Nanosecond {
		t.Fatalf("SetWindow did not take: %v", se.Window())
	}
}

// TestEventsFiredTotalConcurrentEngines is the satellite race test: N
// goroutine-local engines drain concurrently — the exact shape of both
// the runner's per-job engines and ShardedEngine's window workers — and
// the shared counter must end exactly at the sum, with concurrent
// readers racing the batched writers. Run under -race in CI.
func TestEventsFiredTotalConcurrentEngines(t *testing.T) {
	const (
		goroutines = 8
		perEngine  = 3 * firedFlushBatch / 2 // crosses the batch threshold mid-run
	)
	before := EventsFiredTotal()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if EventsFiredTotal() < before {
					panic("EventsFiredTotal went backwards")
				}
			}
		}
	}()
	var engines sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		engines.Add(1)
		go func() {
			defer engines.Done()
			e := NewEngine()
			n := 0
			var tick func()
			tick = func() {
				n++
				if n < perEngine {
					e.Schedule(Nanosecond, tick)
				}
			}
			e.Schedule(Nanosecond, tick)
			e.Run()
		}()
	}
	engines.Wait()
	close(stop)
	wg.Wait()
	if got := EventsFiredTotal() - before; got != goroutines*perEngine {
		t.Fatalf("concurrent engines published %d events, want %d", got, goroutines*perEngine)
	}
}
