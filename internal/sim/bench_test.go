package sim

import "testing"

// BenchmarkEngineSchedule measures the raw push/pop cost of the 4-ary
// event heap: a self-rescheduling event chain that keeps the queue warm
// without growing it.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(1, tick)
	e.Run()
	if n != b.N {
		b.Fatalf("fired %d events, want %d", n, b.N)
	}
}

// BenchmarkResourceHold measures the timed-hold fast path: Use on an
// idle resource, grant, release. After warm-up it must run at 0
// allocs/op — the grant/release steps are pre-bound method values and
// the hold parameters ride in resource fields, never in closures.
func BenchmarkResourceHold(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "ch")
	for i := 0; i < 8; i++ {
		r.Use(10, nil) // warm the event and waiter storage
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Use(10, nil)
		e.Run()
	}
}

// BenchmarkResourceHoldContended is the same path with a standing queue:
// four holds outstanding per iteration, so every release grants a waiter.
func BenchmarkResourceHoldContended(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "ch")
	for i := 0; i < 8; i++ {
		r.Use(10, nil)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Use(7, nil)
		r.Use(5, nil)
		r.Use(3, nil)
		r.Use(2, nil)
		e.Run()
	}
}

// BenchmarkUtilRecorderSparse records busy intervals far apart in time.
// The recorder grows straight to the interval's window in one append, so
// sparse traffic does not reallocate once per empty window in between.
func BenchmarkUtilRecorderSparse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := NewUtilRecorder(Microsecond)
		// One early interval, then one 50 ms later: ~50k empty windows
		// crossed in a single growth step.
		u.AddBusy(0, Microsecond)
		u.AddBusy(50*Millisecond, 50*Millisecond+Microsecond)
	}
}
