package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Use(10, func() { order = append(order, i) })
	}
	e.Run()
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50 (serialized holds)", e.Now())
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: order=%v", order)
		}
	}
	if r.TotalBusy() != 50 {
		t.Fatalf("TotalBusy = %v, want 50", r.TotalBusy())
	}
	if r.TotalGrants() != 5 {
		t.Fatalf("TotalGrants = %d, want 5", r.TotalGrants())
	}
}

func TestResourceAcquireRelease(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die")
	var got []string
	r.Acquire(func() {
		got = append(got, "first")
		e.Schedule(100, func() { r.Release() })
	})
	r.Acquire(func() {
		got = append(got, "second")
		r.Release()
	})
	e.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %v, want 100", e.Now())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	okFirst := r.TryAcquire(func() {})
	okSecond := r.TryAcquire(func() { t.Fatal("second TryAcquire callback ran") })
	if !okFirst || okSecond {
		t.Fatalf("TryAcquire = %v, %v; want true, false", okFirst, okSecond)
	}
	e.Run()
	r.Release()
	// With a waiter queued via Acquire, TryAcquire must also fail even if idle.
	r.Use(10, nil)
	e.Step() // grant the Use
	if r.TryAcquire(func() {}) {
		t.Fatal("TryAcquire succeeded on busy resource")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceGrantNotReentrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	granted := false
	r.Acquire(func() { granted = true })
	if granted {
		t.Fatal("grant ran re-entrantly inside Acquire")
	}
	e.Run()
	if !granted {
		t.Fatal("grant never ran")
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	r.Use(30, nil)
	e.Run()
	e.RunUntil(100)
	if got := r.Utilization(); got != 0.3 {
		t.Fatalf("Utilization = %v, want 0.3", got)
	}
}

func TestUtilRecorderWindows(t *testing.T) {
	u := NewUtilRecorder(10)
	u.AddBusy(5, 25) // half of window 0, all of window 1, half of window 2
	s := u.Series()
	want := []float64{0.5, 1.0, 0.5}
	if len(s) != 3 {
		t.Fatalf("series = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("series = %v, want %v", s, want)
		}
	}
}

func TestUtilRecorderAttachedToResource(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch")
	u := NewUtilRecorder(100)
	r.SetUtilRecorder(u)
	r.Use(50, nil)  // [0,50)
	r.Use(100, nil) // [50,150)
	e.Run()
	s := u.Series()
	if len(s) != 2 || s[0] != 1.0 || s[1] != 0.5 {
		t.Fatalf("series = %v, want [1 0.5]", s)
	}
}

// Property: with random hold durations the total busy time equals the sum of
// holds and the final clock equals that sum (single FIFO server).
func TestResourceSerializationProperty(t *testing.T) {
	prop := func(holds []uint8) bool {
		e := NewEngine()
		r := NewResource(e, "p")
		var sum Time
		for _, h := range holds {
			d := Time(h)
			sum += d
			r.Use(d, nil)
		}
		e.Run()
		return r.TotalBusy() == sum && e.Now() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: UtilRecorder conserves busy time — the sum over windows equals
// the length of the recorded interval, for any window size and interval.
func TestUtilRecorderConservationProperty(t *testing.T) {
	prop := func(winRaw, fromRaw, lenRaw uint16) bool {
		win := Time(winRaw%500) + 1
		from := Time(fromRaw % 2000)
		length := Time(lenRaw % 2000)
		u := NewUtilRecorder(win)
		u.AddBusy(from, from+length)
		var total Time
		for _, b := range u.busyPer {
			total += b
		}
		return total == length
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
