package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder broken")
	}
	if got := (3 * Microsecond).Microseconds(); got != 3.0 {
		t.Fatalf("Microseconds = %v, want 3", got)
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.50ns"},
		{3 * Microsecond, "3.00us"},
		{50 * Microsecond, "50.00us"},
		{Millisecond, "1.00ms"},
		{2 * Second, "2.000s"},
		{-3 * Microsecond, "-3.00us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: order[%d]=%d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(25)
	if n != 2 {
		t.Fatalf("fired %d events, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Now() != 40 || len(fired) != 4 {
		t.Fatalf("after Run: now=%v fired=%v", e.Now(), fired)
	}
}

// TestEngineRunUntilClockAtDeadline pins the deadline/clock contract:
// an event exactly at the deadline fires, the clock lands exactly on the
// deadline whether or not any event reached it, and a deadline in the
// past fires nothing and leaves the clock alone.
func TestEngineRunUntilClockAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 25, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	// Event exactly at the deadline fires and the clock stops at it.
	if n := e.RunUntil(25); n != 2 {
		t.Fatalf("RunUntil(25) fired %d, want 2 (deadline event included)", n)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %v, want exactly 25", e.Now())
	}
	// Deadline with no events in the window: clock still advances to it.
	if n := e.RunUntil(30); n != 0 {
		t.Fatalf("RunUntil(30) fired %d, want 0", n)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30 (clock advances to idle deadline)", e.Now())
	}
	// Deadline in the past: nothing fires, clock unchanged.
	if n := e.RunUntil(20); n != 0 {
		t.Fatalf("RunUntil(20) fired %d, want 0", n)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30 (past deadline must not rewind)", e.Now())
	}
	e.Run()
	if len(fired) != 3 || e.Now() != 40 {
		t.Fatalf("after Run: now=%v fired=%v", e.Now(), fired)
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(10, func() { count++ })
	e.Schedule(30, func() { count++ })
	e.RunFor(20)
	if count != 1 || e.Now() != 20 {
		t.Fatalf("count=%d now=%v, want 1, 20", count, e.Now())
	}
	e.RunFor(20)
	if count != 2 || e.Now() != 40 {
		t.Fatalf("count=%d now=%v, want 2, 40", count, e.Now())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatal("first step did not fire one event")
	}
	if !e.Step() || count != 2 {
		t.Fatal("second step did not fire one event")
	}
	if e.Step() {
		t.Fatal("step on empty queue reported an event")
	}
	if e.EventsFired() != 2 {
		t.Fatalf("EventsFired = %d, want 2", e.EventsFired())
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("past schedule did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var max Time
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(delays) > 0 && e.Now() != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEventsFiredTotal: engines publish their fired-event delta to the
// process-wide counter in firedFlushBatch batches plus one unconditional
// flush at every full Run drain. Partial drains (RunUntil, RunBefore,
// Step) below the batch size publish nothing — that is what keeps N
// shards doing per-window drains off the shared atomic — and a
// re-drained engine publishes nothing twice.
func TestEventsFiredTotal(t *testing.T) {
	before := EventsFiredTotal()
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i)*Microsecond, func() {})
	}
	e.Run()
	if got := EventsFiredTotal() - before; got != 5 {
		t.Fatalf("total advanced by %d after Run, want 5", got)
	}
	e.Run() // drained: no delta
	if got := EventsFiredTotal() - before; got != 5 {
		t.Fatalf("re-running a drained engine changed the total to +%d", got)
	}
	e.Schedule(Microsecond, func() {})
	e.Schedule(2*Microsecond, func() {})
	e.RunUntil(e.Now() + Microsecond)
	if got := EventsFiredTotal() - before; got != 5 {
		t.Fatalf("sub-batch RunUntil published early: total advanced by %d, want 5", got)
	}
	e.Step()
	if got := EventsFiredTotal() - before; got != 5 {
		t.Fatalf("sub-batch Step published early: total advanced by %d, want 5", got)
	}
	e.Run()
	if got := EventsFiredTotal() - before; got != 7 {
		t.Fatalf("total advanced by %d after final drain, want 7", got)
	}
}

// TestEventsFiredTotalBatchThreshold: once an engine accumulates
// firedFlushBatch unpublished events, the very next event publishes the
// batch even though no Run has drained — the fix for windowed lockstep
// drives (and single-stepping) starving the -progress feed.
func TestEventsFiredTotalBatchThreshold(t *testing.T) {
	before := EventsFiredTotal()
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < firedFlushBatch+10 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	// Drive entirely through RunBefore windows, never a full Run.
	for e.Pending() > 0 && e.Now() < Time(firedFlushBatch) {
		e.RunBefore(e.Now() + 100)
	}
	if got := EventsFiredTotal() - before; got < firedFlushBatch {
		t.Fatalf("windowed drive published %d events, want >= %d (batch threshold)", got, firedFlushBatch)
	}
	e.Run()
	if got := EventsFiredTotal() - before; got != int64(n) {
		t.Fatalf("final drain published %d, want %d", got, n)
	}
}

// TestRunBefore pins the window primitive's contract: strictly-before
// semantics, no forced clock advance, and interruption.
func TestRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if n := e.RunBefore(10); n != 1 {
		t.Fatalf("RunBefore(10) fired %d events, want 1 (strictly before)", n)
	}
	if e.Now() != 5 {
		t.Fatalf("clock forced to %v, want 5 (last executed event)", e.Now())
	}
	if n := e.RunBefore(11); n != 1 {
		t.Fatalf("RunBefore(11) fired %d events, want 1", n)
	}
	if n := e.RunBefore(100); n != 1 || e.Now() != 15 {
		t.Fatalf("final window fired %d events at now=%v, want 1 at 15", n, e.Now())
	}

	// Interrupt stops the loop after the current event.
	var order []int
	e.Schedule(1, func() { order = append(order, 1); e.Interrupt() })
	e.Schedule(2, func() { order = append(order, 2) })
	if n := e.RunBefore(100); n != 1 {
		t.Fatalf("interrupted RunBefore fired %d events, want 1", n)
	}
	if n := e.RunBefore(100); n != 1 || len(order) != 2 {
		t.Fatalf("resume after interrupt fired %d events (order %v), want the remaining 1", n, order)
	}
}

// TestEventHeapShrinks: a run that piles up a huge queue must not pin
// its peak-size backing array forever. After enough small drained Runs
// push the big one out of the high-water history, capacity falls back
// toward what the recent runs actually needed.
func TestEventHeapShrinks(t *testing.T) {
	e := NewEngine()
	const big = 50_000
	for i := 0; i < big; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	peak := e.heapCap()
	if peak < big {
		t.Fatalf("heap capacity %d below queue depth %d", peak, big)
	}
	// hwRuns small drains age the big run out of the history window.
	for r := 0; r < hwRuns+1; r++ {
		for i := 0; i < 8; i++ {
			e.Schedule(Time(i), func() {})
		}
		e.Run()
	}
	if c := e.heapCap(); c >= peak/4 {
		t.Fatalf("heap capacity still %d after small runs (peak %d); want < peak/4", c, peak)
	}
	// The engine still works after shrinking.
	fired := 0
	for i := 0; i < 1000; i++ {
		e.Schedule(Time(i), func() { fired++ })
	}
	e.Run()
	if fired != 1000 {
		t.Fatalf("post-shrink run fired %d/1000 events", fired)
	}
}
