package sim

import (
	"fmt"
	"sync"
)

// ShardedEngine partitions one simulation across N event queues — each
// shard a plain *Engine — and advances them in lockstep conservative
// time windows, the classic conservative parallel-DES scheme:
//
//   - Model state is partitioned: every resource and every event touches
//     exactly one shard, and events on a shard are scheduled only from
//     code running on that shard.
//   - Cross-shard interaction goes through Post, which routes the call
//     into a per-source mailbox instead of the destination queue. The
//     delay of a cross-shard post must be at least the engine's window —
//     the lookahead bound, derived from the minimum model latency
//     separating two shards (the ECC pipeline in front of the SoC hop, a
//     control-plane message, a mesh link traversal). Post panics on a
//     shorter delay: that is a partition bug, and silently serializing
//     would hide it.
//   - Run advances all shards window by window: every shard executes its
//     events with timestamps inside [T, T+W) in parallel, then a barrier
//     drains the mailboxes. Because every cross-shard post made inside
//     the window carries at least W of delay, its target timestamp lands
//     at or beyond the next window — no shard can ever receive an event
//     for a time it has already passed.
//
// Determinism: within a window, shards execute disjoint queues, so the
// goroutine interleaving is unobservable. Mailbox deliveries happen at
// the barrier in (window, source shard, post order) — a total order —
// and each lands in the destination heap with an ordinary sequence
// number, so ties resolve identically on every run. A ShardedEngine
// run is bit-reproducible for a fixed shard count and partition.
//
// A model living entirely on one shard degenerates gracefully: whenever
// exactly one shard has pending events, Run drains it at full speed with
// no window bookkeeping (cut short only by that shard's first cross-shard
// post, via Engine.Interrupt, which is what keeps the conservative bound
// intact). A single-shard ShardedEngine is therefore byte-identical to —
// and exactly as fast as — the serial engine it wraps.
type ShardedEngine struct {
	window Time
	shards []*Engine
	outs   [][]crossPost // outs[src]: posts made by shard src this window
	// postsBy counts lifetime cross-shard posts per source shard. Kept
	// per-shard because Post runs on the posting shard's goroutine
	// during a window; only the barrier (and idle accessors) sum it.
	postsBy []int64
	windows int64 // lifetime lockstep window count
	// critPath accumulates, per lockstep window, the event count of the
	// busiest shard — the critical path of the partitioned run. Total
	// events divided by this is the speedup an ideal machine could
	// extract from the partition, independent of host core count.
	critPath  int64
	running   bool
	exclusive int // shard draining in exclusive mode, -1 otherwise
}

// crossPost is one mailbox entry: an event bound for another shard,
// carrying its absolute target time.
type crossPost struct {
	dst int
	at  Time
	fn  func()
}

// NewShardedEngine creates n shards advancing in lockstep windows of
// width window. The window is the conservative lookahead bound: no
// cross-shard interaction may carry less delay. A one-shard engine is
// valid (and runs serially with zero overhead); the window must still be
// positive so a later SetWindow or partition change cannot legitimize a
// zero bound by accident.
func NewShardedEngine(n int, window Time) *ShardedEngine {
	if n <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", n))
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %v", window))
	}
	se := &ShardedEngine{
		window:    window,
		shards:    make([]*Engine, n),
		outs:      make([][]crossPost, n),
		postsBy:   make([]int64, n),
		exclusive: -1,
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns shard i's engine for model wiring. All state owned by a
// shard must schedule exclusively through its engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Window returns the conservative lookahead bound.
func (se *ShardedEngine) Window() Time { return se.window }

// SetWindow replaces the lookahead bound, for callers that can only
// derive it after construction (a fabric built around the shard
// engines). It panics mid-run or on a non-positive bound.
func (se *ShardedEngine) SetWindow(w Time) {
	if se.running {
		panic("sim: SetWindow during Run")
	}
	if w <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %v", w))
	}
	se.window = w
}

// CrossPosts returns the lifetime number of cross-shard posts routed
// through the mailbox. Call it only while the engine is idle (between
// Runs or at a barrier) — the per-shard tallies it sums are written by
// the posting shards' goroutines mid-window.
func (se *ShardedEngine) CrossPosts() int64 {
	var n int64
	for _, p := range se.postsBy {
		n += p
	}
	return n
}

// Windows returns the number of lockstep windows executed (exclusive
// full-speed drains count zero — they have no barrier).
func (se *ShardedEngine) Windows() int64 { return se.windows }

// CriticalPathEvents returns the sum over lockstep windows of the
// busiest shard's event count, plus every event executed in exclusive
// drains (which are serial by definition). EventsFired divided by this
// is the parallelism the partition exposed — the speedup ceiling on an
// ideal host, independent of actual core count. Deterministic for a
// fixed shard count.
func (se *ShardedEngine) CriticalPathEvents() int64 { return se.critPath }

// EventsFired returns the events executed across all shards.
func (se *ShardedEngine) EventsFired() int64 {
	var n int64
	for _, sh := range se.shards {
		n += sh.EventsFired()
	}
	return n
}

// Pending returns queued events across all shards plus undelivered
// mailbox posts.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	for _, out := range se.outs {
		n += len(out)
	}
	return n
}

// Now returns the latest shard clock — the simulation time of the last
// event executed anywhere.
func (se *ShardedEngine) Now() Time {
	var t Time
	for _, sh := range se.shards {
		if sh.Now() > t {
			t = sh.Now()
		}
	}
	return t
}

// Post schedules fn on shard dst after delay d, measured on shard src's
// clock. Same-shard posts are ordinary Schedule calls. A cross-shard
// post must carry at least the lookahead window of delay; it is routed
// through the mailbox and applied at the next window barrier in
// (window, source shard, post order) — a deterministic total order.
// Post must be called from code running on shard src (or before Run
// starts); that is the same single-threaded discipline Engine.Schedule
// already requires.
func (se *ShardedEngine) Post(src, dst int, d Time, fn func()) {
	if src < 0 || src >= len(se.shards) || dst < 0 || dst >= len(se.shards) {
		panic(fmt.Sprintf("sim: post %d->%d outside %d shards", src, dst, len(se.shards)))
	}
	if src == dst {
		se.shards[src].Schedule(d, fn)
		return
	}
	if d < se.window {
		panic(fmt.Sprintf("sim: cross-shard post %d->%d with delay %v under the %v lookahead window — the partition placed a faster interaction across shards than its bound allows",
			src, dst, d, se.window))
	}
	if fn == nil {
		panic("sim: nil cross-shard event function")
	}
	se.postsBy[src]++
	se.outs[src] = append(se.outs[src], crossPost{dst: dst, at: se.shards[src].Now() + d, fn: fn})
	if se.exclusive == src {
		// An exclusive drain just produced its first cross-shard message:
		// stop after this event so the destination shard is woken before
		// this shard runs past times it might yet need to interact at.
		se.shards[src].Interrupt()
	}
}

// deliver drains every mailbox into the destination heaps, in source
// shard order with each source's posts kept in post order. Every target
// time is at or beyond every destination clock (the conservative bound),
// so At never sees the past.
func (se *ShardedEngine) deliver() {
	for src := range se.outs {
		for _, p := range se.outs[src] {
			se.shards[p.dst].At(p.at, p.fn)
		}
		se.outs[src] = se.outs[src][:0]
	}
}

// active returns the shards with pending events and the earliest pending
// timestamp across them.
func (se *ShardedEngine) active() (ids []int, earliest Time) {
	earliest = -1
	for i, sh := range se.shards {
		if sh.Pending() == 0 {
			continue
		}
		ids = append(ids, i)
		if t := sh.events[0].at; earliest < 0 || t < earliest {
			earliest = t
		}
	}
	return ids, earliest
}

// Run executes the simulation to completion — all shards drained, all
// mailboxes empty — and returns the clock of the last event executed.
// One shard: plain serial Run. Several active shards: lockstep windows
// of width Window, each shard on its own goroutine, mailbox barrier in
// between. Exactly one active shard: exclusive full-speed drain until
// it finishes or makes its first cross-shard post.
func (se *ShardedEngine) Run() Time {
	if se.running {
		panic("sim: ShardedEngine.Run re-entered")
	}
	se.running = true
	defer func() { se.running = false }()

	if len(se.shards) == 1 {
		before := se.shards[0].EventsFired()
		t := se.shards[0].Run()
		se.critPath += se.shards[0].EventsFired() - before
		return t
	}

	var wg sync.WaitGroup
	for {
		se.deliver()
		ids, earliest := se.active()
		if len(ids) == 0 {
			break
		}
		if len(ids) == 1 {
			// Only one shard is live: no peer can message it, so the
			// lockstep cadence adds nothing. Drain it flat out; Post
			// interrupts the drain the moment it would need a barrier.
			j := ids[0]
			se.exclusive = j
			se.critPath += se.shards[j].RunBefore(maxTime)
			se.exclusive = -1
			continue
		}
		end := earliest + se.window
		// Shards 1..n-1 run the window on worker goroutines; shard 0 runs
		// on this one. Engines are disjoint, so the only synchronization
		// needed is the fork and the join.
		fired := make([]int64, len(ids))
		for k, j := range ids[1:] {
			wg.Add(1)
			go func(slot, shard int) {
				defer wg.Done()
				fired[slot] = se.shards[shard].RunBefore(end)
			}(k+1, j)
		}
		fired[0] = se.shards[ids[0]].RunBefore(end)
		wg.Wait()
		se.windows++
		var worst int64
		for _, n := range fired {
			if n > worst {
				worst = n
			}
		}
		se.critPath += worst
	}
	for _, sh := range se.shards {
		sh.FlushEventsFired()
	}
	return se.Now()
}

// maxTime is the largest representable simulation time, the "no limit"
// bound of an exclusive drain.
const maxTime = Time(1<<63 - 1)
