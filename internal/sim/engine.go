// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds so that the fastest modelled
// resources (a 16-bit flash channel moving two bytes per nanosecond, or a
// 2-bit mesh link moving one byte every four nanoseconds) divide evenly.
// Events scheduled for the same instant fire in scheduling order, which
// makes every simulation in this repository reproducible bit-for-bit.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns the time as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "3.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

// before reports whether a must fire before b: earlier timestamp first,
// scheduling order (seq) breaking ties. seq is unique, so the order is a
// total order and every run replays identically.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap of concrete event values ordered by
// before. It replaces container/heap: no heap.Interface, no interface{}
// boxing on push/pop, and the arity-4 layout halves the tree depth so
// sift-down touches fewer cache lines per operation. The backing array is
// kept (and only grown) across Run loops, so a drained engine re-fills
// its queue without reallocating.
type eventHeap []event

// push appends ev and sifts it up to its position.
func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// popMin removes and returns the earliest event. The vacated tail slot is
// zeroed so the callback closure becomes collectable immediately.
func (h *eventHeap) popMin() event {
	s := *h
	min := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = event{}
	s = s[:last]
	*h = s

	// Sift the relocated element down: find the smallest of up to four
	// children, swap if it precedes the parent.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		best := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if s[c].before(s[best]) {
				best = c
			}
		}
		if !s[best].before(s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return min
}

// totalFired accumulates events executed across every engine in the
// process — the feed behind the runner package's -progress reporter.
// Engines publish in batches of firedFlushBatch events rather than per
// event (plus one unconditional flush when a full Run drains), so N
// engines stepping in lockstep windows — each window a short RunUntil or
// RunBefore call — cost one atomic add per ~8k events each instead of
// one per call, and the hot step loop stays contention-free.
var totalFired atomic.Int64

// firedFlushBatch is the unpublished-event threshold at which an engine
// pushes its delta to totalFired. Large enough that per-window drains
// from many shards don't contend on the atomic; small enough that
// -progress never lags a live engine by more than a blink.
const firedFlushBatch = 8192

// EventsFiredTotal returns the process-wide number of events executed
// across all engines. Updated every firedFlushBatch events and at every
// full Run drain, so it lags an engine mid-drain by less than one batch;
// it is a progress signal, not an exact census.
func EventsFiredTotal() int64 { return totalFired.Load() }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks. Distinct
// engines are independent: N goroutines may each drive their own engine
// concurrently (the runner's per-job engines, or ShardedEngine's
// per-shard queues) with no shared mutable state beyond the batched
// EventsFiredTotal counter.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	fired  int64
	// counted is how much of fired has been published to totalFired.
	counted int64
	// interrupt asks the innermost RunBefore loop to return after the
	// event currently executing — the hook ShardedEngine uses to cut an
	// exclusive full-speed drain at the first cross-shard post.
	interrupt bool
	// highWater tracks the deepest the event queue has been since the
	// last full drain; recentHW keeps the marks of the last few drained
	// Runs so the backing array can shrink once a big-config run is
	// provably over, not on the first quiet window after it.
	highWater int
	recentHW  [hwRuns]int
	hwIdx     int
}

// hwRuns is how many drained Runs of queue high-water history inform the
// shrink decision; minShrinkCap is the capacity below which shrinking is
// never worth a reallocation.
const (
	hwRuns       = 4
	minShrinkCap = 1024
)

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() int64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d. A negative delay panics: the model has a
// causality bug and silently clamping it would hide the error.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at t=%v", d, e.now))
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t, which must not precede the current time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: t=%v now=%v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
	if n := len(e.events); n > e.highWater {
		e.highWater = n
	}
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	e.FlushEventsFired()
	e.noteDrained()
	return e.now
}

// FlushEventsFired publishes any events fired since the last flush to the
// process-wide EventsFiredTotal counter, regardless of the batching
// threshold. Run calls it at every full drain; window drivers
// (ShardedEngine) call it once per simulation so the final census is
// exact even when every window stayed under the batch size.
func (e *Engine) FlushEventsFired() {
	if d := e.fired - e.counted; d > 0 {
		totalFired.Add(d)
		e.counted = e.fired
	}
}

// noteDrained records the queue's high-water mark for the Run that just
// drained and shrinks the heap's backing array once the capacity exceeds
// 4x the deepest queue any of the last hwRuns Runs needed. Big-config
// sweeps reuse one engine across many Runs; without this, a single
// deep-queue run pins its peak-size slice (and every event closure slot
// in it) for the engine's remaining lifetime.
func (e *Engine) noteDrained() {
	e.recentHW[e.hwIdx%hwRuns] = e.highWater
	e.hwIdx++
	need := 0
	for _, hw := range e.recentHW {
		if hw > need {
			need = hw
		}
	}
	if c := cap(e.events); c >= minShrinkCap && c > 4*need {
		e.events = make(eventHeap, 0, 2*need)
	}
	e.highWater = 0
}

// heapCap exposes the event queue's backing capacity to tests.
func (e *Engine) heapCap() int { return cap(e.events) }

// RunUntil executes every event with a timestamp <= deadline, including
// events those events schedule into the window, and returns the number of
// events fired. Events beyond the deadline remain queued. The clock
// contract: on return the clock is exactly max(now, deadline) — it
// advances to the deadline even if the last event fired earlier (or no
// event fired at all), and an event scheduled exactly at the deadline
// does fire. If the deadline precedes the current clock, nothing fires
// and the clock is unchanged. EventsFiredTotal publication rides the
// batching threshold (see EventsFiredTotal), so windowed lockstep drains
// from many shards do not contend on the shared atomic.
func (e *Engine) RunUntil(deadline Time) int64 {
	var n int64
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunBefore executes every event with a timestamp strictly before limit
// and returns the number fired. Unlike RunUntil it never forces the
// clock forward: on return Now is the timestamp of the last event
// executed, so a windowed drive that ends on a window boundary leaves
// the clock — and every Now-derived statistic — exactly where a single
// uninterrupted Run would have. It is the window primitive of the
// sharded engine: conservative lockstep runs each shard RunBefore(T+W).
// An Interrupt call from inside an executing event stops the loop after
// that event returns.
func (e *Engine) RunBefore(limit Time) int64 {
	var n int64
	for len(e.events) > 0 && e.events[0].at < limit {
		e.step()
		n++
		if e.interrupt {
			break
		}
	}
	e.interrupt = false
	return n
}

// Interrupt asks the innermost RunBefore loop to return after the event
// currently executing completes. It must be called from model code
// running inside that event (the engine is single-threaded); it is a
// no-op outside RunBefore. ShardedEngine uses it to cut an exclusive
// full-speed drain the moment a cross-shard message appears.
func (e *Engine) Interrupt() { e.interrupt = true }

// RunFor advances the clock by d, executing everything due in the window.
func (e *Engine) RunFor(d Time) int64 { return e.RunUntil(e.now + d) }

// Step executes exactly one event if any is pending, reporting whether one
// fired. Fired events feed EventsFiredTotal through the same batching
// threshold as the run loops, so a caller single-stepping an engine (or
// a window driver draining in tiny slices) still surfaces progress.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := e.events.popMin()
	if ev.at < e.now {
		panic("sim: event heap corrupted")
	}
	e.now = ev.at
	e.fired++
	if e.fired-e.counted >= firedFlushBatch {
		totalFired.Add(e.fired - e.counted)
		e.counted = e.fired
	}
	ev.fn()
}
