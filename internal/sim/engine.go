// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds so that the fastest modelled
// resources (a 16-bit flash channel moving two bytes per nanosecond, or a
// 2-bit mesh link moving one byte every four nanoseconds) divide evenly.
// Events scheduled for the same instant fire in scheduling order, which
// makes every simulation in this repository reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns the time as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "3.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	fired  int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() int64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d. A negative delay panics: the model has a
// causality bug and silently clamping it would hide the error.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at t=%v", d, e.now))
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t, which must not precede the current time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: t=%v now=%v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is left at the deadline or at
// the last event time, whichever is later was reached first. It returns the
// number of events fired.
func (e *Engine) RunUntil(deadline Time) int64 {
	var n int64
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor advances the clock by d, executing everything due in the window.
func (e *Engine) RunFor(d Time) int64 { return e.RunUntil(e.now + d) }

// Step executes exactly one event if any is pending, reporting whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	if ev.at < e.now {
		panic("sim: event heap corrupted")
	}
	e.now = ev.at
	e.fired++
	ev.fn()
}
